// Pagemapping: §4.2/§4.4 — "the virtual to physical page map ... can
// have significant impact on memory system behavior". Replay one
// tomcatv trace under three page-placement policies in the analysis
// simulator and compare physically-indexed cache behavior.
package main

import (
	"fmt"
	"log"

	"systrace"
	"systrace/internal/kernel"
	"systrace/internal/memsys"
	"systrace/internal/workload"
)

func main() {
	spec, _ := workload.ByName("tomcatv")
	kexe, err := systrace.BuildKernel(systrace.Ultrix, true)
	check(err)
	prog, err := systrace.BuildProgram(spec.Name, []*systrace.Module{spec.Build()})
	check(err)
	disk, err := systrace.BuildDiskImage(spec.Files)
	check(err)
	cfg := systrace.DefaultBoot(systrace.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 4 << 20
	cfg.ClockInterval *= 15
	sys, err := systrace.Boot(kexe, []systrace.BootProc{{Exe: prog.Instr}}, cfg)
	check(err)

	parser := systrace.NewParser(systrace.NewSideTable(kexe))
	parser.AddProcess(1, systrace.NewSideTable(prog.Instr))

	type entry struct {
		name   string
		policy memsys.PagePolicy
		seed   uint32
	}
	entries := []entry{
		{"sequential", memsys.PolicySequential, 1},
		{"random(a)", memsys.PolicyRandom, 11},
		{"random(b)", memsys.PolicyRandom, 77},
		{"coloring", memsys.PolicyColoring, 1},
	}
	sims := make([]*memsys.TraceSim, len(entries))
	for i, e := range entries {
		sims[i] = memsys.NewTraceSim(memsys.DECstation5000(), e.policy,
			kernel.DefaultBoot(kernel.Ultrix).RAMBytes>>12, e.seed)
	}
	sys.OnTrace = func(words []uint32) {
		evs, err := parser.Parse(words, nil)
		check(err)
		for _, sim := range sims {
			sim.Events(evs)
		}
	}
	check(sys.Run(6_000_000_000))
	check(parser.Finish())

	fmt.Println("tomcatv trace replayed under three page-placement policies:")
	fmt.Printf("%-12s %12s %12s %14s\n", "policy", "i-miss rate", "d-miss rate", "mem stalls")
	for i, e := range entries {
		fmt.Printf("%-12s %11.3f%% %11.3f%% %14d\n", e.name,
			sims[i].IC.MissRate()*100, sims[i].DC.MissRate()*100, sims[i].MemStalls())
	}
	fmt.Println("\nsame trace, different placement: physically-indexed cache behavior shifts (§4.2).")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
