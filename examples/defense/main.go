// Example defense demonstrates "defensive tracing" (§4.3): the parsing
// library validates every word of the stream against the static side
// tables, so single-word corruption in a live system trace — an
// overwritten basic-block record, a dropped store address — is caught
// with very high probability rather than silently skewing an analysis.
//
// The one corruption that is intrinsically invisible is dropping the
// one-word record of a basic block with no memory references: every
// following word still parses, and only the reference counts shift.
package main

import (
	"fmt"
	"log"

	"systrace"
)

func main() {
	spec, _ := systrace.WorkloadByName("sed")
	kexe, err := systrace.BuildKernel(systrace.Ultrix, true)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := systrace.BuildProgram(spec.Name, []*systrace.Module{spec.Build()})
	if err != nil {
		log.Fatal(err)
	}
	disk, err := systrace.BuildDiskImage(spec.Files)
	if err != nil {
		log.Fatal(err)
	}
	cfg := systrace.DefaultBoot(systrace.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 4 << 20
	cfg.ClockInterval *= 15
	sys, err := systrace.Boot(kexe, []systrace.BootProc{{Exe: prog.Instr}}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Capture the raw stream of one run.
	var words []uint32
	sys.OnTrace = func(w []uint32) { words = append(words, w...) }
	if err := sys.Run(2_000_000_000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d trace words from a traced run of %s\n\n", len(words), spec.Name)

	parse := func(ws []uint32) error {
		p := systrace.NewParser(systrace.NewSideTable(kexe))
		p.AddProcess(1, systrace.NewSideTable(prog.Instr))
		if _, err := p.Parse(ws, nil); err != nil {
			return err
		}
		return p.Finish()
	}
	if err := parse(words); err != nil {
		log.Fatalf("clean stream must parse: %v", err)
	}

	// Overwrite single words with a data-looking value and count how
	// many corruptions the parser flags.
	const trials = 200
	caught := 0
	var missExample int
	for t := 0; t < trials; t++ {
		i := (t*7919 + 13) % len(words)
		mut := make([]uint32, len(words))
		copy(mut, words)
		mut[i] ^= 0x00000040 // flip one address bit
		if parse(mut) != nil {
			caught++
		} else {
			missExample = i
		}
	}
	fmt.Printf("overwrite one word (bit flip): %d/%d detected\n", caught, trials)
	if caught < trials {
		fmt.Printf("  (an undetected flip, e.g. word %d, landed in a store/load\n"+
			"   address — it changes WHICH address was traced, which no\n"+
			"   format check can see; record words are always caught)\n", missExample)
	}

	// Drop single words.
	caught = 0
	for t := 0; t < trials; t++ {
		i := (t*104729 + 7) % len(words)
		mut := make([]uint32, 0, len(words)-1)
		mut = append(mut, words[:i]...)
		mut = append(mut, words[i+1:]...)
		if parse(mut) != nil {
			caught++
		}
	}
	fmt.Printf("drop one word:                 %d/%d detected\n", caught, trials)
	fmt.Println(`
what the format can and cannot see (§4.3):
  - a corrupted basic-block RECORD never looks like a valid record:
    always caught;
  - a dropped word is caught when the resulting slip makes a data
    address land where a record must be (or vice versa), or leaves
    the final block incomplete — but a drop adjacent to a block with
    no memory references realigns silently;
  - flipping a bit inside a load/store ADDRESS changes which address
    was traced, which no format check can observe.
hence the paper's wording: detected "with a very high probability",
not with certainty. TestDefensiveTracing (internal/epoxie) and
BenchmarkDefensiveTracing measure the rates per corruption class.`)
}
