// Quickstart: write a small program in the Mahler IR, run it on the
// traced Ultrix-like kernel, and reconstruct its whole-system address
// trace — kernel and user references interleaved, as in the paper's
// Figure 1.
package main

import (
	"fmt"
	"log"

	"systrace"
	m "systrace/internal/mahler"
)

func main() {
	// A program: sum the bytes of a file it opens through the kernel.
	mod := systrace.NewModule("quick")
	mod.Extern("sys_open", m.TInt)
	mod.Extern("sys_read", m.TInt)
	mod.Extern("sys_close", m.TInt)
	mod.Data("path", []byte("hello.txt\x00"))
	mod.Global("buf", 512)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "sum")
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.Assign("sum", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(512)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("sum", m.Add(m.V("sum"), m.LoadB(m.Add(m.Addr("buf", 0), m.V("i")))))
			})
		})
		b.Call("sys_close", m.V("fd"))
		b.Return(m.V("sum"))
	})

	// Build both executables (original + epoxie-instrumented).
	prog, err := systrace.BuildProgram("quick", []*systrace.Module{mod})
	check(err)
	fmt.Printf("instrumented text growth: %.2fx\n", prog.Instr.Instr.GrowthFactor())

	// Boot the traced kernel with the instrumented program.
	kexe, err := systrace.BuildKernel(systrace.Ultrix, true)
	check(err)
	disk, err := systrace.BuildDiskImage(map[string][]byte{
		"hello.txt": []byte("an address trace is worth a thousand counters\n"),
	})
	check(err)
	cfg := systrace.DefaultBoot(systrace.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 1 << 20
	cfg.ClockInterval *= 15 // time-dilation compensation (§4.1)
	sys, err := systrace.Boot(kexe, []systrace.BootProc{{Exe: prog.Instr}}, cfg)
	check(err)

	// The analysis program: parse each drained batch.
	parser := systrace.NewParser(systrace.NewSideTable(kexe))
	parser.AddProcess(1, systrace.NewSideTable(prog.Instr))
	shown := 0
	sys.OnTrace = func(words []uint32) {
		evs, err := parser.Parse(words, nil)
		check(err)
		for _, ev := range evs {
			if shown >= 24 || !interesting(ev) {
				continue
			}
			shown++
			who := "user  "
			if ev.Kernel {
				who = "kernel"
			}
			fmt.Printf("  %s %v 0x%08x\n", who, ev.Kind, ev.Addr)
		}
	}
	check(sys.Run(2_000_000_000))
	check(parser.Finish())

	fmt.Printf("exit status (byte sum): %d\n", sys.ExitStatus(1))
	fmt.Printf("trace: %d records, %d refs, %d markers, %d idle instructions\n",
		parser.Records, parser.MemRefs, parser.Markers, parser.IdleInstr)
}

// interesting filters the demo window to the boundary where control
// crosses between user and kernel.
var lastKern = true

func interesting(ev systrace.Event) bool {
	x := ev.Kernel != lastKern
	lastKern = ev.Kernel
	return x
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
