// Cachestudy: the paper's motivating use case — drive cache
// simulations of several configurations from one long whole-system
// trace ("the traces must be long enough to make possible the
// realistic simulation of very large caches", §3.1). One traced run of
// a workload feeds four cache sizes simultaneously.
package main

import (
	"fmt"
	"log"

	"systrace"
	"systrace/internal/kernel"
	"systrace/internal/memsys"
	"systrace/internal/trace"
	"systrace/internal/workload"
)

func main() {
	spec, _ := workload.ByName("gcc")
	kexe, err := systrace.BuildKernel(systrace.Ultrix, true)
	check(err)
	prog, err := systrace.BuildProgram(spec.Name, []*systrace.Module{spec.Build()})
	check(err)
	disk, err := systrace.BuildDiskImage(spec.Files)
	check(err)
	cfg := systrace.DefaultBoot(systrace.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 4 << 20
	cfg.ClockInterval *= 15
	sys, err := systrace.Boot(kexe, []systrace.BootProc{{Exe: prog.Instr}}, cfg)
	check(err)

	parser := systrace.NewParser(systrace.NewSideTable(kexe))
	parser.AddProcess(1, systrace.NewSideTable(prog.Instr))

	// Four machine models differing only in cache size, all consuming
	// the same trace.
	sizes := []uint32{8 << 10, 16 << 10, 64 << 10, 256 << 10}
	sims := make([]*memsys.TraceSim, len(sizes))
	for i, sz := range sizes {
		mc := memsys.DECstation5000()
		mc.ICacheSize, mc.DCacheSize = sz, sz
		sims[i] = memsys.NewTraceSim(mc, memsys.PolicySequential,
			kernel.DefaultBoot(kernel.Ultrix).RAMBytes>>12, 1)
	}
	sys.OnTrace = func(words []uint32) {
		evs, err := parser.Parse(words, nil)
		check(err)
		for _, sim := range sims {
			sim.Events(evs)
		}
	}
	check(sys.Run(6_000_000_000))
	check(parser.Finish())

	fmt.Printf("one %s trace (%d references) driving four cache configurations:\n\n",
		spec.Name, parser.Records+parser.MemRefs)
	fmt.Printf("%-8s %12s %12s %14s\n", "cache", "i-miss rate", "d-miss rate", "mem stalls")
	for i, sz := range sizes {
		fmt.Printf("%5dKB  %11.3f%% %11.3f%% %14d\n", sz>>10,
			sims[i].IC.MissRate()*100, sims[i].DC.MissRate()*100, sims[i].MemStalls())
	}
	_ = trace.EvIFetch
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
