GO ?= go

.PHONY: check fmt vet build test bench

# check is the tier-1 gate: formatting, vet, build, and the full test
# suite. CI and pre-commit should run exactly this.
check:
	./scripts/check.sh

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...
