GO ?= go

.PHONY: check lint tracelint guestlint fmt vet build test bench bench-cpu bench-obs bench-stream bench-dataflow

# check is the tier-1 gate: formatting, vet, build, the full test
# suite, fuzz smoke, and the lint gate. CI and pre-commit should run
# exactly this. The lint prerequisite runs first; SKIP_LINT keeps
# check.sh from running it a second time.
check: lint
	SKIP_LINT=1 ./scripts/check.sh

# lint runs the project analyzers (cmd/vet-tracer) and the static
# instrumentation verifier (cmd/epoxylint) over every workload.
lint:
	./scripts/lint.sh

# guestlint runs the whole-binary value-fact lints (unreachable
# blocks, jumps into block interiors, stack balance at returns, wild
# stores) over every workload under every runtime kind.
guestlint:
	$(GO) run ./cmd/guestlint

# tracelint boots every workload under both OS personalities in the
# simulator and checks the whole-system trace streams for conformance
# against the instrumented images' control flow graphs.
tracelint:
	$(GO) run ./cmd/tracelint

fmt:
	gofmt -l .

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -run=^$$ -bench=. -benchmem ./...

# bench-cpu measures raw interpreter speed (reference vs predecode vs
# superblock engine over untraced and traced sed + lisp boots) and
# rewrites BENCH_cpu.json.
bench-cpu:
	$(GO) run ./cmd/benchcpu -out BENCH_cpu.json

# bench-obs measures observability overhead (flight recorder off/on,
# guest-PC profiler on) against the BENCH_cpu.json predecode baseline
# and rewrites BENCH_obs.json; fails if recorder-on drops below 97%.
bench-obs:
	$(GO) run ./cmd/benchcpu -mode obs -out BENCH_obs.json -count 8

# bench-stream compares the trace drains (two-phase vs epoch-ring
# streaming, raw and compressed) over the full prediction pipeline and
# rewrites BENCH_stream.json; fails if the overlapped drain is not
# faster in simulated time or compression drops below 4x.
bench-stream:
	$(GO) run ./cmd/benchstream -out BENCH_stream.json

# bench-dataflow measures the liveness analysis' dead-register elision
# (static sites elided per image, dynamic instructions saved per traced
# boot) and rewrites BENCH_dataflow.json; fails if the corpus-wide
# elision rate drops below 20%.
bench-dataflow:
	$(GO) run ./cmd/benchdataflow -out BENCH_dataflow.json
