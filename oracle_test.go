package systrace_test

// Workload-level differential oracle for the predecoded interpreter:
// full traced boots of sed and lisp run once per engine, and the final
// architectural state, the complete Observer event stream, and every
// externally visible output (console, exit status, drained trace
// words, machine cycles) must match between the reference and the
// predecoded core. Machine time is instruction-based on both engines,
// so a traced boot — interrupts, DMA, doorbell analysis phases and
// all — is deterministic down to the cycle; any predecode bug that
// survives the random-program lockstep (internal/cpu) shows up here as
// a diverging stream.

import (
	"math"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/epoxie"
	"systrace/internal/experiment"
	"systrace/internal/kernel"
	obspkg "systrace/internal/obs"
	"systrace/internal/workload"
)

// streamObs folds the event stream into a rolling FNV-1a hash.
type streamObs struct {
	h uint64
	n uint64
}

func (o *streamObs) mix(vs ...uint32) {
	for _, v := range vs {
		o.h ^= uint64(v)
		o.h *= 1099511628211
	}
	o.n++
}

func ob2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (o *streamObs) Fetch(va, pa uint32, kernel, cached bool) {
	o.mix(1, va, pa, ob2u(kernel), ob2u(cached))
}
func (o *streamObs) Load(va, pa uint32, size int, kernel, cached bool) {
	o.mix(2, va, pa, uint32(size), ob2u(kernel), ob2u(cached))
}
func (o *streamObs) Store(va, pa uint32, size int, kernel, cached bool) {
	o.mix(3, va, pa, uint32(size), ob2u(kernel), ob2u(cached))
}
func (o *streamObs) Exception(code int, vector uint32) { o.mix(4, uint32(code), vector) }
func (o *streamObs) FPOp(latency int)                  { o.mix(5, uint32(latency)) }

type engineResult struct {
	gpr       [32]uint32
	fprBits   [32]uint64
	hi, lo    uint32
	pc        uint32
	cp0       cpu.CP0
	tlb       [cpu.NTLB]cpu.TLBEntry
	stat      cpu.Stats
	eventHash uint64
	events    uint64
	traceHash uint64
	traceN    uint64
	console   string
	exit      uint32
	drained   uint64
	doorbells uint64
	cycles    uint64
	sbBuilt   uint64
}

func runEngine(t *testing.T, wl string, engine kernel.Engine, traced bool) engineResult {
	t.Helper()
	spec, ok := workload.ByName(wl)
	if !ok {
		t.Fatalf("no workload %q", wl)
	}
	sys, pid, err := experiment.Boot(spec, kernel.Ultrix, traced, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the execution tier the same way kernel.Boot applies
	// BootConfig.Engine (experiment.Boot's cache shares the images, so
	// the tier is set on the booted machine directly).
	switch engine {
	case kernel.EngineReference:
		sys.M.CPU.SetPredecode(false)
	case kernel.EnginePredecode:
		sys.M.CPU.SetSuperblocks(false)
	}
	obs := &streamObs{}
	if traced && engine != kernel.EngineSuperblock {
		// Traced reference and predecode runs also compare the full
		// Observer event stream. The superblock face runs with the
		// observer detached — the batched dispatch requires it (an
		// attached observer forces per-Step execution) — and is
		// instead pinned by the drained trace-word hash below, the
		// byte-level identity the paper's analyses depend on.
		// Untraced runs always leave the observer detached so the
		// predecoded engine goes through the batched fast path — the
		// same configuration BENCH_cpu.json measures.
		sys.M.CPU.Obs = obs
	}
	// Hash every drained trace word in order: the emitted stream,
	// not just its length, must be identical across engines.
	tr := &streamObs{}
	sys.OnTrace = func(words []uint32) {
		for _, w := range words {
			tr.mix(w)
		}
	}
	if err := sys.Run(experiment.RunBudget); err != nil {
		t.Fatalf("%s engine=%v: %v", wl, engine, err)
	}
	c := sys.M.CPU
	res := engineResult{
		gpr: c.GPR, hi: c.HI, lo: c.LO, pc: c.PC,
		cp0: c.CP0, tlb: c.TLB, stat: c.Stat,
		eventHash: obs.h, events: obs.n,
		traceHash: tr.h, traceN: tr.n,
		console: sys.Console(), exit: sys.ExitStatus(pid),
		drained: sys.DrainedWords, doorbells: sys.Doorbells,
		cycles:  sys.M.Cycles(),
		sbBuilt: c.SuperblockStats().Built,
	}
	for i, f := range c.FPR {
		res.fprBits[i] = math.Float64bits(f)
	}
	return res
}

// runFlowEngine boots wl traced under the given rewriter liveness mode
// and runs it to completion on the reference engine with the observer
// detached, returning the final state and the booted system.
func runFlowEngine(t *testing.T, wl string, flow epoxie.FlowMode) (engineResult, *kernel.System) {
	t.Helper()
	spec, ok := workload.ByName(wl)
	if !ok {
		t.Fatalf("no workload %q", wl)
	}
	sys, pid, err := experiment.BootFlow(spec, kernel.Ultrix, true, 1, flow)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(experiment.RunBudget); err != nil {
		t.Fatalf("%s flow=%d: %v", wl, flow, err)
	}
	c := sys.M.CPU
	res := engineResult{
		gpr: c.GPR, hi: c.HI, lo: c.LO, pc: c.PC,
		cp0: c.CP0, tlb: c.TLB, stat: c.Stat,
		console: sys.Console(), exit: sys.ExitStatus(pid),
		drained: sys.DrainedWords, doorbells: sys.Doorbells,
		cycles: sys.M.Cycles(),
	}
	for i, f := range c.FPR {
		res.fprBits[i] = math.Float64bits(f)
	}
	return res, sys
}

// TestDataflowDifferentialOracle proves the liveness-driven
// dead-register elision sound by differential execution.
//
// The rigorous comparison uses FlowPadded: the rewriter makes exactly
// the FlowOn elision decisions but replaces each elided save with a
// nop, so the padded and FlowOff images have identical layout and the
// two traced boots are deterministic down to the cycle. Every
// architectural register except ra, the PC, HI/LO, the retired-
// instruction count, and every externally visible output must then be
// bit-identical. ra is excluded by construction: at an elided site
// bbtrace restores a stale saved value, which is harmless exactly when
// the analysis was right that ra is dead — any consumption of the
// stale value diverges some downstream register, output, or trace
// word, which this oracle catches.
//
// The FlowOn boot then checks the real (shrunk-layout) image
// end-to-end: same computation (console and exit status), strictly
// fewer retired instructions, and actual elisions recorded.
func TestDataflowDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced workload boots")
	}
	for _, wl := range []string{"sed", "lisp"} {
		wl := wl
		t.Run(wl, func(t *testing.T) {
			off, _ := runFlowEngine(t, wl, epoxie.FlowOff)
			pad, psys := runFlowEngine(t, wl, epoxie.FlowPadded)

			if pf := psys.Procs[len(psys.Procs)-1].Exe.Instr.Flow; pf.SavesElided == 0 {
				t.Fatalf("padded build elided nothing (%d save sites): oracle compares nothing", pf.SaveSites)
			}
			offGPR, padGPR := off.gpr, pad.gpr
			offGPR[31], padGPR[31] = 0, 0 // ra: stale-by-design at elided sites
			if offGPR != padGPR {
				t.Error("final GPR state (minus ra) diverges between FlowOff and FlowPadded")
			}
			if off.fprBits != pad.fprBits {
				t.Error("final FPR state diverges")
			}
			if off.hi != pad.hi || off.lo != pad.lo || off.pc != pad.pc {
				t.Errorf("HI/LO/PC diverge: %x/%x/%x vs %x/%x/%x",
					off.hi, off.lo, off.pc, pad.hi, pad.lo, pad.pc)
			}
			if off.stat.Instret != pad.stat.Instret {
				t.Errorf("retired instructions diverge: %d vs %d (layouts should be identical)",
					off.stat.Instret, pad.stat.Instret)
			}
			if off.stat.Exceptions != pad.stat.Exceptions || off.stat.Interrupts != pad.stat.Interrupts ||
				off.stat.Syscalls != pad.stat.Syscalls {
				t.Errorf("exception/interrupt/syscall counts diverge: %d/%d/%d vs %d/%d/%d",
					off.stat.Exceptions, off.stat.Interrupts, off.stat.Syscalls,
					pad.stat.Exceptions, pad.stat.Interrupts, pad.stat.Syscalls)
			}
			if off.console != pad.console {
				t.Errorf("console output diverges: %q vs %q", off.console, pad.console)
			}
			if off.exit != pad.exit {
				t.Errorf("exit status diverges: %d vs %d", off.exit, pad.exit)
			}
			if off.drained != pad.drained || off.doorbells != pad.doorbells {
				t.Errorf("trace stream diverges: %d words/%d doorbells vs %d/%d",
					off.drained, off.doorbells, pad.drained, pad.doorbells)
			}
			if off.cycles != pad.cycles {
				t.Errorf("machine time diverges: %d vs %d cycles", off.cycles, pad.cycles)
			}

			on, osys := runFlowEngine(t, wl, epoxie.FlowOn)
			if on.console != off.console {
				t.Errorf("FlowOn console output diverges: %q vs %q", on.console, off.console)
			}
			if on.exit != off.exit {
				t.Errorf("FlowOn exit status diverges: %d vs %d", on.exit, off.exit)
			}
			if on.stat.Instret >= off.stat.Instret {
				t.Errorf("FlowOn retired %d instructions, conservative build %d: elision saved nothing",
					on.stat.Instret, off.stat.Instret)
			}
			of := osys.Procs[len(osys.Procs)-1].Exe.Instr.Flow
			if of.SavesElided == 0 || of.BytesSaved == 0 {
				t.Errorf("FlowOn build records no elision (%+v)", of)
			}
			// The compiler only emits sp-based frame references, so the
			// EA strength reduction must at least route them to the
			// specialized memtrace_sp entry (rebasing proper is covered
			// by hand-written fp-frame unit tests).
			if of.EASites == 0 || of.EASpecial == 0 {
				t.Errorf("FlowOn build specialized no EA sites (%d sites, %d specialized)",
					of.EASites, of.EASpecial)
			}
		})
	}
}

// compareFace checks one fast engine's run against the reference run.
// The observer stream is compared only when both runs attached one
// (the superblock face runs observer-detached by construction).
func compareFace(t *testing.T, name string, ref, fast engineResult) {
	t.Helper()
	if fast.events != 0 && (ref.events != fast.events || ref.eventHash != fast.eventHash) {
		t.Errorf("observer streams diverge: %d events hash %x (reference) vs %d events hash %x (%s)",
			ref.events, ref.eventHash, fast.events, fast.eventHash, name)
	}
	if ref.gpr != fast.gpr {
		t.Errorf("final GPR state diverges (%s)", name)
	}
	if ref.fprBits != fast.fprBits {
		t.Errorf("final FPR state diverges (%s)", name)
	}
	if ref.hi != fast.hi || ref.lo != fast.lo || ref.pc != fast.pc {
		t.Errorf("HI/LO/PC diverge (%s): %x/%x/%x vs %x/%x/%x",
			name, ref.hi, ref.lo, ref.pc, fast.hi, fast.lo, fast.pc)
	}
	if ref.cp0 != fast.cp0 {
		t.Errorf("CP0 diverges (%s): %+v vs %+v", name, ref.cp0, fast.cp0)
	}
	if ref.tlb != fast.tlb {
		t.Errorf("TLB contents diverge (%s)", name)
	}
	if ref.stat != fast.stat {
		t.Errorf("Stat diverges (%s): %+v vs %+v", name, ref.stat, fast.stat)
	}
	if ref.console != fast.console {
		t.Errorf("console output diverges (%s): %q vs %q", name, ref.console, fast.console)
	}
	if ref.exit != fast.exit {
		t.Errorf("exit status diverges (%s): %d vs %d", name, ref.exit, fast.exit)
	}
	if ref.drained != fast.drained || ref.doorbells != fast.doorbells {
		t.Errorf("trace stream diverges (%s): %d words/%d doorbells vs %d/%d",
			name, ref.drained, ref.doorbells, fast.drained, fast.doorbells)
	}
	if ref.traceN != fast.traceN || ref.traceHash != fast.traceHash {
		t.Errorf("drained trace words diverge (%s): %d words hash %x vs %d words hash %x",
			name, ref.traceN, ref.traceHash, fast.traceN, fast.traceHash)
	}
	if ref.cycles != fast.cycles {
		t.Errorf("machine time diverges (%s): %d vs %d cycles", name, ref.cycles, fast.cycles)
	}
}

func TestWorkloadDifferentialOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced workload boots")
	}
	for _, traced := range []bool{true, false} {
		for _, wl := range []string{"sed", "lisp"} {
			traced, wl := traced, wl
			name := wl + "/untraced"
			if traced {
				name = wl + "/traced"
			}
			t.Run(name, func(t *testing.T) {
				ref := runEngine(t, wl, kernel.EngineReference, traced)
				pd := runEngine(t, wl, kernel.EnginePredecode, traced)
				sb := runEngine(t, wl, kernel.EngineSuperblock, traced)
				compareFace(t, "predecode", ref, pd)
				compareFace(t, "superblock", ref, sb)
				if ref.stat.Instret == 0 {
					t.Error("workload retired no instructions")
				}
				if pd.sbBuilt != 0 {
					t.Errorf("predecode face built %d superblocks: tier separation broken", pd.sbBuilt)
				}
				if sb.sbBuilt == 0 {
					t.Error("superblock face built no superblocks: the tier was not exercised")
				}
				if t.Failed() {
					// An oracle mismatch is a flight-recorder dump
					// trigger: the recorded exception/TLB/doorbell
					// stream of the diverging runs is the first clue.
					obspkg.Failure("oracle_mismatch",
						name+": engines diverged")
				}
			})
		}
	}
}
