// Package systrace is a full reimplementation, as a deterministic
// simulation study, of the tracing systems described in
//
//	J. Bradley Chen, David W. Wall, Anita Borg.
//	Software Methods for System Address Tracing: Implementation and
//	Validation. WRL Research Report 94/6 (HotOS 1993).
//
// The library contains, built from scratch:
//
//   - a MIPS-R3000-like machine (CPU with branch delay slots and a
//     software-managed TLB, memory, disk/clock/console devices);
//   - a compiler toolchain in the style of Mahler (typed IR, code
//     generator, assembler, linker with symbol/relocation/basic-block
//     tables);
//   - epoxie, the link-time instrumenter that inserts bbtrace/memtrace
//     calls, steals three registers against in-memory shadows, and
//     performs all address correction statically (~2x text growth);
//   - pixie, the executable-level contrast tool with a runtime
//     translation table (~4-6x growth) and basic-block counting;
//   - two traced operating systems — a monolithic "Ultrix-like" kernel
//     and a microkernel "Mach-like" system with a user-level UX file
//     server — implementing per-process trace buffers, the in-kernel
//     buffer with generation/analysis mode switching, nested-exception
//     trace-state handling, TLB drop-ins, and the counted idle loop;
//   - the trace format and parsing library, the DECstation 5000/200
//     memory-system models (execution-driven and trace-driven), the
//     twelve Table-1 workloads, and the full validation harness that
//     regenerates every table and figure of the paper.
//
// This file is the facade: thin, documented re-exports of the pieces a
// downstream user needs. The examples/ directory shows the API in use;
// cmd/experiments regenerates the paper's evaluation.
package systrace

import (
	"systrace/internal/epoxie"
	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/link"
	"systrace/internal/mahler"
	"systrace/internal/memsys"
	"systrace/internal/obj"
	"systrace/internal/pixie"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

// OS flavors.
const (
	Ultrix = kernel.Ultrix
	Mach   = kernel.Mach
)

// CPU execution tiers for BootConfig.Engine.
const (
	EngineAuto       = kernel.EngineAuto
	EngineReference  = kernel.EngineReference
	EnginePredecode  = kernel.EnginePredecode
	EngineSuperblock = kernel.EngineSuperblock
)

// Re-exported core types. The underlying packages carry the full
// documentation.
type (
	// Module is a Mahler intermediate-language compilation unit.
	Module = mahler.Module
	// Program is a built user program (original + instrumented).
	Program = userland.Program
	// Executable is a linked image.
	Executable = obj.Executable
	// System is a booted simulated machine running one of the kernels.
	System = kernel.System
	// BootConfig configures a system instance.
	BootConfig = kernel.BootConfig
	// BootProc describes a process started at boot.
	BootProc = kernel.BootProc
	// Flavor selects the operating system personality.
	Flavor = kernel.Flavor
	// Engine pins the CPU execution tier for a boot.
	Engine = kernel.Engine
	// Event is one reconstructed trace reference.
	Event = trace.Event
	// Parser is the trace parsing library.
	Parser = trace.Parser
	// SideTable maps basic-block records to static block information.
	SideTable = trace.SideTable
	// TraceSim is the trace-driven memory-system simulator.
	TraceSim = memsys.TraceSim
	// Timing is the execution-driven memory-system model.
	Timing = memsys.Timing
	// Measured is a direct measurement of the uninstrumented system.
	Measured = experiment.Measured
	// Predicted is a trace-driven prediction.
	Predicted = experiment.Predicted
	// Distortion is the self-measurement dashboard: how much tracing
	// perturbs the traced system (§4).
	Distortion = experiment.Distortion
	// Registry is the telemetry metrics registry.
	Registry = telemetry.Registry
	// MetricsSnapshot is a point-in-time copy of a Registry's series.
	MetricsSnapshot = telemetry.Snapshot
	// Workload describes one Table-1 program.
	Workload = workload.Spec
)

// NewModule starts a Mahler IR module; see internal/mahler for the
// builder API.
func NewModule(name string) *Module { return mahler.NewModule(name) }

// BuildProgram compiles Mahler modules (plus the libc) into original
// and epoxie-instrumented executables with identical data layout.
func BuildProgram(name string, mods []*Module) (*Program, error) {
	return userland.Build(name, mods, mahler.Options{})
}

// BuildKernel builds one of the operating systems; traced kernels are
// epoxie-instrumented and carry the tracing subsystem.
func BuildKernel(flavor Flavor, traced bool) (*Executable, error) {
	return kernel.Build(kernel.Config{Flavor: flavor, Traced: traced})
}

// BuildDiskImage lays out a ramdisk holding the given files.
func BuildDiskImage(files map[string][]byte) ([]byte, error) {
	return kernel.BuildDiskImage(files)
}

// DefaultBoot returns the standard configuration for a flavor.
func DefaultBoot(f Flavor) BootConfig { return kernel.DefaultBoot(f) }

// Boot loads a kernel and processes onto a fresh machine.
func Boot(kernelExe *Executable, procs []BootProc, cfg BootConfig) (*System, error) {
	return kernel.Boot(kernelExe, procs, cfg)
}

// NewParser builds a trace parser over the kernel's side table.
func NewParser(kernelTable *SideTable) *Parser { return trace.NewParser(kernelTable) }

// NewSideTable builds the record-address lookup table of an
// instrumented image.
func NewSideTable(e *Executable) *SideTable {
	if e.Instr == nil {
		return trace.NewSideTable(nil)
	}
	return trace.NewSideTable(e.Instr.Blocks)
}

// NewTraceSim builds the analysis-side memory-system simulator for the
// DECstation 5000/200 model.
func NewTraceSim(policy memsys.PagePolicy, ramBytes uint32, seed uint32) *TraceSim {
	return memsys.NewTraceSim(memsys.DECstation5000(), policy, ramBytes>>12, seed)
}

// NewTiming builds the execution-driven DECstation 5000/200 model; use
// System.M.AttachTiming to connect it.
func NewTiming() *Timing { return memsys.NewTiming(memsys.DECstation5000()) }

// Page placement policies for the trace-driven simulator.
const (
	PolicySequential = memsys.PolicySequential
	PolicyRandom     = memsys.PolicyRandom
	PolicyColoring   = memsys.PolicyColoring
)

// Workloads returns the Table-1 suite.
func Workloads() []Workload { return workload.All() }

// WorkloadByName looks up one Table-1 workload.
func WorkloadByName(name string) (Workload, bool) { return workload.ByName(name) }

// Measure runs the uninstrumented workload under the execution-driven
// machine model (the paper's direct-measurement side).
func Measure(spec Workload, flavor Flavor, seed uint32) (*Measured, error) {
	return experiment.Measure(spec, flavor, seed)
}

// Predict runs the traced system and the trace-driven simulation (the
// paper's prediction side).
func Predict(spec Workload, flavor Flavor, seed uint32) (*Predicted, error) {
	return experiment.Predict(spec, flavor, seed)
}

// NewRegistry builds an empty telemetry registry; pass it to Distort
// (or the subsystems' RegisterMetrics methods) and export it with
// WritePrometheus or WriteJSON.
func NewRegistry() *Registry { return telemetry.New() }

// Distort runs the workload untraced and traced, computes the §4
// distortion factors, and (when reg is non-nil) registers every
// subsystem's series plus the dashboard gauges on it.
func Distort(spec Workload, flavor Flavor, seed uint32, reg *Registry) (*Distortion, error) {
	return experiment.Distort(spec, flavor, seed, reg)
}

// Instrument rewrites object files with epoxie and links original and
// instrumented executables (see internal/epoxie for details).
func Instrument(objs []*obj.File, opts link.Options) (*epoxie.Build, error) {
	return epoxie.BuildInstrumented(objs, opts, epoxie.Config{}, epoxie.UserRuntime)
}

// PixieTrace rewrites a linked executable pixie-style with a runtime
// translation table.
func PixieTrace(e *Executable) (*pixie.Result, error) {
	return pixie.Rewrite(e, pixie.ModeTrace)
}

// Figure2 reproduces the paper's instrumentation example.
func Figure2() epoxie.Figure2Output { return epoxie.Figure2() }
