package systrace_test

// Ablation benchmarks for the design choices DESIGN.md calls out:
// each one toggles a single mechanism and reports the quantity the
// paper uses to justify the choice.

import (
	"testing"

	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/memsys"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/trace"
)

// ablationModule is a self-contained compute kernel (no syscalls) with
// enough basic blocks, memory traffic, and pinned locals that both the
// record format and the register machinery are exercised: array
// initialization, a recursive summation, and a hash-style scramble
// loop over a 4 KB table.
func ablationModule() *m.Module {
	mod := m.NewModule("ablation")
	mod.Global("tab", 4096)
	rec := mod.Func("recsum", m.TInt)
	rec.Param("n", m.TInt)
	rec.Code(func(b *m.Block) {
		b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Return(m.I(0)) }, nil)
		b.Return(m.Add(m.LoadW(m.Add(m.Addr("tab", 0), m.Mul(m.And(m.V("n"), m.I(1023)), m.I(4)))),
			m.Call("recsum", m.Sub(m.V("n"), m.I(1)))))
	})
	f := mod.Func("main", m.TInt)
	f.Locals("a", "b", "c", "d", "e", "g", "h", "i", "s")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(1024), func(b *m.Block) {
			b.StoreW(m.Add(m.Addr("tab", 0), m.Mul(m.V("i"), m.I(4))),
				m.Xor(m.Mul(m.V("i"), m.U(2654435761)), m.I(0x5bd1)))
		})
		b.Assign("s", m.I(0))
		b.For("i", m.I(0), m.I(64), func(b *m.Block) {
			b.Assign("a", m.LoadW(m.Add(m.Addr("tab", 0), m.Mul(m.And(m.Mul(m.V("i"), m.I(37)), m.I(1023)), m.I(4)))))
			b.Assign("s", m.Add(m.V("s"), m.And(m.V("a"), m.I(0xffff))))
		})
		b.Return(m.Add(m.V("s"), m.Call("recsum", m.I(200))))
	})
	return mod
}

func buildAblation(b *testing.B, opt m.Options, cfg epoxie.Config) *epoxie.Build {
	b.Helper()
	o, err := ablationModule().Compile(opt)
	if err != nil {
		b.Fatal(err)
	}
	bb, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name: "ablation", TextBase: sim.BareTextBase, DataBase: sim.BareDataBase,
	}, cfg, epoxie.BareRuntime)
	if err != nil {
		b.Fatal(err)
	}
	return bb
}

// BenchmarkAblationRecordFormat compares the Ultrix-style trace record
// (one word per basic block, lengths resolved through the static side
// table, §3.5) against the Tunix-style alternative that carries a
// length word in the trace itself (§3.4). The address-only format is
// what makes the one-word-per-entry stream possible; the in-trace
// format costs one extra word per basic-block record.
func BenchmarkAblationRecordFormat(b *testing.B) {
	bb := buildAblation(b, m.Options{}, epoxie.Config{})
	for i := 0; i < b.N; i++ {
		mach := sim.NewBareMachine(bb.Instr)
		if err := mach.Run(200_000_000); err != nil {
			b.Fatal(err)
		}
		words := sim.TraceWords(mach)
		p := trace.NewParser(nil)
		p.AddProcess(0, trace.NewSideTable(bb.Instr.Instr.Blocks))
		p.CountBlocks()
		events, err := p.Parse(words, nil)
		if err != nil {
			b.Fatal(err)
		}
		var blocks uint64
		for _, n := range p.BlockCounts() {
			blocks += n
		}
		addrOnly := float64(len(words))
		tunix := float64(uint64(len(words)) + blocks) // + one length word per record
		b.ReportMetric(addrOnly*4/float64(len(events)), "addronly-B/ref")
		b.ReportMetric(tunix*4/float64(len(events)), "inlen-B/ref")
		b.ReportMetric(tunix/addrOnly, "size-x")
	}
}

// BenchmarkAblationRegisterStrategy compares link-time register
// *stealing* (epoxie: the compiler uses all registers; instrumentation
// shadows s5..s7 where live, §3.2) against Titan/Tunix-style compiler
// *reservation* (the compiler never touches the trace registers,
// §3.4). Reservation simplifies the rewriter but pessimizes every
// binary, traced or not; stealing keeps uninstrumented code optimal
// and pays shadow-slot traffic only in instrumented blocks that
// actually use the stolen registers.
func BenchmarkAblationRegisterStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		steal := buildAblation(b, m.Options{}, epoxie.Config{})
		reserve := buildAblation(b, m.Options{ReserveXRegs: true}, epoxie.Config{})

		// Both strategies must compute the same answer.
		vs, _, err := sim.RunResult(steal.Instr, 200_000_000)
		if err != nil {
			b.Fatal(err)
		}
		vr, _, err := sim.RunResult(reserve.Instr, 200_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if vs != vr {
			b.Fatalf("strategies disagree: steal v0=%d reserve v0=%d", vs, vr)
		}

		// Reservation's cost is carried by the *uninstrumented* binary
		// (spills where pinned registers ran out); stealing's cost is
		// carried by the instrumented one (shadow slots).
		b.ReportMetric(float64(len(reserve.Orig.Text))/float64(len(steal.Orig.Text)), "resv-origtext-x")
		b.ReportMetric(float64(len(steal.Instr.Text))/float64(len(steal.Orig.Text)), "steal-growth-x")
		b.ReportMetric(float64(len(reserve.Instr.Text))/float64(len(reserve.Orig.Text)), "resv-growth-x")
	}
}

// BenchmarkAblationUTLBSynthesis toggles the trace-driven simulator's
// UTLB-handler synthesis (§4.1: "rather than tracing the UTLB miss
// handler, we modified our simulator to synthesize the activity of the
// UTLB miss handler"): without it, every TLB refill's nine instruction
// fetches vanish from the predicted instruction and stall counts.
func BenchmarkAblationUTLBSynthesis(b *testing.B) {
	mkEvents := func() []trace.Event {
		var evs []trace.Event
		// A user working set of 64 pages touched in a scattered order,
		// several sweeps, so refills are plentiful.
		for sweep := 0; sweep < 8; sweep++ {
			for p := uint32(0); p < 64; p++ {
				page := (p*17 + uint32(sweep)) % 64
				va := 0x00400000 + page*4096 + (p%16)*64
				evs = append(evs, trace.Event{Kind: trace.EvIFetch, Addr: va, Size: 4})
				evs = append(evs, trace.Event{Kind: trace.EvLoad, Addr: 0x10000000 + page*4096, Size: 4})
			}
		}
		return evs
	}
	for i := 0; i < b.N; i++ {
		cfg := memsys.DECstation5000()
		son := memsys.NewTraceSim(cfg, memsys.PolicySequential, 16384, 1)
		soff := memsys.NewTraceSim(cfg, memsys.PolicySequential, 16384, 1)
		soff.UTLBHandlerN = 0
		son.Events(mkEvents())
		soff.Events(mkEvents())
		if son.TLB.Misses == 0 {
			b.Fatal("workload produced no TLB misses")
		}
		if son.Instr <= soff.Instr {
			b.Fatal("synthesis added no instruction activity")
		}
		b.ReportMetric(float64(son.TLB.Misses), "tlb-misses")
		b.ReportMetric(float64(son.Instr-soff.Instr)/float64(son.TLB.Misses), "synth-instr/miss")
		b.ReportMetric(float64(son.MemStalls()-soff.MemStalls()), "synth-stall-cyc")
	}
}
