// Command tracesys boots a traced system (kernel + workload), runs it
// to completion, and reports tracing statistics: trace volume, mode
// switches, interleaving, idle activity. With -metrics it also runs
// the untraced baseline and reports the distortion dashboard, or
// emits the full telemetry document machine-readably.
//
//	tracesys -os mach -workload compress -buf 4194304
//	tracesys -workload sed -metrics text
//	tracesys -workload sed -metrics prom > metrics.prom
//
// With -serve the experiment runs in the background while an HTTP
// observability endpoint serves live telemetry, phase spans, the
// flight-recorder event window, the guest-PC profile, and the Go
// runtime's own pprof handlers:
//
//	tracesys -workload sed -serve localhost:6060 &
//	curl localhost:6060/metrics      # Prometheus exposition
//	curl localhost:6060/spans        # text Gantt of phase spans
//	curl localhost:6060/profile      # folded stacks (flamegraph input)
//	go tool pprof localhost:6060/debug/pprof/profile
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/machine"
	"systrace/internal/obj"
	"systrace/internal/obs"
	"systrace/internal/telemetry"
	"systrace/internal/workload"
)

func main() {
	defer obs.DumpOnPanic()
	osName := flag.String("os", "ultrix", "ultrix or mach")
	name := flag.String("workload", "sed", "Table-1 workload")
	seed := flag.Uint("seed", 1, "page placement seed")
	metrics := flag.String("metrics", "off",
		"off, text (report + distortion dashboard), prom, or json (telemetry document only)")
	serve := flag.String("serve", "",
		"serve live metrics/spans/events/profile/pprof on this address while running, then keep serving")
	flag.Parse()

	flavor := kernel.Ultrix
	if *osName == "mach" {
		flavor = kernel.Mach
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracesys: unknown workload %q\n", *name)
		os.Exit(1)
	}
	switch *metrics {
	case "off", "text", "prom", "json":
	default:
		// Reject up front: the runs below take real time.
		fmt.Fprintf(os.Stderr, "tracesys: unknown -metrics mode %q\n", *metrics)
		os.Exit(2)
	}

	if *serve != "" {
		serveObs(*serve, spec, flavor, uint32(*seed))
		return
	}

	if *metrics == "off" {
		pred, err := experiment.Predict(spec, flavor, uint32(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
		report(pred)
		return
	}

	reg := telemetry.New()
	d, err := experiment.Distort(spec, flavor, uint32(*seed), reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesys:", err)
		os.Exit(1)
	}
	switch *metrics {
	case "text":
		report(d.Pred)
		fmt.Println()
		fmt.Print(d.Format())
	case "prom":
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
	case "json":
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
	}
}

// serveObs runs the workload with the guest-PC sampler attached while
// an HTTP server exposes the observability surface: /metrics(.json),
// /spans(.json), /events, /profile, and /debug/pprof/*. The traced
// boot runs first (it feeds the spans, events, and profile), then the
// distortion experiment fills the telemetry registry; the server keeps
// serving after both finish so the final state stays inspectable.
func serveObs(addr string, spec workload.Spec, flavor kernel.Flavor, seed uint32) {
	reg := telemetry.New()
	prof := obs.NewProfile()

	sys, _, err := experiment.Boot(spec, flavor, true, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesys:", err)
		os.Exit(1)
	}
	sys.M.CPU.SetProfiler(4096, prof.Hit)
	procs := map[uint32]*obj.Executable{}
	for i, bp := range sys.Procs {
		procs[uint32(i+1)] = bp.Exe
	}
	res := obs.NewImageResolver(sys.Kernel, procs)

	go func() {
		if err := sys.Run(experiment.RunBudget); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys: run:", err)
			return
		}
		if _, err := experiment.Distort(spec, flavor, seed, reg); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys: distort:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "tracesys: runs complete; still serving")
	}()

	fmt.Fprintf(os.Stderr, "tracesys: serving observability on http://%s\n", addr)
	if err := http.ListenAndServe(addr, obs.Handler(reg, prof, res)); err != nil {
		fmt.Fprintln(os.Stderr, "tracesys:", err)
		os.Exit(1)
	}
}

func report(pred *experiment.Predicted) {
	fmt.Printf("traced %s on %v:\n", pred.Name, pred.Flavor)
	fmt.Printf("  traced machine instructions: %d\n", pred.TracedInstr)
	fmt.Printf("  trace words drained:          %d (%d analysis phases)\n", pred.TraceWords, pred.ModeSwitches)
	fmt.Printf("  reconstructed references:     %d\n", pred.Events)
	fmt.Printf("  idle-loop instructions:       %d (x%d = I/O stall estimate)\n", pred.IdleInstr, experiment.IdleScale)
	fmt.Printf("  simulated TLB misses:         %d\n", pred.UTLBMisses)
	fmt.Printf("  predicted time: %.4fs = cpu %.4f + mem %.4f + fp %.4f + io %.4f\n",
		pred.Seconds,
		machine.Seconds(pred.CPUCycles), machine.Seconds(pred.MemStalls),
		machine.Seconds(pred.ArithStalls), machine.Seconds(pred.IOStalls))
	fmt.Printf("  workload result: %d\n", pred.Result)
}
