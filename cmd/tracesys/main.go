// Command tracesys boots a traced system (kernel + workload), runs it
// to completion, and reports tracing statistics: trace volume, mode
// switches, interleaving, idle activity. With -metrics it also runs
// the untraced baseline and reports the distortion dashboard, or
// emits the full telemetry document machine-readably.
//
//	tracesys -os mach -workload compress -buf 4194304
//	tracesys -workload sed -metrics text
//	tracesys -workload sed -metrics prom > metrics.prom
package main

import (
	"flag"
	"fmt"
	"os"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/machine"
	"systrace/internal/telemetry"
	"systrace/internal/workload"
)

func main() {
	osName := flag.String("os", "ultrix", "ultrix or mach")
	name := flag.String("workload", "sed", "Table-1 workload")
	seed := flag.Uint("seed", 1, "page placement seed")
	metrics := flag.String("metrics", "off",
		"off, text (report + distortion dashboard), prom, or json (telemetry document only)")
	flag.Parse()

	flavor := kernel.Ultrix
	if *osName == "mach" {
		flavor = kernel.Mach
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracesys: unknown workload %q\n", *name)
		os.Exit(1)
	}
	switch *metrics {
	case "off", "text", "prom", "json":
	default:
		// Reject up front: the runs below take real time.
		fmt.Fprintf(os.Stderr, "tracesys: unknown -metrics mode %q\n", *metrics)
		os.Exit(2)
	}

	if *metrics == "off" {
		pred, err := experiment.Predict(spec, flavor, uint32(*seed))
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
		report(pred)
		return
	}

	reg := telemetry.New()
	d, err := experiment.Distort(spec, flavor, uint32(*seed), reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracesys:", err)
		os.Exit(1)
	}
	switch *metrics {
	case "text":
		report(d.Pred)
		fmt.Println()
		fmt.Print(d.Format())
	case "prom":
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
	case "json":
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracesys:", err)
			os.Exit(1)
		}
	}
}

func report(pred *experiment.Predicted) {
	fmt.Printf("traced %s on %v:\n", pred.Name, pred.Flavor)
	fmt.Printf("  traced machine instructions: %d\n", pred.TracedInstr)
	fmt.Printf("  trace words drained:          %d (%d analysis phases)\n", pred.TraceWords, pred.ModeSwitches)
	fmt.Printf("  reconstructed references:     %d\n", pred.Events)
	fmt.Printf("  idle-loop instructions:       %d (x%d = I/O stall estimate)\n", pred.IdleInstr, experiment.IdleScale)
	fmt.Printf("  simulated TLB misses:         %d\n", pred.UTLBMisses)
	fmt.Printf("  predicted time: %.4fs = cpu %.4f + mem %.4f + fp %.4f + io %.4f\n",
		pred.Seconds,
		machine.Seconds(pred.CPUCycles), machine.Seconds(pred.MemStalls),
		machine.Seconds(pred.ArithStalls), machine.Seconds(pred.IOStalls))
	fmt.Printf("  workload result: %d\n", pred.Result)
}
