// Command tracestat runs one workload both untraced and traced and
// emits a single machine-readable telemetry document: every subsystem
// counter (labelled run="untraced"/"traced") plus the computed
// distortion gauges. It is the scriptable face of the telemetry
// layer; tracesys -metrics text is the human one.
//
//	tracestat -workload sed -format json
//	tracestat -workload egrep -os mach -format prom
//
// Two observability modes replace the metrics document:
//
//	tracestat -workload sed -spans            # phase-span text Gantt
//	tracestat -workload sed -spans -format json
//	tracestat -workload sed -profile -format folded > sed.folded
//	  # guest-PC profile of an untraced boot; render with
//	  # flamegraph.pl sed.folded > sed.svg
//	tracestat -workload sed -profile          # per-function table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/obj"
	"systrace/internal/obs"
	"systrace/internal/telemetry"
	"systrace/internal/verify"
	"systrace/internal/workload"
)

func main() {
	defer obs.DumpOnPanic()
	osName := flag.String("os", "ultrix", "ultrix or mach")
	name := flag.String("workload", "sed", "Table-1 workload")
	seed := flag.Uint("seed", 1, "page placement seed")
	format := flag.String("format", "", "json, prom, or text (with -profile: folded, text, or json)")
	spansOut := flag.Bool("spans", false, "run the experiments, then emit the phase-span timeline instead of metrics")
	profileOut := flag.Bool("profile", false, "profile an untraced boot by guest PC and emit the result instead of metrics")
	every := flag.Uint64("profile-every", 4096, "instructions between guest-PC samples")
	flag.Parse()

	flavor := kernel.Ultrix
	if *osName == "mach" {
		flavor = kernel.Mach
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracestat: unknown workload %q\n", *name)
		os.Exit(1)
	}
	if *profileOut {
		if *format == "" {
			*format = "text"
		}
		runProfile(spec, flavor, uint32(*seed), *every, *format)
		return
	}
	if *format == "" {
		// The metrics document is for machines, the span Gantt for eyes.
		*format = "json"
		if *spansOut {
			*format = "text"
		}
	}
	switch *format {
	case "json", "prom", "text":
	default:
		// Reject up front: the runs below take real time.
		fmt.Fprintf(os.Stderr, "tracestat: unknown -format %q\n", *format)
		os.Exit(2)
	}

	reg := telemetry.New()
	d, err := experiment.Distort(spec, flavor, uint32(*seed), reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}

	// Statically verify the instrumented image and publish the per-rule
	// pass/fail counts next to the distortion gauges. The program comes
	// out of the experiment build cache, so this never rebuilds it.
	prog, err := experiment.Program(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	vres, err := verify.Executable(prog.Instr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat: verify:", err)
		os.Exit(1)
	}
	vres.RegisterMetrics(reg, telemetry.L("image", spec.Name))

	// Check the traced run's own stream against the instrumented CFGs
	// and publish the per-rule conformance counters alongside.
	conf, err := experiment.Conformance(spec, flavor, uint32(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat: conformance:", err)
		os.Exit(1)
	}
	conf.RegisterMetrics(reg, telemetry.L("stream", conf.Name))

	if *spansOut {
		// The experiments above left their phase spans in the obs ring;
		// render the timeline they produced.
		switch *format {
		case "json":
			if err := obs.WriteTimelineJSON(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "tracestat:", err)
				os.Exit(1)
			}
		default:
			obs.WriteGantt(os.Stdout)
		}
		return
	}

	switch *format {
	case "json":
		doc := struct {
			Workload string             `json:"workload"`
			OS       string             `json:"os"`
			Seed     uint32             `json:"seed"`
			Metrics  telemetry.Snapshot `json:"metrics"`
		}{spec.Name, flavor.String(), uint32(*seed), reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
	case "prom":
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
	case "text":
		fmt.Print(d.Format())
		status := "clean"
		if !vres.Clean() {
			status = fmt.Sprintf("%d diagnostics", len(vres.Diags))
		}
		fmt.Printf("static verification: %d blocks, %s\n", vres.Blocks, status)
		for _, diag := range vres.Diags {
			fmt.Printf("  %s\n", diag)
		}
		cstatus := "clean"
		if !conf.Clean() {
			cstatus = fmt.Sprintf("%d diagnostics", len(conf.Diags))
		}
		fmt.Printf("trace conformance: %d words, %d records, %d markers, %s\n",
			conf.Words, conf.Records, conf.Markers, cstatus)
		for _, diag := range conf.Diags {
			fmt.Printf("  %s\n", diag)
		}
	}
}

// runProfile boots the workload untraced with the guest-PC sampler
// attached and emits the profile: folded stacks (flamegraph input),
// the per-function host-time table, or the table as JSON.
func runProfile(spec workload.Spec, flavor kernel.Flavor, seed uint32, every uint64, format string) {
	switch format {
	case "folded", "text", "json":
	default:
		fmt.Fprintf(os.Stderr, "tracestat: unknown -profile -format %q (folded, text, or json)\n", format)
		os.Exit(2)
	}
	prof := obs.NewProfile()
	sys, _, err := experiment.Boot(spec, flavor, false, seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	sys.M.CPU.SetProfiler(every, prof.Hit)
	if err := sys.Run(experiment.RunBudget); err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	procs := map[uint32]*obj.Executable{}
	for i, bp := range sys.Procs {
		procs[uint32(i+1)] = bp.Exe
	}
	res := obs.NewImageResolver(sys.Kernel, procs)
	switch format {
	case "folded":
		prof.WriteFolded(os.Stdout, res)
	case "text":
		prof.WriteTable(os.Stdout, res)
	case "json":
		doc := struct {
			Workload  string         `json:"workload"`
			OS        string         `json:"os"`
			Every     uint64         `json:"sample_every_instructions"`
			Samples   int            `json:"samples"`
			Functions []obs.FuncTime `json:"functions"`
		}{spec.Name, flavor.String(), every, prof.Len(), prof.Table(res)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
	}
}
