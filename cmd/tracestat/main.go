// Command tracestat runs one workload both untraced and traced and
// emits a single machine-readable telemetry document: every subsystem
// counter (labelled run="untraced"/"traced") plus the computed
// distortion gauges. It is the scriptable face of the telemetry
// layer; tracesys -metrics text is the human one.
//
//	tracestat -workload sed -format json
//	tracestat -workload egrep -os mach -format prom
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/telemetry"
	"systrace/internal/verify"
	"systrace/internal/workload"
)

func main() {
	osName := flag.String("os", "ultrix", "ultrix or mach")
	name := flag.String("workload", "sed", "Table-1 workload")
	seed := flag.Uint("seed", 1, "page placement seed")
	format := flag.String("format", "json", "json, prom, or text")
	flag.Parse()

	flavor := kernel.Ultrix
	if *osName == "mach" {
		flavor = kernel.Mach
	}
	spec, ok := workload.ByName(*name)
	if !ok {
		fmt.Fprintf(os.Stderr, "tracestat: unknown workload %q\n", *name)
		os.Exit(1)
	}
	switch *format {
	case "json", "prom", "text":
	default:
		// Reject up front: the runs below take real time.
		fmt.Fprintf(os.Stderr, "tracestat: unknown -format %q\n", *format)
		os.Exit(2)
	}

	reg := telemetry.New()
	d, err := experiment.Distort(spec, flavor, uint32(*seed), reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}

	// Statically verify the instrumented image and publish the per-rule
	// pass/fail counts next to the distortion gauges. The program comes
	// out of the experiment build cache, so this never rebuilds it.
	prog, err := experiment.Program(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	vres, err := verify.Executable(prog.Instr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat: verify:", err)
		os.Exit(1)
	}
	vres.RegisterMetrics(reg, telemetry.L("image", spec.Name))

	// Check the traced run's own stream against the instrumented CFGs
	// and publish the per-rule conformance counters alongside.
	conf, err := experiment.Conformance(spec, flavor, uint32(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat: conformance:", err)
		os.Exit(1)
	}
	conf.RegisterMetrics(reg, telemetry.L("stream", conf.Name))

	switch *format {
	case "json":
		doc := struct {
			Workload string             `json:"workload"`
			OS       string             `json:"os"`
			Seed     uint32             `json:"seed"`
			Metrics  telemetry.Snapshot `json:"metrics"`
		}{spec.Name, flavor.String(), uint32(*seed), reg.Snapshot()}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
	case "prom":
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
	case "text":
		fmt.Print(d.Format())
		status := "clean"
		if !vres.Clean() {
			status = fmt.Sprintf("%d diagnostics", len(vres.Diags))
		}
		fmt.Printf("static verification: %d blocks, %s\n", vres.Blocks, status)
		for _, diag := range vres.Diags {
			fmt.Printf("  %s\n", diag)
		}
		cstatus := "clean"
		if !conf.Clean() {
			cstatus = fmt.Sprintf("%d diagnostics", len(conf.Diags))
		}
		fmt.Printf("trace conformance: %d words, %d records, %d markers, %s\n",
			conf.Words, conf.Records, conf.Markers, cstatus)
		for _, diag := range conf.Diags {
			fmt.Printf("  %s\n", diag)
		}
	}
}
