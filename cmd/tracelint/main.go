// Command tracelint checks whole-system trace streams for
// conformance against the instrumented kernel and user images' control
// flow graphs (see internal/tracecheck). It boots each workload under
// the selected OS personalities in the simulator, streams the traced
// run through the checker, and reports every protocol violation: a
// record that is not a real block head, an illegal CFG edge, a wrong
// memory-reference count, an out-of-range address, or a broken
// kernel-nesting / scheduling / epoch marker sequence.
//
//	tracelint                      # whole corpus: every workload x OS
//	tracelint -workload sed -os mach
//	tracelint -json -seed 7
//	tracelint -compress            # corpus over the compressed streaming drain
//
// Exit status: 0 when every stream checks clean, 1 when any
// diagnostic fires, 2 on usage or build errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/tracecheck"
	"systrace/internal/workload"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracelint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "all", "Table-1 workload to trace and check, or \"all\"")
	osName := fs.String("os", "all", "OS personality: ultrix, mach, or \"all\"")
	seed := fs.Uint("seed", 1, "page-mapping seed for the traced boot")
	jobs := fs.Int("j", runtime.GOMAXPROCS(0), "traced system runs to execute in parallel")
	compress := fs.Bool("compress", false,
		"drain each traced boot through the compressed epoch-ring streaming path; the checker decodes the wire bytes itself")
	asJSON := fs.Bool("json", false, "emit results as JSON")
	quiet := fs.Bool("q", false, "print only diagnostics, not per-stream summaries")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintln(stderr, "tracelint: unexpected arguments", fs.Args())
		return 2
	}

	var specs []workload.Spec
	if *wl == "all" {
		specs = workload.All()
	} else {
		spec, ok := workload.ByName(*wl)
		if !ok {
			fmt.Fprintf(stderr, "tracelint: unknown workload %q\n", *wl)
			return 2
		}
		specs = []workload.Spec{spec}
	}
	var flavors []kernel.Flavor
	switch *osName {
	case "all":
		flavors = []kernel.Flavor{kernel.Ultrix, kernel.Mach}
	case "ultrix":
		flavors = []kernel.Flavor{kernel.Ultrix}
	case "mach":
		flavors = []kernel.Flavor{kernel.Mach}
	default:
		fmt.Fprintf(stderr, "tracelint: unknown OS %q (want ultrix, mach, or all)\n", *osName)
		return 2
	}

	type job struct {
		spec   workload.Spec
		flavor kernel.Flavor
	}
	var jobsList []job
	for _, s := range specs {
		for _, f := range flavors {
			jobsList = append(jobsList, job{s, f})
		}
	}

	results := make([]*tracecheck.Result, len(jobsList))
	errs := make([]error, len(jobsList))
	par := *jobs
	if par < 1 {
		par = 1
	}
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, j := range jobsList {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			stream := kernel.StreamConfig{}
			if *compress {
				stream = kernel.DefaultStream()
			}
			results[i], errs[i] = experiment.ConformanceWith(j.spec, j.flavor, uint32(*seed), stream)
		}(i, j)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			fmt.Fprintln(stderr, "tracelint:", err)
			return 2
		}
	}

	dirty := 0
	for _, r := range results {
		if !r.Clean() {
			dirty++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(results); err != nil {
			fmt.Fprintln(stderr, "tracelint:", err)
			return 2
		}
	} else {
		for _, r := range results {
			for _, d := range r.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", r.Name, d)
			}
			if r.Truncated && len(r.Diags) == 0 {
				fmt.Fprintf(stdout, "%s: stream truncated mid-protocol\n", r.Name)
			}
			if !*quiet {
				fmt.Fprintf(stdout, "%s: %d words, %d records, %d mem refs, %d markers, %d diagnostics\n",
					r.Name, r.Words, r.Records, r.MemRefs, r.Markers, len(r.Diags))
			}
		}
	}
	if dirty > 0 {
		fmt.Fprintf(stderr, "tracelint: %d of %d streams failed conformance\n", dirty, len(results))
		return 1
	}
	return 0
}
