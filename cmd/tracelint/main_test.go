package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"systrace/internal/tracecheck"
)

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown workload, want 2", code)
	}
	if code := run([]string{"-os", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown OS, want 2", code)
	}
	if code := run([]string{"stray"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for stray positional argument, want 2", code)
	}
}

func TestRunSingleStream(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "sed", "-os", "ultrix"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "0 diagnostics") {
		t.Errorf("summary missing: %s", out.String())
	}
}

func TestRunSingleStreamJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "-workload", "sed", "-os", "ultrix"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	var results []*tracecheck.Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(results) != 1 {
		t.Fatalf("want 1 result, got %d", len(results))
	}
	r := results[0]
	if !r.Clean() || r.Words == 0 || r.Records == 0 {
		t.Errorf("unexpected result: %+v", r)
	}
}
