package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/verify"
)

func buildTestExe(t *testing.T) *obj.Executable {
	t.Helper()
	mod := m.NewModule("lintprog")
	f := mod.Func("main", m.TInt)
	f.Locals("i", "sum")
	f.Code(func(bl *m.Block) {
		bl.Assign("sum", m.I(0))
		bl.For("i", m.I(0), m.I(8), func(bl *m.Block) {
			bl.Assign("sum", m.Add(m.V("sum"), m.V("i")))
		})
		bl.Return(m.V("sum"))
	})
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name: "lintprog", TextBase: sim.BareTextBase, DataBase: sim.BareDataBase,
	}, epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		t.Fatal(err)
	}
	return b.Instr
}

func writeExe(t *testing.T, e *obj.Executable) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), e.Name+".exe")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunCleanFile(t *testing.T) {
	path := writeExe(t, buildTestExe(t))
	var out, errb bytes.Buffer
	if code := run([]string{path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean image; stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "0 diagnostics") {
		t.Errorf("summary missing: %s", out.String())
	}
}

func TestRunCorruptedFileJSON(t *testing.T) {
	e := buildTestExe(t)
	// Knock out the first instrumented block head.
	for _, b := range e.Blocks {
		if b.Flags&(obj.BBNoInstrument|obj.BBHandTraced) == 0 {
			e.Text[(b.Addr-e.TextBase)/4] = isa.NOP
			break
		}
	}
	path := writeExe(t, e)

	var out, errb bytes.Buffer
	if code := run([]string{"-json", path}, &out, &errb); code != 1 {
		t.Fatalf("exit %d on corrupted image, want 1; stderr: %s", code, errb.String())
	}
	var reports []struct {
		Name  string        `json:"name"`
		Diags []verify.Diag `json:"diags"`
	}
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || len(reports[0].Diags) == 0 {
		t.Fatalf("want one report with diagnostics, got %+v", reports)
	}
	if reports[0].Diags[0].Rule != verify.RuleBBHead {
		t.Errorf("rule = %s, want %s", reports[0].Diags[0].Rule, verify.RuleBBHead)
	}
}

func TestRunCorpusSingle(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-q", "-workload", "lisp", "-runtime", "bare"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d; stderr: %s stdout: %s", code, errb.String(), out.String())
	}
	if out.Len() != 0 {
		t.Errorf("quiet clean run produced output: %s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown workload, want 2", code)
	}
	if code := run([]string{"-runtime", "nosuch"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for unknown runtime, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.exe")}, &out, &errb); code != 2 {
		t.Fatalf("exit %d for missing file, want 2", code)
	}
}
