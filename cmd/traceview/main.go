// Command traceview runs a workload under the traced Ultrix-like
// system and dumps a window of the reconstructed reference stream —
// the interleaved kernel and user addresses of Figure 1 — plus the
// parsing library's statistics.
//
//	traceview -workload sed -n 40 -skip 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"systrace/internal/kernel"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

func main() {
	name := flag.String("workload", "sed", "Table-1 workload")
	nEvents := flag.Int("n", 48, "events to print")
	skip := flag.Int("skip", 5000, "events to skip before printing")
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fail("unknown workload %q", *name)
	}
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix, Traced: true})
	if err != nil {
		fail("building traced kernel for %s: %v", spec.Name, err)
	}
	prog, err := userland.Build(spec.Name, []*m.Module{spec.Build()}, m.Options{})
	if err != nil {
		fail("building workload %s: %v", spec.Name, err)
	}
	disk, err := kernel.BuildDiskImage(spec.Files)
	if err != nil {
		fail("building disk image for %s: %v", spec.Name, err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 4 << 20
	cfg.ClockInterval *= 15
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Instr}}, cfg)
	if err != nil {
		fail("booting traced system for %s: %v", spec.Name, err)
	}

	p := trace.NewParser(trace.NewSideTable(kexe.Instr.Blocks))
	p.AddProcess(1, trace.NewSideTable(prog.Instr.Instr.Blocks))
	printed, seen := 0, 0
	// Record a mid-stream parse error instead of exiting from inside
	// the flush callback, so the run's statistics still get reported.
	var parseErr error
	sys.OnTrace = func(words []uint32) {
		if parseErr != nil {
			return
		}
		evs, err := p.Parse(words, nil)
		if err != nil {
			parseErr = err
			return
		}
		for _, ev := range evs {
			seen++
			if seen <= *skip || printed >= *nEvents {
				continue
			}
			printed++
			who := fmt.Sprintf("user%-2d", ev.Pid)
			if ev.Kernel {
				who = "kernel"
			}
			tag := ""
			if ev.Idle {
				tag = " idle"
			}
			fmt.Printf("%s  %v 0x%08x%s\n", who, ev.Kind, ev.Addr, tag)
		}
	}
	if err := sys.Run(6_000_000_000); err != nil {
		fail("running %s: %v", spec.Name, err)
	}
	if parseErr != nil {
		fail("parsing trace of %s: %v", spec.Name, parseErr)
	}
	if err := p.Finish(); err != nil {
		fail("finishing trace of %s: %v", spec.Name, err)
	}
	fmt.Printf("\n%d events total; %d bb records, %d memory references, %d markers, "+
		"%d context switches, max nesting %d, %d idle instructions\n",
		seen, p.Records, p.MemRefs, p.Markers, p.CtxSws, p.MaxDepth, p.IdleInstr)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "traceview: "+format+"\n", args...)
	os.Exit(1)
}
