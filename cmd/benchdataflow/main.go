// benchdataflow measures what the liveness-driven dead-register
// analysis buys the rewriter: per image, how many save/restore sites
// the analysis proved elidable (and the resulting text shrink), and
// per workload, how many fewer instructions the traced boot retires
// with elision on. It also validates the static trace-cost model
// against measured trace volume across the workload corpus. It writes
// BENCH_dataflow.json in the same shape as the other BENCH_* documents
// and fails when the static elision rate across the sed+lisp corpus
// drops below the 20% floor or the cost model's per-block table
// mispredicts any workload's measured trace volume by more than 10%.
//
//	go run ./cmd/benchdataflow -out BENCH_dataflow.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"systrace/internal/dataflow"
	"systrace/internal/epoxie"
	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/obj"
	"systrace/internal/workload"
)

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type row struct {
	Image      string  `json:"image"`
	SaveSites  int     `json:"save_sites"`
	Elided     int     `json:"elided"`
	ElidedPct  float64 `json:"elided_pct"`
	Fallbacks  int     `json:"fallbacks"`
	BytesSaved int     `json:"bytes_saved"`
	TextOn     uint32  `json:"text_bytes_flow_on"`
	TextOff    uint32  `json:"text_bytes_flow_off"`
	Blocks     int     `json:"blocks_analyzed"`
	Funcs      int     `json:"functions_analyzed"`
}

type dynRow struct {
	Workload   string  `json:"workload"`
	InstretOn  uint64  `json:"traced_instructions_flow_on"`
	InstretOff uint64  `json:"traced_instructions_flow_off"`
	SavedPct   float64 `json:"instructions_saved_pct"`
}

// costRow validates the static trace-cost model for one workload's
// traced system (kernel + program sharing one stream).
type costRow struct {
	Workload string `json:"workload"`
	// The structural prediction: loop-depth-weighted words per original
	// instruction, vs. the measured ratio and its error.
	StaticWPI  float64 `json:"static_trace_words_per_instr"`
	DynamicWPI float64 `json:"dynamic_trace_words_per_instr"`
	MixErrPct  float64 `json:"mix_error_pct"`
	// The table validation: static per-block costs applied to the
	// observed entry mix vs. the words the parser consumed. This
	// isolates the model's cost table from its frequency guess.
	TableWords    uint64  `json:"table_predicted_words"`
	MeasuredWords uint64  `json:"parser_consumed_words"`
	ModelErrPct   float64 `json:"model_error_pct"`
	MaxDepth      int     `json:"max_loop_depth"`
	AddedPerInstr float64 `json:"added_instr_per_instr"`
}

type report struct {
	Benchmark string    `json:"benchmark"`
	Date      string    `json:"date"`
	Command   string    `json:"command"`
	Host      hostInfo  `json:"host"`
	Results   []row     `json:"results"`
	Dynamic   []dynRow  `json:"dynamic"`
	Cost      []costRow `json:"cost_model"`
	ElidedPct float64   `json:"elided_pct_total"`
	Notes     []string  `json:"notes"`
}

var workloads = []string{"sed", "lisp"}

// costWorkloads is the corpus the static cost model is validated on.
var costWorkloads = []string{"sed", "lisp", "egrep", "yacc"}

// costValidate builds the merged static model for one workload's
// traced system and compares it against a full predicted (traced) run.
func costValidate(kexe *obj.Executable, wl string) (costRow, error) {
	spec, ok := workload.ByName(wl)
	if !ok {
		return costRow{}, fmt.Errorf("no workload %q", wl)
	}
	prog, err := experiment.Program(spec)
	if err != nil {
		return costRow{}, err
	}
	c, err := dataflow.StaticCostTraced(kexe)
	if err != nil {
		return costRow{}, err
	}
	pc, err := dataflow.StaticCostTraced(prog.Instr)
	if err != nil {
		return costRow{}, err
	}
	c.Merge(pc)
	pred, err := experiment.Predict(spec, kernel.Ultrix, 1)
	if err != nil {
		return costRow{}, err
	}
	r := costRow{
		Workload:      wl,
		StaticWPI:     c.WordsPerInstr(),
		TableWords:    pred.StaticWords(),
		MeasuredWords: pred.Parser.Words,
		ModelErrPct:   round2(100 * pred.StaticWordErr()),
		MaxDepth:      c.MaxDepth,
		AddedPerInstr: c.AddedPerInstr(),
	}
	if pred.Parser.Fetches > 0 {
		r.DynamicWPI = float64(pred.TraceWords) / float64(pred.Parser.Fetches)
	}
	if r.DynamicWPI > 0 {
		r.MixErrPct = round2(100 * (r.StaticWPI/r.DynamicWPI - 1))
	}
	return r, nil
}

// imageRow compares one image built with elision on vs. off.
func imageRow(name string, on, off *obj.Executable) row {
	f := on.Instr.Flow
	r := row{
		Image: name, SaveSites: f.SaveSites, Elided: f.SavesElided,
		Fallbacks: f.Fallbacks, BytesSaved: f.BytesSaved,
		TextOn: on.Instr.TextSize, TextOff: off.Instr.TextSize,
		Blocks: f.Blocks, Funcs: f.Funcs,
	}
	if f.SaveSites > 0 {
		r.ElidedPct = round2(100 * float64(f.SavesElided) / float64(f.SaveSites))
	}
	return r
}

// bootInstret runs one traced boot and returns retired instructions.
func bootInstret(wl string, flow epoxie.FlowMode) (uint64, error) {
	spec, ok := workload.ByName(wl)
	if !ok {
		return 0, fmt.Errorf("no workload %q", wl)
	}
	sys, _, err := experiment.BootFlow(spec, kernel.Ultrix, true, 1, flow)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(experiment.RunBudget); err != nil {
		return 0, fmt.Errorf("%s flow=%d: %w", wl, flow, err)
	}
	return sys.M.CPU.Stat.Instret, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdataflow:", err)
	os.Exit(1)
}

func main() {
	out := flag.String("out", "BENCH_dataflow.json", "output JSON path")
	floor := flag.Float64("floor", 20, "minimum corpus-wide static elision percentage")
	maxErr := flag.Float64("maxmodelerr", 10, "maximum |cost-model error| percentage on any workload")
	flag.Parse()

	rep := report{
		Benchmark: "BenchmarkDataflowElision",
		Date:      time.Now().Format("2006-01-02"),
		Command:   "go run ./cmd/benchdataflow -out BENCH_dataflow.json",
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
	}

	kon, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix, Traced: true})
	if err != nil {
		fail(err)
	}
	koff, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix, Traced: true, Flow: epoxie.FlowOff})
	if err != nil {
		fail(err)
	}
	rep.Results = append(rep.Results, imageRow("vmunix-ultrix", kon, koff))

	sites, elided := kon.Instr.Flow.SaveSites, kon.Instr.Flow.SavesElided
	for _, wl := range workloads {
		spec, ok := workload.ByName(wl)
		if !ok {
			fail(fmt.Errorf("no workload %q", wl))
		}
		pon, err := experiment.ProgramFlow(spec, epoxie.FlowOn)
		if err != nil {
			fail(err)
		}
		poff, err := experiment.ProgramFlow(spec, epoxie.FlowOff)
		if err != nil {
			fail(err)
		}
		r := imageRow(wl, pon.Instr, poff.Instr)
		rep.Results = append(rep.Results, r)
		sites += r.SaveSites
		elided += r.Elided

		ion, err := bootInstret(wl, epoxie.FlowOn)
		if err != nil {
			fail(err)
		}
		ioff, err := bootInstret(wl, epoxie.FlowOff)
		if err != nil {
			fail(err)
		}
		dr := dynRow{Workload: wl, InstretOn: ion, InstretOff: ioff}
		if ioff > 0 {
			dr.SavedPct = round2(100 * float64(ioff-ion) / float64(ioff))
		}
		rep.Dynamic = append(rep.Dynamic, dr)
		fmt.Printf("%-14s %4d/%4d sites elided (%.0f%%), traced boot %d -> %d instructions (-%.2f%%)\n",
			wl, r.Elided, r.SaveSites, r.ElidedPct, ioff, ion, dr.SavedPct)
	}
	if sites > 0 {
		rep.ElidedPct = round2(100 * float64(elided) / float64(sites))
	}

	worstErr := 0.0
	for _, wl := range costWorkloads {
		cr, err := costValidate(kon, wl)
		if err != nil {
			fail(err)
		}
		rep.Cost = append(rep.Cost, cr)
		if e := cr.ModelErrPct; e < 0 {
			e = -e
			if e > worstErr {
				worstErr = e
			}
		} else if e > worstErr {
			worstErr = e
		}
		fmt.Printf("%-14s cost model: table %d vs %d words (%+.2f%%), structural %.3f vs %.3f words/instr (%+.1f%%)\n",
			wl, cr.TableWords, cr.MeasuredWords, cr.ModelErrPct,
			cr.StaticWPI, cr.DynamicWPI, cr.MixErrPct)
	}

	rep.Notes = []string{
		"save_sites = instrumentation points where the rewriter must preserve a register (block-prologue ra saves plus borrowed-scratch brackets); elided = sites the liveness analysis proved dead, dropping the save/restore.",
		"Static columns compare epoxie.FlowOn against epoxie.FlowOff builds of the same objects; dynamic rows compare full traced Ultrix boots of the workload under both images.",
		"Soundness is enforced separately: the FlowPadded differential oracle (oracle_test.go) proves bit-identical architectural state, and verify's dead-reg/live-clobber rules re-derive liveness over the rewritten image.",
		fmt.Sprintf("Corpus-wide static elision rate: %.2f%% (floor %.0f%%).", rep.ElidedPct, *floor),
		"cost_model rows validate the dataflow static trace-cost model: model_error_pct applies the static per-block cost table (1 + |Mem| words per entry) to the observed block-entry mix and compares against the words the parser consumed — the residual is stream overhead the table does not model (markers, resync dirt, interrupted blocks). mix_error_pct additionally carries the purely structural loop-depth frequency estimate, reported but not gated.",
		fmt.Sprintf("Worst cost-model table error across the corpus: %.2f%% (gate %.0f%%).", worstErr, *maxErr),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %s (corpus elision %.2f%%, worst cost-model error %.2f%%)\n",
		*out, rep.ElidedPct, worstErr)
	if rep.ElidedPct < *floor {
		fmt.Fprintf(os.Stderr, "benchdataflow: elision rate %.2f%% below the %.0f%% floor\n",
			rep.ElidedPct, *floor)
		os.Exit(1)
	}
	if worstErr > *maxErr {
		fmt.Fprintf(os.Stderr, "benchdataflow: cost-model error %.2f%% exceeds the %.0f%% gate\n",
			worstErr, *maxErr)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
