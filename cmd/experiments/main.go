// Command experiments regenerates the paper's evaluation: Tables 1-3,
// Figures 1-3, and the supporting measurements (text growth, time
// dilation, buffer sizing, kernel CPI, page-mapping variance, error
// anatomy). Absolute numbers are scaled (the workloads are reduced so
// the suite simulates in minutes); the shape of each result is what is
// validated against the paper — see EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run a 4-workload subset")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. table2,figure3)")
	jobs := flag.Int("j", 0, "max simulations in flight (default GOMAXPROCS)")
	flag.Parse()

	// One orchestrator for the whole suite: tables that share runs
	// (table2/table3, table1/dilation/cpi, figure1/dilation, errors)
	// pay for each unique simulation exactly once.
	runner := experiment.NewRunner(*jobs)

	specs := workload.All()
	if *quick {
		specs = pick("sed", "compress", "lisp", "liv")
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id != "" {
			want[strings.TrimSpace(id)] = true
		}
	}
	run := func(id string) bool { return len(want) == 0 || want[id] }
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if run("figure1") {
		fmt.Println("== Figure 1: tracing system overview (one traced run) ==")
		pred, err := runner.Predict(specs[0], kernel.Ultrix, 1)
		die(err)
		fmt.Printf("workload %s: %d trace words drained over %d analysis phases;\n",
			pred.Name, pred.TraceWords, pred.ModeSwitches)
		fmt.Printf("  %d reconstructed references (kernel and user interleaved), %d idle-loop instructions\n\n",
			pred.Events, pred.IdleInstr)
	}

	if run("figure2") {
		fmt.Println("== Figure 2: instrumentation by epoxie ==")
		f2 := experiment.Figure2()
		fmt.Println(f2)
	}

	if run("table1") {
		fmt.Println("== Table 1: experimental workloads ==")
		rows, err := runner.Table1(specs)
		die(err)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Name, experiment.Sec(r.Seconds),
				strconv.FormatUint(r.Instr, 10), r.Description})
		}
		fmt.Println(experiment.FormatTable(
			[]string{"workload", "sec", "instructions", "description"}, cells))
	}

	var t2 []experiment.Table2Row
	if run("table2") || run("figure3") {
		fmt.Println("== Table 2: run times, measured and predicted (seconds) ==")
		var err error
		t2, err = runner.Table2(specs)
		die(err)
		var cells [][]string
		for _, r := range t2 {
			cells = append(cells, []string{r.Name,
				experiment.Sec(r.MachMeasured), experiment.Sec(r.MachPredicted),
				experiment.Sec(r.UltrixMeasured), experiment.Sec(r.UltrixPredicted)})
		}
		fmt.Println(experiment.FormatTable(
			[]string{"workload", "mach meas", "mach pred", "ultrix meas", "ultrix pred"}, cells))
	}

	if run("figure3") {
		fmt.Println("== Figure 3: error in predicted execution times (Ultrix) ==")
		for _, r := range experiment.Figure3(t2) {
			e := r.PercentError()
			bar := strings.Repeat("#", int(abs(e)*2+0.5))
			fmt.Printf("%-10s %+6.1f%% %s\n", r.Name, e, bar)
		}
		fmt.Println()
	}

	if run("table3") {
		fmt.Println("== Table 3: TLB misses, measured and predicted ==")
		rows, err := runner.Table3(specs)
		die(err)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Name,
				u(r.MachMeasured), u(r.MachPredicted),
				u(r.UltrixMeasured), u(r.UltrixPredicted)})
		}
		fmt.Println(experiment.FormatTable(
			[]string{"workload", "mach meas", "mach pred", "ultrix meas", "ultrix pred"}, cells))
	}

	if run("growth") {
		fmt.Println("== E7: text growth (epoxie 1.9-2.3x vs pixie/original 4-6x) ==")
		rows, err := experiment.TextGrowth(pick("gcc"))
		die(err)
		var cells [][]string
		for _, r := range rows {
			cells = append(cells, []string{r.Name, r.Tool,
				strconv.Itoa(int(r.OrigBytes)), strconv.Itoa(int(r.NewBytes)),
				fmt.Sprintf("%.2fx", r.Factor)})
		}
		fmt.Println(experiment.FormatTable(
			[]string{"binary", "tool", "orig bytes", "instr bytes", "growth"}, cells))
	}

	if run("dilation") {
		fmt.Println("== E8: time dilation (traced/untraced slowdown) ==")
		rows, err := runner.TimeDilation(pick("sed", "lisp"))
		die(err)
		for _, r := range rows {
			fmt.Printf("%-10s untraced %9d instr, traced %10d instr: %.1fx (clock %d -> %d cycles)\n",
				r.Name, r.UntracedInstr, r.TracedInstr, r.Factor, r.ClockUntraced, r.ClockTraced)
		}
		fmt.Println()
	}

	if run("buffer") {
		fmt.Println("== E9: in-kernel buffer sizing vs mode switches ==")
		spec, _ := workload.ByName("compress")
		rows, err := experiment.BufferSizing(spec, []uint32{256 << 10, 1 << 20, 4 << 20, 16 << 20})
		die(err)
		for _, r := range rows {
			fmt.Printf("buffer %8d KB: %3d analysis phases, %.0f traced instructions per phase\n",
				r.BufBytes>>10, r.ModeSwitches, r.InstrPerPhase)
		}
		fmt.Println()
	}

	if run("cpi") {
		fmt.Println("== E10: kernel vs user CPI (the Tunix observation) ==")
		spec, _ := workload.ByName("sed")
		res, err := runner.KernelCPI(spec)
		die(err)
		fmt.Printf("kernel CPI %.2f, user CPI %.2f, ratio %.2f (kernel %d / user %d instructions)\n\n",
			res.KernelCPI, res.UserCPI, res.Ratio, res.KernelInstr, res.UserInstr)
	}

	if run("variance") {
		fmt.Println("== E11: page-mapping variance under Mach's random policy ==")
		spec, _ := workload.ByName("tomcatv")
		res, err := runner.PageMappingVariance(spec, []uint32{3, 17, 91, 1234, 5555})
		die(err)
		fmt.Printf("tomcatv times: %v\n", res.Times)
		fmt.Printf("spread %.1f%% with system activity only %.1f%% of instructions\n\n",
			res.SpreadPercent, res.SystemFraction*100)
	}

	if run("errors") {
		fmt.Println("== E12: error anatomy for the paper's outliers ==")
		rows, err := runner.ErrorSources([]string{"sed", "compress", "liv"})
		die(err)
		for _, r := range rows {
			fmt.Printf("%-10s meas %.4fs pred %.4fs err %+5.1f%%  io-est %.4fs  fp-overlap %d cyc  wb-stalls %d cyc\n",
				r.Name, r.MeasuredSec, r.PredictedSec, r.ErrorPercent,
				r.IOStallsSec, r.FPOverlapCycles, r.WBStallCycles)
		}
		fmt.Println()
	}

	if run("corruption") {
		fmt.Println("== E13: trace corruption detection (§4.3 redundancy) ==")
		spec, _ := workload.ByName("sed")
		detected, total, err := experiment.CorruptionDetection(spec)
		die(err)
		fmt.Printf("%d of %d single-word corruptions rejected by the parsing library (%.1f%%)\n\n",
			detected, total, float64(detected)/float64(total)*100)
	}

	if s := runner.Stats(); s.Requested > 0 {
		fmt.Printf("runner: %d runs requested, %d unique simulations executed (%d served from memo), %d workers\n",
			s.Requested, s.Executed, s.Deduplicated(), s.Workers)
	}
}

func pick(names ...string) []workload.Spec {
	var out []workload.Spec
	for _, n := range names {
		if s, ok := workload.ByName(n); ok {
			out = append(out, s)
		}
	}
	return out
}

func u(v uint64) string { return strconv.FormatUint(v, 10) }

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
