package main

// -mode obs: the observability overhead benchmark. The ISSUE-6
// acceptance bar is that the flight recorder and phase spans are on by
// default with the predecoded untraced boot (the BENCH_cpu.json
// configuration) staying within 3% of that baseline, and that the
// guest-PC sampler costs only its amortized clamp. Three configs per
// workload:
//
//	recorder_off — obs globally disabled (the only config that is not
//	               the shipped default; isolates the recorder cost)
//	recorder_on  — the default build: flight recorder + spans armed
//	profiler_on  — recorder_on plus SetProfiler(4096, ...) sampling
//
// Output is BENCH_obs.json with per-config MIPS, same-run ratios vs
// recorder_off, and recorder_on vs the BENCH_cpu.json predecode
// baseline (the 3% criterion; the run fails if it is missed).

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/obs"
	"systrace/internal/workload"
)

var obsConfigs = []string{"recorder_off", "recorder_on", "profiler_on"}

type obsReport struct {
	Benchmark   string             `json:"benchmark"`
	Date        string             `json:"date"`
	Command     string             `json:"command"`
	Host        hostInfo           `json:"host"`
	Results     []row              `json:"results"`
	MIPS        map[string]float64 `json:"mips_best"`
	RatioVsOff  map[string]float64 `json:"ratio_vs_recorder_off"`
	RatioVsCPU  map[string]float64 `json:"recorder_on_vs_bench_cpu"`
	ProfSamples map[string]int     `json:"profiler_samples"`
	Notes       []string           `json:"notes"`
}

// runObs times one predecoded untraced boot of wl under cfg and
// reports retired instructions, wall time, and sample count.
func runObs(wl, cfg string) (row, int, error) {
	r := row{Workload: wl, Engine: cfg}
	spec, ok := workload.ByName(wl)
	if !ok {
		return r, 0, fmt.Errorf("no workload %q", wl)
	}
	sys, _, err := experiment.Boot(spec, kernel.Ultrix, false, 1)
	if err != nil {
		return r, 0, err
	}
	sys.M.CPU.SetPredecode(true)
	prof := obs.NewProfile()
	switch cfg {
	case "recorder_off":
		obs.SetEnabled(false)
		defer obs.SetEnabled(true)
	case "recorder_on":
		// The shipped default: nothing to arm.
	case "profiler_on":
		sys.M.CPU.SetProfiler(4096, prof.Hit)
	}
	runtime.GC()
	start := time.Now()
	if err := sys.Run(experiment.RunBudget); err != nil {
		return r, 0, fmt.Errorf("%s/%s: %w", wl, cfg, err)
	}
	r.Seconds = time.Since(start).Seconds()
	r.Instret = sys.M.CPU.Stat.Instret
	r.MIPS = float64(r.Instret) / r.Seconds / 1e6
	return r, prof.Len(), nil
}

func runObsMode(out, baseline string, count int) {
	base := map[string]float64{}
	if buf, err := os.ReadFile(baseline); err == nil {
		var rep report
		if err := json.Unmarshal(buf, &rep); err != nil {
			fmt.Fprintf(os.Stderr, "benchcpu: %s: %v\n", baseline, err)
			os.Exit(1)
		}
		base = rep.MIPS
	} else {
		fmt.Fprintf(os.Stderr, "benchcpu: no baseline %s; skipping the 3%% check\n", baseline)
	}

	rep := obsReport{
		Benchmark: "BenchmarkObservability",
		Date:      time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/benchcpu -mode obs -out %s -count %d", out, count),
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		MIPS:        map[string]float64{},
		RatioVsOff:  map[string]float64{},
		RatioVsCPU:  map[string]float64{},
		ProfSamples: map[string]int{},
	}

	// Configs are interleaved round-robin rather than run as
	// consecutive blocks: host-load noise on this class of machine
	// dwarfs the effect being measured, and blocking a config's runs
	// together would let one noisy interval masquerade as a config
	// difference. Best-of-count per cell then discards the noise.
	best := map[string]row{} // "wl/config" → fastest run
	for i := 0; i < count; i++ {
		for _, wl := range workloads {
			for _, cfg := range obsConfigs {
				key := wl + "/" + cfg
				r, samples, err := runObs(wl, cfg)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchcpu:", err)
					os.Exit(1)
				}
				fmt.Printf("%-20s round %d: %8.2f MIPS (%d instructions in %.3fs)\n",
					key, i+1, r.MIPS, r.Instret, r.Seconds)
				if b, ok := best[key]; !ok || r.MIPS > b.MIPS {
					best[key] = r
				}
				if cfg == "profiler_on" && samples > rep.ProfSamples[wl] {
					rep.ProfSamples[wl] = samples
				}
			}
		}
	}
	for _, wl := range workloads {
		for _, cfg := range obsConfigs {
			key := wl + "/" + cfg
			rep.Results = append(rep.Results, best[key])
			rep.MIPS[key] = round2(best[key].MIPS)
		}
	}

	ok := true
	for _, wl := range workloads {
		off := best[wl+"/recorder_off"].MIPS
		for _, cfg := range obsConfigs[1:] {
			rep.RatioVsOff[wl+"/"+cfg] = round3(best[wl+"/"+cfg].MIPS / off)
		}
		if b := base[wl+"/predecode"]; b > 0 {
			ratio := best[wl+"/recorder_on"].MIPS / b
			rep.RatioVsCPU[wl] = round3(ratio)
			if ratio < 0.97 {
				fmt.Fprintf(os.Stderr,
					"benchcpu: %s recorder_on %.2f MIPS is %.1f%% below the %s predecode baseline %.2f\n",
					wl, best[wl+"/recorder_on"].MIPS, (1-ratio)*100, baseline, b)
				ok = false
			}
		}
	}
	rep.Notes = []string{
		"MIPS = simulated (retired) instructions per wall-clock second over a full untraced predecoded kernel boot; best of -count runs per cell.",
		"recorder_off disables all obs emission (obs.SetEnabled(false)); recorder_on is the shipped default (flight recorder + phase spans armed); profiler_on adds guest-PC sampling every 4096 instructions via the StepN batch clamp.",
		"ratio_vs_recorder_off is measured within this run; recorder_on_vs_bench_cpu compares against the committed BENCH_cpu.json predecode rows and must stay >= 0.97 (the 3% acceptance bar).",
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
	if !ok {
		os.Exit(1)
	}
}

func round3(f float64) float64 { return float64(int(f*1000+0.5)) / 1000 }
