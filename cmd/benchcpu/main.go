// benchcpu measures raw interpreter speed — simulated instructions
// per wall-clock second — for the reference word-at-a-time core and
// the predecoded-page core, over full untraced kernel boots of the
// paper's sed + lisp workload pair. It writes the result as
// BENCH_cpu.json in the same shape as BENCH_runner.json so the two
// sit side by side in the repo root.
//
//	go run ./cmd/benchcpu -out BENCH_cpu.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/workload"
)

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type row struct {
	Workload string  `json:"workload"`
	Engine   string  `json:"engine"`
	Instret  uint64  `json:"instructions"`
	Seconds  float64 `json:"seconds"`
	MIPS     float64 `json:"mips"`
}

type report struct {
	Benchmark string             `json:"benchmark"`
	Date      string             `json:"date"`
	Command   string             `json:"command"`
	Host      hostInfo           `json:"host"`
	Results   []row              `json:"results"`
	MIPS      map[string]float64 `json:"mips_best"`
	Speedup   map[string]float64 `json:"speedup"`
	Notes     []string           `json:"notes"`
}

var workloads = []string{"sed", "lisp"}

// run boots wl untraced, flips the interpreter engine, runs the boot
// to completion, and reports retired instructions and wall time.
func run(wl string, predecode bool) (row, error) {
	name := "reference"
	if predecode {
		name = "predecode"
	}
	r := row{Workload: wl, Engine: name}
	spec, ok := workload.ByName(wl)
	if !ok {
		return r, fmt.Errorf("no workload %q", wl)
	}
	sys, _, err := experiment.Boot(spec, kernel.Ultrix, false, 1)
	if err != nil {
		return r, err
	}
	sys.M.CPU.SetPredecode(predecode)
	// Collect the previous run's machine before the timed region so GC
	// pauses (this host has one vCPU) don't land inside it.
	runtime.GC()
	start := time.Now()
	if err := sys.Run(experiment.RunBudget); err != nil {
		return r, fmt.Errorf("%s/%s: %w", wl, name, err)
	}
	r.Seconds = time.Since(start).Seconds()
	r.Instret = sys.M.CPU.Stat.Instret
	r.MIPS = float64(r.Instret) / r.Seconds / 1e6
	return r, nil
}

func main() {
	out := flag.String("out", "BENCH_cpu.json", "output JSON path")
	count := flag.Int("count", 5, "runs per workload/engine pair (best is kept)")
	mode := flag.String("mode", "cpu", "cpu (engine comparison) or obs (observability overhead)")
	baseline := flag.String("baseline", "BENCH_cpu.json", "CPU baseline to compare against in -mode obs")
	flag.Parse()

	if *mode == "obs" {
		runObsMode(*out, *baseline, *count)
		return
	}

	rep := report{
		Benchmark: "BenchmarkInterpreter",
		Date:      time.Now().Format("2006-01-02"),
		Command:   "go run ./cmd/benchcpu -out BENCH_cpu.json",
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		MIPS:    map[string]float64{},
		Speedup: map[string]float64{},
	}

	best := map[string]row{} // "wl/engine" → fastest run
	for _, wl := range workloads {
		for _, pd := range []bool{false, true} {
			key := wl + "/" + map[bool]string{false: "reference", true: "predecode"}[pd]
			for i := 0; i < *count; i++ {
				r, err := run(wl, pd)
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchcpu:", err)
					os.Exit(1)
				}
				fmt.Printf("%-16s run %d: %8.2f MIPS (%d instructions in %.3fs)\n",
					key, i+1, r.MIPS, r.Instret, r.Seconds)
				if b, ok := best[key]; !ok || r.MIPS > b.MIPS {
					best[key] = r
				}
			}
			rep.Results = append(rep.Results, best[key])
			rep.MIPS[key] = round2(best[key].MIPS)
		}
	}

	var worst float64
	for _, wl := range workloads {
		s := best[wl+"/predecode"].MIPS / best[wl+"/reference"].MIPS
		rep.Speedup[wl] = round2(s)
		if worst == 0 || s < worst {
			worst = s
		}
	}
	rep.Notes = []string{
		"MIPS = simulated (retired) instructions per wall-clock second over a full untraced kernel boot of the workload; best of -count runs per cell.",
		"reference = word-at-a-time decode in exec(); predecode = per-physical-frame micro-op arrays dispatched by Step's fast path (internal/cpu/predecode.go).",
		"Both engines produce bit-identical architectural state and observer event streams (oracle_test.go, internal/cpu lockstep + fuzz).",
		fmt.Sprintf("Worst-case speedup across workloads on this host: %.2fx.", worst),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (worst-case speedup %.2fx)\n", *out, worst)
	if worst < 2 {
		fmt.Fprintf(os.Stderr, "benchcpu: speedup %.2fx below the 2x target\n", worst)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
