// benchcpu measures raw interpreter speed — simulated instructions
// per wall-clock second — for the reference word-at-a-time core, the
// predecoded-page core, and the superblock tier, over full kernel
// boots of the paper's sed + lisp workload pair, both untraced and
// traced (instrumented images writing the in-guest trace buffer). It
// writes the result as BENCH_cpu.json in the same shape as
// BENCH_runner.json so the two sit side by side in the repo root.
//
//	go run ./cmd/benchcpu -out BENCH_cpu.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/workload"
)

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type row struct {
	Workload string  `json:"workload"`
	Engine   string  `json:"engine"`
	Run      string  `json:"run"`
	Instret  uint64  `json:"instructions"`
	Seconds  float64 `json:"seconds"`
	MIPS     float64 `json:"mips"`
}

type report struct {
	Benchmark string             `json:"benchmark"`
	Date      string             `json:"date"`
	Command   string             `json:"command"`
	Host      hostInfo           `json:"host"`
	Results   []row              `json:"results"`
	MIPS      map[string]float64 `json:"mips_best"`
	Speedup   map[string]float64 `json:"speedup"`
	Notes     []string           `json:"notes"`
}

var workloads = []string{"sed", "lisp"}

var engines = []kernel.Engine{
	kernel.EngineReference, kernel.EnginePredecode, kernel.EngineSuperblock,
}

// run boots wl (traced boots run the instrumented images and drain the
// in-guest trace buffer, exactly the paper's configuration), pins the
// interpreter tier, runs the boot to completion, and reports retired
// instructions and wall time.
func run(wl string, engine kernel.Engine, traced bool) (row, error) {
	mode := "untraced"
	if traced {
		mode = "traced"
	}
	r := row{Workload: wl, Engine: engine.String(), Run: mode}
	spec, ok := workload.ByName(wl)
	if !ok {
		return r, fmt.Errorf("no workload %q", wl)
	}
	sys, _, err := experiment.Boot(spec, kernel.Ultrix, traced, 1)
	if err != nil {
		return r, err
	}
	// Pin the tier the same way kernel.Boot applies BootConfig.Engine
	// (experiment.Boot's image cache shares the boot path, so the tier
	// is set on the booted machine directly).
	switch engine {
	case kernel.EngineReference:
		sys.M.CPU.SetPredecode(false)
	case kernel.EnginePredecode:
		sys.M.CPU.SetSuperblocks(false)
	}
	// Collect the previous run's machine before the timed region so GC
	// pauses (this host has one vCPU) don't land inside it.
	runtime.GC()
	start := time.Now()
	if err := sys.Run(experiment.RunBudget); err != nil {
		return r, fmt.Errorf("%s/%s/%s: %w", wl, engine, mode, err)
	}
	r.Seconds = time.Since(start).Seconds()
	r.Instret = sys.M.CPU.Stat.Instret
	r.MIPS = float64(r.Instret) / r.Seconds / 1e6
	return r, nil
}

func main() {
	out := flag.String("out", "BENCH_cpu.json", "output JSON path")
	count := flag.Int("count", 5, "runs per workload/engine/mode cell (best is kept)")
	mode := flag.String("mode", "cpu", "cpu (engine comparison) or obs (observability overhead)")
	baseline := flag.String("baseline", "BENCH_cpu.json", "CPU baseline to compare against in -mode obs")
	flag.Parse()

	if *mode == "obs" {
		runObsMode(*out, *baseline, *count)
		return
	}

	rep := report{
		Benchmark: "BenchmarkInterpreter",
		Date:      time.Now().Format("2006-01-02"),
		Command:   "go run ./cmd/benchcpu -out BENCH_cpu.json",
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		MIPS:    map[string]float64{},
		Speedup: map[string]float64{},
	}

	best := map[string]row{} // "wl/engine/run" → fastest run
	for _, wl := range workloads {
		for _, traced := range []bool{false, true} {
			for _, eng := range engines {
				key := wl + "/" + eng.String() + "/" + map[bool]string{false: "untraced", true: "traced"}[traced]
				for i := 0; i < *count; i++ {
					r, err := run(wl, eng, traced)
					if err != nil {
						fmt.Fprintln(os.Stderr, "benchcpu:", err)
						os.Exit(1)
					}
					fmt.Printf("%-28s run %d: %8.2f MIPS (%d instructions in %.3fs)\n",
						key, i+1, r.MIPS, r.Instret, r.Seconds)
					if b, ok := best[key]; !ok || r.MIPS > b.MIPS {
						best[key] = r
					}
				}
				rep.Results = append(rep.Results, best[key])
				rep.MIPS[key] = round2(best[key].MIPS)
			}
		}
	}

	// Traced boots retire the same instruction stream on every engine
	// (identical instrumented images), so MIPS ratios are wall-clock
	// ratios. The traced superblock-vs-reference ratio is the headline:
	// the reference engine's traced loop is the legacy per-Step
	// burst-64 path this PR replaces.
	var worstTraced float64
	for _, wl := range workloads {
		rep.Speedup[wl+"/predecode"] = round2(
			best[wl+"/predecode/untraced"].MIPS / best[wl+"/reference/untraced"].MIPS)
		rep.Speedup[wl+"/superblock"] = round2(
			best[wl+"/superblock/untraced"].MIPS / best[wl+"/reference/untraced"].MIPS)
		s := best[wl+"/superblock/traced"].MIPS / best[wl+"/reference/traced"].MIPS
		rep.Speedup[wl+"/traced"] = round2(s)
		if worstTraced == 0 || s < worstTraced {
			worstTraced = s
		}
	}
	rep.Notes = []string{
		"MIPS = simulated (retired) instructions per wall-clock second over a full kernel boot of the workload; best of -count runs per cell.",
		"reference = word-at-a-time decode in exec(); predecode = per-physical-frame micro-op arrays dispatched by StepN's batched loop (internal/cpu/predecode.go); superblock = predecode plus cross-frame chains dispatched by execSB with chain-to-chain linking (internal/cpu/superblock.go).",
		"untraced boots run the original images; traced boots run the instrumented images and drain the in-guest trace buffer through the TraceCtl device, the paper's tracing configuration.",
		"All engines produce bit-identical architectural state and trace streams (oracle_test.go three-way differential, internal/cpu lockstep + fuzz).",
		"speedup[wl/traced] compares the superblock engine's traced boot against the reference engine's traced boot — the legacy per-Step burst-64 loop; the >=2x target applies to this ratio.",
		fmt.Sprintf("Worst-case traced speedup across workloads on this host: %.2fx.", worstTraced),
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchcpu:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (worst-case traced speedup %.2fx)\n", *out, worstTraced)
	if worstTraced < 2 {
		fmt.Fprintf(os.Stderr, "benchcpu: traced speedup %.2fx below the 2x target\n", worstTraced)
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
