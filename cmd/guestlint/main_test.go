package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"systrace/internal/asm"
	"systrace/internal/dataflow"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/link"
	"systrace/internal/obj"
	"systrace/internal/sim"
)

// buildAsm instruments hand-written assembly under the bare runtime.
func buildAsm(t *testing.T, f *obj.File) *epoxie.Build {
	t.Helper()
	b, err := epoxie.BuildInstrumented(
		[]*obj.File{sim.TracedStartObj(), f},
		link.Options{Name: "lintprog", TextBase: sim.BareTextBase, DataBase: sim.BareDataBase},
		epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	return b
}

func mustLint(t *testing.T, e *obj.Executable) *dataflow.LintResult {
	t.Helper()
	r, err := dataflow.LintExecutable(e)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return r
}

// assertFires requires the named check to fire and returns its first
// diagnostic. Other checks may legitimately cascade on a mutated image
// (a retargeted branch also orphans its original successor), so they
// are not failures.
func assertFires(t *testing.T, r *dataflow.LintResult, check string) dataflow.LintDiag {
	t.Helper()
	for i := range r.Diags {
		if r.Diags[i].Check == check {
			return r.Diags[i]
		}
	}
	t.Fatalf("check %s never fired (diags: %v)", check, r.Diags)
	return dataflow.LintDiag{}
}

// cleanObj is a well-formed leaf function.
func cleanObj(t *testing.T) *obj.File {
	t.Helper()
	a := asm.New("clean")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-16)))
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7))
	a.I(isa.SW(isa.RegT0, isa.RegSP, 4))
	a.I(isa.LW(isa.RegV0, isa.RegSP, 4))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 16))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	return a.MustFinish()
}

func TestLintCleanImage(t *testing.T) {
	b := buildAsm(t, cleanObj(t))
	r := mustLint(t, b.Instr)
	for _, d := range r.Diags {
		t.Errorf("diagnostic on clean image: %s", d)
	}
	for _, c := range []string{dataflow.LintUnreachable, dataflow.LintInterior,
		dataflow.LintStackBalance, dataflow.LintWildStore} {
		if r.Checks[c] == 0 {
			t.Errorf("check %s never exercised on the clean image", c)
		}
	}
}

// TestLintUnreachable: code jumped over by an unconditional j and
// reached by nothing else.
func TestLintUnreachable(t *testing.T) {
	a := asm.New("dead")
	a.Func("main", 0)
	a.Jmp("out")
	a.I(isa.NOP)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 1)) // dead block
	a.I(isa.ADDIU(isa.RegT0, isa.RegT0, 2))
	a.Label("out")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	b := buildAsm(t, a.MustFinish())
	d := assertFires(t, mustLint(t, b.Instr), dataflow.LintUnreachable)
	if !strings.Contains(d.Msg, "unreachable") {
		t.Errorf("wrong diagnostic: %s", d.Msg)
	}
}

// TestLintInterior: a branch retargeted one instruction past a block
// boundary, into the middle of an instrumentation group.
func TestLintInterior(t *testing.T) {
	a := asm.New("interior")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 1))
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "join")
	a.I(isa.NOP)
	a.I(isa.ADDIU(isa.RegT1, isa.RegZero, 2))
	a.Label("join")
	a.I(isa.SW(isa.RegT0, isa.RegSP, 0))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	b := buildAsm(t, a.MustFinish())

	// Find main's rewritten bne and push its target one word forward.
	var at uint32
	for _, eb := range b.Instr.Blocks {
		if b.Instr.FuncName(eb.Addr) != "main" {
			continue
		}
		for k := int32(0); k < eb.NInstr; k++ {
			addr := eb.Addr + uint32(k)*4
			w := b.Instr.Text[(addr-b.Instr.TextBase)/4]
			if isa.IsBranch(w) && w>>26 == isa.OpBNE {
				at = addr
			}
		}
	}
	if at == 0 {
		t.Fatal("no bne found in instrumented text")
	}
	w := b.Instr.Text[(at-b.Instr.TextBase)/4]
	b.Instr.Text[(at-b.Instr.TextBase)/4] = w&0xffff0000 | (w+1)&0xffff

	d := assertFires(t, mustLint(t, b.Instr), dataflow.LintInterior)
	if !strings.Contains(d.Msg, "interior") {
		t.Errorf("wrong diagnostic: %s", d.Msg)
	}
}

// TestLintStackBalance: a function that pushes a frame and returns
// without popping it.
func TestLintStackBalance(t *testing.T) {
	a := asm.New("leak")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-32)))
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 1))
	a.I(isa.SW(isa.RegT0, isa.RegSP, 0))
	a.I(isa.JR(isa.RegRA)) // frame never popped
	a.I(isa.NOP)
	b := buildAsm(t, a.MustFinish())
	d := assertFires(t, mustLint(t, b.Instr), dataflow.LintStackBalance)
	if !strings.Contains(d.Msg, "-32 bytes") {
		t.Errorf("wrong diagnostic: %s", d.Msg)
	}
}

// TestLintWildStore: stores through provably constant wild addresses.
func TestLintWildStore(t *testing.T) {
	a := asm.New("wild")
	a.Func("main", 0)
	a.I(isa.LUI(isa.RegT0, 0))
	a.I(isa.SW(isa.RegZero, isa.RegT0, 0x10)) // null page
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	b := buildAsm(t, a.MustFinish())
	d := assertFires(t, mustLint(t, b.Instr), dataflow.LintWildStore)
	if !strings.Contains(d.Msg, "null page") {
		t.Errorf("wrong diagnostic: %s", d.Msg)
	}
}

// TestRunCorpusSingle drives the CLI end to end on one workload.
func TestRunCorpusSingle(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "sed", "-runtime", "bare"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s\nstdout: %s", code, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "sed/bare:") {
		t.Errorf("missing summary line: %q", out.String())
	}
}

func TestRunJSON(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "sed", "-runtime", "bare", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	var reports []report
	if err := json.Unmarshal(out.Bytes(), &reports); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out.String())
	}
	if len(reports) != 1 || reports[0].Runtime != "bare" || !reports[0].Clean() {
		t.Errorf("unexpected reports: %+v", reports)
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-workload", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown workload: exit %d, want 2", code)
	}
	if code := run([]string{"-runtime", "nope"}, &out, &errb); code != 2 {
		t.Errorf("unknown runtime: exit %d, want 2", code)
	}
}
