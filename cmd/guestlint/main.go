// Command guestlint runs whole-binary sanity lints over guest images
// using the dataflow value facts (see internal/dataflow): unreachable
// blocks, direct control transfers into block interiors (in a
// rewritten image, into the middle of an instrumentation group),
// stack-balance violations at returns, and stores through provably
// wild pointers. With no file arguments it builds the Table-1
// workloads in memory — every workload × runtime kind by default —
// instruments each, and lints the result; with file arguments it
// lints encoded executables produced by `epoxie -o`.
//
//	guestlint                          # whole corpus, all runtime kinds
//	guestlint -workload gcc -runtime bare
//	guestlint -json /tmp/gcc.traced.exe
//
// Exit status: 0 when every image lints clean, 1 when any diagnostic
// fires, 2 on usage or build errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"systrace/internal/dataflow"
	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

// report is one linted image in the -json output.
type report struct {
	Runtime string `json:"runtime,omitempty"`
	*dataflow.LintResult
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("guestlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	wl := fs.String("workload", "all", "Table-1 workload to build and lint, or \"all\"")
	rt := fs.String("runtime", "all", "runtime kind: user, kernel, bare, or \"all\"")
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON")
	quiet := fs.Bool("q", false, "print only diagnostics, not per-image summaries")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var reports []report
	if fs.NArg() > 0 {
		for _, path := range fs.Args() {
			r, err := lintFile(path)
			if err != nil {
				fmt.Fprintln(stderr, "guestlint:", err)
				return 2
			}
			reports = append(reports, report{LintResult: r})
		}
	} else {
		var err error
		reports, err = lintCorpus(*wl, *rt)
		if err != nil {
			fmt.Fprintln(stderr, "guestlint:", err)
			return 2
		}
	}

	dirty := 0
	for _, r := range reports {
		if !r.Clean() {
			dirty++
		}
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintln(stderr, "guestlint:", err)
			return 2
		}
	} else {
		for _, r := range reports {
			name := r.Name
			if r.Runtime != "" {
				name += "/" + r.Runtime
			}
			for _, d := range r.Diags {
				fmt.Fprintf(stdout, "%s: %s\n", name, d)
			}
			if !*quiet {
				fmt.Fprintf(stdout, "%s: %d blocks, %d checks, %d diagnostics\n",
					name, r.Blocks, totalChecks(r.LintResult), len(r.Diags))
			}
		}
	}
	if dirty > 0 {
		fmt.Fprintf(stderr, "guestlint: %d of %d images failed lint\n", dirty, len(reports))
		return 1
	}
	return 0
}

func totalChecks(r *dataflow.LintResult) int {
	n := 0
	for _, c := range r.Checks {
		n += c
	}
	return n
}

func lintFile(path string) (*dataflow.LintResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	e, err := obj.ReadExecutable(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return dataflow.LintExecutable(e)
}

var runtimeKinds = []struct {
	name string
	kind epoxie.RuntimeKind
}{
	{"user", epoxie.UserRuntime},
	{"kernel", epoxie.KernelRuntime},
	{"bare", epoxie.BareRuntime},
}

func lintCorpus(wl, rt string) ([]report, error) {
	var specs []workload.Spec
	if wl == "all" {
		specs = workload.All()
	} else {
		spec, ok := workload.ByName(wl)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", wl)
		}
		specs = []workload.Spec{spec}
	}
	kinds := runtimeKinds[:]
	if rt != "all" {
		kinds = nil
		for _, k := range runtimeKinds {
			if k.name == rt {
				kinds = []struct {
					name string
					kind epoxie.RuntimeKind
				}{k}
			}
		}
		if kinds == nil {
			return nil, fmt.Errorf("unknown runtime kind %q (want user, kernel, bare, or all)", rt)
		}
	}

	var reports []report
	for _, spec := range specs {
		objs := []*obj.File{userland.Crt0(true)}
		for _, mod := range []*m.Module{spec.Build(), userland.Libc()} {
			o, err := mod.Compile(m.Options{})
			if err != nil {
				return nil, fmt.Errorf("%s: compile: %v", spec.Name, err)
			}
			objs = append(objs, o)
		}
		for _, k := range kinds {
			b, err := epoxie.BuildInstrumented(objs, link.Options{
				Name: spec.Name, Entry: "_start",
				TextBase: obj.UserTextBase, DataBase: obj.UserDataBase,
			}, epoxie.Config{}, k.kind)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: instrument: %v", spec.Name, k.name, err)
			}
			r, err := dataflow.LintExecutable(b.Instr)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %v", spec.Name, k.name, err)
			}
			reports = append(reports, report{Runtime: k.name, LintResult: r})
		}
	}
	return reports, nil
}
