// Command vet-tracer runs the project-specific static analyzers
// (tools/analyzers) over the given directory trees — by default the
// whole module — and prints findings in the familiar
// file:line:col: message shape.
//
//	vet-tracer               # analyze .
//	vet-tracer internal cmd  # analyze specific trees
//	vet-tracer -list         # show registered passes
//
// Exit status: 0 with no findings, 1 with findings, 2 on usage or
// parse errors. Test files (_test.go), testdata, and vendor trees are
// skipped.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"systrace/tools/analyzers"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vet-tracer", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list registered analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	passes := analyzers.All()
	if *list {
		for _, a := range passes {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	roots := fs.Args()
	if len(roots) == 0 {
		roots = []string{"."}
	}
	total := 0
	for _, root := range roots {
		findings, err := analyzers.CheckDir(root, passes)
		if err != nil {
			fmt.Fprintln(stderr, "vet-tracer:", err)
			return 2
		}
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(stderr, "vet-tracer: %d finding(s)\n", total)
		return 1
	}
	return 0
}
