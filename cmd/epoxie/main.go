// Command epoxie instruments a workload binary the way the paper's
// tool instrumented MIPS object files: it compiles the named Table-1
// workload, rewrites its object files at link time, and writes both
// the original and instrumented executables, reporting text growth.
//
//	epoxie -workload gcc -o /tmp/out [-orig] [-pixie]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/pixie"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

func main() {
	name := flag.String("workload", "gcc", "Table-1 workload to instrument")
	outDir := flag.String("o", ".", "output directory")
	orig := flag.Bool("orig", false, "use the original-epoxie emission style (4-6x growth)")
	pix := flag.Bool("pixie", false, "also produce a pixie-instrumented executable")
	flag.Parse()

	spec, ok := workload.ByName(*name)
	if !ok {
		fail(fmt.Errorf("unknown workload %q", *name))
	}

	objs := []*obj.File{userland.Crt0(true)}
	for _, mod := range []*m.Module{spec.Build(), userland.Libc()} {
		o, err := mod.Compile(m.Options{})
		fail(err)
		objs = append(objs, o)
	}
	b, err := epoxie.BuildInstrumented(objs, link.Options{
		Name: spec.Name, Entry: "_start",
		TextBase: obj.UserTextBase, DataBase: obj.UserDataBase,
	}, epoxie.Config{Orig: *orig}, epoxie.UserRuntime)
	fail(err)

	write(*outDir, spec.Name+".exe", b.Orig)
	write(*outDir, spec.Name+".traced.exe", b.Instr)
	fmt.Printf("%s: text %d -> %d bytes (%.2fx growth, %d basic blocks)\n",
		spec.Name, b.Instr.Instr.OrigTextSize, b.Instr.Instr.TextSize,
		b.Instr.Instr.GrowthFactor(), len(b.Instr.Instr.Blocks))

	if *pix {
		res, err := pixie.Rewrite(b.Orig, pixie.ModeTrace)
		fail(err)
		write(*outDir, spec.Name+".pixie.exe", res.Exe)
		fmt.Printf("%s: pixie text %d -> %d bytes (%.2fx growth, translation table at 0x%08x)\n",
			spec.Name, res.Exe.Instr.OrigTextSize, res.Exe.Instr.TextSize,
			res.Exe.Instr.GrowthFactor(), res.TableVA)
	}
}

func write(dir, name string, e *obj.Executable) {
	f, err := os.Create(filepath.Join(dir, name))
	fail(err)
	defer f.Close()
	fail(e.Encode(f))
	fmt.Printf("wrote %s\n", filepath.Join(dir, name))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "epoxie:", err)
		os.Exit(1)
	}
}
