// benchstream compares the trace drain designs — the paper's two-phase
// stop-the-world analysis against the epoch-ring streaming drain, raw
// and compressed — over full traced boots of the sed + lisp workload
// pair running the complete prediction pipeline (parse, conformance,
// memory-system simulation). It writes BENCH_stream.json in the same
// shape as BENCH_cpu.json so the benchmark reports sit side by side in
// the repo root.
//
// Two clocks are reported per cell. Simulated machine cycles are
// deterministic: the streaming drain hides the per-word analysis
// charge behind generation, so its traced run retires in strictly
// fewer cycles. Host wall seconds cover the whole pipeline on this
// machine; on a single-vCPU host the consumer goroutine cannot
// physically overlap the producer, so wall time mostly shows the
// codec's cost, not the pipeline's benefit — num_cpu is recorded so
// readers can judge.
//
//	go run ./cmd/benchstream -out BENCH_stream.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/machine"
	"systrace/internal/trace"
	"systrace/internal/workload"
)

type hostInfo struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

type row struct {
	Workload     string  `json:"workload"`
	Config       string  `json:"config"`
	HostSeconds  float64 `json:"host_seconds"`
	TracedCycles uint64  `json:"traced_cycles"`
	SimSeconds   float64 `json:"sim_seconds"`
	Epochs       uint64  `json:"epochs"`
	StallCycles  uint64  `json:"stall_cycles"`
	Overlap      uint64  `json:"overlap_cycles"`
	RawBytes     uint64  `json:"raw_bytes"`
	EncodedBytes uint64  `json:"encoded_bytes"`
	Ratio        float64 `json:"compression_ratio"`
}

type report struct {
	Benchmark   string             `json:"benchmark"`
	Date        string             `json:"date"`
	Command     string             `json:"command"`
	Host        hostInfo           `json:"host"`
	BufBytes    uint32             `json:"trace_buf_bytes"`
	Results     []row              `json:"results"`
	SpeedupSim  map[string]float64 `json:"speedup_sim"`
	Compression map[string]float64 `json:"compression"`
	Notes       []string           `json:"notes"`
}

var workloads = []string{"sed", "lisp"}

// configs in report order. The raw streaming ring isolates the
// pipelining effect; the compressed ring adds the wire codec.
var configs = []struct {
	name   string
	stream kernel.StreamConfig
}{
	{"twophase", kernel.StreamConfig{}},
	{"stream", kernel.StreamConfig{Epochs: 4, HandoffPerWord: 1}},
	{"stream_compress", kernel.DefaultStream()},
}

// run executes the full prediction pipeline once and reports both
// clocks plus the ring's accounting.
func run(wl string, stream kernel.StreamConfig, bufBytes uint32) (row, uint32, error) {
	r := row{Workload: wl}
	spec, ok := workload.ByName(wl)
	if !ok {
		return r, 0, fmt.Errorf("no workload %q", wl)
	}
	// Collect the previous run's machine before the timed region so GC
	// pauses don't land inside it.
	runtime.GC()
	start := time.Now()
	pred, err := experiment.PredictStream(spec, kernel.Ultrix, 1, bufBytes, stream)
	if err != nil {
		return r, 0, err
	}
	r.HostSeconds = time.Since(start).Seconds()
	r.TracedCycles = pred.TracedCycles
	r.SimSeconds = machine.Seconds(pred.TracedCycles)
	r.Epochs = pred.Stream.Epochs
	r.StallCycles = pred.Stream.StallCycles
	r.Overlap = pred.OverlapCycles
	r.RawBytes = pred.Stream.RawBytes
	r.EncodedBytes = pred.Stream.EncodedBytes
	if r.EncodedBytes > 0 {
		r.Ratio = float64(r.RawBytes) / float64(r.EncodedBytes)
	}
	if !pred.Conformance.Clean() {
		return r, 0, fmt.Errorf("%s/%v: trace fails conformance (%d diags)",
			wl, pred.Flavor, len(pred.Conformance.Diags))
	}
	return r, pred.Result, nil
}

func main() {
	out := flag.String("out", "BENCH_stream.json", "output JSON path")
	count := flag.Int("count", 3, "runs per workload/config pair (best host time is kept)")
	bufBytes := flag.Uint("bufbytes", 512<<10, "trace-buffer (epoch) size in bytes")
	flag.Parse()

	// The buffer must clear the §3.3 slack region with room to trace
	// in: a sliver of usable space degenerates into back-to-back mode
	// switches whose dirt swamps the stream.
	if min := uint(trace.KernelBufSlack + 128<<10); *bufBytes < min {
		fmt.Fprintf(os.Stderr, "benchstream: -bufbytes %d below the minimum %d (slack + 128 KB)\n", *bufBytes, min)
		os.Exit(2)
	}

	rep := report{
		Benchmark: "BenchmarkStreamDrain",
		Date:      time.Now().Format("2006-01-02"),
		Command:   fmt.Sprintf("go run ./cmd/benchstream -out %s -count %d", *out, *count),
		Host: hostInfo{
			GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
			NumCPU: runtime.NumCPU(), GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		BufBytes:    uint32(*bufBytes),
		SpeedupSim:  map[string]float64{},
		Compression: map[string]float64{},
	}

	// Configs are interleaved round-robin rather than run as
	// consecutive blocks (as benchcpu -mode obs does): host-load noise
	// dwarfs the effect being measured, and blocking a config's runs
	// together would let one noisy interval masquerade as a config
	// difference. Best-of-count per cell then discards the noise; the
	// simulated-cycle columns are deterministic and identical across
	// repeats.
	best := map[string]row{} // "wl/config" → best-host-time run
	results := map[string]uint32{}
	for i := 0; i < *count; i++ {
		for _, wl := range workloads {
			for _, cfg := range configs {
				key := wl + "/" + cfg.name
				r, res, err := run(wl, cfg.stream, uint32(*bufBytes))
				if err != nil {
					fmt.Fprintln(os.Stderr, "benchstream:", err)
					os.Exit(1)
				}
				r.Config = cfg.name
				fmt.Printf("%-22s run %d: host %6.3fs  sim %d cycles  %d epochs  stall %d  %6.2fx\n",
					key, i+1, r.HostSeconds, r.TracedCycles, r.Epochs, r.StallCycles, r.Ratio)
				prev, seen := best[key]
				if seen && prev.TracedCycles != r.TracedCycles {
					fmt.Fprintf(os.Stderr, "benchstream: %s: nondeterministic simulation (%d vs %d cycles)\n",
						key, prev.TracedCycles, r.TracedCycles)
					os.Exit(1)
				}
				if old, ok := results[wl]; ok && old != res {
					fmt.Fprintf(os.Stderr, "benchstream: %s: workload result changed across drains (%d vs %d)\n",
						key, old, res)
					os.Exit(1)
				}
				results[wl] = res
				if !seen || r.HostSeconds < prev.HostSeconds {
					best[key] = r
				}
			}
		}
	}

	ok := true
	for _, wl := range workloads {
		for _, cfg := range configs {
			rep.Results = append(rep.Results, best[wl+"/"+cfg.name])
		}
		two := best[wl+"/twophase"]
		sc := best[wl+"/stream_compress"]
		rep.SpeedupSim[wl] = round2(float64(two.TracedCycles) / float64(sc.TracedCycles))
		rep.Compression[wl] = round2(sc.Ratio)
		if sc.TracedCycles >= two.TracedCycles {
			fmt.Fprintf(os.Stderr, "benchstream: %s: overlapped drain not faster in simulated time (%d vs %d cycles)\n",
				wl, sc.TracedCycles, two.TracedCycles)
			ok = false
		}
		if sc.Ratio < 4 {
			fmt.Fprintf(os.Stderr, "benchstream: %s: compression %.2fx below the 4x target\n", wl, sc.Ratio)
			ok = false
		}
	}

	rep.Notes = []string{
		"Each cell runs the full prediction pipeline (traced boot, parse, conformance, memsys simulation); best host time of -count interleaved runs.",
		"twophase = stop-the-world per-buffer analysis charge (paper Figure 1); stream = 4-epoch ring, 1 handoff cycle/word, analysis overlapped; stream_compress adds the internal/trace wire codec.",
		"traced_cycles/sim_seconds are deterministic simulated machine time; speedup_sim = twophase/stream_compress traced cycles.",
		"On a single-vCPU host the consumer goroutine cannot physically overlap the producer, so host_seconds mostly prices the codec; the simulated columns carry the design comparison.",
		"compression = raw/encoded bytes over the whole drained stream at the configured epoch size.",
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchstream:", err)
		os.Exit(1)
	}
	for _, wl := range workloads {
		fmt.Printf("%s: sim speedup %.2fx, compression %.2fx\n", wl, rep.SpeedupSim[wl], rep.Compression[wl])
	}
	fmt.Printf("wrote %s\n", *out)
	if !ok {
		os.Exit(1)
	}
}

func round2(f float64) float64 { return float64(int(f*100+0.5)) / 100 }
