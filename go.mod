module systrace

go 1.22
