#!/bin/sh
# Static analysis gate: the project-specific Go analyzers (vet-tracer)
# and the instrumentation verifier (epoxylint) over every Table-1
# workload under every runtime kind. Run from the repo root (or via
# `make lint`); scripts/check.sh runs this unless SKIP_LINT=1.
set -eu
cd "$(dirname "$0")/.."

echo "== vet-tracer (lockheld, telemetryname, spanbalance, nilness, unusedwrite) =="
go run ./cmd/vet-tracer ./internal ./cmd ./tools

echo "== staticcheck (if installed) =="
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"
fi

echo "== epoxylint (all workloads x runtime kinds) =="
go run ./cmd/epoxylint -q

echo "lint gate: OK"
