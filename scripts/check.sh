#!/bin/sh
# Tier-1 gate: formatting, vet, build, tests. Everything must pass
# before a change lands. Run from the repo root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race (experiment runner + telemetry) =="
go test -race ./internal/experiment/ ./internal/telemetry/

echo "tier-1 gate: OK"
