#!/bin/sh
# Tier-1 gate: formatting, vet, build, tests. Everything must pass
# before a change lands. Run from the repo root (or via `make check`).
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet ./... =="
go vet ./...

echo "== go build ./... =="
go build ./...

echo "== go test ./... =="
go test ./...

echo "== go test -race (cpu core incl. superblock tier, kernel epoch ring, experiment runner, telemetry, obs, rewriter, verifiers) =="
go test -race ./internal/cpu/ ./internal/kernel/ ./internal/experiment/ ./internal/telemetry/ ./internal/obs/ ./internal/epoxie/ ./internal/verify/ ./internal/tracecheck/ ./internal/dataflow/

echo "== differential oracle (reference vs predecode vs superblock, traced + untraced boots, uncached) =="
go test -run '^TestWorkloadDifferentialOracle$' -count=1 .

echo "== obs smoke (traced sed boot: span nesting + folded guest-PC profile) =="
go test -run '^TestObsSmoke$' -count=1 .

echo "== tracelint (trace conformance, all workloads x OS personalities) =="
go run ./cmd/tracelint -q

echo "== tracelint -compress (same corpus over the compressed epoch-ring drain) =="
go run ./cmd/tracelint -q -compress

echo "== guestlint (whole-binary value-fact lints, all workloads x runtime kinds) =="
go run ./cmd/guestlint -q

echo "== fuzz smoke (10s each) =="
go test -run='^$' -fuzz=FuzzDisasm -fuzztime=10s ./internal/isa/
go test -run='^$' -fuzz=FuzzParse -fuzztime=10s ./internal/trace/
go test -run='^$' -fuzz=FuzzStreamCodec -fuzztime=10s ./internal/trace/
go test -run='^$' -fuzz=FuzzConformance -fuzztime=10s ./internal/tracecheck/
go test -run='^$' -fuzz=FuzzExecEquivalence -fuzztime=10s ./internal/cpu/
go test -run='^$' -fuzz=FuzzLiveness -fuzztime=10s ./internal/dataflow/
go test -run='^$' -fuzz=FuzzAbsInt -fuzztime=10s ./internal/dataflow/

if [ "${SKIP_LINT:-0}" != "1" ]; then
	./scripts/lint.sh
fi

echo "tier-1 gate: OK"
