package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// TelemetryName checks metric names at registration sites against the
// telemetry layer's naming convention: snake_case throughout, cumulative
// metrics (Counter, Sample) end in _total, gauges never do, histograms
// name the unit they observe, and no name restates its metric kind.
// It also vets the obs layer's identifiers: flight-recorder event names
// (obs.RegisterEvent) and phase-span names (obs.Begin/BeginDetail) must
// be snake_case, and a file must not register the same event twice —
// the static mirror of RegisterEvent's runtime duplicate panic.
var TelemetryName = &Analyzer{
	Name: "telemetryname",
	Doc:  "telemetry metric and obs span/event names follow the snake_case convention",
	Run:  runTelemetryName,
}

// obsNameMethods are the obs-package calls whose first argument is a
// span or event name. The value records whether the call registers a
// flight-recorder event (subject to the duplicate check).
var obsNameMethods = map[string]bool{
	"RegisterEvent": true,
	"Begin":         false,
	"BeginDetail":   false,
}

// metricKinds maps registration method names to the kind whose suffix
// rules apply. Sample registers a cumulative counter read through a
// closure; SampleGauge does the same for a level.
var metricKinds = map[string]string{
	"Counter":     "counter",
	"Sample":      "counter",
	"Gauge":       "gauge",
	"SampleGauge": "gauge",
	"Histogram":   "histogram",
}

var snakeCase = regexp.MustCompile(`^[a-z][a-z0-9]*(_[a-z0-9]+)*$`)

// kindSuffixes restate the metric kind in its name; the kind is
// already carried by the registration call.
var kindSuffixes = []string{"_counter", "_count", "_gauge", "_hist", "_histogram", "_metric"}

// histogramUnits are the accepted unit suffixes for histograms.
var histogramUnits = []string{"_words", "_cycles", "_bytes", "_seconds", "_instructions"}

func runTelemetryName(fset *token.FileSet, f *ast.File) []Finding {
	var findings []Finding
	add := func(pos token.Pos, format string, args ...any) {
		findings = append(findings, Finding{
			Pos:      fset.Position(pos),
			Analyzer: "telemetryname",
			Msg:      fmt.Sprintf(format, args...),
		})
	}
	events := map[string]token.Pos{} // registered event name → first site
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "obs" {
			if isEvent, ok := obsNameMethods[sel.Sel.Name]; ok && len(call.Args) >= 1 {
				checkObsName(call, isEvent, events, add)
			}
			return true
		}
		kind, ok := metricKinds[sel.Sel.Name]
		// Registration methods take (name, help, ...): require both so
		// unrelated methods that happen to share a name don't match.
		if !ok || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
			return true
		}
		name := lit.Value[1 : len(lit.Value)-1]

		if !snakeCase.MatchString(name) {
			add(lit.Pos(), "metric name %q is not snake_case", name)
			return true
		}
		for _, s := range kindSuffixes {
			if strings.HasSuffix(name, s) {
				add(lit.Pos(), "metric name %q restates its kind; drop the %s suffix (cumulative metrics end in _total)", name, s)
				return true
			}
		}
		switch kind {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				add(lit.Pos(), "cumulative metric %q must end in _total", name)
			}
		case "gauge":
			if strings.HasSuffix(name, "_total") {
				add(lit.Pos(), "gauge %q must not end in _total (that suffix is for cumulative metrics)", name)
			}
		case "histogram":
			unit := false
			for _, s := range histogramUnits {
				if strings.HasSuffix(name, s) {
					unit = true
					break
				}
			}
			if !unit {
				add(lit.Pos(), "histogram %q must end in a unit suffix (%s)", name, strings.Join(histogramUnits, ", "))
			}
		}
		return true
	})
	return findings
}

// checkObsName vets one obs.RegisterEvent/Begin/BeginDetail call:
// literal names must be snake_case, and an event name may be
// registered at most once per file. Dynamic (non-literal) names are
// out of scope — the runtime registry still panics on duplicates.
func checkObsName(call *ast.CallExpr, isEvent bool,
	events map[string]token.Pos, add func(token.Pos, string, ...any)) {
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING || len(lit.Value) < 2 {
		return
	}
	name := lit.Value[1 : len(lit.Value)-1]
	what := "span"
	if isEvent {
		what = "event"
	}
	if !snakeCase.MatchString(name) {
		add(lit.Pos(), "obs %s name %q is not snake_case", what, name)
		return
	}
	if isEvent {
		if _, dup := events[name]; dup {
			add(lit.Pos(), "obs event %q registered more than once (RegisterEvent panics on duplicates)", name)
			return
		}
		events[name] = lit.Pos()
	}
}
