package analyzers

import (
	"go/ast"
	"go/token"
)

// UnusedWrite is a syntactic look-alike of x/tools' unusedwrite pass,
// built on go/ast only: it flags a write to a field or element of a
// local value-typed variable (`v.f = e`, `v[i] = e`) when the
// variable is provably a local copy and is never mentioned again
// afterwards — the write lands in storage nothing will ever read.
// Without type information "provably a copy" is syntactic: v must be
// declared in the same function as a value, via `v := T{...}` (not
// &T{...}), `var v T` with a non-pointer type expression, or
// `v := *p`. Writes through pointers, into captured variables, or
// inside loops (where a later read at an earlier source position is
// possible) are never flagged.
var UnusedWrite = &Analyzer{
	Name: "unusedwrite",
	Doc:  "no write to a field or element of a local copy that is never read afterwards",
	Run:  runUnusedWrite,
}

func runUnusedWrite(fset *token.FileSet, f *ast.File) []Finding {
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		fd, isFunc := n.(*ast.FuncDecl)
		if !isFunc || fd.Body == nil {
			return true
		}
		values := valueLocals(fd.Body)
		if len(values) == 0 {
			return true
		}
		// Collect candidate writes outside loops and closures, plus
		// every other mention of each candidate variable.
		type write struct {
			name string
			pos  token.Pos
			end  token.Pos
		}
		var writes []write
		walkOutsideLoops(fd.Body, func(s ast.Stmt) {
			as, isAssign := s.(*ast.AssignStmt)
			if !isAssign || len(as.Lhs) != 1 || as.Tok != token.ASSIGN {
				return
			}
			var base *ast.Ident
			switch l := as.Lhs[0].(type) {
			case *ast.SelectorExpr:
				base, _ = l.X.(*ast.Ident)
			case *ast.IndexExpr:
				base, _ = l.X.(*ast.Ident)
			}
			if base == nil || !values[base.Name] {
				return
			}
			writes = append(writes, write{base.Name, as.Pos(), as.End()})
		})
		for _, w := range writes {
			if mentionedAfter(fd.Body, w.name, w.end) || capturedByClosure(fd.Body, w.name) {
				continue
			}
			findings = append(findings, Finding{
				Pos:      fset.Position(w.pos),
				Analyzer: "unusedwrite",
				Msg:      "write to " + w.name + " is never read: the variable is a local copy and is not used after this point",
			})
		}
		return true
	})
	return findings
}

// valueLocals finds variables declared in the body that are
// syntactically value-typed locals: `v := T{...}`, `v := *p`, or
// `var v T` with a non-pointer, non-reference type expression.
func valueLocals(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	drop := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
				for i, l := range x.Lhs {
					id, ok := l.(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					switch r := x.Rhs[i].(type) {
					case *ast.CompositeLit:
						if valueType(r.Type) {
							out[id.Name] = true
						}
					case *ast.StarExpr:
						out[id.Name] = true
					}
				}
			} else if x.Tok == token.DEFINE || x.Tok == token.ASSIGN {
				// Re-binding (v = other, or v, err := f()) makes the
				// provenance unclear; drop the name entirely.
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						drop[id.Name] = true
					}
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || vs.Type == nil || len(vs.Values) > 0 {
					continue
				}
				if valueType(vs.Type) {
					for _, id := range vs.Names {
						out[id.Name] = true
					}
				}
			}
		case *ast.UnaryExpr:
			// &v: the address escapes, writes may be observed.
			if x.Op == token.AND {
				if id, ok := x.X.(*ast.Ident); ok {
					drop[id.Name] = true
				}
			}
		}
		return true
	})
	for name := range drop {
		delete(out, name)
	}
	return out
}

// valueType reports whether a type expression is syntactically a
// value: a named type or array, not a pointer, map, slice, or chan
// (writes through those alias shared storage).
func valueType(t ast.Expr) bool {
	switch x := t.(type) {
	case *ast.Ident:
		return true
	case *ast.SelectorExpr:
		return true
	case *ast.ArrayType:
		return x.Len != nil // [N]T is a value, []T aliases
	}
	return false
}

// walkOutsideLoops visits statements of the function body that are not
// inside any for/range statement or function literal.
func walkOutsideLoops(body *ast.BlockStmt, visit func(ast.Stmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case ast.Stmt:
			visit(n.(ast.Stmt))
		}
		return true
	})
}

// mentionedAfter reports whether the identifier appears anywhere in
// the body at a position strictly after pos.
func mentionedAfter(body *ast.BlockStmt, name string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name && id.Pos() >= pos {
			found = true
		}
		return !found
	})
	return found
}

// capturedByClosure reports whether the identifier appears inside any
// function literal in the body (the closure may read it later).
func capturedByClosure(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if mentions(lit.Body, name) {
				found = true
			}
			return false
		}
		return !found
	})
	return found
}
