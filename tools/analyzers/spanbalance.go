package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// SpanBalance checks that every phase span opened with obs.Begin /
// obs.BeginDetail is closed on every path: the observability timeline
// nests spans by goroutine, so one leaked Begin corrupts the Gantt for
// everything that follows it (internal/obs/span.go). The pass is
// flow-sensitive in the same conservative style as lockheld:
//
//   - `defer sp.End()` discharges the span for the whole function.
//   - an explicit `sp.End()` must appear before every return, and —
//     for spans opened inside a loop body — before every continue or
//     break and by the end of the body (one leak per iteration).
//   - a span value that escapes (stored in a field, passed to a call,
//     returned, or captured by a closure) is the escapee's problem and
//     stops being tracked.
//   - discarding the result (`obs.Begin(...)` as a statement, or
//     assigning it to _) can never be balanced and is flagged at once.
//
// A span ended separately in both arms of an if is conservatively
// still considered open afterwards; end it once after the branch or
// use defer.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "every obs.Begin/BeginDetail phase span is ended on all paths",
	Run:  runSpanBalance,
}

func runSpanBalance(fset *token.FileSet, f *ast.File) []Finding {
	var findings []Finding
	// Every function body — declarations and literals — is its own
	// tracking context (a span captured by a closure escapes the outer
	// one; the closure body is then checked on its own).
	ast.Inspect(f, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch x := n.(type) {
		case *ast.FuncDecl:
			body = x.Body
		case *ast.FuncLit:
			body = x.Body
		}
		if body == nil {
			return true
		}
		sw := &spanWalker{fset: fset}
		open := map[string]span{}
		sw.stmts(body.List, open, nil)
		if !endsTerminating(body.List) {
			sw.leaks(open, nil, body.End(), "function exit")
		}
		findings = append(findings, sw.findings...)
		return true
	})
	return findings
}

// span is one tracked obs.Begin result.
type span struct {
	name string // the span's literal name argument, for diagnostics
	pos  token.Pos
}

type spanWalker struct {
	fset     *token.FileSet
	findings []Finding
}

// beginCall recognizes obs.Begin/obs.BeginDetail (the package name may
// be aliased, but aliases keep an "obs" stem in this codebase) and
// returns the span's name argument when it is a string literal.
func beginCall(e ast.Expr) (name string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || (sel.Sel.Name != "Begin" && sel.Sel.Name != "BeginDetail") {
		return "", false
	}
	pkg, isIdent := sel.X.(*ast.Ident)
	if !isIdent || !strings.Contains(strings.ToLower(pkg.Name), "obs") {
		return "", false
	}
	name = "?"
	if len(call.Args) > 0 {
		if lit, isLit := call.Args[0].(*ast.BasicLit); isLit {
			name = strings.Trim(lit.Value, "`\"")
		}
	}
	return name, true
}

// endCall recognizes `x.End()` on a plain identifier and returns the
// identifier name.
func endCall(e ast.Expr) (recv string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "End" {
		return "", false
	}
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", false
	}
	return id.Name, true
}

// stmts walks a statement list. open maps variable names to their
// pending spans; outer names spans opened before the innermost loop
// (legitimately still open at a continue). Branch bodies are walked
// with copies, so an End on one path does not close the span on
// another.
func (w *spanWalker) stmts(list []ast.Stmt, open map[string]span, outer map[string]bool) {
	for _, s := range list {
		switch x := s.(type) {
		case *ast.AssignStmt:
			if len(x.Rhs) == 1 {
				if name, ok := beginCall(x.Rhs[0]); ok && len(x.Lhs) == 1 {
					if id, isIdent := x.Lhs[0].(*ast.Ident); isIdent {
						if id.Name == "_" {
							w.flag(x.Rhs[0].Pos(), "span %q is discarded and can never be ended", name)
						} else {
							open[id.Name] = span{name: name, pos: x.Rhs[0].Pos()}
						}
						continue
					}
					// Assigned into a field or slice slot: escapes.
					continue
				}
			}
			w.escape(x, open)
		case *ast.ExprStmt:
			if name, ok := beginCall(x.X); ok {
				w.flag(x.X.Pos(), "span %q is discarded and can never be ended", name)
				continue
			}
			if recv, ok := endCall(x.X); ok {
				if _, tracked := open[recv]; tracked {
					delete(open, recv)
					continue
				}
			}
			w.escape(x, open)
		case *ast.DeferStmt:
			if recv, ok := endCall(x.Call); ok {
				// Discharged for the whole function, every path.
				delete(open, recv)
				continue
			}
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				// `defer func() { sp.End(); ... }()` discharges too —
				// the cleanup closure runs on every path.
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if e, isExpr := n.(*ast.ExprStmt); isExpr {
						if recv, ok := endCall(e.X); ok {
							delete(open, recv)
						}
					}
					return true
				})
			}
			w.escape(x, open)
		case *ast.ReturnStmt:
			// Returned spans become the caller's responsibility.
			for _, r := range x.Results {
				w.escape(r, open)
			}
			w.leaks(open, nil, x.Pos(), "return")
		case *ast.BranchStmt:
			if x.Tok == token.CONTINUE || x.Tok == token.BREAK {
				w.leaks(open, outer, x.Pos(), x.Tok.String())
			}
		case *ast.GoStmt:
			// Anything a goroutine touches — even just sp.End() — is
			// asynchronous: the span escapes to that goroutine.
			ast.Inspect(x, func(n ast.Node) bool {
				if id, isIdent := n.(*ast.Ident); isIdent {
					delete(open, id.Name)
				}
				return true
			})
		case *ast.BlockStmt:
			w.stmts(x.List, open, outer)
		case *ast.IfStmt:
			w.escape(x.Init, open)
			w.escape(x.Cond, open)
			w.stmts(x.Body.List, copySpans(open), outer)
			if x.Else != nil {
				w.stmts([]ast.Stmt{x.Else}, copySpans(open), outer)
			}
		case *ast.ForStmt:
			w.escape(x.Init, open)
			w.escape(x.Cond, open)
			w.escape(x.Post, open)
			w.loopBody(x.Body, open)
		case *ast.RangeStmt:
			w.escape(x.X, open)
			w.loopBody(x.Body, open)
		case *ast.SwitchStmt:
			w.escape(x.Init, open)
			w.escape(x.Tag, open)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copySpans(open), outer)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copySpans(open), outer)
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.stmts(cc.Body, copySpans(open), outer)
				}
			}
		default:
			w.escape(s, open)
		}
	}
}

// loopBody walks a for/range body: spans open on entry are the new
// outer set (open at continue is fine for them), spans opened inside
// must close by every continue, break, and the end of the body.
func (w *spanWalker) loopBody(body *ast.BlockStmt, open map[string]span) {
	inner := copySpans(open)
	before := make(map[string]bool, len(open))
	for name := range open {
		before[name] = true
	}
	w.stmts(body.List, inner, before)
	if !endsTerminating(body.List) {
		w.leaks(inner, before, body.End(), "end of loop body")
	}
}

func copySpans(open map[string]span) map[string]span {
	out := make(map[string]span, len(open))
	for k, v := range open {
		out[k] = v
	}
	return out
}

// leaks reports every open span not excused by the keep set.
func (w *spanWalker) leaks(open map[string]span, keep map[string]bool, at token.Pos, where string) {
	for name, sp := range open {
		if keep[name] {
			continue
		}
		w.flag(at, "span %q (%s, opened at %s) is still open at %s; call %s.End() or defer it",
			sp.name, name, w.fset.Position(sp.pos), where, name)
	}
}

// escape drops tracking for any span value used under n in a way other
// than `name.End()`: call arguments, composite literals, comparisons,
// closures capturing it. Closure bodies are checked separately, so the
// subtree still gets its own pass.
func (w *spanWalker) escape(n ast.Node, open map[string]span) {
	if n == nil || len(open) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if x.Sel.Name == "End" {
				if _, isIdent := x.X.(*ast.Ident); isIdent {
					return false
				}
			}
		case *ast.Ident:
			delete(open, x.Name)
		}
		return true
	})
}

// endsTerminating reports whether the list's last statement never
// falls through (so open spans were already checked at that point).
func endsTerminating(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch x := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok && calleeName(call) == "panic" {
			return true
		}
	}
	return false
}

func (w *spanWalker) flag(at token.Pos, format string, args ...any) {
	w.findings = append(w.findings, Finding{
		Pos:      w.fset.Position(at),
		Analyzer: "spanbalance",
		Msg:      fmt.Sprintf(format, args...),
	})
}
