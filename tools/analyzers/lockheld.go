package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// LockHeld flags build/simulate-class calls made while a mutex is
// held. The build caches in internal/experiment exist so that the
// table lock is held only for map bookkeeping — a build or a simulated
// run under that lock serializes every worker behind one multi-second
// operation, which is exactly the regression this pass pins down.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "no build or simulate call while a mutex is held",
	Run:  runLockHeld,
}

// mutexName matches receivers we treat as mutexes: mu, cacheMu,
// buildMutex, r.mu, ...
var mutexName = regexp.MustCompile(`(?i)mu(tex)?$`)

// expensiveCallees are the build/simulate-class entry points that must
// never run under a lock. Bare names are matched so the pass stays
// type-free: epoxie.BuildInstrumented, kernel.Build, mach.Run, and
// mod.Compile all resolve to their final identifier.
var expensiveCallees = map[string]bool{
	"Build":             true,
	"BuildInstrumented": true,
	"Compile":           true,
	"Rewrite":           true,
	"Link":              true,
	"LinkLayout":        true,
	"Boot":              true,
	"Run":               true,
	"Simulate":          true,
}

func runLockHeld(fset *token.FileSet, f *ast.File) []Finding {
	var findings []Finding
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		lw := &lockWalker{fset: fset}
		lw.stmts(fn.Body.List, map[string]bool{})
		findings = append(findings, lw.findings...)
	}
	return findings
}

type lockWalker struct {
	fset     *token.FileSet
	findings []Finding
}

// lockCall classifies a statement as a Lock/Unlock/RLock/RUnlock call
// on a mutex-named receiver, returning the hold key (the receiver
// rendering, with a "(read)" suffix for RWMutex read holds) and
// whether it acquires. Read and write holds are tracked as separate
// keys: an RUnlock must not release a write hold and vice versa.
func lockCall(s ast.Stmt) (key string, acquire, ok bool) {
	es, isExpr := s.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	return lockCallExpr(es.X)
}

func lockCallExpr(e ast.Expr) (key string, acquire, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return "", false, false
	}
	recv := exprString(sel.X)
	last := recv
	if i := strings.LastIndex(recv, "."); i >= 0 {
		last = recv[i+1:]
	}
	if !mutexName.MatchString(last) {
		return "", false, false
	}
	if read {
		recv += " (read)"
	}
	return recv, acquire, true
}

// stmts walks a statement list with the current held-lock set.
// Branch bodies are walked with a copy: a lock released on one path is
// conservatively still considered held on the fallthrough path.
func (w *lockWalker) stmts(list []ast.Stmt, held map[string]bool) {
	for _, s := range list {
		if recv, acquire, ok := lockCall(s); ok {
			if acquire {
				held[recv] = true
			} else {
				delete(held, recv)
			}
			continue
		}
		if d, ok := s.(*ast.DeferStmt); ok {
			// `defer mu.Unlock()` keeps the lock held to function
			// exit; anything after it still runs under the lock.
			if _, _, ok := lockCallExpr(d.Call); ok {
				continue
			}
		}
		switch x := s.(type) {
		case *ast.BlockStmt:
			w.stmts(x.List, copyHeld(held))
		case *ast.IfStmt:
			w.inspect(x.Init, held)
			w.inspect(x.Cond, held)
			w.stmts(x.Body.List, copyHeld(held))
			if x.Else != nil {
				w.stmts([]ast.Stmt{x.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			w.inspect(x.Init, held)
			w.inspect(x.Cond, held)
			w.inspect(x.Post, held)
			w.stmts(x.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			w.inspect(x.X, held)
			w.stmts(x.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			w.inspect(x.Init, held)
			w.inspect(x.Tag, held)
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.stmts(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range x.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.stmts(cc.Body, copyHeld(held))
				}
			}
		default:
			w.inspect(s, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// inspect flags expensive calls under node n — a simple statement or
// the condition/init part of a compound one (stmts descends into
// bodies with its own held tracking). Goroutine and closure bodies
// escape the lock, so those subtrees are skipped.
func (w *lockWalker) inspect(n ast.Node, held map[string]bool) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name := calleeName(x)
			if expensiveCallees[name] {
				locks := make([]string, 0, len(held))
				for k := range held {
					locks = append(locks, k)
				}
				sort.Strings(locks)
				w.findings = append(w.findings, Finding{
					Pos:      w.fset.Position(x.Pos()),
					Analyzer: "lockheld",
					Msg: fmt.Sprintf("call to %s while %s is held (builds and runs must happen outside the lock; cache an entry and release first)",
						name, strings.Join(locks, ", ")),
				})
			}
		}
		return true
	})
}
