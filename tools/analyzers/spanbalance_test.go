package analyzers

import (
	"strings"
	"testing"
)

func TestSpanBalanceDeferClean(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	sp := obs.BeginDetail("measure_run", detail)
	defer sp.End()
	if err != nil {
		return
	}
	work()
}
`), "spanbalance")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestSpanBalanceDeferClosureClean(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	sp := obs.BeginDetail("runner_job", key)
	defer func() {
		sp.End()
		release()
	}()
	work()
}
`), "spanbalance")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestSpanBalanceLeakAtReturn(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() error {
	sp := obs.Begin("trace_drain")
	if err != nil {
		return err
	}
	sp.End()
	return nil
}
`), "spanbalance")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, `span "trace_drain"`) ||
		!strings.Contains(fs[0].Msg, "still open at return") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("line = %d, want 6 (the leaking return)", fs[0].Pos.Line)
	}
}

func TestSpanBalanceLeakAtFunctionExit(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	sp := obs.Begin("stream_consume")
	work(sp2)
}
`), "spanbalance")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "function exit") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

// The stream-consumer shape: a span opened per iteration, ended before
// every continue and at the end of the body.
func TestSpanBalanceLoopContinueClean(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	for b := range work {
		sp := obs.Begin("stream_consume")
		if skip(b) {
			sp.End()
			continue
		}
		analyze(b)
		sp.End()
	}
}
`), "spanbalance")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestSpanBalanceLoopContinueLeak(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	for b := range work {
		sp := obs.Begin("stream_consume")
		if skip(b) {
			continue
		}
		analyze(b)
		sp.End()
	}
}
`), "spanbalance")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "still open at continue") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

// A span opened before the loop is legitimately open at a continue.
func TestSpanBalanceOuterSpanAtContinueClean(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	sp := obs.BeginDetail("machine_run", name)
	defer sp.End()
	for i := range items {
		if skip(i) {
			continue
		}
		work(i)
	}
}
`), "spanbalance")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestSpanBalanceLoopBodyLeak(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	for i := range items {
		sp := obs.Begin("trace_analysis")
		work(i)
	}
}
`), "spanbalance")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "end of loop body") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
}

func TestSpanBalanceDiscarded(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	obs.Begin("orphan")
	_ = obs.BeginDetail("orphan2", d)
}
`), "spanbalance")
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want two", fs)
	}
	for _, f := range fs {
		if !strings.Contains(f.Msg, "discarded") {
			t.Errorf("msg = %q", f.Msg)
		}
	}
}

// Escapes stop tracking: stored, passed, returned, or captured spans
// are the new owner's responsibility.
func TestSpanBalanceEscapesClean(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func stored() {
	sp := obs.Begin("a")
	s.span = sp
}

func passed() {
	sp := obs.Begin("b")
	keep(sp)
}

func returned() interface{} {
	sp := obs.Begin("c")
	return sp
}

func captured() {
	sp := obs.Begin("d")
	go func() { sp.End() }()
}
`), "spanbalance")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

// Closure bodies are their own context: a leak inside a FuncLit is
// found even though the literal is assigned to a field.
func TestSpanBalanceClosureBodyChecked(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func wire() {
	sys.OnTrace = func(words []uint32) {
		sp := obs.Begin("trace_analysis")
		if len(words) == 0 {
			return
		}
		sp.End()
	}
}
`), "spanbalance")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
}
