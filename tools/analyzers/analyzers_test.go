package analyzers

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// checkSrc writes src as a lone file in a temp dir and runs every
// analyzer over it.
func checkSrc(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := CheckDir(dir, All())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func byAnalyzer(fs []Finding, name string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Analyzer == name {
			out = append(out, f)
		}
	}
	return out
}

func TestLockHeldFlagsBuildUnderLock(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	kernel.Build(cfg)
}
`), "lockheld")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "Build while cacheMu is held") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
	if fs[0].Pos.Line != 6 {
		t.Errorf("line = %d, want 6", fs[0].Pos.Line)
	}
}

func TestLockHeldUnlockBeforeBuild(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	mu.Lock()
	e := entry()
	mu.Unlock()
	kernel.Build(cfg)
}
`), "lockheld")
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestLockHeldBranchRelease(t *testing.T) {
	// The fallthrough path still holds the lock after a branch-local
	// release: a build after the if must be flagged.
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	r.mu.Lock()
	if ok {
		r.mu.Unlock()
		return
	}
	x := mod.Compile(opts)
	r.mu.Unlock()
	_ = x
}
`), "lockheld")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "Compile") {
		t.Fatalf("findings = %v, want one Compile finding", fs)
	}
}

func TestLockHeldGoroutineEscapes(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	r.mu.Lock()
	c := newCall()
	r.mu.Unlock()
	go r.Run(c)
}

func alsoGood() {
	mu.Lock()
	go func() { kernel.Build(cfg) }()
	mu.Unlock()
}
`), "lockheld")
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestLockHeldNonMutexReceiver(t *testing.T) {
	// Lock/Unlock on receivers that don't look like mutexes (a file
	// lock, say) are out of scope.
	fs := byAnalyzer(checkSrc(t, `package p

func fine() {
	flock.Lock()
	kernel.Build(cfg)
	flock.Unlock()
}
`), "lockheld")
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestLockHeldCondExpr(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	mu.Lock()
	defer mu.Unlock()
	if sim.Run(n) != nil {
		return
	}
}
`), "lockheld")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "Run") {
		t.Fatalf("findings = %v, want one Run finding", fs)
	}
}

func TestLockHeldReadLock(t *testing.T) {
	// A build under an RWMutex read hold serializes behind the writer
	// just the same; the finding names the hold as a read hold.
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	cacheMu.RLock()
	defer cacheMu.RUnlock()
	kernel.Build(cfg)
}
`), "lockheld")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "cacheMu (read) is held") {
		t.Errorf("msg = %q, want read hold named", fs[0].Msg)
	}
}

func TestLockHeldReadUnlockReleases(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() {
	cacheMu.RLock()
	e := lookup()
	cacheMu.RUnlock()
	kernel.Build(cfg)
}
`), "lockheld")
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestLockHeldMismatchedUnlockKind(t *testing.T) {
	// Unlock does not release a read hold (and RUnlock would not
	// release a write hold): the build still runs under the RLock.
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	mu.RLock()
	mu.Unlock()
	kernel.Build(cfg)
}
`), "lockheld")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "mu (read)") {
		t.Fatalf("findings = %v, want one read-hold finding", fs)
	}
}

func TestLockHeldBothKindsHeld(t *testing.T) {
	// Distinct read and write holds on different mutexes are both
	// reported, each under its own rendering.
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	tabMu.RLock()
	defer tabMu.RUnlock()
	buildMu.Lock()
	defer buildMu.Unlock()
	epoxie.BuildInstrumented(objs, opts, cfg, kind)
}
`), "lockheld")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "buildMu, tabMu (read)") {
		t.Errorf("msg = %q, want both holds listed", fs[0].Msg)
	}
}

func TestTelemetryNameRules(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func metrics(reg *telemetry.Registry) {
	reg.Counter("good_events_total", "help")
	reg.Counter("badEvents_total", "help")
	reg.Sample("kernel_utlb_miss_counter", "help", fn)
	reg.Sample("trace_max_exception_depth", "help", fn)
	reg.Gauge("distortion_time_dilation", "help")
	reg.Gauge("distortion_total", "help")
	reg.Histogram("flush_words", "help")
	reg.Histogram("flush_sizes", "help")
	reg.SampleGauge("trace_exception_depth_max", "help", fn)
	other.Counter(name, "help")
	unrelated.Counter("whatever")
}
`), "telemetryname")
	want := []string{
		`"badEvents_total" is not snake_case`,
		`"kernel_utlb_miss_counter" restates its kind`,
		`"trace_max_exception_depth" must end in _total`,
		`"distortion_total" must not end in _total`,
		`"flush_sizes" must end in a unit suffix`,
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(fs), fs, len(want))
	}
	for i, w := range want {
		if !strings.Contains(fs[i].Msg, w) {
			t.Errorf("finding %d = %q, want mention of %s", i, fs[i].Msg, w)
		}
	}
}

func TestObsNameRules(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

var (
	evGood = obs.RegisterEvent("cpu_exception")
	evBad  = obs.RegisterEvent("CPUException")
	evDup  = obs.RegisterEvent("cpu_exception")
)

func phases() {
	sp := obs.Begin("trace_drain")
	sp2 := obs.BeginDetail("machine_run", cfg.String())
	sp3 := obs.Begin("traceDrain")
	sp4 := obs.BeginDetail("Machine-Run", "x")
	dyn := obs.Begin(name)
	obs.Emit(evGood, 1, 2)
	_ = []any{sp, sp2, sp3, sp4, dyn}
}
`), "telemetryname")
	want := []string{
		`obs event name "CPUException" is not snake_case`,
		`obs event "cpu_exception" registered more than once`,
		`obs span name "traceDrain" is not snake_case`,
		`obs span name "Machine-Run" is not snake_case`,
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings %v, want %d", len(fs), fs, len(want))
	}
	for i, w := range want {
		if !strings.Contains(fs[i].Msg, w) {
			t.Errorf("finding %d = %q, want mention of %s", i, fs[i].Msg, w)
		}
	}
}

func TestObsNameCleanUsage(t *testing.T) {
	// Well-formed names, a dynamic name, and same-named obs calls on a
	// non-obs receiver are all out of scope.
	fs := byAnalyzer(checkSrc(t, `package p

var ev = obs.RegisterEvent("kernel_trace_doorbell")

func fine() {
	sp := obs.BeginDetail("runner_job", key.String())
	defer sp.End()
	dyn := obs.Begin(spanName)
	reg2.RegisterEvent("NotTheObsPackage")
	_ = dyn
}
`), "telemetryname")
	if len(fs) != 0 {
		t.Fatalf("unexpected findings: %v", fs)
	}
}

func TestCheckDirSkipsTestFiles(t *testing.T) {
	dir := t.TempDir()
	bad := `package p

func bad() {
	mu.Lock()
	kernel.Build(cfg)
	mu.Unlock()
}
`
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "testdata"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "testdata", "y.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := CheckDir(dir, All())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("test/testdata files were analyzed: %v", fs)
	}
}

// TestRepoIsClean runs both passes over the real module: the tier-1
// gate depends on this staying green.
func TestRepoIsClean(t *testing.T) {
	root := "../.."
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skip("module root not found")
	}
	fs, err := CheckDir(root, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestNilnessFlagsDerefInNilBranch(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad(e *Exe) int {
	if e == nil {
		return e.Entry
	}
	return 0
}
`), "nilness")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "dereference of e") || fs[0].Pos.Line != 5 {
		t.Errorf("finding = %v", fs[0])
	}
}

func TestNilnessFlagsElseOfNotNil(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad(p *T) {
	if p != nil {
		use(p)
	} else {
		p.close()
	}
}
`), "nilness")
	if len(fs) != 1 || fs[0].Pos.Line != 7 {
		t.Fatalf("findings = %v, want one at line 7", fs)
	}
}

func TestNilnessFlagsSwitchCaseNil(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad(w io.Writer) {
	switch w {
	case nil:
		w.Write(nil)
	}
}
`), "nilness")
	if len(fs) != 1 || fs[0].Pos.Line != 6 {
		t.Fatalf("findings = %v, want one at line 6", fs)
	}
}

func TestNilnessRepairStopsTracking(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good(e *Exe) int {
	if e == nil {
		e = defaultExe()
		return e.Entry
	}
	return e.Entry
}

func star(p *int) int {
	if p == nil {
		fix(&p)
		return *p
	}
	return *p
}
`), "nilness")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}

func TestNilnessStarDeref(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad(p *int) int {
	if nil == p {
		return *p
	}
	return 0
}
`), "nilness")
	if len(fs) != 1 || fs[0].Pos.Line != 5 {
		t.Fatalf("findings = %v, want one at line 5", fs)
	}
}

func TestUnusedWriteFlagsDeadFieldWrite(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() int {
	c := Config{Depth: 1}
	n := c.Depth
	c.Depth = 2
	return n
}
`), "unusedwrite")
	if len(fs) != 1 {
		t.Fatalf("findings = %v, want exactly one", fs)
	}
	if !strings.Contains(fs[0].Msg, "write to c is never read") || fs[0].Pos.Line != 6 {
		t.Errorf("finding = %v", fs[0])
	}
}

func TestUnusedWriteVarDeclAndIndex(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func bad() {
	var buf [4]byte
	buf[0] = 1
}
`), "unusedwrite")
	if len(fs) != 1 || fs[0].Pos.Line != 5 {
		t.Fatalf("findings = %v, want one at line 5", fs)
	}
}

func TestUnusedWriteSkipsReadAfter(t *testing.T) {
	fs := byAnalyzer(checkSrc(t, `package p

func good() int {
	c := Config{}
	c.Depth = 2
	return c.Depth
}

func pointer(p *Config) {
	p.Depth = 2 // write through a pointer: not a local copy
}

func escapes() *Config {
	c := Config{}
	c.Depth = 2
	return &c
}

func slices() {
	s := []int{0}
	s[0] = 1 // []T aliases shared storage
}

func looped() {
	c := Config{}
	for i := 0; i < 2; i++ {
		c.Depth = i // next iteration may read it
	}
}

func captured() func() int {
	c := Config{}
	c.Depth = 2
	return func() int { return c.Depth }
}
`), "unusedwrite")
	if len(fs) != 0 {
		t.Fatalf("findings = %v, want none", fs)
	}
}
