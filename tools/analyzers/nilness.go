package analyzers

import (
	"go/ast"
	"go/token"
)

// Nilness is a syntactic look-alike of x/tools' nilness pass, built on
// go/ast only: inside a branch where a variable is known to be nil —
// the body of `if x == nil`, the else arm of `if x != nil`, or a
// `case nil:` clause switching on x — any dereference of x (a field
// or method selection `x.f`, or an explicit `*x`) must panic at
// runtime. Tracking is conservative: it stops at the first statement
// that reassigns x or captures it in a closure, so a branch that
// repairs the nil before using it is not flagged. Only identifiers
// compared against the predeclared nil are considered, which in
// compiling code restricts the check to pointer, interface, map,
// slice, channel, and function values.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "no dereference of a variable on a path where it is known to be nil",
	Run:  runNilness,
}

func runNilness(fset *token.FileSet, f *ast.File) []Finding {
	var findings []Finding
	flag := func(at token.Pos, name string) {
		findings = append(findings, Finding{
			Pos:      fset.Position(at),
			Analyzer: "nilness",
			Msg:      "dereference of " + name + ", which is nil on this path",
		})
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IfStmt:
			if name, eq := nilCompare(x.Cond); name != "" {
				if eq {
					checkNilBody(x.Body.List, name, flag)
				} else if blk, ok := x.Else.(*ast.BlockStmt); ok {
					checkNilBody(blk.List, name, flag)
				}
			}
		case *ast.SwitchStmt:
			id, isIdent := x.Tag.(*ast.Ident)
			if !isIdent || x.Init != nil {
				return true
			}
			for _, c := range x.Body.List {
				cc, isCase := c.(*ast.CaseClause)
				if !isCase {
					continue
				}
				for _, e := range cc.List {
					if lit, ok := e.(*ast.Ident); ok && lit.Name == "nil" {
						checkNilBody(cc.Body, id.Name, flag)
					}
				}
			}
		}
		return true
	})
	return findings
}

// nilCompare matches `x == nil` / `nil == x` (eq true) and the !=
// forms (eq false), for a plain identifier x.
func nilCompare(cond ast.Expr) (name string, eq bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
		return "", false
	}
	xi, xIsIdent := bin.X.(*ast.Ident)
	yi, yIsIdent := bin.Y.(*ast.Ident)
	switch {
	case xIsIdent && yIsIdent && yi.Name == "nil" && xi.Name != "nil":
		return xi.Name, bin.Op == token.EQL
	case xIsIdent && yIsIdent && xi.Name == "nil" && yi.Name != "nil":
		return yi.Name, bin.Op == token.EQL
	}
	return "", false
}

// checkNilBody walks the statements of a known-nil branch in source
// order, flagging dereferences of name until something reassigns it or
// captures it in a closure.
func checkNilBody(list []ast.Stmt, name string, flag func(token.Pos, string)) {
	for _, s := range list {
		if reassigns(s, name) {
			return
		}
		live := true
		ast.Inspect(s, func(n ast.Node) bool {
			if !live {
				return false
			}
			switch x := n.(type) {
			case *ast.FuncLit:
				// The closure may run later with a different value; and
				// if it captures and assigns name, tracking is unsound.
				if mentions(x.Body, name) {
					live = false
				}
				return false
			case *ast.SelectorExpr:
				if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
					flag(x.Pos(), name)
					return false
				}
			case *ast.StarExpr:
				if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
					flag(x.Pos(), name)
					return false
				}
			}
			return true
		})
		if !live {
			return
		}
	}
}

// reassigns reports whether the statement (at any depth) assigns to
// the named identifier, ending the known-nil region.
func reassigns(s ast.Stmt, name string) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, l := range x.Lhs {
				if id, ok := l.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
		case *ast.UnaryExpr:
			// &x lets anything repair it.
			if x.Op == token.AND {
				if id, ok := x.X.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// mentions reports whether the identifier appears anywhere under n.
func mentions(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
