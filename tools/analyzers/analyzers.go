// Package analyzers implements the project-specific static checks run
// by cmd/vet-tracer as part of the tier-1 gate. The passes mirror the
// go/analysis shape — a named analyzer producing position-tagged
// findings — but are built on the standard library's go/ast and
// go/parser only, so the gate needs nothing outside the toolchain.
//
// Five passes are registered:
//
//   - lockheld: no build/simulate-class call while a mutex is held.
//     Build results are cached precisely so the table lock is never
//     held across a multi-second build (internal/experiment); holding
//     it across one serializes the worker pool.
//   - telemetryname: metric names registered on a telemetry.Registry
//     follow the naming convention: snake_case, counters end in
//     _total, gauges don't, histograms carry a unit suffix, and no
//     name restates its kind (_counter, _gauge, ...).
//   - spanbalance: every obs.Begin/BeginDetail phase span is ended on
//     all paths (defer-aware), so a leaked span can never corrupt the
//     observability timeline's nesting.
//   - nilness: no dereference of a variable inside a branch where a
//     nil comparison proved it nil.
//   - unusedwrite: no write to a field or element of a local copy
//     that nothing ever reads afterwards.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic from one analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Msg)
}

// Analyzer is one pass over a parsed file.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(fset *token.FileSet, f *ast.File) []Finding
}

// All returns every registered analyzer.
func All() []*Analyzer {
	return []*Analyzer{LockHeld, TelemetryName, SpanBalance, Nilness, UnusedWrite}
}

// CheckDir parses every non-test .go file under root (skipping hidden
// directories, testdata, and vendor) and runs the given analyzers,
// returning findings sorted by position.
func CheckDir(root string, as []*Analyzer) ([]Finding, error) {
	var findings []Finding
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, a := range as {
			findings = append(findings, a.Run(fset, file)...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Msg < b.Msg
	})
	return findings, nil
}

// calleeName returns the bare name of a call's callee: the final
// selector for method calls, the identifier for plain calls, "" for
// anything else (indirect calls, conversions through parens, ...).
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// exprString renders a simple ident/selector chain (`r.mu`, `cacheMu`)
// for diagnostics; non-simple expressions render as "?".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	}
	return "?"
}
