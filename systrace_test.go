package systrace_test

import (
	"testing"

	"systrace"
	m "systrace/internal/mahler"
)

// TestFacadeEndToEnd drives the public API the way the quickstart
// example does: build a program, boot the traced OS, parse the trace.
func TestFacadeEndToEnd(t *testing.T) {
	mod := systrace.NewModule("facade")
	f := mod.Func("main", m.TInt)
	f.Locals("i", "s")
	f.Code(func(b *m.Block) {
		b.Assign("s", m.I(0))
		b.For("i", m.I(0), m.I(500), func(b *m.Block) {
			b.Assign("s", m.Add(m.V("s"), m.V("i")))
		})
		b.Return(m.Mod(m.V("s"), m.I(1000)))
	})
	prog, err := systrace.BuildProgram("facade", []*systrace.Module{mod})
	if err != nil {
		t.Fatal(err)
	}
	if g := prog.Instr.Instr.GrowthFactor(); g < 1.5 || g > 2.6 {
		t.Errorf("growth %.2f outside the paper's band", g)
	}

	kexe, err := systrace.BuildKernel(systrace.Ultrix, true)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := systrace.BuildDiskImage(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := systrace.DefaultBoot(systrace.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = 1 << 20
	sys, err := systrace.Boot(kexe, []systrace.BootProc{{Exe: prog.Instr}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := systrace.NewParser(systrace.NewSideTable(kexe))
	p.AddProcess(1, systrace.NewSideTable(prog.Instr))
	sim := systrace.NewTraceSim(systrace.PolicySequential, cfg.RAMBytes, 1)
	var perr error
	sys.OnTrace = func(words []uint32) {
		if perr != nil {
			return
		}
		var evs []systrace.Event
		evs, perr = p.Parse(words, nil)
		sim.Events(evs)
	}
	if err := sys.Run(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	if got := sys.ExitStatus(1); got != 500*499/2%1000 {
		t.Errorf("result %d", got)
	}
	if sim.Instr == 0 || p.Records == 0 {
		t.Error("no trace simulated")
	}

	// Figure 2 through the facade.
	f2 := systrace.Figure2()
	if len(f2.Before) != 5 || len(f2.After) != 13 {
		t.Errorf("figure 2 shape %d/%d", len(f2.Before), len(f2.After))
	}
}

func TestWorkloadCatalog(t *testing.T) {
	ws := systrace.Workloads()
	if len(ws) != 12 {
		t.Fatalf("Table 1 has twelve workloads, got %d", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if w.Name == "" || w.Description == "" || w.Build == nil {
			t.Errorf("incomplete workload %+v", w)
		}
		names[w.Name] = true
	}
	for _, n := range []string{"sed", "egrep", "yacc", "gcc", "compress",
		"espresso", "lisp", "eqntott", "fpppp", "doduc", "liv", "tomcatv"} {
		if !names[n] {
			t.Errorf("missing workload %s", n)
		}
	}
	if _, ok := systrace.WorkloadByName("sed"); !ok {
		t.Error("lookup failed")
	}
}
