// Package trace defines the trace format of the tracing systems and
// implements the trace parsing library.
//
// A trace entry for a basic block or memory reference is a single
// machine word, so "a single machine instruction records a complete
// trace entry ... trace entries remain contiguous, with no locks or
// other protection mechanisms required" (paper §3.3). Basic-block
// entries hold the record address inside the *instrumented* text (the
// return address of `jal bbtrace`); the parsing library maps them back
// to the original, uninstrumented addresses through the static side
// table the instrumenter emits (paper §3.2/3.5). Memory-reference
// entries hold raw effective addresses; the bb side table says how
// many follow each block record and where they interleave with the
// instruction stream.
//
// The kernel writes single-word control markers into the in-kernel
// buffer at context switches, exception entries/exits, and
// generation/analysis mode transitions. Markers live in a reserved
// address range no kernel mapping uses.
package trace

// Bookkeeping area layout. Each traced entity (user process, kernel)
// has a 128-byte bookkeeping area pointed to by xreg3. Offset 124 for
// the saved return address matches the paper's Figure 2
// (`sw ra,124(xreg3)`).
const (
	BookBufPtr   = 0  // next free word in the trace buffer
	BookBufEnd   = 4  // first word past the usable buffer
	BookTmp      = 8  // register-stealing scratch save
	BookImm      = 12 // memtrace immediate save
	BookFullFlag = 16 // kernel variant: buffer passed the soft limit
	BookICount   = 20 // original-epoxie mode: dynamic instruction count
	// BookBusy is nonzero while bbtrace/memtrace hold the buffer
	// pointer in a register: the kernel must not flush-and-reset the
	// buffer under them (it skips the flush until the next entry).
	BookBusy    = 36
	BookShadow1 = 24  // shadow slot for xreg1
	BookShadow2 = 28  // shadow slot for xreg2
	BookShadow3 = 32  // shadow slot for xreg3
	BookSavedRA = 124 // original ra during an instrumented block
	BookSize    = 128
)

// Markers. A marker is one word in 0xfff00000..0xffffffff; no address
// space maps pages there. The low 16 bits carry an argument (a pid for
// context switches).
const (
	MarkerBase = 0xfff00000
	MarkerMask = 0xfff00000

	MarkCtxSw     = 0xfff10000 // arg: incoming pid; user context switch
	MarkExcEnter  = 0xfff20000 // kernel exception entry (nestable)
	MarkExcExit   = 0xfff30000 // matching rfe
	MarkModeSw    = 0xfff40000 // trace-generation -> analysis boundary
	MarkProcExit  = 0xfff50000 // arg: pid
	MarkKernEnter = 0xfff60000 // begin kernel-mode trace (from user)
	MarkKernExit  = 0xfff70000 // return to user mode, arg: pid
)

// BreakTraceFlush is the break code bbtrace uses to trap into the
// kernel when the per-process trace buffer is full.
const BreakTraceFlush = 2

// IsMarker reports whether w is a control marker.
func IsMarker(w uint32) bool { return w&MarkerMask == MarkerBase && w >= MarkCtxSw }

// MarkerKind returns the marker type bits.
func MarkerKind(w uint32) uint32 { return w & 0xffff0000 }

// MarkerArg returns the marker argument.
func MarkerArg(w uint32) uint32 { return w & 0xffff }

// Standard trace buffer geometry used by the traced kernels. The
// paper's systems used a 64 MB in-kernel buffer permitting ~32 M
// instructions of continuous execution (§4.3); our default is scaled
// with the workloads but configurable up to the paper's size.
const (
	// DefaultKernelBufBytes is the in-kernel buffer size.
	DefaultKernelBufBytes = 4 << 20
	// KernelBufSlack is reserved headroom past the soft limit: kernel
	// trace keeps flowing between the moment the buffer "fills" and
	// the next safe point where analysis can run ("provisions must be
	// made for critical system operations to complete before tracing
	// is suspended", §3.3). The worst burst a safe point must absorb
	// is one full per-process buffer flush (UserBufBytes, copied on
	// kernel entry before the trap handler's safe point) plus the
	// trace of one handler's own execution; bulk-copy loops poll
	// traceCheck per chunk so the handler part stays bounded.
	KernelBufSlack = UserBufBytes + 64<<10
	// UserBufBytes is the per-process trace buffer ("per-process
	// trace pages").
	UserBufBytes = 64 << 10
	// UserTraceVA is the fixed user virtual address of the per-process
	// trace region: bookkeeping area, then the buffer.
	UserTraceVA = 0x70000000
)
