package trace_test

import (
	"encoding/binary"
	"testing"

	"systrace/internal/obj"
	"systrace/internal/trace"
)

// fuzzTable is a small fixed side table: three blocks with memory
// references of each width, like a toy instrumented image.
func fuzzTable() *trace.SideTable {
	return trace.NewSideTable([]obj.InstrBlock{
		{RecordAddr: 0x0040010c, OrigAddr: 0x00400000, NInstr: 4,
			Mem: []obj.MemOp{{Index: 1, Load: true, Size: 4}}},
		{RecordAddr: 0x0040014c, OrigAddr: 0x00400010, NInstr: 3,
			Mem: []obj.MemOp{{Index: 0, Load: false, Size: 1}, {Index: 2, Load: true, Size: 2}}},
		{RecordAddr: 0x00400200, OrigAddr: 0x00400020, NInstr: 2},
	})
}

// FuzzParse feeds arbitrary word streams to the trace parser: it must
// never panic, and whatever events survive must be well-formed. The
// side table must answer lookups for arbitrary words without going
// wrong either.
func FuzzParse(f *testing.F) {
	seed := func(words ...uint32) {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			binary.BigEndian.PutUint32(b[4*i:], w)
		}
		f.Add(b)
	}
	// A well-formed fragment: block record, two data addresses, a
	// context switch, another record.
	seed(0x0040010c, 0x10000004, 0x0040014c, 0x10000100, 0x10000102)
	seed(trace.MarkCtxSw|1, 0x0040010c, 0x10000004)
	seed(trace.MarkModeSw, trace.MarkProcExit|1)
	seed(0xdeadbeef, 0xffffffff, 0)

	table := fuzzTable()
	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n > 4096 {
			n = 4096
		}
		words := make([]uint32, n)
		for i := range words {
			words[i] = binary.BigEndian.Uint32(data[4*i:])
		}

		p := trace.NewParser(nil)
		p.AddProcess(0, table)
		p.AddProcess(1, table)
		events, err := p.Parse(words, nil)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		for _, e := range events {
			switch e.Size {
			case 0, 1, 2, 4, 8:
			default:
				t.Errorf("event %+v has impossible size", e)
			}
		}

		// The side table itself stays well-defined under arbitrary
		// probes: Lookup hits only real record addresses.
		for _, w := range words {
			if b := table.Lookup(w); b != nil && b.RecordAddr != w {
				t.Errorf("Lookup(%08x) returned block with RecordAddr %08x", w, b.RecordAddr)
			}
		}
	})
}

// FuzzStreamCodec drives the compressed on-the-wire encoding from both
// ends: any word sequence must round-trip exactly through the
// encoder/decoder pair, and the decoder must reject or survive (never
// panic on) arbitrary token bytes.
func FuzzStreamCodec(f *testing.F) {
	f.Add([]byte{}, false)
	f.Add([]byte{0x00, 0x40, 0x01, 0x0c, 0x10, 0x00, 0x00, 0x04}, false)
	f.Add([]byte{0xff, 0xf1, 0x00, 0x01, 0xff, 0xf1, 0x00, 0x01}, false)
	f.Add([]byte{0xb0, 0xff, 0xff, 0xff, 0xff, 0x7f}, true)
	f.Add([]byte{0xc0, 0x80, 0x9f, 0xa7}, true)
	f.Fuzz(func(t *testing.T, data []byte, raw bool) {
		if raw {
			// data is a hostile token stream: decode must not panic
			// and must consume without error only whole valid tokens.
			trace.NewDecoder().Decode(data, nil) //nolint:errcheck
			return
		}
		n := len(data) / 4
		if n > 4096 {
			n = 4096
		}
		words := make([]uint32, n)
		for i := range words {
			words[i] = binary.BigEndian.Uint32(data[4*i:])
		}
		enc := trace.EncodeStream(words)
		got, err := trace.DecodeStream(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if len(got) != len(words) {
			t.Fatalf("round trip: %d words in, %d out", len(words), len(got))
		}
		for i := range words {
			if got[i] != words[i] {
				t.Fatalf("round trip word %d: got %08x want %08x", i, got[i], words[i])
			}
		}
	})
}
