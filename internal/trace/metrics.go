package trace

import "systrace/internal/telemetry"

// RegisterMetrics registers sampled telemetry series over the parser's
// statistics: raw words consumed, reconstructed events by kind, the
// control-marker mix, and the mode-switch dirt (failed side-table
// lookups during resynchronization, §4.3). Values are read at snapshot
// time; the parsing loop is untouched.
func (p *Parser) RegisterMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(extra, labels...)
	}
	r.Sample("trace_words_parsed_total", "raw trace words consumed by the parser",
		func() uint64 { return p.Words }, labels...)
	r.Sample("trace_records_total", "basic-block records resolved through the side table",
		func() uint64 { return p.Records }, labels...)
	const evHelp = "reconstructed reference-stream events by kind"
	r.Sample("trace_events_total", evHelp,
		func() uint64 { return p.Fetches }, lab(telemetry.L("kind", "fetch"))...)
	r.Sample("trace_events_total", evHelp,
		func() uint64 { return p.MemRefs }, lab(telemetry.L("kind", "memref"))...)
	r.Sample("trace_markers_total", "control markers consumed",
		func() uint64 { return p.Markers }, labels...)
	r.Sample("trace_ctx_switches_total", "context-switch markers",
		func() uint64 { return p.CtxSws }, labels...)
	r.Sample("trace_mode_switches_total", "generation→analysis markers",
		func() uint64 { return p.ModeSws }, labels...)
	r.Sample("trace_proc_exits_total", "process-exit markers",
		func() uint64 { return p.ProcExits }, labels...)
	r.Sample("trace_sidetable_misses_total",
		"words skipped during mode-switch resync: failed side-table lookups (§4.3 dirt)",
		func() uint64 { return p.DirtWords }, labels...)
	r.Sample("trace_idle_instructions_total",
		"idle-loop instructions reconstructed (the §4.1 I/O-delay estimator)",
		func() uint64 { return p.IdleInstr }, labels...)
	r.SampleGauge("trace_exception_depth_max",
		"deepest nested-exception stack observed while parsing",
		func() float64 { return float64(p.MaxDepth) }, labels...)
}
