package trace

import (
	"fmt"
	"sort"

	"systrace/internal/obj"
)

// EventKind classifies parsed trace events.
type EventKind uint8

const (
	EvIFetch EventKind = iota
	EvLoad
	EvStore
)

func (k EventKind) String() string {
	switch k {
	case EvIFetch:
		return "I"
	case EvLoad:
		return "L"
	case EvStore:
		return "S"
	}
	return "?"
}

// Event is one reconstructed memory reference, at uninstrumented
// addresses. Pid identifies the trace stream (0 = kernel); AS is the
// user address space in whose context the reference happened — for
// kernel references to kuseg (copyin/copyout), AS names the process
// whose pages are touched.
type Event struct {
	Kind   EventKind
	Addr   uint32
	Size   int8
	Pid    int16
	AS     int16
	Kernel bool
	Idle   bool // reference made by the kernel idle loop
}

// SideTable is the trace parsing library's static lookup table: from
// the record address written by bbtrace to the static description of
// the basic block ("A lookup table is used in the trace parsing
// library to find static information for a given basic block address",
// §3.5).
type SideTable struct {
	byAddr map[uint32]*obj.InstrBlock
	// text ranges for the redundancy check "that each basic block
	// address is valid for the address space in question" (§4.3).
	lo, hi uint32
	// Original text segment bounds, when known: a recorded *store*
	// into text space fails the simulator-style sanity checks of §4.3
	// (programs do not write their own code).
	textLo, textHi uint32
}

// SetTextRange enables the store-into-text sanity check for addresses
// in [lo, hi).
func (t *SideTable) SetTextRange(lo, hi uint32) { t.textLo, t.textHi = lo, hi }

// NewSideTable builds a lookup table from an instrumented image's side
// information. An empty blocks slice yields a well-defined empty table
// (range [0,0], every Lookup misses, Blocks returns nothing).
func NewSideTable(blocks []obj.InstrBlock) *SideTable {
	t := &SideTable{byAddr: make(map[uint32]*obj.InstrBlock, len(blocks))}
	if len(blocks) > 0 {
		t.lo = ^uint32(0)
	}
	for i := range blocks {
		b := &blocks[i]
		t.byAddr[b.RecordAddr] = b
		if b.RecordAddr < t.lo {
			t.lo = b.RecordAddr
		}
		if b.RecordAddr > t.hi {
			t.hi = b.RecordAddr
		}
	}
	return t
}

// Lookup resolves a record address.
func (t *SideTable) Lookup(rec uint32) *obj.InstrBlock { return t.byAddr[rec] }

// Range returns the [lo, hi] record-address bounds the redundancy
// check accepts. An empty table reports [0, 0].
func (t *SideTable) Range() (lo, hi uint32) { return t.lo, t.hi }

// Blocks returns the table's blocks sorted by original address (for
// reference-counting tools).
func (t *SideTable) Blocks() []*obj.InstrBlock {
	out := make([]*obj.InstrBlock, 0, len(t.byAddr))
	for _, b := range t.byAddr {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].OrigAddr < out[j].OrigAddr })
	return out
}

// ParseError reports a violated redundancy check, with enough context
// to find the corruption ("missing words of trace or erroneous writes
// into the trace are detected with a very high probability", §4.3).
type ParseError struct {
	Index int // word index in the raw trace
	Word  uint32
	Msg   string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("trace: word %d (0x%08x): %s", e.Index, e.Word, e.Msg)
}

// blockState is the progress of a partially-consumed basic block: the
// parser expects the block's remaining memory references before the
// next record. Context switches and exceptions can interrupt a block
// mid-stream; the parser keeps one pending state per address space
// plus a stack for nested kernel exceptions (§3.5: "nested interrupts
// require the tracing system to use a stack").
type blockState struct {
	block   *obj.InstrBlock
	nextMem int // index into block.Mem
	instrAt int // instructions already emitted
}

func (s *blockState) done() bool {
	return s.block == nil || (s.nextMem >= len(s.block.Mem) && s.instrAt >= int(s.block.NInstr))
}

// nestFrame remembers the interrupted stream context across a nested
// kernel exception: a nested exception can interrupt the kernel's own
// trace, or land during the entry path while the stream is still
// attributed to the user.
type nestFrame struct {
	st     blockState
	inKern bool
}

// Parser reconstructs the interleaved reference stream from raw trace
// words. Tables are per address space: pid 0 is the kernel.
type Parser struct {
	kernel  *SideTable
	user    map[int]*SideTable
	cur     int  // current pid
	inKern  bool // kernel-mode trace in progress
	perProc map[int]*blockState
	kstack  []nestFrame // kernel exception nesting
	kcur    *blockState

	// resync: after a generation->analysis boundary the kernel stream
	// may resume with a few orphan references from the block the mode
	// switch interrupted ("a certain amount of 'dirt' is introduced
	// into the trace", §4.3); the parser skips words until the next
	// valid kernel record.
	resync bool
	// Counters for the special block behaviors (§3.5).
	IdleInstr   uint64 // idle-loop instructions (I/O delay estimation)
	CounterOn   bool
	CountedInst uint64

	// Statistics.
	Words   uint64 // raw trace words consumed
	Records uint64
	MemRefs uint64
	Fetches uint64 // instruction-fetch events reconstructed
	Markers uint64
	ModeSws uint64
	CtxSws  uint64
	// DirtWords counts words skipped while resynchronizing after a
	// mode switch: side-table lookups that failed on the orphan tail
	// of an interrupted block (the §4.3 "dirt").
	DirtWords uint64
	// ProcExits counts MarkProcExit markers; after one, records in
	// that process's address space are no longer parseable (its side
	// table is dropped, as the kernel drops its trace pages).
	ProcExits uint64
	ExcDepth  int
	MaxDepth  int

	// blockCounts is the reference-counting tool of §4.3 ("a dynamic
	// count of the number of times each instruction in the kernel was
	// executed" — kept per basic block here): enabled by
	// CountBlocks.
	blockCounts map[uint32]uint64
}

// CountBlocks enables per-block execution counting (the paper's
// reference-counting debugging aid, §4.3).
func (p *Parser) CountBlocks() { p.blockCounts = map[uint32]uint64{} }

// BlockCounts returns execution counts keyed by original block
// address; nil unless CountBlocks was called.
func (p *Parser) BlockCounts() map[uint32]uint64 { return p.blockCounts }

// NewParser builds a parser. kernel may be nil for user-only traces;
// when a kernel table is present, parsing starts in kernel mode (the
// first trace in the buffer is boot-time kernel activity).
func NewParser(kernel *SideTable) *Parser {
	return &Parser{
		kernel:  kernel,
		user:    map[int]*SideTable{},
		perProc: map[int]*blockState{},
		kcur:    &blockState{},
		inKern:  kernel != nil,
	}
}

// AddProcess registers a traced process's side table.
func (p *Parser) AddProcess(pid int, t *SideTable) {
	p.user[pid] = t
	p.perProc[pid] = &blockState{}
}

// state returns the active block state.
func (p *Parser) state() *blockState {
	if p.inKern {
		return p.kcur
	}
	s := p.perProc[p.cur]
	if s == nil {
		s = &blockState{}
		p.perProc[p.cur] = s
	}
	return s
}

func (p *Parser) table() *SideTable {
	if p.inKern {
		return p.kernel
	}
	return p.user[p.cur]
}

// Parse consumes raw trace words and appends reconstructed events to
// out, returning it. Parsing is incremental: call it once per analysis
// phase with the same Parser to preserve pending block state across
// buffer flush boundaries.
func (p *Parser) Parse(words []uint32, out []Event) ([]Event, error) {
	p.Words += uint64(len(words))
	for i, w := range words {
		if IsMarker(w) {
			p.Markers++
			if err := p.marker(i, w); err != nil {
				return out, err
			}
			continue
		}
		if p.resync {
			t := p.table()
			if t == nil || t.Lookup(w) == nil {
				p.DirtWords++
				continue // still dirt
			}
			p.resync = false
		}
		s := p.state()
		if !s.done() {
			// Expecting a memory reference for the open block.
			m := s.block.Mem[s.nextMem]
			if !m.Load {
				if t := p.table(); t != nil && t.textHi > t.textLo && w >= t.textLo && w < t.textHi {
					return out, &ParseError{i, w, "store into text segment (trace slipped?)"}
				}
			}
			// Emit fetches up to and including the memory instruction.
			for s.instrAt <= int(m.Index) {
				out = p.emitFetch(out, s)
			}
			out = append(out, p.event(kindOf(m.Load), w, m.Size, s))
			s.nextMem++
			p.MemRefs++
			if s.nextMem >= len(s.block.Mem) {
				// Tail fetches after the last memory reference.
				for s.instrAt < int(s.block.NInstr) {
					out = p.emitFetch(out, s)
				}
			}
			continue
		}
		// Expecting a block record.
		t := p.table()
		if t == nil {
			return out, &ParseError{i, w, fmt.Sprintf("no side table for address space %d", p.curSpace())}
		}
		b := t.Lookup(w)
		if b == nil {
			return out, &ParseError{i, w, fmt.Sprintf("not a valid basic block record for address space %d", p.curSpace())}
		}
		p.Records++
		if p.blockCounts != nil {
			p.blockCounts[b.OrigAddr]++
		}
		if b.Flags&obj.BBCounterStart != 0 {
			p.CounterOn = true
		}
		if b.Flags&obj.BBCounterStop != 0 {
			p.CounterOn = false
		}
		*s = blockState{block: b}
		if len(b.Mem) == 0 {
			for s.instrAt < int(b.NInstr) {
				out = p.emitFetch(out, s)
			}
		}
	}
	return out, nil
}

func kindOf(load bool) EventKind {
	if load {
		return EvLoad
	}
	return EvStore
}

func (p *Parser) curSpace() int {
	if p.inKern {
		return 0
	}
	return p.cur
}

func (p *Parser) event(k EventKind, addr uint32, size int8, s *blockState) Event {
	return Event{
		Kind:   k,
		Addr:   addr,
		Size:   size,
		Pid:    int16(p.curSpace()),
		AS:     int16(p.cur),
		Kernel: p.inKern,
		Idle:   s.block.Flags&obj.BBIdleLoop != 0,
	}
}

func (p *Parser) emitFetch(out []Event, s *blockState) []Event {
	ev := p.event(EvIFetch, s.block.OrigAddr+uint32(s.instrAt)*4, 4, s)
	s.instrAt++
	p.Fetches++
	if ev.Idle {
		p.IdleInstr++
	}
	if p.CounterOn {
		p.CountedInst++
	}
	return append(out, ev)
}

// TruncatedNestError reports a trace that ended while one or more
// nested kernel exceptions were still open: every MarkExcEnter must be
// matched by a MarkExcExit before the stream ends (§3.5's trace-state
// stack), so an unbalanced stream means the capture was truncated
// mid-nest. The fields identify the innermost open frame — the stream
// context the unmatched exception interrupted.
type TruncatedNestError struct {
	Depth  int    // exception frames still open at end of trace
	InKern bool   // whether the interrupted context was the kernel stream
	Orig   uint32 // interrupted block's original address (0 if between blocks)
	Got    int    // memory references seen for that block
	Want   int    // memory references the side table expects
}

func (e *TruncatedNestError) Error() string {
	ctx := "user"
	if e.InKern {
		ctx = "kernel"
	}
	if e.Want == 0 && e.Orig == 0 {
		return fmt.Sprintf("trace: ended inside %d open nested exception(s) (interrupted %s stream between blocks)",
			e.Depth, ctx)
	}
	return fmt.Sprintf("trace: ended inside %d open nested exception(s) (interrupted %s stream mid-block orig 0x%08x: %d of %d refs seen)",
		e.Depth, ctx, e.Orig, e.Got, e.Want)
}

// Finish verifies no block is left partially consumed: a truncated or
// word-dropped trace that still parsed shows up here as a block whose
// recorded memory references never all arrived, and a trace cut off
// inside a nested exception as a TruncatedNestError for the frame
// still open.
func (p *Parser) Finish() error {
	if n := len(p.kstack); n > 0 {
		fr := &p.kstack[n-1]
		e := &TruncatedNestError{Depth: n, InKern: fr.inKern}
		if fr.st.block != nil && !fr.st.done() {
			e.Orig = fr.st.block.OrigAddr
			e.Got = fr.st.nextMem
			e.Want = len(fr.st.block.Mem)
		}
		return e
	}
	check := func(s *blockState, what string) error {
		if s != nil && s.block != nil && !s.done() {
			return fmt.Errorf("trace: %s ended mid-block (orig 0x%08x: %d of %d refs seen)",
				what, s.block.OrigAddr, s.nextMem, len(s.block.Mem))
		}
		return nil
	}
	if err := check(p.kcur, "kernel stream"); err != nil {
		return err
	}
	for pid, s := range p.perProc {
		if err := check(s, fmt.Sprintf("process %d stream", pid)); err != nil {
			return err
		}
	}
	return nil
}

// marker handles control words.
func (p *Parser) marker(i int, w uint32) error {
	switch MarkerKind(w) {
	case MarkCtxSw:
		p.CtxSws++
		p.cur = int(MarkerArg(w))
		p.inKern = false
	case MarkKernEnter:
		p.inKern = true
	case MarkKernExit:
		p.inKern = false
		p.cur = int(MarkerArg(w))
	case MarkExcEnter:
		// Push the interrupted stream context.
		p.kstack = append(p.kstack, nestFrame{st: *p.kcur, inKern: p.inKern})
		*p.kcur = blockState{}
		p.inKern = true
		p.ExcDepth++
		if p.ExcDepth > p.MaxDepth {
			p.MaxDepth = p.ExcDepth
		}
	case MarkExcExit:
		if len(p.kstack) == 0 {
			return &ParseError{i, w, "exception exit with empty nesting stack"}
		}
		fr := p.kstack[len(p.kstack)-1]
		p.kstack = p.kstack[:len(p.kstack)-1]
		*p.kcur = fr.st
		p.inKern = fr.inKern
		p.ExcDepth--
	case MarkModeSw:
		p.ModeSws++
		// The mode switch interrupts the current kernel block; its
		// remaining references are lost to the analysis window.
		*p.kcur = blockState{}
		p.kstack = p.kstack[:0]
		p.ExcDepth = 0
		p.resync = true
	case MarkProcExit:
		p.ProcExits++
		delete(p.perProc, int(MarkerArg(w)))
		delete(p.user, int(MarkerArg(w)))
	default:
		return &ParseError{i, w, "unknown marker"}
	}
	return nil
}

// Pending reports the open block state of a stream (pid 0 = kernel)
// for diagnostics: the block's original address and how many of its
// memory references have arrived. ok is false when the stream is
// between blocks.
func (p *Parser) Pending(pid int) (orig uint32, got, want int, ok bool) {
	s := p.kcur
	if pid != 0 {
		s = p.perProc[pid]
	}
	if s == nil || s.block == nil || s.done() {
		return 0, 0, 0, false
	}
	return s.block.OrigAddr, s.nextMem, len(s.block.Mem), true
}
