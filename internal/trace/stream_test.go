package trace

import (
	"math/rand"
	"testing"
)

// roundTrip encodes words through a fresh encoder/decoder pair split
// across chunked calls (the epoch-ring shape) and requires the exact
// raw sequence back.
func roundTrip(t *testing.T, words []uint32, chunk int) []byte {
	t.Helper()
	enc := NewEncoder()
	dec := NewDecoder()
	var data []byte
	var got []uint32
	for i := 0; i < len(words); i += chunk {
		end := i + chunk
		if end > len(words) {
			end = len(words)
		}
		epoch := enc.Encode(words[i:end], nil)
		data = append(data, epoch...)
		var err error
		got, err = dec.Decode(epoch, got)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	if len(got) != len(words) {
		t.Fatalf("round trip length: got %d words, want %d", len(got), len(words))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("round trip word %d: got 0x%08x, want 0x%08x", i, got[i], words[i])
		}
	}
	return data
}

func TestStreamRoundTripShapes(t *testing.T) {
	cases := map[string][]uint32{
		"empty":        {},
		"zero_first":   {0, 0, 0, 5},
		"single":       {0x00400120},
		"idle_run":     {0x00400120, 0x00400120, 0x00400120, 0x00400120, 0x00400120},
		"markers":      {MarkKernEnter, MarkExcEnter, MarkExcExit, MarkKernExit | 1},
		"loop":         {0x00400120, 0x10000000, 0x00400140, 0x00400120, 0x10000004, 0x00400140},
		"cross_region": {0x00400120, 0x7fffefc8, 0x80812000, 0xfff10002, 0x00400124},
		"wrap_delta":   {0xfffffffc, 0x00000004, 0xf0000000, 0x0fffffff},
	}
	for name, words := range cases {
		t.Run(name, func(t *testing.T) {
			roundTrip(t, words, 3)
			roundTrip(t, words, len(words)+1)
		})
	}
}

func TestStreamRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(4096)
		words := make([]uint32, n)
		last := uint32(0x00400000)
		for i := range words {
			switch rng.Intn(5) {
			case 0: // repeat (run)
				words[i] = last
			case 1: // strided walk
				words[i] = last + 4
			case 2: // marker
				words[i] = MarkCtxSw | uint32(rng.Intn(8))
			case 3: // arbitrary
				words[i] = rng.Uint32()
			default: // nearby record
				words[i] = 0x00400000 + uint32(rng.Intn(1024))*4
			}
			last = words[i]
		}
		roundTrip(t, words, 257)
	}
}

// TestStreamCompressesLoopyTrace pins the headline property on a
// trace-shaped stream: records revisiting a small working set with
// strided data references must compress well past the 4x bar.
func TestStreamCompressesLoopyTrace(t *testing.T) {
	var words []uint32
	base := uint32(0x00400100)
	addr := uint32(0x10000000)
	for iter := 0; iter < 4096; iter++ {
		words = append(words, base+uint32(iter%8)*0x40) // record
		words = append(words, addr)                     // strided load EA
		addr += 4
		if iter%64 == 63 {
			words = append(words, MarkKernEnter, MarkKernExit|1)
		}
	}
	data := roundTrip(t, words, 1024)
	ratio := float64(len(words)*4) / float64(len(data))
	if ratio < 4 {
		t.Fatalf("loopy trace compressed only %.2fx (want >= 4x): %d words -> %d bytes",
			ratio, len(words), len(data))
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	words := []uint32{0x00400120, 0x10000000, MarkModeSw, 0x00400120, 0x10000004}
	data := EncodeStream(words)
	if !IsCompressedStream(data) {
		t.Fatal("EncodeStream output lacks the magic")
	}
	got, err := DecodeStream(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(words) {
		t.Fatalf("got %d words, want %d", len(got), len(words))
	}
	for i := range words {
		if got[i] != words[i] {
			t.Fatalf("word %d: got 0x%08x want 0x%08x", i, got[i], words[i])
		}
	}
	if _, err := DecodeStream([]byte{1, 2, 3, 4, 5}); err == nil {
		t.Fatal("DecodeStream accepted input without magic")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"reserved_token":  {0xe1},
		"truncated_delta": {0xb0 | 0x04, 0x80},
		"overlong_varint": {0xb0, 0xff, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := NewDecoder().Decode(data, nil); err == nil {
				t.Fatalf("decoder accepted %x", data)
			}
		})
	}
}

// TestDecodeErrorOffsetAcrossCalls pins the lifetime byte offset in
// decoder errors (the consumer reports where in the whole stream a
// corrupt epoch broke).
func TestDecodeErrorOffsetAcrossCalls(t *testing.T) {
	enc := NewEncoder()
	good := enc.Encode([]uint32{0x00400120, 0x00400124}, nil)
	dec := NewDecoder()
	if _, err := dec.Decode(good, nil); err != nil {
		t.Fatal(err)
	}
	_, err := dec.Decode([]byte{0xe7}, nil)
	se, ok := err.(*StreamError)
	if !ok {
		t.Fatalf("got %v, want StreamError", err)
	}
	if se.Offset != len(good) {
		t.Fatalf("error offset %d, want %d (across-call accounting)", se.Offset, len(good))
	}
}
