package trace

import "fmt"

// Compressed on-the-wire trace encoding (format version 1).
//
// The raw trace is one 32-bit word per entry (§3.3's single-store
// discipline); that is what the kernel writes, but it is a wasteful
// thing to *ship*: basic-block records repeat a handful of nearby text
// addresses (loops), effective addresses walk memory in constant
// strides, and idle loops and marker pairs repeat the same words for
// long stretches. The encoder below is the CVA6 branch-map idea
// adapted to a word stream: predict each word from recent stream
// history and emit only the correction — a correct prediction chain
// collapses to a run token, the way a branch map collapses a run of
// correctly-predicted branches to a bit. It is value-driven — no side
// table is needed on either side — so the decoder reconstructs the
// exact raw word sequence and every existing consumer (parser,
// conformance checker, memsys simulator) runs unchanged behind a
// decode.
//
// Shared predictor state, updated identically by encoder and decoder
// after every word:
//
//   - last:       the previous word (run-length for idle/marker runs)
//   - prev[16], stride[16]: per-address-class (top nibble) last value
//     and last observed delta (delta-encoded bb record addresses;
//     strided data walks)
//   - cache[128]: direct-mapped recent-word cache indexed by a hash of
//     the word (loopy record/marker working sets hit here)
//   - rule[256]:  a first-order context model keyed by a hash of the
//     previous word. Each context remembers how its successor was last
//     produced — as a literal word, or as "this class's stride walk" —
//     so predict() is a single deterministic function of the state.
//     Loop bodies replay the same record→record and record→address
//     transitions every iteration, so whole iterations become chains
//     of correct predictions.
//
// Token stream, first byte t:
//
//	0x00..0x7f  HIT    word = cache[t]                        (1 byte)
//	0x80..0x9f  RUN    repeat last (t&0x1f)+1 times           (1 byte)
//	0xa0..0xaf  PRED   c = t&15; word = prev[c] + stride[c]   (1 byte)
//	0xb0..0xbf  DELTA  c = t&15; zigzag varint d follows;
//	                   word = prev[c] + d; stride[c] = d      (2+ bytes)
//	0xc0..0xdf  PRUN   (t&0x1f)+1 words, each = predict()     (1 byte)
//	0xe0..0xff  reserved (decode error)
//
// After every word w — whatever token carried it — both sides run the
// same fold: learn the context rule for (last → w), then set
// cache[hash(w)] = w, prev[w>>28] = w, last = w. stride[c] changes
// only when a DELTA token carries the word (a mispredicted delta is
// the new stride hypothesis). A RUN's repeats skip the fold entirely
// (folding w == last is idempotent by construction).
//
// Encoders and decoders are stateful across calls: an epoch ring can
// encode each filled epoch as it drains and the consumer decodes them
// in hand-off order. EncodeStream/DecodeStream are the one-shot forms
// for whole captured streams (tracelint corpora, files); they carry a
// 4-byte magic so tools can sniff compressed input.
const (
	streamTagHit   = 0x00 // 0x00..0x7f
	streamTagRun   = 0x80 // 0x80..0x9f
	streamTagPred  = 0xa0 // 0xa0..0xaf
	streamTagDelta = 0xb0 // 0xb0..0xbf
	streamTagPrun  = 0xc0 // 0xc0..0xdf

	streamRunMax = 32 // longest run one RUN or PRUN token carries
)

// StreamMagic is the 4-byte header of a one-shot compressed stream
// ("ztr" + format version 1).
var StreamMagic = [4]byte{'z', 't', 'r', 1}

// codecState is the shared predictor state; encoder and decoder apply
// identical updates so the token stream is self-describing.
type codecState struct {
	last   uint32
	prev   [16]uint32
	stride [16]uint32
	cache  [128]uint32
	// Context model: rule[i] describes how the word following context
	// i was last produced. ruleStride[i] false → literal next[i];
	// true → prev[ruleClass[i]] + stride[ruleClass[i]] at predict
	// time (a stride walk re-predicts correctly every iteration even
	// though the value advances).
	next       [256]uint32
	ruleStride [256]bool
	ruleClass  [256]uint8
}

func streamHash(w uint32) uint32 { return (w>>2 ^ w>>9 ^ w>>17) & 127 }
func ctxHash(w uint32) uint32    { return (w>>2 ^ w>>10 ^ w>>18) & 255 }

// predict returns the single next-word prediction for the current
// state.
func (s *codecState) predict() uint32 {
	i := ctxHash(s.last)
	if s.ruleStride[i] {
		c := s.ruleClass[i]
		return s.prev[c] + s.stride[c]
	}
	return s.next[i]
}

// fold learns from coded word w and advances the state. stride[] is
// deliberately not touched here (only DELTA tokens update it): a
// stride hypothesis survives interleaved traffic from other contexts.
func (s *codecState) fold(w uint32) {
	i := ctxHash(s.last)
	c := w >> 28
	if s.prev[c]+s.stride[c] == w {
		s.ruleStride[i] = true
		s.ruleClass[i] = uint8(c)
	} else {
		s.ruleStride[i] = false
		s.next[i] = w
	}
	s.cache[streamHash(w)] = w
	s.prev[c] = w
	s.last = w
}

// Encoder compresses raw trace words incrementally.
type Encoder struct {
	st codecState
	// Raw and Encoded count the encoder's lifetime totals (compression
	// accounting for telemetry and the stream bench).
	Raw     uint64 // input bytes (4 per word)
	Encoded uint64 // output bytes
	// Tokens counts emitted tokens by kind, for the stream bench's
	// token-mix report.
	Tokens [5]uint64
}

// Token-kind indexes into Encoder.Tokens.
const (
	TokHit = iota
	TokRun
	TokPrun
	TokPred
	TokDelta
)

// NewEncoder returns a fresh encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Reset returns the encoder to its initial state.
func (e *Encoder) Reset() { *e = Encoder{} }

// Encode appends the compressed form of words to dst and returns it.
// State persists across calls: a decoder must see the concatenated
// token stream in the same order.
func (e *Encoder) Encode(words []uint32, dst []byte) []byte {
	st := &e.st
	n := len(words)
	start := len(dst)
	for i := 0; i < n; i++ {
		w := words[i]
		if w == st.last {
			// Run of the previous word; folding a repeat is
			// idempotent, so RUN skips the fold on both sides.
			run := 1
			for i+run < n && words[i+run] == w && run < streamRunMax {
				run++
			}
			i += run - 1
			dst = append(dst, byte(streamTagRun|(run-1)))
			e.Tokens[TokRun]++
			continue
		}
		if st.predict() == w {
			// Chain of correct predictions: fold as we match, since
			// each prediction depends on the previous word's fold.
			run := 1
			st.fold(w)
			for i+run < n && run < streamRunMax && st.predict() == words[i+run] {
				st.fold(words[i+run])
				run++
			}
			i += run - 1
			dst = append(dst, byte(streamTagPrun|(run-1)))
			e.Tokens[TokPrun]++
			continue
		}
		if st.cache[streamHash(w)] == w {
			dst = append(dst, byte(streamHash(w)))
			e.Tokens[TokHit]++
			st.fold(w)
			continue
		}
		c := w >> 28
		if st.prev[c]+st.stride[c] == w {
			dst = append(dst, byte(streamTagPred|c))
			e.Tokens[TokPred]++
			st.fold(w)
			continue
		}
		d := w - st.prev[c]
		dst = append(dst, byte(streamTagDelta|c))
		dst = appendZigzag(dst, d)
		e.Tokens[TokDelta]++
		st.stride[c] = d
		st.fold(w)
	}
	e.Raw += uint64(len(words)) * 4
	e.Encoded += uint64(len(dst) - start)
	return dst
}

// StreamError reports a malformed compressed stream.
type StreamError struct {
	Offset int // byte offset of the offending token
	Msg    string
}

func (e *StreamError) Error() string {
	return fmt.Sprintf("trace: compressed stream byte %d: %s", e.Offset, e.Msg)
}

// Decoder reconstructs raw trace words from the compressed token
// stream, mirroring Encoder state exactly.
type Decoder struct {
	st  codecState
	off int // lifetime byte offset, for errors across calls
}

// NewDecoder returns a fresh decoder.
func NewDecoder() *Decoder { return &Decoder{} }

// Reset returns the decoder to its initial state.
func (d *Decoder) Reset() { *d = Decoder{} }

// Decode appends the words encoded in data to dst and returns it.
// data must contain whole tokens (the encoder never splits a token
// across Encode outputs).
func (d *Decoder) Decode(data []byte, dst []uint32) ([]uint32, error) {
	st := &d.st
	i := 0
	for i < len(data) {
		t := data[i]
		switch {
		case t < 0x80: // HIT
			w := st.cache[t]
			st.fold(w)
			dst = append(dst, w)
			i++
		case t < streamTagPred: // RUN
			run := int(t&0x1f) + 1
			for k := 0; k < run; k++ {
				dst = append(dst, st.last)
			}
			i++
		case t < streamTagDelta: // PRED
			c := t & 15
			w := st.prev[c] + st.stride[c]
			st.fold(w)
			dst = append(dst, w)
			i++
		case t < streamTagPrun: // DELTA
			c := t & 15
			delta, n := zigzag(data[i+1:])
			if n == 0 {
				return dst, &StreamError{d.off + i, "truncated delta varint"}
			}
			w := st.prev[c] + delta
			if w>>28 != uint32(c) {
				return dst, &StreamError{d.off + i,
					fmt.Sprintf("delta result 0x%08x escapes address class %d", w, c)}
			}
			st.stride[c] = delta
			st.fold(w)
			dst = append(dst, w)
			i += 1 + n
		case t < 0xe0: // PRUN
			run := int(t&0x1f) + 1
			for k := 0; k < run; k++ {
				w := st.predict()
				st.fold(w)
				dst = append(dst, w)
			}
			i++
		default:
			return dst, &StreamError{d.off + i, fmt.Sprintf("reserved token 0x%02x", t)}
		}
	}
	d.off += len(data)
	return dst, nil
}

// appendZigzag writes v as a zigzag LEB128 varint (small magnitudes
// of either sign stay short).
func appendZigzag(dst []byte, v uint32) []byte {
	z := uint32(int32(v)<<1) ^ uint32(int32(v)>>31)
	for z >= 0x80 {
		dst = append(dst, byte(z)|0x80)
		z >>= 7
	}
	return append(dst, byte(z))
}

// zigzag reads one zigzag varint; n is bytes consumed (0 on
// truncation or overlong input).
func zigzag(data []byte) (v uint32, n int) {
	var z uint32
	for i := 0; i < len(data); i++ {
		b := data[i]
		if i == 4 && b > 0x0f {
			return 0, 0 // would overflow 32 bits
		}
		z |= uint32(b&0x7f) << (7 * i)
		if b < 0x80 {
			return (z >> 1) ^ -(z & 1), i + 1
		}
		if i == 4 {
			return 0, 0
		}
	}
	return 0, 0
}

// EncodeStream compresses a whole raw stream: magic header plus the
// token stream of a fresh encoder.
func EncodeStream(words []uint32) []byte {
	dst := append(make([]byte, 0, 8+len(words)), StreamMagic[:]...)
	return NewEncoder().Encode(words, dst)
}

// IsCompressedStream reports whether data begins with the compressed
// stream magic.
func IsCompressedStream(data []byte) bool {
	return len(data) >= 4 && [4]byte(data[:4]) == StreamMagic
}

// DecodeStream decompresses a whole stream produced by EncodeStream.
func DecodeStream(data []byte) ([]uint32, error) {
	if !IsCompressedStream(data) {
		return nil, &StreamError{0, "missing compressed stream magic"}
	}
	return NewDecoder().Decode(data[4:], nil)
}
