package trace_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systrace/internal/obj"
	"systrace/internal/trace"
)

// genTable builds a randomized but well-formed side table: nblk blocks
// with 1..8 instructions each and memory references at strictly
// increasing in-block indices — the same invariants epoxie's rewriter
// guarantees for real binaries.
func genTable(r *rand.Rand, nblk int) *trace.SideTable {
	blocks := make([]obj.InstrBlock, nblk)
	for i := range blocks {
		n := 1 + r.Intn(8)
		b := obj.InstrBlock{
			RecordAddr: 0x00400000 + uint32(i)*64,
			OrigAddr:   0x00401000 + uint32(i)*64,
			NInstr:     int32(n),
		}
		if i%7 == 6 {
			b.Flags |= obj.BBIdleLoop
		}
		idx := 0
		for idx < n && r.Intn(2) == 0 {
			sz := []int{1, 2, 4, 8}[r.Intn(4)]
			b.Mem = append(b.Mem, obj.MemOp{
				Index: int16(idx), Load: r.Intn(2) == 0, Size: int8(sz),
			})
			idx += 1 + r.Intn(3)
		}
		blocks[i] = b
	}
	return trace.NewSideTable(blocks)
}

// emit appends one block record plus its reference words and returns
// the reference and idle-instruction counts the parser must produce
// for it.
func emit(r *rand.Rand, words []uint32, b obj.InstrBlock) (out []uint32, evs, idle int) {
	out = append(words, b.RecordAddr)
	evs = int(b.NInstr) + len(b.Mem)
	if b.Flags&obj.BBIdleLoop != 0 {
		// Idle-loop fetches are emitted (flagged Idle) *and* counted.
		idle = int(b.NInstr)
	}
	for range b.Mem {
		out = append(out, 0x10000000+uint32(r.Intn(1<<24))*4)
	}
	return out, evs, idle
}

// TestQuickParseWellFormed: for any random side table and any random
// sequence of complete block records, the parser accepts the stream,
// produces exactly the event count the table dictates, counts idle
// instructions separately, and its per-block counters reproduce the
// emission multiset.
func TestQuickParseWellFormed(t *testing.T) {
	prop := func(seed int64, nblkRaw, lenRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		nblk := 1 + int(nblkRaw)%40
		streamLen := 1 + int(lenRaw)%200

		table := genTable(r, nblk)
		p := trace.NewParser(nil)
		p.AddProcess(3, table)
		p.CountBlocks()

		var words []uint32
		words = append(words, trace.MarkKernExit|3)
		wantEvents, wantIdle := 0, 0
		wantCounts := map[uint32]uint64{}
		blocks := table.Blocks()
		for i := 0; i < streamLen; i++ {
			b := blocks[r.Intn(len(blocks))]
			var e, id int
			words, e, id = emit(r, words, *b)
			wantEvents += e
			wantIdle += id
			wantCounts[b.OrigAddr]++
		}

		evs, err := p.Parse(words, nil)
		if err != nil {
			t.Logf("seed %d: parse: %v", seed, err)
			return false
		}
		if err := p.Finish(); err != nil {
			t.Logf("seed %d: finish: %v", seed, err)
			return false
		}
		if len(evs) != wantEvents {
			t.Logf("seed %d: events %d want %d", seed, len(evs), wantEvents)
			return false
		}
		if int(p.IdleInstr) != wantIdle {
			t.Logf("seed %d: idle %d want %d", seed, p.IdleInstr, wantIdle)
			return false
		}
		got := p.BlockCounts()
		for addr, n := range wantCounts {
			if got[addr] != n {
				t.Logf("seed %d: block 0x%x count %d want %d", seed, addr, got[addr], n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickParseTruncationDetected: truncating a well-formed stream in
// the middle of a block's reference words must be flagged by Finish —
// the property behind the paper's defensive-tracing claim that a
// dropped word is detected "with a very high probability".
func TestQuickParseTruncationDetected(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		table := genTable(r, 20)
		// Find a block with at least one reference.
		var b obj.InstrBlock
		found := false
		for _, cand := range table.Blocks() {
			if len(cand.Mem) > 0 && cand.Flags&obj.BBIdleLoop == 0 {
				b, found = *cand, true
				break
			}
		}
		if !found {
			return true // vacuous for this table shape
		}
		words := []uint32{trace.MarkKernExit | 3, b.RecordAddr}
		// All but the final reference word present.
		for i := 0; i < len(b.Mem)-1; i++ {
			words = append(words, 0x10000000+uint32(i)*4)
		}
		p := trace.NewParser(nil)
		p.AddProcess(3, table)
		if _, err := p.Parse(words, nil); err != nil {
			return true // already detected at parse time
		}
		return p.Finish() != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
