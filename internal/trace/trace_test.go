package trace_test

import (
	"errors"
	"strings"
	"testing"

	"systrace/internal/obj"
	"systrace/internal/trace"
)

// table builds a tiny side table: block A (2 instrs, 1 load at index
// 0) and block B (3 instrs, no refs).
func table() *trace.SideTable {
	return trace.NewSideTable([]obj.InstrBlock{
		{RecordAddr: 0x100, OrigAddr: 0x400000, NInstr: 2,
			Mem: []obj.MemOp{{Index: 0, Load: true, Size: 4}}},
		{RecordAddr: 0x200, OrigAddr: 0x400100, NInstr: 3},
		{RecordAddr: 0x300, OrigAddr: 0x400200, NInstr: 1,
			Flags: obj.BBIdleLoop},
	})
}

func ktable() *trace.SideTable {
	return trace.NewSideTable([]obj.InstrBlock{
		{RecordAddr: 0x80000100, OrigAddr: 0x80000100, NInstr: 2,
			Mem: []obj.MemOp{{Index: 1, Load: false, Size: 4}}},
	})
}

func TestParseInterleaving(t *testing.T) {
	p := trace.NewParser(ktable())
	p.AddProcess(1, table())
	words := []uint32{
		// kernel boot block
		0x80000100, 0xdeadbee0,
		// switch to user 1
		trace.MarkKernExit | 1,
		0x100, 0x10000000, // block A with its load EA
		0x200, // block B
		// kernel entry, one kernel block, return
		trace.MarkKernEnter,
		0x80000100, 0x80200000,
		trace.MarkKernExit | 1,
		0x200,
	}
	evs, err := p.Parse(words, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	// Expected: 2 kernel fetches + 1 store, then A: fetch, load, fetch;
	// B: 3 fetches; kernel again 3; B again 3.
	var kern, user int
	for _, ev := range evs {
		if ev.Kernel {
			kern++
		} else {
			user++
		}
	}
	if kern != 6 || user != 9 {
		t.Fatalf("kern=%d user=%d events=%d", kern, user, len(evs))
	}
	// The user load's address and position.
	if evs[3].Kind != trace.EvIFetch || evs[3].Addr != 0x400000 {
		t.Errorf("first user event %+v", evs[3])
	}
	if evs[4].Kind != trace.EvLoad || evs[4].Addr != 0x10000000 {
		t.Errorf("user load event %+v", evs[4])
	}
	if evs[5].Kind != trace.EvIFetch || evs[5].Addr != 0x400004 {
		t.Errorf("tail fetch %+v", evs[5])
	}
}

func TestParseNestedExceptions(t *testing.T) {
	p := trace.NewParser(ktable())
	p.AddProcess(1, table())
	// Kernel block interrupted mid-stream by a nested exception.
	words := []uint32{
		0x80000100, // kernel record (expects 1 store EA)
		trace.MarkExcEnter,
		0x80000100, 0x80200004, // complete nested block
		trace.MarkExcExit,
		0x80200008, // the interrupted block's pending EA
	}
	evs, err := p.Parse(words, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	if p.MaxDepth != 1 {
		t.Errorf("max depth %d", p.MaxDepth)
	}
	if len(evs) != 6 {
		t.Errorf("events = %d want 6", len(evs))
	}
}

func TestParseIdleCounting(t *testing.T) {
	p := trace.NewParser(nil)
	p.AddProcess(1, table())
	words := []uint32{trace.MarkKernExit | 1, 0x300, 0x300, 0x300}
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatal(err)
	}
	if p.IdleInstr != 3 {
		t.Errorf("idle instructions %d want 3", p.IdleInstr)
	}
}

func TestParseRejectsGarbageRecord(t *testing.T) {
	p := trace.NewParser(nil)
	p.AddProcess(1, table())
	if _, err := p.Parse([]uint32{trace.MarkKernExit | 1, 0x12345678}, nil); err == nil {
		t.Error("garbage record accepted")
	}
}

func TestFinishDetectsTruncation(t *testing.T) {
	p := trace.NewParser(nil)
	p.AddProcess(1, table())
	if _, err := p.Parse([]uint32{trace.MarkKernExit | 1, 0x100}, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err == nil {
		t.Error("mid-block truncation not reported")
	}
}

func TestFinishTruncatedNest(t *testing.T) {
	p := trace.NewParser(ktable())
	p.AddProcess(1, table())
	words := []uint32{
		0x80000100, // kernel block opens (1 EA pending)
		trace.MarkExcEnter,
		0x80000100, 0x80200004, // complete nested block
		// Stream ends without the matching MarkExcExit.
	}
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatal(err)
	}
	err := p.Finish()
	var tn *trace.TruncatedNestError
	if !errors.As(err, &tn) {
		t.Fatalf("Finish() = %v, want *TruncatedNestError", err)
	}
	if tn.Depth != 1 || !tn.InKern {
		t.Errorf("frame = depth %d inKern %v, want 1 kernel", tn.Depth, tn.InKern)
	}
	// The open frame holds the interrupted kernel block: its one store
	// EA never arrived.
	if tn.Orig != 0x80000100 || tn.Got != 0 || tn.Want != 1 {
		t.Errorf("interrupted block = orig %#x got %d want %d", tn.Orig, tn.Got, tn.Want)
	}
	if s := tn.Error(); !strings.Contains(s, "mid-block") || !strings.Contains(s, "kernel") {
		t.Errorf("message %q lacks context", s)
	}
}

func TestFinishTruncatedNestBetweenBlocks(t *testing.T) {
	p := trace.NewParser(ktable())
	// The exception lands between blocks: no partial block to report,
	// but the open frame itself is still an error.
	if _, err := p.Parse([]uint32{trace.MarkExcEnter}, nil); err != nil {
		t.Fatal(err)
	}
	err := p.Finish()
	var tn *trace.TruncatedNestError
	if !errors.As(err, &tn) {
		t.Fatalf("Finish() = %v, want *TruncatedNestError", err)
	}
	if tn.Depth != 1 || tn.Orig != 0 || tn.Want != 0 {
		t.Errorf("frame = %+v, want depth 1 between blocks", tn)
	}
	if s := tn.Error(); !strings.Contains(s, "between blocks") {
		t.Errorf("message %q lacks context", s)
	}
}

func TestModeSwitchResync(t *testing.T) {
	p := trace.NewParser(ktable())
	p.AddProcess(1, table())
	words := []uint32{
		0x80000100, // kernel block opens (1 EA pending)
		trace.MarkModeSw,
		0x80210000, 0x80210004, // orphan dirt (skipped)
		0x80000100, 0x80200000, // clean block resumes
	}
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	if p.ModeSws != 1 {
		t.Errorf("mode switches %d", p.ModeSws)
	}
}

func TestMarkers(t *testing.T) {
	if !trace.IsMarker(trace.MarkCtxSw | 5) {
		t.Error("CtxSw marker not recognized")
	}
	if trace.IsMarker(0x80001234) || trace.IsMarker(0x00400320) {
		t.Error("addresses misread as markers")
	}
	if trace.MarkerArg(trace.MarkProcExit|9) != 9 {
		t.Error("marker arg wrong")
	}
	if trace.MarkerKind(trace.MarkExcEnter) != trace.MarkExcEnter {
		t.Error("marker kind wrong")
	}
}

func TestReferenceCounting(t *testing.T) {
	p := trace.NewParser(nil)
	p.AddProcess(1, table())
	p.CountBlocks()
	words := []uint32{trace.MarkKernExit | 1, 0x200, 0x200, 0x300}
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatal(err)
	}
	c := p.BlockCounts()
	if c[0x400100] != 2 || c[0x400200] != 1 {
		t.Errorf("counts %v", c)
	}
}

func TestProcExitEndsAttribution(t *testing.T) {
	p := trace.NewParser(ktable())
	p.AddProcess(1, table())
	words := []uint32{
		trace.MarkKernExit | 1,
		0x200, // user block
		trace.MarkKernEnter,
		0x80000100, 0x80200000,
		trace.MarkProcExit | 1,
	}
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatal(err)
	}
	if p.ProcExits != 1 {
		t.Errorf("ProcExits = %d want 1", p.ProcExits)
	}
	// A record attributed to the exited process must now be rejected:
	// its side table is gone, as the kernel's trace pages are.
	if _, err := p.Parse([]uint32{trace.MarkKernExit | 1, 0x200}, nil); err == nil {
		t.Error("record for exited process accepted")
	}
}

func TestEmptySideTable(t *testing.T) {
	for _, blocks := range [][]obj.InstrBlock{nil, {}} {
		st := trace.NewSideTable(blocks)
		if lo, hi := st.Range(); lo != 0 || hi != 0 {
			t.Errorf("empty table Range() = [%#x, %#x], want [0, 0]", lo, hi)
		}
		if b := st.Lookup(0); b != nil {
			t.Errorf("empty table Lookup(0) = %v, want nil", b)
		}
		if b := st.Lookup(0x400100); b != nil {
			t.Errorf("empty table Lookup(0x400100) = %v, want nil", b)
		}
		if bs := st.Blocks(); len(bs) != 0 {
			t.Errorf("empty table Blocks() has %d entries, want 0", len(bs))
		}
	}
}
