// Package obs is the simulator's own observability layer: the paper's
// discipline — an observation system must measure itself without
// distorting what it measures (§4) — applied to the simulator as a
// host program rather than to the guest it simulates.
//
// It has three faces:
//
//   - a flight recorder (this file): an always-on, lock-free ring of
//     the last few thousand notable events (mode switches, trace-buffer
//     doorbells, pdExit reasons, TLB writes, IRQ edges), dumped
//     automatically on panic, oracle mismatch, or trace-conformance
//     diagnostics so a failure deep into a long run is diagnosable
//     post hoc;
//   - hierarchical phase spans (span.go): Begin/End pairs around
//     machine boot, workload runs, trace drains, analysis phases, and
//     experiment-runner jobs, recorded into a fixed ring and rendered
//     as a JSON timeline or a text Gantt (tracestat -spans);
//   - a guest-PC sampling profiler (profile.go): the CPU core samples
//     the simulated PC on an instruction-count period amortized over
//     its batched dispatch loop, and samples are attributed to guest
//     functions through the images' symbol tables and emitted as
//     folded stacks (flamegraph input) plus a host-time table.
//
// Everything here is built to stay out of the interpreter's way: event
// emission is a handful of uncontended atomic stores with no locks, no
// allocation, and no time syscalls; span operations take a mutex but
// run only at phase boundaries; the profiler costs one branch per
// dispatch batch. The `make bench-obs` harness (BENCH_obs.json) holds
// the layer to the paper's own standard: recorder-on throughput within
// noise of the recorder-off baseline.
package obs

import (
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// epoch anchors all span and dump timestamps; times are reported
// relative to process start so documents are stable and compact.
var epoch = time.Now()

// enabled gates event emission and span recording. On by default: the
// whole layer is designed to be affordable in production runs; the
// benchmark harness turns it off to measure its own cost.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the flight recorder and span layer on or off
// globally. The profiler is separate: it runs only where a CPU has a
// sampler attached.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the layer is recording.
func Enabled() bool { return enabled.Load() }

// EventID names a registered flight-recorder event kind.
type EventID uint32

// Event-name registry. Registration happens in package init blocks
// (the vet-tracer obsname checks lint the literals), so the lock is
// never contended on a hot path.
var (
	nameMu   sync.Mutex
	names    = []string{"unregistered"} // id 0 is reserved
	nameToID = map[string]EventID{}
)

// RegisterEvent registers a flight-recorder event name and returns its
// id. Names are snake_case identifiers (enforced by the telemetryname
// vettool analyzer); registering the same name twice panics, as that
// is a programming error the analyzer also rejects statically.
func RegisterEvent(name string) EventID {
	nameMu.Lock()
	defer nameMu.Unlock()
	if _, ok := nameToID[name]; ok {
		panic(fmt.Sprintf("obs: event %q registered twice", name))
	}
	return registerLocked(name)
}

// eventIDFor returns the id for name, registering it if new. It backs
// dynamically named failure events, where re-use is expected.
func eventIDFor(name string) EventID {
	nameMu.Lock()
	defer nameMu.Unlock()
	if id, ok := nameToID[name]; ok {
		return id
	}
	return registerLocked(name)
}

func registerLocked(name string) EventID {
	id := EventID(len(names))
	names = append(names, name)
	nameToID[name] = id
	return id
}

// EventName returns the registered name for id.
func EventName(id EventID) string {
	nameMu.Lock()
	defer nameMu.Unlock()
	if int(id) < len(names) {
		return names[id]
	}
	return "unregistered"
}

// ringSize is the flight-recorder capacity (a power of two). Old
// events are overwritten; a dump shows the last ringSize notable
// events before the failure.
const ringSize = 4096

// eventSlot is one ring entry. Every field is atomic so concurrent
// writers (machines on different runner goroutines) and dump readers
// are race-free without a lock; a reader may observe a slot mid-
// overwrite, which the sequence check in Events filters out.
type eventSlot struct {
	seq atomic.Uint64 // 1-based emission sequence; 0 = never written
	id  atomic.Uint64
	a   atomic.Uint64
	b   atomic.Uint64
}

// Recorder is a lock-free flight-recorder ring. The zero value is
// ready to use; the package-level Default instance is what the
// simulator subsystems emit into.
type Recorder struct {
	head atomic.Uint64
	ring [ringSize]eventSlot
}

// Default is the process-wide flight recorder.
var Default = &Recorder{}

// Emit records one event: a sequence claim plus four atomic stores.
// No locks, no allocation, no time syscalls — cheap enough for the
// CPU core's exception and TLB paths.
func (r *Recorder) Emit(id EventID, a, b uint64) {
	if !enabled.Load() {
		return
	}
	seq := r.head.Add(1)
	s := &r.ring[(seq-1)&(ringSize-1)]
	s.id.Store(uint64(id))
	s.a.Store(a)
	s.b.Store(b)
	s.seq.Store(seq)
}

// Emit records one event into the Default recorder.
func Emit(id EventID, a, b uint64) { Default.Emit(id, a, b) }

// Seq returns the total number of events ever emitted into r (the
// ring keeps only the last ringSize of them).
func (r *Recorder) Seq() uint64 { return r.head.Load() }

// Event is one decoded flight-recorder entry.
type Event struct {
	Seq  uint64 `json:"seq"`
	Name string `json:"name"`
	A    uint64 `json:"a"`
	B    uint64 `json:"b"`
}

// Events returns the recorder's current contents, oldest first. Slots
// being overwritten concurrently are dropped (their stored sequence no
// longer falls in the live window).
func (r *Recorder) Events() []Event {
	head := r.head.Load()
	lo := uint64(1)
	if head > ringSize {
		lo = head - ringSize + 1
	}
	evs := make([]Event, 0, ringSize)
	for i := range r.ring {
		s := &r.ring[i]
		seq := s.seq.Load()
		if seq < lo || seq > head {
			continue
		}
		evs = append(evs, Event{Seq: seq, Name: EventName(EventID(s.id.Load())), A: s.a.Load(), B: s.b.Load()})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// Events returns the Default recorder's contents.
func Events() []Event { return Default.Events() }

// WriteDump writes a human-readable snapshot of the recorder — the
// event ring plus the current span timeline — to w.
func (r *Recorder) WriteDump(w io.Writer) {
	evs := r.Events()
	fmt.Fprintf(w, "flight recorder: %d events (of %d emitted)\n", len(evs), r.head.Load())
	for _, e := range evs {
		fmt.Fprintf(w, "  %8d  %-28s a=0x%x b=0x%x\n", e.Seq, e.Name, e.A, e.B)
	}
	if sp := Timeline(); len(sp) > 0 {
		fmt.Fprintf(w, "spans:\n")
		WriteGantt(w)
	}
}

// Reset clears the Default recorder and span ring. For tests and CLI
// front-ends that want a run-scoped timeline; not safe to call while
// machines are running.
func Reset() {
	for i := range Default.ring {
		Default.ring[i].seq.Store(0)
	}
	Default.head.Store(0)
	spans.mu.Lock()
	for i := range spans.ring {
		spans.ring[i] = spanRec{}
	}
	spans.next = 0
	spans.stacks = map[int64][]uint64{}
	spans.mu.Unlock()
}

// Failure handling: the first failure of a process dumps the flight
// recorder to the failure writer (stderr unless a test redirects it),
// after recording a failure event named after the kind so the dump
// provably contains its own trigger.
var (
	failMu     sync.Mutex
	failWriter io.Writer = os.Stderr
	failDumped bool
)

// Failure records a failure event (named failure_<kind>) and, once per
// process, dumps the flight recorder to the failure writer. The
// simulator calls it on trace-conformance diagnostics and oracle
// mismatches; DumpOnPanic routes panics here.
func Failure(kind, detail string) {
	Emit(eventIDFor("failure_"+kind), 0, 0)
	failMu.Lock()
	defer failMu.Unlock()
	if failDumped {
		return
	}
	failDumped = true
	fmt.Fprintf(failWriter, "obs: failure (%s): %s\n", kind, detail)
	Default.WriteDump(failWriter)
}

// SetFailureWriter redirects failure dumps to w and re-arms the
// once-per-process dump; it returns a restore function. For tests.
func SetFailureWriter(w io.Writer) (restore func()) {
	failMu.Lock()
	prev, prevDumped := failWriter, failDumped
	failWriter, failDumped = w, false
	failMu.Unlock()
	return func() {
		failMu.Lock()
		failWriter, failDumped = prev, prevDumped
		failMu.Unlock()
	}
}

// DumpOnPanic is a deferred handler for command mains: on panic it
// dumps the flight recorder through Failure and re-panics.
func DumpOnPanic() {
	if r := recover(); r != nil {
		Failure("panic", fmt.Sprint(r))
		panic(r)
	}
}
