package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"systrace/internal/obj"
)

// Guest-PC sampling profiler. The CPU core samples the simulated PC
// on an instruction-count period: StepN clamps its batch to the next
// sample boundary and samples once on exit, so the per-instruction
// dispatch loop carries no profiling code at all — the cost is one
// branch per batch plus one time.Now per sample. Each sample charges
// the host time since the previous sample to the sampled guest PC,
// which is sound for the same reason the pdExit discipline is: StepN
// only runs straight-line guest work between exits, so the PC observed
// at a boundary is representative of the work since the last boundary
// at the sampling period's resolution.

// ProfSample is one profiler sample: where the guest was (PC, mode,
// address-space id = pid under both kernels) and how much host time
// elapsed since the previous sample.
type ProfSample struct {
	PC      uint32
	Kernel  bool
	Pid     uint32
	Instret uint64
	HostNs  int64
}

// Profile accumulates guest-PC samples. Hit is safe to call from the
// machine goroutine while readers snapshot from another (the -serve
// endpoint); samples arrive once per period, so the mutex is cold.
type Profile struct {
	mu      sync.Mutex
	samples []ProfSample
	last    time.Time
	primed  bool
}

// NewProfile returns an empty profile.
func NewProfile() *Profile { return &Profile{} }

// Hit records one sample; its signature matches cpu.SetProfiler.
func (p *Profile) Hit(pc uint32, kernel bool, pid uint32, instret uint64) {
	now := time.Now()
	p.mu.Lock()
	var ns int64
	if p.primed {
		ns = now.Sub(p.last).Nanoseconds()
	}
	p.last, p.primed = now, true
	p.samples = append(p.samples, ProfSample{PC: pc, Kernel: kernel, Pid: pid, Instret: instret, HostNs: ns})
	p.mu.Unlock()
}

// Samples returns a copy of the accumulated samples.
func (p *Profile) Samples() []ProfSample {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ProfSample, len(p.samples))
	copy(out, p.samples)
	return out
}

// Len returns the number of samples taken so far.
func (p *Profile) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.samples)
}

// Resolver maps a sample to a folded stack string, frames separated
// by semicolons, outermost first (the flamegraph convention).
type Resolver func(s ProfSample) string

// funcIndex is a sorted function-symbol table for one image,
// supporting binary-search attribution of a PC to the function that
// contains it.
type funcIndex struct {
	addrs []uint32
	names []string
	limit uint32 // end of the last function's plausible extent
}

func newFuncIndex(e *obj.Executable) *funcIndex {
	if e == nil {
		return nil
	}
	type fn struct {
		addr uint32
		name string
	}
	var fns []fn
	for _, s := range e.Syms {
		if s.Func {
			fns = append(fns, fn{s.Off, s.Name})
		}
	}
	if len(fns) == 0 {
		return nil
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].addr < fns[j].addr })
	ix := &funcIndex{limit: e.TextEnd()}
	for _, f := range fns {
		ix.addrs = append(ix.addrs, f.addr)
		ix.names = append(ix.names, f.name)
	}
	return ix
}

func (ix *funcIndex) lookup(pc uint32) string {
	if ix == nil || len(ix.addrs) == 0 || pc < ix.addrs[0] || pc >= ix.limit {
		return ""
	}
	i := sort.Search(len(ix.addrs), func(i int) bool { return ix.addrs[i] > pc }) - 1
	return ix.names[i]
}

// NewImageResolver builds a Resolver over the kernel image and the
// per-pid user images (ASID equals pid under both kernels, so the
// sampled address-space id selects the image). Unresolvable samples
// fold to an address literal so they still show up rather than
// silently vanishing from the profile.
func NewImageResolver(kernel *obj.Executable, procs map[uint32]*obj.Executable) Resolver {
	kix := newFuncIndex(kernel)
	uix := make(map[uint32]*funcIndex, len(procs))
	unames := make(map[uint32]string, len(procs))
	for pid, e := range procs {
		uix[pid] = newFuncIndex(e)
		if e != nil {
			unames[pid] = e.Name
		}
	}
	return func(s ProfSample) string {
		if s.Kernel {
			if fn := kix.lookup(s.PC); fn != "" {
				return "kernel;" + fn
			}
			return fmt.Sprintf("kernel;0x%08x", s.PC)
		}
		prog := unames[s.Pid]
		if prog == "" {
			prog = fmt.Sprintf("pid%d", s.Pid)
		}
		if fn := uix[s.Pid].lookup(s.PC); fn != "" {
			return prog + ";" + fn
		}
		return fmt.Sprintf("%s;0x%08x", prog, s.PC)
	}
}

// WriteFolded writes the profile in folded-stack form — one line per
// distinct stack, "frames... value" — with host nanoseconds as the
// value, directly renderable by flamegraph.pl / inferno.
func (p *Profile) WriteFolded(w io.Writer, res Resolver) {
	agg := map[string]int64{}
	for _, s := range p.Samples() {
		agg[res(s)] += s.HostNs
	}
	keys := make([]string, 0, len(agg))
	for k := range agg {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s %d\n", k, agg[k])
	}
}

// FuncTime is one row of the per-function host-time table.
type FuncTime struct {
	Name    string `json:"name"`
	Samples int    `json:"samples"`
	HostNs  int64  `json:"host_ns"`
}

// Table aggregates samples per folded stack, heaviest first.
func (p *Profile) Table(res Resolver) []FuncTime {
	type cell struct {
		n  int
		ns int64
	}
	agg := map[string]*cell{}
	for _, s := range p.Samples() {
		k := res(s)
		c := agg[k]
		if c == nil {
			c = &cell{}
			agg[k] = c
		}
		c.n++
		c.ns += s.HostNs
	}
	out := make([]FuncTime, 0, len(agg))
	for k, c := range agg {
		out = append(out, FuncTime{Name: k, Samples: c.n, HostNs: c.ns})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].HostNs != out[j].HostNs {
			return out[i].HostNs > out[j].HostNs
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteTable renders the per-function host-time table as text.
func (p *Profile) WriteTable(w io.Writer, res Resolver) {
	rows := p.Table(res)
	var totalNs int64
	total := 0
	for _, r := range rows {
		totalNs += r.HostNs
		total += r.Samples
	}
	fmt.Fprintf(w, "guest-PC profile: %d samples, %s host time\n", total, time.Duration(totalNs))
	fmt.Fprintf(w, "  %-40s %8s %12s %6s\n", "function", "samples", "host time", "%")
	for _, r := range rows {
		pct := 0.0
		if totalNs > 0 {
			pct = 100 * float64(r.HostNs) / float64(totalNs)
		}
		fmt.Fprintf(w, "  %-40s %8d %12s %5.1f%%\n", r.Name, r.Samples, time.Duration(r.HostNs).Round(time.Microsecond), pct)
	}
}
