package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase spans: Begin/End pairs around the simulator's coarse phases
// (machine boot, workload run, trace drain, memory-system analysis,
// experiment-runner jobs). Spans nest per goroutine — the experiment
// runner executes jobs in parallel, and each job's sub-phases must
// attach to their own job, not whichever span opened last — so the
// layer keeps one open-span stack per goroutine id.
//
// Spans are rare (tens per run, not per instruction), so a single
// mutex over a fixed ring is both zero-alloc in steady state and
// nowhere near any hot path.

// spanRingSize bounds the retained timeline (a power of two). The
// ring keeps the most recent spans by begin order.
const spanRingSize = 2048

type spanRec struct {
	id     uint64 // 1-based begin order; 0 = empty slot
	name   string
	detail string
	gid    int64
	parent uint64 // enclosing span id on the same goroutine, 0 = root
	depth  int32
	start  time.Time
	end    time.Time // zero while the span is open
}

var spans = struct {
	mu     sync.Mutex
	ring   [spanRingSize]spanRec
	next   uint64             // count of spans ever begun
	stacks map[int64][]uint64 // gid -> ids of open spans, innermost last
}{stacks: map[int64][]uint64{}}

// Span is the token returned by Begin; call End exactly once. The
// zero Span (returned while recording is disabled) ends as a no-op.
type Span struct{ id uint64 }

// Begin opens a phase span named name on the current goroutine.
func Begin(name string) Span { return BeginDetail(name, "") }

// BeginDetail opens a span with a free-form detail string (a workload
// name, a runner key) that renderers show next to the name.
func BeginDetail(name, detail string) Span {
	if !enabled.Load() {
		return Span{}
	}
	g := curGID()
	now := time.Now()
	spans.mu.Lock()
	spans.next++
	id := spans.next
	var parent uint64
	var depth int32
	if st := spans.stacks[g]; len(st) > 0 {
		parent = st[len(st)-1]
		if p := &spans.ring[(parent-1)&(spanRingSize-1)]; p.id == parent {
			depth = p.depth + 1
		}
	}
	spans.ring[(id-1)&(spanRingSize-1)] = spanRec{
		id: id, name: name, detail: detail,
		gid: g, parent: parent, depth: depth, start: now,
	}
	spans.stacks[g] = append(spans.stacks[g], id)
	spans.mu.Unlock()
	return Span{id: id}
}

// End closes the span. Spans left open by an inner panic are popped
// along with s, so the per-goroutine stack cannot wedge.
func (s Span) End() {
	if s.id == 0 {
		return
	}
	now := time.Now()
	spans.mu.Lock()
	rec := &spans.ring[(s.id-1)&(spanRingSize-1)]
	var g int64
	if rec.id == s.id {
		rec.end = now
		g = rec.gid
	} else {
		g = curGID() // span fell off the ring; still unwind the stack
	}
	if st := spans.stacks[g]; len(st) > 0 {
		for i := len(st) - 1; i >= 0; i-- {
			if st[i] == s.id {
				st = st[:i]
				break
			}
		}
		if len(st) == 0 {
			delete(spans.stacks, g)
		} else {
			spans.stacks[g] = st
		}
	}
	spans.mu.Unlock()
}

// curGID parses the current goroutine id from the runtime.Stack
// header ("goroutine 123 ["). Spans happen at phase boundaries, so
// the ~1µs cost is irrelevant; what matters is that nesting follows
// the goroutine that actually runs the phase.
func curGID() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	s := buf[:n]
	if i := bytes.IndexByte(s, ' '); i >= 0 {
		s = s[i+1:]
	}
	var id int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// SpanInfo is one decoded timeline entry. Times are nanoseconds since
// process start; EndNs is zero while the span is open.
type SpanInfo struct {
	ID      uint64 `json:"id"`
	Name    string `json:"name"`
	Detail  string `json:"detail,omitempty"`
	GID     int64  `json:"gid"`
	Parent  uint64 `json:"parent,omitempty"`
	Depth   int32  `json:"depth"`
	StartNs int64  `json:"start_ns"`
	EndNs   int64  `json:"end_ns,omitempty"`
}

// Open reports whether the span had not ended when the timeline was
// captured.
func (s SpanInfo) Open() bool { return s.EndNs == 0 }

// Timeline returns the retained spans in begin order.
func Timeline() []SpanInfo {
	spans.mu.Lock()
	out := make([]SpanInfo, 0, spanRingSize)
	for i := range spans.ring {
		r := &spans.ring[i]
		if r.id == 0 {
			continue
		}
		si := SpanInfo{
			ID: r.id, Name: r.name, Detail: r.detail,
			GID: r.gid, Parent: r.parent, Depth: r.depth,
			StartNs: r.start.Sub(epoch).Nanoseconds(),
		}
		if !r.end.IsZero() {
			si.EndNs = r.end.Sub(epoch).Nanoseconds()
		}
		out = append(out, si)
	}
	spans.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WriteTimelineJSON writes the span timeline as a JSON document.
func WriteTimelineJSON(w io.Writer) error {
	doc := struct {
		Spans []SpanInfo `json:"spans"`
	}{Spans: Timeline()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ganttRows caps the per-span rows a Gantt prints; dense runs (one
// trace drain per buffer fill) summarize the tail rather than scroll.
const ganttRows = 200

// WriteGantt renders the timeline as an indented text Gantt chart.
func WriteGantt(w io.Writer) {
	tl := Timeline()
	if len(tl) == 0 {
		fmt.Fprintln(w, "no spans recorded")
		return
	}
	lo, hi := tl[0].StartNs, tl[0].StartNs
	for _, s := range tl {
		if s.StartNs < lo {
			lo = s.StartNs
		}
		end := s.EndNs
		if s.Open() {
			end = time.Since(epoch).Nanoseconds()
		}
		if end > hi {
			hi = end
		}
	}
	total := hi - lo
	if total <= 0 {
		total = 1
	}
	const width = 40
	fmt.Fprintf(w, "span timeline: %d spans over %s\n", len(tl), time.Duration(total))
	for i, s := range tl {
		if i == ganttRows {
			fmt.Fprintf(w, "  ... %d more spans (use the JSON timeline for the full set)\n", len(tl)-ganttRows)
			break
		}
		end := s.EndNs
		open := ""
		if s.Open() {
			end = time.Since(epoch).Nanoseconds()
			open = " (open)"
		}
		b0 := int((s.StartNs - lo) * width / total)
		b1 := int((end - lo) * width / total)
		if b1 <= b0 {
			b1 = b0 + 1
		}
		if b1 > width {
			b1 = width
		}
		bar := strings.Repeat(" ", b0) + strings.Repeat("=", b1-b0) + strings.Repeat(" ", width-b1)
		label := s.Name
		if s.Detail != "" {
			label += " " + s.Detail
		}
		label = strings.Repeat("  ", int(s.Depth)) + label
		if len(label) > 44 {
			label = label[:41] + "..."
		}
		fmt.Fprintf(w, "  %-44s [%s] %10s%s\n", label, bar, time.Duration(end-s.StartNs).Round(time.Microsecond), open)
	}
}
