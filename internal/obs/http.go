package obs

import (
	"net/http"
	"net/http/pprof"

	"systrace/internal/telemetry"
)

// Handler serves the observability surface over HTTP for
// `tracesys -serve`: live telemetry in both export formats, the span
// timeline, the flight recorder, the guest-PC profile, and the host
// runtime's own net/http/pprof endpoints. reg, prof, and res may be
// nil; the corresponding endpoints then report 404.
//
// Endpoints:
//
//	/metrics        Prometheus text exposition of reg
//	/metrics.json   JSON export of reg
//	/spans          text Gantt of the span timeline
//	/spans.json     JSON span timeline
//	/events         flight-recorder dump
//	/profile        folded-stack guest profile (flamegraph input)
//	/debug/pprof/   host-side Go pprof
func Handler(reg *telemetry.Registry, prof *Profile, res Resolver) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		if reg == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		reg.WriteJSON(w)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteGantt(w)
	})
	mux.HandleFunc("/spans.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		WriteTimelineJSON(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		Default.WriteDump(w)
	})
	mux.HandleFunc("/profile", func(w http.ResponseWriter, r *http.Request) {
		if prof == nil || res == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		prof.WriteFolded(w, res)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
