package obs

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"systrace/internal/obj"
	"systrace/internal/telemetry"
)

var (
	testEvA = RegisterEvent("obs_test_alpha")
	testEvB = RegisterEvent("obs_test_beta")
)

func TestRecorderRoundTrip(t *testing.T) {
	var r Recorder
	r.Emit(testEvA, 1, 2)
	r.Emit(testEvB, 3, 4)
	evs := r.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].Name != "obs_test_alpha" || evs[0].A != 1 || evs[0].B != 2 {
		t.Errorf("event 0 = %+v", evs[0])
	}
	if evs[1].Name != "obs_test_beta" || evs[1].Seq != 2 {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestRecorderWrap(t *testing.T) {
	var r Recorder
	n := ringSize + 100
	for i := 0; i < n; i++ {
		r.Emit(testEvA, uint64(i), 0)
	}
	evs := r.Events()
	if len(evs) != ringSize {
		t.Fatalf("got %d events after wrap, want %d", len(evs), ringSize)
	}
	if evs[0].Seq != uint64(n-ringSize+1) || evs[len(evs)-1].Seq != uint64(n) {
		t.Errorf("window = [%d, %d], want [%d, %d]", evs[0].Seq, evs[len(evs)-1].Seq, n-ringSize+1, n)
	}
	if evs[len(evs)-1].A != uint64(n-1) {
		t.Errorf("last payload = %d, want %d", evs[len(evs)-1].A, n-1)
	}
}

func TestRegisterEventDupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate RegisterEvent did not panic")
		}
	}()
	RegisterEvent("obs_test_alpha")
}

func TestDisabledEmitsNothing(t *testing.T) {
	var r Recorder
	SetEnabled(false)
	r.Emit(testEvA, 1, 1)
	sp := Begin("obs_test_disabled_span")
	sp.End()
	SetEnabled(true)
	if len(r.Events()) != 0 {
		t.Error("emit while disabled recorded an event")
	}
	for _, s := range Timeline() {
		if s.Name == "obs_test_disabled_span" {
			t.Error("span recorded while disabled")
		}
	}
}

func TestSpanNesting(t *testing.T) {
	Reset()
	outer := BeginDetail("obs_test_outer", "detail-x")
	inner := Begin("obs_test_inner")
	inner.End()
	sib := Begin("obs_test_sibling")
	sib.End()
	outer.End()

	tl := Timeline()
	if len(tl) != 3 {
		t.Fatalf("got %d spans, want 3", len(tl))
	}
	byName := map[string]SpanInfo{}
	for _, s := range tl {
		byName[s.Name] = s
	}
	o := byName["obs_test_outer"]
	if o.Detail != "detail-x" || o.Parent != 0 || o.Depth != 0 {
		t.Errorf("outer = %+v", o)
	}
	for _, n := range []string{"obs_test_inner", "obs_test_sibling"} {
		c := byName[n]
		if c.Parent != o.ID || c.Depth != 1 {
			t.Errorf("%s: parent=%d depth=%d, want parent=%d depth=1", n, c.Parent, c.Depth, o.ID)
		}
		if c.StartNs < o.StartNs || c.EndNs > o.EndNs || c.Open() {
			t.Errorf("%s interval [%d,%d] outside outer [%d,%d]", n, c.StartNs, c.EndNs, o.StartNs, o.EndNs)
		}
	}
}

func TestSpanNestingPerGoroutine(t *testing.T) {
	Reset()
	const workers = 4
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outer := BeginDetail("obs_test_job", fmt.Sprintf("w%d", i))
			inner := Begin("obs_test_phase")
			inner.End()
			outer.End()
		}(i)
	}
	wg.Wait()
	tl := Timeline()
	byID := map[uint64]SpanInfo{}
	for _, s := range tl {
		byID[s.ID] = s
	}
	phases := 0
	for _, s := range tl {
		if s.Name != "obs_test_phase" {
			continue
		}
		phases++
		p, ok := byID[s.Parent]
		if !ok || p.Name != "obs_test_job" || p.GID != s.GID {
			t.Errorf("phase %d: parent %d not the same-goroutine job span", s.ID, s.Parent)
		}
	}
	if phases != workers {
		t.Errorf("got %d phase spans, want %d", phases, workers)
	}
}

func TestFailureDumpContainsTrigger(t *testing.T) {
	var buf bytes.Buffer
	restore := SetFailureWriter(&buf)
	defer restore()
	Emit(testEvA, 0xdead, 0xbeef)
	Failure("obs_test_trigger", "synthetic failure for the dump test")
	out := buf.String()
	if !strings.Contains(out, "failure_obs_test_trigger") {
		t.Errorf("dump does not contain the triggering event:\n%s", out)
	}
	if !strings.Contains(out, "synthetic failure") || !strings.Contains(out, "obs_test_alpha") {
		t.Errorf("dump missing detail or prior events:\n%s", out)
	}
	// Second failure in the same process must not dump again.
	buf.Reset()
	Failure("obs_test_trigger", "second")
	if buf.Len() != 0 {
		t.Error("second Failure dumped again; want once per process")
	}
}

func testExe() *obj.Executable {
	return &obj.Executable{
		Name:     "prog",
		TextBase: 0x400000,
		Text:     make([]uint32, 64),
		Syms: []obj.Symbol{
			{Name: "main", Off: 0x400000, Func: true, Defined: true},
			{Name: "inner_loop", Off: 0x400040, Func: true, Defined: true},
			{Name: "data_thing", Off: 0x400080, Defined: true},
		},
	}
}

func TestProfileFoldedAndTable(t *testing.T) {
	p := NewProfile()
	p.Hit(0x400004, false, 1, 100) // main
	p.Hit(0x400044, false, 1, 200) // inner_loop
	p.Hit(0x400048, false, 1, 300) // inner_loop
	p.Hit(0x80030010, true, 1, 400)
	kern := &obj.Executable{
		Name:     "kernel",
		TextBase: 0x80030000,
		Text:     make([]uint32, 64),
		Syms:     []obj.Symbol{{Name: "trap", Off: 0x80030000, Func: true, Defined: true}},
	}
	res := NewImageResolver(kern, map[uint32]*obj.Executable{1: testExe()})

	var folded bytes.Buffer
	p.WriteFolded(&folded, res)
	out := folded.String()
	for _, want := range []string{"prog;main", "prog;inner_loop", "kernel;trap"} {
		if !strings.Contains(out, want) {
			t.Errorf("folded output missing %q:\n%s", want, out)
		}
	}

	rows := p.Table(res)
	if len(rows) == 0 || rows[0].Name != "prog;inner_loop" || rows[0].Samples != 2 {
		t.Errorf("table head = %+v, want prog;inner_loop with 2 samples", rows)
	}
	var tab bytes.Buffer
	p.WriteTable(&tab, res)
	if !strings.Contains(tab.String(), "4 samples") {
		t.Errorf("table header wrong:\n%s", tab.String())
	}
}

func TestResolverUnknownPC(t *testing.T) {
	res := NewImageResolver(nil, nil)
	got := res(ProfSample{PC: 0x1234, Pid: 7})
	if got != "pid7;0x00001234" {
		t.Errorf("unknown user PC folded to %q", got)
	}
	got = res(ProfSample{PC: 0x80001234, Kernel: true})
	if got != "kernel;0x80001234" {
		t.Errorf("unknown kernel PC folded to %q", got)
	}
}

func TestTimelineJSONAndGantt(t *testing.T) {
	Reset()
	s := BeginDetail("obs_test_render", "r1")
	s.End()
	var js bytes.Buffer
	if err := WriteTimelineJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"obs_test_render"`) || !strings.Contains(js.String(), `"start_ns"`) {
		t.Errorf("timeline JSON:\n%s", js.String())
	}
	var g bytes.Buffer
	WriteGantt(&g)
	if !strings.Contains(g.String(), "obs_test_render r1") || !strings.Contains(g.String(), "=") {
		t.Errorf("gantt:\n%s", g.String())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	Reset()
	reg := telemetry.New()
	reg.Counter("obs_test_requests_total", "test counter").Add(3)
	p := NewProfile()
	p.Hit(0x400004, false, 1, 100)
	res := NewImageResolver(nil, map[uint32]*obj.Executable{1: testExe()})
	sp := Begin("obs_test_http")
	sp.End()
	Emit(testEvB, 9, 9)

	h := Handler(reg, p, res)
	get := func(path string) string {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Fatalf("GET %s: status %d", path, rw.Code)
		}
		b, _ := io.ReadAll(rw.Result().Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "obs_test_requests_total 3") {
		t.Errorf("/metrics:\n%s", out)
	}
	if out := get("/metrics.json"); !strings.Contains(out, `"obs_test_requests_total"`) {
		t.Errorf("/metrics.json:\n%s", out)
	}
	if out := get("/spans"); !strings.Contains(out, "obs_test_http") {
		t.Errorf("/spans:\n%s", out)
	}
	if out := get("/spans.json"); !strings.Contains(out, `"obs_test_http"`) {
		t.Errorf("/spans.json:\n%s", out)
	}
	if out := get("/events"); !strings.Contains(out, "obs_test_beta") {
		t.Errorf("/events:\n%s", out)
	}
	if out := get("/profile"); !strings.Contains(out, "prog;main") {
		t.Errorf("/profile:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}

	req := httptest.NewRequest("GET", "/profile", nil)
	rw := httptest.NewRecorder()
	Handler(nil, nil, nil).ServeHTTP(rw, req)
	if rw.Code != 404 {
		t.Errorf("nil-profile /profile: status %d, want 404", rw.Code)
	}
}

func TestConcurrentEmitAndSnapshot(t *testing.T) {
	var r Recorder
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2*ringSize; i++ {
				r.Emit(testEvA, uint64(i), 0)
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				evs := r.Events()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Error("snapshot not strictly ordered")
						return
					}
				}
			}
		}
	}()
	wg.Wait()
	close(done)
}
