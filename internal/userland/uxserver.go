package userland

import (
	"systrace/internal/kernel"
	m "systrace/internal/mahler"
)

// Server geometry: a user-space buffer cache and per-client descriptor
// tables. Everything lives in the server's BSS, so serving a client's
// read exercises large user working sets — the mechanism behind Mach's
// much higher user-TLB miss counts for I/O-light workloads (Table 3).
const (
	svNBuf   = 32
	svStage  = 8192
	maxReadN = 4096 // per-call read/write cap the server imposes
)

// UXServer builds the user-level UNIX server of the Mach flavor: an
// ordinary (traced) user program that loops on msg_recv, serving file
// requests from its own cache via the kernel's device interface.
func UXServer() *m.Module {
	mod := m.NewModule("ux")
	DeclareLibc(mod)

	mod.Global("svdirraw", 8192+4096) // page-alignable directory buffer
	mod.Global("svbufraw", (svNBuf+1)*4096)
	mod.Global("svtags", svNBuf*4)   // block tags (0 = empty; tag = block+1)
	mod.Global("svstage", svStage+8) // reply staging
	mod.Global("svfds", kernel.MaxProcs*kernel.NFD*8)
	mod.Global("svmsg", 64)
	mod.Global("svdirbase", 4)
	mod.Global("svbufbase", 4)

	alignUp := func(e m.Expr) m.Expr {
		return m.And(m.Add(e, m.I(4095)), m.U(0xfffff000))
	}

	// svInit: read the directory through the raw device interface.
	f := mod.Func("svInit", m.TInt)
	f.Locals("d", "bbase")
	f.Code(func(b *m.Block) {
		b.Assign("d", alignUp(m.Addr("svdirraw", 0)))
		b.StoreW(m.Addr("svdirbase", 0), m.V("d"))
		b.Assign("bbase", alignUp(m.Addr("svbufraw", 0)))
		b.StoreW(m.Addr("svbufbase", 0), m.V("bbase"))
		b.Do(m.Call("disk_read", m.I(0), m.V("d"), m.I(8)))
		b.If(m.Ne(m.LoadW(m.V("d")), m.U(kernel.FSMagic)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Return(m.LoadW(m.Add(m.V("d"), m.I(4)))) // nfiles
	})

	// svDirEntry(i) -> entry address.
	f = mod.Func("svDirEntry", m.TInt)
	f.Param("i", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.Add(m.Add(m.LoadW(m.Addr("svdirbase", 0)), m.I(kernel.DirEntrySize)),
			m.Mul(m.V("i"), m.I(kernel.DirEntrySize))))
	})

	// svLookup(nameAddr, nfiles) -> file index or -1.
	f = mod.Func("svLookup", m.TInt)
	f.Param("name", m.TInt)
	f.Param("nf", m.TInt)
	f.Locals("i", "e", "j", "c1", "c2", "ok")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.V("nf"), func(b *m.Block) {
			b.Assign("e", m.Call("svDirEntry", m.V("i")))
			b.Assign("ok", m.I(1))
			b.Assign("j", m.I(0))
			b.While(m.Lt(m.V("j"), m.I(kernel.DirNameLen)), func(b *m.Block) {
				b.Assign("c1", m.LoadB(m.Add(m.V("e"), m.V("j"))))
				b.Assign("c2", m.LoadB(m.Add(m.V("name"), m.V("j"))))
				b.If(m.Ne(m.V("c1"), m.V("c2")), func(b *m.Block) {
					b.Assign("ok", m.I(0))
					b.Break()
				}, nil)
				b.If(m.Eq(m.V("c1"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				b.Assign("j", m.Add(m.V("j"), m.I(1)))
			})
			b.If(m.Ne(m.V("ok"), m.I(0)), func(b *m.Block) { b.Return(m.V("i")) }, nil)
		})
		b.Return(m.Neg(m.I(1)))
	})

	// svEnsure(block) -> VA of cached block data (blocking disk read
	// on miss; the kernel's restart machinery makes disk_read appear
	// synchronous here).
	f = mod.Func("svEnsure", m.TInt)
	f.Param("block", m.TInt)
	f.Locals("idx", "va")
	f.Code(func(b *m.Block) {
		b.Assign("idx", m.ModU(m.V("block"), m.I(svNBuf)))
		b.Assign("va", m.Add(m.LoadW(m.Addr("svbufbase", 0)), m.Mul(m.V("idx"), m.I(4096))))
		b.If(m.Eq(m.LoadW(m.Add(m.Addr("svtags", 0), m.Mul(m.V("idx"), m.I(4)))),
			m.Add(m.V("block"), m.I(1))), func(b *m.Block) {
			b.Return(m.V("va"))
		}, nil)
		b.Do(m.Call("disk_read", m.Mul(m.V("block"), m.I(kernel.BlockSectors)),
			m.V("va"), m.I(kernel.BlockSectors)))
		b.StoreW(m.Add(m.Addr("svtags", 0), m.Mul(m.V("idx"), m.I(4))),
			m.Add(m.V("block"), m.I(1)))
		b.Return(m.V("va"))
	})

	// svFd(cpid, fd) -> descriptor slot (fileIdx, offset).
	f = mod.Func("svFd", m.TInt)
	f.Param("cpid", m.TInt)
	f.Param("fd", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.Add(m.Addr("svfds", 0),
			m.Mul(m.Add(m.Mul(m.Sub(m.V("cpid"), m.I(1)), m.I(kernel.NFD)), m.V("fd")), m.I(8))))
	})

	// main: the service loop.
	f = mod.Func("main", m.TInt)
	f.Locals("nf", "cpid", "op", "fd", "ubuf", "n", "idx", "slot", "off",
		"flen", "fstart", "copied", "abs", "block", "boff", "chunk", "bva", "stage")
	f.Code(func(b *m.Block) {
		b.Assign("nf", m.Call("svInit"))
		b.If(m.Lt(m.V("nf"), m.I(0)), func(b *m.Block) { b.Return(m.I(1)) }, nil)
		b.Assign("stage", m.And(m.Add(m.Addr("svstage", 0), m.I(7)), m.U(0xfffffff8)))

		b.While(m.I(1), func(b *m.Block) {
			b.Assign("cpid", m.Call("msg_recv", m.Addr("svmsg", 0)))
			b.If(m.Le(m.V("cpid"), m.I(0)), func(b *m.Block) { b.Continue() }, nil)
			b.Assign("op", m.LoadW(m.Addr("svmsg", 4)))
			b.Assign("fd", m.LoadW(m.Addr("svmsg", 8)))
			b.Assign("ubuf", m.LoadW(m.Addr("svmsg", 12)))
			b.Assign("n", m.LoadW(m.Addr("svmsg", 16)))

			// open
			b.If(m.Eq(m.V("op"), m.I(kernel.SysOpen)), func(b *m.Block) {
				b.Assign("idx", m.Call("svLookup", m.Addr("svmsg", 20), m.V("nf")))
				b.If(m.Lt(m.V("idx"), m.I(0)), func(b *m.Block) {
					b.Do(m.Call("msg_reply", m.V("cpid"), m.Neg(m.I(1)), m.I(0), m.I(0)))
					b.Continue()
				}, nil)
				b.For("fd", m.I(3), m.I(kernel.NFD), func(b *m.Block) {
					b.Assign("slot", m.Call("svFd", m.V("cpid"), m.V("fd")))
					b.If(m.Eq(m.LoadW(m.V("slot")), m.I(0)), func(b *m.Block) {
						b.StoreW(m.V("slot"), m.Add(m.V("idx"), m.I(1)))
						b.StoreW(m.Add(m.V("slot"), m.I(4)), m.I(0))
						b.Do(m.Call("msg_reply", m.V("cpid"), m.V("fd"), m.I(0), m.I(0)))
						b.Assign("fd", m.I(kernel.NFD+100)) // served
					}, nil)
				})
				b.If(m.Eq(m.V("fd"), m.I(kernel.NFD)), func(b *m.Block) {
					b.Do(m.Call("msg_reply", m.V("cpid"), m.Neg(m.I(1)), m.I(0), m.I(0)))
				}, nil)
				b.Continue()
			}, nil)

			// close
			b.If(m.Eq(m.V("op"), m.I(kernel.SysClose)), func(b *m.Block) {
				b.Assign("slot", m.Call("svFd", m.V("cpid"), m.V("fd")))
				b.StoreW(m.V("slot"), m.I(0))
				b.Do(m.Call("msg_reply", m.V("cpid"), m.I(0), m.I(0), m.I(0)))
				b.Continue()
			}, nil)

			// read/write share setup.
			b.Assign("slot", m.Call("svFd", m.V("cpid"), m.V("fd")))
			b.Assign("idx", m.Sub(m.LoadW(m.V("slot")), m.I(1)))
			b.If(m.Lt(m.V("idx"), m.I(0)), func(b *m.Block) {
				b.Do(m.Call("msg_reply", m.V("cpid"), m.Neg(m.I(1)), m.I(0), m.I(0)))
				b.Continue()
			}, nil)
			b.Assign("off", m.LoadW(m.Add(m.V("slot"), m.I(4))))
			b.Assign("fstart", m.Mul(m.LoadW(m.Add(m.Call("svDirEntry", m.V("idx")),
				m.I(kernel.DirNameLen))), m.I(kernel.SectorSize)))
			b.Assign("flen", m.LoadW(m.Add(m.Call("svDirEntry", m.V("idx")),
				m.I(kernel.DirNameLen+4))))
			b.If(m.GtU(m.V("n"), m.I(maxReadN)), func(b *m.Block) {
				b.Assign("n", m.I(maxReadN))
			}, nil)

			b.If(m.Eq(m.V("op"), m.I(kernel.SysRead)), func(b *m.Block) {
				b.If(m.GeU(m.V("off"), m.V("flen")), func(b *m.Block) {
					b.Do(m.Call("msg_reply", m.V("cpid"), m.I(0), m.I(0), m.I(0)))
					b.Continue()
				}, nil)
				b.If(m.GtU(m.V("n"), m.Sub(m.V("flen"), m.V("off"))), func(b *m.Block) {
					b.Assign("n", m.Sub(m.V("flen"), m.V("off")))
				}, nil)
				b.Assign("copied", m.I(0))
				b.While(m.LtU(m.V("copied"), m.V("n")), func(b *m.Block) {
					b.Assign("abs", m.Add(m.V("fstart"), m.Add(m.V("off"), m.V("copied"))))
					b.Assign("block", m.DivU(m.V("abs"), m.I(4096)))
					b.Assign("boff", m.ModU(m.V("abs"), m.I(4096)))
					b.Assign("bva", m.Call("svEnsure", m.V("block")))
					b.Assign("chunk", m.Sub(m.I(4096), m.V("boff")))
					b.If(m.GtU(m.V("chunk"), m.Sub(m.V("n"), m.V("copied"))), func(b *m.Block) {
						b.Assign("chunk", m.Sub(m.V("n"), m.V("copied")))
					}, nil)
					b.Do(m.Call("memcpy", m.Add(m.V("stage"), m.V("copied")),
						m.Add(m.V("bva"), m.V("boff")), m.V("chunk")))
					b.Assign("copied", m.Add(m.V("copied"), m.V("chunk")))
				})
				b.StoreW(m.Add(m.V("slot"), m.I(4)), m.Add(m.V("off"), m.V("n")))
				b.Do(m.Call("msg_reply", m.V("cpid"), m.V("n"), m.V("stage"), m.V("n")))
				b.Continue()
			}, nil)

			// write: pull the client's bytes, update the cache, and
			// push the affected block back through the device.
			b.If(m.Eq(m.V("op"), m.I(kernel.SysWrite)), func(b *m.Block) {
				b.If(m.GtU(m.Add(m.V("off"), m.V("n")), m.V("flen")), func(b *m.Block) {
					b.Do(m.Call("msg_reply", m.V("cpid"), m.Neg(m.I(1)), m.I(0), m.I(0)))
					b.Continue()
				}, nil)
				b.Do(m.Syscall(kernel.SysMsgFetch, m.V("cpid"), m.V("stage"), m.V("ubuf"), m.V("n")))
				b.Assign("copied", m.I(0))
				b.While(m.LtU(m.V("copied"), m.V("n")), func(b *m.Block) {
					b.Assign("abs", m.Add(m.V("fstart"), m.Add(m.V("off"), m.V("copied"))))
					b.Assign("block", m.DivU(m.V("abs"), m.I(4096)))
					b.Assign("boff", m.ModU(m.V("abs"), m.I(4096)))
					b.Assign("bva", m.Call("svEnsure", m.V("block")))
					b.Assign("chunk", m.Sub(m.I(4096), m.V("boff")))
					b.If(m.GtU(m.V("chunk"), m.Sub(m.V("n"), m.V("copied"))), func(b *m.Block) {
						b.Assign("chunk", m.Sub(m.V("n"), m.V("copied")))
					}, nil)
					b.Do(m.Call("memcpy", m.Add(m.V("bva"), m.V("boff")),
						m.Add(m.V("stage"), m.V("copied")), m.V("chunk")))
					b.Do(m.Call("disk_write", m.Mul(m.V("block"), m.I(kernel.BlockSectors)),
						m.V("bva"), m.I(kernel.BlockSectors)))
					b.Assign("copied", m.Add(m.V("copied"), m.V("chunk")))
				})
				b.StoreW(m.Add(m.V("slot"), m.I(4)), m.Add(m.V("off"), m.V("n")))
				b.Do(m.Call("msg_reply", m.V("cpid"), m.V("n"), m.I(0), m.I(0)))
				b.Continue()
			}, nil)

			b.Do(m.Call("msg_reply", m.V("cpid"), m.Neg(m.I(1)), m.I(0), m.I(0)))
		})
		b.Return(m.I(0))
	})
	return mod
}
