package userland_test

import (
	"testing"

	m "systrace/internal/mahler"
	"systrace/internal/userland"
)

func TestCrt0VariantsSameSize(t *testing.T) {
	a := userland.Crt0(true)
	b := userland.Crt0(false)
	if len(a.Text) != len(b.Text) {
		t.Fatalf("crt0 sizes differ: traced %d, untraced %d words — "+
			"original/instrumented layout correspondence would break",
			len(a.Text), len(b.Text))
	}
}

func TestBuildProducesMatchedPair(t *testing.T) {
	mod := m.NewModule("tiny")
	userland.DeclareLibc(mod)
	f := mod.Func("main", m.TInt)
	f.Code(func(b *m.Block) { b.Return(m.I(9)) })
	p, err := userland.Build("tiny", []*m.Module{mod}, m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Orig.DataBase != p.Instr.DataBase {
		t.Error("data bases differ between original and instrumented")
	}
	if p.Orig.Traced {
		t.Error("original image must not carry the traced flag")
	}
	if !p.Instr.Traced || p.Instr.Instr == nil {
		t.Error("instrumented image must carry the flag and side table")
	}
	// Every record in the side table must map into original text.
	for _, b := range p.Instr.Instr.Blocks {
		if b.OrigAddr < p.Orig.TextBase || b.OrigAddr >= p.Orig.TextEnd() {
			t.Fatalf("side table block orig 0x%x outside original text", b.OrigAddr)
		}
		if b.RecordAddr < p.Instr.TextBase || b.RecordAddr >= p.Instr.TextEnd() {
			t.Fatalf("record 0x%x outside instrumented text", b.RecordAddr)
		}
	}
}

func TestLibcCompiles(t *testing.T) {
	lib := userland.Libc()
	o, err := lib.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"sys_read", "sys_write", "memcpy", "strlen", "puts"} {
		if o.SymIndex(sym) < 0 {
			t.Errorf("libc missing %s", sym)
		}
	}
}

func TestUXServerCompiles(t *testing.T) {
	srv := userland.UXServer()
	if _, err := srv.Compile(m.Options{}); err != nil {
		t.Fatal(err)
	}
}
