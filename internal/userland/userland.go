// Package userland provides the user-level runtime for programs that
// run on the simulated kernels: the startup stub (in traced builds it
// points xreg3 at the per-process trace pages and initializes the
// buffer bookkeeping — under Mach the first touch of those pages is
// what makes the kernel allocate them, §3.6), a tiny libc of syscall
// wrappers, and the build helper producing original + instrumented
// images.
package userland

import (
	"fmt"

	"systrace/internal/asm"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/kernel"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// Crt0 builds the startup stub. The kernel fabricates sp and jumps to
// _start; main's return value becomes the exit status. The traced and
// untraced variants have identical sizes so that program layout — and
// therefore every address in the trace — matches the uninstrumented
// binary exactly.
func Crt0(traced bool) *obj.File {
	a := asm.New("crt0u")
	a.Func("_start", asm.NoInstrument)
	li32 := func(r int, v uint32) {
		a.I(isa.LUI(r, uint16(v>>16)))
		a.I(isa.ORI(r, r, uint16(v)))
	}
	if traced {
		li32(isa.XReg3, trace.UserTraceVA)
		li32(isa.RegAT, trace.UserTraceVA+trace.BookSize)
		a.I(isa.SW(isa.RegAT, isa.XReg3, trace.BookBufPtr))
		li32(isa.RegAT, trace.UserTraceVA+trace.BookSize+trace.UserBufBytes)
		a.I(isa.SW(isa.RegAT, isa.XReg3, trace.BookBufEnd))
	} else {
		for i := 0; i < 8; i++ {
			a.I(isa.NOP)
		}
	}
	a.JalSym("main")
	a.I(isa.NOP)
	a.I(isa.OR(isa.RegA0, isa.RegV0, isa.RegZero))
	li32(isa.RegV0, kernel.SysExit)
	a.I(isa.SYSCALL())
	a.I(isa.NOP) // not reached
	return a.MustFinish()
}

// Libc returns a module of syscall wrappers and common routines the
// workloads share. It is compiled and linked into every program (and
// therefore traced, like the real libc).
func Libc() *m.Module {
	lib := m.NewModule("libc")

	wrap := func(name string, num int, nargs int) {
		f := lib.Func(name, m.TInt)
		args := make([]m.Expr, 0, nargs)
		for i := 0; i < nargs; i++ {
			p := fmt.Sprintf("a%d", i)
			f.Param(p, m.TInt)
			args = append(args, m.V(p))
		}
		f.Code(func(b *m.Block) {
			b.Return(m.Syscall(num, args...))
		})
	}
	wrap("sys_write", kernel.SysWrite, 3)
	wrap("sys_read", kernel.SysRead, 3)
	wrap("sys_open", kernel.SysOpen, 1)
	wrap("sys_close", kernel.SysClose, 1)
	wrap("sys_brk", kernel.SysBrk, 1)
	wrap("sys_getpid", kernel.SysGetPID, 0)
	wrap("sys_yield", kernel.SysYield, 0)
	wrap("sys_time", kernel.SysTime, 0)
	wrap("sys_tracectl", kernel.SysTraceCtl, 1)
	wrap("msg_recv", kernel.SysMsgRecv, 1)
	wrap("msg_reply", kernel.SysMsgReply, 4)
	wrap("disk_read", kernel.SysDiskRead, 3)
	wrap("disk_write", kernel.SysDiskWrite, 3)

	// memcpy(dst, src, n)
	f := lib.Func("memcpy", m.TInt)
	f.Param("dst", m.TInt)
	f.Param("src", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i")
	f.Code(func(b *m.Block) {
		b.Assign("i", m.I(0))
		b.If(m.Eq(m.And(m.Or(m.V("dst"), m.V("src")), m.I(3)), m.I(0)), func(b *m.Block) {
			b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("n")), func(b *m.Block) {
				b.StoreW(m.Add(m.V("dst"), m.V("i")), m.LoadW(m.Add(m.V("src"), m.V("i"))))
				b.Assign("i", m.Add(m.V("i"), m.I(4)))
			})
		}, nil)
		b.While(m.LtU(m.V("i"), m.V("n")), func(b *m.Block) {
			b.StoreB(m.Add(m.V("dst"), m.V("i")), m.LoadB(m.Add(m.V("src"), m.V("i"))))
			b.Assign("i", m.Add(m.V("i"), m.I(1)))
		})
		b.Return(m.V("dst"))
	})

	// memset(dst, c, n)
	f = lib.Func("memset", m.TInt)
	f.Param("dst", m.TInt)
	f.Param("c", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
			b.StoreB(m.Add(m.V("dst"), m.V("i")), m.V("c"))
		})
		b.Return(m.V("dst"))
	})

	// strlen(s)
	f = lib.Func("strlen", m.TInt)
	f.Param("s", m.TInt)
	f.Locals("i")
	f.Code(func(b *m.Block) {
		b.Assign("i", m.I(0))
		b.While(m.Ne(m.LoadB(m.Add(m.V("s"), m.V("i"))), m.I(0)), func(b *m.Block) {
			b.Assign("i", m.Add(m.V("i"), m.I(1)))
		})
		b.Return(m.V("i"))
	})

	// puts(s): write a NUL-terminated string to the console.
	f = lib.Func("puts", m.TInt)
	f.Param("s", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.Call("sys_write", m.I(1), m.V("s"), m.Call("strlen", m.V("s"))))
	})

	return lib
}

// DeclareLibc registers the libc externs on a workload module.
func DeclareLibc(mod *m.Module) {
	for _, n := range []string{"sys_write", "sys_read", "sys_open", "sys_close",
		"sys_brk", "sys_getpid", "sys_yield", "sys_time", "sys_tracectl",
		"msg_recv", "msg_reply", "disk_read", "disk_write",
		"memcpy", "memset", "strlen", "puts"} {
		mod.Extern(n, m.TInt)
	}
}

// Program is a built user program in both forms.
type Program struct {
	Name  string
	Orig  *obj.Executable // uninstrumented (direct measurement)
	Instr *obj.Executable // epoxie-instrumented (tracing)
}

// Build compiles modules (plus libc) and produces the original and
// instrumented executables with identical data layout.
func Build(name string, mods []*m.Module, opt m.Options) (*Program, error) {
	return BuildFlow(name, mods, opt, epoxie.FlowOn)
}

// BuildFlow is Build with an explicit rewriter liveness mode; the
// differential oracle uses it to produce FlowOff and FlowPadded
// variants of the same program.
func BuildFlow(name string, mods []*m.Module, opt m.Options, flow epoxie.FlowMode) (*Program, error) {
	objs := []*obj.File{Crt0(true)}
	for _, mod := range append(mods, Libc()) {
		o, err := mod.Compile(opt)
		if err != nil {
			return nil, fmt.Errorf("userland %s: %w", name, err)
		}
		objs = append(objs, o)
	}
	lopt := link.Options{
		Name:     name,
		Entry:    "_start",
		TextBase: obj.UserTextBase,
		DataBase: obj.UserDataBase,
	}
	b, err := epoxie.BuildInstrumented(objs, lopt, epoxie.Config{Flow: flow}, epoxie.UserRuntime)
	if err != nil {
		return nil, fmt.Errorf("userland %s: %w", name, err)
	}
	// The untraced image must not poke the trace pages: rebuild the
	// original with the untraced crt0 (same code size as a stub is
	// NoInstrument; layout of the program proper is unchanged).
	objs[0] = Crt0(false)
	orig, err := link.Link(objs, lopt)
	if err != nil {
		return nil, fmt.Errorf("userland %s: %w", name, err)
	}
	return &Program{Name: name, Orig: orig, Instr: b.Instr}, nil
}
