// Package sim provides a bare-metal harness: it links objects against
// a minimal kseg0 startup stub and runs them with no kernel, halting
// at a break instruction. The toolchain test suites (mahler, epoxie,
// pixie) use it to validate generated and rewritten code against the
// interpreter — the same tool-vs-independent-simulator cross-check the
// paper used to establish the correctness of epoxie instrumentation
// (§4.3: "validated by comparing epoxie trace for deterministic user
// programs to trace from a CPU simulator").
package sim

import (
	"fmt"

	"systrace/internal/asm"
	"systrace/internal/cpu"
	"systrace/internal/isa"
	"systrace/internal/link"
	"systrace/internal/machine"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// Bare-metal layout: everything in kseg0 so no TLB is involved.
const (
	BareTextBase = 0x80001000
	BareDataBase = 0x80100000
	BareStackTop = 0x80380000
	// BareBook is the trace bookkeeping area for bare traced runs; the
	// trace buffer follows it.
	BareBook     = 0x80400000
	BareBufBytes = 0x00380000
	BareRAM      = 8 << 20
)

// StartObj builds the `_start` stub: set sp, call main, break. main's
// return value is left in v0.
func StartObj() *obj.File {
	a := asm.New("crt0")
	a.Func("_start", asm.NoInstrument)
	a.LI(29, BareStackTop) // sp
	a.JalSym("main")
	a.I(0)          // nop (delay slot)
	a.I(0x0000000d) // break 0
	a.I(0)
	return a.MustFinish()
}

// TracedStartObj builds the `_start` stub for bare traced runs: it
// initializes the stack, points xreg3 at the bookkeeping area, sets
// the buffer pointer and limit, calls main, and breaks. The buffer
// occupies [BareBook+BookSize, BareBook+BareBufBytes).
func TracedStartObj() *obj.File {
	a := asm.New("crt0t")
	a.Func("_start", asm.NoInstrument)
	a.LI(isa.RegSP, BareStackTop)
	a.LI(isa.XReg3, BareBook)
	a.LI(isa.RegAT, BareBook+trace.BookSize)
	a.I(isa.SW(isa.RegAT, isa.XReg3, trace.BookBufPtr))
	a.LI(isa.RegAT, BareBook+BareBufBytes)
	a.I(isa.SW(isa.RegAT, isa.XReg3, trace.BookBufEnd))
	a.JalSym("main")
	a.I(isa.NOP)
	a.I(isa.BREAK(0))
	a.I(isa.NOP)
	return a.MustFinish()
}

// TraceWords extracts the raw trace words a bare traced run produced.
func TraceWords(m *machine.Machine) []uint32 {
	end := ReadWord(m, BareBook+trace.BookBufPtr)
	start := uint32(BareBook + trace.BookSize)
	out := make([]uint32, 0, (end-start)/4)
	for p := start; p < end; p += 4 {
		out = append(out, ReadWord(m, p))
	}
	return out
}

// BuildBare links objs (plus the startup stub) into a bare executable.
func BuildBare(name string, objs ...*obj.File) (*obj.Executable, error) {
	all := append([]*obj.File{StartObj()}, objs...)
	return link.Link(all, link.Options{
		Name:     name,
		TextBase: BareTextBase,
		DataBase: BareDataBase,
	})
}

// BuildBareObjs links the given objects (the first of which must
// provide _start) at the bare layout.
func BuildBareObjs(name string, objs []*obj.File) (*obj.Executable, error) {
	return link.Link(objs, link.Options{
		Name:     name,
		TextBase: BareTextBase,
		DataBase: BareDataBase,
	})
}

// NewBareMachine loads a bare executable into a fresh machine without
// running it. The machine halts at the first break instruction.
func NewBareMachine(e *obj.Executable) *machine.Machine {
	m := machine.New(BareRAM, nil)
	if err := loadBare(m, e); err != nil {
		panic(err) // bare images always fit BareRAM by construction
	}
	m.CPU.HaltOnBreak = true
	return m
}

// Run executes a bare executable and returns the machine (for memory
// and register inspection).
func Run(e *obj.Executable, maxInstr uint64) (*machine.Machine, error) {
	m := machine.New(BareRAM, nil)
	if err := loadBare(m, e); err != nil {
		return nil, err
	}
	m.CPU.HaltOnBreak = true
	if err := m.Run(maxInstr); err != nil {
		return m, err
	}
	if !m.CPU.Halted {
		return m, fmt.Errorf("sim: %s did not halt", e.Name)
	}
	return m, nil
}

// RunResult builds, runs, and returns main's return value (v0).
func RunResult(e *obj.Executable, maxInstr uint64) (uint32, *machine.Machine, error) {
	m, err := Run(e, maxInstr)
	if err != nil {
		return 0, m, err
	}
	return m.CPU.GPR[2], m, nil
}

func loadBare(m *machine.Machine, e *obj.Executable) error {
	text := make([]byte, len(e.Text)*4)
	for i, w := range e.Text {
		text[i*4] = byte(w >> 24)
		text[i*4+1] = byte(w >> 16)
		text[i*4+2] = byte(w >> 8)
		text[i*4+3] = byte(w)
	}
	if err := m.RAM.WriteBytes(e.TextBase-cpu.KSeg0Base, text); err != nil {
		return err
	}
	if err := m.RAM.WriteBytes(e.DataBase-cpu.KSeg0Base, e.Data); err != nil {
		return err
	}
	m.CPU.PC = e.Entry
	return nil
}

// ReadWord reads a word of guest memory at a kseg0 virtual address.
func ReadWord(m *machine.Machine, va uint32) uint32 {
	return m.RAM.ReadWord(va - cpu.KSeg0Base)
}

// ReadBytes copies n bytes of guest memory at a kseg0 virtual address.
func ReadBytes(m *machine.Machine, va uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, m.RAM.Bytes()[va-cpu.KSeg0Base:])
	return out
}
