package sim_test

import (
	"testing"

	m "systrace/internal/mahler"
	"systrace/internal/sim"
)

func TestRunResultAndReaders(t *testing.T) {
	mod := m.NewModule("tiny")
	mod.Data("msg", []byte{0xde, 0xad, 0xbe, 0xef})
	f := mod.Func("main", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.LoadW(m.Addr("msg", 0)))
	})
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.BuildBare("tiny", o)
	if err != nil {
		t.Fatal(err)
	}
	v, mach, err := sim.RunResult(e, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xdeadbeef {
		t.Fatalf("result 0x%x", v)
	}
	msg := e.MustSymbol("msg")
	if got := sim.ReadWord(mach, msg); got != 0xdeadbeef {
		t.Errorf("ReadWord 0x%x", got)
	}
	if got := sim.ReadBytes(mach, msg, 4); got[0] != 0xde || got[3] != 0xef {
		t.Errorf("ReadBytes %x", got)
	}
}

func TestBuildBareRejectsMissingMain(t *testing.T) {
	mod := m.NewModule("nomain")
	f := mod.Func("helper", m.TInt)
	f.Code(func(b *m.Block) { b.Return(m.I(0)) })
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.BuildBare("nomain", o); err == nil {
		t.Error("link without main succeeded")
	}
}
