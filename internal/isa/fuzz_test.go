package isa_test

import (
	"encoding/binary"
	"testing"

	"systrace/internal/isa"
)

// FuzzDisasm throws arbitrary 32-bit words at the decode layer: the
// disassembler must produce something for every word without
// panicking, register analysis must stay in range, and re-encoding a
// word through the identity register map must reproduce it bit for
// bit (the invariant steal rewriting depends on).
func FuzzDisasm(f *testing.F) {
	for _, w := range []isa.Word{
		isa.NOP,
		isa.ADDIU(isa.RegT0, isa.RegSP, 16),
		isa.ADDU(isa.RegV0, isa.RegA0, isa.RegA1),
		isa.LW(isa.RegV0, isa.RegSP, 4),
		isa.SW(isa.RegRA, isa.RegSP, 0x7c),
		isa.LUI(isa.RegAT, 0x1000),
		isa.JR(isa.RegRA),
		isa.JALR(isa.RegRA, isa.RegT9),
		isa.JAL(0x00400000 >> 2),
		isa.BNE(isa.RegT0, isa.RegZero, -3),
		isa.MULT(isa.RegT0, isa.RegT1),
		isa.LINop(7),
	} {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], uint32(w))
		f.Add(b[:])
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			t.Skip()
		}
		w := isa.Word(binary.BigEndian.Uint32(data))
		if s := isa.Disassemble(0x1000, w); s == "" {
			t.Errorf("empty disassembly for %08x", uint32(w))
		}

		if d := isa.Defs(w); d < -1 || d > 31 {
			t.Errorf("Defs(%08x) = %d out of range", uint32(w), d)
		}
		for _, r := range isa.Uses(w) {
			if r < 0 || r > 31 {
				t.Errorf("Uses(%08x) includes %d out of range", uint32(w), r)
			}
		}

		id := func(r int) int { return r }
		if got := isa.MapRegs(w, id, id); got != w {
			t.Errorf("MapRegs identity changed %08x -> %08x", uint32(w), uint32(got))
		}

		// Predicates must agree with each other, not just not panic.
		if isa.IsMem(w) {
			if s := isa.MemSize(w); s != 1 && s != 2 && s != 4 && s != 8 {
				t.Errorf("MemSize(%08x) = %d for a memory word", uint32(w), s)
			}
		}
		if isa.HasDelaySlot(w) && isa.IsMem(w) {
			t.Errorf("%08x classified as both transfer and memory op", uint32(w))
		}
	})
}
