package isa_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"systrace/internal/isa"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	words := []isa.Word{
		isa.ADDU(1, 2, 3), isa.SUBU(31, 29, 1), isa.SLL(4, 5, 31),
		isa.SRA(4, 5, 1), isa.JR(31), isa.JALR(31, 25), isa.SYSCALL(),
		isa.BREAK(7), isa.MULT(3, 4), isa.MFLO(2), isa.ADDIU(29, 29, 0xff60),
		isa.LUI(28, 0x8000), isa.LW(8, 29, 16), isa.SB(9, 8, 0xffff),
		isa.BEQ(4, 5, -12), isa.BNE(0, 2, 100), isa.BLTZ(7, 3), isa.BGEZ(7, -3),
		isa.J(0x1000 >> 2), isa.JAL(0x2000 >> 2), isa.MFC0(26, isa.C0EPC),
		isa.MTC0(27, isa.C0Status), isa.TLBWR(), isa.RFE(),
		isa.FADD(2, 4, 6), isa.FDIV(30, 28, 26), isa.FSQRT(8, 10),
		isa.CVTDW(2, 4), isa.MFC1(9, 3), isa.MTC1(9, 3),
		isa.BC1T(5), isa.BC1F(-5), isa.LWC1(4, 29, 40), isa.SWC1(6, 8, 0),
	}
	for _, w := range words {
		if got := isa.Decode(w).Encode(); got != w {
			t.Errorf("round trip 0x%08x -> 0x%08x (%s)", w, got, isa.Disassemble(0, w))
		}
	}
}

func TestDecodeEncodeQuick(t *testing.T) {
	// For arbitrary words of known formats, Decode/Encode must agree.
	f := func(rs, rt, rd uint8, imm uint16) bool {
		w := isa.ADDU(int(rd%32), int(rs%32), int(rt%32))
		w2 := isa.ORI(int(rt%32), int(rs%32), imm)
		return isa.Decode(w).Encode() == w && isa.Decode(w2).Encode() == w2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestUsesDefs(t *testing.T) {
	cases := []struct {
		w     isa.Word
		reads []int
		write int
	}{
		{isa.ADDU(3, 1, 2), []int{1, 2}, 3},
		{isa.ADDIU(5, 4, 1), []int{4}, 5},
		{isa.LW(8, 29, 0), []int{29}, 8},
		{isa.SW(8, 29, 0), []int{29, 8}, -1},
		{isa.SLL(2, 3, 4), []int{3}, 2},
		{isa.JR(31), []int{31}, -1},
		{isa.JALR(31, 25), []int{25}, 31},
		{isa.JAL(0), nil, 31},
		{isa.BEQ(4, 5, 0), []int{4, 5}, -1},
		{isa.LUI(9, 1), nil, 9},
		{isa.MFLO(6), nil, 6},
		{isa.MULT(2, 3), []int{2, 3}, -1},
		{isa.LWC1(4, 8, 0), []int{8}, -1},
		{isa.SWC1(4, 8, 0), []int{8}, -1},
		{isa.MTC0(7, isa.C0EPC), []int{7}, -1},
		{isa.MFC0(7, isa.C0EPC), nil, 7},
	}
	for _, c := range cases {
		got := isa.Uses(c.w)
		if len(got) != len(c.reads) {
			t.Errorf("%s: reads %v want %v", isa.Disassemble(0, c.w), got, c.reads)
			continue
		}
		seen := map[int]bool{}
		for _, r := range got {
			seen[r] = true
		}
		for _, r := range c.reads {
			if !seen[r] {
				t.Errorf("%s: missing read %d", isa.Disassemble(0, c.w), r)
			}
		}
		if w := isa.Defs(c.w); w != c.write {
			t.Errorf("%s: writes %d want %d", isa.Disassemble(0, c.w), w, c.write)
		}
	}
}

func TestClassification(t *testing.T) {
	if !isa.IsLoad(isa.LW(1, 2, 0)) || isa.IsLoad(isa.SW(1, 2, 0)) {
		t.Error("IsLoad misclassifies")
	}
	if !isa.IsStore(isa.SB(1, 2, 0)) || isa.IsStore(isa.LB(1, 2, 0)) {
		t.Error("IsStore misclassifies")
	}
	if isa.MemSize(isa.LB(1, 2, 0)) != 1 || isa.MemSize(isa.LH(1, 2, 0)) != 2 ||
		isa.MemSize(isa.LW(1, 2, 0)) != 4 || isa.MemSize(isa.LWC1(1, 2, 0)) != 8 {
		t.Error("MemSize wrong")
	}
	if !isa.HasDelaySlot(isa.BEQ(1, 2, 0)) || !isa.HasDelaySlot(isa.JR(31)) ||
		!isa.HasDelaySlot(isa.BC1T(0)) || isa.HasDelaySlot(isa.ADDU(1, 2, 3)) {
		t.Error("HasDelaySlot misclassifies")
	}
	if !isa.EndsBlock(isa.SYSCALL()) || !isa.EndsBlock(isa.BREAK(0)) {
		t.Error("EndsBlock misses syscall/break")
	}
	if !isa.IsFPArith(isa.FMUL(1, 2, 3)) || isa.IsFPArith(isa.LWC1(1, 2, 0)) {
		t.Error("IsFPArith misclassifies")
	}
	if isa.FPLatency(isa.FDIV(1, 2, 3)) <= isa.FPLatency(isa.FADD(1, 2, 3)) {
		t.Error("FDIV should cost more than FADD")
	}
}

func TestLINop(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000, 65535} {
		w := isa.LINop(n)
		if got := isa.LINopValue(w); got != n {
			t.Errorf("LINop(%d) -> %d", n, got)
		}
		if isa.Defs(w) != -1 {
			t.Error("LINop must not write a register")
		}
	}
	if isa.LINopValue(isa.ADDU(1, 2, 3)) != -1 {
		t.Error("non-LINop must report -1")
	}
}

func TestEANopAlignment(t *testing.T) {
	// The EA no-op must match the access width so it never takes an
	// alignment fault the original instruction would not.
	if isa.MemSize(isa.EANop(29, 1, 1)) != 1 {
		t.Error("byte EANop must be a byte load")
	}
	if isa.MemSize(isa.EANop(29, 2, 2)) != 2 {
		t.Error("half EANop must be a half load")
	}
	if isa.Defs(isa.EANop(29, 0, 4)) != -1 {
		t.Error("EANop writes register zero only")
	}
}

func TestDisassembleStable(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 10000; i++ {
		w := isa.Word(r.Uint32())
		s := isa.Disassemble(0x80001000, w)
		if s == "" {
			t.Fatalf("empty disassembly for 0x%08x", w)
		}
	}
}
