package isa

// Constructors for machine words. These are used by the assembler, the
// Mahler code generator, and the instrumentation tools. Branch
// constructors take the immediate word offset (target - delayslot)/4
// as a signed value; jump constructors take the 26-bit target field.

func rtype(fn uint32, rd, rs, rt int) Word {
	return Instr{Op: OpSpecial, Funct: fn, Rd: rd, Rs: rs, Rt: rt}.Encode()
}

func itype(op uint32, rt, rs int, imm uint16) Word {
	return Instr{Op: op, Rt: rt, Rs: rs, Imm: imm}.Encode()
}

// NOP is the canonical no-op (sll zero, zero, 0).
const NOP Word = 0

func ADDU(rd, rs, rt int) Word { return rtype(FnADDU, rd, rs, rt) }
func SUBU(rd, rs, rt int) Word { return rtype(FnSUBU, rd, rs, rt) }
func AND(rd, rs, rt int) Word  { return rtype(FnAND, rd, rs, rt) }
func OR(rd, rs, rt int) Word   { return rtype(FnOR, rd, rs, rt) }
func XOR(rd, rs, rt int) Word  { return rtype(FnXOR, rd, rs, rt) }
func NOR(rd, rs, rt int) Word  { return rtype(FnNOR, rd, rs, rt) }
func SLT(rd, rs, rt int) Word  { return rtype(FnSLT, rd, rs, rt) }
func SLTU(rd, rs, rt int) Word { return rtype(FnSLTU, rd, rs, rt) }

func SLL(rd, rt int, sh uint32) Word {
	return Instr{Op: OpSpecial, Funct: FnSLL, Rd: rd, Rt: rt, Shamt: sh & 31}.Encode()
}
func SRL(rd, rt int, sh uint32) Word {
	return Instr{Op: OpSpecial, Funct: FnSRL, Rd: rd, Rt: rt, Shamt: sh & 31}.Encode()
}
func SRA(rd, rt int, sh uint32) Word {
	return Instr{Op: OpSpecial, Funct: FnSRA, Rd: rd, Rt: rt, Shamt: sh & 31}.Encode()
}
func SLLV(rd, rt, rs int) Word { return rtype(FnSLLV, rd, rs, rt) }
func SRLV(rd, rt, rs int) Word { return rtype(FnSRLV, rd, rs, rt) }
func SRAV(rd, rt, rs int) Word { return rtype(FnSRAV, rd, rs, rt) }

func MULT(rs, rt int) Word  { return rtype(FnMULT, 0, rs, rt) }
func MULTU(rs, rt int) Word { return rtype(FnMULTU, 0, rs, rt) }
func DIV(rs, rt int) Word   { return rtype(FnDIV, 0, rs, rt) }
func DIVU(rs, rt int) Word  { return rtype(FnDIVU, 0, rs, rt) }
func MFHI(rd int) Word      { return rtype(FnMFHI, rd, 0, 0) }
func MFLO(rd int) Word      { return rtype(FnMFLO, rd, 0, 0) }
func MTHI(rs int) Word      { return rtype(FnMTHI, 0, rs, 0) }
func MTLO(rs int) Word      { return rtype(FnMTLO, 0, rs, 0) }

func JR(rs int) Word       { return rtype(FnJR, 0, rs, 0) }
func JALR(rd, rs int) Word { return rtype(FnJALR, rd, rs, 0) }
func SYSCALL() Word        { return Instr{Op: OpSpecial, Funct: FnSYSCALL}.Encode() }
func BREAK(code uint32) Word {
	return Instr{Op: OpSpecial, Funct: FnBREAK, Shamt: code & 31}.Encode()
}

func ADDIU(rt, rs int, imm uint16) Word { return itype(OpADDIU, rt, rs, imm) }
func SLTI(rt, rs int, imm uint16) Word  { return itype(OpSLTI, rt, rs, imm) }
func SLTIU(rt, rs int, imm uint16) Word { return itype(OpSLTIU, rt, rs, imm) }
func ANDI(rt, rs int, imm uint16) Word  { return itype(OpANDI, rt, rs, imm) }
func ORI(rt, rs int, imm uint16) Word   { return itype(OpORI, rt, rs, imm) }
func XORI(rt, rs int, imm uint16) Word  { return itype(OpXORI, rt, rs, imm) }
func LUI(rt int, imm uint16) Word       { return itype(OpLUI, rt, 0, imm) }

func LB(rt, base int, off uint16) Word   { return itype(OpLB, rt, base, off) }
func LBU(rt, base int, off uint16) Word  { return itype(OpLBU, rt, base, off) }
func LH(rt, base int, off uint16) Word   { return itype(OpLH, rt, base, off) }
func LHU(rt, base int, off uint16) Word  { return itype(OpLHU, rt, base, off) }
func LW(rt, base int, off uint16) Word   { return itype(OpLW, rt, base, off) }
func SB(rt, base int, off uint16) Word   { return itype(OpSB, rt, base, off) }
func SH(rt, base int, off uint16) Word   { return itype(OpSH, rt, base, off) }
func SW(rt, base int, off uint16) Word   { return itype(OpSW, rt, base, off) }
func LWC1(ft, base int, off uint16) Word { return itype(OpLWC1, ft, base, off) }
func SWC1(ft, base int, off uint16) Word { return itype(OpSWC1, ft, base, off) }

func BEQ(rs, rt int, off int16) Word { return itype(OpBEQ, rt, rs, uint16(off)) }
func BNE(rs, rt int, off int16) Word { return itype(OpBNE, rt, rs, uint16(off)) }
func BLEZ(rs int, off int16) Word    { return itype(OpBLEZ, 0, rs, uint16(off)) }
func BGTZ(rs int, off int16) Word    { return itype(OpBGTZ, 0, rs, uint16(off)) }
func BLTZ(rs int, off int16) Word    { return itype(OpRegImm, RtBLTZ, rs, uint16(off)) }
func BGEZ(rs int, off int16) Word    { return itype(OpRegImm, RtBGEZ, rs, uint16(off)) }

func J(target uint32) Word   { return Instr{Op: OpJ, Target: target}.Encode() }
func JAL(target uint32) Word { return Instr{Op: OpJAL, Target: target}.Encode() }

// JTarget computes the 26-bit target field for an absolute address.
func JTarget(addr uint32) uint32 { return addr >> 2 & 0x03ffffff }

// MFC0 moves CP0 register rd into GPR rt.
func MFC0(rt, rd int) Word {
	return Instr{Op: OpCOP0, Rs: Cop0MF, Rt: rt, Rd: rd}.Encode()
}

// MTC0 moves GPR rt into CP0 register rd.
func MTC0(rt, rd int) Word {
	return Instr{Op: OpCOP0, Rs: Cop0MT, Rt: rt, Rd: rd}.Encode()
}

func TLBWR() Word { return Instr{Op: OpCOP0, Rs: Cop0CO, Funct: C0FnTLBWR}.Encode() }
func TLBWI() Word { return Instr{Op: OpCOP0, Rs: Cop0CO, Funct: C0FnTLBWI}.Encode() }
func TLBP() Word  { return Instr{Op: OpCOP0, Rs: Cop0CO, Funct: C0FnTLBP}.Encode() }
func TLBR() Word  { return Instr{Op: OpCOP0, Rs: Cop0CO, Funct: C0FnTLBR}.Encode() }
func RFE() Word   { return Instr{Op: OpCOP0, Rs: Cop0CO, Funct: C0FnRFE}.Encode() }

// MFC1 moves the low word of FPR fs into GPR rt (as a raw int32).
func MFC1(rt, fs int) Word {
	return Instr{Op: OpCOP1, Rs: Cop1MF, Rt: rt, Rd: fs}.Encode()
}

// MTC1 moves GPR rt into FPR fs (as a raw int32, convert with CVTDW).
func MTC1(rt, fs int) Word {
	return Instr{Op: OpCOP1, Rs: Cop1MT, Rt: rt, Rd: fs}.Encode()
}

func fpop(fn uint32, fd, fs, ft int) Word {
	// FP encoding reuses rt for ft, rd for fs, shamt for fd.
	return Instr{Op: OpCOP1, Rs: Cop1Dbl, Rt: ft, Rd: fs, Shamt: uint32(fd), Funct: fn}.Encode()
}

func FADD(fd, fs, ft int) Word { return fpop(F1ADD, fd, fs, ft) }
func FSUB(fd, fs, ft int) Word { return fpop(F1SUB, fd, fs, ft) }
func FMUL(fd, fs, ft int) Word { return fpop(F1MUL, fd, fs, ft) }
func FDIV(fd, fs, ft int) Word { return fpop(F1DIV, fd, fs, ft) }
func FSQRT(fd, fs int) Word    { return fpop(F1SQRT, fd, fs, 0) }
func FMOV(fd, fs int) Word     { return fpop(F1MOV, fd, fs, 0) }
func FNEG(fd, fs int) Word     { return fpop(F1NEG, fd, fs, 0) }
func CVTDW(fd, fs int) Word    { return fpop(F1CVTDW, fd, fs, 0) }
func CVTWD(fd, fs int) Word    { return fpop(F1CVTWD, fd, fs, 0) }
func FCLT(fs, ft int) Word     { return fpop(F1CLT, 0, fs, ft) }
func FCLE(fs, ft int) Word     { return fpop(F1CLE, 0, fs, ft) }
func FCEQ(fs, ft int) Word     { return fpop(F1CEQ, 0, fs, ft) }

func BC1T(off int16) Word {
	return Instr{Op: OpCOP1, Rs: Cop1BC, Rt: 1, Imm: uint16(off)}.Encode()
}
func BC1F(off int16) Word {
	return Instr{Op: OpCOP1, Rs: Cop1BC, Rt: 0, Imm: uint16(off)}.Encode()
}

// LINop is the special no-op used by epoxie in the delay slot of
// `jal bbtrace`: a load-immediate to the read-only register zero whose
// immediate field holds the number of trace words the basic block
// generates (paper §3.2, instruction i'+2). bbtrace reads this word
// back from instruction memory to decide whether there is room in the
// user trace buffer.
func LINop(traceWords int) Word { return ORI(RegZero, RegZero, uint16(traceWords)) }

// LINopValue extracts the trace-word count from a LINop, or -1 if w is
// not one.
func LINopValue(w Word) int {
	i := Decode(w)
	if i.Op == OpORI && i.Rt == RegZero && i.Rs == RegZero {
		return int(i.Imm)
	}
	return -1
}

// EANop builds the hazard-case delay-slot no-op: a load with the same
// base register and offset as the displaced memory instruction but
// targeting register zero, so memtrace computes the right effective
// address while the real memory instruction issues after the call
// (paper §3.2). For stores we still use a load form — only base+offset
// matter to memtrace's partial decode — and the load width matches the
// original access so the no-op never takes an alignment fault.
func EANop(base int, off uint16, size int) Word {
	switch size {
	case 1:
		return LB(RegZero, base, off)
	case 2:
		return LH(RegZero, base, off)
	default:
		return LW(RegZero, base, off)
	}
}
