// Package isa defines the instruction set architecture of the simulated
// machine: a 32-bit, big-endian, MIPS-I-like RISC with branch delay
// slots, a software-managed TLB, and the classic four-segment address
// map (kuseg, kseg0, kseg1, kseg2) of the DECstation 5000/200's R3000.
//
// The tracing systems in this repository (epoxie, pixie, the traced
// kernels) all operate on code expressed in this ISA. The package
// provides instruction encoding and decoding, register conventions,
// and a disassembler used to reproduce the paper's Figure 2.
package isa

import "fmt"

// Word is one machine word: all instructions and trace entries are a
// single Word, which is what lets a trace entry be recorded with a
// single store instruction (paper §3.3).
type Word = uint32

// General-purpose register numbers, MIPS o32 conventions.
const (
	RegZero = 0 // hardwired zero
	RegAT   = 1 // assembler temporary
	RegV0   = 2 // results
	RegV1   = 3
	RegA0   = 4 // arguments
	RegA1   = 5
	RegA2   = 6
	RegA3   = 7
	RegT0   = 8 // caller-saved temporaries
	RegT1   = 9
	RegT2   = 10
	RegT3   = 11
	RegT4   = 12
	RegT5   = 13
	RegT6   = 14
	RegT7   = 15
	RegS0   = 16 // callee-saved
	RegS1   = 17
	RegS2   = 18
	RegS3   = 19
	RegS4   = 20
	RegS5   = 21
	RegS6   = 22
	RegS7   = 23
	RegT8   = 24
	RegT9   = 25
	RegK0   = 26 // kernel temporaries
	RegK1   = 27
	RegGP   = 28
	RegSP   = 29
	RegFP   = 30
	RegRA   = 31
)

// The three registers stolen by epoxie for the tracing system
// (paper §3.2: "referred to symbolically as xreg1, xreg2, and xreg3").
// xreg3 points at the per-process trace bookkeeping area; xreg1 and
// xreg2 are scratch inside bbtrace/memtrace. Uses of these registers
// in the original binary are rewritten to use shadow slots in memory.
const (
	XReg1 = RegS6
	XReg2 = RegS7
	XReg3 = RegS5
)

var regNames = [32]string{
	"zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
	"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
	"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
	"t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
}

// RegName returns the conventional assembly name for register r.
func RegName(r int) string {
	if r < 0 || r > 31 {
		return fmt.Sprintf("r?%d", r)
	}
	return regNames[r]
}

// Primary opcode field values.
const (
	OpSpecial = 0
	OpRegImm  = 1
	OpJ       = 2
	OpJAL     = 3
	OpBEQ     = 4
	OpBNE     = 5
	OpBLEZ    = 6
	OpBGTZ    = 7
	OpADDIU   = 9
	OpSLTI    = 10
	OpSLTIU   = 11
	OpANDI    = 12
	OpORI     = 13
	OpXORI    = 14
	OpLUI     = 15
	OpCOP0    = 16
	OpCOP1    = 17
	OpLB      = 32
	OpLH      = 33
	OpLW      = 35
	OpLBU     = 36
	OpLHU     = 37
	OpSB      = 40
	OpSH      = 41
	OpSW      = 43
	OpLWC1    = 49
	OpSWC1    = 57
)

// SPECIAL function field values.
const (
	FnSLL     = 0
	FnSRL     = 2
	FnSRA     = 3
	FnSLLV    = 4
	FnSRLV    = 6
	FnSRAV    = 7
	FnJR      = 8
	FnJALR    = 9
	FnSYSCALL = 12
	FnBREAK   = 13
	FnMFHI    = 16
	FnMTHI    = 17
	FnMFLO    = 18
	FnMTLO    = 19
	FnMULT    = 24
	FnMULTU   = 25
	FnDIV     = 26
	FnDIVU    = 27
	FnADDU    = 33
	FnSUBU    = 35
	FnAND     = 36
	FnOR      = 37
	FnXOR     = 38
	FnNOR     = 39
	FnSLT     = 42
	FnSLTU    = 43
)

// REGIMM rt field values.
const (
	RtBLTZ = 0
	RtBGEZ = 1
)

// COP0 rs field values and CO-function values.
const (
	Cop0MF = 0  // MFC0
	Cop0MT = 4  // MTC0
	Cop0CO = 16 // coprocessor operation, funct selects

	C0FnTLBR  = 1
	C0FnTLBWI = 2
	C0FnTLBWR = 6
	C0FnTLBP  = 8
	C0FnRFE   = 16
)

// COP0 register numbers (the subset the kernel uses).
const (
	C0Index    = 0
	C0Random   = 1
	C0EntryLo  = 2
	C0Context  = 4
	C0BadVAddr = 8
	C0Count    = 9 // free-running cycle counter (read-only convenience)
	C0EntryHi  = 10
	C0Status   = 12
	C0Cause    = 13
	C0EPC      = 14
)

// COP1 rs field values (floating point; simplified double-only unit).
const (
	Cop1MF  = 0  // MFC1 rt, fs: GPR <- low 32 bits of FPR as int32
	Cop1MT  = 4  // MTC1 rt, fs: FPR <- GPR (as int32 value)
	Cop1BC  = 8  // BC1F (rt=0) / BC1T (rt=1)
	Cop1Dbl = 17 // double-precision arithmetic, funct selects
)

// COP1 double-format function values.
const (
	F1ADD   = 0
	F1SUB   = 1
	F1MUL   = 2
	F1DIV   = 3
	F1SQRT  = 4
	F1MOV   = 6
	F1NEG   = 7
	F1CVTDW = 32 // FPR(fd) <- double(int32 in FPR(fs))
	F1CVTWD = 36 // FPR(fd) <- int32(trunc(FPR(fs))) stored as raw word
	F1CLT   = 60 // set FP condition flag if fs < ft
	F1CLE   = 62
	F1CEQ   = 50
)

// Instr is a decoded instruction. Fields not meaningful for a format
// are zero. Encode/Decode round-trip exactly.
type Instr struct {
	Op     uint32 // primary opcode
	Rs     int
	Rt     int
	Rd     int
	Shamt  uint32
	Funct  uint32
	Imm    uint16 // immediate, raw (sign interpretation is per-op)
	Target uint32 // 26-bit jump target field
}

// Decode splits a machine word into instruction fields.
func Decode(w Word) Instr {
	return Instr{
		Op:     w >> 26,
		Rs:     int(w >> 21 & 31),
		Rt:     int(w >> 16 & 31),
		Rd:     int(w >> 11 & 31),
		Shamt:  w >> 6 & 31,
		Funct:  w & 63,
		Imm:    uint16(w),
		Target: w & 0x03ffffff,
	}
}

// Encode packs instruction fields into a machine word according to the
// instruction's format (selected by Op/Funct).
func (i Instr) Encode() Word {
	switch i.Op {
	case OpJ, OpJAL:
		return i.Op<<26 | i.Target&0x03ffffff
	case OpSpecial:
		return uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Rd)<<11 |
			i.Shamt<<6 | i.Funct
	case OpCOP0:
		if uint32(i.Rs) == Cop0CO {
			return i.Op<<26 | uint32(i.Rs)<<21 | i.Funct
		}
		return i.Op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Rd)<<11
	case OpCOP1:
		if uint32(i.Rs) == Cop1Dbl {
			return i.Op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 |
				uint32(i.Rd)<<11 | i.Shamt<<6 | i.Funct
		}
		if uint32(i.Rs) == Cop1BC {
			return i.Op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Imm)
		}
		return i.Op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Rd)<<11
	default:
		return i.Op<<26 | uint32(i.Rs)<<21 | uint32(i.Rt)<<16 | uint32(i.Imm)
	}
}

// SignExt16 sign-extends a 16-bit immediate to 32 bits.
func SignExt16(imm uint16) uint32 { return uint32(int32(int16(imm))) }

// IsLoad reports whether w is a load from memory (integer or FP).
func IsLoad(w Word) bool {
	switch w >> 26 {
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpLWC1:
		return true
	}
	return false
}

// IsStore reports whether w is a store to memory (integer or FP).
func IsStore(w Word) bool {
	switch w >> 26 {
	case OpSB, OpSH, OpSW, OpSWC1:
		return true
	}
	return false
}

// IsMem reports whether w references memory.
func IsMem(w Word) bool { return IsLoad(w) || IsStore(w) }

// MemSize returns the access width in bytes of a memory instruction.
// The FP load/store (lwc1/swc1 encodings) move a full double in one
// reference on this machine, so they are 8 bytes wide.
func MemSize(w Word) int {
	switch w >> 26 {
	case OpLB, OpLBU, OpSB:
		return 1
	case OpLH, OpLHU, OpSH:
		return 2
	case OpLWC1, OpSWC1:
		return 8
	default:
		return 4
	}
}

// IsBranch reports whether w is a PC-relative conditional branch
// (including the FP condition branches).
func IsBranch(w Word) bool {
	switch w >> 26 {
	case OpBEQ, OpBNE, OpBLEZ, OpBGTZ, OpRegImm:
		return true
	case OpCOP1:
		return w>>21&31 == Cop1BC
	}
	return false
}

// IsJump reports whether w is an absolute jump (J/JAL) or register
// jump (JR/JALR).
func IsJump(w Word) bool {
	op := w >> 26
	if op == OpJ || op == OpJAL {
		return true
	}
	if op == OpSpecial {
		fn := w & 63
		return fn == FnJR || fn == FnJALR
	}
	return false
}

// HasDelaySlot reports whether the instruction is followed by a branch
// delay slot.
func HasDelaySlot(w Word) bool { return IsBranch(w) || IsJump(w) }

// EndsBlock reports whether w terminates a basic block: any control
// transfer (together with its delay slot), syscall, or break.
func EndsBlock(w Word) bool {
	if HasDelaySlot(w) {
		return true
	}
	if w>>26 == OpSpecial {
		fn := w & 63
		return fn == FnSYSCALL || fn == FnBREAK
	}
	return false
}

// IsFPArith reports whether w is a floating-point arithmetic operation
// (the class pixie's arithmetic-stall estimator charges latency for).
func IsFPArith(w Word) bool {
	if w>>26 != OpCOP1 {
		return false
	}
	if w>>21&31 != Cop1Dbl {
		return false
	}
	switch w & 63 {
	case F1ADD, F1SUB, F1MUL, F1DIV, F1SQRT, F1CVTDW, F1CVTWD:
		return true
	}
	return false
}

// FPLatency returns the stall cycles beyond one issue cycle charged
// for a floating-point operation (R3010-like latencies).
func FPLatency(w Word) int {
	if w>>26 != OpCOP1 || w>>21&31 != Cop1Dbl {
		return 0
	}
	switch w & 63 {
	case F1ADD, F1SUB:
		return 1
	case F1MUL:
		return 4
	case F1DIV:
		return 18
	case F1SQRT:
		return 30
	case F1CVTDW, F1CVTWD:
		return 2
	}
	return 0
}
