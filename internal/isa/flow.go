package isa

import "strings"

// Dataflow-facing register model. Liveness analysis needs more than the
// GPR-only Uses/Defs view: multiply/divide results live in HI/LO, and
// the FP compare instructions communicate with the FP branches through
// the condition flag. RegSet packs the whole architectural register
// state liveness tracks into one word so transfer functions are plain
// bit arithmetic.

// Flow-register numbers beyond the 32 GPRs.
const (
	RegHI  = 32 // multiply/divide high result
	RegLO  = 33 // multiply/divide low result
	RegFPC = 34 // FP condition flag (set by c.xx.d, read by bc1f/bc1t)

	// NumFlowRegs is the size of the flow-register space: 32 GPRs plus
	// HI, LO, and the FP condition flag.
	NumFlowRegs = 35
)

// RegSet is a set of flow registers: bit r set means register r is a
// member. Bit 0 (the hardwired zero register) is never set — reading
// it is free and writing it is impossible, so it can never be live.
type RegSet uint64

// AllRegs is every flow register except the hardwired zero.
const AllRegs RegSet = (1<<NumFlowRegs - 1) &^ 1

// RegMask returns the singleton set {r}, or the empty set for the zero
// register or an out-of-range number.
func RegMask(r int) RegSet {
	if r <= 0 || r >= NumFlowRegs {
		return 0
	}
	return 1 << uint(r)
}

// Has reports whether r is a member of s.
func (s RegSet) Has(r int) bool { return s&RegMask(r) != 0 }

// Add returns s with r added.
func (s RegSet) Add(r int) RegSet { return s | RegMask(r) }

// Without returns s with r removed.
func (s RegSet) Without(r int) RegSet { return s &^ RegMask(r) }

// Regs returns the members of s in ascending order.
func (s RegSet) Regs() []int {
	var rs []int
	for r := 1; r < NumFlowRegs; r++ {
		if s.Has(r) {
			rs = append(rs, r)
		}
	}
	return rs
}

// FlowRegName returns the conventional name for a flow register,
// extending RegName with the HI/LO/FPC pseudo-registers.
func FlowRegName(r int) string {
	switch r {
	case RegHI:
		return "hi"
	case RegLO:
		return "lo"
	case RegFPC:
		return "fpc"
	}
	return RegName(r)
}

// String renders the set as {a,b,...} for diagnostics.
func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range s.Regs() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(FlowRegName(r))
	}
	b.WriteByte('}')
	return b.String()
}

// UsesMask returns the flow registers read by w: the GPRs from Uses
// plus HI/LO for the move-from instructions and the FP condition flag
// for the FP branches. It models only architectural register reads;
// the ABI effects of syscall/break (argument registers the kernel
// consumes) are the dataflow engine's concern, not the ISA's.
func UsesMask(w Word) RegSet {
	var s RegSet
	for _, r := range Uses(w) {
		s = s.Add(r)
	}
	i := Decode(w)
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnMFHI:
			s = s.Add(RegHI)
		case FnMFLO:
			s = s.Add(RegLO)
		}
	case OpCOP1:
		if uint32(i.Rs) == Cop1BC {
			s = s.Add(RegFPC)
		}
	}
	return s
}

// DefsMask returns the flow registers written by w: the GPR from Defs
// plus HI/LO for multiply/divide and move-to, and the FP condition
// flag for the FP compares.
func DefsMask(w Word) RegSet {
	var s RegSet
	if d := Defs(w); d > 0 {
		s = s.Add(d)
	}
	i := Decode(w)
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnMULT, FnMULTU, FnDIV, FnDIVU:
			s = s.Add(RegHI).Add(RegLO)
		case FnMTHI:
			s = s.Add(RegHI)
		case FnMTLO:
			s = s.Add(RegLO)
		}
	case OpCOP1:
		if uint32(i.Rs) == Cop1Dbl {
			switch i.Funct {
			case F1CLT, F1CLE, F1CEQ:
				s = s.Add(RegFPC)
			}
		}
	}
	return s
}

// SafeToHoistMask is the flow-register generalization of SafeToHoist:
// moving the delay-slot instruction above its control transfer is safe
// when nothing the slot writes — GPR, HI/LO, or the FP condition flag
// — is read by the transfer. The GPR-only check misses a c.xx.d slot
// under a bc1f/bc1t terminator; the mask check does not.
func SafeToHoistMask(term, slot Word) bool {
	return DefsMask(slot)&UsesMask(term) == 0
}
