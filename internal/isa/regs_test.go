package isa_test

import (
	"testing"

	"systrace/internal/isa"
)

func TestTouchesAndFreeScratch(t *testing.T) {
	w := isa.ADDU(isa.RegT0, isa.RegRA, isa.RegT2)
	if !isa.Touches(w, isa.RegRA) || !isa.Touches(w, isa.RegT0) {
		t.Error("Touches misses read or write")
	}
	if isa.Touches(w, isa.RegS0) {
		t.Error("Touches reports an untouched register")
	}
	cands := []int{isa.RegT0, isa.RegT2, isa.RegV1}
	if got := isa.FreeScratch(w, cands); got != isa.RegV1 {
		t.Errorf("FreeScratch = %d, want v1 (%d)", got, isa.RegV1)
	}
	if got := isa.FreeScratch(w, []int{isa.RegT0, isa.RegT2}); got != -1 {
		t.Errorf("FreeScratch with all candidates in use = %d, want -1", got)
	}
}

func TestMapRegsRoles(t *testing.T) {
	// Identity mapping must round-trip any instruction.
	id := func(r int) int { return r }
	for _, w := range []isa.Word{
		isa.ADDU(3, 1, 2), isa.LW(8, 29, 12), isa.SW(8, 29, 12),
		isa.SLL(2, 3, 4), isa.JR(31), isa.JALR(31, 25),
		isa.BEQ(4, 5, 16), isa.LUI(9, 1), isa.MFLO(6), isa.MULT(2, 3),
		isa.LWC1(4, 8, 0), isa.SWC1(4, 8, 0),
		isa.MTC0(7, isa.C0EPC), isa.MFC0(7, isa.C0EPC),
	} {
		if got := isa.MapRegs(w, id, id); got != w {
			t.Errorf("identity MapRegs changed %08x -> %08x", w, got)
		}
	}

	// rt is a write for loads but a read for stores.
	sub := func(from, to int) func(int) int {
		return func(r int) int {
			if r == from {
				return to
			}
			return r
		}
	}
	lw := isa.MapRegs(isa.LW(isa.RegT0, isa.RegSP, 4), sub(isa.RegT0, isa.RegAT), sub(isa.RegT0, isa.RegV1))
	if isa.Defs(lw) != isa.RegV1 {
		t.Errorf("load rt must use the write mapping: %s", isa.Disassemble(0, lw))
	}
	sw := isa.MapRegs(isa.SW(isa.RegT0, isa.RegSP, 4), sub(isa.RegT0, isa.RegAT), sub(isa.RegT0, isa.RegV1))
	if !isa.UsesReg(sw, isa.RegAT) {
		t.Errorf("store rt must use the read mapping: %s", isa.Disassemble(0, sw))
	}
}

func TestSafeToHoist(t *testing.T) {
	if isa.SafeToHoist(isa.JR(isa.RegT0), isa.LW(isa.RegT0, isa.RegSP, 0)) {
		t.Error("hoisting a load that feeds the jump register must be unsafe")
	}
	if !isa.SafeToHoist(isa.JR(isa.RegRA), isa.LW(isa.RegT0, isa.RegSP, 0)) {
		t.Error("hoisting an unrelated load must be safe")
	}
	if !isa.SafeToHoist(isa.BEQ(isa.RegT0, isa.RegZero, 4), isa.SW(isa.RegT0, isa.RegSP, 0)) {
		t.Error("stores define nothing; hoisting must be safe")
	}
}
