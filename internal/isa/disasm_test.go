package isa_test

// Round-trip coverage of the instruction builders through the
// disassembler: every encoder must produce a word the disassembler
// names correctly, with the operands in the printed text. This is the
// toolchain's first line of defense against encode/decode skew.

import (
	"strings"
	"testing"

	"systrace/internal/isa"
)

func TestDisassembleAllBuilders(t *testing.T) {
	T0, T1, T2 := isa.RegT0, isa.RegT1, isa.RegT2
	cases := []struct {
		w    isa.Word
		want string // mnemonic that must appear
	}{
		{isa.ADDU(T2, T0, T1), "addu"},
		{isa.SUBU(T2, T0, T1), "subu"},
		{isa.AND(T2, T0, T1), "and"},
		{isa.OR(T2, T0, T1), "or"},
		{isa.XOR(T2, T0, T1), "xor"},
		{isa.NOR(T2, T0, T1), "nor"},
		{isa.SLT(T2, T0, T1), "slt"},
		{isa.SLTU(T2, T0, T1), "sltu"},
		{isa.SLL(T2, T0, 4), "sll"},
		{isa.SRL(T2, T0, 4), "srl"},
		{isa.SRA(T2, T0, 4), "sra"},
		{isa.SLLV(T2, T0, T1), "sllv"},
		{isa.SRLV(T2, T0, T1), "srlv"},
		{isa.SRAV(T2, T0, T1), "srav"},
		{isa.MULT(T0, T1), "mult"},
		{isa.MULTU(T0, T1), "multu"},
		{isa.DIV(T0, T1), "div"},
		{isa.DIVU(T0, T1), "divu"},
		{isa.MFHI(T2), "mfhi"},
		{isa.MFLO(T2), "mflo"},
		{isa.MTHI(T0), "mthi"},
		{isa.MTLO(T0), "mtlo"},
		{isa.JR(isa.RegRA), "jr"},
		{isa.JALR(isa.RegRA, T0), "jalr"},
		{isa.SYSCALL(), "syscall"},
		{isa.BREAK(3), "break"},
		{isa.ADDIU(T2, T0, 8), "addiu"},
		{isa.SLTI(T2, T0, 8), "slti"},
		{isa.SLTIU(T2, T0, 8), "sltiu"},
		{isa.ANDI(T2, T0, 8), "andi"},
		{isa.ORI(T2, T0, 8), "ori"},
		{isa.XORI(T2, T0, 8), "xori"},
		{isa.LUI(T2, 8), "lui"},
		{isa.LB(T2, T0, 4), "lb"},
		{isa.LBU(T2, T0, 4), "lbu"},
		{isa.LH(T2, T0, 4), "lh"},
		{isa.LHU(T2, T0, 4), "lhu"},
		{isa.LW(T2, T0, 4), "lw"},
		{isa.SB(T2, T0, 4), "sb"},
		{isa.SH(T2, T0, 4), "sh"},
		{isa.SW(T2, T0, 4), "sw"},
		{isa.LWC1(2, T0, 8), "lwc1"},
		{isa.SWC1(2, T0, 8), "swc1"},
		{isa.BEQ(T0, T1, 2), "beq"},
		{isa.BNE(T0, T1, 2), "bne"},
		{isa.BLEZ(T0, 2), "blez"},
		{isa.BGTZ(T0, 2), "bgtz"},
		{isa.BLTZ(T0, 2), "bltz"},
		{isa.BGEZ(T0, 2), "bgez"},
		{isa.J(0x100), "j"},
		{isa.JAL(0x100), "jal"},
		{isa.MFC0(T0, isa.C0EPC), "mfc0"},
		{isa.MTC0(T0, isa.C0EPC), "mtc0"},
		{isa.TLBWR(), "tlbwr"},
		{isa.TLBWI(), "tlbwi"},
		{isa.TLBP(), "tlbp"},
		{isa.TLBR(), "tlbr"},
		{isa.RFE(), "rfe"},
		{isa.MFC1(T0, 2), "mfc1"},
		{isa.MTC1(T0, 2), "mtc1"},
		{isa.FADD(4, 0, 2), "add.d"},
		{isa.FSUB(4, 0, 2), "sub.d"},
		{isa.FMUL(4, 0, 2), "mul.d"},
		{isa.FDIV(4, 0, 2), "div.d"},
		{isa.FSQRT(4, 0), "sqrt.d"},
		{isa.FMOV(4, 0), "mov.d"},
		{isa.FNEG(4, 0), "neg.d"},
		{isa.CVTDW(4, 0), "cvt.d.w"},
		{isa.CVTWD(4, 0), "cvt.w.d"},
		{isa.FCLT(0, 2), "c.lt.d"},
		{isa.FCLE(0, 2), "c.le.d"},
		{isa.FCEQ(0, 2), "c.eq.d"},
		{isa.BC1T(2), "bc1t"},
		{isa.BC1F(2), "bc1f"},
		{isa.NOP, "nop"},
	}
	for _, c := range cases {
		got := isa.Disassemble(0x1000, c.w)
		mnem := strings.Fields(got)[0]
		if mnem != c.want {
			t.Errorf("0x%08x: disassembled %q want mnemonic %q", uint32(c.w), got, c.want)
		}
	}
}

func TestDecodeHelpers(t *testing.T) {
	if isa.SignExt16(0x8000) != 0xffff8000 || isa.SignExt16(0x7fff) != 0x7fff {
		t.Error("SignExt16 wrong")
	}
	if !isa.IsMem(isa.LW(1, 2, 0)) || !isa.IsMem(isa.SB(1, 2, 0)) || isa.IsMem(isa.ADDU(1, 2, 3)) {
		t.Error("IsMem misclassifies")
	}
	sizes := []struct {
		w isa.Word
		n int
	}{
		{isa.LB(1, 2, 0), 1}, {isa.LBU(1, 2, 0), 1},
		{isa.LH(1, 2, 0), 2}, {isa.LHU(1, 2, 0), 2},
		{isa.LW(1, 2, 0), 4}, {isa.SW(1, 2, 0), 4},
		{isa.SB(1, 2, 0), 1}, {isa.SH(1, 2, 0), 2},
		{isa.LWC1(2, 2, 0), 8}, {isa.SWC1(2, 2, 0), 8}, // doubles via paired words
	}
	for _, c := range sizes {
		if got := isa.MemSize(c.w); got != c.n {
			t.Errorf("MemSize(%s) = %d want %d", isa.Disassemble(0, c.w), got, c.n)
		}
	}
	// FP latencies: divide slowest, then sqrt, multiply, add.
	div := isa.FPLatency(isa.FDIV(4, 0, 2))
	mul := isa.FPLatency(isa.FMUL(4, 0, 2))
	add := isa.FPLatency(isa.FADD(4, 0, 2))
	if !(div > mul && mul >= add && add >= 1) {
		t.Errorf("FP latency ordering: div=%d mul=%d add=%d", div, mul, add)
	}
}
