package isa

// Register use/def analysis. This file is the single source of truth
// for which register fields an instruction reads and writes: the
// rewriters (epoxie's register stealing, pixie), the static verifier
// (internal/verify), and the hazard checks all analyze instructions
// through these helpers, so a disagreement about an instruction's
// register behavior cannot arise between the tool that rewrites code
// and the tool that checks it.

// Uses returns the general-purpose registers read by w. Register 0 is
// omitted (reading it is free and rewriting it is never needed).
func Uses(w Word) []int {
	i := Decode(w)
	add := func(dst []int, r int) []int {
		if r == 0 {
			return dst
		}
		for _, x := range dst {
			if x == r {
				return dst
			}
		}
		return append(dst, r)
	}
	var rs []int
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL, FnSRL, FnSRA:
			rs = add(rs, i.Rt)
		case FnJR, FnMTHI, FnMTLO:
			rs = add(rs, i.Rs)
		case FnJALR:
			rs = add(rs, i.Rs)
		case FnMFHI, FnMFLO, FnSYSCALL, FnBREAK:
		default:
			rs = add(rs, i.Rs)
			rs = add(rs, i.Rt)
		}
	case OpRegImm, OpBLEZ, OpBGTZ:
		rs = add(rs, i.Rs)
	case OpBEQ, OpBNE:
		rs = add(rs, i.Rs)
		rs = add(rs, i.Rt)
	case OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		rs = add(rs, i.Rs)
	case OpLUI, OpJ, OpJAL:
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpLWC1:
		rs = add(rs, i.Rs)
	case OpSB, OpSH, OpSW:
		rs = add(rs, i.Rs)
		rs = add(rs, i.Rt)
	case OpSWC1:
		rs = add(rs, i.Rs)
	case OpCOP0:
		if uint32(i.Rs) == Cop0MT {
			rs = add(rs, i.Rt)
		}
	case OpCOP1:
		if uint32(i.Rs) == Cop1MT {
			rs = add(rs, i.Rt)
		}
	}
	return rs
}

// Defs returns the general-purpose register written by w, or -1.
func Defs(w Word) int {
	i := Decode(w)
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnJR, FnSYSCALL, FnBREAK, FnMTHI, FnMTLO, FnMULT, FnMULTU, FnDIV, FnDIVU:
			return -1
		}
		if i.Rd == 0 {
			return -1
		}
		return i.Rd
	case OpJAL:
		return RegRA
	case OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI, OpLUI,
		OpLB, OpLH, OpLW, OpLBU, OpLHU:
		if i.Rt == 0 {
			return -1
		}
		return i.Rt
	case OpCOP0:
		if uint32(i.Rs) == Cop0MF && i.Rt != 0 {
			return i.Rt
		}
	case OpCOP1:
		if uint32(i.Rs) == Cop1MF && i.Rt != 0 {
			return i.Rt
		}
	}
	return -1
}

// UsesReg reports whether w reads register r.
func UsesReg(w Word, r int) bool {
	for _, rr := range Uses(w) {
		if rr == r {
			return true
		}
	}
	return false
}

// Touches reports whether w reads or writes register r.
func Touches(w Word, r int) bool { return Defs(w) == r || UsesReg(w, r) }

// FreeScratch returns the first candidate register not referenced by w
// (neither read nor written), or -1 if every candidate is in use. The
// rewriters use it to borrow a temporary around an instruction.
func FreeScratch(w Word, candidates []int) int {
	for _, cand := range candidates {
		if !Touches(w, cand) {
			return cand
		}
	}
	return -1
}

// Register field setters: patch one field in place, leaving every
// other bit of the word untouched (re-encoding through Decode/Encode
// would canonicalize fields some formats ignore).
func setRs(w Word, r int) Word { return w&^(0x1f<<21) | Word(r&0x1f)<<21 }
func setRt(w Word, r int) Word { return w&^(0x1f<<16) | Word(r&0x1f)<<16 }
func setRd(w Word, r int) Word { return w&^(0x1f<<11) | Word(r&0x1f)<<11 }

// MapRegs rewrites w's register fields: every read field r becomes
// mapRead(r) and every written field becomes mapWrite(r). The per-
// format field roles match Uses/Defs exactly (rt is a read for stores
// and branches but a write for loads and immediates; JALR reads rs and
// writes rd; shifts read rt). Fields an instruction does not use are
// left untouched.
func MapRegs(w Word, mapRead, mapWrite func(int) int) Word {
	i := Decode(w)
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnJR:
			w = setRs(w, mapRead(i.Rs))
		case FnJALR:
			w = setRs(w, mapRead(i.Rs))
			w = setRd(w, mapWrite(i.Rd))
		case FnSLL, FnSRL, FnSRA:
			w = setRt(w, mapRead(i.Rt))
			w = setRd(w, mapWrite(i.Rd))
		case FnMFHI, FnMFLO:
			w = setRd(w, mapWrite(i.Rd))
		case FnMTHI, FnMTLO:
			w = setRs(w, mapRead(i.Rs))
		case FnMULT, FnMULTU, FnDIV, FnDIVU:
			w = setRs(w, mapRead(i.Rs))
			w = setRt(w, mapRead(i.Rt))
		case FnSYSCALL, FnBREAK:
		default:
			w = setRs(w, mapRead(i.Rs))
			w = setRt(w, mapRead(i.Rt))
			w = setRd(w, mapWrite(i.Rd))
		}
	case OpRegImm, OpBLEZ, OpBGTZ:
		w = setRs(w, mapRead(i.Rs))
	case OpBEQ, OpBNE:
		w = setRs(w, mapRead(i.Rs))
		w = setRt(w, mapRead(i.Rt))
	case OpADDIU, OpSLTI, OpSLTIU, OpANDI, OpORI, OpXORI:
		w = setRs(w, mapRead(i.Rs))
		w = setRt(w, mapWrite(i.Rt))
	case OpLUI:
		w = setRt(w, mapWrite(i.Rt))
	case OpLB, OpLH, OpLW, OpLBU, OpLHU:
		w = setRs(w, mapRead(i.Rs))
		w = setRt(w, mapWrite(i.Rt))
	case OpSB, OpSH, OpSW:
		w = setRs(w, mapRead(i.Rs))
		w = setRt(w, mapRead(i.Rt))
	case OpLWC1, OpSWC1:
		w = setRs(w, mapRead(i.Rs))
	case OpCOP0:
		if uint32(i.Rs) == Cop0MT {
			w = setRt(w, mapRead(i.Rt))
		} else if uint32(i.Rs) == Cop0MF {
			w = setRt(w, mapWrite(i.Rt))
		}
	case OpCOP1:
		if uint32(i.Rs) == Cop1MT {
			w = setRt(w, mapRead(i.Rt))
		} else if uint32(i.Rs) == Cop1MF {
			w = setRt(w, mapWrite(i.Rt))
		}
	}
	return w
}

// SafeToHoist reports whether moving a delay slot's memory instruction
// above its control transfer preserves semantics: the transfer must
// not read anything the hoisted instruction writes. Shared by
// epoxie's rewriter and the static verifier so both sides apply the
// same hazard rule. It delegates to the flow-register mask check so
// HI/LO and FP-condition hazards are covered alongside the GPRs.
func SafeToHoist(term, slot Word) bool { return SafeToHoistMask(term, slot) }
