package isa

import "fmt"

// Disassemble renders the instruction word w, located at address addr,
// in conventional MIPS assembly syntax. Branch and jump targets are
// rendered as absolute addresses. The output format matches the
// paper's Figure 2 listings.
func Disassemble(addr uint32, w Word) string {
	i := Decode(w)
	imm := int32(int16(i.Imm))
	br := func() uint32 { return addr + 4 + uint32(imm)<<2 }
	switch i.Op {
	case OpSpecial:
		switch i.Funct {
		case FnSLL:
			if w == 0 {
				return "nop"
			}
			return fmt.Sprintf("sll    %s,%s,%d", RegName(i.Rd), RegName(i.Rt), i.Shamt)
		case FnSRL:
			return fmt.Sprintf("srl    %s,%s,%d", RegName(i.Rd), RegName(i.Rt), i.Shamt)
		case FnSRA:
			return fmt.Sprintf("sra    %s,%s,%d", RegName(i.Rd), RegName(i.Rt), i.Shamt)
		case FnSLLV:
			return fmt.Sprintf("sllv   %s,%s,%s", RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
		case FnSRLV:
			return fmt.Sprintf("srlv   %s,%s,%s", RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
		case FnSRAV:
			return fmt.Sprintf("srav   %s,%s,%s", RegName(i.Rd), RegName(i.Rt), RegName(i.Rs))
		case FnJR:
			return fmt.Sprintf("jr     %s", RegName(i.Rs))
		case FnJALR:
			return fmt.Sprintf("jalr   %s,%s", RegName(i.Rd), RegName(i.Rs))
		case FnSYSCALL:
			return "syscall"
		case FnBREAK:
			return fmt.Sprintf("break  %d", i.Shamt)
		case FnMFHI:
			return fmt.Sprintf("mfhi   %s", RegName(i.Rd))
		case FnMFLO:
			return fmt.Sprintf("mflo   %s", RegName(i.Rd))
		case FnMTHI:
			return fmt.Sprintf("mthi   %s", RegName(i.Rs))
		case FnMTLO:
			return fmt.Sprintf("mtlo   %s", RegName(i.Rs))
		case FnMULT:
			return fmt.Sprintf("mult   %s,%s", RegName(i.Rs), RegName(i.Rt))
		case FnMULTU:
			return fmt.Sprintf("multu  %s,%s", RegName(i.Rs), RegName(i.Rt))
		case FnDIV:
			return fmt.Sprintf("div    %s,%s", RegName(i.Rs), RegName(i.Rt))
		case FnDIVU:
			return fmt.Sprintf("divu   %s,%s", RegName(i.Rs), RegName(i.Rt))
		case FnADDU:
			if i.Rt == 0 {
				return fmt.Sprintf("move   %s,%s", RegName(i.Rd), RegName(i.Rs))
			}
			return fmt.Sprintf("addu   %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnSUBU:
			return fmt.Sprintf("subu   %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnAND:
			return fmt.Sprintf("and    %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnOR:
			return fmt.Sprintf("or     %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnXOR:
			return fmt.Sprintf("xor    %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnNOR:
			return fmt.Sprintf("nor    %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnSLT:
			return fmt.Sprintf("slt    %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		case FnSLTU:
			return fmt.Sprintf("sltu   %s,%s,%s", RegName(i.Rd), RegName(i.Rs), RegName(i.Rt))
		}
	case OpRegImm:
		mn := "bltz"
		if i.Rt == RtBGEZ {
			mn = "bgez"
		}
		return fmt.Sprintf("%s   %s,0x%x", mn, RegName(i.Rs), br())
	case OpJ:
		return fmt.Sprintf("j      0x%x", i.Target<<2)
	case OpJAL:
		return fmt.Sprintf("jal    0x%x", i.Target<<2)
	case OpBEQ:
		if i.Rs == 0 && i.Rt == 0 {
			return fmt.Sprintf("b      0x%x", br())
		}
		return fmt.Sprintf("beq    %s,%s,0x%x", RegName(i.Rs), RegName(i.Rt), br())
	case OpBNE:
		return fmt.Sprintf("bne    %s,%s,0x%x", RegName(i.Rs), RegName(i.Rt), br())
	case OpBLEZ:
		return fmt.Sprintf("blez   %s,0x%x", RegName(i.Rs), br())
	case OpBGTZ:
		return fmt.Sprintf("bgtz   %s,0x%x", RegName(i.Rs), br())
	case OpADDIU:
		if i.Rs == 0 {
			return fmt.Sprintf("li     %s,%d", RegName(i.Rt), imm)
		}
		return fmt.Sprintf("addiu  %s,%s,%d", RegName(i.Rt), RegName(i.Rs), imm)
	case OpSLTI:
		return fmt.Sprintf("slti   %s,%s,%d", RegName(i.Rt), RegName(i.Rs), imm)
	case OpSLTIU:
		return fmt.Sprintf("sltiu  %s,%s,%d", RegName(i.Rt), RegName(i.Rs), imm)
	case OpANDI:
		return fmt.Sprintf("andi   %s,%s,0x%x", RegName(i.Rt), RegName(i.Rs), i.Imm)
	case OpORI:
		if i.Rt == 0 && i.Rs == 0 {
			return fmt.Sprintf("li     zero,%d", i.Imm)
		}
		if i.Rs == 0 {
			return fmt.Sprintf("li     %s,0x%x", RegName(i.Rt), i.Imm)
		}
		return fmt.Sprintf("ori    %s,%s,0x%x", RegName(i.Rt), RegName(i.Rs), i.Imm)
	case OpXORI:
		return fmt.Sprintf("xori   %s,%s,0x%x", RegName(i.Rt), RegName(i.Rs), i.Imm)
	case OpLUI:
		return fmt.Sprintf("lui    %s,0x%x", RegName(i.Rt), i.Imm)
	case OpLB, OpLH, OpLW, OpLBU, OpLHU, OpSB, OpSH, OpSW, OpLWC1, OpSWC1:
		mn := map[uint32]string{
			OpLB: "lb", OpLH: "lh", OpLW: "lw", OpLBU: "lbu", OpLHU: "lhu",
			OpSB: "sb", OpSH: "sh", OpSW: "sw", OpLWC1: "lwc1", OpSWC1: "swc1",
		}[i.Op]
		rt := RegName(i.Rt)
		if i.Op == OpLWC1 || i.Op == OpSWC1 {
			rt = fmt.Sprintf("f%d", i.Rt)
		}
		return fmt.Sprintf("%-6s %s,%d(%s)", mn, rt, imm, RegName(i.Rs))
	case OpCOP0:
		switch uint32(i.Rs) {
		case Cop0MF:
			return fmt.Sprintf("mfc0   %s,$%d", RegName(i.Rt), i.Rd)
		case Cop0MT:
			return fmt.Sprintf("mtc0   %s,$%d", RegName(i.Rt), i.Rd)
		case Cop0CO:
			switch i.Funct {
			case C0FnTLBR:
				return "tlbr"
			case C0FnTLBWI:
				return "tlbwi"
			case C0FnTLBWR:
				return "tlbwr"
			case C0FnTLBP:
				return "tlbp"
			case C0FnRFE:
				return "rfe"
			}
		}
	case OpCOP1:
		switch uint32(i.Rs) {
		case Cop1MF:
			return fmt.Sprintf("mfc1   %s,f%d", RegName(i.Rt), i.Rd)
		case Cop1MT:
			return fmt.Sprintf("mtc1   %s,f%d", RegName(i.Rt), i.Rd)
		case Cop1BC:
			mn := "bc1f"
			if i.Rt == 1 {
				mn = "bc1t"
			}
			return fmt.Sprintf("%s   0x%x", mn, br())
		case Cop1Dbl:
			fd, fs, ft := int(i.Shamt), i.Rd, i.Rt
			switch i.Funct {
			case F1ADD:
				return fmt.Sprintf("add.d  f%d,f%d,f%d", fd, fs, ft)
			case F1SUB:
				return fmt.Sprintf("sub.d  f%d,f%d,f%d", fd, fs, ft)
			case F1MUL:
				return fmt.Sprintf("mul.d  f%d,f%d,f%d", fd, fs, ft)
			case F1DIV:
				return fmt.Sprintf("div.d  f%d,f%d,f%d", fd, fs, ft)
			case F1SQRT:
				return fmt.Sprintf("sqrt.d f%d,f%d", fd, fs)
			case F1MOV:
				return fmt.Sprintf("mov.d  f%d,f%d", fd, fs)
			case F1NEG:
				return fmt.Sprintf("neg.d  f%d,f%d", fd, fs)
			case F1CVTDW:
				return fmt.Sprintf("cvt.d.w f%d,f%d", fd, fs)
			case F1CVTWD:
				return fmt.Sprintf("cvt.w.d f%d,f%d", fd, fs)
			case F1CLT:
				return fmt.Sprintf("c.lt.d f%d,f%d", fs, ft)
			case F1CLE:
				return fmt.Sprintf("c.le.d f%d,f%d", fs, ft)
			case F1CEQ:
				return fmt.Sprintf("c.eq.d f%d,f%d", fs, ft)
			}
		}
	}
	return fmt.Sprintf(".word  0x%08x", w)
}
