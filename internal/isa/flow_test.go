package isa

import "testing"

// TestFlowMasks sweeps the use/def edge cases that a GPR-only view gets
// wrong and that would each be a liveness soundness hole: multiply and
// divide define HI/LO, the move-from/move-to instructions couple the
// GPR file to HI/LO, the FP compares define the condition flag the FP
// branches read, and JALR's link-register define comes through the rd
// field (rd=0 means there is genuinely no visible define, matching the
// CPU, which writes g[rd] and keeps g[0] pinned to zero).
func TestFlowMasks(t *testing.T) {
	reg := RegMask
	cases := []struct {
		name string
		w    Word
		uses RegSet
		defs RegSet
	}{
		{"addu", ADDU(RegT0, RegA0, RegA1), reg(RegA0) | reg(RegA1), reg(RegT0)},
		{"addu-rd0", ADDU(0, RegA0, RegA1), reg(RegA0) | reg(RegA1), 0},
		{"sll-reads-rt", SLL(RegT0, RegT1, 4), reg(RegT1), reg(RegT0)},
		{"sllv-reads-rs-rt", SLLV(RegT0, RegT1, RegT2), reg(RegT1) | reg(RegT2), reg(RegT0)},
		{"lui", LUI(RegT0, 0x1234), 0, reg(RegT0)},
		{"lw", LW(RegT0, RegSP, 8), reg(RegSP), reg(RegT0)},
		{"lw-rt0", LW(0, RegSP, 8), reg(RegSP), 0},
		{"sw", SW(RegT0, RegSP, 8), reg(RegSP) | reg(RegT0), 0},
		{"swc1", SWC1(2, RegSP, 8), reg(RegSP), 0},
		{"lwc1", LWC1(2, RegSP, 8), reg(RegSP), 0},

		// Multiply/divide: no GPR define, HI and LO both written.
		{"mult", MULT(RegA0, RegA1), reg(RegA0) | reg(RegA1), reg(RegHI) | reg(RegLO)},
		{"multu", MULTU(RegA0, RegA1), reg(RegA0) | reg(RegA1), reg(RegHI) | reg(RegLO)},
		{"div", DIV(RegA0, RegA1), reg(RegA0) | reg(RegA1), reg(RegHI) | reg(RegLO)},
		{"divu", DIVU(RegA0, RegA1), reg(RegA0) | reg(RegA1), reg(RegHI) | reg(RegLO)},
		{"mfhi", MFHI(RegT0), reg(RegHI), reg(RegT0)},
		{"mflo", MFLO(RegT0), reg(RegLO), reg(RegT0)},
		{"mthi", MTHI(RegT0), reg(RegT0), reg(RegHI)},
		{"mtlo", MTLO(RegT0), reg(RegT0), reg(RegLO)},

		// FP condition flag: compares define it, bc1x read it. The FP
		// arithmetic ops touch neither the GPRs nor the flag.
		{"fclt", FCLT(2, 4), 0, reg(RegFPC)},
		{"fcle", FCLE(2, 4), 0, reg(RegFPC)},
		{"fceq", FCEQ(2, 4), 0, reg(RegFPC)},
		{"bc1t", BC1T(4), reg(RegFPC), 0},
		{"bc1f", BC1F(4), reg(RegFPC), 0},
		{"fadd", FADD(2, 4, 6), 0, 0},
		{"mfc1", MFC1(RegT0, 2), 0, reg(RegT0)},
		{"mtc1", MTC1(RegT0, 2), reg(RegT0), 0},

		// Jumps and calls. JALR's link define is the explicit rd field;
		// rd=0 is a visible no-define on this machine.
		{"jal", JAL(0x1000), 0, reg(RegRA)},
		{"jalr", JALR(RegRA, RegT9), reg(RegT9), reg(RegRA)},
		{"jalr-rd0", JALR(0, RegT9), reg(RegT9), 0},
		{"jr", JR(RegRA), reg(RegRA), 0},

		// Branches read their operands and define nothing. This ISA has
		// no branch-and-link and no branch-likely encodings: REGIMM
		// holds only BLTZ (rt=0) and BGEZ (rt=1), so no branch ever
		// defines ra and every delay slot executes unconditionally.
		{"beq", BEQ(RegA0, RegA1, 4), reg(RegA0) | reg(RegA1), 0},
		{"bltz", BLTZ(RegA0, 4), reg(RegA0), 0},
		{"bgez", BGEZ(RegA0, 4), reg(RegA0), 0},
		{"blez", BLEZ(RegA0, 4), reg(RegA0), 0},

		// Syscall/break: architecturally no register reads or writes;
		// the kernel ABI effects are modeled by the dataflow engine.
		{"syscall", SYSCALL(), 0, 0},
		{"break", BREAK(1), 0, 0},

		// CP0 moves.
		{"mfc0", MFC0(RegK0, C0EPC), 0, reg(RegK0)},
		{"mtc0", MTC0(RegK0, C0EPC), reg(RegK0), 0},
		{"tlbwr", TLBWR(), 0, 0},

		// NOP (sll zero,zero,0): nothing in, nothing out.
		{"nop", NOP, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := UsesMask(tc.w); got != tc.uses {
				t.Errorf("UsesMask(%s) = %v, want %v", Disassemble(0, tc.w), got, tc.uses)
			}
			if got := DefsMask(tc.w); got != tc.defs {
				t.Errorf("DefsMask(%s) = %v, want %v", Disassemble(0, tc.w), got, tc.defs)
			}
		})
	}
}

// TestFlowMasksAgreeWithGPRView cross-checks the mask view against the
// slice-based Uses/Defs over a broad sample of encodings: the GPR bits
// of the masks must match exactly (the masks only ever add the HI/LO
// and condition-flag pseudo-registers).
func TestFlowMasksAgreeWithGPRView(t *testing.T) {
	words := []Word{
		ADDU(RegT0, RegA0, RegA1), SUBU(0, RegS0, RegS1), SLT(RegV0, RegA0, RegA1),
		SLL(RegT0, RegT1, 4), SRAV(RegT0, RegT1, RegT2),
		ADDIU(RegSP, RegSP, 0xfff8), ORI(RegT0, RegT1, 7), LUI(RegGP, 0x1000),
		LW(RegT0, RegSP, 4), LB(RegT1, RegA0, 0), SW(RegT0, RegSP, 4), SB(RegT0, RegA0, 1),
		LWC1(2, RegSP, 8), SWC1(2, RegSP, 8),
		BEQ(RegA0, RegA1, 4), BNE(RegA0, 0, 4), BLTZ(RegS0, -2), BGTZ(RegV0, 8),
		J(0x1000), JAL(0x1000), JR(RegRA), JALR(RegRA, RegT9), JALR(0, RegT9),
		MULT(RegA0, RegA1), DIV(RegA0, RegA1), MFHI(RegT0), MTLO(RegT1),
		SYSCALL(), BREAK(0),
		MFC0(RegK0, C0Status), MTC0(RegK1, C0EPC), RFE(),
		MFC1(RegT0, 2), MTC1(RegT0, 2), FADD(2, 4, 6), FCLT(2, 4), BC1T(4),
		NOP,
	}
	const gprBits = RegSet(1)<<32 - 1
	for _, w := range words {
		var uses, defs RegSet
		for _, r := range Uses(w) {
			uses = uses.Add(r)
		}
		if d := Defs(w); d > 0 {
			defs = defs.Add(d)
		}
		if got := UsesMask(w) & gprBits; got != uses {
			t.Errorf("%s: GPR uses via mask %v, via slice %v", Disassemble(0, w), got, uses)
		}
		if got := DefsMask(w) & gprBits; got != defs {
			t.Errorf("%s: GPR defs via mask %v, via slice %v", Disassemble(0, w), got, defs)
		}
	}
}

// TestFreeScratchEdgeCases pins FreeScratch against the field roles the
// rewriters depend on: a candidate is burned by a read through any
// field (store rt, base rs, shift rt) or by a write (load rt, ALU rd),
// and a fully conflicting word yields -1.
func TestFreeScratchEdgeCases(t *testing.T) {
	cands := []int{RegV1, RegT9, RegT8, RegA3}
	cases := []struct {
		name string
		w    Word
		want int
	}{
		{"nop-first-free", NOP, RegV1},
		{"store-rt-burns", SW(RegV1, RegSP, 0), RegT9},
		{"store-base-burns", SW(RegT0, RegV1, 0), RegT9},
		{"load-def-burns", LW(RegV1, RegSP, 0), RegT9},
		{"shift-rt-burns", SLL(RegT0, RegV1, 2), RegT9},
		{"alu-def-burns", ADDU(RegV1, RegT0, RegT1), RegT9},
		{"two-burned", ADDU(RegV1, RegT9, RegT0), RegT8},
		{"jalr-burns-both", JALR(RegV1, RegT9), RegT8},
		{"all-burned", 0, -1}, // filled in below
	}
	// An instruction touching all four candidates: addu a3, v1, t9
	// burns three; use t8 as the store base in a second probe instead —
	// build a word that reads v1,t9 and writes t8, then check with a
	// candidate list of exactly those three.
	for _, tc := range cases[:len(cases)-1] {
		if got := FreeScratch(tc.w, cands); got != tc.want {
			t.Errorf("%s: FreeScratch = %d, want %d", tc.name, got, tc.want)
		}
	}
	w := ADDU(RegT8, RegV1, RegT9)
	if got := FreeScratch(w, []int{RegV1, RegT9, RegT8}); got != -1 {
		t.Errorf("fully-conflicting word: FreeScratch = %d, want -1", got)
	}
}

// TestSafeToHoistMask checks the hoist-hazard rule across the register
// spaces: the GPR case both views agree on, and the FP condition-flag
// case only the mask view catches (a c.xx.d in the delay slot of a
// bc1x rewrites the branch's input if hoisted above it).
func TestSafeToHoistMask(t *testing.T) {
	cases := []struct {
		name       string
		term, slot Word
		want       bool
	}{
		{"independent", BEQ(RegA0, RegA1, 4), LW(RegT0, RegSP, 0), true},
		{"slot-defines-branch-input", BEQ(RegT0, RegA1, 4), LW(RegT0, RegSP, 0), false},
		{"jr-reads-slot-def", JR(RegT0), LW(RegT0, RegSP, 0), false},
		{"store-slot-never-hazard", BEQ(RegT0, RegA1, 4), SW(RegT0, RegSP, 0), true},
		{"fp-compare-under-bc1t", BC1T(4), FCLT(2, 4), false},
		{"fp-compare-under-beq", BEQ(RegA0, 0, 4), FCLT(2, 4), true},
		{"fp-load-under-bc1t", BC1T(4), LWC1(2, RegSP, 0), true},
		{"mult-under-branch", BEQ(RegA0, 0, 4), MULT(RegA0, RegA1), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := SafeToHoistMask(tc.term, tc.slot); got != tc.want {
				t.Errorf("SafeToHoistMask = %v, want %v", got, tc.want)
			}
			if got := SafeToHoist(tc.term, tc.slot); got != tc.want {
				t.Errorf("SafeToHoist = %v, want %v (must agree with mask form)", got, tc.want)
			}
		})
	}
}

// TestRegSet exercises the set plumbing itself.
func TestRegSet(t *testing.T) {
	if AllRegs.Has(RegZero) {
		t.Error("AllRegs contains the zero register")
	}
	if !AllRegs.Has(RegRA) || !AllRegs.Has(RegHI) || !AllRegs.Has(RegLO) || !AllRegs.Has(RegFPC) {
		t.Error("AllRegs missing ra/hi/lo/fpc")
	}
	if RegMask(0) != 0 || RegMask(-1) != 0 || RegMask(NumFlowRegs) != 0 {
		t.Error("RegMask out-of-range must be empty")
	}
	s := RegSet(0).Add(RegAT).Add(RegHI).Add(RegAT)
	if got := s.String(); got != "{at,hi}" {
		t.Errorf("String = %q, want {at,hi}", got)
	}
	if s.Without(RegAT) != RegMask(RegHI) {
		t.Error("Without failed")
	}
	if got := len(AllRegs.Regs()); got != NumFlowRegs-1 {
		t.Errorf("AllRegs has %d members, want %d", got, NumFlowRegs-1)
	}
}
