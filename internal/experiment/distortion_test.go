package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"systrace/internal/kernel"
	"systrace/internal/telemetry"
	"systrace/internal/workload"
)

// TestDistortSed runs sed traced and untraced and checks the dashboard
// factors land in paper-consistent ranges: the paper reports ~15x time
// dilation (§4.1); this software pipeline's flush path is cheaper, so
// we accept a broad [2, 60] band. Trace volume should be well under
// one word per instruction (basic-block records amortize fetches) but
// nonzero.
func TestDistortSed(t *testing.T) {
	spec, ok := workload.ByName("sed")
	if !ok {
		t.Fatal("sed workload missing")
	}
	reg := telemetry.New()
	d, err := Distort(spec, kernel.Ultrix, 1, reg)
	if err != nil {
		t.Fatal(err)
	}

	if d.TimeDilation < 2 || d.TimeDilation > 60 {
		t.Errorf("time dilation %.2f outside paper-consistent [2, 60]", d.TimeDilation)
	}
	if d.TraceWordsPerInstr <= 0.01 || d.TraceWordsPerInstr >= 3 {
		t.Errorf("trace words/instr %.3f outside (0.01, 3)", d.TraceWordsPerInstr)
	}
	if d.MemoryDilation <= 1 {
		t.Errorf("memory dilation %.2f should exceed 1 (buffers + doubled text)", d.MemoryDilation)
	}
	if d.GenerationDutyCycle <= 0 || d.GenerationDutyCycle > 1 {
		t.Errorf("generation duty cycle %.3f outside (0, 1]", d.GenerationDutyCycle)
	}
	if d.Pred.ModeSwitches == 0 {
		t.Error("expected at least one analysis phase (mode switch)")
	}

	// The registry must carry the full cross-subsystem document.
	snap := reg.Snapshot()
	for _, name := range []string{
		"cpu_instructions_retired_total",
		"cpu_utlb_misses_total",
		"kernel_trace_flushes_total",
		"kernel_mode_switches_total",
		"trace_words_parsed_total",
		"memsys_tlb_misses_total",
		"distortion_time_dilation",
		"distortion_memory_dilation",
		"distortion_trace_words_per_instruction",
		"distortion_generation_duty_cycle",
	} {
		found := false
		for i := range snap.Metrics {
			if snap.Metrics[i].Name == name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("snapshot missing series %s", name)
		}
	}

	// Both exporters must emit the document without error; the JSON
	// form must round-trip as valid JSON containing the dashboard.
	var pb bytes.Buffer
	if err := snap.WritePrometheus(&pb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pb.String(), "distortion_time_dilation") {
		t.Error("prometheus export missing distortion_time_dilation")
	}
	var jb bytes.Buffer
	if err := snap.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var doc telemetry.Snapshot
	if err := json.Unmarshal(jb.Bytes(), &doc); err != nil {
		t.Fatalf("JSON export not valid JSON: %v", err)
	}
	if len(doc.Metrics) != len(snap.Metrics) {
		t.Errorf("JSON round-trip lost series: %d != %d", len(doc.Metrics), len(snap.Metrics))
	}

	// Dashboard text should render every factor.
	out := d.Format()
	for _, want := range []string{"time dilation", "memory dilation", "trace words/instr", "generation duty"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() missing %q:\n%s", want, out)
		}
	}
}
