package experiment

import (
	"fmt"
	"strings"

	"systrace/internal/dataflow"
	"systrace/internal/kernel"
	"systrace/internal/obj"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/workload"
)

// Distortion is the self-measurement dashboard: how much the tracing
// system perturbs the machine it observes. The paper quantifies each
// component — "the system being traced runs about 15 times slower"
// (§4.1), instrumented text roughly doubles (§3.2), and the trace
// buffer claims physical memory that shrinks the measured system
// (§4.3). These factors are what the analysis side must compensate
// for, so surfacing them next to the raw counters is the whole point
// of the telemetry layer.
type Distortion struct {
	Name   string
	Flavor kernel.Flavor
	Seed   uint32

	// TimeDilation is traced machine instructions over untraced
	// machine instructions for the same work (§4.1's factor of ~15;
	// this reproduction's software-only pipeline lands lower).
	TimeDilation float64
	// MemoryDilation is the traced system's text+buffer footprint
	// over the untraced text footprint (§3.2 code growth plus §4.3
	// buffer geometry).
	MemoryDilation float64
	// TraceWordsPerInstr is raw trace words emitted per traced-
	// workload instruction reconstructed by the parser.
	TraceWordsPerInstr float64
	// GenerationDutyCycle is the fraction of traced-machine time
	// spent generating (vs. the interleaved analysis phases, §4.3).
	GenerationDutyCycle float64

	// Footprint components (bytes) behind MemoryDilation.
	UntracedTextBytes uint64
	TracedTextBytes   uint64
	BufferBytes       uint64

	// Flow aggregates the rewriter's dataflow statistics across every
	// instrumented image in the system (kernel + workload + server):
	// how many prologue/scratch save sites the liveness analysis
	// proved elidable.
	Flow obj.FlowStats

	// Cost is the static trace-cost model merged over the same images:
	// predicted trace words per original instruction from the rewritten
	// image and its CFG alone, no execution.
	Cost *dataflow.CostModel
	// StaticModelErr is the cost model's table validated against the
	// measured stream: the signed relative error of Σ counts·(1+|Mem|)
	// over observed block entries vs. the words the parser consumed.
	// The structural mix estimate (Cost.WordsPerInstr vs.
	// TraceWordsPerInstr) carries the frequency-guessing error on top.
	StaticModelErr float64

	Meas *Measured
	Pred *Predicted
}

// Distort runs the workload both untraced (direct measurement) and
// traced (trace-driven prediction), computes the distortion factors,
// and — when reg is non-nil — registers every subsystem's series plus
// the four dashboard gauges on it.
func Distort(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	reg *telemetry.Registry) (*Distortion, error) {
	meas, err := MeasureT(spec, flavor, seed, reg)
	if err != nil {
		return nil, err
	}
	pred, err := PredictT(spec, flavor, seed, reg)
	if err != nil {
		return nil, err
	}

	d := &Distortion{
		Name:   spec.Name,
		Flavor: flavor,
		Seed:   seed,
		Meas:   meas,
		Pred:   pred,
	}
	if meas.Instr > 0 {
		d.TimeDilation = float64(pred.TracedInstr) / float64(meas.Instr)
	}
	if pred.Parser != nil && pred.Parser.Fetches > 0 {
		d.TraceWordsPerInstr = float64(pred.TraceWords) / float64(pred.Parser.Fetches)
	}
	if pred.TracedCycles > 0 {
		d.GenerationDutyCycle =
			float64(pred.TracedCycles-pred.AnalysisCycles) / float64(pred.TracedCycles)
	}

	// Footprints from the cached build products: uninstrumented vs.
	// instrumented text, plus the tracing system's buffers (§4.3:
	// in-kernel buffer + per-process book and buffer pages).
	kexe, err := kernelExe(flavor, true)
	if err != nil {
		return nil, err
	}
	prog, err := program(spec)
	if err != nil {
		return nil, err
	}
	orig := uint64(kexe.Instr.OrigTextSize) + uint64(prog.Instr.Instr.OrigTextSize)
	instr := uint64(kexe.Instr.TextSize) + uint64(prog.Instr.Instr.TextSize)
	d.addFlow(kexe.Instr.Flow)
	d.addFlow(prog.Instr.Instr.Flow)
	cost, err := dataflow.StaticCostTraced(kexe)
	if err != nil {
		return nil, err
	}
	progCost, err := dataflow.StaticCostTraced(prog.Instr)
	if err != nil {
		return nil, err
	}
	cost.Merge(progCost)
	nprocs := uint64(1)
	if flavor == kernel.Mach {
		srv, err := server()
		if err != nil {
			return nil, err
		}
		orig += uint64(srv.Instr.Instr.OrigTextSize)
		instr += uint64(srv.Instr.Instr.TextSize)
		d.addFlow(srv.Instr.Instr.Flow)
		srvCost, err := dataflow.StaticCostTraced(srv.Instr)
		if err != nil {
			return nil, err
		}
		cost.Merge(srvCost)
		nprocs = 2
	}
	d.Cost = cost
	d.StaticModelErr = pred.StaticWordErr()
	d.UntracedTextBytes = orig
	d.TracedTextBytes = instr
	d.BufferBytes = trace.DefaultKernelBufBytes +
		nprocs*(trace.BookSize+trace.UserBufBytes)
	if orig > 0 {
		d.MemoryDilation = float64(instr+d.BufferBytes) / float64(orig)
	}

	if reg != nil {
		lab := []telemetry.Label{
			telemetry.L("workload", spec.Name),
			telemetry.L("os", flavor.String()),
		}
		reg.Gauge("distortion_time_dilation",
			"traced/untraced instruction ratio (§4.1 slowdown)", lab...).
			Set(d.TimeDilation)
		reg.Gauge("distortion_memory_dilation",
			"traced text+buffers over untraced text (§3.2 growth, §4.3 buffers)", lab...).
			Set(d.MemoryDilation)
		reg.Gauge("distortion_trace_words_per_instruction",
			"raw trace words per reconstructed workload instruction", lab...).
			Set(d.TraceWordsPerInstr)
		reg.Gauge("distortion_generation_duty_cycle",
			"fraction of traced-machine time in generation vs. analysis (§4.3)", lab...).
			Set(d.GenerationDutyCycle)
		reg.Gauge("dataflow_blocks_analyzed",
			"basic blocks covered by the rewriter's liveness analysis", lab...).
			Set(float64(d.Flow.Blocks))
		reg.Gauge("dataflow_save_sites",
			"instrumentation sites where a register save/restore may be needed", lab...).
			Set(float64(d.Flow.SaveSites))
		reg.Gauge("dataflow_saves_elided",
			"save sites elided because liveness proved the register dead", lab...).
			Set(float64(d.Flow.SavesElided))
		reg.Gauge("dataflow_fallbacks",
			"save sites kept conservative (register live or analysis inconclusive)", lab...).
			Set(float64(d.Flow.Fallbacks))
		reg.Gauge("dataflow_static_trace_words_per_instr",
			"cost model: predicted trace words per original instruction (static)", lab...).
			Set(d.Cost.WordsPerInstr())
		reg.Gauge("dataflow_static_trace_words_per_block",
			"cost model: predicted trace words per recorded block entry (static)", lab...).
			Set(d.Cost.WordsPerBlock())
		reg.Gauge("dataflow_static_added_instr_per_instr",
			"cost model: instrumentation text words added per original text word", lab...).
			Set(d.Cost.AddedPerInstr())
		reg.Gauge("dataflow_static_model_error_pct",
			"cost table error: static per-block words vs. words the parser consumed (%)", lab...).
			Set(d.StaticModelErr * 100)
	}
	return d, nil
}

// addFlow accumulates one image's dataflow statistics into the
// system-wide totals.
func (d *Distortion) addFlow(f obj.FlowStats) {
	d.Flow.Blocks += f.Blocks
	d.Flow.Funcs += f.Funcs
	d.Flow.SaveSites += f.SaveSites
	d.Flow.SavesElided += f.SavesElided
	d.Flow.Fallbacks += f.Fallbacks
	d.Flow.BytesSaved += f.BytesSaved
}

// Format renders the human-readable dashboard.
func (d *Distortion) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distortion dashboard: %s on %v (seed %d)\n",
		d.Name, d.Flavor, d.Seed)
	fmt.Fprintf(&b, "  time dilation:        %6.2fx  (%d traced instr / %d untraced instr)\n",
		d.TimeDilation, d.Pred.TracedInstr, d.Meas.Instr)
	fmt.Fprintf(&b, "  memory dilation:      %6.2fx  (%d text+buffer bytes / %d text bytes)\n",
		d.MemoryDilation, d.TracedTextBytes+d.BufferBytes, d.UntracedTextBytes)
	fmt.Fprintf(&b, "  trace words/instr:    %6.2f   (%d words / %d fetches)\n",
		d.TraceWordsPerInstr, d.Pred.TraceWords, d.Pred.Parser.Fetches)
	fmt.Fprintf(&b, "  generation duty:      %6.2f%%  (%d of %d cycles; rest is analysis)\n",
		d.GenerationDutyCycle*100,
		d.Pred.TracedCycles-d.Pred.AnalysisCycles, d.Pred.TracedCycles)
	fmt.Fprintf(&b, "  mode switches:        %d flushes over %d trace words\n",
		d.Pred.ModeSwitches, d.Pred.TraceWords)
	if d.Flow.SaveSites > 0 {
		fmt.Fprintf(&b, "  dead-reg elision:     %d of %d save sites elided (%.0f%%, %d bytes saved, %d kept)\n",
			d.Flow.SavesElided, d.Flow.SaveSites,
			100*float64(d.Flow.SavesElided)/float64(d.Flow.SaveSites),
			d.Flow.BytesSaved, d.Flow.Fallbacks)
		fmt.Fprintf(&b, "  dataflow coverage:    %d blocks in %d functions analyzed\n",
			d.Flow.Blocks, d.Flow.Funcs)
	}
	if d.Cost != nil {
		fmt.Fprintf(&b, "  static cost model:    %6.2f words/instr predicted vs %.2f measured (%+.1f%% mix error, max loop depth %d)\n",
			d.Cost.WordsPerInstr(), d.TraceWordsPerInstr,
			100*(d.Cost.WordsPerInstr()/d.TraceWordsPerInstr-1), d.Cost.MaxDepth)
		fmt.Fprintf(&b, "  static cost table:    %d words from observed mix vs %d consumed (%+.2f%% model error)\n",
			d.Pred.StaticWords(), d.Pred.Parser.Words, 100*d.StaticModelErr)
	}
	return b.String()
}
