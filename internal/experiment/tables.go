package experiment

import (
	"fmt"
	"math"
	"strings"
	"systrace/internal/trace"

	"systrace/internal/epoxie"
	"systrace/internal/kernel"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/pixie"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

// Row is one workload's measured/predicted pair for one system.
type Row struct {
	Name      string
	Measured  float64
	Predicted float64
}

// PercentError returns (predicted-measured)/measured * 100.
func (r Row) PercentError() float64 {
	if r.Measured == 0 {
		return 0
	}
	return (r.Predicted - r.Measured) / r.Measured * 100
}

// Table1Row is one entry of the workload inventory.
type Table1Row struct {
	Name        string
	Description string
	Seconds     float64
	Instr       uint64
}

// bothSystems is the paper's system pair, in its column order.
var bothSystems = []kernel.Flavor{kernel.Mach, kernel.Ultrix}

// Table1 runs the untraced suite on the Ultrix-like system and reports
// the workload inventory with execution times.
func Table1(specs []workload.Spec) ([]Table1Row, error) {
	return NewRunner(0).Table1(specs)
}

// Table1 generates the workload inventory from the Runner's shared
// results: the run set is submitted up front, so distinct runs
// simulate in parallel and anything another table already requested is
// served from the memo.
func (r *Runner) Table1(specs []workload.Spec) ([]Table1Row, error) {
	for _, s := range specs {
		r.StartMeasure(s, kernel.Ultrix, 1)
	}
	var rows []Table1Row
	for _, s := range specs {
		meas, err := r.Measure(s, kernel.Ultrix, 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{s.Name, s.Description, meas.Seconds, meas.Instr})
	}
	return rows, nil
}

// Table2Row pairs both systems for one workload.
type Table2Row struct {
	Name                            string
	MachMeasured, MachPredicted     float64
	UltrixMeasured, UltrixPredicted float64
}

// Table2 reproduces the run-time validation: measured and predicted
// execution times for both systems.
func Table2(specs []workload.Spec) ([]Table2Row, error) {
	return NewRunner(0).Table2(specs)
}

// Table2 generates the run-time validation from the Runner's shared
// results. Its run set is identical to Table3's, so whichever runs
// second costs nothing.
func (r *Runner) Table2(specs []workload.Spec) ([]Table2Row, error) {
	for _, s := range specs {
		for _, fl := range bothSystems {
			r.StartMeasure(s, fl, 1)
			r.StartPredict(s, fl, 2)
		}
	}
	var rows []Table2Row
	for _, s := range specs {
		row := Table2Row{Name: s.Name}
		for _, fl := range bothSystems {
			meas, err := r.Measure(s, fl, 1)
			if err != nil {
				return nil, err
			}
			pred, err := r.Predict(s, fl, 2)
			if err != nil {
				return nil, err
			}
			if meas.Result != pred.Result {
				return nil, fmt.Errorf("table2 %s/%v: measured result %d != predicted-run result %d",
					s.Name, fl, meas.Result, pred.Result)
			}
			if fl == kernel.Mach {
				row.MachMeasured, row.MachPredicted = meas.Seconds, pred.Seconds
			} else {
				row.UltrixMeasured, row.UltrixPredicted = meas.Seconds, pred.Seconds
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure3 derives the Ultrix prediction-error series from Table 2 rows
// (the paper presents Ultrix only, "because of the large variability
// of running time induced by the Mach 3.0 page mapping policy").
func Figure3(rows []Table2Row) []Row {
	out := make([]Row, len(rows))
	for i, r := range rows {
		out[i] = Row{r.Name, r.UltrixMeasured, r.UltrixPredicted}
	}
	return out
}

// Table3Row holds TLB miss counts for both systems.
type Table3Row struct {
	Name                            string
	MachMeasured, MachPredicted     uint64
	UltrixMeasured, UltrixPredicted uint64
}

// Table3 reproduces the user-TLB-miss validation.
func Table3(specs []workload.Spec) ([]Table3Row, error) {
	return NewRunner(0).Table3(specs)
}

// Table3 generates the TLB-miss validation from the Runner's shared
// results; the run set is Table2's, so a suite pays for it once.
func (r *Runner) Table3(specs []workload.Spec) ([]Table3Row, error) {
	for _, s := range specs {
		for _, fl := range bothSystems {
			r.StartMeasure(s, fl, 1)
			r.StartPredict(s, fl, 2)
		}
	}
	var rows []Table3Row
	for _, s := range specs {
		row := Table3Row{Name: s.Name}
		for _, fl := range bothSystems {
			meas, err := r.Measure(s, fl, 1)
			if err != nil {
				return nil, err
			}
			pred, err := r.Predict(s, fl, 2)
			if err != nil {
				return nil, err
			}
			if fl == kernel.Mach {
				row.MachMeasured, row.MachPredicted = uint64(meas.UTLBMisses), pred.UTLBMisses
			} else {
				row.UltrixMeasured, row.UltrixPredicted = uint64(meas.UTLBMisses), pred.UTLBMisses
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GrowthRow reports text expansion for one binary and tool.
type GrowthRow struct {
	Name      string
	Tool      string
	OrigBytes uint32
	NewBytes  uint32
	Factor    float64
}

// TextGrowth reproduces the §3.2 comparison: the modified epoxie
// against the original-epoxie style and pixie, per workload (the
// paper's footnote uses gcc).
func TextGrowth(specs []workload.Spec) ([]GrowthRow, error) {
	var rows []GrowthRow
	for _, s := range specs {
		prog, err := program(s)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GrowthRow{
			Name: s.Name, Tool: "epoxie",
			OrigBytes: prog.Instr.Instr.OrigTextSize,
			NewBytes:  prog.Instr.Instr.TextSize,
			Factor:    prog.Instr.Instr.GrowthFactor(),
		})
		// Original-epoxie emission style.
		objs := []*obj.File{userland.Crt0(true)}
		mods := []*m.Module{s.Build(), userland.Libc()}
		for _, mod := range mods {
			o, err := mod.Compile(m.Options{})
			if err != nil {
				return nil, err
			}
			objs = append(objs, o)
		}
		b, err := epoxie.BuildInstrumented(objs, link.Options{
			Name: s.Name, Entry: "_start",
			TextBase: obj.UserTextBase, DataBase: obj.UserDataBase,
		}, epoxie.Config{Orig: true}, epoxie.UserRuntime)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GrowthRow{
			Name: s.Name, Tool: "epoxie-orig",
			OrigBytes: b.Instr.Instr.OrigTextSize,
			NewBytes:  b.Instr.Instr.TextSize,
			Factor:    b.Instr.Instr.GrowthFactor(),
		})
		// pixie.
		res, err := pixie.Rewrite(prog.Orig, pixie.ModeTrace)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GrowthRow{
			Name: s.Name, Tool: "pixie",
			OrigBytes: res.Exe.Instr.OrigTextSize,
			NewBytes:  res.Exe.Instr.TextSize,
			Factor:    res.Exe.Instr.GrowthFactor(),
		})
	}
	return rows, nil
}

// DilationRow reports the traced/untraced slowdown of one workload.
type DilationRow struct {
	Name          string
	UntracedInstr uint64
	TracedInstr   uint64
	Factor        float64
	ClockUntraced uint32
	ClockTraced   uint32
}

// TimeDilation reproduces the §4.1 numbers: traced programs execute
// "about fifteen times more slowly", and the clock is retuned to
// match.
func TimeDilation(specs []workload.Spec) ([]DilationRow, error) {
	return NewRunner(0).TimeDilation(specs)
}

// TimeDilation generates the §4.1 dilation rows from the Runner's
// shared results (the measurements are Table1's).
func (r *Runner) TimeDilation(specs []workload.Spec) ([]DilationRow, error) {
	for _, s := range specs {
		r.StartMeasure(s, kernel.Ultrix, 1)
		r.StartPredict(s, kernel.Ultrix, 1)
	}
	var rows []DilationRow
	for _, s := range specs {
		meas, err := r.Measure(s, kernel.Ultrix, 1)
		if err != nil {
			return nil, err
		}
		pred, err := r.Predict(s, kernel.Ultrix, 1)
		if err != nil {
			return nil, err
		}
		base := kernel.DefaultBoot(kernel.Ultrix).ClockInterval
		rows = append(rows, DilationRow{
			Name:          s.Name,
			UntracedInstr: meas.Instr,
			TracedInstr:   pred.TracedInstr,
			Factor:        float64(pred.TracedInstr) / float64(meas.Instr),
			ClockUntraced: base,
			ClockTraced:   base * IdleScale,
		})
	}
	return rows, nil
}

// BufferRow reports the behavior of one in-kernel buffer size.
type BufferRow struct {
	BufBytes      uint32
	ModeSwitches  uint64
	TracedInstr   uint64
	InstrPerPhase float64
	// Cycles is total machine time for the run including drain
	// charges; StallCycles is the share spent waiting for a free ring
	// slot (zero under the two-phase drain, where every drain is a
	// stop-the-world analysis phase instead).
	Cycles      uint64
	StallCycles uint64
}

// BufferSizing reproduces the §4.3 analysis: larger in-kernel buffers
// mean rarer generation/analysis transitions (the paper's 64 MB buffer
// permitted ~32 M instructions of continuous execution).
func BufferSizing(spec workload.Spec, sizes []uint32) ([]BufferRow, error) {
	return BufferSizingWith(spec, sizes, kernel.StreamConfig{})
}

// BufferSizingWith is BufferSizing under a drain configuration: the
// E9 "dirt" experiment re-measured with the epoch-ring streaming
// drain, where a smaller buffer costs ring-slot stalls rather than
// more frequent stop-the-world phases.
func BufferSizingWith(spec workload.Spec, sizes []uint32, stream kernel.StreamConfig) ([]BufferRow, error) {
	var rows []BufferRow
	for _, size := range sizes {
		kexe, err := kernelExe(kernel.Ultrix, true)
		if err != nil {
			return nil, err
		}
		prog, err := program(spec)
		if err != nil {
			return nil, err
		}
		disk, err := kernel.BuildDiskImage(spec.Files)
		if err != nil {
			return nil, err
		}
		cfg := kernel.DefaultBoot(kernel.Ultrix)
		cfg.DiskImage = disk
		cfg.TraceBufBytes = size
		cfg.ClockInterval *= IdleScale
		cfg.Stream = stream
		sys2, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Instr}}, cfg)
		if err != nil {
			return nil, err
		}
		if err := sys2.Run(runBudget); err != nil {
			return nil, err
		}
		sw := sys2.Doorbells
		if sw == 0 {
			sw = 1
		}
		rows = append(rows, BufferRow{
			BufBytes:      size,
			ModeSwitches:  sys2.Doorbells,
			TracedInstr:   sys2.M.CPU.Stat.Instret,
			InstrPerPhase: float64(sys2.M.CPU.Stat.Instret) / float64(sw),
			Cycles:        sys2.M.Cycles(),
			StallCycles:   sys2.StreamStats.StallCycles,
		})
	}
	return rows, nil
}

// CPIResult reports the Tunix-era observation (§3.4): kernel CPI is a
// small multiple of user CPI.
type CPIResult struct {
	KernelCPI, UserCPI, Ratio float64
	KernelInstr, UserInstr    uint64
}

// KernelCPI measures CPI by mode on a system-call-heavy workload.
func KernelCPI(spec workload.Spec) (*CPIResult, error) {
	return NewRunner(0).KernelCPI(spec)
}

// KernelCPI derives the CPI-by-mode result from the Runner's shared
// measurement (the same run Table1 reports).
func (r *Runner) KernelCPI(spec workload.Spec) (*CPIResult, error) {
	meas, err := r.Measure(spec, kernel.Ultrix, 1)
	if err != nil {
		return nil, err
	}
	t := meas.Timing
	res := &CPIResult{
		KernelCPI:   t.KernelCPI(),
		UserCPI:     t.UserCPI(),
		KernelInstr: t.KernelInstr,
		UserInstr:   t.UserInstr,
	}
	if res.UserCPI > 0 {
		res.Ratio = res.KernelCPI / res.UserCPI
	}
	return res, nil
}

// VarianceResult reports the §4.4 page-mapping repeatability hazard.
type VarianceResult struct {
	Times          []float64
	SpreadPercent  float64 // (max-min)/min * 100
	SystemFraction float64 // kernel instructions / total, mean over seeds
}

// PageMappingVariance runs the workload under the Mach-like system
// with different page-placement seeds: "system policy in the
// virtual-to-physical page selection can cause execution time to vary
// by over 10%" while system activity is only ~1% (§4.4).
func PageMappingVariance(spec workload.Spec, seeds []uint32) (*VarianceResult, error) {
	return NewRunner(0).PageMappingVariance(spec, seeds)
}

// PageMappingVariance generates the §4.4 variance study from the
// Runner's shared results; the per-seed runs simulate in parallel.
func (r *Runner) PageMappingVariance(spec workload.Spec, seeds []uint32) (*VarianceResult, error) {
	for _, seed := range seeds {
		r.StartMeasure(spec, kernel.Mach, seed)
	}
	res := &VarianceResult{}
	lo, hi := math.Inf(1), math.Inf(-1)
	var fracSum float64
	for _, seed := range seeds {
		meas, err := r.Measure(spec, kernel.Mach, seed)
		if err != nil {
			return nil, err
		}
		res.Times = append(res.Times, meas.Seconds)
		lo = math.Min(lo, meas.Seconds)
		hi = math.Max(hi, meas.Seconds)
		fracSum += float64(meas.Timing.KernelInstr) /
			float64(meas.Timing.KernelInstr+meas.Timing.UserInstr)
	}
	if len(seeds) > 0 {
		res.SystemFraction = fracSum / float64(len(seeds))
	}
	if lo > 0 {
		res.SpreadPercent = (hi - lo) / lo * 100
	}
	return res, nil
}

// ErrorAnatomy decomposes a prediction for the §5.1 error discussion.
type ErrorAnatomy struct {
	Name            string
	MeasuredSec     float64
	PredictedSec    float64
	ErrorPercent    float64
	IOStallsSec     float64
	FPOverlapCycles uint64 // overlap the measured side models and the predictor does not
	WBStallCycles   uint64
}

// ErrorSources explains the error structure for the paper's three
// outliers (sed, compress, liv).
func ErrorSources(names []string) ([]ErrorAnatomy, error) {
	return NewRunner(0).ErrorSources(names)
}

// ErrorSources generates the §5.1 error anatomy from the Runner's
// shared results (the same runs Table1 and Table2 report).
func (r *Runner) ErrorSources(names []string) ([]ErrorAnatomy, error) {
	specs := make([]workload.Spec, 0, len(names))
	for _, n := range names {
		spec, ok := workload.ByName(n)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", n)
		}
		specs = append(specs, spec)
		r.StartMeasure(spec, kernel.Ultrix, 1)
		r.StartPredict(spec, kernel.Ultrix, 2)
	}
	var out []ErrorAnatomy
	for _, spec := range specs {
		n := spec.Name
		meas, err := r.Measure(spec, kernel.Ultrix, 1)
		if err != nil {
			return nil, err
		}
		pred, err := r.Predict(spec, kernel.Ultrix, 2)
		if err != nil {
			return nil, err
		}
		row := Row{n, meas.Seconds, pred.Seconds}
		out = append(out, ErrorAnatomy{
			Name:            n,
			MeasuredSec:     meas.Seconds,
			PredictedSec:    pred.Seconds,
			ErrorPercent:    row.PercentError(),
			IOStallsSec:     float64(pred.IOStalls) / 25e6,
			FPOverlapCycles: meas.Timing.FPOverlapped,
			WBStallCycles:   meas.Timing.WBStalls,
		})
	}
	return out, nil
}

// --- formatting helpers ---

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	w := make([]int, len(header))
	for i, h := range header {
		w[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	rule := make([]string, len(header))
	for i := range rule {
		rule[i] = strings.Repeat("-", w[i])
	}
	line(rule)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Sec formats simulated seconds.
func Sec(s float64) string { return fmt.Sprintf("%.4f", s) }

// Figure2 renders the paper's before/after instrumentation listing.
func Figure2() string {
	out := epoxie.Figure2()
	var b strings.Builder
	b.WriteString("before instrumentation:        after instrumentation:\n")
	n := len(out.After)
	for i := 0; i < n; i++ {
		left := ""
		if i < len(out.Before) {
			left = out.Before[i]
		}
		fmt.Fprintf(&b, "  %-28s %s\n", left, out.After[i])
	}
	return b.String()
}

// CorruptionDetection measures the §4.3 redundancy: it captures the
// first drained buffer of a traced run, overwrites each word in turn
// with a bogus value, and counts how many corruptions the parsing
// library rejects.
func CorruptionDetection(spec workload.Spec) (detected, total int, err error) {
	sys, _, err := boot(spec, kernel.Ultrix, true, 1, nil, kernel.StreamConfig{}, 0)
	if err != nil {
		return 0, 0, fmt.Errorf("corruption study: boot %s: %w", spec.Name, err)
	}
	var first []uint32
	tables := map[int]*trace.SideTable{0: trace.NewSideTable(sys.Kernel.Instr.Blocks)}
	for i, bp := range sys.Procs {
		if bp.Exe.Instr != nil {
			tables[i+1] = trace.NewSideTable(bp.Exe.Instr.Blocks)
		}
	}
	sys.OnTrace = func(words []uint32) {
		if first == nil {
			first = append([]uint32(nil), words...)
		}
	}
	if err := sys.Run(runBudget); err != nil {
		return 0, 0, fmt.Errorf("corruption study: run %s: %w", spec.Name, err)
	}
	if len(first) > 4096 {
		first = first[:4096]
	}
	parse := func(ws []uint32) error {
		p := trace.NewParser(tables[0])
		for pid, tab := range tables {
			if pid != 0 {
				p.AddProcess(pid, tab)
			}
		}
		if _, err := p.Parse(ws, nil); err != nil {
			return err
		}
		return p.Finish()
	}
	for i := 0; i < len(first); i += 7 {
		mut := append([]uint32(nil), first...)
		mut[i] = 0x13572468
		total++
		if parse(mut) != nil {
			detected++
		}
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("corruption study: %s produced no trace words", spec.Name)
	}
	return detected, total, nil
}
