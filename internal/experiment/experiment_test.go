package experiment_test

import (
	"strings"
	"testing"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/workload"
)

func specsFor(t *testing.T, names ...string) []workload.Spec {
	t.Helper()
	var out []workload.Spec
	for _, n := range names {
		s, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("no workload %q", n)
		}
		out = append(out, s)
	}
	return out
}

func TestMeasurePredictAgreeOnResult(t *testing.T) {
	for _, s := range specsFor(t, "sed", "lisp") {
		meas, err := experiment.Measure(s, kernel.Ultrix, 1)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := experiment.Predict(s, kernel.Ultrix, 2)
		if err != nil {
			t.Fatal(err)
		}
		if meas.Result != pred.Result {
			t.Errorf("%s: results diverge (%d vs %d)", s.Name, meas.Result, pred.Result)
		}
		row := experiment.Row{Name: s.Name, Measured: meas.Seconds, Predicted: pred.Seconds}
		t.Logf("%s: measured=%.5fs predicted=%.5fs err=%.1f%% (cpu=%d mem=%d arith=%d io=%d) utlb meas=%d pred=%d",
			s.Name, meas.Seconds, pred.Seconds, row.PercentError(),
			pred.CPUCycles, pred.MemStalls, pred.ArithStalls, pred.IOStalls,
			meas.UTLBMisses, pred.UTLBMisses)
		if e := row.PercentError(); e < -60 || e > 60 {
			t.Errorf("%s: prediction error %.1f%% is out of any reasonable band", s.Name, e)
		}
	}
}

func TestConformanceCleanOnSimulatorOutput(t *testing.T) {
	for _, s := range specsFor(t, "sed") {
		for _, flavor := range []kernel.Flavor{kernel.Ultrix, kernel.Mach} {
			res, err := experiment.Conformance(s, flavor, 1)
			if err != nil {
				t.Fatalf("%s/%v: %v", s.Name, flavor, err)
			}
			if !res.Clean() {
				n := len(res.Diags)
				if n > 5 {
					n = 5
				}
				t.Errorf("%s/%v: simulator trace fails conformance (%d diags): %v",
					s.Name, flavor, len(res.Diags), res.Diags[:n])
			}
			if res.Records == 0 || res.Words == 0 {
				t.Errorf("%s/%v: degenerate result %+v", s.Name, flavor, res)
			}
			t.Logf("%s/%v: %d words, %d records, %d markers checked clean",
				s.Name, flavor, res.Words, res.Records, res.Markers)
		}
	}
}

func TestStreamingConformanceAndPredict(t *testing.T) {
	stream := kernel.DefaultStream()
	for _, s := range specsFor(t, "sed") {
		res, err := experiment.ConformanceWith(s, kernel.Ultrix, 1, stream)
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if !res.Clean() {
			n := len(res.Diags)
			if n > 5 {
				n = 5
			}
			t.Errorf("%s: compressed stream fails conformance (%d diags): %v",
				s.Name, len(res.Diags), res.Diags[:n])
		}
		base, err := experiment.Predict(s, kernel.Ultrix, 2)
		if err != nil {
			t.Fatal(err)
		}
		pred, err := experiment.PredictWith(s, kernel.Ultrix, 2, stream)
		if err != nil {
			t.Fatal(err)
		}
		if pred.Result != base.Result {
			t.Errorf("%s: streaming drain changed the workload result (%d vs %d)",
				s.Name, pred.Result, base.Result)
		}
		if pred.Stream.Epochs == 0 {
			t.Errorf("%s: streaming predict handed off no epochs", s.Name)
		}
		if pred.Stream.DecodeErrors != 0 {
			t.Errorf("%s: %d decode errors on the wire", s.Name, pred.Stream.DecodeErrors)
		}
		if pred.Stream.EncodedBytes == 0 || pred.Stream.EncodedBytes >= pred.Stream.RawBytes {
			t.Errorf("%s: compression did not shrink the stream (%d -> %d bytes)",
				s.Name, pred.Stream.RawBytes, pred.Stream.EncodedBytes)
		}
		if pred.OverlapCycles == 0 {
			t.Errorf("%s: no analysis cycles were overlapped", s.Name)
		}
		if pred.Seconds != base.Seconds {
			t.Errorf("%s: streaming drain changed the *prediction* (%.5fs vs %.5fs); "+
				"the drain mode must not perturb what the analysis computes",
				s.Name, pred.Seconds, base.Seconds)
		}
		if pred.TracedCycles >= base.TracedCycles {
			t.Errorf("%s: overlapped drain not faster (%d traced cycles vs two-phase %d)",
				s.Name, pred.TracedCycles, base.TracedCycles)
		}
		t.Logf("%s: %d epochs, %d -> %d bytes (%.2fx), overlap=%d cycles, traced %d vs two-phase %d",
			s.Name, pred.Stream.Epochs, pred.Stream.RawBytes, pred.Stream.EncodedBytes,
			float64(pred.Stream.RawBytes)/float64(pred.Stream.EncodedBytes),
			pred.OverlapCycles, pred.TracedCycles, base.TracedCycles)
	}
}

func TestTable1Inventory(t *testing.T) {
	rows, err := experiment.Table1(specsFor(t, "gcc", "yacc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Seconds <= 0 || r.Instr == 0 || r.Description == "" {
			t.Errorf("degenerate row %+v", r)
		}
	}
}

func TestTable2AndFigure3(t *testing.T) {
	specs := specsFor(t, "gcc", "yacc")[:1] // gcc only: four full system runs
	rows, err := experiment.Table2(specs)
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	if r.UltrixMeasured <= 0 || r.UltrixPredicted <= 0 ||
		r.MachMeasured <= 0 || r.MachPredicted <= 0 {
		t.Fatalf("degenerate row %+v", r)
	}
	// Mach must not be cheaper than Ultrix for a syscall-using program.
	if r.MachMeasured < r.UltrixMeasured {
		t.Errorf("Mach %.4f < Ultrix %.4f for gcc", r.MachMeasured, r.UltrixMeasured)
	}
	// Predictions within the paper's error band (±15% generously).
	fig := experiment.Figure3(rows)
	for _, fr := range fig {
		if e := fr.PercentError(); e < -15 || e > 15 {
			t.Errorf("%s: prediction error %.1f%% outside band", fr.Name, e)
		}
	}
}

func TestBufferSizingMonotonic(t *testing.T) {
	spec, _ := workload.ByName("sed")
	rows, err := experiment.BufferSizing(spec, []uint32{256 << 10, 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].ModeSwitches < rows[1].ModeSwitches {
		t.Errorf("smaller buffer must switch at least as often: %d vs %d",
			rows[0].ModeSwitches, rows[1].ModeSwitches)
	}
	if rows[0].InstrPerPhase > rows[1].InstrPerPhase {
		t.Errorf("instructions per phase must grow with the buffer: %.0f vs %.0f",
			rows[0].InstrPerPhase, rows[1].InstrPerPhase)
	}
}

func TestKernelCPIRatio(t *testing.T) {
	spec, _ := workload.ByName("sed")
	res, err := experiment.KernelCPI(spec)
	if err != nil {
		t.Fatal(err)
	}
	// The Tunix observation's direction: kernel CPI strictly above
	// user CPI, by a small multiple (the paper saw ~3x on the Titan).
	if res.Ratio <= 1.0 || res.Ratio > 5.0 {
		t.Errorf("kernel/user CPI ratio %.2f out of the paper's shape", res.Ratio)
	}
	if res.KernelInstr == 0 || res.UserInstr == 0 {
		t.Error("mode-attributed instruction counts missing")
	}
}

func TestFormatTableAlignment(t *testing.T) {
	out := experiment.FormatTable(
		[]string{"a", "long-header", "c"},
		[][]string{{"1", "2", "3"}, {"wide-cell", "x", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Errorf("ragged table:\n%s", out)
		}
	}
}
