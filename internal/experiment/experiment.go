// Package experiment runs the paper's validation methodology end to
// end: direct measurement of the uninstrumented system (execution-
// driven memory model attached to the machine) against trace-driven
// prediction (epoxie-instrumented system generating a trace consumed
// by the analysis-side simulator), with pixie supplying the
// arithmetic-stall term. Every table and figure of the paper has a
// generator here; see DESIGN.md's per-experiment index.
package experiment

import (
	"fmt"
	"sync"

	"systrace/internal/epoxie"
	"systrace/internal/isa"
	"systrace/internal/kernel"
	"systrace/internal/machine"
	m "systrace/internal/mahler"
	"systrace/internal/memsys"
	"systrace/internal/obj"
	"systrace/internal/obs"
	"systrace/internal/pixie"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/tracecheck"
	"systrace/internal/userland"
	"systrace/internal/verify"
	"systrace/internal/workload"
)

// IdleScale is the time-dilation compensation factor: instrumented
// code runs about fifteen times slower, so traced idle-loop counts are
// multiplied by fifteen to estimate I/O stalls and the traced system's
// clock runs at 1/15th rate (§4.1).
const IdleScale = 15

// Budget bounds one simulated run.
const runBudget = 6_000_000_000

// Build caching: kernels, programs, and the pixie arithmetic-stall
// runs are deterministic, so each is produced once and shared
// read-only by every System booted afterwards. A build takes seconds,
// so the table lock is never held across one: each cache entry carries
// its own sync.Once — concurrent callers for the same key wait on the
// entry while builds for different keys proceed in parallel on the
// Runner's worker pool.
type buildEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

var (
	cacheMu    sync.Mutex // guards the cache maps only, never a build
	kcache     = map[string]*buildEntry[*obj.Executable]{}
	pcache     = map[string]*buildEntry[*userland.Program]{}
	svcache    = map[string]*buildEntry[*userland.Program]{}
	arithCache = map[string]*buildEntry[uint64]{}
	cfgCache   = map[*obj.Executable]*buildEntry[*verify.CFG]{}
)

// cacheEntry finds or inserts the entry for key under cacheMu.
func cacheEntry[T any](m map[string]*buildEntry[T], key string) *buildEntry[T] {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	e, ok := m[key]
	if !ok {
		e = &buildEntry[T]{}
		m[key] = e
	}
	return e
}

func kernelExe(flavor kernel.Flavor, traced bool) (*obj.Executable, error) {
	return kernelExeFlow(flavor, traced, epoxie.FlowOn)
}

func kernelExeFlow(flavor kernel.Flavor, traced bool, flow epoxie.FlowMode) (*obj.Executable, error) {
	e := cacheEntry(kcache, fmt.Sprintf("%v-%v-%d", flavor, traced, flow))
	e.once.Do(func() {
		e.val, e.err = kernel.Build(kernel.Config{Flavor: flavor, Traced: traced, Flow: flow})
	})
	return e.val, e.err
}

// Program returns the memoized build of spec's user program, both the
// uninstrumented and epoxie-instrumented executables. External callers
// (cmd/tracestat's static-verification report) share the same cache as
// the experiment runs, so asking for a program never builds it twice.
func Program(spec workload.Spec) (*userland.Program, error) { return program(spec) }

// ProgramFlow is Program under an explicit rewriter liveness mode,
// sharing the same per-mode build cache as the flow-variant boots.
func ProgramFlow(spec workload.Spec, flow epoxie.FlowMode) (*userland.Program, error) {
	return programFlow(spec, flow)
}

func program(spec workload.Spec) (*userland.Program, error) {
	return programFlow(spec, epoxie.FlowOn)
}

func programFlow(spec workload.Spec, flow epoxie.FlowMode) (*userland.Program, error) {
	e := cacheEntry(pcache, fmt.Sprintf("%s-%d", spec.Name, flow))
	e.once.Do(func() {
		e.val, e.err = userland.BuildFlow(spec.Name, []*m.Module{spec.Build()}, m.Options{}, flow)
	})
	return e.val, e.err
}

// exeCFG derives (once per instrumented image — kernels and programs
// are themselves cached singletons, so a pointer key suffices) the
// post-rewrite static CFG the conformance checker walks.
func exeCFG(e *obj.Executable) (*verify.CFG, error) {
	cacheMu.Lock()
	en, ok := cfgCache[e]
	if !ok {
		en = &buildEntry[*verify.CFG]{}
		cfgCache[e] = en
	}
	cacheMu.Unlock()
	en.once.Do(func() {
		en.val, en.err = verify.NewCFG(e)
	})
	return en.val, en.err
}

// conformanceChecker assembles a tracecheck.Checker for a booted traced
// system: the kernel's CFG plus one per traced process image.
func conformanceChecker(name string, sys *kernel.System) (*tracecheck.Checker, error) {
	c := tracecheck.New(name)
	kg, err := exeCFG(sys.Kernel)
	if err != nil {
		return nil, err
	}
	c.SetKernelCFG(kg)
	for i, bp := range sys.Procs {
		if bp.Exe.Instr == nil {
			continue
		}
		g, err := exeCFG(bp.Exe)
		if err != nil {
			return nil, err
		}
		c.AddProcessCFG(i+1, g)
	}
	return c, nil
}

// Conformance boots the traced system for one workload and runs its
// raw trace through the offline conformance checker (cmd/tracelint's
// corpus mode): the simulator's own output must be a legal observation
// of the static CFG plus the kernel trace protocol.
func Conformance(spec workload.Spec, flavor kernel.Flavor, seed uint32) (*tracecheck.Result, error) {
	return ConformanceWith(spec, flavor, seed, kernel.StreamConfig{})
}

// ConformanceWith is Conformance under a drain configuration. With a
// compressed streaming drain the checker consumes the wire bytes
// themselves (CheckCompressed via the OnEpoch hook), so the encoder,
// the epoch handoff, and the decode side are all under the
// conformance gate.
func ConformanceWith(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	stream kernel.StreamConfig) (*tracecheck.Result, error) {
	sys, _, err := boot(spec, flavor, true, seed, nil, stream, 0)
	if err != nil {
		return nil, err
	}
	c, err := conformanceChecker(fmt.Sprintf("%s/%v", spec.Name, flavor), sys)
	if err != nil {
		return nil, err
	}
	var cerr error
	if stream.Enabled() && stream.Compress {
		sys.OnEpoch = func(enc []byte) {
			if cerr == nil {
				cerr = c.CheckCompressed(enc)
			}
		}
	} else {
		sys.OnTrace = c.Check
	}
	if err := sys.Run(runBudget); err != nil {
		return nil, fmt.Errorf("conformance %s/%v: %w", spec.Name, flavor, err)
	}
	if cerr != nil {
		return nil, fmt.Errorf("conformance %s/%v: compressed stream: %w", spec.Name, flavor, cerr)
	}
	return c.Finish(), nil
}

func server() (*userland.Program, error) { return serverFlow(epoxie.FlowOn) }

func serverFlow(flow epoxie.FlowMode) (*userland.Program, error) {
	e := cacheEntry(svcache, fmt.Sprintf("ux-%d", flow))
	e.once.Do(func() {
		e.val, e.err = userland.BuildFlow("ux", []*m.Module{userland.UXServer()}, m.Options{}, flow)
	})
	return e.val, e.err
}

// Boot assembles a bootable system for one workload without running
// it: the kernel flavor, the (instrumented if traced) program plus a
// Mach server when the flavor needs one, the disk image, and the
// standard boot configuration. It returns the system and the client
// pid. External harnesses — the interpreter benchmark and the
// differential oracle — use it to drive machines with non-default
// engine settings; the builds come from the same memoized caches as
// every experiment.
func Boot(spec workload.Spec, flavor kernel.Flavor, traced bool, seed uint32) (*kernel.System, int, error) {
	return boot(spec, flavor, traced, seed, nil, kernel.StreamConfig{}, 0)
}

// BootFlow is Boot with an explicit rewriter liveness mode for traced
// boots: every image in the system (kernel, workload, Mach server) is
// built in that mode. The differential oracle compares FlowOn /
// FlowPadded boots against FlowOff. Each mode has its own build cache
// entries, so variants never alias.
func BootFlow(spec workload.Spec, flavor kernel.Flavor, traced bool, seed uint32,
	flow epoxie.FlowMode) (*kernel.System, int, error) {
	kexe, err := kernelExeFlow(flavor, traced, flow)
	if err != nil {
		return nil, 0, err
	}
	prog, err := programFlow(spec, flow)
	if err != nil {
		return nil, 0, err
	}
	exe := prog.Orig
	if traced {
		exe = prog.Instr
	}
	var procs []kernel.BootProc
	clientPid := 1
	if flavor == kernel.Mach {
		srv, err := serverFlow(flow)
		if err != nil {
			return nil, 0, err
		}
		sexe := srv.Orig
		if traced {
			sexe = srv.Instr
		}
		procs = append(procs, kernel.BootProc{Exe: sexe, IsServer: true})
		clientPid = 2
	}
	procs = append(procs, kernel.BootProc{Exe: exe})
	disk, err := kernel.BuildDiskImage(spec.Files)
	if err != nil {
		return nil, 0, err
	}
	cfg := kernel.DefaultBoot(flavor)
	cfg.DiskImage = disk
	cfg.MapSeed = seed
	if traced {
		cfg.TraceBufBytes = trace.DefaultKernelBufBytes
		cfg.ClockInterval *= IdleScale
	}
	sys, err := kernel.Boot(kexe, procs, cfg)
	if err != nil {
		return nil, 0, err
	}
	return sys, clientPid, nil
}

// RunBudget is the standard per-run instruction budget used by the
// experiment suite (exported for harnesses built on Boot).
const RunBudget = runBudget

// boot assembles a system for one workload. stream selects the drain
// configuration for traced boots (the zero value is the two-phase
// stop-the-world drain); bufBytes overrides the trace-buffer size
// when nonzero.
func boot(spec workload.Spec, flavor kernel.Flavor, traced bool, seed uint32,
	override *obj.Executable, stream kernel.StreamConfig, bufBytes uint32) (*kernel.System, int, error) {
	kexe, err := kernelExe(flavor, traced)
	if err != nil {
		return nil, 0, err
	}
	prog, err := program(spec)
	if err != nil {
		return nil, 0, err
	}
	exe := prog.Orig
	if traced {
		exe = prog.Instr
	}
	if override != nil {
		exe = override
	}
	var procs []kernel.BootProc
	clientPid := 1
	if flavor == kernel.Mach {
		srv, err := server()
		if err != nil {
			return nil, 0, err
		}
		sexe := srv.Orig
		if traced {
			sexe = srv.Instr
		}
		procs = append(procs, kernel.BootProc{Exe: sexe, IsServer: true})
		clientPid = 2
	}
	procs = append(procs, kernel.BootProc{Exe: exe})
	disk, err := kernel.BuildDiskImage(spec.Files)
	if err != nil {
		return nil, 0, err
	}
	cfg := kernel.DefaultBoot(flavor)
	cfg.DiskImage = disk
	cfg.MapSeed = seed
	if traced {
		cfg.TraceBufBytes = trace.DefaultKernelBufBytes
		if bufBytes != 0 {
			cfg.TraceBufBytes = bufBytes
		}
		cfg.ClockInterval *= IdleScale
		cfg.Stream = stream
	}
	sys, err := kernel.Boot(kexe, procs, cfg)
	if err != nil {
		return nil, 0, err
	}
	return sys, clientPid, nil
}

// Measured is one direct measurement of the uninstrumented system.
type Measured struct {
	Name       string
	Flavor     kernel.Flavor
	Cycles     uint64
	Seconds    float64
	Instr      uint64
	UTLBMisses uint32
	Result     uint32
	Timing     *memsys.Timing
}

// Measure runs the uninstrumented workload under the execution-driven
// machine model — the paper's "measurements of execution time made
// with an accurate timer" plus the hardware TLB miss counter.
func Measure(spec workload.Spec, flavor kernel.Flavor, seed uint32) (*Measured, error) {
	return MeasureT(spec, flavor, seed, nil)
}

// MeasureT is Measure with the run's subsystems registered on reg
// (which may be nil) under a run="untraced" label plus any extra
// labels (the Runner adds a run-id dimension here so concurrent runs'
// series stay distinct).
func MeasureT(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	reg *telemetry.Registry, extra ...telemetry.Label) (*Measured, error) {
	sp := obs.BeginDetail("measure_run", fmt.Sprintf("%s/%v/seed%d", spec.Name, flavor, seed))
	defer sp.End()
	sys, pid, err := boot(spec, flavor, false, seed, nil, kernel.StreamConfig{}, 0)
	if err != nil {
		return nil, err
	}
	tm := memsys.NewTiming(memsys.DECstation5000())
	sys.M.AttachTiming(tm, tm)
	labels := append([]telemetry.Label{telemetry.L("run", "untraced")}, extra...)
	sys.M.CPU.RegisterMetrics(reg, labels...)
	sys.M.RegisterMetrics(reg, labels...)
	sys.AttachTelemetry(reg, labels...)
	tm.RegisterMetrics(reg, labels...)
	if err := sys.Run(runBudget); err != nil {
		return nil, fmt.Errorf("measure %s/%v: %w", spec.Name, flavor, err)
	}
	return &Measured{
		Name:       spec.Name,
		Flavor:     flavor,
		Cycles:     sys.M.Cycles(),
		Seconds:    machine.Seconds(sys.M.Cycles()),
		Instr:      sys.M.CPU.Stat.Instret,
		UTLBMisses: sys.UTLBCount(),
		Result:     sys.ExitStatus(pid),
		Timing:     tm,
	}, nil
}

// Predicted is one trace-driven prediction.
type Predicted struct {
	Name   string
	Flavor kernel.Flavor
	// The four components of Table 2's predicted time.
	CPUCycles   uint64 // one cycle per (non-idle) traced instruction
	MemStalls   uint64
	ArithStalls uint64
	IOStalls    uint64 // idle-loop count scaled by IdleScale
	Cycles      uint64
	Seconds     float64

	IdleInstr    uint64
	TraceWords   uint64
	Events       uint64
	UTLBMisses   uint64 // simulated (Table 3 "predicted")
	ModeSwitches uint64
	Result       uint32
	TracedInstr  uint64 // machine instructions of the traced run (dilation)
	// TracedCycles is total machine time of the traced run including
	// analysis phases; AnalysisCycles is the analysis-phase share.
	TracedCycles   uint64
	AnalysisCycles uint64
	// OverlapCycles is analysis work retired concurrently with
	// generation under the streaming drain (zero in two-phase mode);
	// Stream is the epoch ring's accounting for the run.
	OverlapCycles uint64
	Stream        kernel.StreamStats
	Sim           *memsys.TraceSim
	Parser        *trace.Parser
	// Conformance is the offline trace↔CFG check run over the same raw
	// stream the parser consumed. Diagnostics are reported, not fatal:
	// the prediction is still computed from whatever parsed.
	Conformance *tracecheck.Result
	// BlockCost maps each recorded block's original address to its
	// static per-entry trace cost in words (1 + |Mem|), from the same
	// side tables the parser decodes with. With Parser.BlockCounts it
	// validates the static cost model's table against the stream.
	BlockCost map[uint32]uint32
}

// StaticWords applies the static per-block cost table to the observed
// per-block entry counts: Σ counts(b)·(1+|Mem(b)|). This is the
// dataflow cost model's prediction of the stream size given only the
// execution mix; the residual against Parser.Words is stream overhead
// the table does not model (epoch markers, resynchronization dirt,
// blocks interrupted mid-record by exceptions).
func (p *Predicted) StaticWords() uint64 {
	var sum uint64
	for addr, n := range p.Parser.BlockCounts() {
		sum += n * uint64(p.BlockCost[addr])
	}
	return sum
}

// StaticWordErr is the signed relative error of the static cost table
// against the words the parser actually consumed, as a fraction.
func (p *Predicted) StaticWordErr() float64 {
	if p.Parser == nil || p.Parser.Words == 0 {
		return 0
	}
	return float64(p.StaticWords())/float64(p.Parser.Words) - 1
}

// Predict runs the traced system, streams the trace through the
// parsing library into the trace-driven simulator, runs the pixie
// count-mode binary for arithmetic stalls, and assembles the predicted
// execution time from its four components (§5.1).
func Predict(spec workload.Spec, flavor kernel.Flavor, seed uint32) (*Predicted, error) {
	return PredictT(spec, flavor, seed, nil)
}

// PredictT is Predict with the run's subsystems — traced machine,
// kernel trace driver, parser, and analysis-side simulator —
// registered on reg (which may be nil) under a run="traced" label plus
// any extra labels (see MeasureT).
func PredictT(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	reg *telemetry.Registry, extra ...telemetry.Label) (*Predicted, error) {
	return predictWith(spec, flavor, seed, kernel.StreamConfig{}, 0, reg, extra...)
}

// PredictWith is Predict under a drain configuration: the trace flows
// through the epoch-ring streaming path — compressed on the wire when
// stream.Compress is set — with the analysis running on the consumer
// goroutine instead of charging stop-the-world analysis cycles.
func PredictWith(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	stream kernel.StreamConfig) (*Predicted, error) {
	return predictWith(spec, flavor, seed, stream, 0, nil)
}

// PredictStream is PredictWith with a non-default trace-buffer size
// (bufBytes of 0 keeps the standard buffer). Harnesses use smaller
// buffers to force multi-epoch rings: with the 4 MB default a short
// workload drains once at the final flush, which exercises the wire
// format but not the pipeline.
func PredictStream(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	bufBytes uint32, stream kernel.StreamConfig) (*Predicted, error) {
	return predictWith(spec, flavor, seed, stream, bufBytes, nil)
}

func predictWith(spec workload.Spec, flavor kernel.Flavor, seed uint32,
	stream kernel.StreamConfig, bufBytes uint32, reg *telemetry.Registry, extra ...telemetry.Label) (*Predicted, error) {
	sp := obs.BeginDetail("predict_run", fmt.Sprintf("%s/%v/seed%d", spec.Name, flavor, seed))
	defer sp.End()
	sys, pid, err := boot(spec, flavor, true, seed, nil, stream, bufBytes)
	if err != nil {
		return nil, err
	}

	// Side tables: kernel + every traced process image.
	p := trace.NewParser(trace.NewSideTable(sys.Kernel.Instr.Blocks))
	// Per-block entry counts feed the static cost model's validation
	// (predicted words per entry × observed entries vs. words seen).
	p.CountBlocks()
	costWords := map[uint32]uint32{}
	for bi := range sys.Kernel.Instr.Blocks {
		b := &sys.Kernel.Instr.Blocks[bi]
		costWords[b.OrigAddr] = uint32(1 + len(b.Mem))
	}
	for i, bp := range sys.Procs {
		if bp.Exe.Instr != nil {
			p.AddProcess(i+1, trace.NewSideTable(bp.Exe.Instr.Blocks))
			for bi := range bp.Exe.Instr.Blocks {
				b := &bp.Exe.Instr.Blocks[bi]
				costWords[b.OrigAddr] = uint32(1 + len(b.Mem))
			}
		}
	}
	policy := memsys.PolicySequential
	if flavor == kernel.Mach {
		policy = memsys.PolicyRandom
	}
	sim := memsys.NewTraceSim(memsys.DECstation5000(), policy,
		kernel.DefaultBoot(flavor).RAMBytes>>12, seed)

	labels := append([]telemetry.Label{telemetry.L("run", "traced")}, extra...)
	sys.M.CPU.RegisterMetrics(reg, labels...)
	sys.M.RegisterMetrics(reg, labels...)
	sys.AttachTelemetry(reg, labels...)
	p.RegisterMetrics(reg, labels...)
	sim.RegisterMetrics(reg, labels...)

	chk, err := conformanceChecker(fmt.Sprintf("%s/%v", spec.Name, flavor), sys)
	if err != nil {
		return nil, err
	}

	var events uint64
	var perr, cerr error
	buf := make([]trace.Event, 0, 1<<16)
	compressed := stream.Enabled() && stream.Compress
	if compressed {
		// The conformance gate consumes the wire bytes themselves, so
		// encoder, handoff, and decode are all under the check.
		sys.OnEpoch = func(enc []byte) {
			if cerr == nil {
				cerr = chk.CheckCompressed(enc)
			}
		}
	}
	sys.OnTrace = func(words []uint32) {
		// Nests under the kernel host's trace_drain span (or the
		// streaming consumer's epoch span): the memory-system analysis
		// share of each drain is visible per epoch.
		asp := obs.Begin("trace_analysis")
		defer asp.End()
		if !compressed {
			chk.Check(words)
		}
		if perr != nil {
			return
		}
		var evs []trace.Event
		evs, perr = p.Parse(words, buf[:0])
		if perr != nil {
			return
		}
		events += uint64(len(evs))
		sim.Events(evs)
	}
	if err := sys.Run(runBudget); err != nil {
		return nil, fmt.Errorf("predict %s/%v: %w", spec.Name, flavor, err)
	}
	if perr != nil {
		return nil, fmt.Errorf("predict %s/%v: %w", spec.Name, flavor, perr)
	}
	if cerr != nil {
		return nil, fmt.Errorf("predict %s/%v: compressed stream: %w", spec.Name, flavor, cerr)
	}

	conf := chk.Finish()
	conf.RegisterMetrics(reg, labels...)

	arith, err := arithStalls(spec, kernel.Ultrix)
	if err != nil {
		return nil, err
	}

	cpu := sim.Instr - sim.IdleInstr
	io := sim.IdleInstr * IdleScale
	total := cpu + sim.MemStalls() + arith + io
	return &Predicted{
		Name:           spec.Name,
		Flavor:         flavor,
		CPUCycles:      cpu,
		MemStalls:      sim.MemStalls(),
		ArithStalls:    arith,
		IOStalls:       io,
		Cycles:         total,
		Seconds:        machine.Seconds(total),
		IdleInstr:      sim.IdleInstr,
		TraceWords:     sys.DrainedWords,
		Events:         events,
		UTLBMisses:     sim.TLB.Misses,
		ModeSwitches:   sys.Doorbells,
		Result:         sys.ExitStatus(pid),
		TracedInstr:    sys.M.CPU.Stat.Instret,
		TracedCycles:   sys.M.Cycles(),
		AnalysisCycles: sys.M.ExtraCycles(),
		OverlapCycles:  sys.M.OverlapCycles(),
		Stream:         sys.StreamStats,
		Sim:            sim,
		Parser:         p,
		Conformance:    conf,
		BlockCost:      costWords,
	}, nil
}

// arithStalls returns the pixie arithmetic-stall estimate for the
// workload, memoized per (workload, flavor): the count-mode run is
// deterministic and both systems' predictions charge the same term, so
// the suite performs it once.
func arithStalls(spec workload.Spec, flavor kernel.Flavor) (uint64, error) {
	e := cacheEntry(arithCache, fmt.Sprintf("%s-%v", spec.Name, flavor))
	e.once.Do(func() {
		e.val, e.err = runArithStalls(spec, flavor)
	})
	return e.val, e.err
}

// runArithStalls runs the pixie basic-block counting binary and
// charges each block's floating-point latency by its execution count —
// "Pixie was used to estimate arithmetic stalls, as the tracing system
// does not measure these events" (§5.1).
func runArithStalls(spec workload.Spec, flavor kernel.Flavor) (uint64, error) {
	prog, err := program(spec)
	if err != nil {
		return 0, err
	}
	res, err := pixie.RewriteWithBook(prog.Orig, pixie.ModeCount, trace.UserTraceVA)
	if err != nil {
		return 0, err
	}
	sys, _, err := boot(spec, flavor, false, 1, res.Exe, kernel.StreamConfig{}, 0)
	if err != nil {
		return 0, err
	}
	if err := sys.Run(runBudget); err != nil {
		return 0, fmt.Errorf("pixie count %s: %w", spec.Name, err)
	}
	pid := 1
	if flavor == kernel.Mach {
		pid = 2
	}
	// Static FP latency per original block, weighted by count.
	var stalls uint64
	for bi := range prog.Orig.Blocks {
		b := &prog.Orig.Blocks[bi]
		cnt, ok := sys.ReadUserWord(pid, res.CountsVA+uint32(bi)*4)
		if !ok || cnt == 0 {
			continue
		}
		var lat uint64
		for k := int32(0); k < b.NInstr; k++ {
			w := prog.Orig.Text[(b.Addr-prog.Orig.TextBase)/4+uint32(k)]
			lat += uint64(isa.FPLatency(w))
		}
		stalls += uint64(cnt) * lat
	}
	return stalls, nil
}
