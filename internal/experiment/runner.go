package experiment

// The run orchestrator. The paper's evaluation asks for the same
// simulations over and over — Table 2 and Table 3 share all of their
// runs, the dilation study repeats Table 1's measurements, the error
// anatomy re-runs Table 2's outliers — and a full simulated run takes
// seconds. The Runner makes the suite cost exactly one simulation per
// unique (kind, workload, flavor, seed) configuration: results are
// memoized behind singleflight deduplication (the first submitter owns
// the run, later submitters wait for it), and distinct runs execute on
// a bounded worker pool.
//
// Concurrency audit (what makes parallel runs safe):
//
//   - Build products (*obj.Executable, *userland.Program) are shared
//     across concurrently booted Systems strictly read-only: kernel.Boot
//     and machine.LoadKernel copy text/data into the per-machine RAM and
//     never write back into the image; trace.NewSideTable takes
//     pointers into the shared Blocks slices but only reads them. The
//     build caches below (experiment.go) publish each product through a
//     per-entry sync.Once, and the cache lock is never held across a
//     build, so distinct images build in parallel.
//   - Everything mutable during a run — machine, CPU, RAM, devices,
//     kernel state, parser, memory-system simulators — is created per
//     run inside the worker goroutine and never escapes it.
//   - telemetry.Registry is safe for concurrent use (atomic handles,
//     locked registration/snapshot); the Runner still gives each run
//     its own registry, labeled with a run-id dimension (id=<RunKey>),
//     so series from different runs stay distinct when snapshots are
//     merged. The Runner's own counters are atomics, safe to sample
//     from any goroutine.
//   - Results are published by closing the entry's done channel after
//     the last write, which orders them before any waiter's read.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"systrace/internal/kernel"
	"systrace/internal/obs"
	"systrace/internal/telemetry"
	"systrace/internal/workload"
)

// RunKind distinguishes the memoized simulation types.
type RunKind uint8

const (
	// RunMeasure is a direct measurement of the uninstrumented system.
	RunMeasure RunKind = iota
	// RunPredict is a traced run plus trace-driven prediction.
	RunPredict
)

func (k RunKind) String() string {
	if k == RunMeasure {
		return "measure"
	}
	return "predict"
}

// RunKey identifies one unique simulation. The pixie count-mode runs
// behind Predict's arithmetic-stall term are memoized separately, per
// (workload, flavor), in the package build caches.
type RunKey struct {
	Kind   RunKind
	Spec   string
	Flavor kernel.Flavor
	Seed   uint32
}

func (k RunKey) String() string {
	return fmt.Sprintf("%v:%s:%v:%d", k.Kind, k.Spec, k.Flavor, k.Seed)
}

// runCall is one singleflight entry. The owning worker fills the
// result fields and then closes done; waiters block on done.
type runCall struct {
	done chan struct{}
	meas *Measured
	pred *Predicted
	snap telemetry.Snapshot
	err  error
}

// Stats summarizes a Runner's activity.
type Stats struct {
	Requested uint64 // runs submitted (including duplicates)
	Executed  uint64 // unique simulations actually performed
	Workers   int
}

// Deduplicated returns the submissions served without a simulation.
func (s Stats) Deduplicated() uint64 { return s.Requested - s.Executed }

// Runner executes Measure/Predict runs on a bounded worker pool with
// per-key memoization. The zero value is not usable; use NewRunner.
// All methods are safe for concurrent use.
type Runner struct {
	workers int
	runTel  bool

	sem chan struct{}

	mu    sync.Mutex
	calls map[RunKey]*runCall

	requested atomic.Uint64
	executed  atomic.Uint64
}

// NewRunner returns a Runner executing at most workers simulations
// concurrently; workers <= 0 means GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers: workers,
		sem:     make(chan struct{}, workers),
		calls:   map[RunKey]*runCall{},
	}
}

// EnableRunTelemetry makes every subsequent unique run carry its own
// telemetry.Registry (labeled id=<RunKey>); the per-run snapshots are
// available from Snapshots afterwards. Call before submitting runs.
func (r *Runner) EnableRunTelemetry() { r.runTel = true }

// Stats returns the Runner's submission counters. Safe to call while
// runs are in flight.
func (r *Runner) Stats() Stats {
	return Stats{
		Requested: r.requested.Load(),
		Executed:  r.executed.Load(),
		Workers:   r.workers,
	}
}

// RegisterMetrics exposes the Runner's counters on reg: requested and
// executed runs, from which the memoization rate follows. The counters
// are atomics, so sampling is safe while runs are in flight.
func (r *Runner) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	reg.Sample("runner_runs_requested_total",
		"simulation runs submitted to the orchestrator, duplicates included",
		func() uint64 { return r.requested.Load() }, labels...)
	reg.Sample("runner_runs_executed_total",
		"unique simulations performed (everything else was memoized)",
		func() uint64 { return r.executed.Load() }, labels...)
}

// Snapshots returns the telemetry snapshot of every completed run, by
// key. Empty unless EnableRunTelemetry was called. Snapshots of runs
// still in flight are not included.
func (r *Runner) Snapshots() map[RunKey]telemetry.Snapshot {
	r.mu.Lock()
	calls := make(map[RunKey]*runCall, len(r.calls))
	for k, c := range r.calls {
		calls[k] = c
	}
	r.mu.Unlock()
	out := map[RunKey]telemetry.Snapshot{}
	for k, c := range calls {
		select {
		case <-c.done:
			if len(c.snap.Metrics) > 0 {
				out[k] = c.snap
			}
		default:
		}
	}
	return out
}

// submit returns the entry for key, starting its run if this is the
// first submission.
func (r *Runner) submit(key RunKey, spec workload.Spec) *runCall {
	r.requested.Add(1)
	r.mu.Lock()
	if c, ok := r.calls[key]; ok {
		r.mu.Unlock()
		return c
	}
	c := &runCall{done: make(chan struct{})}
	r.calls[key] = c
	r.mu.Unlock()
	go r.execute(key, spec, c)
	return c
}

// execute performs one unique run on a worker slot.
func (r *Runner) execute(key RunKey, spec workload.Spec, c *runCall) {
	r.sem <- struct{}{}
	// Opened after the worker slot is acquired so the span measures
	// the run, not time queued behind the semaphore; measure_run /
	// predict_run and the machine phases nest under it (same
	// goroutine), keeping each parallel job's sub-spans attached to
	// its own job in the timeline.
	sp := obs.BeginDetail("runner_job", key.String())
	defer func() {
		sp.End()
		<-r.sem
		close(c.done)
	}()
	r.executed.Add(1)
	var reg *telemetry.Registry
	if r.runTel {
		reg = telemetry.New()
	}
	id := telemetry.L("id", key.String())
	switch key.Kind {
	case RunMeasure:
		c.meas, c.err = MeasureT(spec, key.Flavor, key.Seed, reg, id)
	case RunPredict:
		c.pred, c.err = PredictT(spec, key.Flavor, key.Seed, reg, id)
	}
	if reg != nil {
		c.snap = reg.Snapshot()
	}
}

// StartMeasure submits a measurement without waiting for it. Use it to
// warm the pool with a table's whole run set before collecting.
func (r *Runner) StartMeasure(spec workload.Spec, flavor kernel.Flavor, seed uint32) {
	r.submit(RunKey{RunMeasure, spec.Name, flavor, seed}, spec)
}

// StartPredict submits a prediction without waiting for it.
func (r *Runner) StartPredict(spec workload.Spec, flavor kernel.Flavor, seed uint32) {
	r.submit(RunKey{RunPredict, spec.Name, flavor, seed}, spec)
}

// Measure returns the memoized direct measurement for the
// configuration, running it if needed. The result is shared: callers
// must treat it (including Timing) as read-only.
func (r *Runner) Measure(spec workload.Spec, flavor kernel.Flavor, seed uint32) (*Measured, error) {
	c := r.submit(RunKey{RunMeasure, spec.Name, flavor, seed}, spec)
	<-c.done
	return c.meas, c.err
}

// Predict returns the memoized trace-driven prediction for the
// configuration, running it if needed. The result is shared: callers
// must treat it (including Sim and Parser) as read-only.
func (r *Runner) Predict(spec workload.Spec, flavor kernel.Flavor, seed uint32) (*Predicted, error) {
	c := r.submit(RunKey{RunPredict, spec.Name, flavor, seed}, spec)
	<-c.done
	return c.pred, c.err
}
