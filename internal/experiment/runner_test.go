package experiment_test

import (
	"reflect"
	"sync"
	"testing"

	"systrace/internal/experiment"
	"systrace/internal/kernel"
	"systrace/internal/telemetry"
)

// TestRunnerParallelMatchesSequential guards the concurrency audit:
// Measure and Predict for two workloads, issued from parallel
// goroutines through one Runner, must produce exactly the results the
// sequential direct path does.
func TestRunnerParallelMatchesSequential(t *testing.T) {
	specs := specsFor(t, "sed", "lisp")

	type key struct {
		name string
		kind experiment.RunKind
	}
	seqMeas := map[key]*experiment.Measured{}
	seqPred := map[key]*experiment.Predicted{}
	for _, s := range specs {
		meas, err := experiment.Measure(s, kernel.Ultrix, 1)
		if err != nil {
			t.Fatal(err)
		}
		seqMeas[key{s.Name, experiment.RunMeasure}] = meas
		pred, err := experiment.Predict(s, kernel.Ultrix, 2)
		if err != nil {
			t.Fatal(err)
		}
		seqPred[key{s.Name, experiment.RunPredict}] = pred
	}

	r := experiment.NewRunner(4)
	var wg sync.WaitGroup
	var mu sync.Mutex
	parMeas := map[key]*experiment.Measured{}
	parPred := map[key]*experiment.Predicted{}
	errs := make(chan error, 4*len(specs))
	for _, s := range specs {
		s := s
		// Two goroutines per kind so the singleflight dedup path is
		// exercised too, not just distinct keys.
		for i := 0; i < 2; i++ {
			wg.Add(2)
			go func() {
				defer wg.Done()
				meas, err := r.Measure(s, kernel.Ultrix, 1)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				parMeas[key{s.Name, experiment.RunMeasure}] = meas
				mu.Unlock()
			}()
			go func() {
				defer wg.Done()
				pred, err := r.Predict(s, kernel.Ultrix, 2)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				parPred[key{s.Name, experiment.RunPredict}] = pred
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for _, s := range specs {
		sm := seqMeas[key{s.Name, experiment.RunMeasure}]
		pm := parMeas[key{s.Name, experiment.RunMeasure}]
		if sm.Result != pm.Result || sm.Seconds != pm.Seconds ||
			sm.Instr != pm.Instr || sm.UTLBMisses != pm.UTLBMisses ||
			!reflect.DeepEqual(sm.Timing, pm.Timing) {
			t.Errorf("%s: parallel Measure diverged from sequential:\nseq %+v\npar %+v",
				s.Name, sm, pm)
		}
		sp := seqPred[key{s.Name, experiment.RunPredict}]
		pp := parPred[key{s.Name, experiment.RunPredict}]
		if sp.Result != pp.Result || sp.Seconds != pp.Seconds ||
			sp.TracedInstr != pp.TracedInstr || sp.TraceWords != pp.TraceWords ||
			sp.UTLBMisses != pp.UTLBMisses || sp.Events != pp.Events {
			t.Errorf("%s: parallel Predict diverged from sequential", s.Name)
		}
	}

	if s := r.Stats(); s.Executed != uint64(2*len(specs)) {
		t.Errorf("Executed = %d, want %d (one per unique key)", s.Executed, 2*len(specs))
	} else if s.Requested != uint64(4*len(specs)) {
		t.Errorf("Requested = %d, want %d", s.Requested, 4*len(specs))
	}
}

// TestRunnerExactlyOnce checks the suite-level dedup claim: Table2 and
// Table3 share their entire run set, so running both on one Runner
// simulates each configuration exactly once, visible in both Stats and
// the registered telemetry counters.
func TestRunnerExactlyOnce(t *testing.T) {
	specs := specsFor(t, "sed")
	r := experiment.NewRunner(2)
	reg := telemetry.New()
	r.RegisterMetrics(reg)

	if _, err := r.Table2(specs); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Table3(specs); err != nil {
		t.Fatal(err)
	}

	s := r.Stats()
	// 1 spec x 2 flavors x (measure + predict) = 4 unique runs; each
	// table submits the set twice (prefetch, then collect), so 16
	// requests resolve to 4 simulations.
	if s.Executed != 4 {
		t.Errorf("Executed = %d, want 4", s.Executed)
	}
	if s.Requested != 16 {
		t.Errorf("Requested = %d, want 16", s.Requested)
	}
	snap := reg.Snapshot()
	if m, ok := snap.Get("runner_runs_executed_total"); !ok || m.Value != 4 {
		t.Errorf("runner_runs_executed_total = %v (ok=%v), want 4", m.Value, ok)
	}
	if m, ok := snap.Get("runner_runs_requested_total"); !ok || m.Value != 16 {
		t.Errorf("runner_runs_requested_total = %v (ok=%v), want 16", m.Value, ok)
	}
}

// TestRunnerRunTelemetry checks the per-run registry labeling: each
// unique run gets its own snapshot, keyed and labeled by run id.
func TestRunnerRunTelemetry(t *testing.T) {
	specs := specsFor(t, "sed")
	r := experiment.NewRunner(2)
	r.EnableRunTelemetry()
	if _, err := r.Measure(specs[0], kernel.Ultrix, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Predict(specs[0], kernel.Ultrix, 2); err != nil {
		t.Fatal(err)
	}
	snaps := r.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("got %d run snapshots, want 2", len(snaps))
	}
	for key, snap := range snaps {
		if len(snap.Metrics) == 0 {
			t.Errorf("run %v: empty snapshot", key)
			continue
		}
		found := false
		for _, m := range snap.Metrics {
			if m.Labels["id"] == key.String() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("run %v: no series labeled id=%q", key, key.String())
		}
	}
}

// TestFormatTableDoesNotMutateHeader is the regression test for the
// dash-rule bug: FormatTable used to overwrite the caller's header
// slice in place.
func TestFormatTableDoesNotMutateHeader(t *testing.T) {
	header := []string{"workload", "sec"}
	want := []string{"workload", "sec"}
	out := experiment.FormatTable(header, [][]string{{"sed", "0.1234"}})
	if !reflect.DeepEqual(header, want) {
		t.Errorf("FormatTable mutated header: %q", header)
	}
	if out == "" {
		t.Error("empty table output")
	}
}

// TestPageMappingVarianceMeanFraction pins the SystemFraction fix: the
// reported fraction must be the mean across seeds, not the last one.
func TestPageMappingVarianceMeanFraction(t *testing.T) {
	specs := specsFor(t, "sed")
	r := experiment.NewRunner(2)
	seeds := []uint32{3, 17}
	res, err := r.PageMappingVariance(specs[0], seeds)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, seed := range seeds {
		meas, err := r.Measure(specs[0], kernel.Mach, seed)
		if err != nil {
			t.Fatal(err)
		}
		want += float64(meas.Timing.KernelInstr) /
			float64(meas.Timing.KernelInstr+meas.Timing.UserInstr)
	}
	want /= float64(len(seeds))
	if res.SystemFraction != want {
		t.Errorf("SystemFraction = %v, want mean %v", res.SystemFraction, want)
	}
	if res.SystemFraction <= 0 || res.SystemFraction >= 1 {
		t.Errorf("SystemFraction = %v out of (0, 1)", res.SystemFraction)
	}
}
