package memsys_test

import (
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/memsys"
	"systrace/internal/trace"
)

// eventTap records the reference stream while also driving the
// execution-driven model, so the two sides see identical inputs.
type eventTap struct {
	tm  *memsys.Timing
	evs []trace.Event
}

func (o *eventTap) Fetch(va, pa uint32, k, c bool) {
	o.tm.Fetch(va, pa, k, c)
	if c {
		o.evs = append(o.evs, trace.Event{Kind: trace.EvIFetch, Addr: va, Size: 4, Kernel: k})
	}
}
func (o *eventTap) Load(va, pa uint32, s int, k, c bool) {
	o.tm.Load(va, pa, s, k, c)
	if c {
		o.evs = append(o.evs, trace.Event{Kind: trace.EvLoad, Addr: va, Size: int8(s), Kernel: k})
	}
}
func (o *eventTap) Store(va, pa uint32, s int, k, c bool) {
	o.tm.Store(va, pa, s, k, c)
	if c {
		o.evs = append(o.evs, trace.Event{Kind: trace.EvStore, Addr: va, Size: int8(s), Kernel: k})
	}
}
func (o *eventTap) Exception(code int, vector uint32) {}
func (o *eventTap) FPOp(l int)                        {}

// TestExecutionVsTraceDrivenConsistency: for a kseg0-only reference
// stream (identity translation, no TLB), the trace-driven cache models
// must produce exactly the miss counts the execution-driven models
// saw.
func TestExecutionVsTraceDrivenConsistency(t *testing.T) {
	cfg := memsys.DECstation5000()
	cfg.ExceptionEntryCycles = 0
	tap := &eventTap{tm: memsys.NewTiming(cfg)}

	// Synthesize a deterministic kseg0 access pattern with loops,
	// strides, and conflicts.
	var pc uint32 = cpu.KSeg0Base + 0x1000
	for rep := 0; rep < 3; rep++ {
		for i := uint32(0); i < 3000; i++ {
			va := pc + i*4%8192
			tap.Fetch(va, va-cpu.KSeg0Base, true, true)
			if i%3 == 0 {
				d := cpu.KSeg0Base + 0x200000 + i*64%(128<<10)
				tap.Load(d, d-cpu.KSeg0Base, 4, true, true)
			}
			if i%7 == 0 {
				d := cpu.KSeg0Base + 0x300000 + i*32%(64<<10)
				tap.Store(d, d-cpu.KSeg0Base, 4, true, true)
			}
		}
	}

	sim := memsys.NewTraceSim(cfg, memsys.PolicySequential, 16384, 1)
	sim.Events(tap.evs)

	if sim.IC.Misses != tap.tm.IC.Misses {
		t.Errorf("i-cache misses diverge: trace-driven %d, execution-driven %d",
			sim.IC.Misses, tap.tm.IC.Misses)
	}
	if sim.DC.Misses != tap.tm.DC.Misses {
		t.Errorf("d-cache misses diverge: trace-driven %d, execution-driven %d",
			sim.DC.Misses, tap.tm.DC.Misses)
	}
	if sim.WB.Writes != tap.tm.WB.Writes {
		t.Errorf("write counts diverge: %d vs %d", sim.WB.Writes, tap.tm.WB.Writes)
	}
	if sim.TLB.Misses != 0 {
		t.Errorf("kseg0 references must not touch the TLB (misses=%d)", sim.TLB.Misses)
	}
}
