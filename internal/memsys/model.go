// Package memsys models the DECstation 5000/200 memory system: 64 KB
// direct-mapped instruction and data caches, a write-through data path
// with a six-entry write buffer, a 64-entry software-managed TLB with
// random replacement, and the R3010-like floating-point latencies. The
// same models serve both sides of the paper's validation: an
// execution-driven instance attached to the CPU measures the
// "real" machine, and a trace-driven instance consumes parsed traces
// to produce the predictions of Tables 2 and 3.
package memsys

import "systrace/internal/cpu"

// Config describes the machine model. Penalties are in CPU cycles.
type Config struct {
	ICacheSize uint32
	DCacheSize uint32
	LineSize   uint32
	// ReadMissPenalty is charged per I- or D-cache read miss.
	ReadMissPenalty int
	// UncachedPenalty is charged per uncached (kseg1) reference.
	UncachedPenalty int
	// WriteBufferDepth entries drain one per WriteRetireCycles.
	WriteBufferDepth  int
	WriteRetireCycles int
	// ExceptionEntryCycles models pipeline drain on exception entry;
	// the trace-driven simulator deliberately does NOT include it
	// (§5.1: "the simulator does not account for cycles required to
	// enter and exit exception handlers").
	ExceptionEntryCycles int
	// ModelFPOverlap lets floating-point latency overlap write-buffer
	// drain, as the real pipeline does; the trace-driven predictor
	// does not model this either (§5.1, the liv error).
	ModelFPOverlap bool
}

// DECstation5000 is the validated machine model.
func DECstation5000() Config {
	return Config{
		ICacheSize:           64 << 10,
		DCacheSize:           64 << 10,
		LineSize:             16,
		ReadMissPenalty:      15,
		UncachedPenalty:      15,
		WriteBufferDepth:     6,
		WriteRetireCycles:    5,
		ExceptionEntryCycles: 10,
		ModelFPOverlap:       true,
	}
}

// Cache is a direct-mapped, physically indexed cache.
type Cache struct {
	tags      []uint32
	lineShift uint32
	mask      uint32

	Accesses uint64
	Misses   uint64
}

// NewCache builds a direct-mapped cache of size bytes with the given
// line size (both powers of two).
func NewCache(size, line uint32) *Cache {
	nlines := size / line
	c := &Cache{tags: make([]uint32, nlines), mask: nlines - 1}
	for l := line; l > 1; l >>= 1 {
		c.lineShift++
	}
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
	}
	return c
}

// Access looks up pa; on a miss the line is filled. Reports hit.
func (c *Cache) Access(pa uint32) bool {
	c.Accesses++
	lineAddr := pa >> c.lineShift
	idx := lineAddr & c.mask
	if c.tags[idx] == lineAddr {
		return true
	}
	c.tags[idx] = lineAddr
	c.Misses++
	return false
}

// Probe looks up pa without filling.
func (c *Cache) Probe(pa uint32) bool {
	lineAddr := pa >> c.lineShift
	return c.tags[lineAddr&c.mask] == lineAddr
}

// Update refreshes a line only if present (write-through,
// no-write-allocate stores).
func (c *Cache) Update(pa uint32) bool { return c.Probe(pa) }

// Flush invalidates everything.
func (c *Cache) Flush() {
	for i := range c.tags {
		c.tags[i] = ^uint32(0)
	}
}

// MissRate returns misses/accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// WriteBuffer models the write-through path: entries retire at a fixed
// rate; a store arriving with the buffer full stalls the CPU until a
// slot frees.
type WriteBuffer struct {
	depth  int
	retire uint64
	// doneAt holds completion cycles of in-flight writes (FIFO).
	doneAt []uint64
	last   uint64

	Writes      uint64
	StallCycles uint64
}

// NewWriteBuffer builds a buffer of the given depth and per-entry
// retire time.
func NewWriteBuffer(depth, retireCycles int) *WriteBuffer {
	return &WriteBuffer{depth: depth, retire: uint64(retireCycles)}
}

// Write records a store issued at cycle now and returns the stall.
func (w *WriteBuffer) Write(now uint64) (stall uint64) {
	w.Writes++
	// Drain retired entries.
	for len(w.doneAt) > 0 && w.doneAt[0] <= now {
		w.doneAt = w.doneAt[1:]
	}
	if len(w.doneAt) >= w.depth {
		stall = w.doneAt[0] - now
		now = w.doneAt[0]
		w.doneAt = w.doneAt[1:]
		w.StallCycles += stall
	}
	start := now
	if w.last > start {
		start = w.last
	}
	w.last = start + w.retire
	w.doneAt = append(w.doneAt, w.last)
	return stall
}

// PendingCycles estimates how many cycles of drain work remain at now
// (used for FP overlap modeling).
func (w *WriteBuffer) PendingCycles(now uint64) uint64 {
	if w.last <= now {
		return 0
	}
	return w.last - now
}

// rng is a deterministic xorshift32.
type rng struct{ s uint32 }

func newRNG(seed uint32) *rng {
	if seed == 0 {
		seed = 0x9e3779b9
	}
	return &rng{seed}
}

func (r *rng) next() uint32 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 17
	r.s ^= r.s << 5
	return r.s
}

// TLBSim models the 64-entry fully associative TLB with random
// replacement among the unwired entries, as the trace-driven simulator
// must ("we simulate the TLB, and use misses in the simulator to
// synthesize the activity of the UTLB miss handler", §4.1). The
// simulator "does not know about" explicit kernel TLB writes, so "all
// TLB fills are caused by TLB misses" (§5.2) — the acknowledged source
// of Table 3's prediction error.
type TLBSim struct {
	entries [cpu.NTLB]uint64 // (asid<<32 | vpn), ^0 = invalid
	r       *rng

	Accesses uint64
	Misses   uint64
}

// NewTLBSim builds a TLB simulator with a deterministic replacement
// stream.
func NewTLBSim(seed uint32) *TLBSim {
	t := &TLBSim{r: newRNG(seed)}
	for i := range t.entries {
		t.entries[i] = ^uint64(0)
	}
	return t
}

// Access looks up (asid, va); on a miss a random unwired entry is
// replaced. Reports hit.
func (t *TLBSim) Access(asid uint32, va uint32) bool {
	t.Accesses++
	key := uint64(asid)<<32 | uint64(va>>cpu.PageShift)
	for i := range t.entries {
		if t.entries[i] == key {
			return true
		}
	}
	t.Misses++
	idx := cpu.TLBWired + int(t.r.next()%(cpu.NTLB-cpu.TLBWired))
	t.entries[idx] = key
	return false
}

// Flush invalidates all entries (context-switch-free ASIDs make this
// rare; provided for completeness).
func (t *TLBSim) Flush() {
	for i := range t.entries {
		t.entries[i] = ^uint64(0)
	}
}

// PagePolicy selects virtual-to-physical page placement, which "can
// have significant impact on memory system behavior" (§4.2) because
// the caches are physically indexed.
type PagePolicy int

const (
	// PolicySequential allocates frames in first-touch order
	// (Ultrix-like).
	PolicySequential PagePolicy = iota
	// PolicyRandom picks random frames (Mach 3.0's random page
	// mapping, the repeatability hazard of §5.1).
	PolicyRandom
	// PolicyColoring picks frames whose cache color matches the
	// virtual page (Kessler/Hill-style page coloring).
	PolicyColoring
)

// PageMap implements a placement policy over a frame pool.
type PageMap struct {
	policy PagePolicy
	nframe uint32
	colors uint32
	r      *rng
	next   uint32
	m      map[uint64]uint32
}

// NewPageMap builds a map over nframe frames; colors is the number of
// page colors in the cache (cacheSize/pageSize) for PolicyColoring.
func NewPageMap(policy PagePolicy, nframe, colors uint32, seed uint32) *PageMap {
	return &PageMap{
		policy: policy,
		nframe: nframe,
		colors: colors,
		r:      newRNG(seed),
		m:      map[uint64]uint32{},
	}
}

// Frame returns the physical frame for (asid, vpage), assigning one on
// first touch.
func (p *PageMap) Frame(asid uint32, vpage uint32) uint32 {
	key := uint64(asid)<<32 | uint64(vpage)
	if f, ok := p.m[key]; ok {
		return f
	}
	var f uint32
	switch p.policy {
	case PolicySequential:
		f = p.next % p.nframe
		p.next++
	case PolicyRandom:
		f = p.r.next() % p.nframe
	case PolicyColoring:
		want := vpage % p.colors
		f = (p.r.next()%(p.nframe/p.colors))*p.colors + want
		f %= p.nframe
	}
	p.m[key] = f
	return f
}
