package memsys_test

import (
	"testing"
	"testing/quick"

	"systrace/internal/memsys"
	"systrace/internal/trace"
)

func TestCacheDirectMapped(t *testing.T) {
	c := memsys.NewCache(1024, 16) // 64 lines
	if c.Access(0x0000) {
		t.Error("cold miss reported as hit")
	}
	if !c.Access(0x0004) {
		t.Error("same line must hit")
	}
	if c.Access(0x0000 + 1024) {
		t.Error("conflicting line must miss")
	}
	if c.Access(0x0000) {
		t.Error("evicted line must miss")
	}
	if c.Misses != 3 || c.Accesses != 4 {
		t.Errorf("misses=%d accesses=%d", c.Misses, c.Accesses)
	}
}

func TestCacheProbeAndUpdateDontFill(t *testing.T) {
	c := memsys.NewCache(1024, 16)
	if c.Probe(0x40) {
		t.Error("probe hit on empty cache")
	}
	c.Update(0x40)
	if c.Probe(0x40) {
		t.Error("update of absent line must not fill (no write allocate)")
	}
}

func TestCacheInvariantHitAfterAccess(t *testing.T) {
	// Property: immediately re-accessing any address hits.
	c := memsys.NewCache(64<<10, 16)
	f := func(pa uint32) bool {
		c.Access(pa)
		return c.Access(pa)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWriteBufferStalls(t *testing.T) {
	wb := memsys.NewWriteBuffer(2, 10)
	if s := wb.Write(0); s != 0 {
		t.Errorf("first write stalled %d", s)
	}
	if s := wb.Write(1); s != 0 {
		t.Errorf("second write stalled %d", s)
	}
	// Buffer full: the third write at t=2 must wait for the first
	// retirement at t=10.
	if s := wb.Write(2); s != 8 {
		t.Errorf("third write stall = %d, want 8", s)
	}
	if wb.StallCycles != 8 {
		t.Errorf("accumulated stalls %d", wb.StallCycles)
	}
	// Far in the future everything has drained.
	if s := wb.Write(1000); s != 0 {
		t.Errorf("drained buffer stalled %d", s)
	}
}

func TestTLBSimBasics(t *testing.T) {
	tl := memsys.NewTLBSim(7)
	if tl.Access(1, 0x1000) {
		t.Error("cold TLB hit")
	}
	if !tl.Access(1, 0x1fff) {
		t.Error("same page must hit")
	}
	if tl.Access(2, 0x1000) {
		t.Error("different asid must miss")
	}
	if tl.Misses != 2 {
		t.Errorf("misses=%d", tl.Misses)
	}
}

func TestTLBSimCapacity(t *testing.T) {
	tl := memsys.NewTLBSim(3)
	// Touch far more pages than entries; then a re-walk must miss
	// sometimes (random replacement), i.e. misses strictly grow.
	for i := uint32(0); i < 200; i++ {
		tl.Access(1, i<<12)
	}
	before := tl.Misses
	for i := uint32(0); i < 200; i++ {
		tl.Access(1, i<<12)
	}
	if tl.Misses == before {
		t.Error("200 pages cannot all fit a 64-entry TLB")
	}
}

func TestPageMapPolicies(t *testing.T) {
	for _, pol := range []memsys.PagePolicy{memsys.PolicySequential, memsys.PolicyRandom, memsys.PolicyColoring} {
		pm := memsys.NewPageMap(pol, 1024, 16, 5)
		a := pm.Frame(1, 100)
		if pm.Frame(1, 100) != a {
			t.Errorf("policy %v: placement not stable", pol)
		}
		if pm.Frame(2, 100) == a && pol == memsys.PolicySequential {
			// Sequential gives distinct frames to distinct spaces.
			t.Errorf("policy %v: spaces share frames", pol)
		}
		if f := pm.Frame(1, 200); f >= 1024 {
			t.Errorf("frame %d out of pool", f)
		}
	}
	// Coloring preserves the page color.
	pm := memsys.NewPageMap(memsys.PolicyColoring, 1024, 16, 9)
	for vp := uint32(0); vp < 64; vp++ {
		if f := pm.Frame(1, vp); f%16 != vp%16 {
			t.Errorf("coloring: vpage %d -> frame %d (color %d != %d)", vp, f, f%16, vp%16)
		}
	}
}

func TestTraceSimSynthesizesUTLB(t *testing.T) {
	sim := memsys.NewTraceSim(memsys.DECstation5000(), memsys.PolicySequential, 4096, 1)
	// One user fetch: TLB miss, so the simulator adds the refill
	// handler's instructions on top of the traced one.
	sim.Event(trace.Event{Kind: trace.EvIFetch, Addr: 0x400000, Size: 4, AS: 1})
	if sim.TLB.Misses != 1 {
		t.Fatalf("expected 1 simulated miss, got %d", sim.TLB.Misses)
	}
	if sim.Instr != 1+uint64(sim.UTLBHandlerN) {
		t.Errorf("instr=%d want %d (traced + synthesized handler)", sim.Instr, 1+sim.UTLBHandlerN)
	}
	// Second fetch on the same page: no synthesis.
	before := sim.Instr
	sim.Event(trace.Event{Kind: trace.EvIFetch, Addr: 0x400004, Size: 4, AS: 1})
	if sim.Instr != before+1 {
		t.Error("synthesis on a TLB hit")
	}
}

func TestTraceSimIdleCounting(t *testing.T) {
	sim := memsys.NewTraceSim(memsys.DECstation5000(), memsys.PolicySequential, 4096, 1)
	sim.Event(trace.Event{Kind: trace.EvIFetch, Addr: 0x80030000, Size: 4, Kernel: true, Idle: true})
	sim.Event(trace.Event{Kind: trace.EvIFetch, Addr: 0x80030004, Size: 4, Kernel: true})
	if sim.IdleInstr != 1 {
		t.Errorf("idle=%d", sim.IdleInstr)
	}
}

func TestTimingKernelUserSplit(t *testing.T) {
	tm := memsys.NewTiming(memsys.DECstation5000())
	tm.Fetch(0x80030000, 0x30000, true, true)
	tm.Fetch(0x400000, 0x5000, false, true)
	tm.Load(0x10000000, 0x6000, 4, false, true)
	tm.Store(0x10000004, 0x6004, 4, false, true)
	if tm.KernelInstr != 1 || tm.UserInstr != 1 {
		t.Errorf("split %d/%d", tm.KernelInstr, tm.UserInstr)
	}
	if tm.KernelCPI() <= 1.0 {
		t.Error("cold kernel fetch must cost more than one cycle")
	}
}

func TestTimingUncachedPenalty(t *testing.T) {
	cfg := memsys.DECstation5000()
	tm := memsys.NewTiming(cfg)
	tm.Load(0xbf000000, 0x1f000000, 4, true, false)
	if tm.UncachedStalls != uint64(cfg.UncachedPenalty) {
		t.Errorf("uncached stalls %d", tm.UncachedStalls)
	}
}

func TestTimingFPOverlap(t *testing.T) {
	cfg := memsys.DECstation5000()
	cfg.ModelFPOverlap = true
	tm := memsys.NewTiming(cfg)
	// Fill the write buffer so FP latency can hide behind the drain.
	for i := 0; i < 4; i++ {
		tm.Store(0x10000000+uint32(i*64), uint32(0x6000+i*64), 4, false, true)
	}
	tm.FPOp(18)
	if tm.FPOverlapped == 0 {
		t.Error("no FP/write-buffer overlap modeled")
	}
	// The predictor-side config must not overlap.
	cfg.ModelFPOverlap = false
	tm2 := memsys.NewTiming(cfg)
	for i := 0; i < 4; i++ {
		tm2.Store(0x10000000+uint32(i*64), uint32(0x6000+i*64), 4, false, true)
	}
	tm2.FPOp(18)
	if tm2.FPOverlapped != 0 || tm2.FPStalls != 18 {
		t.Error("overlap modeled when disabled")
	}
}
