package memsys

import (
	"systrace/internal/cpu"
	"systrace/internal/telemetry"
)

// Timing is the execution-driven machine model: attached as a
// cpu.Observer it sees every reference with its real physical address
// (the running kernel's actual page map), accumulates stall cycles,
// and contributes them to machine time. This is the "direct
// measurement" side of the paper's validation.
type Timing struct {
	cfg Config
	IC  *Cache
	DC  *Cache
	WB  *WriteBuffer

	instr  uint64
	stalls uint64

	// Per-category stalls.
	ICacheStalls   uint64
	DCacheStalls   uint64
	WBStalls       uint64
	UncachedStalls uint64
	FPStalls       uint64
	FPOverlapped   uint64
	ExcStalls      uint64

	// Kernel/user split for the CPI measurements (§3.4: kernel CPI
	// was three times user CPI on Tunix).
	KernelInstr  uint64
	UserInstr    uint64
	KernelStalls uint64
	UserStalls   uint64

	// wbStallHist, when registered, observes the length of each
	// write-buffer stall (nil-safe; plain adds).
	wbStallHist *telemetry.Histogram
}

var _ cpu.Observer = (*Timing)(nil)

// NewTiming builds the execution-driven model.
func NewTiming(cfg Config) *Timing {
	return &Timing{
		cfg: cfg,
		IC:  NewCache(cfg.ICacheSize, cfg.LineSize),
		DC:  NewCache(cfg.DCacheSize, cfg.LineSize),
		WB:  NewWriteBuffer(cfg.WriteBufferDepth, cfg.WriteRetireCycles),
	}
}

// StallCycles implements machine.Staller.
func (t *Timing) StallCycles() uint64 { return t.stalls }

// Instructions returns instructions observed (fetches).
func (t *Timing) Instructions() uint64 { return t.instr }

func (t *Timing) now() uint64 { return t.instr + t.stalls }

func (t *Timing) charge(c uint64, kernel bool) {
	t.stalls += c
	if kernel {
		t.KernelStalls += c
	} else {
		t.UserStalls += c
	}
}

// Fetch implements cpu.Observer.
func (t *Timing) Fetch(va, pa uint32, kernel, cached bool) {
	t.instr++
	if kernel {
		t.KernelInstr++
	} else {
		t.UserInstr++
	}
	if !cached {
		t.UncachedStalls += uint64(t.cfg.UncachedPenalty)
		t.charge(uint64(t.cfg.UncachedPenalty), kernel)
		return
	}
	if !t.IC.Access(pa) {
		t.ICacheStalls += uint64(t.cfg.ReadMissPenalty)
		t.charge(uint64(t.cfg.ReadMissPenalty), kernel)
	}
}

// Load implements cpu.Observer.
func (t *Timing) Load(va, pa uint32, size int, kernel, cached bool) {
	if !cached {
		t.UncachedStalls += uint64(t.cfg.UncachedPenalty)
		t.charge(uint64(t.cfg.UncachedPenalty), kernel)
		return
	}
	if !t.DC.Access(pa) {
		t.DCacheStalls += uint64(t.cfg.ReadMissPenalty)
		t.charge(uint64(t.cfg.ReadMissPenalty), kernel)
	}
}

// Store implements cpu.Observer.
func (t *Timing) Store(va, pa uint32, size int, kernel, cached bool) {
	if !cached {
		t.UncachedStalls += uint64(t.cfg.UncachedPenalty)
		t.charge(uint64(t.cfg.UncachedPenalty), kernel)
		return
	}
	t.DC.Update(pa) // write-through, no-write-allocate
	if s := t.WB.Write(t.now()); s > 0 {
		t.WBStalls += s
		t.charge(s, kernel)
		t.wbStallHist.Observe(s)
	}
}

// FPOp implements cpu.Observer: floating-point latency, optionally
// overlapped with write-buffer drain as on the real pipeline.
func (t *Timing) FPOp(latency int) {
	lat := uint64(latency)
	if lat == 0 {
		return
	}
	if t.cfg.ModelFPOverlap {
		if pend := t.WB.PendingCycles(t.now()); pend > 0 {
			ov := pend
			if ov > lat {
				ov = lat
			}
			t.FPOverlapped += ov
			lat -= ov
		}
	}
	t.FPStalls += lat
	t.charge(lat, false)
}

// Exception implements cpu.Observer.
func (t *Timing) Exception(code int, vector uint32) {
	c := uint64(t.cfg.ExceptionEntryCycles)
	t.ExcStalls += c
	t.charge(c, true)
}

// KernelCPI returns cycles per instruction for kernel-mode execution.
func (t *Timing) KernelCPI() float64 {
	if t.KernelInstr == 0 {
		return 0
	}
	return float64(t.KernelInstr+t.KernelStalls) / float64(t.KernelInstr)
}

// UserCPI returns cycles per instruction for user-mode execution.
func (t *Timing) UserCPI() float64 {
	if t.UserInstr == 0 {
		return 0
	}
	return float64(t.UserInstr+t.UserStalls) / float64(t.UserInstr)
}
