package memsys

import (
	"systrace/internal/cpu"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
)

// TraceSim is the trace-driven memory system simulator — the analysis
// program of Figure 1. It consumes parsed trace events (uninstrumented
// virtual addresses), applies its own page-mapping policy ("the most
// straightforward approach is to implement the desired page mapping
// policy in the simulator", §4.2), simulates the TLB and synthesizes
// the UTLB miss handler's activity (§4.1), and runs the same cache and
// write-buffer models as the execution-driven side.
type TraceSim struct {
	cfg Config
	IC  *Cache
	DC  *Cache
	WB  *WriteBuffer
	TLB *TLBSim
	PM  *PageMap

	// UTLBHandler is the address of the nine-instruction refill
	// handler whose activity is synthesized per simulated miss.
	UTLBHandler  uint32
	UTLBHandlerN int

	// Instr counts trace instructions plus synthesized handler
	// instructions; IdleInstr counts idle-loop instructions for the
	// I/O stall estimate.
	Instr     uint64
	IdleInstr uint64

	ICacheStalls   uint64
	DCacheStalls   uint64
	WBStalls       uint64
	UncachedStalls uint64

	// kseg2 (page-table) pages get frames from the same pool under a
	// reserved ASID.
	kseg2ASID uint32

	// wbStallHist, when registered, observes the length of each
	// write-buffer stall (nil-safe; plain adds).
	wbStallHist *telemetry.Histogram
}

// NewTraceSim builds the analysis-side simulator. nframe bounds the
// simulated frame pool (physical memory size / page size).
func NewTraceSim(cfg Config, policy PagePolicy, nframe uint32, seed uint32) *TraceSim {
	colors := cfg.DCacheSize >> cpu.PageShift
	if colors == 0 {
		colors = 1
	}
	return &TraceSim{
		cfg:          cfg,
		IC:           NewCache(cfg.ICacheSize, cfg.LineSize),
		DC:           NewCache(cfg.DCacheSize, cfg.LineSize),
		WB:           NewWriteBuffer(cfg.WriteBufferDepth, cfg.WriteRetireCycles),
		TLB:          NewTLBSim(seed*2 + 1),
		PM:           NewPageMap(policy, nframe, colors, seed),
		UTLBHandler:  cpu.VecUTLB,
		UTLBHandlerN: 9,
		kseg2ASID:    0xff,
	}
}

// MemStalls returns total memory-system stall cycles.
func (s *TraceSim) MemStalls() uint64 {
	return s.ICacheStalls + s.DCacheStalls + s.WBStalls + s.UncachedStalls
}

func (s *TraceSim) now() uint64 { return s.Instr + s.MemStalls() }

// translate maps an event address to a simulated physical address,
// simulating the TLB for mapped segments.
func (s *TraceSim) translate(ev *trace.Event) (pa uint32, cached bool) {
	a := ev.Addr
	switch {
	case a < cpu.KUSegEnd:
		asid := uint32(ev.AS)
		if !s.TLB.Access(asid, a) {
			s.synthesizeUTLB(asid, a)
		}
		return s.PM.Frame(asid, a>>cpu.PageShift)<<cpu.PageShift | a&(cpu.PageSize-1), true
	case a < cpu.KSeg1Base:
		return a - cpu.KSeg0Base, true
	case a < cpu.KSeg2Base:
		return a - cpu.KSeg1Base, false
	default:
		return s.PM.Frame(s.kseg2ASID, a>>cpu.PageShift)<<cpu.PageShift | a&(cpu.PageSize-1), true
	}
}

// synthesizeUTLB feeds the refill handler's references through the
// model: its instructions (kseg0) and its page-table load (kseg2).
// The handler itself is never traced; "rather than tracing the UTLB
// miss handler, we simulate the TLB, and use misses in the simulator
// to synthesize the activity of the UTLB miss handler" (§4.1).
func (s *TraceSim) synthesizeUTLB(asid uint32, va uint32) {
	for k := 0; k < s.UTLBHandlerN; k++ {
		s.Instr++
		if !s.IC.Access(s.UTLBHandler - cpu.KSeg0Base + uint32(k)*4) {
			s.ICacheStalls += uint64(s.cfg.ReadMissPenalty)
		}
	}
	// Page-table entry load from the kseg2 linear map.
	pteVA := cpu.KSeg2Base + (uint32(asid)<<10+va>>22)<<cpu.PageShift + va>>10&0xffc
	pa := s.PM.Frame(s.kseg2ASID, pteVA>>cpu.PageShift)<<cpu.PageShift | pteVA&(cpu.PageSize-1)
	if !s.DC.Access(pa) {
		s.DCacheStalls += uint64(s.cfg.ReadMissPenalty)
	}
}

// Event consumes one parsed trace event.
func (s *TraceSim) Event(ev trace.Event) {
	switch ev.Kind {
	case trace.EvIFetch:
		s.Instr++
		if ev.Idle {
			s.IdleInstr++
		}
		pa, cached := s.translate(&ev)
		if !cached {
			s.UncachedStalls += uint64(s.cfg.UncachedPenalty)
			return
		}
		if !s.IC.Access(pa) {
			s.ICacheStalls += uint64(s.cfg.ReadMissPenalty)
		}
	case trace.EvLoad:
		pa, cached := s.translate(&ev)
		if !cached {
			s.UncachedStalls += uint64(s.cfg.UncachedPenalty)
			return
		}
		if !s.DC.Access(pa) {
			s.DCacheStalls += uint64(s.cfg.ReadMissPenalty)
		}
	case trace.EvStore:
		pa, cached := s.translate(&ev)
		if !cached {
			s.UncachedStalls += uint64(s.cfg.UncachedPenalty)
			return
		}
		s.DC.Update(pa)
		if st := s.WB.Write(s.now()); st > 0 {
			s.WBStalls += st
			s.wbStallHist.Observe(st)
		}
	}
}

// Events consumes a batch.
func (s *TraceSim) Events(evs []trace.Event) {
	for _, ev := range evs {
		s.Event(ev)
	}
}
