package memsys

import "systrace/internal/telemetry"

// registerCacheWB registers the series shared by both model instances:
// cache hit/miss counts and the write-buffer stall histogram.
func registerCacheWB(r *telemetry.Registry, ic, dc *Cache, wb *WriteBuffer,
	labels []telemetry.Label) *telemetry.Histogram {
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(extra, labels...)
	}
	const accHelp = "cache accesses by cache"
	const missHelp = "cache misses by cache"
	r.Sample("memsys_cache_accesses_total", accHelp,
		func() uint64 { return ic.Accesses }, lab(telemetry.L("cache", "icache"))...)
	r.Sample("memsys_cache_misses_total", missHelp,
		func() uint64 { return ic.Misses }, lab(telemetry.L("cache", "icache"))...)
	r.Sample("memsys_cache_accesses_total", accHelp,
		func() uint64 { return dc.Accesses }, lab(telemetry.L("cache", "dcache"))...)
	r.Sample("memsys_cache_misses_total", missHelp,
		func() uint64 { return dc.Misses }, lab(telemetry.L("cache", "dcache"))...)
	r.Sample("memsys_wb_writes_total", "stores entering the write buffer",
		func() uint64 { return wb.Writes }, labels...)
	return r.Histogram("memsys_wb_stall_cycles",
		"write-buffer-full stall lengths in cycles (the liv error source, §5.1)",
		labels...)
}

// RegisterMetrics registers the execution-driven model's series:
// cache hit/miss counts, stall cycles by category, kernel/user
// instruction split, and a write-buffer stall histogram.
func (t *Timing) RegisterMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	if r == nil {
		return
	}
	t.wbStallHist = registerCacheWB(r, t.IC, t.DC, t.WB, labels)
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(extra, labels...)
	}
	const stallHelp = "memory-system stall cycles by category"
	for _, sc := range []struct {
		kind string
		v    *uint64
	}{
		{"icache", &t.ICacheStalls}, {"dcache", &t.DCacheStalls},
		{"write_buffer", &t.WBStalls}, {"uncached", &t.UncachedStalls},
		{"fp", &t.FPStalls}, {"exception", &t.ExcStalls},
	} {
		v := sc.v
		r.Sample("memsys_stall_cycles_total", stallHelp,
			func() uint64 { return *v }, lab(telemetry.L("kind", sc.kind))...)
	}
	const instrHelp = "instructions observed by the execution-driven model, by mode"
	r.Sample("memsys_instructions_total", instrHelp,
		func() uint64 { return t.KernelInstr }, lab(telemetry.L("mode", "kernel"))...)
	r.Sample("memsys_instructions_total", instrHelp,
		func() uint64 { return t.UserInstr }, lab(telemetry.L("mode", "user"))...)
}

// RegisterMetrics registers the trace-driven simulator's series: cache
// and TLB hit/miss counts, stall cycles by category, synthesized
// instruction counts, and a write-buffer stall histogram.
func (s *TraceSim) RegisterMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	if r == nil {
		return
	}
	s.wbStallHist = registerCacheWB(r, s.IC, s.DC, s.WB, labels)
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(extra, labels...)
	}
	const stallHelp = "memory-system stall cycles by category"
	for _, sc := range []struct {
		kind string
		v    *uint64
	}{
		{"icache", &s.ICacheStalls}, {"dcache", &s.DCacheStalls},
		{"write_buffer", &s.WBStalls}, {"uncached", &s.UncachedStalls},
	} {
		v := sc.v
		r.Sample("memsys_stall_cycles_total", stallHelp,
			func() uint64 { return *v }, lab(telemetry.L("kind", sc.kind))...)
	}
	r.Sample("memsys_tlb_accesses_total", "simulated TLB lookups",
		func() uint64 { return s.TLB.Accesses }, labels...)
	r.Sample("memsys_tlb_misses_total",
		"simulated TLB misses (synthesize the UTLB handler, §4.1; Table 3 predicted)",
		func() uint64 { return s.TLB.Misses }, labels...)
	r.Sample("memsys_sim_instructions_total",
		"instructions replayed by the trace-driven simulator (incl. synthesized handler)",
		func() uint64 { return s.Instr }, labels...)
	r.Sample("memsys_sim_idle_instructions_total",
		"idle-loop instructions replayed (scaled by IdleScale for I/O stalls)",
		func() uint64 { return s.IdleInstr }, labels...)
}
