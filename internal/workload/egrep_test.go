package workload_test

import (
	"testing"

	"systrace/internal/kernel"
	"systrace/internal/workload"
)

func TestEgrepEverywhere(t *testing.T) {
	spec, _ := workload.ByName("egrep")
	u := run(t, spec, kernel.Ultrix, false)
	ut := run(t, spec, kernel.Ultrix, true)
	mm := run(t, spec, kernel.Mach, false)
	mt := run(t, spec, kernel.Mach, true)
	t.Logf("ultrix=%d ultrix-traced=%d mach=%d mach-traced=%d", u, ut, mm, mt)
	if u != ut || u != mm || u != mt {
		t.Fail()
	}
}
