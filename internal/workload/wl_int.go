package workload

import (
	m "systrace/internal/mahler"
)

// Shared I/O idiom: open a file, process it in chunks through a global
// buffer, close. Reads are capped at 2048 bytes per call (within the
// UX server's per-message limit).
const chunk = 2048

// sedModule: the stream editor run three times over its input:
// replaces every occurrence of "abc" with "xyz" and writes the edited
// stream to standard output.
func sedModule() *m.Module {
	mod := newModule("sed")
	mod.Data("path", []byte("sed.in\x00"))
	mod.Global("buf", chunk)
	f := mod.Func("main", m.TInt)
	f.Locals("pass", "fd", "n", "i", "c", "subs", "state")
	f.Code(func(b *m.Block) {
		b.Assign("subs", m.I(0))
		b.For("pass", m.I(0), m.I(3), func(b *m.Block) {
			b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
			b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
			b.Assign("state", m.I(0))
			b.While(m.I(1), func(b *m.Block) {
				b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
				b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				// Pattern machine for "abc" -> "xyz" (in place).
				b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
					b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
					b.If(m.Eq(m.V("c"), m.I('a')), func(b *m.Block) {
						b.Assign("state", m.I(1))
					}, func(b *m.Block) {
						b.If(m.And(m.Eq(m.V("c"), m.I('b')), m.Eq(m.V("state"), m.I(1))), func(b *m.Block) {
							b.Assign("state", m.I(2))
						}, func(b *m.Block) {
							b.If(m.And(m.Eq(m.V("c"), m.I('c')), m.Eq(m.V("state"), m.I(2))), func(b *m.Block) {
								// Rewrite the three bytes.
								b.StoreB(m.Add(m.Addr("buf", 0), m.Sub(m.V("i"), m.I(2))), m.I('x'))
								b.StoreB(m.Add(m.Addr("buf", 0), m.Sub(m.V("i"), m.I(1))), m.I('y'))
								b.StoreB(m.Add(m.Addr("buf", 0), m.V("i")), m.I('z'))
								b.Assign("subs", m.Add(m.V("subs"), m.I(1)))
								b.Assign("state", m.I(0))
							}, func(b *m.Block) {
								b.Assign("state", m.I(0))
							})
						})
					})
				})
				b.Call("sys_write", m.I(1), m.Addr("buf", 0), m.V("n"))
			})
			b.Call("sys_close", m.V("fd"))
		})
		b.Return(m.V("subs"))
	})
	return mod
}

// egrepModule: pattern search run three times: counts lines containing
// the pattern "cache".
func egrepModule() *m.Module {
	mod := newModule("egrep")
	mod.Data("path", []byte("egrep.in\x00"))
	mod.Global("buf", chunk)
	f := mod.Func("main", m.TInt)
	f.Locals("pass", "fd", "n", "i", "c", "st", "hitline", "lines")
	f.Code(func(b *m.Block) {
		b.Assign("lines", m.I(0))
		pat := "cache"
		b.For("pass", m.I(0), m.I(3), func(b *m.Block) {
			b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
			b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
			b.Assign("st", m.I(0))
			b.Assign("hitline", m.I(0))
			b.While(m.I(1), func(b *m.Block) {
				b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
				b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
					b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
					b.If(m.Eq(m.V("c"), m.I('\n')), func(b *m.Block) {
						b.Assign("lines", m.Add(m.V("lines"), m.V("hitline")))
						b.Assign("hitline", m.I(0))
						b.Assign("st", m.I(0))
						b.Continue()
					}, nil)
					// DFA over the pattern.
					for si := 0; si < len(pat); si++ {
						siC := si
						b.If(m.And(m.Eq(m.V("st"), m.I(int32(siC))), m.Eq(m.V("c"), m.I(int32(pat[siC])))), func(b *m.Block) {
							b.Assign("st", m.I(int32(siC+1)))
							if siC == len(pat)-1 {
								b.Assign("hitline", m.I(1))
								b.Assign("st", m.I(0))
							}
							b.Continue()
						}, nil)
					}
					b.Assign("st", m.I(0))
					b.If(m.Eq(m.V("c"), m.I(int32(pat[0]))), func(b *m.Block) {
						b.Assign("st", m.I(1))
					}, nil)
				})
			})
			b.Call("sys_close", m.V("fd"))
		})
		b.Return(m.V("lines"))
	})
	return mod
}

// yaccModule: parser-generator-like table construction: reads the
// grammar, builds a 26x26 derivation matrix, and closes it to a
// fixpoint (transitive closure, the heart of LR set construction).
func yaccModule() *m.Module {
	mod := newModule("yacc")
	mod.Data("path", []byte("yacc.in\x00"))
	mod.Global("buf", chunk)
	mod.Global("deriv", 26*26*4)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "c", "lhs", "changed", "a", "bb", "cc", "prods", "sum")
	idx := func(i, j m.Expr) m.Expr {
		return m.Add(m.Addr("deriv", 0), m.Mul(m.Add(m.Mul(i, m.I(26)), j), m.I(4)))
	}
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("lhs", m.I(0))
		b.Assign("prods", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
				b.If(m.And(m.Ge(m.V("c"), m.I('A')), m.Le(m.V("c"), m.I('Z'))), func(b *m.Block) {
					b.If(m.Eq(m.V("lhs"), m.I(0)), func(b *m.Block) {
						b.Assign("lhs", m.Sub(m.V("c"), m.I('A'-1)))
						b.Assign("prods", m.Add(m.V("prods"), m.I(1)))
					}, func(b *m.Block) {
						b.StoreW(idx(m.Sub(m.V("lhs"), m.I(1)), m.Sub(m.V("c"), m.I('A'))), m.I(1))
					})
				}, nil)
				b.If(m.Eq(m.V("c"), m.I(';')), func(b *m.Block) {
					b.Assign("lhs", m.I(0))
				}, nil)
			})
		})
		b.Call("sys_close", m.V("fd"))
		// Transitive closure to a fixpoint.
		b.Assign("changed", m.I(1))
		b.While(m.Ne(m.V("changed"), m.I(0)), func(b *m.Block) {
			b.Assign("changed", m.I(0))
			b.For("a", m.I(0), m.I(26), func(b *m.Block) {
				b.For("bb", m.I(0), m.I(26), func(b *m.Block) {
					b.If(m.Eq(m.LoadW(idx(m.V("a"), m.V("bb"))), m.I(0)), func(b *m.Block) {
						b.Continue()
					}, nil)
					b.For("cc", m.I(0), m.I(26), func(b *m.Block) {
						b.If(m.And(m.Ne(m.LoadW(idx(m.V("bb"), m.V("cc"))), m.I(0)),
							m.Eq(m.LoadW(idx(m.V("a"), m.V("cc"))), m.I(0))), func(b *m.Block) {
							b.StoreW(idx(m.V("a"), m.V("cc")), m.I(1))
							b.Assign("changed", m.I(1))
						}, nil)
					})
				})
			})
		})
		b.Assign("sum", m.I(0))
		b.For("i", m.I(0), m.I(26*26), func(b *m.Block) {
			b.Assign("sum", m.Add(m.V("sum"),
				m.LoadW(m.Add(m.Addr("deriv", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		b.Return(m.Add(m.Mul(m.V("sum"), m.I(1000)), m.Mod(m.V("prods"), m.I(1000))))
	})
	return mod
}

// gccModule: compiler-like front end: tokenize the source, intern
// identifiers in an open-addressing symbol table, and "emit" one byte
// of code per token into an output buffer.
func gccModule() *m.Module {
	mod := newModule("gcc")
	mod.Data("path", []byte("gcc.in\x00"))
	mod.Global("buf", chunk)
	mod.Global("symtab", 512*8) // hash, count
	mod.Global("emit", 32768)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "c", "h", "slot", "probes", "toks", "syms", "out", "inId")
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("toks", m.I(0))
		b.Assign("syms", m.I(0))
		b.Assign("out", m.I(0))
		b.Assign("h", m.I(5381))
		b.Assign("inId", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
				isAlpha := m.And(m.Ge(m.V("c"), m.I('a')), m.Le(m.V("c"), m.I('z')))
				b.If(isAlpha, func(b *m.Block) {
					b.Assign("h", m.Add(m.Mul(m.V("h"), m.I(33)), m.V("c")))
					b.Assign("inId", m.I(1))
				}, func(b *m.Block) {
					b.If(m.Ne(m.V("inId"), m.I(0)), func(b *m.Block) {
						// End of identifier: intern it.
						b.Assign("toks", m.Add(m.V("toks"), m.I(1)))
						b.Assign("slot", m.ModU(m.V("h"), m.I(512)))
						b.Assign("probes", m.I(0))
						b.While(m.Lt(m.V("probes"), m.I(512)), func(b *m.Block) {
							slotAddr := m.Add(m.Addr("symtab", 0), m.Mul(m.V("slot"), m.I(8)))
							b.If(m.Eq(m.LoadW(slotAddr), m.I(0)), func(b *m.Block) {
								b.StoreW(slotAddr, m.V("h"))
								b.StoreW(m.Add(slotAddr, m.I(4)), m.I(1))
								b.Assign("syms", m.Add(m.V("syms"), m.I(1)))
								b.Break()
							}, func(b *m.Block) {
								b.If(m.Eq(m.LoadW(slotAddr), m.V("h")), func(b *m.Block) {
									b.StoreW(m.Add(slotAddr, m.I(4)),
										m.Add(m.LoadW(m.Add(slotAddr, m.I(4))), m.I(1)))
									b.Break()
								}, nil)
							})
							b.Assign("slot", m.ModU(m.Add(m.V("slot"), m.I(1)), m.I(512)))
							b.Assign("probes", m.Add(m.V("probes"), m.I(1)))
						})
						// Emit a code byte.
						b.StoreB(m.Add(m.Addr("emit", 0), m.ModU(m.V("out"), m.I(32768))), m.V("h"))
						b.Assign("out", m.Add(m.V("out"), m.I(1)))
						b.Assign("h", m.I(5381))
						b.Assign("inId", m.I(0))
					}, nil)
					b.If(m.GtU(m.V("c"), m.I(' ')), func(b *m.Block) {
						b.Assign("toks", m.Add(m.V("toks"), m.I(1)))
					}, nil)
				})
			})
		})
		b.Call("sys_close", m.V("fd"))
		b.Return(m.Add(m.Mul(m.V("syms"), m.I(100000)), m.V("toks")))
	})
	return mod
}

// compressModule: real LZW: compress the input file into a code
// stream, write the codes to the output file (the paper's compress
// both reads and writes), then decompress and verify.
func compressModule() *m.Module {
	mod := newModule("compress")
	mod.Data("path", []byte("compress.in\x00"))
	mod.Data("opath", []byte("compress.out\x00"))
	mod.Global("buf", chunk)
	mod.Global("prefix", 4096*4)
	mod.Global("suffix", 4096*4)
	mod.Global("hashtab", 8192*4) // (w,c) -> code+1, open addressing
	mod.Global("codes", 131072*2) // output code stream (halfwords)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "c", "w", "next", "code", "found", "j", "h", "ncodes", "verify", "ofd", "wr")
	f.Code(func(b *m.Block) {
		// Dictionary: codes 0..255 are literals; (w,c) pairs are found
		// through a hash table with linear probing, as in compress.
		b.Assign("next", m.I(256))
		b.Assign("ncodes", m.I(0))
		b.Assign("w", m.Neg(m.I(1)))
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
				b.If(m.Lt(m.V("w"), m.I(0)), func(b *m.Block) {
					b.Assign("w", m.V("c"))
					b.Continue()
				}, nil)
				// Find (w, c) through the hash table.
				b.Assign("found", m.Neg(m.I(1)))
				b.Assign("h", m.ModU(m.Xor(m.Shl(m.V("w"), m.I(8)), m.V("c")), m.I(8192)))
				b.While(m.I(1), func(b *m.Block) {
					slot := m.Add(m.Addr("hashtab", 0), m.Mul(m.V("h"), m.I(4)))
					b.Assign("j", m.LoadW(slot))
					b.If(m.Eq(m.V("j"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
					b.Assign("j", m.Sub(m.V("j"), m.I(1)))
					b.If(m.And(
						m.Eq(m.LoadW(m.Add(m.Addr("prefix", 0), m.Mul(m.V("j"), m.I(4)))), m.V("w")),
						m.Eq(m.LoadW(m.Add(m.Addr("suffix", 0), m.Mul(m.V("j"), m.I(4)))), m.V("c"))),
						func(b *m.Block) {
							b.Assign("found", m.V("j"))
							b.Break()
						}, nil)
					b.Assign("h", m.ModU(m.Add(m.V("h"), m.I(1)), m.I(8192)))
				})
				b.If(m.Ge(m.V("found"), m.I(0)), func(b *m.Block) {
					b.Assign("w", m.V("found"))
				}, func(b *m.Block) {
					// Emit w; add (w, c) at the probe's empty slot.
					b.Store(m.Add(m.Addr("codes", 0), m.Mul(m.V("ncodes"), m.I(2))), 2, m.V("w"))
					b.Assign("ncodes", m.Add(m.V("ncodes"), m.I(1)))
					b.If(m.Lt(m.V("next"), m.I(4096)), func(b *m.Block) {
						b.StoreW(m.Add(m.Addr("prefix", 0), m.Mul(m.V("next"), m.I(4))), m.V("w"))
						b.StoreW(m.Add(m.Addr("suffix", 0), m.Mul(m.V("next"), m.I(4))), m.V("c"))
						b.StoreW(m.Add(m.Addr("hashtab", 0), m.Mul(m.V("h"), m.I(4))),
							m.Add(m.V("next"), m.I(1)))
						b.Assign("next", m.Add(m.V("next"), m.I(1)))
					}, nil)
					b.Assign("w", m.V("c"))
				})
			})
		})
		b.If(m.Ge(m.V("w"), m.I(0)), func(b *m.Block) {
			b.Store(m.Add(m.Addr("codes", 0), m.Mul(m.V("ncodes"), m.I(2))), 2, m.V("w"))
			b.Assign("ncodes", m.Add(m.V("ncodes"), m.I(1)))
		}, nil)
		b.Call("sys_close", m.V("fd"))

		// Write the code stream to the output file in 2 KB chunks.
		b.Assign("ofd", m.Call("sys_open", m.Addr("opath", 0)))
		b.If(m.Ge(m.V("ofd"), m.I(0)), func(b *m.Block) {
			b.Assign("wr", m.I(0))
			b.While(m.LtU(m.V("wr"), m.Mul(m.V("ncodes"), m.I(2))), func(b *m.Block) {
				b.Assign("n", m.Sub(m.Mul(m.V("ncodes"), m.I(2)), m.V("wr")))
				b.If(m.GtU(m.V("n"), m.I(chunk)), func(b *m.Block) { b.Assign("n", m.I(chunk)) }, nil)
				b.Call("sys_write", m.V("ofd"), m.Add(m.Addr("codes", 0), m.V("wr")), m.V("n"))
				b.Assign("wr", m.Add(m.V("wr"), m.V("n")))
			})
			b.Call("sys_close", m.V("ofd"))
		}, nil)

		// Decompress and checksum (verifies the round trip without a
		// second 100K buffer: sum the expanded bytes).
		b.Assign("verify", m.I(0))
		b.For("i", m.I(0), m.V("ncodes"), func(b *m.Block) {
			b.Assign("code", m.Load(m.Add(m.Addr("codes", 0), m.Mul(m.V("i"), m.I(2))), 2, false))
			b.While(m.Ge(m.V("code"), m.I(256)), func(b *m.Block) {
				b.Assign("verify", m.Add(m.V("verify"),
					m.LoadW(m.Add(m.Addr("suffix", 0), m.Mul(m.V("code"), m.I(4))))))
				b.Assign("code", m.LoadW(m.Add(m.Addr("prefix", 0), m.Mul(m.V("code"), m.I(4)))))
			})
			b.Assign("verify", m.Add(m.V("verify"), m.V("code")))
		})
		b.Return(m.V("verify"))
	})
	return mod
}

// espressoModule: boolean minimization: reads PLA cubes as bitmask
// pairs and does a pairwise cover/merge reduction pass.
func espressoModule() *m.Module {
	mod := newModule("espresso")
	mod.Data("path", []byte("espresso.in\x00"))
	mod.Global("buf", chunk)
	mod.Global("mask1", 700*4) // care mask
	mod.Global("val1", 700*4)  // values
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "c", "nc", "bm", "bv", "pos", "a", "bb", "covered", "kept")
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("nc", m.I(0))
		b.Assign("bm", m.I(0))
		b.Assign("bv", m.I(0))
		b.Assign("pos", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
				b.If(m.Eq(m.V("c"), m.I('\n')), func(b *m.Block) {
					b.If(m.Lt(m.V("nc"), m.I(700)), func(b *m.Block) {
						b.StoreW(m.Add(m.Addr("mask1", 0), m.Mul(m.V("nc"), m.I(4))), m.V("bm"))
						b.StoreW(m.Add(m.Addr("val1", 0), m.Mul(m.V("nc"), m.I(4))), m.V("bv"))
						b.Assign("nc", m.Add(m.V("nc"), m.I(1)))
					}, nil)
					b.Assign("bm", m.I(0))
					b.Assign("bv", m.I(0))
					b.Assign("pos", m.I(0))
					b.Continue()
				}, nil)
				b.If(m.Eq(m.V("c"), m.I('0')), func(b *m.Block) {
					b.Assign("bm", m.Or(m.V("bm"), m.Shl(m.I(1), m.V("pos"))))
				}, func(b *m.Block) {
					b.If(m.Eq(m.V("c"), m.I('1')), func(b *m.Block) {
						b.Assign("bm", m.Or(m.V("bm"), m.Shl(m.I(1), m.V("pos"))))
						b.Assign("bv", m.Or(m.V("bv"), m.Shl(m.I(1), m.V("pos"))))
					}, nil)
				})
				b.Assign("pos", m.And(m.Add(m.V("pos"), m.I(1)), m.I(31)))
			})
		})
		b.Call("sys_close", m.V("fd"))
		// Pairwise covering: cube a is covered by cube b when b's care
		// set is a subset of a's and they agree there.
		b.Assign("kept", m.I(0))
		b.For("a", m.I(0), m.V("nc"), func(b *m.Block) {
			b.Assign("covered", m.I(0))
			b.For("bb", m.I(0), m.V("nc"), func(b *m.Block) {
				b.If(m.Eq(m.V("a"), m.V("bb")), func(b *m.Block) { b.Continue() }, nil)
				ma := m.LoadW(m.Add(m.Addr("mask1", 0), m.Mul(m.V("a"), m.I(4))))
				mb := m.LoadW(m.Add(m.Addr("mask1", 0), m.Mul(m.V("bb"), m.I(4))))
				va := m.LoadW(m.Add(m.Addr("val1", 0), m.Mul(m.V("a"), m.I(4))))
				vb := m.LoadW(m.Add(m.Addr("val1", 0), m.Mul(m.V("bb"), m.I(4))))
				cond := m.And(
					m.Eq(m.And(mb, m.Not(ma)), m.I(0)),
					m.Eq(m.And(m.Xor(va, vb), mb), m.I(0)))
				b.If(m.And(cond, m.LtU(m.V("bb"), m.V("a"))), func(b *m.Block) {
					b.Assign("covered", m.I(1))
					b.Break()
				}, nil)
			})
			b.If(m.Eq(m.V("covered"), m.I(0)), func(b *m.Block) {
				b.Assign("kept", m.Add(m.V("kept"), m.I(1)))
			}, nil)
		})
		b.Return(m.Add(m.Mul(m.V("kept"), m.I(10000)), m.V("nc")))
	})
	return mod
}

// lispModule: the 8-queens problem, solved recursively (LISP-style
// deep recursion, no I/O).
func lispModule() *m.Module {
	mod := newModule("lisp")
	mod.Global("cols", 16*4)
	q := mod.Func("queens", m.TInt)
	q.Param("row", m.TInt)
	q.Param("nq", m.TInt)
	q.Locals("col", "i", "ok", "count", "prev", "d")
	q.Code(func(b *m.Block) {
		b.If(m.Eq(m.V("row"), m.V("nq")), func(b *m.Block) { b.Return(m.I(1)) }, nil)
		b.Assign("count", m.I(0))
		b.For("col", m.I(0), m.V("nq"), func(b *m.Block) {
			b.Assign("ok", m.I(1))
			b.For("i", m.I(0), m.V("row"), func(b *m.Block) {
				b.Assign("prev", m.LoadW(m.Add(m.Addr("cols", 0), m.Mul(m.V("i"), m.I(4)))))
				b.Assign("d", m.Sub(m.V("row"), m.V("i")))
				bad := m.Or(m.Eq(m.V("prev"), m.V("col")),
					m.Or(m.Eq(m.V("prev"), m.Sub(m.V("col"), m.V("d"))),
						m.Eq(m.V("prev"), m.Add(m.V("col"), m.V("d")))))
				b.If(bad, func(b *m.Block) {
					b.Assign("ok", m.I(0))
					b.Break()
				}, nil)
			})
			b.If(m.Ne(m.V("ok"), m.I(0)), func(b *m.Block) {
				b.StoreW(m.Add(m.Addr("cols", 0), m.Mul(m.V("row"), m.I(4))), m.V("col"))
				b.Assign("count", m.Add(m.V("count"),
					m.Call("queens", m.Add(m.V("row"), m.I(1)), m.V("nq"))))
			}, nil)
		})
		b.Return(m.V("count"))
	})
	f := mod.Func("main", m.TInt)
	f.Locals("total", "r")
	f.Code(func(b *m.Block) {
		b.Assign("total", m.I(0))
		b.For("r", m.I(0), m.I(3), func(b *m.Block) {
			b.Assign("total", m.Add(m.V("total"), m.Call("queens", m.I(0), m.I(8))))
		})
		b.Return(m.V("total")) // 3 * 92
	})
	return mod
}

// eqntottModule: converts boolean equations to truth tables: parses
// operators from the input and evaluates them under exhaustive
// variable assignments.
func eqntottModule() *m.Module {
	mod := newModule("eqntott")
	mod.Data("path", []byte("eqntott.in\x00"))
	mod.Global("buf", chunk)
	mod.Global("vars", 2048) // variable index per op
	mod.Global("ops", 2048)  // operator per op
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "c", "nops", "asg", "acc", "k", "vv", "op", "trues", "kind")
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("nops", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.If(m.Ge(m.V("nops"), m.I(1024)), func(b *m.Block) { b.Break() }, nil)
				b.Assign("c", m.LoadB(m.Add(m.Addr("buf", 0), m.V("i"))))
				b.If(m.And(m.Ge(m.V("c"), m.I('a')), m.Le(m.V("c"), m.I('j'))), func(b *m.Block) {
					b.StoreB(m.Add(m.Addr("vars", 0), m.V("nops")), m.Sub(m.V("c"), m.I('a')))
				}, func(b *m.Block) {
					b.If(m.Or(m.Eq(m.V("c"), m.I('&')),
						m.Or(m.Eq(m.V("c"), m.I('|')), m.Eq(m.V("c"), m.I('^')))), func(b *m.Block) {
						b.StoreB(m.Add(m.Addr("ops", 0), m.V("nops")), m.V("c"))
						b.Assign("nops", m.Add(m.V("nops"), m.I(1)))
					}, nil)
				})
			})
		})
		b.Call("sys_close", m.V("fd"))
		// Truth table over 8 variables (256 rows).
		b.Assign("trues", m.I(0))
		b.For("asg", m.I(0), m.I(256), func(b *m.Block) {
			b.Assign("acc", m.And(m.V("asg"), m.I(1)))
			b.For("k", m.I(0), m.V("nops"), func(b *m.Block) {
				b.Assign("vv", m.And(m.Shr(m.V("asg"),
					m.ModU(m.LoadB(m.Add(m.Addr("vars", 0), m.V("k"))), m.I(8))), m.I(1)))
				b.Assign("kind", m.LoadB(m.Add(m.Addr("ops", 0), m.V("k"))))
				b.If(m.Eq(m.V("kind"), m.I('&')), func(b *m.Block) {
					b.Assign("acc", m.And(m.V("acc"), m.V("vv")))
				}, func(b *m.Block) {
					b.If(m.Eq(m.V("kind"), m.I('|')), func(b *m.Block) {
						b.Assign("acc", m.Or(m.V("acc"), m.V("vv")))
					}, func(b *m.Block) {
						b.Assign("acc", m.Xor(m.V("acc"), m.V("vv")))
					})
				})
			})
			b.Assign("trues", m.Add(m.V("trues"), m.V("acc")))
		})
		b.Return(m.Add(m.Mul(m.V("trues"), m.I(10000)), m.V("nops")))
	})
	return mod
}
