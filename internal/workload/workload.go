// Package workload implements the twelve Table-1 workloads as Mahler
// programs with deterministic generated inputs. Each does real
// (scaled-down) computation with the character the paper relies on:
// sed/egrep/yacc/gcc/compress/espresso/eqntott are integer programs
// with file I/O; lisp is deep recursion; fpppp/doduc/liv/tomcatv are
// floating-point intensive, with liv deliberately store-heavy (the
// write-buffer + FP overlap error source of §5.1) and tomcatv carrying
// a working set larger than the cache (the page-mapping sensitivity of
// §4.4).
package workload

import (
	m "systrace/internal/mahler"
	"systrace/internal/userland"
)

// Spec describes one workload.
type Spec struct {
	Name        string
	Description string // Table 1 description
	FP          bool
	Build       func() *m.Module
	Files       map[string][]byte
}

// All returns the Table-1 suite in the paper's order.
func All() []Spec {
	return []Spec{
		{"sed", "The UNIX stream editor run three times over the same input file", false, sedModule, map[string][]byte{"sed.in": textInput(17<<10, 11)}},
		{"egrep", "The UNIX pattern search program run three times over its input", false, egrepModule, map[string][]byte{"egrep.in": textInput(27<<10, 23)}},
		{"yacc", "The LR(1) parser-generator run on a grammar", false, yaccModule, map[string][]byte{"yacc.in": grammarInput(11 << 10)}},
		{"gcc", "The C compiler translating a preprocessed source file", false, gccModule, map[string][]byte{"gcc.in": sourceInput(17 << 10)}},
		{"compress", "Lempel-Ziv data compression: a file is compressed then uncompressed", false, compressModule, map[string][]byte{"compress.in": textInput(32<<10, 37), "compress.out": make([]byte, 64<<10)}},
		{"espresso", "Boolean function minimization on an input file", false, espressoModule, map[string][]byte{"espresso.in": cubeInput(30 << 10)}},
		{"lisp", "The 8-queens problem solved in LISP", false, lispModule, nil},
		{"eqntott", "Boolean equations converted to truth tables", false, eqntottModule, map[string][]byte{"eqntott.in": eqnInput(1390)}},
		{"fpppp", "Quantum chemistry analysis (Fortran)", true, fppppModule, nil},
		{"doduc", "Monte-Carlo simulation of a nuclear reactor component", true, doducModule, map[string][]byte{"doduc.in": textInput(8<<10, 53)}},
		{"liv", "The Livermore Loops benchmark", true, livModule, nil},
		{"tomcatv", "Vectorized mesh generation (Fortran)", true, tomcatvModule, nil},
	}
}

// ByName returns the named workload spec.
func ByName(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Inputs merges the file sets of the given specs into one disk image
// manifest.
func Inputs(specs []Spec) map[string][]byte {
	files := map[string][]byte{}
	for _, s := range specs {
		for n, b := range s.Files {
			files[n] = b
		}
	}
	return files
}

// xorshift is the deterministic input generator.
type xorshift uint32

func (x *xorshift) next() uint32 {
	s := uint32(*x)
	s ^= s << 13
	s ^= s >> 17
	s ^= s << 5
	*x = xorshift(s)
	return s
}

// textInput builds printable pseudo-text of n bytes.
func textInput(n int, seed uint32) []byte {
	r := xorshift(seed)
	words := []string{"the", "cache", "trace", "kernel", "buffer", "page",
		"address", "epoxie", "miss", "tlb", "system", "abc", "hit", "disk"}
	out := make([]byte, 0, n)
	col := 0
	for len(out) < n {
		w := words[r.next()%uint32(len(words))]
		out = append(out, w...)
		col += len(w) + 1
		if col > 60 {
			out = append(out, '\n')
			col = 0
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// grammarInput emulates a yacc grammar: lines "N : M O | P ;".
func grammarInput(n int) []byte {
	r := xorshift(7)
	out := make([]byte, 0, n)
	for len(out) < n {
		lhs := byte('A' + r.next()%26)
		out = append(out, lhs, ' ', ':', ' ')
		for k := uint32(0); k <= r.next()%3; k++ {
			out = append(out, byte('A'+r.next()%26), ' ')
			if r.next()%4 == 0 {
				out = append(out, '|', ' ')
			}
		}
		out = append(out, ';', '\n')
	}
	return out[:n]
}

// sourceInput emulates a preprocessed C source: identifiers, numbers,
// punctuation.
func sourceInput(n int) []byte {
	r := xorshift(99)
	out := make([]byte, 0, n)
	toks := []string{"int", "x", "y", "tmp", "if", "(", ")", "{", "}",
		"=", "+", "*", ";", "return", "42", "17", "while", "<", "f"}
	for len(out) < n {
		out = append(out, toks[r.next()%uint32(len(toks))]...)
		if r.next()%8 == 0 {
			out = append(out, '\n')
		} else {
			out = append(out, ' ')
		}
	}
	return out[:n]
}

// cubeInput emulates espresso's PLA cubes: lines of 0/1/- plus output
// part.
func cubeInput(n int) []byte {
	r := xorshift(13)
	out := make([]byte, 0, n)
	for len(out) < n {
		for i := 0; i < 12; i++ {
			out = append(out, "01-"[r.next()%3])
		}
		out = append(out, ' ')
		for i := 0; i < 4; i++ {
			out = append(out, "01"[r.next()%2])
		}
		out = append(out, '\n')
	}
	return out[:n]
}

// eqnInput emulates eqntott's equations over variables a..j.
func eqnInput(n int) []byte {
	r := xorshift(31)
	out := make([]byte, 0, n)
	for len(out) < n {
		out = append(out, byte('a'+r.next()%10))
		switch r.next() % 3 {
		case 0:
			out = append(out, '&')
		case 1:
			out = append(out, '|')
		default:
			out = append(out, '^')
		}
		if r.next()%7 == 0 {
			out = append(out, ';')
		}
	}
	return out[:n]
}

// newModule starts a workload module with libc externs declared.
func newModule(name string) *m.Module {
	mod := m.NewModule(name)
	userland.DeclareLibc(mod)
	return mod
}
