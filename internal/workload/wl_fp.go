package workload

import m "systrace/internal/mahler"

// fppppModule: quantum-chemistry-like kernel: two-electron integral
// accumulation over a 20x20 basis — dense triple loops dominated by
// multiply/add chains with very long basic blocks, as in fpppp.
func fppppModule() *m.Module {
	mod := newModule("fpppp")
	const nb = 20
	mod.Global("fock", nb*nb*8)
	mod.Global("dens", nb*nb*8)
	at := func(arr string, i, j m.Expr) m.Expr {
		return m.Add(m.Addr(arr, 0), m.Mul(m.Add(m.Mul(i, m.I(nb)), j), m.I(8)))
	}
	f := mod.Func("main", m.TInt)
	f.Locals("i", "j", "k", "iter")
	f.FLocals("g", "acc", "x")
	f.Code(func(b *m.Block) {
		// Initialize the density matrix.
		b.For("i", m.I(0), m.I(nb), func(b *m.Block) {
			b.For("j", m.I(0), m.I(nb), func(b *m.Block) {
				b.StoreF(at("dens", m.V("i"), m.V("j")),
					m.FDiv(m.F(1.0), m.ToFloat(m.Add(m.Add(m.V("i"), m.V("j")), m.I(1)))))
			})
		})
		b.For("iter", m.I(0), m.I(6), func(b *m.Block) {
			b.For("i", m.I(0), m.I(nb), func(b *m.Block) {
				b.For("j", m.I(0), m.I(nb), func(b *m.Block) {
					b.Assign("acc", m.F(0))
					b.For("k", m.I(0), m.I(nb), func(b *m.Block) {
						// Synthetic integral g(i,j,k) with division and
						// square root in the pipeline, like ERI code.
						b.Assign("g", m.FDiv(m.F(1.0),
							m.Sqrt(m.ToFloat(m.Add(m.Add(m.Mul(m.V("i"), m.V("i")),
								m.Mul(m.V("j"), m.V("k"))), m.I(1))))))
						b.Assign("acc", m.FAdd(m.FV("acc"),
							m.FMul(m.FV("g"), m.LoadF(at("dens", m.V("j"), m.V("k"))))))
					})
					b.StoreF(at("fock", m.V("i"), m.V("j")), m.FV("acc"))
				})
			})
			// Fold fock back into dens (damped).
			b.For("i", m.I(0), m.I(nb), func(b *m.Block) {
				b.For("j", m.I(0), m.I(nb), func(b *m.Block) {
					b.Assign("x", m.FAdd(
						m.FMul(m.F(0.7), m.LoadF(at("dens", m.V("i"), m.V("j")))),
						m.FMul(m.F(0.3), m.LoadF(at("fock", m.V("i"), m.V("j"))))))
					b.StoreF(at("dens", m.V("i"), m.V("j")), m.FV("x"))
				})
			})
		})
		// Checksum: trunc(1000 * sum of diagonal).
		b.Assign("x", m.F(0))
		b.For("i", m.I(0), m.I(nb), func(b *m.Block) {
			b.Assign("x", m.FAdd(m.FV("x"), m.LoadF(at("dens", m.V("i"), m.V("i")))))
		})
		b.Return(m.ToInt(m.FMul(m.FV("x"), m.F(1000))))
	})
	return mod
}

// doducModule: Monte-Carlo time evolution: a deterministic generator
// drives floating-point state updates with data-dependent branching,
// seeded from the input file.
func doducModule() *m.Module {
	mod := newModule("doduc")
	mod.Data("path", []byte("doduc.in\x00"))
	mod.Global("buf", chunk)
	mod.Global("hist", 64*4)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "seed", "trial", "bin")
	f.FLocals("e", "u", "flux")
	f.Code(func(b *m.Block) {
		// Seed from the input bytes.
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("seed", m.I(1))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(chunk)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("seed", m.Add(m.Mul(m.V("seed"), m.I(33)),
					m.LoadB(m.Add(m.Addr("buf", 0), m.V("i")))))
			})
		})
		b.Call("sys_close", m.V("fd"))

		b.Assign("flux", m.F(0))
		b.For("trial", m.I(0), m.I(30000), func(b *m.Block) {
			// xorshift
			b.Assign("seed", m.Xor(m.V("seed"), m.Shl(m.V("seed"), m.I(13))))
			b.Assign("seed", m.Xor(m.V("seed"), m.Shr(m.V("seed"), m.I(17))))
			b.Assign("seed", m.Xor(m.V("seed"), m.Shl(m.V("seed"), m.I(5))))
			b.Assign("u", m.FDiv(m.ToFloat(m.And(m.V("seed"), m.U(0x7fffff))), m.F(8388608.0)))
			// Particle energy update with branchy physics.
			b.Assign("e", m.FMul(m.FV("u"), m.F(10.0)))
			b.If(m.FLt(m.FV("u"), m.F(0.3)), func(b *m.Block) {
				b.Assign("e", m.FMul(m.FV("e"), m.FV("e"))) // scatter
			}, func(b *m.Block) {
				b.If(m.FLt(m.FV("u"), m.F(0.6)), func(b *m.Block) {
					b.Assign("e", m.Sqrt(m.FAdd(m.FV("e"), m.F(1.0)))) // capture
				}, func(b *m.Block) {
					b.Assign("e", m.FDiv(m.F(100.0), m.FAdd(m.FV("e"), m.F(0.5)))) // fission
				})
			})
			b.Assign("flux", m.FAdd(m.FV("flux"), m.FV("e")))
			b.Assign("bin", m.ToInt(m.FMul(m.FV("u"), m.F(64))))
			b.If(m.GeU(m.V("bin"), m.I(64)), func(b *m.Block) { b.Assign("bin", m.I(63)) }, nil)
			b.StoreW(m.Add(m.Addr("hist", 0), m.Mul(m.V("bin"), m.I(4))),
				m.Add(m.LoadW(m.Add(m.Addr("hist", 0), m.Mul(m.V("bin"), m.I(4)))), m.I(1)))
		})
		b.Return(m.ToInt(m.FV("flux")))
	})
	return mod
}

// livModule: Livermore-loop kernels with store-heavy inner loops. The
// paper singles liv out for "the worst write-buffer behavior of all
// the workloads" combined with significant floating point, producing
// the unmodeled FP/write-buffer overlap error (§5.1).
func livModule() *m.Module {
	mod := newModule("liv")
	const n = 1600
	mod.Global("xv", (n+16)*8)
	mod.Global("yv", (n+16)*8)
	mod.Global("zv", (n+16)*8)
	el := func(arr string, i m.Expr) m.Expr {
		return m.Add(m.Addr(arr, 0), m.Mul(i, m.I(8)))
	}
	f := mod.Func("main", m.TInt)
	f.Locals("k", "pass")
	f.FLocals("q", "r", "t", "s")
	f.Code(func(b *m.Block) {
		b.For("k", m.I(0), m.I(n+16), func(b *m.Block) {
			b.StoreF(el("zv", m.V("k")), m.FDiv(m.ToFloat(m.Add(m.V("k"), m.I(1))), m.F(float64(n))))
			b.StoreF(el("yv", m.V("k")), m.F(0.0001))
		})
		b.Assign("q", m.F(0.5))
		b.Assign("r", m.F(0.2))
		b.Assign("t", m.F(0.1))
		b.For("pass", m.I(0), m.I(10), func(b *m.Block) {
			// Kernel 1: hydro fragment (one store per iteration).
			b.For("k", m.I(0), m.I(n), func(b *m.Block) {
				b.StoreF(el("xv", m.V("k")),
					m.FAdd(m.FV("q"), m.FMul(m.LoadF(el("yv", m.V("k"))),
						m.FAdd(m.FMul(m.FV("r"), m.LoadF(el("zv", m.Add(m.V("k"), m.I(10))))),
							m.FMul(m.FV("t"), m.LoadF(el("zv", m.Add(m.V("k"), m.I(11)))))))))
			})
			// Kernel 5: tri-diagonal elimination (dependent stores).
			b.For("k", m.I(1), m.I(n), func(b *m.Block) {
				b.StoreF(el("xv", m.V("k")),
					m.FMul(m.LoadF(el("zv", m.V("k"))),
						m.FSub(m.LoadF(el("yv", m.V("k"))), m.LoadF(el("xv", m.Sub(m.V("k"), m.I(1)))))))
			})
			// Kernel 3: inner product (no stores; FP latency exposed).
			b.Assign("s", m.F(0))
			b.For("k", m.I(0), m.I(n), func(b *m.Block) {
				b.Assign("s", m.FAdd(m.FV("s"),
					m.FMul(m.LoadF(el("zv", m.V("k"))), m.LoadF(el("xv", m.V("k"))))))
			})
			// Kernel 12: first difference (pure store stream).
			b.For("k", m.I(0), m.I(n), func(b *m.Block) {
				b.StoreF(el("yv", m.V("k")),
					m.FSub(m.LoadF(el("zv", m.Add(m.V("k"), m.I(1)))), m.LoadF(el("zv", m.V("k")))))
			})
		})
		b.Return(m.ToInt(m.FMul(m.FV("s"), m.F(100))))
	})
	return mod
}

// tomcatvModule: mesh generation over NxN coordinate arrays: the
// working set (four 56x56 double arrays, ~100 KB) exceeds the cache,
// making run time sensitive to page placement — the §4.4 observation
// that system page mapping policy can swing tomcatv's time by over 10%
// while system activity is only ~1%.
func tomcatvModule() *m.Module {
	mod := newModule("tomcatv")
	const n = 56
	for _, a := range []string{"mx", "my", "rx", "ry"} {
		mod.Global(a, n*n*8)
	}
	at := func(arr string, i, j m.Expr) m.Expr {
		return m.Add(m.Addr(arr, 0), m.Mul(m.Add(m.Mul(i, m.I(n)), j), m.I(8)))
	}
	f := mod.Func("main", m.TInt)
	f.Locals("i", "j", "iter")
	f.FLocals("xx", "yy", "res")
	f.Code(func(b *m.Block) {
		// Initial algebraic mesh.
		b.For("i", m.I(0), m.I(n), func(b *m.Block) {
			b.For("j", m.I(0), m.I(n), func(b *m.Block) {
				b.StoreF(at("mx", m.V("i"), m.V("j")), m.ToFloat(m.V("i")))
				b.StoreF(at("my", m.V("i"), m.V("j")),
					m.FMul(m.ToFloat(m.V("j")), m.FAdd(m.F(1.0),
						m.FDiv(m.ToFloat(m.V("i")), m.F(float64(n))))))
			})
		})
		b.For("iter", m.I(0), m.I(8), func(b *m.Block) {
			// Residuals from the 5-point stencil.
			b.For("i", m.I(1), m.I(n-1), func(b *m.Block) {
				b.For("j", m.I(1), m.I(n-1), func(b *m.Block) {
					b.Assign("xx", m.FSub(
						m.FMul(m.F(0.25), m.FAdd(
							m.FAdd(m.LoadF(at("mx", m.Sub(m.V("i"), m.I(1)), m.V("j"))),
								m.LoadF(at("mx", m.Add(m.V("i"), m.I(1)), m.V("j")))),
							m.FAdd(m.LoadF(at("mx", m.V("i"), m.Sub(m.V("j"), m.I(1)))),
								m.LoadF(at("mx", m.V("i"), m.Add(m.V("j"), m.I(1))))))),
						m.LoadF(at("mx", m.V("i"), m.V("j")))))
					b.Assign("yy", m.FSub(
						m.FMul(m.F(0.25), m.FAdd(
							m.FAdd(m.LoadF(at("my", m.Sub(m.V("i"), m.I(1)), m.V("j"))),
								m.LoadF(at("my", m.Add(m.V("i"), m.I(1)), m.V("j")))),
							m.FAdd(m.LoadF(at("my", m.V("i"), m.Sub(m.V("j"), m.I(1)))),
								m.LoadF(at("my", m.V("i"), m.Add(m.V("j"), m.I(1))))))),
						m.LoadF(at("my", m.V("i"), m.V("j")))))
					b.StoreF(at("rx", m.V("i"), m.V("j")), m.FV("xx"))
					b.StoreF(at("ry", m.V("i"), m.V("j")), m.FV("yy"))
				})
			})
			// Relax.
			b.For("i", m.I(1), m.I(n-1), func(b *m.Block) {
				b.For("j", m.I(1), m.I(n-1), func(b *m.Block) {
					b.StoreF(at("mx", m.V("i"), m.V("j")),
						m.FAdd(m.LoadF(at("mx", m.V("i"), m.V("j"))),
							m.FMul(m.F(0.9), m.LoadF(at("rx", m.V("i"), m.V("j"))))))
					b.StoreF(at("my", m.V("i"), m.V("j")),
						m.FAdd(m.LoadF(at("my", m.V("i"), m.V("j"))),
							m.FMul(m.F(0.9), m.LoadF(at("ry", m.V("i"), m.V("j"))))))
				})
			})
		})
		// Mesh checksum (the residual itself converges toward zero).
		b.Assign("res", m.F(0))
		b.For("i", m.I(1), m.I(n-1), func(b *m.Block) {
			b.For("j", m.I(1), m.I(n-1), func(b *m.Block) {
				b.Assign("res", m.FAdd(m.FV("res"),
					m.FAdd(m.LoadF(at("mx", m.V("i"), m.V("j"))),
						m.LoadF(at("my", m.V("i"), m.V("j"))))))
			})
		})
		b.Return(m.ToInt(m.FDiv(m.FV("res"), m.F(10))))
	})
	return mod
}
