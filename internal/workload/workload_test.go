package workload_test

import (
	"testing"

	"systrace/internal/kernel"
	m "systrace/internal/mahler"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

// run executes one workload on the given kernel flavor, untraced, and
// returns its exit status.
func run(t *testing.T, spec workload.Spec, flavor kernel.Flavor, traced bool) uint32 {
	t.Helper()
	kexe, err := kernel.Build(kernel.Config{Flavor: flavor, Traced: traced})
	if err != nil {
		t.Fatalf("kernel: %v", err)
	}
	prog, err := userland.Build(spec.Name, []*m.Module{spec.Build()}, m.Options{})
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name, err)
	}
	var procs []kernel.BootProc
	clientPid := 1
	if flavor == kernel.Mach {
		srv, err := userland.Build("ux", []*m.Module{userland.UXServer()}, m.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sexe := srv.Orig
		if traced {
			sexe = srv.Instr
		}
		procs = append(procs, kernel.BootProc{Exe: sexe, IsServer: true})
		clientPid = 2
	}
	exe := prog.Orig
	if traced {
		exe = prog.Instr
	}
	procs = append(procs, kernel.BootProc{Exe: exe})
	disk, err := kernel.BuildDiskImage(spec.Files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(flavor)
	cfg.DiskImage = disk
	if traced {
		cfg.TraceBufBytes = 8 << 20
		cfg.ClockInterval *= 15
	}
	sys, err := kernel.Boot(kexe, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(4_000_000_000); err != nil {
		t.Fatalf("%s on %v: %v", spec.Name, flavor, err)
	}
	if !sys.M.Halted {
		t.Fatalf("%s did not halt", spec.Name)
	}
	// Exit status from the zombie's trapframe a0.
	procsPA := sys.Kernel.MustSymbol("procs") - 0x80000000
	p := procsPA + uint32(clientPid-1)*kernel.ProcStride
	return sys.M.RAM.ReadWord(p + kernel.PSave + kernel.TFRegs + 3*4)
}

func TestWorkloadsUltrix(t *testing.T) {
	want := map[string]uint32{}
	for _, spec := range workload.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			got := run(t, spec, kernel.Ultrix, false)
			if got == 0 || got == 0xffffffff {
				t.Fatalf("%s result = %d (suspicious)", spec.Name, int32(got))
			}
			want[spec.Name] = got
			t.Logf("%s = %d", spec.Name, got)
		})
	}
}

func TestWorkloadResultsAgreeAcrossSystems(t *testing.T) {
	// A representative subset: I/O-bound, compute-bound, FP.
	for _, name := range []string{"sed", "compress", "lisp", "liv"} {
		spec, _ := workload.ByName(name)
		t.Run(name, func(t *testing.T) {
			u := run(t, spec, kernel.Ultrix, false)
			mm := run(t, spec, kernel.Mach, false)
			if u != mm {
				t.Errorf("%s: Ultrix=%d Mach=%d", name, u, mm)
			}
			tr := run(t, spec, kernel.Ultrix, true)
			if u != tr {
				t.Errorf("%s: untraced=%d traced=%d (instrumentation changed behavior)", name, u, tr)
			}
		})
	}
}
