package link_test

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/link"
	"systrace/internal/obj"
	"systrace/internal/sim"
)

func obj1(t *testing.T) *obj.File {
	a := asm.New("a")
	a.Func("_start", 0)
	a.JalSym("ext")
	a.I(isa.NOP)
	a.LA(isa.RegT0, "shared", 4)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func obj2(t *testing.T) *obj.File {
	a := asm.New("b")
	a.Func("ext", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	a.DataBytes("shared", []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCrossObjectResolution(t *testing.T) {
	e, err := link.Link([]*obj.File{obj1(t), obj2(t)}, link.Options{
		Name: "t", TextBase: 0x80001000, DataBase: 0x80100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ext := e.MustSymbol("ext")
	// The jal at word 0 must target ext.
	j := e.Text[0]
	if target := e.TextBase&0xf0000000 | uint32(j)<<2&0x0ffffffc; target != ext {
		t.Errorf("jal target 0x%x want 0x%x", target, ext)
	}
	// LA must resolve shared+4.
	shared := e.MustSymbol("shared")
	lui, addiu := e.Text[2], e.Text[3]
	got := (uint32(uint16(lui)) << 16) + uint32(int32(int16(addiu)))
	if got != shared+4 {
		t.Errorf("la resolved 0x%x want 0x%x", got, shared+4)
	}
}

func TestDuplicateAndUndefined(t *testing.T) {
	if _, err := link.Link([]*obj.File{obj1(t)}, link.Options{
		Name: "t", TextBase: 0x80001000, DataBase: 0x80100000,
	}); err == nil {
		t.Error("undefined symbol accepted")
	}
	if _, err := link.Link([]*obj.File{obj2(t), obj2(t)}, link.Options{
		Name: "t", Entry: "ext", TextBase: 0x80001000, DataBase: 0x80100000,
	}); err == nil {
		t.Error("duplicate symbol accepted")
	}
}

func TestLinkedProgramRuns(t *testing.T) {
	// End to end: assembler -> linker -> interpreter.
	a := asm.New("m")
	a.Func("main", 0)
	a.LI(isa.RegV0, 123)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f, err := a.Finish()
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.BuildBare("t", f)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := sim.RunResult(e, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 123 {
		t.Errorf("got %d", v)
	}
}
