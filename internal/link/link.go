// Package link combines relocatable object files into executable
// images. Address correction is entirely static: symbol and relocation
// tables let the linker (and the epoxie rewriter that runs just before
// it) patch every address use with no runtime translation (paper
// §3.2).
package link

import (
	"encoding/binary"
	"fmt"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

// Options configure a link.
type Options struct {
	Name     string
	Entry    string // entry symbol; default "_start"
	TextBase uint32
	DataBase uint32
	Traced   bool // set the traced flag in the image (Ultrix-style)
}

// Layout records where each object's sections landed. Instrumentation
// uses it to correlate original and rewritten block addresses.
type Layout struct {
	TextOff []uint32 // per-object byte offset of its text from TextBase
	DataOff []uint32
	BSSOff  []uint32 // from BSSBase
	BSSBase uint32
}

// Link resolves symbols and relocations across objs and produces an
// executable. Objects are laid out in the order given.
func Link(objs []*obj.File, opt Options) (*obj.Executable, error) {
	e, _, err := LinkLayout(objs, opt)
	return e, err
}

// LinkLayout is Link but also returns the section layout.
func LinkLayout(objs []*obj.File, opt Options) (*obj.Executable, *Layout, error) {
	if opt.Entry == "" {
		opt.Entry = "_start"
	}
	lay := &Layout{
		TextOff: make([]uint32, len(objs)),
		DataOff: make([]uint32, len(objs)),
		BSSOff:  make([]uint32, len(objs)),
	}

	// Pass 1: layout.
	var textWords, dataBytes, bssBytes uint32
	for i, f := range objs {
		if err := f.Validate(); err != nil {
			return nil, nil, fmt.Errorf("link %s: %w", opt.Name, err)
		}
		lay.TextOff[i] = textWords * 4
		textWords += uint32(len(f.Text))
		dataBytes = (dataBytes + 7) &^ 7
		lay.DataOff[i] = dataBytes
		dataBytes += uint32(len(f.Data))
		bssBytes = (bssBytes + 7) &^ 7
		lay.BSSOff[i] = bssBytes
		bssBytes += f.BSSSize
	}
	dataBytes = (dataBytes + 7) &^ 7
	bssBase := opt.DataBase + dataBytes
	bssBase = (bssBase + 7) &^ 7
	lay.BSSBase = bssBase

	// Pass 2: global symbol table.
	type def struct {
		addr  uint32
		owner string
	}
	global := map[string]def{}
	addrOf := func(oi int, s *obj.Symbol) uint32 {
		switch s.Section {
		case obj.SecText:
			return opt.TextBase + lay.TextOff[oi] + s.Off
		case obj.SecData:
			return opt.DataBase + lay.DataOff[oi] + s.Off
		default:
			return bssBase + lay.BSSOff[oi] + s.Off
		}
	}
	for oi, f := range objs {
		for si := range f.Syms {
			s := &f.Syms[si]
			if !s.Defined {
				continue
			}
			if prev, dup := global[s.Name]; dup {
				return nil, nil, fmt.Errorf("link %s: symbol %q defined in both %s and %s",
					opt.Name, s.Name, prev.owner, f.Name)
			}
			global[s.Name] = def{addr: addrOf(oi, s), owner: f.Name}
		}
	}

	// Pass 3: copy sections and apply relocations.
	text := make([]isa.Word, textWords)
	data := make([]byte, dataBytes)
	var syms []obj.Symbol
	var blocks []obj.ExeBlock
	for oi, f := range objs {
		copy(text[lay.TextOff[oi]/4:], f.Text)
		copy(data[lay.DataOff[oi]:], f.Data)
		resolve := func(r obj.Reloc) (uint32, error) {
			name := f.Syms[r.Sym].Name
			d, ok := global[name]
			if !ok {
				return 0, fmt.Errorf("link %s: undefined symbol %q referenced from %s",
					opt.Name, name, f.Name)
			}
			return uint32(int64(d.addr) + int64(r.Addend)), nil
		}
		for _, r := range f.Relocs {
			v, err := resolve(r)
			if err != nil {
				return nil, nil, err
			}
			wi := lay.TextOff[oi]/4 + r.Off/4
			w := text[wi]
			switch r.Kind {
			case obj.RelJ26:
				text[wi] = w&0xfc000000 | v>>2&0x03ffffff
			case obj.RelHI16:
				text[wi] = w&0xffff0000 | (v+0x8000)>>16&0xffff
			case obj.RelLO16:
				text[wi] = w&0xffff0000 | v&0xffff
			case obj.RelWord:
				text[wi] = v
			default:
				return nil, nil, fmt.Errorf("link %s: bad text reloc kind %v", opt.Name, r.Kind)
			}
		}
		for _, r := range f.DataRelocs {
			v, err := resolve(r)
			if err != nil {
				return nil, nil, err
			}
			if r.Kind != obj.RelWord {
				return nil, nil, fmt.Errorf("link %s: data reloc kind %v unsupported", opt.Name, r.Kind)
			}
			binary.BigEndian.PutUint32(data[lay.DataOff[oi]+r.Off:], v)
		}
		for si := range f.Syms {
			s := f.Syms[si]
			if !s.Defined {
				continue
			}
			s.Off = addrOf(oi, &f.Syms[si])
			syms = append(syms, s)
		}
		for bi := range f.Blocks {
			b := &f.Blocks[bi]
			blocks = append(blocks, obj.ExeBlock{
				Addr:   opt.TextBase + lay.TextOff[oi] + b.Off,
				NInstr: b.NInstr,
				Flags:  b.Flags,
				Mem:    b.Mem,
			})
		}
	}

	entry, ok := global[opt.Entry]
	if !ok {
		return nil, nil, fmt.Errorf("link %s: entry symbol %q undefined", opt.Name, opt.Entry)
	}

	e := &obj.Executable{
		Name:     opt.Name,
		Entry:    entry.addr,
		TextBase: opt.TextBase,
		Text:     text,
		DataBase: opt.DataBase,
		Data:     data,
		BSSBase:  bssBase,
		BSSSize:  (bssBytes + 7) &^ 7,
		Syms:     syms,
		Blocks:   blocks,
		Traced:   opt.Traced,
	}
	return e, lay, nil
}
