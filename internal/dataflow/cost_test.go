package dataflow

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
)

// TestLoopDepths checks the iterated-SCC nesting estimate on a doubly
// nested counting loop: the entry and exit blocks sit outside any
// cycle, the outer loop body is depth 1, and the self-looping inner
// block is depth 2.
func TestLoopDepths(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 10)) // entry: depth 0
	a.Label("outer")
	a.I(isa.ADDIU(isa.RegT1, isa.RegZero, 10)) // outer preheader of inner
	a.Label("inner")
	a.I(isa.ADDIU(isa.RegT1, isa.RegT1, 0xffff)) // t1--
	a.Br(isa.BNE(isa.RegT1, isa.RegZero, 0), "inner")
	a.I(isa.NOP)
	a.I(isa.ADDIU(isa.RegT0, isa.RegT0, 0xffff)) // t0--
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "outer")
	a.I(isa.NOP)
	a.I(isa.JR(isa.RegRA)) // exit: depth 0
	a.I(isa.NOP)
	f := a.MustFinish()

	p := analyze(t, f)
	depths := loopDepths(p)
	count := map[int]int{}
	max := 0
	for _, d := range depths {
		count[d]++
		if d > max {
			max = d
		}
	}
	if max != 2 {
		t.Fatalf("max loop depth = %d, want 2 (depths %v)", max, depths)
	}
	if count[2] != 1 {
		t.Errorf("%d blocks at depth 2, want exactly the inner block (depths %v)", count[2], depths)
	}
	// Outer body: the inner preheader and the decrement/back-branch
	// block both sit in the outer cycle only.
	if count[1] != 2 {
		t.Errorf("%d blocks at depth 1, want 2 (depths %v)", count[1], depths)
	}
	if count[0] < 2 {
		t.Errorf("%d blocks at depth 0, want entry and exit (depths %v)", count[0], depths)
	}
}

// TestWeightCap: the frequency weight grows by costLoopBase per level
// and saturates at costDepthCap.
func TestWeightCap(t *testing.T) {
	if w := weight(0); w != 1 {
		t.Errorf("weight(0) = %v, want 1", w)
	}
	if w := weight(1); w != costLoopBase {
		t.Errorf("weight(1) = %v, want %v", w, costLoopBase)
	}
	capW := weight(costDepthCap)
	if w := weight(costDepthCap + 5); w != capW {
		t.Errorf("weight beyond cap = %v, want saturated %v", w, capW)
	}
}

// TestCostModelMerge checks the fold used when a kernel and a user
// image feed one trace stream, and the derived ratios.
func TestCostModelMerge(t *testing.T) {
	a := &CostModel{
		Name: "a", Blocks: 3, MaxDepth: 1,
		Words: 30, Instrs: 100, WeightSum: 10,
		AddedInstr: 12, OrigInstr: 48,
		Funcs: []FuncCost{{Name: "f", Blocks: 3, Words: 30, Instrs: 100, Added: 12}},
	}
	b := &CostModel{
		Name: "b", Blocks: 2, MaxDepth: 3,
		Words: 20, Instrs: 50, WeightSum: 5,
		AddedInstr: 6, OrigInstr: 12,
		Funcs: []FuncCost{{Name: "g", Blocks: 2, Words: 20, Instrs: 50, Added: 6}},
	}
	a.Merge(b)
	if a.Blocks != 5 || a.MaxDepth != 3 || a.Words != 50 || a.Instrs != 150 ||
		a.WeightSum != 15 || a.AddedInstr != 18 || a.OrigInstr != 60 {
		t.Errorf("merged model wrong: %+v", a)
	}
	if len(a.Funcs) != 2 {
		t.Errorf("merged %d func rows, want 2", len(a.Funcs))
	}
	if got, want := a.WordsPerInstr(), 50.0/150.0; got != want {
		t.Errorf("WordsPerInstr = %v, want %v", got, want)
	}
	if got, want := a.WordsPerBlock(), 50.0/15.0; got != want {
		t.Errorf("WordsPerBlock = %v, want %v", got, want)
	}
	if got, want := a.AddedPerInstr(), 18.0/60.0; got != want {
		t.Errorf("AddedPerInstr = %v, want %v", got, want)
	}

	var zero CostModel
	if zero.WordsPerInstr() != 0 || zero.WordsPerBlock() != 0 || zero.AddedPerInstr() != 0 {
		t.Error("empty model ratios should be 0, not NaN")
	}
}

// TestStaticCostErrors: the model requires an instrumented image.
func TestStaticCostErrors(t *testing.T) {
	if _, err := StaticCostTraced(nil); err == nil {
		t.Error("StaticCostTraced(nil) succeeded")
	}
}
