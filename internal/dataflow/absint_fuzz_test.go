package dataflow

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

// FuzzAbsInt checks the value analysis's soundness claim against a
// concrete oracle: whatever the abstract interpreter reports at a
// program point must over-approximate the machine state of any one
// concrete execution reaching that point. The fuzz input shapes a
// small multi-function program (ABI-conforming: balanced frames, ra
// never clobbered between jal and jr) and drives the branch decisions
// of one executed path; the oracle simulates that path with real
// register/memory semantics and, before every instruction, checks each
// register the analysis claims to know — const(k), sp+δ, gp+δ,
// base+δ — against the simulated value. Branch directions may be
// infeasible: the analysis is path-insensitive, so its facts must hold
// over every CFG edge regardless.
func FuzzAbsInt(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 3, 0, 1, 2, 3, 4, 5, 6, 7, 250, 9, 9})
	f.Add([]byte{1, 2, 0, 0, 4, 4, 200, 100, 7, 3, 1, 0})
	f.Add([]byte{3, 1, 1, 6, 2, 5, 0, 255, 128, 64, 32, 16, 8, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := &byteReader{data: data}
		a := asm.New("fuzz")

		nFuncs := 1 + r.next()%3
		fname := func(i int) string { return "v" + string(rune('0'+i)) }
		bname := func(fi, bi int) string {
			return "v" + string(rune('0'+fi)) + "b" + string(rune('0'+bi))
		}
		reg := func() int { return fuzzRegs[r.next()%len(fuzzRegs)] }
		for fi := 0; fi < nFuncs; fi++ {
			a.Func(fname(fi), 0)
			frame := uint32(8 + r.next()%4*8)
			a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(-frame)))
			nBlocks := 1 + r.next()%3
			for bi := 0; bi < nBlocks; bi++ {
				a.Label(bname(fi, bi))
				for k, n := 0, r.next()%5; k < n; k++ {
					switch r.next() % 8 {
					case 0:
						a.I(isa.ADDU(reg(), reg(), reg()))
					case 1:
						a.I(isa.ADDIU(reg(), reg(), uint16(r.next())))
					case 2:
						a.I(isa.LUI(reg(), uint16(r.next())))
					case 3:
						a.I(isa.ORI(reg(), reg(), uint16(r.next())))
					case 4:
						a.I(isa.LW(reg(), reg(), uint16(r.next()%8*4)))
					case 5:
						a.I(isa.SW(reg(), reg(), uint16(r.next()%8*4)))
					case 6:
						a.I(isa.SUBU(reg(), reg(), reg()))
					case 7:
						a.I(isa.SLL(reg(), reg(), uint32(r.next()%8)))
					}
				}
				if bi == nBlocks-1 {
					a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(frame)))
					a.I(isa.JR(isa.RegRA))
					a.I(isa.NOP)
					continue
				}
				switch r.next() % 4 {
				case 0: // fall through
				case 1:
					a.Br(isa.BEQ(reg(), reg(), 0), bname(fi, r.next()%nBlocks))
					a.I(isa.NOP)
				case 2:
					a.JalSym(fname(r.next() % nFuncs))
					a.I(isa.NOP)
				case 3:
					a.Jmp(bname(fi, r.next()%nBlocks))
					a.I(isa.NOP)
				}
			}
		}
		file, err := a.Finish()
		if err != nil {
			t.Fatalf("generator produced invalid module: %v", err)
		}
		p, err := AnalyzeObjects([]*obj.File{file})
		if err != nil {
			t.Fatalf("AnalyzeObjects on generated module: %v", err)
		}
		runValueOracle(t, file, p.Object(0), r)
	})
}

// initMem is the oracle's deterministic initial memory image.
func initMem(addr uint32) uint32 { return addr*2654435761 + 0x9e3779b9 }

// runValueOracle simulates one concrete path (branch directions drawn
// from r) and checks every known abstract value against the simulated
// state at each instruction.
func runValueOracle(t *testing.T, f *obj.File, facts *Facts, r *byteReader) {
	j26 := map[uint32]uint32{}
	for _, rl := range f.Relocs {
		if rl.Kind == obj.RelJ26 && rl.Sym >= 0 && rl.Sym < len(f.Syms) {
			j26[rl.Off] = f.Syms[rl.Sym].Off + uint32(rl.Addend)
		}
	}
	leaders := map[uint32]bool{}
	for i := range f.Blocks {
		leaders[f.Blocks[i].Off] = true
	}

	var regs [32]uint32
	for i := 1; i < 32; i++ {
		regs[i] = uint32(i) * 0x01010101 // arbitrary; entry facts are ⊤
	}
	regs[isa.RegSP] = 0x7fff0000
	regs[isa.RegGP] = 0x10008000
	mem := map[uint32]uint32{}
	siteLast := map[uint64]uint32{} // load site -> last value it produced

	type frame struct{ sp, gp uint32 } // anchors at function entry
	anchor := frame{regs[isa.RegSP], regs[isa.RegGP]}
	var anchors []frame
	var stack []uint32 // concrete return addresses

	// check compares the abstract claims before instruction k of the
	// block at off against the concrete registers.
	check := func(off uint32, k int) {
		st, ok := facts.ValuesAt(off, k)
		if !ok {
			t.Fatalf("path executes block 0x%x (+%d) but analysis has no state for it", off, k)
		}
		for ri := 1; ri < 32; ri++ {
			v := st[ri]
			var want uint32
			switch v.Kind {
			case VBot:
				t.Fatalf("path executes block 0x%x (+%d) but %s is ⊥ (unreached)",
					off, k, isa.RegName(ri))
				continue
			case VConst:
				want = uint32(v.Off)
			case VSP:
				want = anchor.sp + uint32(v.Off)
			case VGP:
				want = anchor.gp + uint32(v.Off)
			case VBase:
				last, seen := siteLast[v.Base]
				if !seen {
					t.Fatalf("block 0x%x (+%d): %s anchored to load site 0x%x the path never executed",
						off, k, isa.RegName(ri), v.Base)
				}
				want = last + uint32(v.Off)
			default:
				continue // ⊤: no claim
			}
			if regs[ri] != want {
				t.Fatalf("block 0x%x (+%d): %s = 0x%x concretely, but analysis claims %+v (0x%x)",
					off, k, isa.RegName(ri), regs[ri], v, want)
			}
		}
	}

	// exec applies one instruction's concrete semantics. site is the
	// instruction's static identity (load value-numbering).
	exec := func(w isa.Word, site uint64) {
		d := isa.Decode(w)
		simm := uint32(isa.SignExt16(d.Imm))
		set := func(rd int, v uint32) {
			if rd != 0 {
				regs[rd] = v
			}
		}
		switch d.Op {
		case isa.OpSpecial:
			switch d.Funct {
			case isa.FnADDU:
				set(d.Rd, regs[d.Rs]+regs[d.Rt])
			case isa.FnSUBU:
				set(d.Rd, regs[d.Rs]-regs[d.Rt])
			case isa.FnAND:
				set(d.Rd, regs[d.Rs]&regs[d.Rt])
			case isa.FnOR:
				set(d.Rd, regs[d.Rs]|regs[d.Rt])
			case isa.FnXOR:
				set(d.Rd, regs[d.Rs]^regs[d.Rt])
			case isa.FnSLL:
				set(d.Rd, regs[d.Rt]<<d.Shamt)
			case isa.FnSRL:
				set(d.Rd, regs[d.Rt]>>d.Shamt)
			case isa.FnSRA:
				set(d.Rd, uint32(int32(regs[d.Rt])>>d.Shamt))
			}
		case isa.OpADDIU:
			set(d.Rt, regs[d.Rs]+simm)
		case isa.OpORI:
			set(d.Rt, regs[d.Rs]|uint32(d.Imm))
		case isa.OpXORI:
			set(d.Rt, regs[d.Rs]^uint32(d.Imm))
		case isa.OpLUI:
			set(d.Rt, uint32(d.Imm)<<16)
		case isa.OpJAL:
			// ra is set when the jump executes, before its delay slot.
		case isa.OpLW:
			addr := regs[d.Rs] + simm
			v, ok := mem[addr]
			if !ok {
				v = initMem(addr)
			}
			set(d.Rt, v)
			siteLast[site] = v
		case isa.OpSW:
			mem[regs[d.Rs]+simm] = regs[d.Rt]
		}
	}

	pc := uint32(0)
	var blockOff uint32
	var blockK int
	for steps := 0; steps < 512; steps++ {
		if pc/4 >= uint32(len(f.Text)) {
			break
		}
		if leaders[pc] {
			blockOff, blockK = pc, 0
		}
		check(blockOff, blockK)
		w := f.Text[pc/4]
		site := uint64(blockOff) + uint64(blockK)*4 // == block key + word index (object 0)
		if !isa.HasDelaySlot(w) {
			exec(w, site)
			pc += 4
			blockK++
			continue
		}
		if pc/4+1 >= uint32(len(f.Text)) {
			break
		}
		d := isa.Decode(w)
		if d.Op == isa.OpJAL {
			regs[isa.RegRA] = pc + 8
		}
		blockK++
		check(blockOff, blockK)
		exec(f.Text[pc/4+1], site+4) // delay slot
		switch {
		case isa.IsBranch(w):
			if r.next()%2 == 1 {
				pc = pc + 4 + isa.SignExt16(d.Imm)<<2
			} else {
				pc += 8
			}
		case d.Op == isa.OpJAL:
			target, ok := j26[pc]
			if !ok || len(stack) >= 16 {
				return
			}
			stack = append(stack, pc+8)
			anchors = append(anchors, anchor)
			pc = target
			anchor = frame{regs[isa.RegSP], regs[isa.RegGP]}
		case d.Op == isa.OpJ:
			target, ok := j26[pc]
			if !ok {
				return
			}
			pc = target
		case d.Op == isa.OpSpecial && d.Funct == isa.FnJR && d.Rs == isa.RegRA:
			if len(stack) == 0 {
				return // back to the unknown caller; oracle stops
			}
			if regs[isa.RegRA] != stack[len(stack)-1] {
				return // ra diverged from the call stack; outside the modeled ABI
			}
			pc = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			anchor = anchors[len(anchors)-1]
			anchors = anchors[:len(anchors)-1]
		default:
			return
		}
	}
}
