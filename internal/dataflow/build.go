package dataflow

import (
	"encoding/binary"
	"fmt"
	"sort"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

// AnalyzeObjects builds and solves the interprocedural CFG of a set of
// relocatable objects as the linker will lay them out: jal/j targets
// resolve through J26 relocations and the global symbol table (across
// objects), branches are object-local and PC-relative, and any
// non-jump relocation against a function symbol marks that function
// address-taken (its return summary becomes all-live, since indirect
// calls to it are invisible).
func AnalyzeObjects(objs []*obj.File) (*Program, error) {
	p := &Program{byKey: map[uint64]int{}}

	// Global symbol table: name -> defined text location.
	type loc struct {
		obj  int
		off  uint32
		isFn bool
	}
	gsym := map[string]loc{}
	for oi, f := range objs {
		for _, s := range f.Syms {
			if s.Defined && s.Section == obj.SecText {
				if _, dup := gsym[s.Name]; !dup {
					gsym[s.Name] = loc{oi, s.Off, s.Func}
				}
			}
		}
	}

	// Blocks and function spans, object by object.
	type span struct {
		off uint32
		fi  int
	}
	entries := make([][]span, len(objs)) // per object, sorted by off
	fnByEntry := map[uint64]int{}
	for oi, f := range objs {
		var es []span
		for _, s := range f.Syms {
			if s.Defined && s.Section == obj.SecText && s.Func {
				fi := len(p.fns)
				p.fns = append(p.fns, fn{entry: -1})
				es = append(es, span{s.Off, fi})
				fnByEntry[key(oi, s.Off)] = fi
			}
		}
		sort.Slice(es, func(i, j int) bool { return es[i].off < es[j].off })
		entries[oi] = es

		for bi := range f.Blocks {
			bb := &f.Blocks[bi]
			if bb.NInstr <= 0 || bb.Off/4+uint32(bb.NInstr) > uint32(len(f.Text)) {
				return nil, fmt.Errorf("dataflow: %s block %d out of range", f.Name, bi)
			}
			k := key(oi, bb.Off)
			if _, dup := p.byKey[k]; dup {
				return nil, fmt.Errorf("dataflow: %s duplicate block at 0x%x", f.Name, bb.Off)
			}
			fi := -1
			if j := sort.Search(len(es), func(j int) bool { return es[j].off > bb.Off }); j > 0 {
				fi = es[j-1].fi
			}
			p.byKey[k] = len(p.blocks)
			p.blocks = append(p.blocks, block{
				key:    k,
				words:  f.Text[bb.Off/4 : bb.Off/4+uint32(bb.NInstr)],
				fn:     fi,
				target: -1,
				next:   -1,
			})
		}
	}
	for k, fi := range fnByEntry {
		if bi, ok := p.byKey[k]; ok {
			p.fns[fi].entry = bi
		} else {
			// Function symbol not on a block boundary: its code is
			// attributed to the surrounding blocks; stay conservative.
			p.fns[fi].retAll = true
			p.fns[fi].escaped = true
		}
	}

	// blockContaining finds the block index covering text offset off in
	// object oi (blocks are in layout order), or -1.
	blockContaining := func(oi int, off uint32) int {
		bs := objs[oi].Blocks
		j := sort.Search(len(bs), func(j int) bool { return bs[j].Off > off })
		if j == 0 {
			return -1
		}
		bb := &bs[j-1]
		if off >= bb.Off+uint32(bb.NInstr)*4 {
			return -1
		}
		return p.byKey[key(oi, bb.Off)]
	}

	// Address-taken scan: any relocation that is not a J26 jump field
	// and resolves to a function symbol is an address escaping into
	// data or a register. For the value analysis the same scan is
	// block-grained: the escaped address may be an indirect jump
	// target, so the block holding it is poisoned (entered with ⊤).
	markTaken := func(f *obj.File, r obj.Reloc) {
		if r.Sym < 0 || r.Sym >= len(f.Syms) {
			return
		}
		l, ok := gsym[f.Syms[r.Sym].Name]
		if !ok {
			return
		}
		if l.isFn {
			if fi, ok := fnByEntry[key(l.obj, l.off)]; ok {
				p.fns[fi].retAll = true
				p.fns[fi].escaped = true
			}
		}
		if bi := blockContaining(l.obj, l.off+uint32(r.Addend)); bi >= 0 {
			p.blocks[bi].poisoned = true
		}
	}
	for _, f := range objs {
		for _, r := range f.Relocs {
			if r.Kind != obj.RelJ26 {
				markTaken(f, r)
			}
		}
		for _, r := range f.DataRelocs {
			markTaken(f, r)
		}
	}

	// Relocation-patched words: their encoded immediates are not final,
	// so the value transfer must not constant-fold them.
	for oi, f := range objs {
		for _, r := range f.Relocs {
			bi := blockContaining(oi, r.Off)
			if bi < 0 {
				continue
			}
			b := &p.blocks[bi]
			if b.relocd == nil {
				b.relocd = make([]bool, len(b.words))
			}
			b.relocd[(r.Off-uint32(b.key))/4] = true
		}
	}

	// Terminators. J26 relocations are looked up by the jump word's
	// text offset; an unresolved target degrades to the unknown kinds.
	for oi, f := range objs {
		j26 := map[uint32]obj.Reloc{} // text offset -> reloc
		for _, r := range f.Relocs {
			if r.Kind == obj.RelJ26 {
				j26[r.Off] = r
			}
		}
		resolveJ26 := func(off uint32) (int, bool) { // -> block index
			r, ok := j26[off]
			if !ok || r.Sym < 0 || r.Sym >= len(f.Syms) {
				return -1, false
			}
			l, ok := gsym[f.Syms[r.Sym].Name]
			if !ok {
				return -1, false
			}
			// Local jumps are encoded as a section-start symbol plus
			// the target offset in the addend.
			bi, ok := p.byKey[key(l.obj, l.off+uint32(r.Addend))]
			return bi, ok
		}
		for bi := range f.Blocks {
			bb := &f.Blocks[bi]
			b := &p.blocks[p.byKey[key(oi, bb.Off)]]
			if bi+1 < len(f.Blocks) {
				b.next = p.byKey[key(oi, f.Blocks[bi+1].Off)]
			}
			classify(p, b, func(termOff uint32) (int, bool) { return resolveJ26(termOff) },
				func(targetOff uint32) (int, bool) {
					i, ok := p.byKey[key(oi, targetOff)]
					return i, ok
				}, bb.Off)
		}
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	return p.finish(), nil
}

// ExeConfig configures the executable front end.
type ExeConfig struct {
	// Transparent lists jal targets modeled as register-transparent
	// no-ops: the tracing runtime's bbtrace/memtrace entry points,
	// which save and restore everything they touch — except that they
	// reload ra from the bookkeeping area, which is exactly the effect
	// the verifier's liveness rules are after, so no ra define is
	// modeled for them.
	Transparent []uint32
	// AddrTaken lists function entry addresses known to escape (the
	// rewriter's relocation-level view, carried through the side
	// table). The data-section scan below catches the common cases on
	// its own; this widens it.
	AddrTaken []uint32
	// Poison lists text addresses whose containing blocks must be
	// entered with ⊤ by the value analysis: interior jump-table
	// targets from the rewriter's relocation view (FlowStats
	// EscapedText). The data scan catches addresses that appear as
	// literal data words; this covers ones materialized through
	// lui/ori immediate pairs, which it cannot see.
	Poison []uint32
}

// AnalyzeExecutable builds and solves the CFG of a linked image. Jump
// and call targets come straight from the encoded words (addresses are
// final after linking); address-taken functions are found by scanning
// the data section for words holding a function entry address, plus
// any entries the caller passes in.
func AnalyzeExecutable(e *obj.Executable, cfg ExeConfig) (*Facts, error) {
	p := &Program{byKey: map[uint64]int{}}
	transparent := map[uint32]bool{}
	for _, a := range cfg.Transparent {
		transparent[a] = true
	}

	type span struct {
		off uint32
		fi  int
	}
	var es []span
	fnByEntry := map[uint64]int{}
	for _, s := range e.Syms {
		if s.Func && s.Off >= e.TextBase && s.Off < e.TextEnd() {
			if _, dup := fnByEntry[uint64(s.Off)]; dup {
				continue
			}
			fi := len(p.fns)
			p.fns = append(p.fns, fn{entry: -1})
			es = append(es, span{s.Off, fi})
			fnByEntry[uint64(s.Off)] = fi
		}
	}
	sort.Slice(es, func(i, j int) bool { return es[i].off < es[j].off })

	for bi := range e.Blocks {
		bb := &e.Blocks[bi]
		lo := (bb.Addr - e.TextBase) / 4
		if bb.NInstr <= 0 || lo+uint32(bb.NInstr) > uint32(len(e.Text)) {
			return nil, fmt.Errorf("dataflow: %s block at 0x%x out of range", e.Name, bb.Addr)
		}
		k := uint64(bb.Addr)
		if _, dup := p.byKey[k]; dup {
			return nil, fmt.Errorf("dataflow: %s duplicate block at 0x%x", e.Name, bb.Addr)
		}
		fi := -1
		if j := sort.Search(len(es), func(j int) bool { return es[j].off > bb.Addr }); j > 0 {
			fi = es[j-1].fi
		}
		words := e.Text[lo : lo+uint32(bb.NInstr)]
		nb := block{key: k, words: words, fn: fi, target: -1, next: -1}
		// Mark the runtime calls transparent: a jal whose absolute
		// target is one of the tracing entry points.
		for i, w := range words {
			if w>>26 == isa.OpJAL {
				pc := bb.Addr + uint32(i)*4
				if transparent[jumpTarget(pc, w)] {
					if nb.transparent == nil {
						nb.transparent = make([]bool, len(words))
					}
					nb.transparent[i] = true
				}
			}
		}
		p.byKey[k] = len(p.blocks)
		p.blocks = append(p.blocks, nb)
	}
	for k, fi := range fnByEntry {
		if bi, ok := p.byKey[k]; ok {
			p.fns[fi].entry = bi
		} else {
			p.fns[fi].retAll = true
			p.fns[fi].escaped = true
		}
	}

	// Address-taken: caller-supplied entries, plus any data word that
	// equals a function entry address (jump/call tables, function
	// pointers initialized in data). Computed addresses that never
	// appear literally can escape this scan; the rewriter's relocation
	// view in cfg.AddrTaken is the sound source, this is the backstop.
	// For the value analysis, a text address appearing in data is a
	// potential indirect jump target: poison the containing block so it
	// is entered with ⊤ (function entries are exempt — the entry seed
	// already covers indirect entry).
	mark := func(addr uint32) {
		if fi, ok := fnByEntry[uint64(addr)]; ok {
			p.fns[fi].retAll = true
			p.fns[fi].escaped = true
		}
		if addr < e.TextBase || addr >= e.TextEnd() || addr%4 != 0 {
			return
		}
		bs := e.Blocks
		j := sort.Search(len(bs), func(j int) bool { return bs[j].Addr > addr })
		if j == 0 {
			return
		}
		bb := &bs[j-1]
		if addr >= bb.Addr+uint32(bb.NInstr)*4 {
			return
		}
		if bi, ok := p.byKey[uint64(bb.Addr)]; ok {
			p.blocks[bi].poisoned = true
		}
	}
	for _, a := range cfg.AddrTaken {
		mark(a)
	}
	for _, a := range cfg.Poison {
		mark(a)
	}
	for i := 0; i+4 <= len(e.Data); i += 4 {
		mark(binary.BigEndian.Uint32(e.Data[i:]))
	}

	for bi := range e.Blocks {
		bb := &e.Blocks[bi]
		b := &p.blocks[p.byKey[uint64(bb.Addr)]]
		if bi+1 < len(e.Blocks) {
			b.next = p.byKey[uint64(e.Blocks[bi+1].Addr)]
		}
		classify(p, b,
			func(termAddr uint32) (int, bool) {
				n := len(b.words)
				w := b.words[n-2]
				bi, ok := p.byKey[uint64(jumpTarget(termAddr, w))]
				return bi, ok
			},
			func(target uint32) (int, bool) {
				i, ok := p.byKey[uint64(target)]
				return i, ok
			}, bb.Addr)
	}
	if err := p.check(); err != nil {
		return nil, err
	}
	p.finish()
	return &Facts{p: p, hi: 0}, nil
}

// jumpTarget computes the absolute target of a J/JAL at address pc.
func jumpTarget(pc uint32, w isa.Word) uint32 {
	return (pc+4)&0xf0000000 | w<<2&0x0ffffffc
}

// key packs an object index and text offset.
func key(oi int, off uint32) uint64 { return uint64(oi)<<32 | uint64(off) }

// classify decides a block's terminator kind and successors. resolveJ
// maps the terminator's own offset/address to the block index of its
// J26 target (front-end specific); resolveOff maps a branch target
// offset/address within the same object to a block index. base is the
// block's offset/address (the same coordinate space as resolveOff).
func classify(p *Program, b *block, resolveJ func(uint32) (int, bool), resolveOff func(uint32) (int, bool), base uint32) {
	n := len(b.words)
	if n >= 2 && isa.HasDelaySlot(b.words[n-2]) && !isTransparent(b, n-2) {
		term := b.words[n-2]
		termOff := base + uint32(n-2)*4
		i := isa.Decode(term)
		switch {
		case isa.IsBranch(term):
			t := termOff + 4 + isa.SignExt16(i.Imm)<<2
			if ti, ok := resolveOff(t); ok {
				b.kind, b.target = termBranch, ti
			} else {
				b.kind = termJumpUnknown
			}
		case i.Op == isa.OpJAL:
			if ti, ok := resolveJ(termOff); ok {
				b.kind, b.target = termCall, ti
			} else {
				b.kind = termCallUnknown
			}
		case i.Op == isa.OpJ:
			ti, ok := resolveJ(termOff)
			if !ok {
				b.kind = termJumpUnknown
				break
			}
			tf := p.blocks[ti].fn
			switch {
			case tf == b.fn:
				b.kind, b.target = termJump, ti
			case tf >= 0 && p.fns[tf].entry == ti:
				b.kind, b.target = termTailCall, ti
			default:
				b.kind = termJumpUnknown
			}
		case i.Op == isa.OpSpecial && i.Funct == isa.FnJALR:
			b.kind = termCallUnknown
		case i.Op == isa.OpSpecial && i.Funct == isa.FnJR:
			if i.Rs == isa.RegRA {
				b.kind = termRet
			} else {
				b.kind = termJumpUnknown
			}
		default:
			b.kind = termJumpUnknown
		}
		return
	}
	// No delay-slot terminator: straight-line (label boundary or
	// syscall/break). A lone control transfer without room for its
	// delay slot in the same block is malformed; degrade to unknown.
	if n >= 1 && isa.HasDelaySlot(b.words[n-1]) && !isTransparent(b, n-1) {
		b.kind = termJumpUnknown
		return
	}
	b.kind = termFall
}

func isTransparent(b *block, i int) bool {
	return b.transparent != nil && b.transparent[i]
}
