package dataflow

import (
	"strings"
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

// FuzzLiveness checks the engine's one soundness claim against a
// concrete oracle. The fuzz input drives two things: the shape of a
// small multi-function program (block counts, instruction menu,
// terminator choices) and the branch decisions of one executed path
// through it. The oracle walks that path and, for every block entry it
// crosses, records which registers the path reads before writing from
// that entry onward; each such register must be in the analysis's
// live-in for that block. A second leg feeds arbitrary words through
// arbitrary block partitions and requires analysis to never panic
// (returning an error is fine).
func FuzzLiveness(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 2, 1, 0, 7, 9, 250, 4, 4, 4, 8, 1, 2, 3})
	f.Add([]byte{1, 1, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{2, 3, 3, 200, 100, 50, 25, 12, 6, 3, 1, 0, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data)%2 == 0 {
			fuzzGeneratedProgram(t, data)
		} else {
			fuzzArbitraryBlocks(t, data)
		}
	})
}

// byteReader hands out fuzz bytes, returning zero once exhausted (so
// short inputs degrade to small deterministic programs).
type byteReader struct {
	data []byte
	i    int
}

func (r *byteReader) next() int {
	if r.i >= len(r.data) {
		return 0
	}
	b := r.data[r.i]
	r.i++
	return int(b)
}

var fuzzRegs = []int{isa.RegV0, isa.RegA0, isa.RegT0, isa.RegT1, isa.RegT2, isa.RegS0}

func fuzzGeneratedProgram(t *testing.T, data []byte) {
	r := &byteReader{data: data}
	a := asm.New("fuzz")

	nFuncs := 1 + r.next()%3
	fname := func(i int) string { return "f" + string(rune('0'+i)) }
	bname := func(fi, bi int) string {
		return "f" + string(rune('0'+fi)) + "b" + string(rune('0'+bi))
	}

	reg := func() int { return fuzzRegs[r.next()%len(fuzzRegs)] }
	for fi := 0; fi < nFuncs; fi++ {
		a.Func(fname(fi), 0)
		nBlocks := 1 + r.next()%3
		for bi := 0; bi < nBlocks; bi++ {
			a.Label(bname(fi, bi))
			for k, n := 0, r.next()%4; k < n; k++ {
				switch r.next() % 6 {
				case 0:
					a.I(isa.ADDU(reg(), reg(), reg()))
				case 1:
					a.I(isa.ADDIU(reg(), reg(), uint16(r.next())))
				case 2:
					a.I(isa.LW(reg(), reg(), 0))
				case 3:
					a.I(isa.SW(reg(), reg(), 0))
				case 4:
					a.I(isa.MULT(reg(), reg()))
				case 5:
					a.I(isa.MFLO(reg()))
				}
			}
			if bi == nBlocks-1 {
				a.I(isa.JR(isa.RegRA))
				a.I(isa.NOP)
				continue
			}
			switch r.next() % 4 {
			case 0: // fall through
			case 1:
				a.Br(isa.BEQ(reg(), reg(), 0), bname(fi, r.next()%nBlocks))
				a.I(isa.NOP)
			case 2:
				a.JalSym(fname(r.next() % nFuncs))
				a.I(isa.NOP)
			case 3:
				a.Jmp(bname(fi, r.next()%nBlocks))
				a.I(isa.NOP)
			}
		}
	}
	file, err := a.Finish()
	if err != nil {
		t.Fatalf("generator produced invalid module: %v", err)
	}
	p, err := AnalyzeObjects([]*obj.File{file})
	if err != nil {
		t.Fatalf("AnalyzeObjects on generated module: %v", err)
	}
	runPathOracle(t, file, p.Object(0), r)
}

// runPathOracle executes one concrete path through the object (branch
// directions drawn from r) and checks read-before-write against the
// analysis's live-in at every block entry crossed.
func runPathOracle(t *testing.T, f *obj.File, facts *Facts, r *byteReader) {
	// J26 targets: named symbol offset plus addend (local jumps use a
	// section-start symbol carrying the target in the addend).
	j26 := map[uint32]uint32{}
	for _, rl := range f.Relocs {
		if rl.Kind == obj.RelJ26 && rl.Sym >= 0 && rl.Sym < len(f.Syms) {
			j26[rl.Off] = f.Syms[rl.Sym].Off + uint32(rl.Addend)
		}
	}
	leaders := map[uint32]bool{}
	for i := range f.Blocks {
		leaders[f.Blocks[i].Off] = true
	}

	type entry struct {
		off     uint32
		written isa.RegSet
	}
	var open []entry
	read := func(m isa.RegSet) {
		for i := range open {
			for _, reg := range (m &^ open[i].written).Regs() {
				in, ok := facts.LiveIn(open[i].off)
				if !ok {
					t.Fatalf("no live-in facts for block 0x%x", open[i].off)
				}
				if !in.Has(reg) {
					t.Fatalf("path reads %s before writing it after entering block 0x%x, but live-in %v omits it",
						isa.FlowRegName(reg), open[i].off, in)
				}
			}
		}
	}
	write := func(m isa.RegSet) {
		for i := range open {
			open[i].written |= m
		}
	}
	step := func(pc uint32) {
		w := f.Text[pc/4]
		read(isa.UsesMask(w))
		write(isa.DefsMask(w))
	}

	pc := uint32(0)
	var stack []uint32
	for steps := 0; steps < 512; steps++ {
		if pc/4 >= uint32(len(f.Text)) {
			break
		}
		if leaders[pc] {
			open = append(open, entry{off: pc})
		}
		w := f.Text[pc/4]
		if !isa.HasDelaySlot(w) {
			step(pc)
			pc += 4
			continue
		}
		if pc/4+1 >= uint32(len(f.Text)) {
			break
		}
		step(pc)     // the transfer itself (jal defines ra here)
		step(pc + 4) // then its delay slot
		d := isa.Decode(w)
		switch {
		case isa.IsBranch(w):
			if r.next()%2 == 1 {
				pc = pc + 4 + isa.SignExt16(d.Imm)<<2
			} else {
				pc += 8
			}
		case d.Op == isa.OpJAL:
			target, ok := j26[pc]
			if !ok || len(stack) >= 16 {
				return
			}
			stack = append(stack, pc+8)
			pc = target
		case d.Op == isa.OpJ:
			target, ok := j26[pc]
			if !ok {
				return
			}
			pc = target
		case d.Op == isa.OpSpecial && d.Funct == isa.FnJR && d.Rs == isa.RegRA:
			if len(stack) == 0 {
				return // falls back to the unknown caller; oracle stops
			}
			pc = stack[len(stack)-1]
			stack = stack[:len(stack)-1]
		default:
			return // jalr / jr non-ra: not generated, but stay safe
		}
	}
}

// fuzzArbitraryBlocks decodes the raw input as instruction words split
// into an arbitrary valid block partition and requires AnalyzeObjects
// to either analyze it or reject it with an error — never panic.
func fuzzArbitraryBlocks(t *testing.T, data []byte) {
	n := len(data) / 4
	if n > 64 {
		n = 64
	}
	if n == 0 {
		return
	}
	text := make([]isa.Word, n)
	for i := range text {
		text[i] = isa.Word(data[i*4])<<24 | isa.Word(data[i*4+1])<<16 |
			isa.Word(data[i*4+2])<<8 | isa.Word(data[i*4+3])
	}
	f := &obj.File{
		Name: "garbage",
		Text: text,
		Syms: []obj.Symbol{
			{Name: "main", Section: obj.SecText, Off: 0, Defined: true, Func: true},
		},
	}
	for i := 0; i < n; {
		sz := 1 + int(data[i%len(data)])%3
		if i+sz > n {
			sz = n - i
		}
		f.Blocks = append(f.Blocks, obj.BasicBlock{Off: uint32(i) * 4, NInstr: int32(sz)})
		i += sz
	}
	// A second function symbol somewhere in the middle, possibly off a
	// block boundary, plus a data word aliasing its address space.
	if n > 2 {
		f.Syms = append(f.Syms, obj.Symbol{
			Name: "mid", Section: obj.SecText,
			Off: uint32(int(data[0])%n) * 4, Defined: true, Func: true,
		})
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("AnalyzeObjects panicked on arbitrary blocks: %v", r)
		}
	}()
	if _, err := AnalyzeObjects([]*obj.File{f}); err != nil {
		if !strings.HasPrefix(err.Error(), "dataflow:") {
			t.Fatalf("unexpected error namespace: %v", err)
		}
	}
}
