package dataflow

import "systrace/internal/isa"

// Forward abstract interpretation: per-register abstract values over
// the same CFG the liveness solver uses. The value lattice per
// register is
//
//	⊥  (VBot)    unreached
//	const(k)     the register provably holds the 32-bit constant k
//	sp+δ         entry stack pointer of the enclosing function, plus δ
//	gp+δ         entry global pointer of the enclosing function, plus δ
//	base+δ       the value loaded by one static load site, plus δ
//	⊤  (VTop)    anything
//
// sp+δ and gp+δ are anchored at the enclosing function's entry, so
// they relate register values to one frame without knowing the frame's
// runtime address. base+δ value-numbers the result of one load site:
// two registers carrying base(s)+δ1 and base(s)+δ2 provably differ by
// δ2-δ1, because both are copies of the value produced by the most
// recent execution of site s — to keep that true in loops, executing a
// load site invalidates every other register still carrying its old
// result.
//
// Soundness convention (the dual of liveness): the abstract value
// over-approximates the concrete one. A register reported const/sp+δ/
// gp+δ/base+δ is guaranteed to hold exactly that value on every
// modeled path; every unknown — merged disagreeing paths, untracked
// arithmetic, unresolved control flow, reloc-patched immediates, the
// kernel registers k0/k1 (asynchronously clobbered by interrupt
// handlers), escaped block addresses — degrades to ⊤. The FuzzAbsInt
// oracle checks this against a concrete single-path simulator.
//
// Interprocedural conservatism matches the stack-height pass this
// lattice subsumes: a call preserves sp and gp (the ABI restores sp
// and never repoints gp) and nothing else; a function entry starts at
// sp+0/gp+0 with every other register ⊤, which also covers indirect
// entries (tail calls, jump tables into function entries), since the
// anchors are defined at the moment of entry.

// ValKind classifies an abstract value.
type ValKind uint8

const (
	VBot   ValKind = iota // unreached
	VConst                // Off is the value
	VSP                   // function-entry sp, plus Off
	VGP                   // function-entry gp, plus Off
	VBase                 // load site Base's result, plus Off
	VTop                  // unknown
)

// AbsVal is one register's abstract value. Base is the load site's
// unique key (block key + word offset) for VBase, zero otherwise; Off
// is the value for VConst and the displacement for the pointer kinds.
type AbsVal struct {
	Kind ValKind
	Base uint64
	Off  int32
}

// Top and Bot are the lattice extremes.
var (
	Top = AbsVal{Kind: VTop}
	Bot = AbsVal{Kind: VBot}
)

// Const builds a constant abstract value.
func Const(v int32) AbsVal { return AbsVal{Kind: VConst, Off: v} }

// Known reports whether v is one of the informative kinds (not ⊥/⊤).
func (v AbsVal) Known() bool { return v.Kind > VBot && v.Kind < VTop }

// Add displaces v by d (32-bit wraparound); ⊥/⊤ absorb.
func (v AbsVal) Add(d int32) AbsVal {
	if !v.Known() {
		return v
	}
	v.Off += d
	return v
}

// Diff returns v - u when both are known, anchored the same way
// (same kind and, for base+δ, the same load site).
func (v AbsVal) Diff(u AbsVal) (int32, bool) {
	if !v.Known() || v.Kind != u.Kind || v.Base != u.Base {
		return 0, false
	}
	return v.Off - u.Off, true
}

// RegVals is the abstract state over the 32 GPRs. Index 0 is unused;
// read registers through Reg.
type RegVals [32]AbsVal

// Reg returns register r's abstract value (register 0 reads as
// const 0).
func (v *RegVals) Reg(r int) AbsVal {
	if r == 0 {
		return Const(0)
	}
	return v[r]
}

// set writes register r's abstract value. Register 0 is immutable and
// the kernel temporaries k0/k1 are never tracked: an interrupt may
// clobber them between any two instructions.
func (v *RegVals) set(r int, val AbsVal) {
	if r <= 0 || r >= 32 {
		return
	}
	if r == isa.RegK0 || r == isa.RegK1 {
		val = Top
	}
	v[r] = val
}

// EA returns the abstract effective address of memory instruction w
// under state v: value(base) + signext(imm).
func EA(v *RegVals, w isa.Word) AbsVal {
	i := isa.Decode(w)
	return v.Reg(i.Rs).Add(int32(int16(i.Imm)))
}

// joinVal merges two abstract values: equal values keep, ⊥ is the
// identity, anything else is ⊤.
func joinVal(a, b AbsVal) AbsVal {
	switch {
	case a == b, b.Kind == VBot:
		return a
	case a.Kind == VBot:
		return b
	}
	return Top
}

// topState is the all-⊤ state (modulo the implicit const-0 register 0).
func topState() *RegVals {
	var s RegVals
	for r := 1; r < 32; r++ {
		s[r] = Top
	}
	return &s
}

// entryState is the canonical function-entry state: sp and gp anchored
// at zero displacement, everything else unknown. This is correct for
// any entry into the function — direct call, tail call, or an indirect
// jump to its entry — because the anchors are defined by that entry.
func entryState() *RegVals {
	s := topState()
	s[isa.RegSP] = AbsVal{Kind: VSP}
	s[isa.RegGP] = AbsVal{Kind: VGP}
	return s
}

// killBase invalidates every register still carrying load site
// `site`'s previous result (the site is about to produce a new one).
func killBase(st *RegVals, site uint64) {
	for r := 1; r < 32; r++ {
		if st[r].Kind == VBase && st[r].Base == site {
			st[r] = Top
		}
	}
}

// binOp evaluates an ALU operation over abstract values.
func binOp(funct uint32, a, b AbsVal) AbsVal {
	ca, cb := a.Kind == VConst, b.Kind == VConst
	switch funct {
	case isa.FnADDU:
		switch {
		case cb:
			return a.Add(b.Off)
		case ca:
			return b.Add(a.Off)
		}
	case isa.FnSUBU:
		if cb {
			return a.Add(-b.Off)
		}
		if d, ok := a.Diff(b); ok {
			return Const(d)
		}
	case isa.FnOR, isa.FnXOR:
		switch {
		case ca && cb && funct == isa.FnOR:
			return Const(a.Off | b.Off)
		case ca && cb:
			return Const(a.Off ^ b.Off)
		case cb && b.Off == 0:
			return a
		case ca && a.Off == 0:
			return b
		}
	case isa.FnAND:
		switch {
		case ca && cb:
			return Const(a.Off & b.Off)
		case ca && a.Off == 0, cb && b.Off == 0:
			return Const(0)
		}
	case isa.FnNOR:
		if ca && cb {
			return Const(^(a.Off | b.Off))
		}
	case isa.FnSLT:
		if ca && cb {
			return boolConst(a.Off < b.Off)
		}
	case isa.FnSLTU:
		if ca && cb {
			return boolConst(uint32(a.Off) < uint32(b.Off))
		}
	case isa.FnSLLV:
		if ca && cb {
			return Const(int32(uint32(b.Off) << (uint32(a.Off) & 31)))
		}
	case isa.FnSRLV:
		if ca && cb {
			return Const(int32(uint32(b.Off) >> (uint32(a.Off) & 31)))
		}
	case isa.FnSRAV:
		if ca && cb {
			return Const(b.Off >> (uint32(a.Off) & 31))
		}
	}
	return Top
}

func boolConst(b bool) AbsVal {
	if b {
		return Const(1)
	}
	return Const(0)
}

// valTransferWord applies one instruction's forward value transfer to
// st in place. site is the word's unique key (for value-numbering load
// results).
func valTransferWord(b *block, i int, st *RegVals) {
	if isTransparent(b, i) {
		// A trace-runtime call: bbtrace/memtrace preserve every
		// register they touch except ra (restored from the bookkeeping
		// area, possibly stale), the assembler temporary, and the two
		// scratch xregs they own.
		st.set(isa.RegRA, Top)
		st.set(isa.RegAT, Top)
		st.set(isa.XReg1, Top)
		st.set(isa.XReg2, Top)
		return
	}
	w := b.words[i]
	if b.relocd != nil && b.relocd[i] {
		// The word's immediate or target field is relocation-patched:
		// the encoded bits are not what will execute. Clobber the def
		// (if any) and model nothing else.
		if d := isa.Defs(w); d > 0 {
			st.set(d, Top)
		}
		return
	}
	d := isa.Decode(w)
	simm := int32(int16(d.Imm))
	switch d.Op {
	case isa.OpSpecial:
		switch d.Funct {
		case isa.FnSLL:
			if v := st.Reg(d.Rt); v.Kind == VConst {
				st.set(d.Rd, Const(int32(uint32(v.Off)<<d.Shamt)))
			} else if d.Shamt == 0 {
				st.set(d.Rd, v)
			} else {
				st.set(d.Rd, Top)
			}
		case isa.FnSRL:
			if v := st.Reg(d.Rt); v.Kind == VConst {
				st.set(d.Rd, Const(int32(uint32(v.Off)>>d.Shamt)))
			} else if d.Shamt == 0 {
				st.set(d.Rd, v)
			} else {
				st.set(d.Rd, Top)
			}
		case isa.FnSRA:
			if v := st.Reg(d.Rt); v.Kind == VConst {
				st.set(d.Rd, Const(v.Off>>d.Shamt))
			} else if d.Shamt == 0 {
				st.set(d.Rd, v)
			} else {
				st.set(d.Rd, Top)
			}
		case isa.FnSYSCALL, isa.FnBREAK:
			// The kernel's register effects are untracked; only the
			// stack and global pointers are assumed preserved (the
			// same ABI assumption the stack-height pass always made).
			sp, gp := st[isa.RegSP], st[isa.RegGP]
			*st = *topState()
			st[isa.RegSP], st[isa.RegGP] = sp, gp
		case isa.FnJR, isa.FnMTHI, isa.FnMTLO, isa.FnMULT, isa.FnMULTU, isa.FnDIV, isa.FnDIVU:
			// No GPR def.
		default:
			if wr := isa.Defs(w); wr > 0 {
				switch d.Funct {
				case isa.FnADDU, isa.FnSUBU, isa.FnAND, isa.FnOR, isa.FnXOR,
					isa.FnNOR, isa.FnSLT, isa.FnSLTU, isa.FnSLLV, isa.FnSRLV, isa.FnSRAV:
					st.set(wr, binOp(d.Funct, st.Reg(d.Rs), st.Reg(d.Rt)))
				default:
					// JALR, MFHI, MFLO, anything untracked.
					st.set(wr, Top)
				}
			}
		}
	case isa.OpADDIU:
		st.set(d.Rt, st.Reg(d.Rs).Add(simm))
	case isa.OpORI:
		if v := st.Reg(d.Rs); v.Kind == VConst {
			st.set(d.Rt, Const(v.Off|int32(uint32(d.Imm))))
		} else if d.Imm == 0 {
			st.set(d.Rt, v)
		} else {
			st.set(d.Rt, Top)
		}
	case isa.OpXORI:
		if v := st.Reg(d.Rs); v.Kind == VConst {
			st.set(d.Rt, Const(v.Off^int32(uint32(d.Imm))))
		} else if d.Imm == 0 {
			st.set(d.Rt, v)
		} else {
			st.set(d.Rt, Top)
		}
	case isa.OpANDI:
		if v := st.Reg(d.Rs); v.Kind == VConst {
			st.set(d.Rt, Const(v.Off&int32(uint32(d.Imm))))
		} else {
			st.set(d.Rt, Top)
		}
	case isa.OpSLTI:
		if v := st.Reg(d.Rs); v.Kind == VConst {
			st.set(d.Rt, boolConst(v.Off < simm))
		} else {
			st.set(d.Rt, Top)
		}
	case isa.OpSLTIU:
		if v := st.Reg(d.Rs); v.Kind == VConst {
			st.set(d.Rt, boolConst(uint32(v.Off) < uint32(simm)))
		} else {
			st.set(d.Rt, Top)
		}
	case isa.OpLUI:
		st.set(d.Rt, Const(int32(uint32(d.Imm)<<16)))
	case isa.OpJAL:
		st.set(isa.RegRA, Top)
	case isa.OpLB, isa.OpLH, isa.OpLW, isa.OpLBU, isa.OpLHU:
		site := b.key + uint64(i)*4
		killBase(st, site)
		st.set(d.Rt, AbsVal{Kind: VBase, Base: site})
	default:
		if wr := isa.Defs(w); wr > 0 {
			st.set(wr, Top)
		}
	}
}

// valTransfer runs the whole block forward from an entry state,
// returning the exit state.
func valTransfer(b *block, in *RegVals) *RegVals {
	out := *in
	for i := range b.words {
		valTransferWord(b, i, &out)
	}
	return &out
}

// joinVals merges a reaching state into a block's value-in and reports
// whether it changed. A nil (⊥) value-in adopts the state.
func (p *Program) joinVals(bi int, st *RegVals) bool {
	b := &p.blocks[bi]
	if b.valIn == nil {
		c := *st
		b.valIn = &c
		return true
	}
	changed := false
	for r := 1; r < 32; r++ {
		if j := joinVal(b.valIn[r], st[r]); j != b.valIn[r] {
			b.valIn[r] = j
			changed = true
		}
	}
	return changed
}

// solveValues runs the forward worklist to the least fixpoint over the
// value lattice. Seeds: every function entry gets the canonical entry
// state, and every block whose address escapes into data or a
// non-jump relocation (a jump-table target, a handler vector) gets ⊤,
// since an indirect jump may enter it with any state.
func (p *Program) solveValues() {
	n := len(p.blocks)
	inWL := make([]bool, n)
	var wl []int
	push := func(i int) {
		if i >= 0 && !inWL[i] {
			inWL[i] = true
			wl = append(wl, i)
		}
	}
	es := entryState()
	entryOf := make([]bool, n)
	for _, f := range p.fns {
		if f.entry >= 0 {
			entryOf[f.entry] = true
			if p.joinVals(f.entry, es) {
				push(f.entry)
			}
		}
	}
	top := topState()
	for i := range p.blocks {
		// Escaped non-entry blocks can be entered with arbitrary state.
		// Function entries are exempt: the entry state covers indirect
		// entry by construction.
		if p.blocks[i].poisoned && !entryOf[i] && p.joinVals(i, top) {
			push(i)
		}
	}

	for len(wl) > 0 {
		bi := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[bi] = false
		p.stats.ValPasses++

		b := &p.blocks[bi]
		if b.valIn == nil {
			continue
		}
		out := valTransfer(b, b.valIn)

		// flow propagates out-state to an intraprocedural successor.
		// Edges that cross a function boundary carry a different frame
		// anchor: a target that is its function's entry is covered by
		// the entry seed; any other cross-function target degrades
		// to ⊤.
		flow := func(ti int, st *RegVals) {
			if ti < 0 {
				return
			}
			t := &p.blocks[ti]
			if t.fn != b.fn {
				if entryOf[ti] {
					return
				}
				st = top
			}
			if p.joinVals(ti, st) {
				push(ti)
			}
		}
		switch b.kind {
		case termFall:
			flow(b.next, out)
		case termBranch:
			flow(b.target, out)
			flow(b.next, out)
		case termJump:
			flow(b.target, out)
		case termCall, termCallUnknown:
			// The callee starts from the entry seed; the return point
			// resumes with sp and gp preserved (the ABI restores sp and
			// never repoints gp) and everything else unknown.
			ret := *topState()
			ret[isa.RegSP] = out[isa.RegSP]
			ret[isa.RegGP] = out[isa.RegGP]
			flow(b.next, &ret)
		}
		// termTailCall: the target is a function entry (seed covers).
		// termRet / termJumpUnknown: no modeled successors; unknown
		// jump targets are covered by the poisoned-block seeding.
	}
}

// ValuesAt returns the abstract register values immediately before
// instruction k of the block at off (k == NInstr gives the exit
// state). ok is false when the block is unknown or unreached.
func (f *Facts) ValuesAt(off uint32, k int) (*RegVals, bool) {
	b := f.lookup(off)
	if b == nil || b.valIn == nil || k < 0 || k > len(b.words) {
		return nil, false
	}
	st := *b.valIn
	for i := 0; i < k; i++ {
		valTransferWord(b, i, &st)
	}
	return &st, true
}
