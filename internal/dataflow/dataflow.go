// Package dataflow is an iterative-fixpoint analysis engine over the
// guest program's control-flow graph. It computes per-basic-block
// register liveness (live-in/live-out over the full flow-register
// space: GPRs, HI/LO, and the FP condition flag), point liveness
// within a block, and a reaching stack-height, with a conservative
// interprocedural summary at call and return edges (unknown targets
// are treated as all-live).
//
// Two front ends feed the same engine: AnalyzeObjects builds the CFG
// from relocatable object files before instrumentation (this is what
// epoxie consults to elide dead-register save/restore traffic), and
// AnalyzeExecutable builds it from a linked image (this is what the
// static verifier uses to re-derive liveness independently over the
// rewritten text).
//
// Soundness convention: the analysis over-approximates liveness. A
// register reported dead is guaranteed never read-before-write on any
// modeled path; a register reported live may in fact be dead. Every
// unknown — indirect calls, computed jumps, unresolved targets,
// fall-off-the-end — therefore degrades to all-live, and syscall/break
// add the kernel ABI's argument registers as uses while deliberately
// under-approximating the kernel's defines (fewer defines = more
// liveness = safe).
package dataflow

import (
	"fmt"

	"systrace/internal/isa"
)

// termKind classifies how a block hands off control.
type termKind uint8

const (
	termFall        termKind = iota // straight-line into next (includes syscall/break)
	termBranch                      // conditional: target or next
	termJump                        // unconditional resolved jump within the function
	termCall                        // jal with resolved callee; returns to next
	termTailCall                    // j to another function's entry
	termRet                         // jr ra
	termCallUnknown                 // jalr, or jal with unresolved target
	termJumpUnknown                 // jr non-ra, or unresolved jump/branch target
)

// abiUses is the register set a syscall or break hands to the kernel:
// the syscall number in v0, up to four arguments, and the stack
// pointer (the kernel may read the user stack for more arguments).
const abiUses = isa.RegSet(1)<<isa.RegV0 |
	isa.RegSet(1)<<isa.RegA0 | isa.RegSet(1)<<isa.RegA1 |
	isa.RegSet(1)<<isa.RegA2 | isa.RegSet(1)<<isa.RegA3 |
	isa.RegSet(1)<<isa.RegSP

// block is one CFG node.
type block struct {
	key   uint64 // (object index << 32) | text offset; address for executables
	words []isa.Word
	fn    int // index into Program.fns

	kind   termKind
	target int // block index, -1 if none/unknown
	next   int // fall-through / return-point block index, -1 at object end

	// transparent marks words modeled as having no register effect at
	// all (the rewriter's jal bbtrace / jal memtrace calls, which save
	// and restore everything they touch). nil when no word is. The
	// forward value transfer is stricter: it clobbers ra, at, and the
	// two scratch xregs at a transparent call (see valTransferWord).
	transparent []bool

	// relocd marks words whose immediate or target field carries a
	// pending relocation (object front end only): their encoded bits
	// are not what will execute, so the value transfer treats any
	// value they produce as ⊤.
	relocd []bool

	// poisoned marks blocks whose address escapes into data or a
	// non-jump relocation: an indirect jump may enter them with any
	// state, so their value-in joins ⊤.
	poisoned bool

	liveIn, liveOut isa.RegSet

	// deps are the blocks whose liveOut reads this block's liveIn and
	// must be revisited when it grows.
	deps []int

	// valIn is the abstract register state on entry (nil = ⊥,
	// unreached by the forward value analysis).
	valIn *RegVals
}

// fn is one function: a maximal run of blocks under a function-entry
// symbol.
type fn struct {
	entry int // entry block index, -1 for the synthetic pre-entry region

	// retAll forces the return summary to all-live: the function is
	// address-taken, tail-called, reachable by a non-call edge from
	// another function, or has no statically known call sites (so its
	// callers, if any, are invisible to the analysis).
	retAll bool

	// escaped records that the function's address genuinely escapes —
	// it is address-taken through a relocation or data word, or its
	// entry symbol is not on a block boundary. Unlike retAll (which
	// wire() also sets for pure liveness conservatism, e.g. "no known
	// call sites"), escaped means computed control flow really can
	// enter the function's interior.
	escaped bool

	// afters are the blocks execution resumes at after each known call
	// to this function; the return summary is the union of their
	// live-ins.
	afters []int

	// retDeps are the blocks whose liveOut reads this function's
	// return summary: its jr-ra blocks and its tail-call sites.
	retDeps []int
}

// Stats summarizes an analysis run.
type Stats struct {
	Blocks    int // CFG nodes analyzed
	Funcs     int // functions
	Passes    int // backward (liveness) worklist pops until fixpoint
	ValPasses int // forward (value) worklist pops until fixpoint
}

// Program is the analyzed CFG with its liveness solution.
type Program struct {
	blocks []block
	fns    []fn
	byKey  map[uint64]int
	stats  Stats
}

// Facts is the per-object (or per-image) query view of a Program.
// Offsets are text byte offsets within the object for the object
// front end, absolute addresses for the executable front end.
type Facts struct {
	p  *Program
	hi uint64
}

// Object returns the query view for the i'th object file passed to
// AnalyzeObjects.
func (p *Program) Object(i int) *Facts { return &Facts{p: p, hi: uint64(i) << 32} }

// Stats returns the analysis run's summary counters.
func (p *Program) Stats() Stats { return p.stats }

func (f *Facts) lookup(off uint32) *block {
	if i, ok := f.p.byKey[f.hi|uint64(off)]; ok {
		return &f.p.blocks[i]
	}
	return nil
}

// LiveIn returns the registers live on entry to the block at off.
func (f *Facts) LiveIn(off uint32) (isa.RegSet, bool) {
	b := f.lookup(off)
	if b == nil {
		return isa.AllRegs, false
	}
	return b.liveIn, true
}

// LiveOut returns the registers live on exit from the block at off.
func (f *Facts) LiveOut(off uint32) (isa.RegSet, bool) {
	b := f.lookup(off)
	if b == nil {
		return isa.AllRegs, false
	}
	return b.liveOut, true
}

// LiveAt returns the registers live immediately before instruction k
// of the block at off (k == NInstr gives the live-out set). Word order
// within a block is execution order — a branch precedes its delay slot
// both in memory and in time — so the backward scan is exact.
func (f *Facts) LiveAt(off uint32, k int) (isa.RegSet, bool) {
	b := f.lookup(off)
	if b == nil || k < 0 || k > len(b.words) {
		return isa.AllRegs, false
	}
	live := b.liveOut
	for i := len(b.words) - 1; i >= k; i-- {
		live = transferWord(b, i, live)
	}
	return live, true
}

// StackHeight returns the stack-pointer displacement in bytes from
// function entry on entry to the block at off (negative once a frame
// has been pushed). The second result is false when the height is
// unknown — the block is unreachable, joins disagree, or sp is
// modified in a way the analysis does not track. It is a projection
// of the forward value analysis: the height is known exactly when
// sp's abstract value is sp+δ (see stack.go).
func (f *Facts) StackHeight(off uint32) (int32, bool) {
	b := f.lookup(off)
	if b == nil || b.valIn == nil {
		return 0, false
	}
	if v := b.valIn[isa.RegSP]; v.Kind == VSP {
		return v.Off, true
	}
	return 0, false
}

// transferWord applies one instruction's backward liveness transfer.
func transferWord(b *block, i int, live isa.RegSet) isa.RegSet {
	if b.transparent != nil && b.transparent[i] {
		return live
	}
	w := b.words[i]
	live = live&^isa.DefsMask(w) | isa.UsesMask(w)
	if w>>26 == isa.OpSpecial {
		if fn := w & 63; fn == isa.FnSYSCALL || fn == isa.FnBREAK {
			live |= abiUses
		}
	}
	return live
}

// transfer runs the whole block backward from a live-out set.
func transfer(b *block, live isa.RegSet) isa.RegSet {
	for i := len(b.words) - 1; i >= 0; i-- {
		live = transferWord(b, i, live)
	}
	return live
}

// liveInOf reads a successor's live-in; -1 (missing successor) is
// all-live: control leaves the modeled region.
func (p *Program) liveInOf(i int) isa.RegSet {
	if i < 0 {
		return isa.AllRegs
	}
	return p.blocks[i].liveIn
}

// retLive is the return summary of function fi: the union of the
// live-ins at every known return point, or all-live when retAll.
func (p *Program) retLive(fi int) isa.RegSet {
	if fi < 0 {
		return isa.AllRegs
	}
	f := &p.fns[fi]
	if f.retAll {
		return isa.AllRegs
	}
	var s isa.RegSet
	for _, a := range f.afters {
		s |= p.liveInOf(a)
	}
	return s
}

// liveOutOf computes a block's live-out from the current solution.
func (p *Program) liveOutOf(b *block) isa.RegSet {
	switch b.kind {
	case termFall:
		return p.liveInOf(b.next)
	case termBranch:
		return p.liveInOf(b.target) | p.liveInOf(b.next)
	case termJump:
		return p.liveInOf(b.target)
	case termCall:
		// Callee entry plus the return point: without a must-define
		// summary for the callee, everything live after the call is
		// assumed to survive it.
		return p.liveInOf(b.target) | p.liveInOf(b.next)
	case termTailCall:
		return p.liveInOf(b.target) | p.retLive(b.fn)
	case termRet:
		return p.retLive(b.fn)
	}
	return isa.AllRegs // termCallUnknown, termJumpUnknown
}

// solve runs the backward worklist to the least fixpoint. All sets
// grow monotonically from empty, so termination is bounded by
// NumFlowRegs bits per block.
func (p *Program) solve() {
	n := len(p.blocks)
	inWL := make([]bool, n)
	wl := make([]int, 0, n)
	for i := n - 1; i >= 0; i-- {
		wl = append(wl, i)
		inWL[i] = true
	}
	for len(wl) > 0 {
		bi := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[bi] = false
		p.stats.Passes++

		b := &p.blocks[bi]
		in := b.liveIn | transfer(b, p.liveOutOf(b))
		if in != b.liveIn {
			b.liveIn = in
			for _, d := range b.deps {
				if !inWL[d] {
					inWL[d] = true
					wl = append(wl, d)
				}
			}
		}
	}
	for i := range p.blocks {
		b := &p.blocks[i]
		b.liveOut = p.liveOutOf(b)
	}
	p.stats.Blocks = n
	p.stats.Funcs = len(p.fns)
}

// wire builds the reverse dependency lists the worklist uses and the
// per-function return bookkeeping, then marks the conservative retAll
// conditions that need whole-graph knowledge (non-call entry edges).
func (p *Program) wire() {
	dep := func(src, on int) {
		if on >= 0 {
			p.blocks[on].deps = append(p.blocks[on].deps, src)
		}
	}
	for i := range p.blocks {
		b := &p.blocks[i]
		switch b.kind {
		case termFall:
			dep(i, b.next)
		case termBranch:
			dep(i, b.target)
			dep(i, b.next)
		case termJump:
			dep(i, b.target)
		case termCall:
			dep(i, b.target)
			dep(i, b.next)
			if b.target >= 0 {
				cf := &p.fns[p.blocks[b.target].fn]
				cf.afters = append(cf.afters, b.next)
			}
		case termTailCall:
			dep(i, b.target)
			if b.fn >= 0 {
				p.fns[b.fn].retDeps = append(p.fns[b.fn].retDeps, i)
			}
			if b.target >= 0 {
				p.fns[p.blocks[b.target].fn].retAll = true
			}
		case termRet:
			if b.fn >= 0 {
				p.fns[b.fn].retDeps = append(p.fns[b.fn].retDeps, i)
			}
		}
		// Non-call edges into another function (a branch, jump, or
		// fall-through crossing a function boundary) mean that code
		// runs under callers the call-summary machinery cannot see.
		if b.kind == termBranch || b.kind == termJump || b.kind == termFall {
			for _, t := range []int{b.target, b.next} {
				if t >= 0 && p.blocks[t].fn >= 0 && p.blocks[t].fn != b.fn {
					p.fns[p.blocks[t].fn].retAll = true
				}
			}
		}
	}
	// A function with no known call sites may still have invisible
	// callers (vectors, computed calls the address-taken scan missed);
	// give it the all-live return summary. Its liveness stays precise —
	// only its jr-ra blocks pay.
	for i := range p.fns {
		f := &p.fns[i]
		if len(f.afters) == 0 {
			f.retAll = true
		}
	}
	// Return-summary dependencies: when a return point's live-in grows,
	// the owning function's return blocks and tail-call sites must be
	// revisited.
	for i := range p.fns {
		f := &p.fns[i]
		for _, a := range f.afters {
			if a >= 0 {
				p.blocks[a].deps = append(p.blocks[a].deps, f.retDeps...)
			}
		}
	}
}

func (p *Program) finish() *Program {
	p.wire()
	p.solve()
	p.solveValues()
	return p
}

func (p *Program) check() error {
	for i := range p.blocks {
		if len(p.blocks[i].words) == 0 {
			return fmt.Errorf("dataflow: empty block %d", i)
		}
	}
	return nil
}
