package dataflow

import (
	"fmt"
	"sort"

	"systrace/internal/obj"
)

// This file is the static trace-cost model: a prediction of how much
// trace an instrumented image generates per unit of original work,
// derived purely from the rewritten image and its CFG — no execution.
// Each recorded block emits exactly 1 + |Mem| trace words per entry
// (one bbtrace record plus one word per traced memory reference) and
// reconstructs exactly NInstr original instructions, so the only
// unknown is the execution-frequency mix of the blocks. The model
// estimates that mix structurally: blocks are weighted by loop
// nesting depth (10^min(depth,3)), computed from iterated SCC
// condensation of the intra-procedural CFG. The prediction is
// validated dynamically (benchdataflow compares it against measured
// trace volume on the corpus), not trusted.

// costDepthCap caps the loop-nesting weight exponent: beyond triply
// nested loops the structural estimate has no more signal.
const costDepthCap = 3

// FuncCost is the per-function slice of the model.
type FuncCost struct {
	Name   string  `json:"name"`
	Blocks int     `json:"blocks"`
	Depth  int     `json:"max_loop_depth"`
	Words  float64 `json:"weighted_trace_words"`
	Instrs float64 `json:"weighted_orig_instrs"`
	// Added is the instrumentation text words added to the function
	// (prologues, trace calls, EA no-ops), a static count.
	Added int `json:"added_instr_words"`
}

// WordsPerInstr is the function's predicted trace words per original
// instruction executed.
func (f *FuncCost) WordsPerInstr() float64 {
	if f.Instrs == 0 {
		return 0
	}
	return f.Words / f.Instrs
}

// CostModel is the static trace-cost prediction for one image (or,
// after Merge, a set of images sharing one trace stream).
type CostModel struct {
	Name string `json:"image"`
	// Blocks is the recorded blocks covered; MaxDepth the deepest
	// loop nesting found (capped at costDepthCap).
	Blocks   int `json:"blocks"`
	MaxDepth int `json:"max_loop_depth"`
	// Words and Instrs are the loop-weighted sums over recorded
	// blocks: Σ w(b)·(1+|Mem(b)|) and Σ w(b)·NInstr(b).
	Words  float64 `json:"weighted_trace_words"`
	Instrs float64 `json:"weighted_orig_instrs"`
	// WeightSum is Σ w(b), the denominator for per-entry averages.
	WeightSum float64 `json:"weight_sum"`
	// AddedInstr is the total instrumentation text words added;
	// OrigInstr the original text words they were added to.
	AddedInstr int `json:"added_instr_words"`
	OrigInstr  int `json:"orig_instr_words"`

	Funcs []FuncCost `json:"funcs,omitempty"`
}

// WordsPerInstr is the headline prediction: trace words emitted per
// original instruction executed. Its dynamic counterpart is
// TraceWords / Parser.Fetches.
func (c *CostModel) WordsPerInstr() float64 {
	if c.Instrs == 0 {
		return 0
	}
	return c.Words / c.Instrs
}

// WordsPerBlock is the predicted trace words per recorded block entry.
func (c *CostModel) WordsPerBlock() float64 {
	if c.WeightSum == 0 {
		return 0
	}
	return c.Words / c.WeightSum
}

// AddedPerInstr is the static code-growth ratio: instrumentation
// words added per original text word.
func (c *CostModel) AddedPerInstr() float64 {
	if c.OrigInstr == 0 {
		return 0
	}
	return float64(c.AddedInstr) / float64(c.OrigInstr)
}

// Merge folds another image's model into this one, as when a kernel
// and a user program feed the same trace stream. Per-function rows
// are concatenated.
func (c *CostModel) Merge(o *CostModel) {
	c.Blocks += o.Blocks
	if o.MaxDepth > c.MaxDepth {
		c.MaxDepth = o.MaxDepth
	}
	c.Words += o.Words
	c.Instrs += o.Instrs
	c.WeightSum += o.WeightSum
	c.AddedInstr += o.AddedInstr
	c.OrigInstr += o.OrigInstr
	c.Funcs = append(c.Funcs, o.Funcs...)
}

// StaticCostTraced builds the model of an epoxie-instrumented image
// with the standard tracing-runtime entries marked transparent and
// the rewriter's relocation-level escape views applied — the same
// front-end configuration the verifier uses.
func StaticCostTraced(e *obj.Executable) (*CostModel, error) {
	if e == nil {
		return nil, fmt.Errorf("dataflow: nil executable")
	}
	return StaticCost(e, TracedExeConfig(e))
}

// StaticCost builds the trace-cost model of one instrumented image.
func StaticCost(e *obj.Executable, cfg ExeConfig) (*CostModel, error) {
	if e == nil || e.Instr == nil {
		return nil, fmt.Errorf("dataflow: cost model needs an instrumented image")
	}
	facts, err := AnalyzeExecutable(e, cfg)
	if err != nil {
		return nil, err
	}
	p := facts.p
	depths := loopDepths(p)
	weights := blockWeights(p, depths)

	c := &CostModel{Name: e.Name}
	perFn := map[string]*FuncCost{}
	for i := range e.Instr.Blocks {
		ib := &e.Instr.Blocks[i]
		eb := e.BlockFor(ib.RecordAddr)
		if eb == nil {
			continue
		}
		depth, w := 0, 1.0
		if bi, ok := p.byKey[uint64(eb.Addr)]; ok {
			depth, w = depths[bi], weights[bi]
		}
		words := float64(1 + len(ib.Mem))
		c.Blocks++
		c.Words += w * words
		c.Instrs += w * float64(ib.NInstr)
		c.WeightSum += w
		if depth > c.MaxDepth {
			c.MaxDepth = depth
		}
		added := int(eb.NInstr) - int(ib.NInstr)
		if added < 0 {
			added = 0
		}
		c.AddedInstr += added
		c.OrigInstr += int(ib.NInstr)

		name := e.FuncName(eb.Addr)
		fc := perFn[name]
		if fc == nil {
			fc = &FuncCost{Name: name}
			perFn[name] = fc
		}
		fc.Blocks++
		fc.Words += w * words
		fc.Instrs += w * float64(ib.NInstr)
		fc.Added += added
		if depth > fc.Depth {
			fc.Depth = depth
		}
	}
	for _, fc := range perFn {
		c.Funcs = append(c.Funcs, *fc)
	}
	sort.Slice(c.Funcs, func(i, j int) bool { return c.Funcs[i].Name < c.Funcs[j].Name })
	return c, nil
}

// costLoopBase is the assumed trip weight of one loop nesting level.
// Inter-procedural refinements (Wu–Larus-style invocation propagation
// over the static call graph) were evaluated against the corpus and
// made the estimate uniformly worse — deep call chains under a cold
// entry point get overweighted — so the mix model is intra-procedural
// loop structure only; see DESIGN.md.
const costLoopBase = 10.0

func weight(depth int) float64 {
	w := 1.0
	if depth > costDepthCap {
		depth = costDepthCap
	}
	for ; depth > 0; depth-- {
		w *= costLoopBase
	}
	return w
}

// blockWeights estimates each block's relative execution frequency
// from its intra-procedural loop nesting depth: costLoopBase^depth.
func blockWeights(p *Program, depths []int) []float64 {
	out := make([]float64, len(p.blocks))
	for i := range p.blocks {
		out[i] = weight(depths[i])
	}
	return out
}

// loopDepths assigns each block its loop-nesting depth by iterated
// SCC condensation: blocks in no cycle are depth 0; each non-trivial
// SCC contributes a nesting level, and removing its header exposes
// the next level. Call edges do not count as successors (a call
// returns), so the depths are intra-procedural.
func loopDepths(p *Program) []int {
	n := len(p.blocks)
	succ := make([][]int, n)
	for i := range p.blocks {
		b := &p.blocks[i]
		switch b.kind {
		case termFall, termCall, termCallUnknown:
			if b.next >= 0 {
				succ[i] = append(succ[i], b.next)
			}
		case termBranch:
			if b.target >= 0 {
				succ[i] = append(succ[i], b.target)
			}
			if b.next >= 0 {
				succ[i] = append(succ[i], b.next)
			}
		case termJump:
			if b.target >= 0 {
				succ[i] = append(succ[i], b.target)
			}
		}
		// termTailCall, termRet, termJumpUnknown: no intra-procedural
		// successor the depth estimate should follow.
	}
	depth := make([]int, n)
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	nestSCCs(succ, all, 0, depth)
	return depth
}

// nestSCCs finds non-trivial SCCs within nodes, assigns their members
// depth d+1, and recurses with each SCC's header removed.
func nestSCCs(succ [][]int, nodes []int, d int, depth []int) {
	if d >= costDepthCap {
		return
	}
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	for _, scc := range tarjan(succ, nodes, in) {
		trivial := len(scc) == 1
		if trivial {
			v := scc[0]
			for _, s := range succ[v] {
				if s == v {
					trivial = false
					break
				}
			}
		}
		if trivial {
			continue
		}
		for _, v := range scc {
			depth[v] = d + 1
		}
		// Drop the header (a member with a predecessor outside the
		// SCC, falling back to the smallest index) and look for inner
		// loops among the rest.
		member := map[int]bool{}
		for _, v := range scc {
			member[v] = true
		}
		header := scc[0]
	find:
		for _, u := range nodes {
			if member[u] {
				continue
			}
			for _, s := range succ[u] {
				if member[s] {
					header = s
					break find
				}
			}
		}
		inner := make([]int, 0, len(scc)-1)
		for _, v := range scc {
			if v != header {
				inner = append(inner, v)
			}
		}
		nestSCCs(succ, inner, d+1, depth)
	}
}

// tarjan returns the strongly connected components of the subgraph
// induced by nodes (iterative, to keep deep CFGs off the Go stack).
func tarjan(succ [][]int, nodes []int, in map[int]bool) [][]int {
	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	var sccStack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v  int
		si int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{root, 0}}
		index[root], low[root] = next, next
		next++
		sccStack = append(sccStack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(succ[f.v]) {
				w := succ[f.v][f.si]
				f.si++
				if !in[w] {
					continue
				}
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					sccStack = append(sccStack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := &frames[len(frames)-1]
				if low[f.v] < low[parent.v] {
					low[parent.v] = low[f.v]
				}
			}
			if low[f.v] == index[f.v] {
				var scc []int
				for {
					w := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == f.v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}
