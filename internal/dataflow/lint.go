package dataflow

import (
	"fmt"
	"sort"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

// Whole-binary lint over the value facts: sanity properties any guest
// image should satisfy regardless of instrumentation, checked with the
// same CFG and abstract values the cost model and verifier use. Where
// verify re-proves the *instrumentation's* invariants block by block,
// the lint asks about the *program*: is every block reachable, does
// every direct control transfer land on a block boundary, does every
// return leave the stack where the caller put it, and does any store
// go through a pointer the analysis proves wild.

// Lint check names, used as diagnostic categories and check counters.
const (
	LintUnreachable  = "unreachable"
	LintInterior     = "jump-interior"
	LintStackBalance = "stack-balance"
	LintWildStore    = "wild-store"
)

// LintDiag is one finding.
type LintDiag struct {
	// Addr is the offending instruction; Block the containing block.
	Addr  uint32 `json:"addr"`
	Block uint32 `json:"block"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func (d LintDiag) String() string {
	return fmt.Sprintf("0x%08x [%s]: %s", d.Addr, d.Check, d.Msg)
}

// LintResult is the lint report for one image.
type LintResult struct {
	Name   string `json:"image"`
	Blocks int    `json:"blocks"`
	// Checks counts properties actually examined per check, so a clean
	// result distinguishes "proved" from "nothing to look at".
	Checks map[string]int `json:"checks"`
	Diags  []LintDiag     `json:"diags,omitempty"`
}

// Clean reports whether no diagnostic fired.
func (r *LintResult) Clean() bool { return len(r.Diags) == 0 }

func (r *LintResult) check(name string) { r.Checks[name]++ }
func (r *LintResult) diag(addr, blk uint32, check, format string, args ...any) {
	r.Diags = append(r.Diags, LintDiag{
		Addr: addr, Block: blk, Check: check,
		Msg: fmt.Sprintf(format, args...),
	})
}

// TracedExeConfig is the front-end configuration for an
// epoxie-instrumented image: the tracing-runtime entries are
// transparent and the rewriter's relocation-level escape views apply.
// It degrades gracefully on an uninstrumented image (no runtime
// symbols, no Instr side table).
func TracedExeConfig(e *obj.Executable) ExeConfig {
	var cfg ExeConfig
	for _, name := range []string{"bbtrace", "memtrace", "memtrace_sp"} {
		if a, ok := e.Symbol(name); ok {
			cfg.Transparent = append(cfg.Transparent, a)
		}
	}
	// The memtrace runtime dispatches into its slot table with a
	// computed jr (entry + reg*16); the address escapes through
	// instruction immediates no relocation scan can see, so declare it.
	if a, ok := e.Symbol("memtrace_table"); ok {
		cfg.AddrTaken = append(cfg.AddrTaken, a)
	}
	if e.Instr != nil {
		cfg.AddrTaken = append(cfg.AddrTaken, e.Instr.Flow.AddrTaken...)
		cfg.Poison = e.Instr.Flow.EscapedText
	}
	return cfg
}

// LintExecutable lints a linked guest image.
func LintExecutable(e *obj.Executable) (*LintResult, error) {
	if e == nil {
		return nil, fmt.Errorf("dataflow: nil executable")
	}
	cfg := TracedExeConfig(e)
	facts, err := AnalyzeExecutable(e, cfg)
	if err != nil {
		return nil, err
	}
	p := facts.p
	r := &LintResult{Name: e.Name, Blocks: len(p.blocks), Checks: map[string]int{}}

	lintReachability(r, e, p, cfg)
	lintInteriors(r, e, p)
	lintStackBalance(r, e, p, facts)
	lintWildStores(r, e, p, facts)

	sort.Slice(r.Diags, func(i, j int) bool { return r.Diags[i].Addr < r.Diags[j].Addr })
	return r, nil
}

// lintReachability flood-fills the CFG from every root control can
// enter through — the image entry point, address-taken or escaped
// blocks, exported function entries (callable from outside the static
// view: syscall dispatch, vectors, libc linked for completeness), and
// the transparent runtime entries — and reports blocks no path covers.
func lintReachability(r *LintResult, e *obj.Executable, p *Program, cfg ExeConfig) {
	seen := make([]bool, len(p.blocks))
	var stack []int
	push := func(bi int) {
		if bi >= 0 && bi < len(p.blocks) && !seen[bi] {
			seen[bi] = true
			stack = append(stack, bi)
		}
	}
	if bi, ok := p.byKey[uint64(e.Entry)]; ok {
		push(bi)
	}
	for _, a := range cfg.Transparent {
		if bi, ok := p.byKey[uint64(a)]; ok {
			push(bi)
		}
	}
	for _, f := range p.fns {
		push(f.entry)
	}
	// An escaped function's interior is fair game for computed jumps
	// (the memtrace dispatch table is entered at entry + reg*16), so
	// every block of an address-taken function counts as a root, as
	// does any individually escaped/poisoned block. This is fn.escaped,
	// not fn.retAll: wire() also sets retAll for pure liveness
	// conservatism ("no known call sites"), which would make every
	// block a root and the check vacuous.
	for i := range p.blocks {
		b := &p.blocks[i]
		if b.poisoned || (b.fn >= 0 && p.fns[b.fn].escaped) {
			push(i)
		}
	}
	for len(stack) > 0 {
		bi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		b := &p.blocks[bi]
		switch b.kind {
		case termFall, termCall, termCallUnknown:
			push(b.next)
			push(b.target)
		case termBranch:
			push(b.target)
			push(b.next)
		case termJump, termTailCall:
			push(b.target)
		}
	}
	for i := range p.blocks {
		r.check(LintUnreachable)
		if seen[i] {
			continue
		}
		b := &p.blocks[i]
		name := e.FuncName(uint32(b.key))
		r.diag(uint32(b.key), uint32(b.key), LintUnreachable,
			"block in %s is unreachable from any entry, call, branch, or escaped address", name)
	}
}

// lintInteriors re-derives every direct control-transfer target from
// the encoded words and requires it to land on a block boundary inside
// text. The CFG builder quietly degrades unresolved targets to
// "unknown"; the lint makes that a finding, because a direct branch
// into the middle of a block — in a rewritten image, into the middle
// of an instrumentation group — bypasses the group's record and
// desynchronizes the trace.
func lintInteriors(r *LintResult, e *obj.Executable, p *Program) {
	for i := range p.blocks {
		b := &p.blocks[i]
		n := len(b.words)
		if n < 2 || !isa.HasDelaySlot(b.words[n-2]) || isTransparent(b, n-2) {
			continue
		}
		term := b.words[n-2]
		termAddr := uint32(b.key) + uint32(n-2)*4
		ins := isa.Decode(term)
		var target uint32
		switch {
		case isa.IsBranch(term):
			target = termAddr + 4 + isa.SignExt16(ins.Imm)<<2
		case ins.Op == isa.OpJ || ins.Op == isa.OpJAL:
			target = jumpTarget(termAddr, term)
		default: // jr/jalr: no static target
			continue
		}
		r.check(LintInterior)
		if target < e.TextBase || target >= e.TextEnd() {
			r.diag(termAddr, uint32(b.key), LintInterior,
				"control transfer to 0x%08x outside text [0x%08x,0x%08x)",
				target, e.TextBase, e.TextEnd())
			continue
		}
		if _, ok := p.byKey[uint64(target)]; !ok {
			r.diag(termAddr, uint32(b.key), LintInterior,
				"control transfer into block interior 0x%08x (bypasses the group head at its block start)",
				target)
		}
	}
}

// lintStackBalance requires every return the analysis can see to leave
// sp exactly at its function-entry height. A known nonzero height at a
// `jr ra` (after the delay slot — MIPS epilogues pop the frame there)
// is a definite leak or smash; an unknown height is skipped, matching
// the analysis' conservatism.
func lintStackBalance(r *LintResult, e *obj.Executable, p *Program, facts *Facts) {
	for i := range p.blocks {
		b := &p.blocks[i]
		if b.kind != termRet {
			continue
		}
		st, ok := facts.ValuesAt(uint32(b.key), len(b.words))
		if !ok {
			continue
		}
		v := st.Reg(isa.RegSP)
		if v.Kind != VSP {
			continue
		}
		r.check(LintStackBalance)
		if v.Off != 0 {
			r.diag(uint32(b.key)+uint32(len(b.words)-2)*4, uint32(b.key), LintStackBalance,
				"%s returns with sp displaced %+d bytes from function entry",
				e.FuncName(uint32(b.key)), v.Off)
		}
	}
}

// lintWildStores flags stores whose effective address the value
// analysis proves constant and wild: in the null page, inside text, or
// misaligned for the access width.
func lintWildStores(r *LintResult, e *obj.Executable, p *Program, facts *Facts) {
	for i := range p.blocks {
		b := &p.blocks[i]
		for k, w := range b.words {
			if !isa.IsMem(w) || isa.IsLoad(w) {
				continue
			}
			st, ok := facts.ValuesAt(uint32(b.key), k)
			if !ok {
				continue
			}
			ea := EA(st, w)
			if ea.Kind != VConst {
				continue
			}
			r.check(LintWildStore)
			addr := uint32(b.key) + uint32(k)*4
			a := uint32(ea.Off)
			sz := uint32(isa.MemSize(w))
			switch {
			case a < 0x1000:
				r.diag(addr, uint32(b.key), LintWildStore,
					"store through provably constant address 0x%08x in the null page", a)
			case a >= e.TextBase && a < e.TextEnd():
				r.diag(addr, uint32(b.key), LintWildStore,
					"store through provably constant address 0x%08x inside text", a)
			case sz > 1 && a%sz != 0:
				r.diag(addr, uint32(b.key), LintWildStore,
					"%d-byte store through provably constant address 0x%08x is misaligned", sz, a)
			}
		}
	}
}
