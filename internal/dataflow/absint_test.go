package dataflow

import (
	"strings"
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

func wantVal(t *testing.T, st *RegVals, ok bool, r int, want AbsVal, what string) {
	t.Helper()
	if !ok {
		t.Fatalf("%s: no value facts", what)
	}
	if got := st.Reg(r); got != want {
		t.Errorf("%s: %s = %+v, want %+v", what, isa.RegName(r), got, want)
	}
}

// TestValueTracking drives the core lattice through one block:
// constants materialize through lui/ori, pointer arithmetic keeps the
// sp anchor, and moves propagate values unchanged.
func TestValueTracking(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.LUI(isa.RegT0, 0x1234))
	a.I(isa.ORI(isa.RegT0, isa.RegT0, 0x5678))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xffe0)) // -32
	a.I(isa.ADDU(isa.RegFP, isa.RegSP, isa.RegZero))
	a.I(isa.ADDIU(isa.RegT1, isa.RegFP, 8))
	a.I(isa.SUBU(isa.RegT2, isa.RegT1, isa.RegSP)) // same-anchor diff
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	st, ok := facts.ValuesAt(0, 6)
	wantVal(t, st, ok, isa.RegT0, Const(0x12345678), "lui/ori const")
	wantVal(t, st, ok, isa.RegSP, AbsVal{Kind: VSP, Off: -32}, "sp after frame push")
	wantVal(t, st, ok, isa.RegFP, AbsVal{Kind: VSP, Off: -32}, "fp = move from sp")
	wantVal(t, st, ok, isa.RegT1, AbsVal{Kind: VSP, Off: -24}, "fp-relative addiu")
	wantVal(t, st, ok, isa.RegT2, Const(8), "subu of same-anchor pointers")
	// Register 0 always reads as const 0; k0/k1 are never tracked.
	wantVal(t, st, ok, isa.RegZero, Const(0), "zero register")
	wantVal(t, st, ok, isa.RegK0, Top, "k0 untracked")
}

// TestHeightEpilogues is the satellite-1 regression: the old dedicated
// height pass went to ⊤ on any sp write other than addiu. Through the
// value lattice, a frame-pointer epilogue (move sp,fp) and a
// constant-register pop (addu sp,sp,rK) keep the height known, while a
// genuinely dynamic alloca-style adjust still degrades to unknown —
// until sp is rebuilt from a value anchored to the entry frame.
func TestHeightEpilogues(t *testing.T) {
	a := asm.New("t")
	a.Func("fpframe", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xffe0)) // -32
	a.I(isa.ADDU(isa.RegFP, isa.RegSP, isa.RegZero))
	a.I(isa.SUBU(isa.RegSP, isa.RegSP, isa.RegA0)) // alloca: sp unknown
	a.Label("dynamic")
	a.I(isa.ADDU(isa.RegT0, isa.RegZero, isa.RegZero))
	a.I(isa.ADDU(isa.RegSP, isa.RegFP, isa.RegZero)) // epilogue: sp = fp
	a.Label("restored")
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 32))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	a.Func("constpop", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff0)) // -16
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 16))
	a.I(isa.ADDU(isa.RegSP, isa.RegSP, isa.RegT0)) // pop by known-const reg
	a.Label("popped")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	if _, ok := facts.StackHeight(0xc); ok { // dynamic
		t.Errorf("height after alloca-style adjust should be unknown")
	}
	if h, ok := facts.StackHeight(0x14); !ok || h != -32 { // restored
		t.Errorf("height after move sp,fp = %d,%v want -32,true", h, ok)
	}
	if h, ok := facts.StackHeight(0x2c); !ok || h != 0 { // popped
		t.Errorf("height after addu sp,sp,rK = %d,%v want 0,true", h, ok)
	}
}

// TestValueJoin: agreeing paths keep the value, disagreeing paths meet
// at ⊤.
func TestValueJoin(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.Br(isa.BEQ(isa.RegA0, isa.RegZero, 0), "other")
	a.I(isa.NOP)
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7))
	a.I(isa.ADDIU(isa.RegT1, isa.RegZero, 1))
	a.Jmp("join")
	a.I(isa.NOP)
	a.Label("other")
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7))
	a.I(isa.ADDIU(isa.RegT1, isa.RegZero, 2))
	a.Label("join")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	st, ok := facts.ValuesAt(0x20, 0) // join
	wantVal(t, st, ok, isa.RegT0, Const(7), "agreeing join")
	wantVal(t, st, ok, isa.RegT1, Top, "disagreeing join")
	wantVal(t, st, ok, isa.RegSP, AbsVal{Kind: VSP}, "sp across join")
}

// TestBaseValues: a load result is value-numbered by its static site,
// so displaced copies stay comparable, while two different load sites
// never compare.
func TestBaseValues(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.LW(isa.RegT0, isa.RegA0, 0))
	a.I(isa.ADDIU(isa.RegT1, isa.RegT0, 12))
	a.I(isa.LW(isa.RegT2, isa.RegA0, 0)) // different site, same operands
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	st, ok := facts.ValuesAt(0, 3)
	if !ok {
		t.Fatal("no value facts")
	}
	t0, t1, t2 := st.Reg(isa.RegT0), st.Reg(isa.RegT1), st.Reg(isa.RegT2)
	if t0.Kind != VBase || t1.Kind != VBase || t2.Kind != VBase {
		t.Fatalf("load results not base-valued: %+v %+v %+v", t0, t1, t2)
	}
	if d, ok := t1.Diff(t0); !ok || d != 12 {
		t.Errorf("t1-t0 = %d,%v want 12,true", d, ok)
	}
	if _, ok := t2.Diff(t0); ok {
		t.Errorf("different load sites must not compare")
	}
	// The effective address of a load through a tracked base.
	if ea := EA(st, isa.SW(isa.RegV0, isa.RegT1, 8)); ea != t0.Add(20) {
		t.Errorf("EA through displaced base = %+v, want %+v", ea, t0.Add(20))
	}
}

// TestCallClobbersValues: across a call only sp survives; across a
// syscall only sp and gp survive.
func TestCallClobbersValues(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff8)) // -8
	a.I(isa.LUI(isa.RegS0, 1))
	a.JalSym("leaf")
	a.I(isa.NOP)
	a.Label("after")
	a.I(isa.SYSCALL())
	a.Label("postsys")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 8))
	a.Func("leaf", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	st, ok := facts.ValuesAt(0x10, 0) // after
	wantVal(t, st, ok, isa.RegSP, AbsVal{Kind: VSP, Off: -8}, "sp across call")
	wantVal(t, st, ok, isa.RegS0, Top, "s0 across call (no callee summary)")
	wantVal(t, st, ok, isa.RegGP, AbsVal{Kind: VGP}, "gp across call")
	st, ok = facts.ValuesAt(0x14, 0) // postsys
	wantVal(t, st, ok, isa.RegSP, AbsVal{Kind: VSP, Off: -8}, "sp across syscall")
	wantVal(t, st, ok, isa.RegGP, AbsVal{Kind: VGP}, "gp across syscall")
	wantVal(t, st, ok, isa.RegRA, Top, "ra across syscall")
}

// TestRelocdNotFolded: an object-side word whose immediate carries a
// pending relocation (the la expansion) must not be constant-folded —
// the encoded bits are not what will execute.
func TestRelocdNotFolded(t *testing.T) {
	a := asm.New("t")
	a.Global("buf", 64)
	a.Func("main", 0)
	a.LA(isa.RegT0, "buf", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	st, ok := facts.ValuesAt(0, 2)
	wantVal(t, st, ok, isa.RegT0, Top, "reloc-patched la result")
}

// TestPoisonedBlock: a block whose address escapes into data (a jump
// table slot targeting a mid-function label) is entered with ⊤ —
// indirect jumps may reach it with any state — while the same code
// without the escape keeps its facts. Function entries are exempt: the
// entry seed covers indirect entry by construction.
func TestPoisonedBlock(t *testing.T) {
	build := func(escape bool) *obj.File {
		a := asm.New("t")
		a.Func("main", 0)
		a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff0)) // -16
		a.Label("mid")
		a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 16))
		a.I(isa.JR(isa.RegRA))
		a.I(isa.NOP)
		if escape {
			a.DataWordSym("tbl", "main", 4) // address of mid
		}
		return a.MustFinish()
	}

	facts := analyze(t, build(false)).Object(0)
	if h, ok := facts.StackHeight(4); !ok || h != -16 {
		t.Errorf("unescaped mid height = %d,%v want -16,true", h, ok)
	}
	facts = analyze(t, build(true)).Object(0)
	if _, ok := facts.StackHeight(4); ok {
		t.Errorf("escaped mid block should be entered with unknown height")
	}
	// The entry itself stays seeded even when its address is taken.
	if h, ok := facts.StackHeight(0); !ok || h != 0 {
		t.Errorf("entry height = %d,%v want 0,true", h, ok)
	}
}

// TestIndirectJumpTable is the satellite edge case: jr through a
// pointer loaded from a data-section table. The jump itself degrades to
// an unknown terminator (all-live below), and every block named by the
// table is poisoned, so no stale frame facts survive into the landing
// sites.
func TestIndirectJumpTable(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff8)) // -8
	a.LA(isa.RegT0, "table", 0)
	a.I(isa.LW(isa.RegT1, isa.RegT0, 0))
	a.I(isa.JR(isa.RegT1))
	a.I(isa.NOP)
	a.Label("case0")
	a.I(isa.ADDIU(isa.RegV0, isa.RegZero, 0))
	a.Jmp("out")
	a.I(isa.NOP)
	a.Label("case1")
	a.I(isa.ADDIU(isa.RegV0, isa.RegZero, 1))
	a.Label("out")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 8))
	a.DataWordSym("table", "main", 0x18)   // case0
	a.DataWordSym("table_1", "main", 0x24) // case1
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	// The jr block: unknown targets mean all-live out.
	out, ok := facts.LiveOut(0)
	if !ok || out != isa.AllRegs {
		t.Errorf("jr-through-table live-out = %v, want all-live", out)
	}
	// Both table targets are poisoned: frame facts do not leak in.
	for _, off := range []uint32{0x18, 0x24} {
		if _, ok := facts.StackHeight(off); ok {
			t.Errorf("table target 0x%x should have unknown height", off)
		}
		st, ok := facts.ValuesAt(off, 0)
		wantVal(t, st, ok, isa.RegSP, Top, "table target sp")
	}
}

// TestSelfModifyingAdjacentText is the satellite edge case: code whose
// data section references text both as a jump target and as a store
// destination (patching-adjacent idioms). The referenced block must be
// poisoned, the store through the text pointer must not perturb value
// facts of neighbouring blocks, and analysis must stay well-formed.
func TestSelfModifyingAdjacentText(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff0)) // -16
	a.LA(isa.RegT0, "main", 0x14)                // address of patch
	a.I(isa.SW(isa.RegT1, isa.RegT0, 0))         // store into text
	a.Label("stay")
	a.I(isa.ADDU(isa.RegV0, isa.RegZero, isa.RegZero))
	a.Label("patch")
	a.I(isa.ADDIU(isa.RegV0, isa.RegV0, 1))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 16))
	f := a.MustFinish()
	facts := analyze(t, f).Object(0)

	// The patched block's address escaped through the la relocation:
	// entered with ⊤.
	if _, ok := facts.StackHeight(0x14); ok {
		t.Errorf("patch target should have unknown height")
	}
	// The adjacent block keeps its facts: the escape is block-grained,
	// not function-grained.
	if h, ok := facts.StackHeight(0x10); !ok || h != -16 {
		t.Errorf("adjacent block height = %d,%v want -16,true", h, ok)
	}
}

// TestZeroLengthBlocks is the satellite edge case: zero-length blocks
// at object boundaries are rejected with a namespaced error on both
// front ends, never a panic or a silent mis-analysis.
func TestZeroLengthBlocks(t *testing.T) {
	mk := func(blocks []obj.BasicBlock) *obj.File {
		return &obj.File{
			Name: "edge",
			Text: []isa.Word{isa.JR(isa.RegRA), isa.NOP},
			Syms: []obj.Symbol{
				{Name: "main", Section: obj.SecText, Off: 0, Defined: true, Func: true},
			},
			Blocks: blocks,
		}
	}
	for _, tc := range []struct {
		name   string
		blocks []obj.BasicBlock
	}{
		{"zero at start", []obj.BasicBlock{{Off: 0, NInstr: 0}, {Off: 0, NInstr: 2}}},
		{"zero at end", []obj.BasicBlock{{Off: 0, NInstr: 2}, {Off: 8, NInstr: 0}}},
		{"past the text", []obj.BasicBlock{{Off: 0, NInstr: 2}, {Off: 8, NInstr: 1}}},
	} {
		_, err := AnalyzeObjects([]*obj.File{mk(tc.blocks)})
		if err == nil {
			t.Errorf("%s: AnalyzeObjects accepted malformed blocks", tc.name)
		} else if !strings.HasPrefix(err.Error(), "dataflow:") {
			t.Errorf("%s: error namespace: %v", tc.name, err)
		}
	}
	// A second object whose first block is empty: the boundary between
	// objects must get the same treatment as within one.
	good := asm.New("a")
	good.Func("main", 0)
	good.I(isa.JR(isa.RegRA))
	good.I(isa.NOP)
	ga := good.MustFinish()
	if _, err := AnalyzeObjects([]*obj.File{ga, mk([]obj.BasicBlock{{Off: 0, NInstr: 0}})}); err == nil {
		t.Errorf("zero-length block in second object accepted")
	}
}
