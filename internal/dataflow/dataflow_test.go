package dataflow

import (
	"testing"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

func analyze(t *testing.T, files ...*obj.File) *Program {
	t.Helper()
	p, err := AnalyzeObjects(files)
	if err != nil {
		t.Fatalf("AnalyzeObjects: %v", err)
	}
	return p
}

func wantLive(t *testing.T, s isa.RegSet, ok bool, r int, want bool, what string) {
	t.Helper()
	if !ok {
		t.Fatalf("%s: no facts", what)
	}
	if s.Has(r) != want {
		t.Errorf("%s: %s live=%v, want %v (set %v)", what, isa.FlowRegName(r), s.Has(r), want, s)
	}
}

// TestInterproceduralLiveness drives the caller/callee summary: the
// callee's argument is live at the call site, the caller's use of the
// result keeps v0 live across (no must-define summary), the return
// summary excludes ra (the caller reloads it from the frame), and the
// callee's live-in carries exactly its reads.
func TestInterproceduralLiveness(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xfff8)) // addiu sp, sp, -8
	a.I(isa.SW(isa.RegRA, isa.RegSP, 0))
	a.I(isa.ADDIU(isa.RegA0, isa.RegZero, 5))
	a.JalSym("leaf")
	a.I(isa.NOP)
	// 0x14: uses the result, restores ra, returns.
	a.I(isa.ADDU(isa.RegS0, isa.RegV0, isa.RegZero))
	a.I(isa.LW(isa.RegRA, isa.RegSP, 0))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 8))
	a.Func("leaf", 0) // 0x24
	a.I(isa.ADDU(isa.RegV0, isa.RegA0, isa.RegA0))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()

	p := analyze(t, f)
	facts := p.Object(0)

	in, ok := facts.LiveIn(0x24)
	wantLive(t, in, ok, isa.RegA0, true, "leaf live-in a0")
	wantLive(t, in, ok, isa.RegRA, true, "leaf live-in ra")
	wantLive(t, in, ok, isa.RegV0, false, "leaf live-in v0")
	wantLive(t, in, ok, isa.RegS0, false, "leaf live-in s0")

	// Return summary: the only caller reloads ra and s0 is overwritten
	// before any read at the return point, so neither is live out of
	// the callee's return block; v0 is (the caller reads the result).
	out, ok := facts.LiveOut(0x24)
	wantLive(t, out, ok, isa.RegRA, false, "leaf live-out ra")
	wantLive(t, out, ok, isa.RegV0, true, "leaf live-out v0")

	in, ok = facts.LiveIn(0)
	wantLive(t, in, ok, isa.RegRA, true, "main live-in ra")
	wantLive(t, in, ok, isa.RegA0, false, "main live-in a0")
	// Conservative: no must-define summary for the callee, so the use
	// of v0 after the call keeps v0 live above it too.
	wantLive(t, in, ok, isa.RegV0, true, "main live-in v0 (conservative)")

	// Point liveness in the return block: ra is dead before the reload
	// and live after it.
	at, ok := facts.LiveAt(0x14, 1)
	wantLive(t, at, ok, isa.RegRA, false, "before lw ra")
	at, ok = facts.LiveAt(0x14, 2)
	wantLive(t, at, ok, isa.RegRA, true, "after lw ra")

	// Stack heights: -8 inside main's frame, 0 at both entries.
	if h, ok := facts.StackHeight(0x14); !ok || h != -8 {
		t.Errorf("height(0x14) = %d,%v want -8,true", h, ok)
	}
	if h, ok := facts.StackHeight(0x24); !ok || h != 0 {
		t.Errorf("height(leaf) = %d,%v want 0,true", h, ok)
	}
}

// TestAddressTakenAllLive: a data-section relocation against a
// function makes its return summary all-live (indirect callers are
// invisible), while an otherwise identical function keeps the precise
// summary.
func TestAddressTakenAllLive(t *testing.T) {
	build := func(taken bool) *obj.File {
		a := asm.New("t")
		a.Func("main", 0)
		a.JalSym("f")
		a.I(isa.NOP)
		// The return point overwrites s0, so a precise summary for f
		// excludes it (main's own return is all-live — its callers are
		// unknown — but the define cuts s0 on the way there).
		a.I(isa.ADDU(isa.RegS0, isa.RegZero, isa.RegZero))
		a.I(isa.JR(isa.RegRA))
		a.I(isa.NOP)
		a.Func("f", 0) // 0x14
		a.I(isa.JR(isa.RegRA))
		a.I(isa.NOP)
		if taken {
			a.DataWordSym("ptr", "f", 0)
		}
		return a.MustFinish()
	}

	p := analyze(t, build(false))
	out, ok := p.Object(0).LiveOut(0x14)
	wantLive(t, out, ok, isa.RegS0, false, "plain f live-out s0")

	p = analyze(t, build(true))
	out, ok = p.Object(0).LiveOut(0x14)
	if !ok || out != isa.AllRegs {
		t.Errorf("address-taken f live-out = %v, want all-live", out)
	}
}

// TestHiLoAndDelaySlot: HI crosses a block boundary between mult and
// mfhi, and delay-slot ordering is honored — the slot executes after
// the branch reads its operands, so a slot define does not satisfy the
// branch's use, while it does satisfy the successor's.
func TestHiLoAndDelaySlot(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.MULT(isa.RegA0, isa.RegA1))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "join")
	a.I(isa.ADDIU(isa.RegT0, isa.RegZero, 7)) // delay slot defines t0
	a.Label("mid")
	a.I(isa.ADDU(isa.RegT1, isa.RegT0, isa.RegZero))
	a.Label("join")
	a.I(isa.MFHI(isa.RegV0))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDU(isa.RegV1, isa.RegT0, isa.RegZero)) // slot reads t0
	f := a.MustFinish()

	p := analyze(t, f)
	facts := p.Object(0)
	in, ok := facts.LiveIn(0)
	wantLive(t, in, ok, isa.RegHI, false, "entry hi (mult defines it)")
	wantLive(t, in, ok, isa.RegT0, true, "entry t0 (branch reads it)")
	in, ok = facts.LiveIn(0xc) // mid
	wantLive(t, in, ok, isa.RegHI, true, "mid hi")
	// The slot's define of t0 covers the successors' reads of t0: the
	// branch block needs t0 only for its own condition.
	out, ok := facts.LiveOut(0)
	wantLive(t, out, ok, isa.RegT0, true, "branch block live-out t0 (join's slot reads it)")
	in, ok = facts.LiveIn(0x10) // join
	wantLive(t, in, ok, isa.RegT0, true, "join t0 (jr slot reads it)")
	wantLive(t, in, ok, isa.RegHI, true, "join hi")
}

// TestSyscallABI: a syscall keeps the kernel-ABI argument registers
// live even though nothing in user code reads them.
func TestSyscallABI(t *testing.T) {
	// The spin loop never reads anything, so the syscall block's
	// live-in is exactly the ABI set (a jr-ra ending would be all-live
	// here: main's callers are unknown).
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.SYSCALL())
	a.Label("spin")
	a.Jmp("spin")
	a.I(isa.NOP)
	f := a.MustFinish()
	p := analyze(t, f)
	in, ok := p.Object(0).LiveIn(0)
	for _, r := range []int{isa.RegV0, isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3, isa.RegSP} {
		wantLive(t, in, ok, r, true, "syscall ABI "+isa.RegName(r))
	}
	wantLive(t, in, ok, isa.RegT5, false, "syscall non-ABI t5")
}

// TestCrossObjectCall: jal resolution through the global symbol table
// ties liveness across object files.
func TestCrossObjectCall(t *testing.T) {
	a := asm.New("caller")
	a.Func("main", 0)
	a.JalSym("helper")
	a.I(isa.NOP)
	a.I(isa.ADDU(isa.RegT7, isa.RegZero, isa.RegZero))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.ADDU(isa.RegS1, isa.RegV0, isa.RegZero))
	ca := a.MustFinish()

	b := asm.New("callee")
	b.Func("helper", 0)
	b.I(isa.ADDU(isa.RegV0, isa.RegA2, isa.RegZero))
	b.I(isa.JR(isa.RegRA))
	b.I(isa.NOP)
	cb := b.MustFinish()

	p := analyze(t, ca, cb)
	// a2 (helper's read) is live at main's entry across the objects.
	in, ok := p.Object(0).LiveIn(0)
	wantLive(t, in, ok, isa.RegA2, true, "cross-object a2")
	// helper's return summary sees the caller's slot read of v0.
	out, ok := p.Object(1).LiveOut(0)
	wantLive(t, out, ok, isa.RegV0, true, "cross-object return v0")
	wantLive(t, out, ok, isa.RegT7, false, "cross-object return t7")
}

// TestUnknownTargetsAllLive: jalr call sites and jr-to-non-ra jumps
// degrade to all-live below, while the jal/jalr ra-define still kills
// ra above the site.
func TestUnknownTargetsAllLive(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.JALR(isa.RegRA, isa.RegT9))
	a.I(isa.NOP)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	p := analyze(t, f)
	facts := p.Object(0)
	out, ok := facts.LiveOut(0)
	if !ok || out != isa.AllRegs {
		t.Errorf("jalr live-out = %v, want all-live", out)
	}
	in, ok := facts.LiveIn(0)
	wantLive(t, in, ok, isa.RegRA, false, "ra above jalr (the call defines it)")
	wantLive(t, in, ok, isa.RegT9, true, "jalr target register")
}

// TestStackHeightJoin: agreeing joins stay known, disagreeing joins
// and untracked sp writes go unknown.
func TestStackHeightJoin(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 0xffe8)) // -24
	a.Br(isa.BEQ(isa.RegA0, isa.RegZero, 0), "join")
	a.I(isa.NOP)
	a.Label("then")
	a.I(isa.ADDU(isa.RegT0, isa.RegZero, isa.RegZero))
	a.Label("join")
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, 24))
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	a.Func("weird", 0)
	a.I(isa.ADDU(isa.RegSP, isa.RegSP, isa.RegT0)) // untracked sp write
	a.Label("after")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	p := analyze(t, f)
	facts := p.Object(0)
	if h, ok := facts.StackHeight(0x10); !ok || h != -24 {
		t.Errorf("height(join) = %d,%v want -24,true", h, ok)
	}
	after := uint32(0x20 + 4)
	if _, ok := facts.StackHeight(after); ok {
		t.Errorf("height after untracked sp write should be unknown")
	}
}

// TestStats sanity-checks the run counters.
func TestStats(t *testing.T) {
	a := asm.New("t")
	a.Func("main", 0)
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
	f := a.MustFinish()
	p := analyze(t, f)
	st := p.Stats()
	if st.Blocks != 1 || st.Funcs != 1 || st.Passes < 1 {
		t.Errorf("stats = %+v", st)
	}
}
