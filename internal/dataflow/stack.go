package dataflow

import "systrace/internal/isa"

// Reaching stack-height: a forward analysis computing, for each block,
// the stack pointer's byte displacement from function entry. The
// lattice per block is unset → known(delta) → top; a join of two
// different known deltas, or any sp write the transfer cannot model
// (anything but `addiu sp, sp, imm`), goes to top. Function entries
// start at zero; the block after a call resumes at the call site's
// exit height (the ABI restores sp across calls).

const (
	hUnset = iota
	hKnown
	hTop
)

// heightTransfer runs a block forward from an entry delta. ok=false
// means sp was modified unrecognizably.
func heightTransfer(b *block, h int32) (int32, bool) {
	for i, w := range b.words {
		if isTransparent(b, i) {
			continue
		}
		d := isa.Decode(w)
		if d.Op == isa.OpADDIU && d.Rt == isa.RegSP && d.Rs == isa.RegSP {
			h += int32(isa.SignExt16(d.Imm))
			continue
		}
		if isa.DefsMask(w).Has(isa.RegSP) {
			return 0, false
		}
	}
	return h, true
}

// joinHeight merges a reaching delta into a block's lattice value and
// reports whether it changed.
func (p *Program) joinHeight(bi int, h int32, top bool) bool {
	b := &p.blocks[bi]
	switch {
	case top || b.heightState == hKnown && b.height != h:
		if b.heightState == hTop {
			return false
		}
		b.heightState = hTop
		return true
	case b.heightState == hUnset:
		b.heightState, b.height = hKnown, h
		return true
	}
	return false
}

// solveHeights runs the forward worklist after liveness has been
// solved (it reuses the CFG, not the liveness solution).
func (p *Program) solveHeights() {
	n := len(p.blocks)
	inWL := make([]bool, n)
	var wl []int
	push := func(i int) {
		if i >= 0 && !inWL[i] {
			inWL[i] = true
			wl = append(wl, i)
		}
	}
	for _, f := range p.fns {
		if f.entry >= 0 && p.joinHeight(f.entry, 0, false) {
			push(f.entry)
		}
	}
	for len(wl) > 0 {
		bi := wl[len(wl)-1]
		wl = wl[:len(wl)-1]
		inWL[bi] = false
		b := &p.blocks[bi]
		if b.heightState == hUnset {
			continue
		}
		out, ok := int32(0), false
		if b.heightState == hKnown {
			out, ok = heightTransfer(b, b.height)
		}
		top := !ok || b.heightState == hTop
		flow := func(ti int, h int32, isTop bool) {
			if ti >= 0 && p.joinHeight(ti, h, isTop) {
				push(ti)
			}
		}
		switch b.kind {
		case termFall:
			flow(b.next, out, top)
		case termBranch:
			flow(b.target, out, top)
			flow(b.next, out, top)
		case termJump:
			flow(b.target, out, top)
		case termCall:
			// The callee starts its own frame at zero (seeded above via
			// its entry); the return point resumes at this site's exit
			// height because the callee restores sp before returning.
			flow(b.next, out, top)
		case termCallUnknown:
			// Unknown callee, same ABI assumption for the return point.
			flow(b.next, out, top)
		}
	}
}
