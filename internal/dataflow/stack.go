package dataflow

// Reaching stack-height, as a projection of the forward value
// analysis (absint.go): the height on entry to a block is known
// exactly when the abstract value of sp there is sp+δ — δ is the byte
// displacement from function entry. Facts.StackHeight (dataflow.go)
// reads it straight out of the block's value-in state.
//
// The projection strictly generalizes the dedicated height pass it
// replaced, which went to ⊤ on any sp write other than
// `addiu sp, sp, imm`. Through the value lattice, epilogues that
// restore a frame pointer (`move sp, fp` where fp was materialized as
// sp+δ) and constant-stepped adjustments (`addu sp, sp, rK` with rK a
// known constant) keep the height known, while genuinely dynamic
// adjustments (alloca-style `subu sp, sp, rN` with rN unknown)
// degrade to ⊤ as before — until a later instruction rebuilds sp from
// a value still anchored to the entry frame.
//
// The interprocedural convention is unchanged: function entries start
// at height zero, the block after a call resumes at the call site's
// exit height (the ABI restores sp across calls), and syscall/break
// are assumed to preserve sp.
