// Package mahler implements the intermediate language and compiler of
// the toolchain. The paper's Titan compilers "used a common
// intermediate language, Mahler, which defined a Mahler abstract
// machine" (§3.4); object modules carry the supplementary information
// (symbols, relocations, basic-block tables) that makes link-time code
// modification possible. Our Mahler is a small typed IR with a
// programmatic builder; the workloads and the traced kernels are
// written in it and compiled to object files that epoxie can rewrite.
package mahler

import (
	"fmt"

	"systrace/internal/asm"
)

// Type is an IR value type.
type Type int

const (
	TInt   Type = iota // 32-bit word (signedness is per-operator)
	TFloat             // 64-bit IEEE double
	TVoid              // function returns nothing
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TVoid:
		return "void"
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

// Expr is an expression tree node.
type Expr interface{ exprType() Type }

type (
	constExpr struct{ v int32 }
	fconst    struct{ v float64 }
	localRef  struct {
		name string
		typ  Type
	}
	addrOf struct {
		sym string
		off int32
	}
	funcAddr struct{ sym string }
	loadExpr struct {
		addr   Expr
		size   int
		signed bool
	}
	loadF struct{ addr Expr }
	binOp struct {
		op   BinKind
		a, b Expr
	}
	fbinOp struct {
		op   BinKind
		a, b Expr
	}
	fcmpOp struct {
		op   BinKind
		a, b Expr
	}
	unOp struct {
		op BinKind // UNeg, UNot, UFNeg, USqrt
		a  Expr
	}
	cvtOp struct {
		toFloat bool
		a       Expr
	}
	callExpr struct {
		name string
		args []Expr
		typ  Type
	}
	callPtr struct {
		target Expr
		args   []Expr
		typ    Type
	}
	syscallExpr struct {
		num  int
		args []Expr
	}
	mfc0 struct{ reg int }
)

// BinKind enumerates binary and unary operators.
type BinKind int

const (
	BAdd BinKind = iota
	BSub
	BMul
	BDiv  // signed divide
	BDivU // unsigned divide
	BMod  // signed remainder
	BModU
	BAnd
	BOr
	BXor
	BShl
	BShr // logical
	BSar // arithmetic
	BEq
	BNe
	BLt // signed
	BLe
	BGt
	BGe
	BLtU
	BLeU
	BGtU
	BGeU
	UNeg
	UNot
	UFNeg
	USqrt
)

func (constExpr) exprType() Type  { return TInt }
func (fconst) exprType() Type     { return TFloat }
func (l localRef) exprType() Type { return l.typ }
func (addrOf) exprType() Type     { return TInt }
func (funcAddr) exprType() Type   { return TInt }
func (loadExpr) exprType() Type   { return TInt }
func (loadF) exprType() Type      { return TFloat }
func (binOp) exprType() Type      { return TInt }
func (fbinOp) exprType() Type     { return TFloat }
func (fcmpOp) exprType() Type     { return TInt }
func (u unOp) exprType() Type {
	if u.op == UFNeg || u.op == USqrt {
		return TFloat
	}
	return TInt
}
func (c cvtOp) exprType() Type {
	if c.toFloat {
		return TFloat
	}
	return TInt
}
func (c callExpr) exprType() Type  { return c.typ }
func (c callPtr) exprType() Type   { return c.typ }
func (syscallExpr) exprType() Type { return TInt }
func (mfc0) exprType() Type        { return TInt }

// I is an integer constant.
func I(v int32) Expr { return constExpr{v} }

// U is an unsigned integer constant (addresses, bit patterns).
func U(v uint32) Expr { return constExpr{int32(v)} }

// F is a floating-point constant.
func F(v float64) Expr { return fconst{v} }

// Addr is the address of global sym plus a byte offset.
func Addr(sym string, off int32) Expr { return addrOf{sym, off} }

// FuncAddr is the address of a function (for indirect calls); the
// constant is relocated, which exercises epoxie's static address
// correction through code *and* data.
func FuncAddr(sym string) Expr { return funcAddr{sym} }

// Load reads size bytes (1, 2, or 4) at addr; signed selects sign
// extension for sub-word loads.
func Load(addr Expr, size int, signed bool) Expr {
	return loadExpr{addr: addr, size: size, signed: signed}
}

// LoadW reads a 32-bit word.
func LoadW(addr Expr) Expr { return loadExpr{addr: addr, size: 4} }

// LoadB reads an unsigned byte.
func LoadB(addr Expr) Expr { return loadExpr{addr: addr, size: 1} }

// LoadF reads a 64-bit double.
func LoadF(addr Expr) Expr { return loadF{addr} }

func bin(op BinKind, a, b Expr) Expr {
	if a.exprType() != TInt || b.exprType() != TInt {
		panic(fmt.Sprintf("mahler: integer operator %d applied to %v/%v", op, a.exprType(), b.exprType()))
	}
	return binOp{op, a, b}
}

func fbin(op BinKind, a, b Expr) Expr {
	if a.exprType() != TFloat || b.exprType() != TFloat {
		panic(fmt.Sprintf("mahler: float operator %d applied to %v/%v", op, a.exprType(), b.exprType()))
	}
	return fbinOp{op, a, b}
}

// Integer arithmetic.
func Add(a, b Expr) Expr  { return bin(BAdd, a, b) }
func Sub(a, b Expr) Expr  { return bin(BSub, a, b) }
func Mul(a, b Expr) Expr  { return bin(BMul, a, b) }
func Div(a, b Expr) Expr  { return bin(BDiv, a, b) }
func DivU(a, b Expr) Expr { return bin(BDivU, a, b) }
func Mod(a, b Expr) Expr  { return bin(BMod, a, b) }
func ModU(a, b Expr) Expr { return bin(BModU, a, b) }
func And(a, b Expr) Expr  { return bin(BAnd, a, b) }
func Or(a, b Expr) Expr   { return bin(BOr, a, b) }
func Xor(a, b Expr) Expr  { return bin(BXor, a, b) }
func Shl(a, b Expr) Expr  { return bin(BShl, a, b) }
func Shr(a, b Expr) Expr  { return bin(BShr, a, b) }
func Sar(a, b Expr) Expr  { return bin(BSar, a, b) }
func Neg(a Expr) Expr     { return unOp{UNeg, a} }
func Not(a Expr) Expr     { return unOp{UNot, a} }

// Integer comparisons (result is 0 or 1).
func Eq(a, b Expr) Expr  { return bin(BEq, a, b) }
func Ne(a, b Expr) Expr  { return bin(BNe, a, b) }
func Lt(a, b Expr) Expr  { return bin(BLt, a, b) }
func Le(a, b Expr) Expr  { return bin(BLe, a, b) }
func Gt(a, b Expr) Expr  { return bin(BGt, a, b) }
func Ge(a, b Expr) Expr  { return bin(BGe, a, b) }
func LtU(a, b Expr) Expr { return bin(BLtU, a, b) }
func LeU(a, b Expr) Expr { return bin(BLeU, a, b) }
func GtU(a, b Expr) Expr { return bin(BGtU, a, b) }
func GeU(a, b Expr) Expr { return bin(BGeU, a, b) }

// Floating point.
func FAdd(a, b Expr) Expr { return fbin(BAdd, a, b) }
func FSub(a, b Expr) Expr { return fbin(BSub, a, b) }
func FMul(a, b Expr) Expr { return fbin(BMul, a, b) }
func FDiv(a, b Expr) Expr { return fbin(BDiv, a, b) }
func FNeg(a Expr) Expr    { return unOp{UFNeg, a} }
func Sqrt(a Expr) Expr    { return unOp{USqrt, a} }
func FEq(a, b Expr) Expr  { return fcmpOp{BEq, a, b} }
func FLt(a, b Expr) Expr  { return fcmpOp{BLt, a, b} }
func FLe(a, b Expr) Expr  { return fcmpOp{BLe, a, b} }
func FGt(a, b Expr) Expr  { return fcmpOp{BLt, b, a} }
func FGe(a, b Expr) Expr  { return fcmpOp{BLe, b, a} }

// ToFloat converts an integer to a double.
func ToFloat(a Expr) Expr { return cvtOp{toFloat: true, a: a} }

// ToInt truncates a double to an integer.
func ToInt(a Expr) Expr { return cvtOp{toFloat: false, a: a} }

// Call invokes a function in an expression position.
func Call(name string, args ...Expr) Expr {
	return callExpr{name: name, args: args, typ: TInt}
}

// CallF invokes a float-returning function.
func CallF(name string, args ...Expr) Expr {
	return callExpr{name: name, args: args, typ: TFloat}
}

// CallVia invokes through a function pointer.
func CallVia(target Expr, args ...Expr) Expr {
	return callPtr{target: target, args: args, typ: TInt}
}

// Syscall issues a system call; the result is v0.
func Syscall(num int, args ...Expr) Expr {
	if len(args) > 4 {
		panic("mahler: syscall takes at most 4 arguments")
	}
	return syscallExpr{num: num, args: args}
}

// MFC0 reads a CP0 register (kernel code only).
func MFC0(reg int) Expr { return mfc0{reg} }

// Stmt is a statement node.
type Stmt interface{ stmt() }

type (
	assignStmt struct {
		name string
		e    Expr
	}
	storeStmt struct {
		addr Expr
		e    Expr
		size int
	}
	storeFStmt struct {
		addr Expr
		e    Expr
	}
	ifStmt struct {
		cond      Expr
		then, els []Stmt
	}
	whileStmt struct {
		cond Expr
		body []Stmt
	}
	breakStmt    struct{}
	continueStmt struct{}
	returnStmt   struct{ e Expr } // nil for void
	exprStmt     struct{ e Expr }
	mtc0Stmt     struct {
		reg int
		e   Expr
	}
	cop0Stmt struct{ fn uint32 } // tlbwr/tlbwi/tlbp/tlbr
	haltStmt struct{}            // for tests: break instruction
)

func (assignStmt) stmt()   {}
func (storeStmt) stmt()    {}
func (storeFStmt) stmt()   {}
func (ifStmt) stmt()       {}
func (whileStmt) stmt()    {}
func (breakStmt) stmt()    {}
func (continueStmt) stmt() {}
func (returnStmt) stmt()   {}
func (exprStmt) stmt()     {}
func (mtc0Stmt) stmt()     {}
func (cop0Stmt) stmt()     {}
func (haltStmt) stmt()     {}

// Block accumulates statements.
type Block struct {
	fn    *Fn
	stmts []Stmt
}

func (b *Block) add(s Stmt) { b.stmts = append(b.stmts, s) }

// Assign sets local name (declared via Local/Param) to e.
func (b *Block) Assign(name string, e Expr) {
	v := b.fn.lookup(name)
	if v == nil {
		panic(fmt.Sprintf("mahler %s: assign to undeclared local %q", b.fn.Name, name))
	}
	if v.typ != e.exprType() {
		panic(fmt.Sprintf("mahler %s: assign %v expression to %v local %q",
			b.fn.Name, e.exprType(), v.typ, name))
	}
	b.add(assignStmt{name, e})
}

// Store writes the low size bytes (1, 2, or 4) of e to addr.
func (b *Block) Store(addr Expr, size int, e Expr) { b.add(storeStmt{addr, e, size}) }

// StoreW writes a word.
func (b *Block) StoreW(addr Expr, e Expr) { b.add(storeStmt{addr, e, 4}) }

// StoreB writes a byte.
func (b *Block) StoreB(addr Expr, e Expr) { b.add(storeStmt{addr, e, 1}) }

// StoreF writes a 64-bit double.
func (b *Block) StoreF(addr Expr, e Expr) { b.add(storeFStmt{addr, e}) }

// If emits a conditional; els may be nil.
func (b *Block) If(cond Expr, then func(*Block), els func(*Block)) {
	tb := &Block{fn: b.fn}
	then(tb)
	var es []Stmt
	if els != nil {
		eb := &Block{fn: b.fn}
		els(eb)
		es = eb.stmts
	}
	b.add(ifStmt{cond, tb.stmts, es})
}

// While emits a loop.
func (b *Block) While(cond Expr, body func(*Block)) {
	lb := &Block{fn: b.fn}
	body(lb)
	b.add(whileStmt{cond, lb.stmts})
}

// For emits `for v = from; v < to; v++`. The increment happens at the
// top of the loop so Continue observes it.
func (b *Block) For(v string, from, to Expr, body func(*Block)) {
	b.Assign(v, Sub(from, I(1)))
	b.While(I(1), func(lb *Block) {
		lb.Assign(v, Add(V(v), I(1)))
		lb.If(Eq(Lt(V(v), to), I(0)), func(ib *Block) { ib.Break() }, nil)
		body(lb)
	})
}

// Break exits the innermost loop.
func (b *Block) Break() { b.add(breakStmt{}) }

// Continue restarts the innermost loop.
func (b *Block) Continue() { b.add(continueStmt{}) }

// Return returns e (nil for void functions).
func (b *Block) Return(e Expr) { b.add(returnStmt{e}) }

// Do evaluates e for its side effects (calls, syscalls).
func (b *Block) Do(e Expr) { b.add(exprStmt{e}) }

// Call invokes a function as a statement.
func (b *Block) Call(name string, args ...Expr) { b.Do(Call(name, args...)) }

// MTC0 writes a CP0 register (kernel code only).
func (b *Block) MTC0(reg int, e Expr) { b.add(mtc0Stmt{reg, e}) }

// TLBOp emits a TLB coprocessor operation (isa.C0FnTLBWR etc.).
func (b *Block) TLBOp(fn uint32) { b.add(cop0Stmt{fn}) }

// Halt emits a break instruction (used only in tests).
func (b *Block) Halt() { b.add(haltStmt{}) }

type vref struct {
	name string
	typ  Type
}

func (v vref) exprType() Type { return v.typ }

// V references an integer local or parameter by name; the reference is
// resolved (and type-checked) at compile time.
func V(name string) Expr { return vref{name, TInt} }

// FV references a float local or parameter by name.
func FV(name string) Expr { return vref{name, TFloat} }

type localVar struct {
	name  string
	typ   Type
	frame int32 // frame offset (valid after layout)
	sreg  int   // pinned callee-saved register, or -1
	param int   // parameter index, or -1
}

// Fn is a function under construction.
type Fn struct {
	Name   string
	Ret    Type
	Flags  asm.FuncFlags
	params []*localVar
	locals []*localVar
	byName map[string]*localVar
	body   *Block
	mod    *Module
}

func (f *Fn) lookup(name string) *localVar { return f.byName[name] }

// Param declares a parameter (call order matters; max 4).
func (f *Fn) Param(name string, t Type) {
	if len(f.params) >= 4 {
		panic(fmt.Sprintf("mahler %s: more than 4 parameters", f.Name))
	}
	v := &localVar{name: name, typ: t, sreg: -1, param: len(f.params)}
	f.params = append(f.params, v)
	f.register(v)
}

// Local declares a local variable.
func (f *Fn) Local(name string, t Type) {
	v := &localVar{name: name, typ: t, sreg: -1, param: -1}
	f.locals = append(f.locals, v)
	f.register(v)
}

// Locals declares several integer locals.
func (f *Fn) Locals(names ...string) {
	for _, n := range names {
		f.Local(n, TInt)
	}
}

// FLocals declares several float locals.
func (f *Fn) FLocals(names ...string) {
	for _, n := range names {
		f.Local(n, TFloat)
	}
}

func (f *Fn) register(v *localVar) {
	if _, dup := f.byName[v.name]; dup {
		panic(fmt.Sprintf("mahler %s: duplicate local %q", f.Name, v.name))
	}
	f.byName[v.name] = v
}

// Body returns the top-level block.
func (f *Fn) Body() *Block { return f.body }

// Code is shorthand: declare the body with a closure.
func (f *Fn) Code(build func(*Block)) { build(f.body) }

type dataItem struct {
	name  string
	bytes []byte
	// addrSyms maps word offsets to symbol names (relocated words).
	addrSyms map[int]string
}

// Module is a compilation unit.
type Module struct {
	Name    string
	funcs   []*Fn
	globals []struct {
		name string
		size uint32
	}
	datas   []dataItem
	externs map[string]Type // functions provided by other objects
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, externs: map[string]Type{}}
}

// Func declares a function returning ret.
func (m *Module) Func(name string, ret Type) *Fn {
	f := &Fn{Name: name, Ret: ret, byName: map[string]*localVar{}, mod: m}
	f.body = &Block{fn: f}
	m.funcs = append(m.funcs, f)
	return f
}

// Extern declares a function defined in another object (hand-written
// assembly, or another module) so calls type-check.
func (m *Module) Extern(name string, ret Type) { m.externs[name] = ret }

// Global reserves size bytes of zeroed storage.
func (m *Module) Global(name string, size uint32) {
	m.globals = append(m.globals, struct {
		name string
		size uint32
	}{name, size})
}

// Data emits initialized bytes.
func (m *Module) Data(name string, b []byte) {
	m.datas = append(m.datas, dataItem{name: name, bytes: b})
}

// DataWords emits initialized words.
func (m *Module) DataWords(name string, ws []uint32) {
	b := make([]byte, len(ws)*4)
	for i, w := range ws {
		b[i*4] = byte(w >> 24)
		b[i*4+1] = byte(w >> 16)
		b[i*4+2] = byte(w >> 8)
		b[i*4+3] = byte(w)
	}
	m.Data(name, b)
}

// DataAddrs emits a table of function/global addresses (each entry is
// relocated).
func (m *Module) DataAddrs(name string, syms []string) {
	d := dataItem{name: name, bytes: make([]byte, len(syms)*4), addrSyms: map[int]string{}}
	for i, s := range syms {
		d.addrSyms[i*4] = s
	}
	m.datas = append(m.datas, d)
}
