package mahler

import (
	"fmt"

	"systrace/internal/asm"
	"systrace/internal/isa"
	"systrace/internal/obj"
)

// Options configure compilation.
type Options struct {
	// PinLocals pins up to this many integer locals per function into
	// callee-saved registers s0..s7. The default (8) means compiled
	// code uses s5/s6/s7 — the registers epoxie must steal — so the
	// register-stealing machinery of the Ultrix/Mach tracing systems
	// is exercised by every real binary. The Tunix-style alternative
	// reserves them in the compiler: set PinLocals <= 5 (see
	// ReserveXRegs).
	PinLocals int
	// ReserveXRegs keeps the compiler away from xreg1..xreg3, the
	// Titan/Tunix approach ("the compiler reserved five of the 64 user
	// registers for use by the tracing system", §3.4).
	ReserveXRegs bool
}

// Scratch register pools.
var intScratch = []int{isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3,
	isa.RegT4, isa.RegT5, isa.RegT6, isa.RegT7, isa.RegV1}

var fltScratch = []int{4, 5, 6, 7, 8, 9, 10, 11}

var pinRegs = []int{isa.RegS0, isa.RegS1, isa.RegS2, isa.RegS3,
	isa.RegS4, isa.RegS5, isa.RegS6, isa.RegS7}

// Frame layout constants (offsets from sp).
const (
	frIntSpill = 0   // 9 words of scratch spill
	frFltSpill = 40  // 8 doubles of scratch spill
	frArgInt   = 104 // 4 outgoing int args + indirect-call target
	frArgFlt   = 128 // 4 outgoing float args
	frLocals   = 160
)

// Compile lowers the module to an object file.
func (m *Module) Compile(opt Options) (f *obj.File, err error) {
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(compileError); ok {
				err = fmt.Errorf("mahler %s: %s", m.Name, string(ce))
				return
			}
			panic(r)
		}
	}()
	if opt.PinLocals == 0 {
		opt.PinLocals = 8
	}
	maxPin := len(pinRegs)
	if opt.ReserveXRegs {
		maxPin = 5 // s5..s7 are xreg1..xreg3
	}
	if opt.PinLocals > maxPin {
		opt.PinLocals = maxPin
	}

	sigs := map[string]Type{}
	for n, t := range m.externs {
		sigs[n] = t
	}
	for _, fn := range m.funcs {
		if _, dup := sigs[fn.Name]; dup {
			return nil, fmt.Errorf("mahler %s: duplicate function %q", m.Name, fn.Name)
		}
		sigs[fn.Name] = fn.Ret
	}

	a := asm.New(m.Name)
	pool := newFPool(m.Name)
	for _, fn := range m.funcs {
		c := &cg{a: a, f: fn, sigs: sigs, opt: opt, pool: pool}
		c.compileFn()
	}
	if len(pool.vals) > 0 {
		a.DataBytes(pool.sym, pool.bytes())
	}
	for _, g := range m.globals {
		a.Global(g.name, g.size)
	}
	for _, d := range m.datas {
		if d.addrSyms == nil {
			a.DataBytes(d.name, d.bytes)
			continue
		}
		// Address table: align and name once, then emit contiguous
		// words so relocations land at 4-byte strides.
		a.DataBytes(d.name, nil)
		for off := 0; off < len(d.bytes); off += 4 {
			if sym, ok := d.addrSyms[off]; ok {
				a.DataAddrRaw(sym)
			} else {
				b := d.bytes[off : off+4]
				a.DataWordRaw(uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3]))
			}
		}
	}
	return a.Finish()
}

type compileError string

func cerr(format string, args ...any) {
	panic(compileError(fmt.Sprintf(format, args...)))
}

// cg is per-function code generation state.
type cg struct {
	a      *asm.Assembler
	f      *Fn
	sigs   map[string]Type
	opt    Options
	pool   *fpool
	itop   int // int scratch stack depth
	ftop   int
	nlabel int
	loops  []loopLabels
	frame  int32
	saved  []int // s-regs saved in prologue
	epi    string
}

type loopLabels struct{ cont, brk string }

func (c *cg) label() string {
	c.nlabel++
	return fmt.Sprintf("%s.L%d", c.f.Name, c.nlabel)
}

// layout assigns frame offsets and pinned registers.
func (c *cg) layout() {
	off := int32(frLocals)
	pinned := 0
	for _, v := range c.f.params {
		if v.typ == TFloat {
			off = (off + 7) &^ 7
			v.frame = off
			off += 8
		} else {
			v.frame = off
			off += 4
		}
	}
	for _, v := range c.f.locals {
		if v.typ == TInt && pinned < c.opt.PinLocals {
			v.sreg = pinRegs[pinned]
			pinned++
			continue
		}
		if v.typ == TFloat {
			off = (off + 7) &^ 7
			v.frame = off
			off += 8
		} else {
			v.frame = off
			off += 4
		}
	}
	for i := 0; i < pinned; i++ {
		c.saved = append(c.saved, pinRegs[i])
	}
	off = (off + 3) &^ 3
	off += int32(len(c.saved)) * 4 // saved s-regs
	off += 4                       // ra
	c.frame = (off + 7) &^ 7
	// Record where saved regs and ra live (computed in prologue).
}

func (c *cg) savedOff(i int) uint16 { return uint16(c.frame - 4 - int32(len(c.saved)-i)*4) }
func (c *cg) raOff() uint16         { return uint16(c.frame - 4) }

func (c *cg) compileFn() {
	c.layout()
	var ff asm.FuncFlags = c.f.Flags
	c.a.Func(c.f.Name, ff)
	c.epi = c.label()

	// Prologue.
	c.a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(-c.frame)))
	c.a.I(isa.SW(isa.RegRA, isa.RegSP, c.raOff()))
	for i, s := range c.saved {
		c.a.I(isa.SW(s, isa.RegSP, c.savedOff(i)))
	}
	for i, v := range c.f.params {
		if v.typ == TFloat {
			c.a.I(isa.SWC1(12+i, isa.RegSP, uint16(v.frame)))
		} else {
			c.a.I(isa.SW(isa.RegA0+i, isa.RegSP, uint16(v.frame)))
		}
	}

	c.stmts(c.f.body.stmts)

	// Epilogue.
	c.a.Label(c.epi)
	for i, s := range c.saved {
		c.a.I(isa.LW(s, isa.RegSP, c.savedOff(i)))
	}
	c.a.I(isa.LW(isa.RegRA, isa.RegSP, c.raOff()))
	c.a.I(isa.JR(isa.RegRA))
	c.a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(c.frame)))
}

func (c *cg) stmts(ss []Stmt) {
	for _, s := range ss {
		c.stmt(s)
		if c.itop != 0 || c.ftop != 0 {
			cerr("%s: scratch leak after statement %T (int=%d flt=%d)", c.f.Name, s, c.itop, c.ftop)
		}
	}
}

// pushI allocates the next int scratch register.
func (c *cg) pushI() int {
	if c.itop >= len(intScratch) {
		cerr("%s: integer expression too deep (use a temporary local)", c.f.Name)
	}
	r := intScratch[c.itop]
	c.itop++
	return r
}

func (c *cg) pushF() int {
	if c.ftop >= len(fltScratch) {
		cerr("%s: float expression too deep (use a temporary local)", c.f.Name)
	}
	r := fltScratch[c.ftop]
	c.ftop++
	return r
}

// val is an evaluated expression: a register, possibly owning a
// scratch slot.
type val struct {
	reg   int
	owned bool
}

func (c *cg) release(v val) {
	if v.owned {
		c.itop--
	}
}

func (c *cg) releaseF(v val) {
	if v.owned {
		c.ftop--
	}
}

// resolve turns a vref into a typed localRef.
func (c *cg) resolve(e Expr) Expr {
	if r, ok := e.(vref); ok {
		v := c.f.lookup(r.name)
		if v == nil {
			cerr("%s: reference to undeclared local %q", c.f.Name, r.name)
		}
		if v.typ != r.typ {
			cerr("%s: %v reference to %v local %q", c.f.Name, r.typ, v.typ, r.name)
		}
		return localRef{name: r.name, typ: v.typ}
	}
	return e
}

// constVal returns (value, true) if e is an integer constant.
func constVal(e Expr) (int32, bool) {
	if k, ok := e.(constExpr); ok {
		return k.v, true
	}
	return 0, false
}

func fitsSigned16(v int32) bool   { return v >= -32768 && v <= 32767 }
func fitsUnsigned16(v int32) bool { return v >= 0 && v <= 0xffff }

func log2(v int32) int {
	if v <= 0 || v&(v-1) != 0 {
		return -1
	}
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
