package mahler

import (
	"encoding/binary"
	"math"

	"systrace/internal/isa"
)

// fpool interns float constants into a per-module data pool.
type fpool struct {
	sym  string
	vals []float64
	idx  map[float64]int32
}

func newFPool(mod string) *fpool {
	return &fpool{sym: "__fconst." + mod, idx: map[float64]int32{}}
}

func (p *fpool) intern(v float64) int32 {
	if off, ok := p.idx[v]; ok {
		return off
	}
	off := int32(len(p.vals) * 8)
	p.idx[v] = off
	p.vals = append(p.vals, v)
	return off
}

func (p *fpool) bytes() []byte {
	b := make([]byte, len(p.vals)*8)
	for i, v := range p.vals {
		binary.BigEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

// evalAddr evaluates an address expression, folding a trailing
// constant into the 16-bit displacement field.
func (c *cg) evalAddr(e Expr) (val, uint16) {
	e = c.resolve(e)
	if b, ok := e.(binOp); ok && b.op == BAdd {
		if k, isK := constVal(b.b); isK && fitsSigned16(k) {
			return c.eval(b.a), uint16(k)
		}
	}
	if b, ok := e.(binOp); ok && b.op == BSub {
		if k, isK := constVal(b.b); isK && fitsSigned16(-k) {
			return c.eval(b.a), uint16(-k)
		}
	}
	return c.eval(e), 0
}

// eval evaluates an integer expression into a register.
func (c *cg) eval(e Expr) val {
	e = c.resolve(e)
	switch x := e.(type) {
	case constExpr:
		r := c.pushI()
		c.a.LI(r, uint32(x.v))
		return val{r, true}
	case localRef:
		v := c.f.lookup(x.name)
		if v.typ != TInt {
			cerr("%s: int use of float local %q", c.f.Name, x.name)
		}
		if v.sreg >= 0 {
			return val{v.sreg, false}
		}
		r := c.pushI()
		c.a.I(isa.LW(r, isa.RegSP, uint16(v.frame)))
		return val{r, true}
	case addrOf:
		r := c.pushI()
		c.a.LA(r, x.sym, x.off)
		return val{r, true}
	case funcAddr:
		r := c.pushI()
		c.a.LA(r, x.sym, 0)
		return val{r, true}
	case loadExpr:
		base, off := c.evalAddr(x.addr)
		c.release(base)
		r := c.pushI()
		switch {
		case x.size == 1 && x.signed:
			c.a.I(isa.LB(r, base.reg, off))
		case x.size == 1:
			c.a.I(isa.LBU(r, base.reg, off))
		case x.size == 2 && x.signed:
			c.a.I(isa.LH(r, base.reg, off))
		case x.size == 2:
			c.a.I(isa.LHU(r, base.reg, off))
		case x.size == 4:
			c.a.I(isa.LW(r, base.reg, off))
		default:
			cerr("%s: bad load size %d", c.f.Name, x.size)
		}
		return val{r, true}
	case binOp:
		return c.evalBin(x)
	case unOp:
		switch x.op {
		case UNeg:
			a := c.eval(x.a)
			rd, out := c.binResult(a, val{})
			c.a.I(isa.SUBU(rd, isa.RegZero, a.reg))
			return out
		case UNot:
			a := c.eval(x.a)
			rd, out := c.binResult(a, val{})
			c.a.I(isa.NOR(rd, a.reg, isa.RegZero))
			return out
		}
		cerr("%s: float unary op in int context", c.f.Name)
	case cvtOp:
		if x.toFloat {
			cerr("%s: ToFloat used in int context", c.f.Name)
		}
		f := c.evalF(x.a)
		c.releaseF(f)
		r := c.pushI()
		c.a.I(isa.MFC1(r, f.reg))
		return val{r, true}
	case fcmpOp:
		return c.evalFCmp(x)
	case callExpr:
		return c.call(callSite{name: x.name, args: x.args}, TInt)
	case callPtr:
		return c.call(callSite{target: x.target, args: x.args}, TInt)
	case syscallExpr:
		return c.call(callSite{sysnum: x.num + 1, args: x.args}, TInt)
	case mfc0:
		r := c.pushI()
		c.a.I(isa.MFC0(r, x.reg))
		return val{r, true}
	case fconst, loadF, fbinOp:
		cerr("%s: float expression in int context", c.f.Name)
	}
	cerr("%s: unhandled expression %T", c.f.Name, e)
	return val{}
}

// binResult frees operand slots and picks a destination register
// following the scratch stack discipline. Pass zero vals for missing
// operands.
func (c *cg) binResult(a, b val) (int, val) {
	switch {
	case a.owned && b.owned:
		c.itop--
		return a.reg, val{a.reg, true}
	case a.owned:
		return a.reg, a
	case b.owned:
		return b.reg, b
	default:
		r := c.pushI()
		return r, val{r, true}
	}
}

func (c *cg) evalBin(x binOp) val {
	// Immediate forms.
	if k, ok := constVal(c.resolve(x.b)); ok {
		if r, done := c.evalBinImm(x.op, x.a, k); done {
			return r
		}
	}
	a := c.eval(x.a)
	b := c.eval(x.b)
	rd, out := c.binResult(a, b)
	A, B := a.reg, b.reg
	switch x.op {
	case BAdd:
		c.a.I(isa.ADDU(rd, A, B))
	case BSub:
		c.a.I(isa.SUBU(rd, A, B))
	case BMul:
		c.a.Is(isa.MULT(A, B), isa.MFLO(rd))
	case BDiv:
		c.a.Is(isa.DIV(A, B), isa.MFLO(rd))
	case BDivU:
		c.a.Is(isa.DIVU(A, B), isa.MFLO(rd))
	case BMod:
		c.a.Is(isa.DIV(A, B), isa.MFHI(rd))
	case BModU:
		c.a.Is(isa.DIVU(A, B), isa.MFHI(rd))
	case BAnd:
		c.a.I(isa.AND(rd, A, B))
	case BOr:
		c.a.I(isa.OR(rd, A, B))
	case BXor:
		c.a.I(isa.XOR(rd, A, B))
	case BShl:
		c.a.I(isa.SLLV(rd, A, B))
	case BShr:
		c.a.I(isa.SRLV(rd, A, B))
	case BSar:
		c.a.I(isa.SRAV(rd, A, B))
	case BEq:
		c.a.Is(isa.SUBU(rd, A, B), isa.SLTIU(rd, rd, 1))
	case BNe:
		c.a.Is(isa.SUBU(rd, A, B), isa.SLTU(rd, isa.RegZero, rd))
	case BLt:
		c.a.I(isa.SLT(rd, A, B))
	case BLe:
		c.a.Is(isa.SLT(rd, B, A), isa.XORI(rd, rd, 1))
	case BGt:
		c.a.I(isa.SLT(rd, B, A))
	case BGe:
		c.a.Is(isa.SLT(rd, A, B), isa.XORI(rd, rd, 1))
	case BLtU:
		c.a.I(isa.SLTU(rd, A, B))
	case BLeU:
		c.a.Is(isa.SLTU(rd, B, A), isa.XORI(rd, rd, 1))
	case BGtU:
		c.a.I(isa.SLTU(rd, B, A))
	case BGeU:
		c.a.Is(isa.SLTU(rd, A, B), isa.XORI(rd, rd, 1))
	default:
		cerr("%s: bad binary op %d", c.f.Name, x.op)
	}
	return out
}

// evalBinImm emits immediate forms where profitable. Returns done =
// false to fall back to the register form.
func (c *cg) evalBinImm(op BinKind, ae Expr, k int32) (val, bool) {
	emit1 := func(f func(rd, rs int) isa.Word) val {
		a := c.eval(ae)
		rd, out := c.binResult(a, val{})
		c.a.I(f(rd, a.reg))
		return out
	}
	switch op {
	case BAdd:
		if fitsSigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.ADDIU(rd, rs, uint16(k)) }), true
		}
	case BSub:
		if fitsSigned16(-k) {
			return emit1(func(rd, rs int) isa.Word { return isa.ADDIU(rd, rs, uint16(-k)) }), true
		}
	case BAnd:
		if fitsUnsigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.ANDI(rd, rs, uint16(k)) }), true
		}
	case BOr:
		if fitsUnsigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.ORI(rd, rs, uint16(k)) }), true
		}
	case BXor:
		if fitsUnsigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.XORI(rd, rs, uint16(k)) }), true
		}
	case BShl:
		if k >= 0 && k < 32 {
			return emit1(func(rd, rs int) isa.Word { return isa.SLL(rd, rs, uint32(k)) }), true
		}
	case BShr:
		if k >= 0 && k < 32 {
			return emit1(func(rd, rs int) isa.Word { return isa.SRL(rd, rs, uint32(k)) }), true
		}
	case BSar:
		if k >= 0 && k < 32 {
			return emit1(func(rd, rs int) isa.Word { return isa.SRA(rd, rs, uint32(k)) }), true
		}
	case BMul:
		if sh := log2(k); sh >= 0 {
			return emit1(func(rd, rs int) isa.Word { return isa.SLL(rd, rs, uint32(sh)) }), true
		}
	case BDivU:
		if sh := log2(k); sh >= 0 {
			return emit1(func(rd, rs int) isa.Word { return isa.SRL(rd, rs, uint32(sh)) }), true
		}
	case BModU:
		if k > 0 && k&(k-1) == 0 && fitsUnsigned16(k-1) {
			return emit1(func(rd, rs int) isa.Word { return isa.ANDI(rd, rs, uint16(k-1)) }), true
		}
	case BLt:
		if fitsSigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.SLTI(rd, rs, uint16(k)) }), true
		}
	case BLtU:
		if fitsSigned16(k) {
			return emit1(func(rd, rs int) isa.Word { return isa.SLTIU(rd, rs, uint16(k)) }), true
		}
	case BGe:
		if fitsSigned16(k) {
			a := c.eval(ae)
			rd, out := c.binResult(a, val{})
			c.a.Is(isa.SLTI(rd, a.reg, uint16(k)), isa.XORI(rd, rd, 1))
			return out, true
		}
	case BEq:
		if k == 0 {
			return emit1(func(rd, rs int) isa.Word { return isa.SLTIU(rd, rs, 1) }), true
		}
	case BNe:
		if k == 0 {
			a := c.eval(ae)
			rd, out := c.binResult(a, val{})
			c.a.I(isa.SLTU(rd, isa.RegZero, a.reg))
			return out, true
		}
	}
	return val{}, false
}

// evalF evaluates a float expression into an FP register.
func (c *cg) evalF(e Expr) val {
	e = c.resolve(e)
	switch x := e.(type) {
	case fconst:
		off := c.pool.intern(x.v)
		ra := c.pushI()
		c.a.LA(ra, c.pool.sym, off)
		c.itop--
		fr := c.pushF()
		c.a.I(isa.LWC1(fr, ra, 0))
		return val{fr, true}
	case localRef:
		v := c.f.lookup(x.name)
		if v.typ != TFloat {
			cerr("%s: float use of int local %q", c.f.Name, x.name)
		}
		fr := c.pushF()
		c.a.I(isa.LWC1(fr, isa.RegSP, uint16(v.frame)))
		return val{fr, true}
	case loadF:
		base, off := c.evalAddr(x.addr)
		c.release(base)
		fr := c.pushF()
		c.a.I(isa.LWC1(fr, base.reg, off))
		return val{fr, true}
	case fbinOp:
		a := c.evalF(x.a)
		b := c.evalF(x.b)
		fd, out := c.fbinResult(a, b)
		switch x.op {
		case BAdd:
			c.a.I(isa.FADD(fd, a.reg, b.reg))
		case BSub:
			c.a.I(isa.FSUB(fd, a.reg, b.reg))
		case BMul:
			c.a.I(isa.FMUL(fd, a.reg, b.reg))
		case BDiv:
			c.a.I(isa.FDIV(fd, a.reg, b.reg))
		default:
			cerr("%s: bad float op %d", c.f.Name, x.op)
		}
		return out
	case unOp:
		switch x.op {
		case UFNeg:
			a := c.evalF(x.a)
			fd, out := c.fbinResult(a, val{})
			c.a.I(isa.FNEG(fd, a.reg))
			return out
		case USqrt:
			a := c.evalF(x.a)
			fd, out := c.fbinResult(a, val{})
			c.a.I(isa.FSQRT(fd, a.reg))
			return out
		}
		cerr("%s: int unary op in float context", c.f.Name)
	case cvtOp:
		if !x.toFloat {
			cerr("%s: ToInt used in float context", c.f.Name)
		}
		r := c.eval(x.a)
		c.release(r)
		fr := c.pushF()
		c.a.I(isa.MTC1(r.reg, fr))
		return val{fr, true}
	case callExpr:
		return c.call(callSite{name: x.name, args: x.args}, TFloat)
	case callPtr:
		return c.call(callSite{target: x.target, args: x.args}, TFloat)
	}
	cerr("%s: unhandled float expression %T", c.f.Name, e)
	return val{}
}

func (c *cg) fbinResult(a, b val) (int, val) {
	switch {
	case a.owned && b.owned:
		c.ftop--
		return a.reg, val{a.reg, true}
	case a.owned:
		return a.reg, a
	case b.owned:
		return b.reg, b
	default:
		r := c.pushF()
		return r, val{r, true}
	}
}

func (c *cg) evalFCmp(x fcmpOp) val {
	a := c.evalF(x.a)
	b := c.evalF(x.b)
	c.releaseF(b)
	c.releaseF(a)
	switch x.op {
	case BEq:
		c.a.I(isa.FCEQ(a.reg, b.reg))
	case BLt:
		c.a.I(isa.FCLT(a.reg, b.reg))
	case BLe:
		c.a.I(isa.FCLE(a.reg, b.reg))
	default:
		cerr("%s: bad float comparison %d", c.f.Name, x.op)
	}
	rd := c.pushI()
	done := c.label()
	c.a.I(isa.ORI(rd, isa.RegZero, 1))
	c.a.Br(isa.BC1T(0), done)
	c.a.I(isa.NOP)
	c.a.I(isa.ADDU(rd, isa.RegZero, isa.RegZero))
	c.a.Label(done)
	return val{rd, true}
}
