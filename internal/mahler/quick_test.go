package mahler_test

import (
	"math/rand"
	"testing"

	m "systrace/internal/mahler"
	"systrace/internal/sim"
)

// Property test: random integer expression trees must evaluate to the
// same value on the simulated machine as a Go reference evaluator with
// identical 32-bit semantics.

type node struct {
	op    int // 0 = const, 1..n = binary op
	v     int32
	l, r  *node
	depth int
}

const nOps = 12

func genTree(r *rand.Rand, depth int) *node {
	if depth <= 0 || r.Intn(3) == 0 {
		// Mix small and large constants.
		var v int32
		switch r.Intn(3) {
		case 0:
			v = int32(r.Intn(200) - 100)
		case 1:
			v = int32(r.Uint32() & 0xffff)
		default:
			v = int32(r.Uint32())
		}
		return &node{op: 0, v: v}
	}
	return &node{
		op: 1 + r.Intn(nOps),
		l:  genTree(r, depth-1),
		r:  genTree(r, depth-1),
	}
}

func (n *node) expr() m.Expr {
	if n.op == 0 {
		return m.I(n.v)
	}
	l, r := n.l.expr(), n.r.expr()
	switch n.op {
	case 1:
		return m.Add(l, r)
	case 2:
		return m.Sub(l, r)
	case 3:
		return m.Mul(l, r)
	case 4:
		return m.And(l, r)
	case 5:
		return m.Or(l, r)
	case 6:
		return m.Xor(l, r)
	case 7:
		return m.Shl(l, m.And(r, m.I(31)))
	case 8:
		return m.Shr(l, m.And(r, m.I(31)))
	case 9:
		return m.Sar(l, m.And(r, m.I(31)))
	case 10:
		return m.Lt(l, r)
	case 11:
		return m.LtU(l, r)
	default:
		return m.Eq(l, r)
	}
}

func (n *node) eval() int32 {
	if n.op == 0 {
		return n.v
	}
	l, r := n.l.eval(), n.r.eval()
	b2i := func(b bool) int32 {
		if b {
			return 1
		}
		return 0
	}
	switch n.op {
	case 1:
		return l + r
	case 2:
		return l - r
	case 3:
		return l * r
	case 4:
		return l & r
	case 5:
		return l | r
	case 6:
		return l ^ r
	case 7:
		return int32(uint32(l) << (uint32(r) & 31))
	case 8:
		return int32(uint32(l) >> (uint32(r) & 31))
	case 9:
		return l >> (uint32(r) & 31)
	case 10:
		return b2i(l < r)
	case 11:
		return b2i(uint32(l) < uint32(r))
	default:
		return b2i(l == r)
	}
}

func TestExpressionPropertyAgainstInterpreter(t *testing.T) {
	r := rand.New(rand.NewSource(20260705))
	const perProgram = 16
	for round := 0; round < 6; round++ {
		trees := make([]*node, perProgram)
		mod := m.NewModule("qt")
		mod.Global("out", perProgram*4)
		f := mod.Func("main", m.TInt)
		f.Code(func(b *m.Block) {
			for i := range trees {
				trees[i] = genTree(r, 3)
				b.StoreW(m.Addr("out", int32(i*4)), trees[i].expr())
			}
			b.Return(m.I(1))
		})
		o, err := mod.Compile(m.Options{})
		if err != nil {
			t.Fatalf("round %d: compile: %v", round, err)
		}
		e, err := sim.BuildBare("qt", o)
		if err != nil {
			t.Fatal(err)
		}
		_, mach, err := sim.RunResult(e, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		outAddr := e.MustSymbol("out")
		for i, tr := range trees {
			want := uint32(tr.eval())
			got := sim.ReadWord(mach, outAddr+uint32(i*4))
			if got != want {
				t.Errorf("round %d expr %d: sim 0x%08x, reference 0x%08x", round, i, got, want)
			}
		}
	}
}
