package mahler_test

import (
	"math"
	"testing"

	m "systrace/internal/mahler"
	"systrace/internal/sim"
)

// run compiles a module whose main returns an int and executes it.
func run(t *testing.T, mod *m.Module) uint32 {
	t.Helper()
	o, err := mod.Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	e, err := sim.BuildBare(mod.Name, o)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	v, _, err := sim.RunResult(e, 50_000_000)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

// intMain builds a module with a single main returning expr-built v.
func intMain(name string, build func(f *m.Fn)) *m.Module {
	mod := m.NewModule(name)
	f := mod.Func("main", m.TInt)
	build(f)
	return mod
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		name string
		e    func() m.Expr
		want uint32
	}{
		{"add", func() m.Expr { return m.Add(m.I(40), m.I(2)) }, 42},
		{"sub", func() m.Expr { return m.Sub(m.I(10), m.I(52)) }, uint32(0xffffffd6)},
		{"mul", func() m.Expr { return m.Mul(m.I(-7), m.I(6)) }, uint32(0xffffffd6)},
		{"mulpow2", func() m.Expr { return m.Mul(m.I(11), m.I(8)) }, 88},
		{"div", func() m.Expr { return m.Div(m.I(-100), m.I(7)) }, uint32(0xfffffff2)}, // -14
		{"divu", func() m.Expr { return m.DivU(m.U(0x80000000), m.I(2)) }, 0x40000000},
		{"mod", func() m.Expr { return m.Mod(m.I(100), m.I(7)) }, 2},
		{"modu_pow2", func() m.Expr { return m.ModU(m.I(1023), m.I(256)) }, 255},
		{"and", func() m.Expr { return m.And(m.I(0xff0), m.I(0x0ff)) }, 0x0f0},
		{"or", func() m.Expr { return m.Or(m.I(0xf00), m.I(0x00f)) }, 0xf0f},
		{"xor", func() m.Expr { return m.Xor(m.I(0xff), m.I(0x0f)) }, 0xf0},
		{"shl", func() m.Expr { return m.Shl(m.I(1), m.I(20)) }, 1 << 20},
		{"shr", func() m.Expr { return m.Shr(m.U(0x80000000), m.I(4)) }, 0x08000000},
		{"sar", func() m.Expr { return m.Sar(m.I(-32), m.I(3)) }, uint32(0xfffffffc)},
		{"shl_var", func() m.Expr { return m.Shl(m.I(3), m.Add(m.I(1), m.I(1))) }, 12},
		{"neg", func() m.Expr { return m.Neg(m.I(5)) }, uint32(0xfffffffb)},
		{"not", func() m.Expr { return m.Not(m.I(0)) }, 0xffffffff},
		{"bigconst", func() m.Expr { return m.Add(m.U(0x12340000), m.I(0x5678)) }, 0x12345678},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := run(t, intMain("t_"+tc.name, func(f *m.Fn) {
				f.Code(func(b *m.Block) { b.Return(tc.e()) })
			}))
			if got != tc.want {
				t.Errorf("got 0x%x want 0x%x", got, tc.want)
			}
		})
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		name string
		e    m.Expr
		want uint32
	}{
		{"eq_t", m.Eq(m.I(3), m.I(3)), 1},
		{"eq_f", m.Eq(m.I(3), m.I(4)), 0},
		{"eq0", m.Eq(m.Sub(m.I(2), m.I(2)), m.I(0)), 1},
		{"ne", m.Ne(m.I(3), m.I(4)), 1},
		{"ne0", m.Ne(m.I(7), m.I(0)), 1},
		{"lt_t", m.Lt(m.I(-1), m.I(0)), 1},
		{"lt_f", m.Lt(m.I(0), m.I(-1)), 0},
		{"ltu", m.LtU(m.I(0), m.I(-1)), 1}, // 0 < 0xffffffff unsigned
		{"le", m.Le(m.I(5), m.I(5)), 1},
		{"gt", m.Gt(m.I(6), m.I(5)), 1},
		{"ge_imm", m.Ge(m.I(5), m.I(5)), 1},
		{"geu", m.GeU(m.I(-1), m.I(1)), 1},
		{"leu", m.LeU(m.I(1), m.I(1)), 1},
		{"gtu", m.GtU(m.I(-1), m.I(1)), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := run(t, intMain("c_"+tc.name, func(f *m.Fn) {
				f.Code(func(b *m.Block) { b.Return(tc.e) })
			}))
			if got != tc.want {
				t.Errorf("got %d want %d", got, tc.want)
			}
		})
	}
}

func TestLocalsAndLoops(t *testing.T) {
	// Sum 1..100 with enough locals that some are pinned to s-regs
	// (including the xregs s5..s7) and some spill to the frame.
	got := run(t, intMain("loops", func(f *m.Fn) {
		f.Locals("a", "b", "c", "d", "e", "g", "h", "i", "j", "k", "sum")
		f.Code(func(b *m.Block) {
			b.Assign("sum", m.I(0))
			b.For("i", m.I(1), m.I(101), func(b *m.Block) {
				b.Assign("sum", m.Add(m.V("sum"), m.V("i")))
			})
			b.Return(m.V("sum"))
		})
	}))
	if got != 5050 {
		t.Errorf("sum 1..100 = %d, want 5050", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	// Count odd numbers below 20, stopping at 15.
	got := run(t, intMain("brkcont", func(f *m.Fn) {
		f.Locals("i", "n")
		f.Code(func(b *m.Block) {
			b.Assign("i", m.I(0))
			b.Assign("n", m.I(0))
			b.While(m.Lt(m.V("i"), m.I(20)), func(b *m.Block) {
				b.Assign("i", m.Add(m.V("i"), m.I(1)))
				b.If(m.Eq(m.And(m.V("i"), m.I(1)), m.I(0)), func(b *m.Block) {
					b.Continue()
				}, nil)
				b.If(m.Eq(m.V("i"), m.I(15)), func(b *m.Block) {
					b.Break()
				}, nil)
				b.Assign("n", m.Add(m.V("n"), m.I(1)))
			})
			b.Return(m.V("n")) // odds 1,3,...,13 → 7
		})
	}))
	if got != 7 {
		t.Errorf("got %d want 7", got)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	mod := m.NewModule("fib")
	fib := mod.Func("fib", m.TInt)
	fib.Param("n", m.TInt)
	fib.Code(func(b *m.Block) {
		b.If(m.Lt(m.V("n"), m.I(2)), func(b *m.Block) {
			b.Return(m.V("n"))
		}, nil)
		b.Return(m.Add(
			m.Call("fib", m.Sub(m.V("n"), m.I(1))),
			m.Call("fib", m.Sub(m.V("n"), m.I(2))),
		))
	})
	main := mod.Func("main", m.TInt)
	main.Code(func(b *m.Block) { b.Return(m.Call("fib", m.I(15))) })
	if got := run(t, mod); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	mod := m.NewModule("mem")
	mod.Global("arr", 40) // 10 words
	mod.Data("greet", []byte("hello"))
	main := mod.Func("main", m.TInt)
	main.Locals("i", "sum")
	main.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(10), func(b *m.Block) {
			b.StoreW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))),
				m.Mul(m.V("i"), m.V("i")))
		})
		b.Assign("sum", m.I(0))
		b.For("i", m.I(0), m.I(10), func(b *m.Block) {
			b.Assign("sum", m.Add(m.V("sum"),
				m.LoadW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		// Add the first byte of "hello" ('h' = 104).
		b.Assign("sum", m.Add(m.V("sum"), m.LoadB(m.Addr("greet", 0))))
		b.Return(m.V("sum")) // 285 + 104
	})
	if got := run(t, mod); got != 389 {
		t.Errorf("got %d want 389", got)
	}
}

func TestSubWordMemory(t *testing.T) {
	mod := m.NewModule("subword")
	mod.Global("buf", 16)
	main := mod.Func("main", m.TInt)
	main.Locals("v")
	main.Code(func(b *m.Block) {
		b.StoreB(m.Addr("buf", 0), m.I(0x80)) // sign bit set
		b.Store(m.Addr("buf", 2), 2, m.I(0x8001))
		// lbu + lb + lhu + lh
		b.Assign("v", m.Add(
			m.Add(m.LoadB(m.Addr("buf", 0)), m.Load(m.Addr("buf", 0), 1, true)),
			m.Add(m.Load(m.Addr("buf", 2), 2, false), m.Load(m.Addr("buf", 2), 2, true)),
		))
		// 0x80 + (-128) + 0x8001 + (-32767) = 0 + 2 = wait:
		// 128 - 128 + 32769 - 32767 = 2
		b.Return(m.V("v"))
	})
	if got := run(t, mod); got != 2 {
		t.Errorf("got %d want 2", got)
	}
}

func TestFloat(t *testing.T) {
	mod := m.NewModule("float")
	mod.Global("fbuf", 32)
	norm := mod.Func("norm", m.TFloat)
	norm.Param("x", m.TFloat)
	norm.Param("y", m.TFloat)
	norm.Code(func(b *m.Block) {
		b.Return(m.Sqrt(m.FAdd(
			m.FMul(m.FV("x"), m.FV("x")),
			m.FMul(m.FV("y"), m.FV("y")))))
	})
	main := mod.Func("main", m.TInt)
	main.FLocals("a", "r")
	main.Locals("out")
	main.Code(func(b *m.Block) {
		b.Assign("a", m.F(3.0))
		b.StoreF(m.Addr("fbuf", 8), m.F(4.0))
		b.Assign("r", m.CallF("norm", m.FV("a"), m.LoadF(m.Addr("fbuf", 8))))
		// r should be 5.0
		b.If(m.FLt(m.FV("r"), m.F(4.99)), func(b *m.Block) {
			b.Return(m.I(-1))
		}, nil)
		b.If(m.FGt(m.FV("r"), m.F(5.01)), func(b *m.Block) {
			b.Return(m.I(-2))
		}, nil)
		// Integer conversion round trip: trunc(r * 100) = 500.
		b.Assign("out", m.ToInt(m.FMul(m.FV("r"), m.F(100.0))))
		b.Return(m.V("out"))
	})
	if got := run(t, mod); got != 500 {
		t.Errorf("got %d want 500", got)
	}
}

func TestToFloatConversion(t *testing.T) {
	mod := m.NewModule("cvt")
	main := mod.Func("main", m.TInt)
	main.FLocals("f")
	main.Code(func(b *m.Block) {
		b.Assign("f", m.FDiv(m.ToFloat(m.I(-355)), m.ToFloat(m.I(113))))
		// f ≈ -3.14159...; trunc(f * -1000) = 3141
		b.Return(m.ToInt(m.FMul(m.FV("f"), m.F(-1000))))
	})
	if got := run(t, mod); got != 3141 {
		t.Errorf("got %d want 3141", got)
	}
	_ = math.Pi
}

func TestFunctionPointers(t *testing.T) {
	mod := m.NewModule("fptr")
	inc := mod.Func("inc", m.TInt)
	inc.Param("x", m.TInt)
	inc.Code(func(b *m.Block) { b.Return(m.Add(m.V("x"), m.I(1))) })
	dbl := mod.Func("dbl", m.TInt)
	dbl.Param("x", m.TInt)
	dbl.Code(func(b *m.Block) { b.Return(m.Mul(m.V("x"), m.I(2))) })
	mod.DataAddrs("ops", []string{"inc", "dbl"})
	main := mod.Func("main", m.TInt)
	main.Locals("a", "b")
	main.Code(func(b *m.Block) {
		// Call through the table: ops[0](10) + ops[1](10) = 11 + 20.
		b.Assign("a", m.CallVia(m.LoadW(m.Addr("ops", 0)), m.I(10)))
		b.Assign("b", m.CallVia(m.LoadW(m.Addr("ops", 4)), m.I(10)))
		b.Return(m.Add(m.V("a"), m.V("b")))
	})
	if got := run(t, mod); got != 31 {
		t.Errorf("got %d want 31", got)
	}
}

func TestCallSpillsScratch(t *testing.T) {
	// A call nested inside a live expression must not clobber the
	// partial results held in scratch registers.
	mod := m.NewModule("spill")
	clob := mod.Func("clobber", m.TInt)
	clob.Locals("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10")
	clob.Code(func(b *m.Block) {
		// Lots of arithmetic to dirty every scratch register.
		b.Assign("t0", m.I(111))
		b.Assign("t10", m.Add(m.Add(m.Add(m.V("t0"), m.I(1)), m.Add(m.V("t0"), m.I(2))),
			m.Add(m.Add(m.V("t0"), m.I(3)), m.Add(m.V("t0"), m.I(4)))))
		b.Return(m.I(7))
	})
	main := mod.Func("main", m.TInt)
	main.Code(func(b *m.Block) {
		// 100 + clobber() * 2 + 1 = 115, with 100 live across the call.
		b.Return(m.Add(m.I(100), m.Add(m.Mul(m.Call("clobber"), m.I(2)), m.I(1))))
	})
	if got := run(t, mod); got != 115 {
		t.Errorf("got %d want 115", got)
	}
}

func TestMultiModuleLink(t *testing.T) {
	lib := m.NewModule("lib")
	sq := lib.Func("square", m.TInt)
	sq.Param("x", m.TInt)
	sq.Code(func(b *m.Block) { b.Return(m.Mul(m.V("x"), m.V("x"))) })

	app := m.NewModule("app")
	app.Extern("square", m.TInt)
	main := app.Func("main", m.TInt)
	main.Code(func(b *m.Block) { b.Return(m.Call("square", m.I(12))) })

	lo, err := lib.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ao, err := app.Compile(m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := sim.BuildBare("multi", ao, lo)
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := sim.RunResult(e, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if v != 144 {
		t.Errorf("square(12) = %d, want 144", v)
	}
}

func TestCompileErrors(t *testing.T) {
	t.Run("undeclared local", func(t *testing.T) {
		mod := m.NewModule("bad1")
		f := mod.Func("main", m.TInt)
		f.Code(func(b *m.Block) { b.Return(m.V("nope")) })
		if _, err := mod.Compile(m.Options{}); err == nil {
			t.Error("expected error for undeclared local")
		}
	})
	t.Run("undeclared function", func(t *testing.T) {
		mod := m.NewModule("bad2")
		f := mod.Func("main", m.TInt)
		f.Code(func(b *m.Block) { b.Return(m.Call("nothere")) })
		if _, err := mod.Compile(m.Options{}); err == nil {
			t.Error("expected error for undeclared function")
		}
	})
	t.Run("type mismatch", func(t *testing.T) {
		mod := m.NewModule("bad3")
		f := mod.Func("main", m.TInt)
		f.Locals("x")
		f.Code(func(b *m.Block) { b.Return(m.FV("x")) })
		if _, err := mod.Compile(m.Options{}); err == nil {
			t.Error("expected error for float ref to int local")
		}
	})
	t.Run("break outside loop", func(t *testing.T) {
		mod := m.NewModule("bad4")
		f := mod.Func("main", m.TInt)
		f.Code(func(b *m.Block) { b.Break() })
		if _, err := mod.Compile(m.Options{}); err == nil {
			t.Error("expected error for break outside loop")
		}
	})
}
