package mahler

import "systrace/internal/isa"

// callSite describes one of the three call forms: named call, indirect
// call, or system call (sysnum is the syscall number + 1; 0 = none).
type callSite struct {
	name   string
	target Expr
	sysnum int
	args   []Expr
}

// call implements the uniform call protocol:
//
//  1. evaluate every argument (and the indirect target) onto the
//     scratch stack — nested calls transparently spill and restore
//     live scratch, so partially evaluated outer calls survive;
//  2. move the argument values into a0..a3 / f12..f15 (and t9 for an
//     indirect target) and pop them;
//  3. spill any scratch still live below the arguments (values held
//     by an enclosing expression);
//  4. transfer (jal / jalr t9 / syscall);
//  5. capture the result into a fresh scratch register;
//  6. restore the spilled scratch registers.
//
// want selects the expected result type; calls to void functions in
// expression position are compile errors.
func (c *cg) call(s callSite, want Type) val {
	if len(s.args) > 4 {
		cerr("%s: call with %d arguments (max 4)", c.f.Name, len(s.args))
	}
	var ret Type
	switch {
	case s.sysnum > 0:
		ret = TInt
	case s.name != "":
		sig, ok := c.sigs[s.name]
		if !ok {
			cerr("%s: call to undeclared function %q (declare with Extern)", c.f.Name, s.name)
		}
		ret = sig
	default:
		ret = want // indirect calls trust the annotation
	}
	if want != TVoid && ret == TVoid {
		cerr("%s: void function %q used in expression", c.f.Name, s.name)
	}

	baseI, baseF := c.itop, c.ftop

	// 1. Evaluate arguments onto the scratch stack.
	vals := make([]val, len(s.args))
	floatArg := make([]bool, len(s.args))
	for i, arg := range s.args {
		arg = c.resolve(arg)
		if arg.exprType() == TFloat {
			floatArg[i] = true
			vals[i] = c.evalF(arg)
		} else {
			vals[i] = c.eval(arg)
		}
	}
	var tgt val
	if s.target != nil {
		tgt = c.eval(s.target)
	}

	// 2. Move into argument registers and pop.
	if s.target != nil {
		c.a.I(isa.ADDU(isa.RegT9, tgt.reg, isa.RegZero))
		c.release(tgt)
	}
	for i := len(s.args) - 1; i >= 0; i-- {
		if floatArg[i] {
			c.a.I(isa.FMOV(12+i, vals[i].reg))
			c.releaseF(vals[i])
		} else {
			c.a.I(isa.ADDU(isa.RegA0+i, vals[i].reg, isa.RegZero))
			c.release(vals[i])
		}
	}
	if c.itop != baseI || c.ftop != baseF {
		cerr("%s: call argument stack imbalance", c.f.Name)
	}

	// 3. Spill enclosing live scratch.
	for k := 0; k < baseI; k++ {
		c.a.I(isa.SW(intScratch[k], isa.RegSP, uint16(frIntSpill+4*k)))
	}
	for k := 0; k < baseF; k++ {
		c.a.I(isa.SWC1(fltScratch[k], isa.RegSP, uint16(frFltSpill+8*k)))
	}

	// 4. Transfer.
	switch {
	case s.sysnum > 0:
		c.a.LI(isa.RegV0, uint32(s.sysnum-1))
		c.a.I(isa.SYSCALL())
	case s.target != nil:
		c.a.I(isa.JALR(isa.RegRA, isa.RegT9))
		c.a.I(isa.NOP)
	default:
		c.a.JalSym(s.name)
		c.a.I(isa.NOP)
	}

	// 5/6. Capture result, restore spills.
	restore := func() {
		for k := 0; k < baseI; k++ {
			c.a.I(isa.LW(intScratch[k], isa.RegSP, uint16(frIntSpill+4*k)))
		}
		for k := 0; k < baseF; k++ {
			c.a.I(isa.LWC1(fltScratch[k], isa.RegSP, uint16(frFltSpill+8*k)))
		}
	}
	if want == TVoid {
		restore()
		return val{}
	}
	if want == TFloat {
		if ret != TFloat {
			cerr("%s: float use of int-returning function %q", c.f.Name, s.name)
		}
		fr := c.pushF()
		c.a.I(isa.FMOV(fr, 0))
		restore()
		return val{fr, true}
	}
	if ret == TFloat {
		cerr("%s: int use of float-returning function %q", c.f.Name, s.name)
	}
	rd := c.pushI()
	c.a.I(isa.ADDU(rd, isa.RegV0, isa.RegZero))
	restore()
	return val{rd, true}
}

func (c *cg) stmt(s Stmt) {
	switch x := s.(type) {
	case assignStmt:
		v := c.f.lookup(x.name)
		if v == nil {
			cerr("%s: assign to undeclared local %q", c.f.Name, x.name)
		}
		if v.typ == TFloat {
			fv := c.evalF(x.e)
			c.a.I(isa.SWC1(fv.reg, isa.RegSP, uint16(v.frame)))
			c.releaseF(fv)
			return
		}
		r := c.eval(x.e)
		if v.sreg >= 0 {
			if r.reg != v.sreg {
				c.a.I(isa.ADDU(v.sreg, r.reg, isa.RegZero))
			}
		} else {
			c.a.I(isa.SW(r.reg, isa.RegSP, uint16(v.frame)))
		}
		c.release(r)
	case storeStmt:
		rv := c.eval(x.e)
		base, off := c.evalAddr(x.addr)
		switch x.size {
		case 1:
			c.a.I(isa.SB(rv.reg, base.reg, off))
		case 2:
			c.a.I(isa.SH(rv.reg, base.reg, off))
		case 4:
			c.a.I(isa.SW(rv.reg, base.reg, off))
		default:
			cerr("%s: bad store size %d", c.f.Name, x.size)
		}
		c.release(base)
		c.release(rv)
	case storeFStmt:
		fv := c.evalF(x.e)
		base, off := c.evalAddr(x.addr)
		c.a.I(isa.SWC1(fv.reg, base.reg, off))
		c.release(base)
		c.releaseF(fv)
	case ifStmt:
		cond := c.eval(x.cond)
		c.release(cond)
		if x.els == nil {
			end := c.label()
			c.a.Br(isa.BEQ(cond.reg, isa.RegZero, 0), end)
			c.a.I(isa.NOP)
			c.stmts(x.then)
			c.a.Label(end)
			return
		}
		els, end := c.label(), c.label()
		c.a.Br(isa.BEQ(cond.reg, isa.RegZero, 0), els)
		c.a.I(isa.NOP)
		c.stmts(x.then)
		// The jump over the else arm is dead when the then arm already
		// left unconditionally (break/continue/return); emitting it
		// anyway creates an unreachable block guestlint flags.
		if !terminal(x.then) {
			c.a.Jmp(end)
			c.a.I(isa.NOP)
		}
		c.a.Label(els)
		c.stmts(x.els)
		c.a.Label(end)
	case whileStmt:
		top, end := c.label(), c.label()
		c.a.Label(top)
		cond := c.eval(x.cond)
		c.release(cond)
		c.a.Br(isa.BEQ(cond.reg, isa.RegZero, 0), end)
		c.a.I(isa.NOP)
		c.loops = append(c.loops, loopLabels{cont: top, brk: end})
		c.stmts(x.body)
		c.loops = c.loops[:len(c.loops)-1]
		if !terminal(x.body) {
			c.a.Jmp(top)
			c.a.I(isa.NOP)
		}
		c.a.Label(end)
	case breakStmt:
		if len(c.loops) == 0 {
			cerr("%s: break outside loop", c.f.Name)
		}
		c.a.Jmp(c.loops[len(c.loops)-1].brk)
		c.a.I(isa.NOP)
	case continueStmt:
		if len(c.loops) == 0 {
			cerr("%s: continue outside loop", c.f.Name)
		}
		c.a.Jmp(c.loops[len(c.loops)-1].cont)
		c.a.I(isa.NOP)
	case returnStmt:
		if x.e == nil {
			if c.f.Ret != TVoid {
				cerr("%s: bare return in %v function", c.f.Name, c.f.Ret)
			}
		} else if c.f.Ret == TFloat {
			fv := c.evalF(x.e)
			if fv.reg != 0 {
				c.a.I(isa.FMOV(0, fv.reg))
			}
			c.releaseF(fv)
		} else if c.f.Ret == TInt {
			r := c.eval(x.e)
			c.a.I(isa.ADDU(isa.RegV0, r.reg, isa.RegZero))
			c.release(r)
		} else {
			cerr("%s: value return in void function", c.f.Name)
		}
		c.a.Jmp(c.epi)
		c.a.I(isa.NOP)
	case exprStmt:
		e := c.resolve(x.e)
		switch ce := e.(type) {
		case callExpr:
			c.call(callSite{name: ce.name, args: ce.args}, TVoid)
		case callPtr:
			c.call(callSite{target: ce.target, args: ce.args}, TVoid)
		case syscallExpr:
			c.call(callSite{sysnum: ce.num + 1, args: ce.args}, TVoid)
		default:
			if e.exprType() == TFloat {
				c.releaseF(c.evalF(e))
			} else {
				c.release(c.eval(e))
			}
		}
	case mtc0Stmt:
		r := c.eval(x.e)
		c.a.I(isa.MTC0(r.reg, x.reg))
		c.release(r)
	case cop0Stmt:
		c.a.I(isa.Instr{Op: isa.OpCOP0, Rs: isa.Cop0CO, Funct: x.fn}.Encode())
	case haltStmt:
		c.a.I(isa.BREAK(0))
	default:
		cerr("%s: unhandled statement %T", c.f.Name, s)
	}
}

// terminal reports whether a statement list always leaves by an
// unconditional transfer (break, continue, or return), so any code
// emitted directly after it would be unreachable. An if is terminal
// only when both arms exist and are terminal.
func terminal(stmts []Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch x := stmts[len(stmts)-1].(type) {
	case breakStmt, continueStmt, returnStmt:
		return true
	case ifStmt:
		return x.els != nil && terminal(x.then) && terminal(x.els)
	}
	return false
}
