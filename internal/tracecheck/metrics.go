package tracecheck

import "systrace/internal/telemetry"

// RegisterMetrics publishes the result on reg so trace conformance
// shows up next to the static-verification and distortion series: a
// diagnostics counter and a pass/fail check counter per rule, plus the
// stream volume counters.
func (r *Result) RegisterMetrics(reg *telemetry.Registry, labels ...telemetry.Label) {
	if reg == nil {
		return
	}
	fails := r.Fails()
	for _, rule := range Rules {
		withRule := func(extra ...telemetry.Label) []telemetry.Label {
			ls := make([]telemetry.Label, 0, len(labels)+1+len(extra))
			ls = append(ls, labels...)
			ls = append(ls, telemetry.L("rule", rule))
			return append(ls, extra...)
		}
		reg.Counter("tracecheck_diags_total",
			"trace conformance findings by rule", withRule()...).
			Add(uint64(fails[rule]))
		pass := r.Checks[rule] - fails[rule]
		if pass < 0 {
			pass = 0
		}
		reg.Counter("tracecheck_checks_total",
			"trace conformance checks performed, by rule and outcome",
			withRule(telemetry.L("result", "pass"))...).
			Add(uint64(pass))
		reg.Counter("tracecheck_checks_total",
			"trace conformance checks performed, by rule and outcome",
			withRule(telemetry.L("result", "fail"))...).
			Add(uint64(fails[rule]))
	}
	reg.Counter("tracecheck_records_total",
		"basic-block records conformance-checked", labels...).
		Add(r.Records)
	reg.Counter("tracecheck_words_total",
		"raw trace words conformance-checked", labels...).
		Add(r.Words)
}
