package tracecheck_test

import (
	"bytes"
	"strings"
	"testing"

	"systrace/internal/obs"
	"systrace/internal/tracecheck"
)

// TestDiagDumpsFlightRecorder forces a conformance diagnostic (a
// corrupted record word, the same injection TestMutationRecord uses)
// and asserts the flight recorder dumped a snapshot containing the
// triggering failure event plus enough context to localize it: the
// rule name and the trace offset of the bad word.
func TestDiagDumpsFlightRecorder(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	p := find(ps, func(p pos) bool { return p.record })

	var buf bytes.Buffer
	restore := obs.SetFailureWriter(&buf)
	defer restore()

	res := runChecker(t, b, mutate(words, p.idx, 0x00000bad&^3))
	firstRule(t, res, tracecheck.RuleRecord)

	out := buf.String()
	if out == "" {
		t.Fatal("diagnostic did not dump the flight recorder")
	}
	if !strings.Contains(out, "failure_tracecheck_diag") {
		t.Errorf("dump lacks the triggering event:\n%s", out)
	}
	if !strings.Contains(out, tracecheck.RuleRecord) {
		t.Errorf("dump header lacks the violated rule %q:\n%s", tracecheck.RuleRecord, out)
	}
	if !strings.Contains(out, "flight recorder:") {
		t.Errorf("dump lacks the event ring:\n%s", out)
	}
}
