// Package tracecheck statically checks an encoded trace stream for
// conformance against the epoxie build that produced it: the trace
// must be a legal observation of the post-rewrite control-flow graph
// plus the kernel's stream protocol. Where internal/verify proves the
// *image* emits well-formed records, tracecheck proves a captured
// *stream* could have come from that image — the offline half of the
// §4.3 redundancy checks ("missing words of trace or erroneous writes
// into the trace are detected with a very high probability"), made
// deterministic and exhaustive instead of probabilistic.
//
// Rules:
//
//   - record: every word in record position resolves in the side
//     table of the address space it is attributed to — a real
//     post-rewrite block record (§3.2/§3.5 lookup table).
//   - cfg-edge: consecutive records within one stream follow the
//     static successor/call/return edges of the derived CFG; silent
//     (uninstrumented) code between records is closed over
//     statically (§3.3's untraced runtime never breaks the chain).
//   - mem-count: a block's memory references all arrive before its
//     stream ends — truncation and dropped words surface as a block
//     whose side-table count was never satisfied (§4.3).
//   - mem-addr: effective addresses obey the reference's static
//     width (alignment) and stores never land in the instrumented
//     text segment (§4.3: programs do not write their own code).
//   - nest: kernel entry/exit and the nested-exception trace-state
//     stack stay balanced (§3.5: "nested interrupts require the
//     tracing system to use a stack").
//   - sched: records only appear for address spaces that exist and
//     are scheduled, and user streams only reference user addresses
//     (§3.6 per-process trace pages; kuseg/kseg split).
//   - epoch: generation→analysis boundaries appear only in kernel
//     context and the §4.3 resynchronization "dirt" after one is
//     bounded by the largest block's reference count.
//   - special: idle-loop, UTLB-handler, and counter-toggle flagged
//     blocks are observed only where the parser's special behaviors
//     allow (§3.5, §4.1).
//
// Findings are deterministic structured diagnostics in the style of
// verify.Diag: a corrupted stream fails the same way every time.
package tracecheck

import (
	"fmt"
	"sort"

	"systrace/internal/obj"
	"systrace/internal/obs"
	"systrace/internal/trace"
	"systrace/internal/verify"
)

// Rule identifiers, in report order.
const (
	RuleRecord   = "record"
	RuleCFGEdge  = "cfg-edge"
	RuleMemCount = "mem-count"
	RuleMemAddr  = "mem-addr"
	RuleNest     = "nest"
	RuleSched    = "sched"
	RuleEpoch    = "epoch"
	RuleSpecial  = "special"
)

// Rules lists every rule identifier in report order.
var Rules = []string{
	RuleRecord, RuleCFGEdge, RuleMemCount, RuleMemAddr,
	RuleNest, RuleSched, RuleEpoch, RuleSpecial,
}

// Diag is one conformance finding.
type Diag struct {
	Offset int    `json:"offset"` // word index in the stream (across Check calls)
	Pid    int    `json:"pid"`    // address space the word was attributed to (0 = kernel)
	Block  uint32 `json:"block"`  // original address of the block involved (0 if none)
	Rule   string `json:"rule"`
	Msg    string `json:"msg"`
}

func (d Diag) String() string {
	return fmt.Sprintf("word %d [%s] pid %d: %s (block 0x%08x)", d.Offset, d.Rule, d.Pid, d.Msg, d.Block)
}

// maxDiags bounds the report: past it the stream is garbage and more
// findings carry no information.
const maxDiags = 1000

// Result is the outcome of checking one stream.
type Result struct {
	Name      string         `json:"name"`
	Words     uint64         `json:"words"`
	Records   uint64         `json:"records"`
	MemRefs   uint64         `json:"mem_refs"`
	Markers   uint64         `json:"markers"`
	Checks    map[string]int `json:"checks"` // rule -> checks performed
	Diags     []Diag         `json:"diags"`  // sorted by (Offset, Rule, Msg)
	Truncated bool           `json:"truncated,omitempty"`
}

// Clean reports whether the stream conformed.
func (r *Result) Clean() bool { return len(r.Diags) == 0 && !r.Truncated }

// Fails returns the number of diagnostics per rule.
func (r *Result) Fails() map[string]int {
	out := make(map[string]int, len(Rules))
	for _, d := range r.Diags {
		out[d.Rule]++
	}
	return out
}

// expectSet is the set of records legal at the next record position
// of a stream: the union of up to two reach closures, or everything.
type expectSet struct {
	top  bool
	a, b *verify.ReachSet
}

func (e expectSet) has(rec uint32) bool {
	if e.top {
		return true
	}
	if e.a != nil && (e.a.Top || e.a.Has(rec)) {
		return true
	}
	return e.b != nil && (e.b.Top || e.b.Has(rec))
}

func top() expectSet { return expectSet{top: true} }

// streamState is the conformance state of one address space's stream.
type streamState struct {
	open   *verify.CFGNode // block with outstanding memory references
	mem    int             // references consumed of open
	exp    expectSet       // legal next records (valid when no block is open)
	ret    []*verify.ReachSet
	resync bool // re-anchoring after a record diagnostic
}

// space is one checked address space: its CFG plus stream state.
type space struct {
	cfg   *verify.CFG
	entry expectSet // expectation for the stream's first record
	st    streamState
}

// frame saves the kernel stream context across a nested exception,
// mirroring the parser's nestFrame.
type frame struct {
	st     streamState
	inKern bool
}

// Checker consumes raw trace words incrementally and accumulates
// conformance diagnostics. Attribution of words to streams mirrors
// trace.Parser exactly: pid 0 is the kernel, markers switch context.
type Checker struct {
	kernel *space
	procs  map[int]*space
	cur    int
	inKern bool
	kstack []frame

	// kentry is the kernel's post-entry expectation: the records
	// reachable from the general exception entry point. Reset on
	// every kernel entry marker.
	kentry expectSet

	// resync mirrors the parser's post-mode-switch state: skip words
	// until a valid kernel record re-anchors the stream.
	resync      bool
	dirt        int
	dirtFlagged bool

	counterOn bool
	off       int
	schedMute map[int]bool // unknown-space episodes already reported

	// Compressed-stream consumption (CheckCompressed): decoder state
	// persists across epochs, mirroring the encoder that produced them.
	dec      *trace.Decoder
	decWords []uint32

	res *Result
}

// New builds a checker for a stream with no kernel (bare-runtime
// traces). Use SetKernel/AddProcess before the first Check call.
func New(name string) *Checker {
	return &Checker{
		procs:     map[int]*space{},
		kentry:    top(),
		schedMute: map[int]bool{},
		res:       &Result{Name: name, Checks: make(map[string]int)},
	}
}

// SetKernel derives the kernel CFG and switches the checker to
// whole-system mode: the stream starts in kernel context (tracing
// begins mid-boot, so the first kernel record is unconstrained).
func (c *Checker) SetKernel(e *obj.Executable) error {
	g, err := verify.NewCFG(e)
	if err != nil {
		return err
	}
	c.SetKernelCFG(g)
	return nil
}

// SetKernelCFG is SetKernel for an already-derived CFG (shared across
// checkers; note a CFG memoizes in place and is not goroutine-safe).
func (c *Checker) SetKernelCFG(g *verify.CFG) {
	sp := &space{cfg: g, entry: top()}
	sp.st.exp = sp.entry
	if addr, ok := g.Exe.Symbol("kentry"); ok {
		c.kentry = expectSet{a: g.Reach(addr)}
	}
	c.kernel = sp
	c.inKern = true
}

// AddProcess derives the CFG of a traced process's executable. The
// process's first record must be reachable from its entry point.
func (c *Checker) AddProcess(pid int, e *obj.Executable) error {
	g, err := verify.NewCFG(e)
	if err != nil {
		return err
	}
	c.AddProcessCFG(pid, g)
	return nil
}

// AddProcessCFG is AddProcess for an already-derived CFG.
func (c *Checker) AddProcessCFG(pid int, g *verify.CFG) {
	sp := &space{cfg: g, entry: expectSet{a: g.Reach(g.Exe.Entry)}}
	sp.st.exp = sp.entry
	c.procs[pid] = sp
}

func (c *Checker) space() *space {
	if c.inKern {
		return c.kernel
	}
	return c.procs[c.cur]
}

func (c *Checker) curSpace() int {
	if c.inKern {
		return 0
	}
	return c.cur
}

func (c *Checker) check(rule string) { c.res.Checks[rule]++ }

func (c *Checker) diag(block uint32, rule, format string, args ...any) {
	if len(c.res.Diags) >= maxDiags {
		c.res.Truncated = true
		return
	}
	c.res.Diags = append(c.res.Diags, Diag{
		Offset: c.off,
		Pid:    c.curSpace(),
		Block:  block,
		Rule:   rule,
		Msg:    fmt.Sprintf(format, args...),
	})
	// A conformance diagnostic deep in a long run is exactly what the
	// flight recorder exists for: dump the machine's recent notable
	// events alongside the first diagnostic of the process.
	obs.Failure("tracecheck_diag",
		fmt.Sprintf("%s: rule %s at trace offset %d (pid %d): %s",
			c.res.Name, rule, c.off, c.curSpace(), fmt.Sprintf(format, args...)))
}

// origOf returns the block's original address for diagnostics.
func origOf(n *verify.CFGNode) uint32 {
	if n == nil {
		return 0
	}
	return n.Info.OrigAddr
}

// Check consumes raw trace words. It is incremental: call it once per
// flushed buffer with the same Checker to preserve stream state
// across flush boundaries, then Finish once.
func (c *Checker) Check(words []uint32) {
	for _, w := range words {
		c.word(w)
		c.off++
	}
}

// CheckCompressed consumes one epoch of the compressed on-the-wire
// trace encoding (the internal/trace stream codec). Decoder state
// persists across calls: feed epochs in handoff order, exactly as a
// streaming-drain consumer receives them (kernel.System's OnEpoch
// hook). A malformed epoch is returned as an error — its words cannot
// be reconstructed, so no conformance rule applies to them — and the
// stream rules continue from the last good epoch.
func (c *Checker) CheckCompressed(data []byte) error {
	if c.dec == nil {
		c.dec = trace.NewDecoder()
	}
	words, err := c.dec.Decode(data, c.decWords[:0])
	c.decWords = words
	if err != nil {
		return err
	}
	c.Check(words)
	return nil
}

func (c *Checker) word(w uint32) {
	c.res.Words++
	if trace.IsMarker(w) {
		c.res.Markers++
		c.marker(w)
		return
	}
	if c.resync {
		// Post-mode-switch: the §4.3 "dirt" — orphan words from the
		// block the analysis phase interrupted — until a valid kernel
		// record re-anchors the stream.
		sp := c.space()
		if sp == nil || sp.cfg.ByRecord[w] == nil {
			c.dirt++
			c.check(RuleEpoch)
			if !c.dirtFlagged && c.kernel != nil && c.dirt > c.kernel.cfg.MaxMem {
				c.dirtFlagged = true
				c.diag(0, RuleEpoch,
					"resynchronization dirt exceeds the largest block's %d references",
					c.kernel.cfg.MaxMem)
			}
			return
		}
		c.resync = false
	}
	sp := c.space()
	if sp == nil {
		c.check(RuleSched)
		if !c.schedMute[c.cur] {
			c.schedMute[c.cur] = true
			c.diag(0, RuleSched, "trace words attributed to unknown address space %d", c.curSpace())
		}
		return
	}
	st := &sp.st
	if st.open != nil {
		c.memRef(sp, w)
		return
	}
	c.record(sp, w)
}

// memRef consumes one effective-address word of the open block.
func (c *Checker) memRef(sp *space, w uint32) {
	st := &sp.st
	m := st.open.Info.Mem[st.mem]
	c.res.MemRefs++
	c.check(RuleMemAddr)
	switch m.Size {
	case 2:
		if w&1 != 0 {
			c.diag(origOf(st.open), RuleMemAddr,
				"halfword reference %d at unaligned address 0x%08x", st.mem, w)
		}
	case 4, 8:
		if w&3 != 0 {
			c.diag(origOf(st.open), RuleMemAddr,
				"word reference %d at unaligned address 0x%08x", st.mem, w)
		}
	}
	e := sp.cfg.Exe
	if !m.Load && w >= e.TextBase && w < e.TextEnd() {
		c.diag(origOf(st.open), RuleMemAddr,
			"store into instrumented text at 0x%08x (trace slipped?)", w)
	}
	// A kuseg process only ever references user addresses; kernel and
	// bare (kseg0-linked) streams may touch anything.
	c.check(RuleSched)
	if !c.inKern && e.TextBase < 0x80000000 && w >= 0x80000000 {
		c.diag(origOf(st.open), RuleSched,
			"user stream references kernel address 0x%08x", w)
	}
	st.mem++
	if st.mem >= len(st.open.Info.Mem) {
		st.open = nil
	}
}

// record consumes one word in record position.
func (c *Checker) record(sp *space, w uint32) {
	st := &sp.st
	n := sp.cfg.ByRecord[w]
	if st.resync {
		// Recovering from a record diagnostic: skip silently until a
		// word resolves again, then anchor with no edge expectation.
		if n == nil {
			return
		}
		st.resync = false
		st.exp = top()
	}
	c.check(RuleRecord)
	if n == nil {
		c.diag(0, RuleRecord,
			"0x%08x is not a record of address space %d", w, c.curSpace())
		st.resync = true
		return
	}
	c.res.Records++

	c.check(RuleCFGEdge)
	if !st.exp.has(w) {
		c.diag(origOf(n), RuleCFGEdge,
			"record 0x%08x (orig 0x%08x) is not a legal successor in this stream", w, n.Info.OrigAddr)
	}

	c.special(n)

	st.open = n
	st.mem = 0
	if len(n.Info.Mem) == 0 {
		st.open = nil
	}
	c.advance(sp, n)
}

// special checks the §3.5 special-block behaviors at a record.
func (c *Checker) special(n *verify.CFGNode) {
	c.check(RuleSpecial)
	fl := n.Info.Flags
	if fl&obj.BBIdleLoop != 0 && !c.inKern {
		c.diag(origOf(n), RuleSpecial, "idle-loop block recorded in a user stream")
	}
	if fl&obj.BBUTLBHandler != 0 {
		c.diag(origOf(n), RuleSpecial, "UTLB-handler block recorded (the handler is never traced)")
	}
	if fl&obj.BBCounterStart != 0 {
		if c.counterOn {
			c.diag(origOf(n), RuleSpecial, "counter-start block while the counter is already on")
		}
		c.counterOn = true
	}
	if fl&obj.BBCounterStop != 0 {
		if !c.counterOn {
			c.diag(origOf(n), RuleSpecial, "counter-stop block while the counter is off")
		}
		c.counterOn = false
	}
}

// advance computes the stream's next-record expectation from the
// accepted block's terminator.
func (c *Checker) advance(sp *space, n *verify.CFGNode) {
	st := &sp.st
	g := sp.cfg
	switch n.Term {
	case verify.TermFall:
		st.exp = expectSet{a: g.Reach(n.Next)}
	case verify.TermBranch:
		st.exp = expectSet{a: g.Reach(n.Target), b: g.Reach(n.Next)}
	case verify.TermJump:
		st.exp = expectSet{a: g.Reach(n.Target)}
	case verify.TermCall:
		callee := g.Reach(n.Target)
		ret := g.Reach(n.Next)
		if !callee.Top && len(callee.Records) == 0 {
			// Call into invisible code (a silent helper like
			// idle_pause): no record, no visible return — the next
			// record is whatever follows the call site.
			st.exp = expectSet{a: ret}
			return
		}
		st.ret = append(st.ret, ret)
		if callee.Top || !callee.MayReturn {
			st.exp = expectSet{a: callee}
		} else {
			st.exp = expectSet{a: callee, b: ret}
		}
	case verify.TermCallReg:
		st.ret = append(st.ret, g.Reach(n.Next))
		st.exp = top()
	case verify.TermRet:
		if len(st.ret) == 0 {
			// Returning past the oldest tracked call (the stream was
			// anchored mid-execution): no static expectation.
			st.exp = top()
		} else {
			st.exp = expectSet{a: st.ret[len(st.ret)-1]}
			st.ret = st.ret[:len(st.ret)-1]
		}
	default: // TermJumpReg, TermHalt
		st.exp = top()
	}
}

// marker handles control words, mirroring trace.Parser.marker.
func (c *Checker) marker(w uint32) {
	switch trace.MarkerKind(w) {
	case trace.MarkCtxSw:
		c.cur = int(trace.MarkerArg(w))
		c.inKern = false
	case trace.MarkKernEnter:
		c.check(RuleNest)
		if c.inKern {
			c.diag(0, RuleNest, "kernel-enter marker while already in kernel context")
		}
		c.inKern = true
		if c.kernel != nil {
			c.kernel.st = streamState{exp: c.kentry}
		}
	case trace.MarkKernExit:
		c.check(RuleNest)
		if !c.inKern {
			c.diag(0, RuleNest, "kernel-exit marker while not in kernel context")
		}
		if c.kernel != nil && c.kernel.st.open != nil {
			c.diag(origOf(c.kernel.st.open), RuleNest,
				"kernel stream exits to user mid-block (%d of %d references seen)",
				c.kernel.st.mem, len(c.kernel.st.open.Info.Mem))
			c.kernel.st.open = nil
		}
		c.inKern = false
		c.cur = int(trace.MarkerArg(w))
	case trace.MarkExcEnter:
		c.kstack = append(c.kstack, frame{st: c.kernelState(), inKern: c.inKern})
		if c.kernel != nil {
			c.kernel.st = streamState{exp: c.kentry}
		}
		c.inKern = true
	case trace.MarkExcExit:
		c.check(RuleNest)
		if len(c.kstack) == 0 {
			c.diag(0, RuleNest, "exception-exit marker with empty nesting stack")
			return
		}
		if c.kernel != nil && c.kernel.st.open != nil {
			c.diag(origOf(c.kernel.st.open), RuleNest,
				"nested exception exits mid-block (%d of %d references seen)",
				c.kernel.st.mem, len(c.kernel.st.open.Info.Mem))
		}
		fr := c.kstack[len(c.kstack)-1]
		c.kstack = c.kstack[:len(c.kstack)-1]
		if c.kernel != nil {
			c.kernel.st = fr.st
		}
		c.inKern = fr.inKern
	case trace.MarkModeSw:
		c.check(RuleEpoch)
		if !c.inKern {
			c.diag(0, RuleEpoch, "mode-switch marker outside kernel context")
		}
		if len(c.kstack) > 0 {
			c.diag(0, RuleEpoch, "mode-switch marker inside %d open nested exception(s)", len(c.kstack))
			c.kstack = c.kstack[:0]
		}
		// The interrupted kernel block's remaining references are
		// lost; re-anchor at the next valid kernel record.
		if c.kernel != nil {
			c.kernel.st = streamState{exp: top()}
		}
		c.resync = true
		c.dirt = 0
		c.dirtFlagged = false
	case trace.MarkProcExit:
		pid := int(trace.MarkerArg(w))
		if sp := c.procs[pid]; sp != nil {
			c.check(RuleMemCount)
			if sp.st.open != nil {
				cp, ck := c.cur, c.inKern
				c.cur, c.inKern = pid, false
				c.diag(origOf(sp.st.open), RuleMemCount,
					"process exits mid-block (%d of %d references seen)",
					sp.st.mem, len(sp.st.open.Info.Mem))
				c.cur, c.inKern = cp, ck
			}
			delete(c.procs, pid)
		}
		delete(c.schedMute, pid)
	default:
		c.check(RuleEpoch)
		c.diag(0, RuleEpoch, "unknown marker 0x%08x", w)
	}
}

// kernelState snapshots the kernel stream state for the nesting stack.
func (c *Checker) kernelState() streamState {
	if c.kernel == nil {
		return streamState{exp: top()}
	}
	return c.kernel.st
}

// Finish checks end-of-stream invariants and returns the result. The
// checker must not be used after Finish.
func (c *Checker) Finish() *Result {
	c.check(RuleNest)
	if len(c.kstack) > 0 {
		c.diag(0, RuleNest, "stream ends inside %d open nested exception(s)", len(c.kstack))
	}
	if c.kernel != nil {
		c.check(RuleMemCount)
		if s := &c.kernel.st; s.open != nil {
			c.diag(origOf(s.open), RuleMemCount,
				"kernel stream ends mid-block (%d of %d references seen)",
				s.mem, len(s.open.Info.Mem))
		}
	}
	pids := make([]int, 0, len(c.procs))
	for pid := range c.procs {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		c.check(RuleMemCount)
		if s := &c.procs[pid].st; s.open != nil {
			c.cur, c.inKern = pid, false
			c.diag(origOf(s.open), RuleMemCount,
				"process %d stream ends mid-block (%d of %d references seen)",
				pid, s.mem, len(s.open.Info.Mem))
		}
	}
	sort.Slice(c.res.Diags, func(i, j int) bool {
		a, b := c.res.Diags[i], c.res.Diags[j]
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
	return c.res
}
