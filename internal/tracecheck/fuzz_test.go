package tracecheck_test

import (
	"encoding/binary"
	"reflect"
	"testing"

	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/trace"
	"systrace/internal/tracecheck"
	"systrace/internal/verify"
)

// fuzzBuild runs the conformance module once per fuzz process and
// shares the build, a known-good trace, and a single derived CFG
// across all fuzz iterations.
func fuzzBuild(f *testing.F) (*obj.Executable, *verify.CFG, []uint32) {
	f.Helper()
	o, err := conformModule().Compile(m.Options{})
	if err != nil {
		f.Fatalf("compile: %v", err)
	}
	b, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name:     "conform",
		TextBase: sim.BareTextBase,
		DataBase: sim.BareDataBase,
	}, epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		f.Fatalf("instrument: %v", err)
	}
	mach := sim.NewBareMachine(b.Instr)
	if err := mach.Run(100_000_000); err != nil {
		f.Fatalf("traced run: %v", err)
	}
	g, err := verify.NewCFG(b.Instr)
	if err != nil {
		f.Fatalf("cfg: %v", err)
	}
	return b.Instr, g, sim.TraceWords(mach)
}

// FuzzConformance feeds arbitrary word streams to the conformance
// checker: it must never panic, its diagnostics must be deterministic,
// and any stream the trace parser fully accepts must check clean.
func FuzzConformance(f *testing.F) {
	exe, cfg, good := fuzzBuild(f)

	seed := func(words []uint32) {
		b := make([]byte, 4*len(words))
		for i, w := range words {
			binary.BigEndian.PutUint32(b[4*i:], w)
		}
		f.Add(b)
	}
	// The full known-good trace, a truncation, a corruption, and a few
	// marker-heavy fragments around real record addresses.
	seed(good)
	seed(good[:len(good)/2])
	if len(good) > 3 {
		bad := append([]uint32(nil), good...)
		bad[3] ^= 0x40
		seed(bad)
	}
	seed([]uint32{trace.MarkExcEnter, good[0], trace.MarkExcExit})
	seed([]uint32{trace.MarkKernEnter, trace.MarkKernExit | 0, good[0]})
	seed([]uint32{trace.MarkModeSw, trace.MarkCtxSw | 1, 0xdeadbeef, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		n := len(data) / 4
		if n > 4096 {
			n = 4096
		}
		words := make([]uint32, n)
		for i := range words {
			words[i] = binary.BigEndian.Uint32(data[4*i:])
		}

		run := func() *tracecheck.Result {
			c := tracecheck.New("fuzz")
			c.AddProcessCFG(0, cfg)
			c.Check(words)
			return c.Finish()
		}
		r1 := run()
		r2 := run()
		if !reflect.DeepEqual(r1.Diags, r2.Diags) {
			t.Fatalf("diagnostics differ between runs:\n%v\n%v", r1.Diags, r2.Diags)
		}
		for _, d := range r1.Diags {
			if d.Offset < 0 || d.Offset > len(words) {
				t.Errorf("diagnostic offset %d out of range [0, %d]: %v", d.Offset, len(words), d)
			}
			if d.Rule == "" || d.Msg == "" {
				t.Errorf("diagnostic missing rule or message: %+v", d)
			}
		}

		// Soundness cross-check: the checker is strictly more demanding
		// than the parser (CFG edges, alignment, scheduling), so any
		// stream it passes as clean must reconstruct without error.
		if r1.Clean() {
			p := trace.NewParser(nil)
			p.AddProcess(0, trace.NewSideTable(exe.Instr.Blocks))
			if _, err := p.Parse(words, nil); err != nil {
				t.Fatalf("checker clean but parser rejects: %v", err)
			}
			if err := p.Finish(); err != nil {
				t.Fatalf("checker clean but parser finish rejects: %v", err)
			}
		}
	})
}
