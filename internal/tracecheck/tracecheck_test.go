package tracecheck_test

import (
	"reflect"
	"sort"
	"testing"

	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
	"systrace/internal/sim"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/tracecheck"
)

// conformModule builds a program that exercises every terminator kind
// the checker tracks: branches and loops, direct calls and returns, a
// function-pointer call (jalr), and word/subword memory traffic.
func conformModule() *m.Module {
	mod := m.NewModule("conform")
	mod.Global("arr", 256)
	inc := mod.Func("inc", m.TInt)
	inc.Param("x", m.TInt)
	inc.Code(func(bl *m.Block) { bl.Return(m.Add(m.V("x"), m.I(1))) })
	dbl := mod.Func("dbl", m.TInt)
	dbl.Param("x", m.TInt)
	dbl.Code(func(bl *m.Block) { bl.Return(m.Mul(m.V("x"), m.I(2))) })
	mod.DataAddrs("ops", []string{"inc", "dbl"})
	f := mod.Func("main", m.TInt)
	f.Locals("i", "acc")
	f.Code(func(bl *m.Block) {
		bl.Assign("acc", m.I(0))
		bl.For("i", m.I(0), m.I(16), func(bl *m.Block) {
			bl.StoreW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))), m.Mul(m.V("i"), m.I(3)))
			bl.StoreB(m.Add(m.Addr("arr", 128), m.V("i")), m.V("i"))
			bl.Assign("acc", m.Add(m.V("acc"),
				m.LoadW(m.Add(m.Addr("arr", 0), m.Mul(m.V("i"), m.I(4))))))
		})
		bl.For("i", m.I(0), m.I(4), func(bl *m.Block) {
			bl.Assign("acc", m.CallVia(
				m.LoadW(m.Add(m.Addr("ops", 0), m.Mul(m.And(m.V("i"), m.I(1)), m.I(4)))),
				m.V("acc")))
		})
		bl.Return(m.Call("inc", m.V("acc")))
	})
	return mod
}

// buildConform instruments the module for the bare runtime and runs
// it, returning the build and the raw trace it produced.
func buildConform(t *testing.T) (*epoxie.Build, []uint32) {
	t.Helper()
	o, err := conformModule().Compile(m.Options{})
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	b, err := epoxie.BuildInstrumented([]*obj.File{sim.TracedStartObj(), o}, link.Options{
		Name:     "conform",
		TextBase: sim.BareTextBase,
		DataBase: sim.BareDataBase,
	}, epoxie.Config{}, epoxie.BareRuntime)
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	mach := sim.NewBareMachine(b.Instr)
	if err := mach.Run(100_000_000); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	words := sim.TraceWords(mach)
	if len(words) == 0 {
		t.Fatal("traced run produced no trace")
	}
	return b, words
}

// runChecker checks words against the build as user pid 0.
func runChecker(t *testing.T, b *epoxie.Build, words []uint32) *tracecheck.Result {
	t.Helper()
	c := tracecheck.New("test")
	if err := c.AddProcess(0, b.Instr); err != nil {
		t.Fatalf("AddProcess: %v", err)
	}
	c.Check(words)
	return c.Finish()
}

// pos classifies one word of a known-good trace.
type pos struct {
	idx    int
	record bool
	ib     *obj.InstrBlock
	memIdx int
}

// classify walks a clean single-stream trace with the side table and
// labels each word as a record or the Nth effective address of its
// block.
func classify(t *testing.T, b *epoxie.Build, words []uint32) []pos {
	t.Helper()
	tbl := trace.NewSideTable(b.Instr.Instr.Blocks)
	var out []pos
	var open *obj.InstrBlock
	mem := 0
	for i, w := range words {
		if trace.IsMarker(w) {
			t.Fatalf("unexpected marker 0x%08x in bare trace", w)
		}
		if open != nil && mem < len(open.Mem) {
			out = append(out, pos{idx: i, ib: open, memIdx: mem})
			mem++
			continue
		}
		ib := tbl.Lookup(w)
		if ib == nil {
			t.Fatalf("word %d (0x%08x): not a record", i, w)
		}
		out = append(out, pos{idx: i, record: true, ib: ib})
		open, mem = ib, 0
	}
	return out
}

func find(ps []pos, want func(pos) bool) pos {
	for _, p := range ps {
		if want(p) {
			return p
		}
	}
	return pos{idx: -1}
}

func mutate(words []uint32, idx int, w uint32) []uint32 {
	out := append([]uint32(nil), words...)
	out[idx] = w
	return out
}

// firstRule asserts the result's first diagnostic fires rule.
func firstRule(t *testing.T, res *tracecheck.Result, rule string) {
	t.Helper()
	if len(res.Diags) == 0 {
		t.Fatalf("expected a %s diagnostic, stream checked clean", rule)
	}
	if res.Diags[0].Rule != rule {
		t.Fatalf("first diagnostic: got %v, want rule %s", res.Diags[0], rule)
	}
}

func TestConformanceClean(t *testing.T) {
	b, words := buildConform(t)
	res := runChecker(t, b, words)
	if !res.Clean() {
		t.Fatalf("known-good trace not clean: %v", res.Diags)
	}
	ps := classify(t, b, words)
	recs := 0
	for _, p := range ps {
		if p.record {
			recs++
		}
	}
	if res.Records != uint64(recs) {
		t.Errorf("Records = %d, classify found %d", res.Records, recs)
	}
	if res.Words != uint64(len(words)) {
		t.Errorf("Words = %d, want %d", res.Words, len(words))
	}
	if res.MemRefs != uint64(len(words)-recs) {
		t.Errorf("MemRefs = %d, want %d", res.MemRefs, len(words)-recs)
	}
	// The same stream must satisfy the parser — the checker accepts a
	// superset of nothing: what parses must conform.
	p := trace.NewParser(nil)
	p.AddProcess(0, trace.NewSideTable(b.Instr.Instr.Blocks))
	if _, err := p.Parse(words, nil); err != nil {
		t.Fatalf("parser rejects the same stream: %v", err)
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("parser finish: %v", err)
	}
}

func TestConformanceIncremental(t *testing.T) {
	b, words := buildConform(t)
	whole := runChecker(t, b, words)
	c := tracecheck.New("test")
	if err := c.AddProcess(0, b.Instr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(words); i += 7 {
		end := i + 7
		if end > len(words) {
			end = len(words)
		}
		c.Check(words[i:end])
	}
	chunked := c.Finish()
	if !chunked.Clean() {
		t.Fatalf("chunked check not clean: %v", chunked.Diags)
	}
	if whole.Records != chunked.Records || whole.Words != chunked.Words ||
		whole.MemRefs != chunked.MemRefs {
		t.Errorf("chunked counters differ: %+v vs %+v", whole, chunked)
	}
}

// TestConformanceKernelMarkers validates the kernel-protocol handling
// on a synthetic whole-system interleaving: kernel entry/exit and a
// nested exception wrapped around the user stream (zero kernel records
// is a legal kernel episode). The parser must agree.
func TestConformanceKernelMarkers(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	// A between-blocks boundary (a record position) and a mid-block
	// position (an EA position).
	bound := find(ps, func(p pos) bool { return p.record && p.idx > 0 })
	mid := find(ps, func(p pos) bool { return !p.record })
	if bound.idx < 0 || mid.idx < 0 {
		t.Fatal("no suitable positions")
	}
	var syn []uint32
	for i, w := range words {
		if i == bound.idx {
			syn = append(syn, trace.MarkKernEnter, trace.MarkKernExit|0)
		}
		if i == mid.idx {
			syn = append(syn, trace.MarkExcEnter, trace.MarkExcExit)
		}
		syn = append(syn, w)
	}
	res := runChecker(t, b, syn)
	if !res.Clean() {
		t.Fatalf("synthetic kernel interleaving not clean: %v", res.Diags)
	}
	if res.Markers != 4 {
		t.Errorf("Markers = %d, want 4", res.Markers)
	}
	p := trace.NewParser(nil)
	p.AddProcess(0, trace.NewSideTable(b.Instr.Instr.Blocks))
	if _, err := p.Parse(syn, nil); err != nil {
		t.Fatalf("parser rejects the synthetic stream: %v", err)
	}
}

func TestMutationRecord(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	p := find(ps, func(p pos) bool { return p.record })
	res := runChecker(t, b, mutate(words, p.idx, 0x00000bad&^3))
	firstRule(t, res, tracecheck.RuleRecord)
	if res.Diags[0].Offset != p.idx {
		t.Errorf("diag at word %d, want %d", res.Diags[0].Offset, p.idx)
	}
}

func TestMutationCFGEdge(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	// Substitute one record with another valid record of equal
	// reference count (so the stream stays in step) that is not a
	// legal successor at that point.
	var recs []uint32
	for _, ib := range b.Instr.Instr.Blocks {
		recs = append(recs, ib.RecordAddr)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i] < recs[j] })
	tbl := trace.NewSideTable(b.Instr.Instr.Blocks)
	for _, p := range ps {
		if !p.record {
			continue
		}
		for _, r := range recs {
			if r == words[p.idx] || len(tbl.Lookup(r).Mem) != len(p.ib.Mem) {
				continue
			}
			res := runChecker(t, b, mutate(words, p.idx, r))
			if len(res.Diags) > 0 && res.Diags[0].Rule == tracecheck.RuleCFGEdge {
				if res.Diags[0].Offset != p.idx {
					t.Errorf("diag at word %d, want %d", res.Diags[0].Offset, p.idx)
				}
				return
			}
		}
	}
	t.Fatal("no single-record substitution triggered cfg-edge")
}

func TestMutationMemCount(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	p := find(ps, func(p pos) bool { return p.record && len(p.ib.Mem) > 0 })
	if p.idx < 0 {
		t.Fatal("no record with memory references")
	}
	res := runChecker(t, b, words[:p.idx+1]) // cut off the block's EAs
	firstRule(t, res, tracecheck.RuleMemCount)
	if len(res.Diags) != 1 {
		t.Errorf("want exactly one diagnostic, got %v", res.Diags)
	}
}

func TestMutationMemAddr(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	t.Run("unaligned", func(t *testing.T) {
		p := find(ps, func(p pos) bool { return !p.record && p.ib.Mem[p.memIdx].Size == 4 })
		if p.idx < 0 {
			t.Fatal("no word-sized reference")
		}
		res := runChecker(t, b, mutate(words, p.idx, words[p.idx]|1))
		firstRule(t, res, tracecheck.RuleMemAddr)
	})
	t.Run("store-into-text", func(t *testing.T) {
		p := find(ps, func(p pos) bool {
			return !p.record && !p.ib.Mem[p.memIdx].Load && p.ib.Mem[p.memIdx].Size == 4
		})
		if p.idx < 0 {
			t.Fatal("no word-sized store")
		}
		res := runChecker(t, b, mutate(words, p.idx, b.Instr.TextBase))
		firstRule(t, res, tracecheck.RuleMemAddr)
	})
}

func TestMutationNest(t *testing.T) {
	b, words := buildConform(t)
	t.Run("exit-empty-stack", func(t *testing.T) {
		res := runChecker(t, b, append([]uint32{trace.MarkExcExit}, words...))
		firstRule(t, res, tracecheck.RuleNest)
	})
	t.Run("truncated-mid-nest", func(t *testing.T) {
		res := runChecker(t, b, append(append([]uint32(nil), words...), trace.MarkExcEnter))
		firstRule(t, res, tracecheck.RuleNest)
	})
}

func TestMutationSched(t *testing.T) {
	b, words := buildConform(t)
	res := runChecker(t, b, append([]uint32{trace.MarkCtxSw | 7}, words...))
	firstRule(t, res, tracecheck.RuleSched)
	if len(res.Diags) != 1 {
		t.Errorf("unknown-space episode should report once, got %v", res.Diags)
	}
}

func TestMutationEpoch(t *testing.T) {
	b, words := buildConform(t)
	t.Run("modesw-in-user", func(t *testing.T) {
		res := runChecker(t, b, append([]uint32{trace.MarkModeSw}, words...))
		firstRule(t, res, tracecheck.RuleEpoch)
	})
	t.Run("unknown-marker", func(t *testing.T) {
		res := runChecker(t, b, append([]uint32{0xfff80000}, words...))
		firstRule(t, res, tracecheck.RuleEpoch)
	})
}

func TestMutationSpecial(t *testing.T) {
	cases := []struct {
		name string
		flag obj.BBFlags
	}{
		{"utlb-handler", obj.BBUTLBHandler},
		{"idle-loop-in-user", obj.BBIdleLoop},
		{"counter-stop-while-off", obj.BBCounterStop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, words := buildConform(t)
			ps := classify(t, b, words)
			p := find(ps, func(p pos) bool { return p.record })
			p.ib.Flags |= tc.flag // corrupt the side table in place
			res := runChecker(t, b, words)
			firstRule(t, res, tracecheck.RuleSpecial)
			if res.Diags[0].Offset != p.idx {
				t.Errorf("diag at word %d, want %d", res.Diags[0].Offset, p.idx)
			}
		})
	}
}

// TestDiagnosticsDeterministic re-checks a corrupted stream and
// demands identical findings.
func TestDiagnosticsDeterministic(t *testing.T) {
	b, words := buildConform(t)
	ps := classify(t, b, words)
	p := find(ps, func(p pos) bool { return p.record })
	bad := mutate(words, p.idx, 0x00000bb0)
	r1 := runChecker(t, b, bad)
	r2 := runChecker(t, b, bad)
	if !reflect.DeepEqual(r1.Diags, r2.Diags) {
		t.Fatalf("diagnostics differ between runs:\n%v\n%v", r1.Diags, r2.Diags)
	}
}

// TestMetricsRegister checks the telemetry surface: a clean stream
// registers zero diagnostics and the full record count.
func TestMetricsRegister(t *testing.T) {
	b, words := buildConform(t)
	res := runChecker(t, b, words)
	reg := telemetry.New()
	res.RegisterMetrics(reg, telemetry.L("workload", "conform"))
	var diags, recs float64
	for _, s := range reg.Snapshot().Metrics {
		switch s.Name {
		case "tracecheck_diags_total":
			diags += s.Value
		case "tracecheck_records_total":
			recs += s.Value
		}
	}
	if diags != 0 {
		t.Errorf("tracecheck_diags_total = %v, want 0", diags)
	}
	if recs != float64(res.Records) {
		t.Errorf("tracecheck_records_total = %v, want %d", recs, res.Records)
	}
}
