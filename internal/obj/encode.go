package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"systrace/internal/isa"
)

// On-disk formats. Both object files and executables use a simple
// big-endian format (matching the machine's byte order) with a magic
// word and version byte, so the cmd tools can round-trip them.

var (
	objMagic = [4]byte{'S', 'O', 'B', 'J'}
	exeMagic = [4]byte{'S', 'E', 'X', 'E'}
)

const formatVersion = 1

type writer struct {
	w   io.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		_, w.err = w.w.Write([]byte{v})
	}
}

func (w *writer) u16(v uint16) {
	if w.err == nil {
		var b [2]byte
		binary.BigEndian.PutUint16(b[:], v)
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) u32(v uint32) {
	if w.err == nil {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], v)
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

func (w *writer) str(s string) { w.bytes([]byte(s)) }

func (w *writer) words(ws []isa.Word) {
	w.u32(uint32(len(ws)))
	if w.err != nil {
		return
	}
	buf := make([]byte, 4*len(ws))
	for i, x := range ws {
		binary.BigEndian.PutUint32(buf[i*4:], x)
	}
	_, w.err = w.w.Write(buf)
}

type reader struct {
	r   *bytes.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	r.err = err
	return b
}

func (r *reader) u16() uint16 {
	var b [2]byte
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b[:])
	}
	return binary.BigEndian.Uint16(b[:])
}

func (r *reader) u32() uint32 {
	var b [4]byte
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b[:])
	}
	return binary.BigEndian.Uint32(b[:])
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n) > int64(r.r.Len()) {
		r.err = fmt.Errorf("obj: truncated: %d-byte field with %d bytes left", n, r.r.Len())
		return nil
	}
	b := make([]byte, n)
	_, r.err = io.ReadFull(r.r, b)
	return b
}

func (r *reader) str() string { return string(r.bytes()) }

func (r *reader) words() []isa.Word {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if int64(n)*4 > int64(r.r.Len()) {
		r.err = fmt.Errorf("obj: truncated: %d-word field with %d bytes left", n, r.r.Len())
		return nil
	}
	ws := make([]isa.Word, n)
	buf := make([]byte, 4*n)
	if _, r.err = io.ReadFull(r.r, buf); r.err != nil {
		return nil
	}
	for i := range ws {
		ws[i] = binary.BigEndian.Uint32(buf[i*4:])
	}
	return ws
}

func writeRelocs(w *writer, rs []Reloc) {
	w.u32(uint32(len(rs)))
	for _, r := range rs {
		w.u32(r.Off)
		w.u8(uint8(r.Kind))
		w.u32(uint32(r.Sym))
		w.u32(uint32(r.Addend))
	}
}

func readRelocs(r *reader) []Reloc {
	n := r.u32()
	if r.err != nil || n > 1<<24 {
		return nil
	}
	rs := make([]Reloc, n)
	for i := range rs {
		rs[i].Off = r.u32()
		rs[i].Kind = RelKind(r.u8())
		rs[i].Sym = int(r.u32())
		rs[i].Addend = int32(r.u32())
	}
	return rs
}

func writeSyms(w *writer, ss []Symbol) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s.Name)
		w.u8(uint8(s.Section))
		w.u32(s.Off)
		flags := uint8(0)
		if s.Defined {
			flags |= 1
		}
		if s.Func {
			flags |= 2
		}
		w.u8(flags)
	}
}

func readSyms(r *reader) []Symbol {
	n := r.u32()
	if r.err != nil || n > 1<<24 {
		return nil
	}
	ss := make([]Symbol, n)
	for i := range ss {
		ss[i].Name = r.str()
		ss[i].Section = SectionID(r.u8())
		ss[i].Off = r.u32()
		f := r.u8()
		ss[i].Defined = f&1 != 0
		ss[i].Func = f&2 != 0
	}
	return ss
}

func writeMemOps(w *writer, ms []MemOp) {
	w.u16(uint16(len(ms)))
	for _, m := range ms {
		w.u16(uint16(m.Index))
		if m.Load {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.u8(uint8(m.Size))
	}
}

func readMemOps(r *reader) []MemOp {
	n := r.u16()
	if r.err != nil {
		return nil
	}
	ms := make([]MemOp, n)
	for i := range ms {
		ms[i].Index = int16(r.u16())
		ms[i].Load = r.u8() != 0
		ms[i].Size = int8(r.u8())
	}
	return ms
}

// Encode serializes the object file.
func (f *File) Encode(out io.Writer) error {
	w := &writer{w: out}
	if _, err := out.Write(objMagic[:]); err != nil {
		return err
	}
	w.u8(formatVersion)
	w.str(f.Name)
	w.words(f.Text)
	w.bytes(f.Data)
	w.u32(f.BSSSize)
	writeSyms(w, f.Syms)
	writeRelocs(w, f.Relocs)
	writeRelocs(w, f.DataRelocs)
	w.u32(uint32(len(f.Blocks)))
	for i := range f.Blocks {
		b := &f.Blocks[i]
		w.u32(b.Off)
		w.u32(uint32(b.NInstr))
		w.u16(uint16(b.Flags))
		writeMemOps(w, b.Mem)
	}
	return w.err
}

// ReadFile deserializes an object file.
func ReadFile(data []byte) (*File, error) {
	if len(data) < 5 || !bytes.Equal(data[:4], objMagic[:]) {
		return nil, fmt.Errorf("obj: bad magic")
	}
	if data[4] != formatVersion {
		return nil, fmt.Errorf("obj: version %d, want %d", data[4], formatVersion)
	}
	r := &reader{r: bytes.NewReader(data[5:])}
	f := &File{}
	f.Name = r.str()
	f.Text = r.words()
	f.Data = r.bytes()
	f.BSSSize = r.u32()
	f.Syms = readSyms(r)
	f.Relocs = readRelocs(r)
	f.DataRelocs = readRelocs(r)
	n := r.u32()
	if r.err == nil && n <= 1<<24 {
		f.Blocks = make([]BasicBlock, n)
		for i := range f.Blocks {
			b := &f.Blocks[i]
			b.Off = r.u32()
			b.NInstr = int32(r.u32())
			b.Flags = BBFlags(r.u16())
			b.Mem = readMemOps(r)
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	return f, nil
}

// Encode serializes the executable.
func (e *Executable) Encode(out io.Writer) error {
	w := &writer{w: out}
	if _, err := out.Write(exeMagic[:]); err != nil {
		return err
	}
	w.u8(formatVersion)
	w.str(e.Name)
	w.u32(e.Entry)
	w.u32(e.TextBase)
	w.words(e.Text)
	w.u32(e.DataBase)
	w.bytes(e.Data)
	w.u32(e.BSSBase)
	w.u32(e.BSSSize)
	writeSyms(w, e.Syms)
	if e.Traced {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u32(uint32(len(e.Blocks)))
	for i := range e.Blocks {
		b := &e.Blocks[i]
		w.u32(b.Addr)
		w.u32(uint32(b.NInstr))
		w.u16(uint16(b.Flags))
		writeMemOps(w, b.Mem)
	}
	if e.Instr == nil {
		w.u8(0)
	} else {
		w.u8(1)
		w.str(e.Instr.Tool)
		w.u32(e.Instr.OrigTextSize)
		w.u32(e.Instr.TextSize)
		w.u32(uint32(len(e.Instr.Blocks)))
		for i := range e.Instr.Blocks {
			b := &e.Instr.Blocks[i]
			w.u32(b.RecordAddr)
			w.u32(b.OrigAddr)
			w.u32(uint32(b.NInstr))
			w.u16(uint16(b.Flags))
			writeMemOps(w, b.Mem)
		}
	}
	return w.err
}

// ReadExecutable deserializes an executable image.
func ReadExecutable(data []byte) (*Executable, error) {
	if len(data) < 5 || !bytes.Equal(data[:4], exeMagic[:]) {
		return nil, fmt.Errorf("exe: bad magic")
	}
	if data[4] != formatVersion {
		return nil, fmt.Errorf("exe: version %d, want %d", data[4], formatVersion)
	}
	r := &reader{r: bytes.NewReader(data[5:])}
	e := &Executable{}
	e.Name = r.str()
	e.Entry = r.u32()
	e.TextBase = r.u32()
	e.Text = r.words()
	e.DataBase = r.u32()
	e.Data = r.bytes()
	e.BSSBase = r.u32()
	e.BSSSize = r.u32()
	e.Syms = readSyms(r)
	e.Traced = r.u8() != 0
	n := r.u32()
	if r.err == nil && n <= 1<<24 {
		e.Blocks = make([]ExeBlock, n)
		for i := range e.Blocks {
			b := &e.Blocks[i]
			b.Addr = r.u32()
			b.NInstr = int32(r.u32())
			b.Flags = BBFlags(r.u16())
			b.Mem = readMemOps(r)
		}
	}
	if r.u8() != 0 {
		ii := &InstrInfo{}
		ii.Tool = r.str()
		ii.OrigTextSize = r.u32()
		ii.TextSize = r.u32()
		m := r.u32()
		if r.err == nil && m <= 1<<24 {
			ii.Blocks = make([]InstrBlock, m)
			for i := range ii.Blocks {
				b := &ii.Blocks[i]
				b.RecordAddr = r.u32()
				b.OrigAddr = r.u32()
				b.NInstr = int32(r.u32())
				b.Flags = BBFlags(r.u16())
				b.Mem = readMemOps(r)
			}
		}
		e.Instr = ii
	}
	if r.err != nil {
		return nil, r.err
	}
	return e, nil
}
