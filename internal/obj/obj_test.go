package obj_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"systrace/internal/isa"
	"systrace/internal/obj"
)

func sampleFile() *obj.File {
	f := &obj.File{
		Name: "sample",
		Text: []isa.Word{
			isa.ADDIU(29, 29, 0xffe0),
			isa.SW(31, 29, 28),
			isa.JAL(0),
			isa.NOP,
			isa.LW(31, 29, 28),
			isa.JR(31),
			isa.ADDIU(29, 29, 32),
		},
		Data:    []byte("hello data"),
		BSSSize: 64,
	}
	f.AddSym(obj.Symbol{Name: "fn", Section: obj.SecText, Off: 0, Defined: true, Func: true})
	f.AddSym(obj.Symbol{Name: "callee", Section: obj.SecText})
	f.Relocs = append(f.Relocs, obj.Reloc{Off: 8, Kind: obj.RelJ26, Sym: 1})
	f.Blocks = []obj.BasicBlock{
		{Off: 0, NInstr: 4, Mem: []obj.MemOp{{Index: 1, Load: false, Size: 4}}},
		{Off: 16, NInstr: 3, Mem: []obj.MemOp{{Index: 0, Load: true, Size: 4}}},
	}
	return f
}

func TestFileRoundTrip(t *testing.T) {
	f := sampleFile()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := obj.ReadFile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != f.Name || len(g.Text) != len(f.Text) || string(g.Data) != string(f.Data) ||
		g.BSSSize != f.BSSSize || len(g.Syms) != len(f.Syms) ||
		len(g.Relocs) != len(f.Relocs) || len(g.Blocks) != len(f.Blocks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", g, f)
	}
	for i := range f.Text {
		if g.Text[i] != f.Text[i] {
			t.Fatalf("text[%d] differs", i)
		}
	}
	if g.Blocks[0].Mem[0] != f.Blocks[0].Mem[0] {
		t.Fatal("memop differs")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadTables(t *testing.T) {
	f := sampleFile()
	f.Blocks[1].Off = 20 // gap
	if f.Validate() == nil {
		t.Error("gap in block table accepted")
	}
	f = sampleFile()
	f.Blocks[0].Mem = nil // memop count mismatch
	if f.Validate() == nil {
		t.Error("missing memop accepted")
	}
	f = sampleFile()
	f.Relocs[0].Off = 1000
	if f.Validate() == nil {
		t.Error("out-of-range reloc accepted")
	}
}

func TestCorruptDeserialization(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	// Truncations at every length must error, not panic.
	for n := 0; n < len(whole); n += 3 {
		if _, err := obj.ReadFile(whole[:n]); err == nil && n < len(whole)-1 {
			// Some prefixes may decode if trailing sections are empty;
			// only the magic/short cases are required to fail.
			if n < 5 {
				t.Errorf("truncation at %d accepted", n)
			}
		}
	}
	// Arbitrary bytes must never panic.
	f2 := func(b []byte) bool {
		_, _ = obj.ReadFile(b)
		return true
	}
	if err := quick.Check(f2, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestExecutableRoundTrip(t *testing.T) {
	e := &obj.Executable{
		Name:     "prog",
		Entry:    0x400000,
		TextBase: 0x400000,
		Text:     []isa.Word{isa.NOP, isa.BREAK(0)},
		DataBase: 0x10000000,
		Data:     []byte{1, 2, 3, 4},
		BSSBase:  0x10000008,
		BSSSize:  32,
		Traced:   true,
		Syms:     []obj.Symbol{{Name: "main", Section: obj.SecText, Off: 0x400000, Defined: true, Func: true}},
		Blocks:   []obj.ExeBlock{{Addr: 0x400000, NInstr: 2}},
		Instr: &obj.InstrInfo{
			Tool:         "epoxie",
			OrigTextSize: 8,
			TextSize:     16,
			Blocks: []obj.InstrBlock{
				{RecordAddr: 0x40000c, OrigAddr: 0x400000, NInstr: 2,
					Mem: []obj.MemOp{{Index: 0, Load: true, Size: 4}}},
			},
		},
	}
	var buf bytes.Buffer
	if err := e.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := obj.ReadExecutable(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != e.Name || g.Entry != e.Entry || !g.Traced || g.Instr == nil ||
		g.Instr.Tool != "epoxie" || len(g.Instr.Blocks) != 1 ||
		g.Instr.Blocks[0].RecordAddr != 0x40000c {
		t.Fatalf("round trip mismatch: %+v", g)
	}
	if g.Instr.GrowthFactor() != 2.0 {
		t.Errorf("growth = %v", g.Instr.GrowthFactor())
	}
}

func TestBlockForAndFuncName(t *testing.T) {
	e := &obj.Executable{
		TextBase: 0x400000,
		Text:     make([]isa.Word, 8),
		Syms: []obj.Symbol{
			{Name: "a", Off: 0x400000, Defined: true, Func: true},
			{Name: "b", Off: 0x400010, Defined: true, Func: true},
		},
		Blocks: []obj.ExeBlock{
			{Addr: 0x400000, NInstr: 4},
			{Addr: 0x400010, NInstr: 4},
		},
	}
	if b := e.BlockFor(0x400008); b == nil || b.Addr != 0x400000 {
		t.Error("BlockFor middle address failed")
	}
	if b := e.BlockFor(0x400010); b == nil || b.Addr != 0x400010 {
		t.Error("BlockFor boundary failed")
	}
	if e.BlockFor(0x400020) != nil {
		t.Error("BlockFor past end should be nil")
	}
	if e.FuncName(0x400014) != "b" || e.FuncName(0x400004) != "a" {
		t.Error("FuncName wrong")
	}
}
