package obj

import (
	"fmt"
	"sort"

	"systrace/internal/isa"
)

// Conventional segment bases. User text sits at the bottom of kuseg
// and user data at a fixed, text-size-independent base — which is why
// epoxie's text expansion "does not affect the trace addresses
// generated" for data (paper §3.2): only text addresses move, and
// those are mapped back through the translation table.
const (
	UserTextBase   = 0x00400000
	UserDataBase   = 0x10000000
	UserStackTop   = 0x7ffff000
	KernelTextBase = 0x80030000 // kseg0, after the exception vectors
)

// ExeBlock is a basic block at its final linked address.
type ExeBlock struct {
	Addr   uint32
	NInstr int32
	Flags  BBFlags
	Mem    []MemOp
}

// InstrBlock is one entry of the instrumented binary's side table: it
// keys the basic-block record address that bbtrace writes into the
// trace (the return address of `jal bbtrace`) to the block's address
// in the original, uninstrumented layout. The trace parsing library
// "will use static information about the binary image to map this
// address to the correct basic block address in the original binary"
// (paper §3.2).
type InstrBlock struct {
	RecordAddr uint32 // jal-return address inside instrumented text
	OrigAddr   uint32 // block address in the uninstrumented binary
	NInstr     int32
	Flags      BBFlags
	Mem        []MemOp
}

// FlowStats records what the rewriter's dataflow analysis did: how
// much it saw, and how many save/restore sites it proved elidable.
type FlowStats struct {
	Blocks      int // CFG blocks the liveness fixpoint covered
	Funcs       int // functions in the interprocedural summary
	Passes      int // worklist pops until fixpoint
	SaveSites   int // sites where a save/restore pair was considered
	SavesElided int // sites proven dead and elided
	Fallbacks   int // sites where analysis could not prove death
	BytesSaved  int // instrumented-text bytes avoided by elision

	// AddrTaken lists instrumented function entry addresses whose
	// address escaped through a relocation (the rewriter's view); the
	// verifier feeds these into its own analysis so both sides agree
	// on which functions have invisible callers.
	AddrTaken []uint32

	// EscapedText lists instrumented text addresses (beyond function
	// entries) that escape through non-jump relocations — interior
	// jump-table targets. The verifier poisons these blocks in its own
	// value analysis; a data-section scan alone misses addresses
	// materialized through lui/ori immediate pairs.
	EscapedText []uint32

	// EA strength reduction (the forward value analysis's rewriter
	// consumer): how many traced memory groups were considered, how
	// many had their addressing operand rebased onto a provably equal
	// anchor, and how many were routed to the specialized sp runtime
	// entry.
	EASites   int
	EARebased int
	EASpecial int
	// EARebases holds one record per rebased operand so the verifier's
	// redundant-ea rule can re-prove each equality with its own
	// exe-side analysis.
	EARebases []EARebase
}

// EARebase records one effective-address strength reduction: the slot
// word at Addr encodes NewBase+NewImm where the original program
// computed OrigBase+OrigImm; the rewriter's value analysis proved the
// two equal at that point. Within a Rewritten object Addr is a text
// offset; BuildInstrumented translates it to an instrumented address.
type EARebase struct {
	Addr     uint32
	OrigBase uint8
	NewBase  uint8
	OrigImm  uint16
	NewImm   uint16
}

// InstrInfo is the static side table produced by instrumentation.
type InstrInfo struct {
	Tool         string // "epoxie", "epoxie-orig", "pixie", "mahler"
	Blocks       []InstrBlock
	OrigTextSize uint32 // bytes of uninstrumented text
	TextSize     uint32 // bytes of instrumented text
	Flow         FlowStats
}

// GrowthFactor returns instrumented/original text size.
func (ii *InstrInfo) GrowthFactor() float64 {
	if ii.OrigTextSize == 0 {
		return 0
	}
	return float64(ii.TextSize) / float64(ii.OrigTextSize)
}

// Executable is a fully linked image ready to load.
type Executable struct {
	Name     string
	Entry    uint32
	TextBase uint32
	Text     []isa.Word
	DataBase uint32
	Data     []byte
	BSSBase  uint32
	BSSSize  uint32
	Syms     []Symbol // Off is the absolute address here
	Blocks   []ExeBlock
	// Traced is the Ultrix-style flag in the executable image that
	// tells the kernel to set up per-process trace pages at exec time
	// (paper §3.6).
	Traced bool
	Instr  *InstrInfo // non-nil when the image is instrumented
}

// Symbol returns the absolute address of the named symbol.
func (e *Executable) Symbol(name string) (uint32, bool) {
	for i := range e.Syms {
		if e.Syms[i].Name == name {
			return e.Syms[i].Off, true
		}
	}
	return 0, false
}

// MustSymbol is Symbol for symbols that must exist (toolchain bug
// otherwise).
func (e *Executable) MustSymbol(name string) uint32 {
	a, ok := e.Symbol(name)
	if !ok {
		panic(fmt.Sprintf("executable %s: no symbol %q", e.Name, name))
	}
	return a
}

// TextEnd returns the first address past the text segment.
func (e *Executable) TextEnd() uint32 { return e.TextBase + uint32(len(e.Text))*4 }

// DataEnd returns the first address past initialized data.
func (e *Executable) DataEnd() uint32 { return e.DataBase + uint32(len(e.Data)) }

// BSSEnd returns the first address past the BSS (initial program
// break).
func (e *Executable) BSSEnd() uint32 { return e.BSSBase + e.BSSSize }

// BlockFor returns the basic block containing addr, or nil.
func (e *Executable) BlockFor(addr uint32) *ExeBlock {
	i := sort.Search(len(e.Blocks), func(i int) bool { return e.Blocks[i].Addr > addr })
	if i == 0 {
		return nil
	}
	b := &e.Blocks[i-1]
	if addr < b.Addr+uint32(b.NInstr)*4 {
		return b
	}
	return nil
}

// FuncName returns the name of the function containing addr ("" if
// unknown). Used by diagnostics and the reference-counting tools.
func (e *Executable) FuncName(addr uint32) string {
	best, bestAddr := "", uint32(0)
	for i := range e.Syms {
		s := &e.Syms[i]
		if s.Func && s.Off <= addr && s.Off >= bestAddr {
			best, bestAddr = s.Name, s.Off
		}
	}
	return best
}
