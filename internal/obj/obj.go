// Package obj defines the object-file and executable model used by the
// tracing toolchain. Like the MIPS object code the paper's epoxie
// consumed, our object files carry symbol and relocation tables —
// which is what allows a link-time rewriter to "distinguish
// unambiguously between uses of addresses and uses of coincidentally
// similar constants" and to do all address correction statically
// (paper §3.2). Following Mahler, object modules also carry a
// basic-block table ("basic blocks and their sizes are identifiable at
// link time", paper §3.4) recording each block's length and the
// position of its loads and stores.
package obj

import (
	"fmt"
	"sort"

	"systrace/internal/isa"
)

// Relocation kinds.
type RelKind uint8

const (
	// RelJ26 patches the 26-bit target field of a J/JAL.
	RelJ26 RelKind = iota
	// RelHI16 patches the high half of an address constant (lui).
	RelHI16
	// RelLO16 patches the low half of an address constant.
	RelLO16
	// RelWord patches a full 32-bit word (address in data, or a
	// jump-table entry).
	RelWord
)

func (k RelKind) String() string {
	switch k {
	case RelJ26:
		return "J26"
	case RelHI16:
		return "HI16"
	case RelLO16:
		return "LO16"
	case RelWord:
		return "WORD"
	}
	return fmt.Sprintf("RelKind(%d)", int(k))
}

// Reloc is one relocation record: the word at Off within its section
// must be patched with the address of symbol Sym plus Addend.
type Reloc struct {
	Off    uint32
	Kind   RelKind
	Sym    int // index into the object's symbol table
	Addend int32
}

// Section identifiers within an object file.
type SectionID uint8

const (
	SecText SectionID = iota
	SecData
	SecBSS
)

func (s SectionID) String() string {
	switch s {
	case SecText:
		return ".text"
	case SecData:
		return ".data"
	case SecBSS:
		return ".bss"
	}
	return fmt.Sprintf("Section(%d)", int(s))
}

// Symbol is a named location. Undefined symbols (references to other
// objects) have Defined=false and are resolved by the linker.
type Symbol struct {
	Name    string
	Section SectionID
	Off     uint32
	Defined bool
	Func    bool // marks function entry points
}

// Basic-block flags. These drive the special behaviors the trace
// parsing library implements for specific basic blocks (paper §3.5):
// hand-traced routines, instruction counters, and the idle loop.
type BBFlags uint16

const (
	// BBNoInstrument marks code that epoxie must not rewrite: parts
	// of the tracing system itself, or routines "too delicate to be
	// rewritten mechanically" (paper §3.3).
	BBNoInstrument BBFlags = 1 << iota
	// BBHandTraced marks blocks whose trace records are emitted by
	// hand-inserted code rather than epoxie instrumentation.
	BBHandTraced
	// BBIdleLoop marks the kernel idle loop; the parser counts its
	// instructions to estimate I/O delays (paper §4.1).
	BBIdleLoop
	// BBCounterStart and BBCounterStop toggle per-block instruction
	// counting in the analysis program (paper §3.5).
	BBCounterStart
	BBCounterStop
	// BBLeanPrologue marks blocks instrumented with the two-word
	// prologue (no `sw ra` before `jal bbtrace`): dataflow analysis
	// proved ra dead on entry, so the stale ra restore inside bbtrace
	// is harmless. The verifier checks lean blocks against its own,
	// independently derived liveness.
	BBLeanPrologue
	// BBUTLBHandler marks the user-TLB miss handler. The handler is
	// deliberately not traced: the simulator synthesizes its activity
	// from simulated TLB misses instead (paper §4.1).
	BBUTLBHandler
)

// MemOp records one memory instruction inside a basic block: its
// instruction index within the block, whether it is a load, and the
// access width. The trace parsing library uses this static information
// "to determine the correct interleaving of instruction and data
// memory references" (paper §3.5).
type MemOp struct {
	Index int16
	Load  bool
	Size  int8
}

// BasicBlock describes one block of straight-line code in a text
// section.
type BasicBlock struct {
	Off    uint32 // byte offset of first instruction within .text
	NInstr int32
	Flags  BBFlags
	Mem    []MemOp
}

// TraceWords returns the number of words of trace this block emits
// when instrumented: one for the block record plus one per memory
// reference. This is the value epoxie plants in the LINop delay slot.
func (b *BasicBlock) TraceWords() int { return 1 + len(b.Mem) }

// File is a relocatable object module.
type File struct {
	Name    string
	Text    []isa.Word
	Data    []byte
	BSSSize uint32
	Syms    []Symbol
	Relocs  []Reloc // sorted by (section implied: text relocs reference text offsets)
	// TextRelocs and DataRelocs are kept separately: a relocation's
	// Off is within its own section.
	DataRelocs []Reloc
	Blocks     []BasicBlock
}

// SymIndex returns the index of the symbol named name, or -1.
func (f *File) SymIndex(name string) int {
	for i := range f.Syms {
		if f.Syms[i].Name == name {
			return i
		}
	}
	return -1
}

// AddSym appends a symbol and returns its index. If an undefined
// symbol of the same name exists it is returned (and upgraded if the
// new one is defined).
func (f *File) AddSym(s Symbol) int {
	if i := f.SymIndex(s.Name); i >= 0 {
		if s.Defined && !f.Syms[i].Defined {
			f.Syms[i] = s
		}
		return i
	}
	f.Syms = append(f.Syms, s)
	return len(f.Syms) - 1
}

// SortBlocks orders the basic-block table by offset; the linker and
// epoxie require this.
func (f *File) SortBlocks() {
	sort.Slice(f.Blocks, func(i, j int) bool { return f.Blocks[i].Off < f.Blocks[j].Off })
}

// BlockAt returns the basic block starting at text offset off, or nil.
func (f *File) BlockAt(off uint32) *BasicBlock {
	i := sort.Search(len(f.Blocks), func(i int) bool { return f.Blocks[i].Off >= off })
	if i < len(f.Blocks) && f.Blocks[i].Off == off {
		return &f.Blocks[i]
	}
	return nil
}

// Validate performs structural checks: block table sorted, contiguous
// coverage of text, mem-op indices consistent with the instructions.
func (f *File) Validate() error {
	var next uint32
	for bi := range f.Blocks {
		b := &f.Blocks[bi]
		if b.Off != next {
			return fmt.Errorf("obj %s: block %d at 0x%x, expected 0x%x (gap or overlap)",
				f.Name, bi, b.Off, next)
		}
		if b.NInstr <= 0 {
			return fmt.Errorf("obj %s: block %d empty", f.Name, bi)
		}
		end := b.Off + uint32(b.NInstr)*4
		if end > uint32(len(f.Text))*4 {
			return fmt.Errorf("obj %s: block %d extends past text end", f.Name, bi)
		}
		var want []MemOp
		for k := int32(0); k < b.NInstr; k++ {
			w := f.Text[b.Off/4+uint32(k)]
			if isa.IsMem(w) {
				want = append(want, MemOp{Index: int16(k), Load: isa.IsLoad(w), Size: int8(isa.MemSize(w))})
			}
		}
		if len(want) != len(b.Mem) {
			return fmt.Errorf("obj %s: block %d at 0x%x: %d mem ops recorded, %d in code",
				f.Name, bi, b.Off, len(b.Mem), len(want))
		}
		for k := range want {
			if want[k] != b.Mem[k] {
				return fmt.Errorf("obj %s: block %d memop %d mismatch: table %+v code %+v",
					f.Name, bi, k, b.Mem[k], want[k])
			}
		}
		next = end
	}
	if next != uint32(len(f.Text))*4 {
		return fmt.Errorf("obj %s: block table covers 0x%x of 0x%x text bytes",
			f.Name, next, len(f.Text)*4)
	}
	for _, r := range f.Relocs {
		if r.Off/4 >= uint32(len(f.Text)) {
			return fmt.Errorf("obj %s: text reloc at 0x%x out of range", f.Name, r.Off)
		}
		if r.Sym < 0 || r.Sym >= len(f.Syms) {
			return fmt.Errorf("obj %s: reloc sym index %d out of range", f.Name, r.Sym)
		}
	}
	for _, r := range f.DataRelocs {
		if r.Off+4 > uint32(len(f.Data)) {
			return fmt.Errorf("obj %s: data reloc at 0x%x out of range", f.Name, r.Off)
		}
		if r.Sym < 0 || r.Sym >= len(f.Syms) {
			return fmt.Errorf("obj %s: data reloc sym index %d out of range", f.Name, r.Sym)
		}
	}
	return nil
}
