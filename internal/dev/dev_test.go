package dev_test

import (
	"testing"

	"systrace/internal/dev"
)

type fakeIRQ struct{ lines [8]bool }

func (f *fakeIRQ) SetIRQ(line int, on bool) { f.lines[line] = on }

type fakeRAM struct{ b []byte }

func (f *fakeRAM) Bytes() []byte { return f.b }

func TestClockPeriodAndAck(t *testing.T) {
	irq := &fakeIRQ{}
	c := dev.NewClock(irq)
	c.SetInterval(0, 100)
	c.Advance(50)
	if irq.lines[dev.IRQClock] {
		t.Error("fired early")
	}
	c.Advance(100)
	if !irq.lines[dev.IRQClock] {
		t.Error("did not fire at deadline")
	}
	c.Write(100, dev.ClockAck, 1)
	if irq.lines[dev.IRQClock] {
		t.Error("ack did not clear")
	}
	c.Advance(200)
	if !irq.lines[dev.IRQClock] || c.Raised != 2 {
		t.Errorf("periodic refire failed (raised=%d)", c.Raised)
	}
	// Interval 0 stops the clock.
	c.Write(200, dev.ClockAck, 1)
	c.Write(200, dev.ClockInterval, 0)
	c.Advance(10_000)
	if irq.lines[dev.IRQClock] {
		t.Error("stopped clock fired")
	}
}

func TestDiskTransferAndOrdering(t *testing.T) {
	irq := &fakeIRQ{}
	ram := &fakeRAM{b: make([]byte, 1<<16)}
	img := make([]byte, 1<<16)
	for i := range img {
		img[i] = byte(i * 7)
	}
	d := dev.NewDisk(irq, ram, img, dev.DiskParams{SeekCycles: 100, PerSectorCycle: 10})
	now := uint64(0)
	d.Write(now, dev.DiskSector, 2)
	d.Write(now, dev.DiskAddr, 0x1000)
	d.Write(now, dev.DiskNSect, 4)
	d.Write(now, dev.DiskCmd, 1)
	if !d.Busy() {
		t.Fatal("not busy after command")
	}
	// First op: seek (100) + 4 sectors (40).
	d.Advance(139)
	if !d.Busy() {
		t.Fatal("completed early")
	}
	d.Advance(140)
	if d.Busy() || !irq.lines[dev.IRQDisk] {
		t.Fatal("did not complete at deadline")
	}
	for i := 0; i < 4*dev.SectorSize; i++ {
		if ram.b[0x1000+i] != img[2*dev.SectorSize+i] {
			t.Fatalf("dma byte %d wrong", i)
		}
	}
	d.Write(140, dev.DiskAck, 1)

	// Sequential follow-up has no seek; a distant one does.
	d.Write(140, dev.DiskSector, 6) // sequential after sectors 2..5
	d.Write(140, dev.DiskAddr, 0x3000)
	d.Write(140, dev.DiskNSect, 2)
	d.Write(140, dev.DiskCmd, 1)
	if next := d.NextEvent(); next != 160 {
		t.Errorf("sequential op completes at %d, want 160 (no seek)", next)
	}
}

func TestDiskWriteBack(t *testing.T) {
	irq := &fakeIRQ{}
	ram := &fakeRAM{b: make([]byte, 4096)}
	for i := range ram.b {
		ram.b[i] = 0xAB
	}
	img := make([]byte, 8192)
	d := dev.NewDisk(irq, ram, img, dev.DiskParams{SeekCycles: 1, PerSectorCycle: 1})
	d.Write(0, dev.DiskSector, 0)
	d.Write(0, dev.DiskAddr, 0)
	d.Write(0, dev.DiskNSect, 1)
	d.Write(0, dev.DiskCmd, 2) // write
	d.Advance(1000)
	if img[0] != 0xAB || img[dev.SectorSize-1] != 0xAB {
		t.Error("write DMA did not reach the image")
	}
	if d.Writes != 1 {
		t.Errorf("writes=%d", d.Writes)
	}
}

func TestDiskQueueFIFO(t *testing.T) {
	irq := &fakeIRQ{}
	ram := &fakeRAM{b: make([]byte, 1<<14)}
	img := make([]byte, 1<<14)
	img[0], img[512] = 1, 2
	d := dev.NewDisk(irq, ram, img, dev.DiskParams{SeekCycles: 10, PerSectorCycle: 10})
	for i := uint32(0); i < 2; i++ {
		d.Write(0, dev.DiskSector, i)
		d.Write(0, dev.DiskAddr, 0x100*i+0x1000)
		d.Write(0, dev.DiskNSect, 1)
		d.Write(0, dev.DiskCmd, 1)
	}
	d.Advance(100000)
	if d.Reads != 2 {
		t.Fatalf("reads=%d", d.Reads)
	}
	if ram.b[0x1000] != 1 || ram.b[0x1100] != 2 {
		t.Error("FIFO order broken")
	}
}

func TestConsole(t *testing.T) {
	c := &dev.Console{}
	for _, b := range []byte("ok\n") {
		c.Write(dev.ConsolePutc, uint32(b))
	}
	if c.String() != "ok\n" {
		t.Errorf("console %q", c.String())
	}
	c.In = []byte("x")
	if c.Read(dev.ConsoleGetc) != 'x' || c.Read(dev.ConsoleGetc) != 0xffffffff {
		t.Error("getc wrong")
	}
}

func TestTraceCtlDoorbell(t *testing.T) {
	var got uint32
	tc := &dev.TraceCtl{Handler: func(reason uint32) uint64 {
		got = reason
		return 4242
	}}
	extra := tc.Write(dev.TraceDoorbell, dev.DoorbellBufferFull)
	if got != dev.DoorbellBufferFull || extra != 4242 {
		t.Errorf("doorbell got=%d extra=%d", got, extra)
	}
	if tc.Read(dev.TraceExtra) != 4242 {
		t.Error("extra not latched")
	}
}
