// Package dev implements the memory-mapped devices of the simulated
// machine: the programmable interval clock (whose rate the traced
// systems retune to 1/15th to compensate for time dilation, paper
// §4.1), a DMA disk with seek/transfer latency (whose read-ahead
// interactions with tracing the paper analyzes in §5.1), a console,
// and the trace-control doorbell through which the kernel hands the
// in-kernel buffer to the analysis program.
//
// Device time is the machine cycle counter; the machine calls Advance
// as cycles accumulate and devices raise CPU interrupt lines.
package dev

import "math"

// IRQ lines.
const (
	IRQClock = 0
	IRQDisk  = 1
)

// Physical device window. The kernel reaches it through kseg1
// (uncached) at va = 0xa0000000 + DevBase.
const (
	DevBase = 0x1f000000
	DevSize = 0x10000

	ClockBase    = 0x0000
	ConsoleBase  = 0x0100
	DiskBase     = 0x0200
	TraceCtlBase = 0x0300
)

// Clock register offsets (from ClockBase).
const (
	ClockAck      = 0x0 // write: acknowledge interrupt
	ClockInterval = 0x4 // write: set interval in cycles (0 = off)
	ClockCount    = 0x8 // read: interrupts raised so far
)

// Console register offsets.
const (
	ConsolePutc = 0x0 // write: emit byte
	ConsoleGetc = 0x4 // read: next input byte or 0xffffffff
)

// Disk register offsets.
const (
	DiskSector = 0x00 // write: starting sector
	DiskAddr   = 0x04 // write: physical DMA address
	DiskNSect  = 0x08 // write: sector count
	DiskCmd    = 0x0c // write: 1=read, 2=write; queues the operation
	DiskStatus = 0x10 // read: bit0 busy, bit1 interrupt pending
	DiskAck    = 0x14 // write: acknowledge completion interrupt
	// DiskDone counts completed operations. Interrupts coalesce when
	// several operations finish before the handler acknowledges; the
	// kernel drains its queue mirror against this counter instead of
	// assuming one completion per interrupt.
	DiskDone = 0x18
)

// TraceCtl register offsets.
const (
	TraceDoorbell = 0x0 // write: invoke the analysis program (value = reason)
	TraceExtra    = 0x4 // read: cycles consumed by the last analysis phase (high word dropped)
)

// Doorbell reason codes.
const (
	DoorbellBufferFull = 1 // in-kernel buffer full: run trace analysis
	DoorbellFlush      = 2 // final drain at end of experiment
)

// Raiser is the interrupt input of the CPU.
type Raiser interface {
	SetIRQ(line int, on bool)
}

// DMA is the disk's path to physical memory.
type DMA interface {
	Bytes() []byte
}

// WriteNotifier is optionally implemented by a DMA provider that needs
// to observe device writes into physical memory. Disk reads mutate RAM
// through the raw Bytes() slice — bypassing both the CPU's write port
// and the RAM API — so the machine implements this to invalidate the
// CPU's predecoded text frames under the transfer.
type WriteNotifier interface {
	DMAWrote(p, n uint32)
}

const never = math.MaxUint64

// Clock is the programmable interval timer.
type Clock struct {
	irq      Raiser
	interval uint64
	next     uint64
	pending  bool
	Raised   uint64 // statistics: interrupts raised
}

// NewClock returns a stopped clock.
func NewClock(irq Raiser) *Clock { return &Clock{irq: irq, next: never} }

// SetInterval programs the period; 0 stops the clock.
func (c *Clock) SetInterval(now, cycles uint64) {
	c.interval = cycles
	if cycles == 0 {
		c.next = never
	} else {
		c.next = now + cycles
	}
}

// Interval returns the current period.
func (c *Clock) Interval() uint64 { return c.interval }

// NextEvent returns the cycle of the next pending event.
func (c *Clock) NextEvent() uint64 { return c.next }

// Advance fires the clock if due.
func (c *Clock) Advance(now uint64) {
	if now < c.next {
		return
	}
	c.pending = true
	c.Raised++
	c.irq.SetIRQ(IRQClock, true)
	if c.interval == 0 {
		c.next = never
	} else {
		// Keep phase: schedule from the deadline, not from now, so a
		// long analysis phase yields a burst no larger than one tick
		// (ticks don't accumulate while acknowledged late).
		c.next = now + c.interval
	}
}

// Write handles a register store.
func (c *Clock) Write(now uint64, off uint32, v uint32) {
	switch off {
	case ClockAck:
		c.pending = false
		c.irq.SetIRQ(IRQClock, false)
	case ClockInterval:
		c.SetInterval(now, uint64(v))
	}
}

// Read handles a register load.
func (c *Clock) Read(off uint32) uint32 {
	if off == ClockCount {
		return uint32(c.Raised)
	}
	return 0
}

// Console is the character device.
type Console struct {
	Out []byte
	In  []byte
}

// Write handles a register store.
func (c *Console) Write(off uint32, v uint32) {
	if off == ConsolePutc {
		c.Out = append(c.Out, byte(v))
	}
}

// Read handles a register load.
func (c *Console) Read(off uint32) uint32 {
	if off == ConsoleGetc {
		if len(c.In) == 0 {
			return 0xffffffff
		}
		b := c.In[0]
		c.In = c.In[1:]
		return uint32(b)
	}
	return 0
}

// String returns the console output so far.
func (c *Console) String() string { return string(c.Out) }

const (
	// SectorSize is the disk sector size in bytes.
	SectorSize = 512
	diskQueue  = 16
)

// DiskParams model latency. The numbers are scaled for the scaled-down
// workloads (see DESIGN.md): what matters for the validation is that
// disk latency is *constant in cycles* regardless of instrumentation,
// which is what produces the paper's time-dilation effects — a traced
// run executes ~15x the instructions per disk operation, so operations
// that induce idle time in the untraced system complete "for free"
// under tracing (the compress read-ahead effect, §5.1).
type DiskParams struct {
	SeekCycles     uint64 // charged when the head moves
	PerSectorCycle uint64 // transfer time per sector
}

// DefaultDiskParams approximates a fast 1990 SCSI disk against a
// 25 MHz CPU, scaled by the same ~100x factor as the workloads.
var DefaultDiskParams = DiskParams{SeekCycles: 12000, PerSectorCycle: 400}

type diskOp struct {
	sector uint32
	addr   uint32
	nsect  uint32
	write  bool
	done   uint64 // completion cycle (0 while queued)
}

// Disk is the DMA disk controller. Operations queue behind one another
// and complete in order; each completion raises IRQDisk until
// acknowledged.
type Disk struct {
	irq    Raiser
	ram    DMA
	Image  []byte
	params DiskParams

	sector, addr, nsect uint32
	queue               []diskOp
	pending             bool
	lastEnd             uint32 // sector after the last op, for seek model
	next                uint64

	Reads, Writes   uint64 // statistics: operations completed
	Done            uint64 // total completions (read by the kernel)
	SectorsMoved    uint64
	SeeksPerformed  uint64
	BytesTransfered uint64
}

// NewDisk returns a disk over the given image.
func NewDisk(irq Raiser, ram DMA, image []byte, p DiskParams) *Disk {
	return &Disk{irq: irq, ram: ram, Image: image, params: p, next: never}
}

// Busy reports whether operations are in flight.
func (d *Disk) Busy() bool { return len(d.queue) > 0 }

// NextEvent returns the cycle of the next completion.
func (d *Disk) NextEvent() uint64 { return d.next }

func (d *Disk) schedule(now uint64) {
	if len(d.queue) == 0 {
		d.next = never
		return
	}
	op := &d.queue[0]
	if op.done == 0 {
		lat := d.params.PerSectorCycle * uint64(op.nsect)
		if op.sector != d.lastEnd {
			lat += d.params.SeekCycles
			d.SeeksPerformed++
		}
		op.done = now + lat
	}
	d.next = op.done
}

// Advance completes due operations.
func (d *Disk) Advance(now uint64) {
	for len(d.queue) > 0 && d.queue[0].done != 0 && d.queue[0].done <= now {
		op := d.queue[0]
		d.queue = d.queue[1:]
		d.complete(op)
		d.schedule(op.done)
	}
	if len(d.queue) > 0 {
		d.schedule(now)
	}
}

func (d *Disk) complete(op diskOp) {
	n := int(op.nsect) * SectorSize
	imgOff := int(op.sector) * SectorSize
	ram := d.ram.Bytes()
	if imgOff+n <= len(d.Image) && int(op.addr)+n <= len(ram) {
		if op.write {
			copy(d.Image[imgOff:imgOff+n], ram[op.addr:])
			d.Writes++
		} else {
			copy(ram[op.addr:int(op.addr)+n], d.Image[imgOff:])
			if wn, ok := d.ram.(WriteNotifier); ok {
				wn.DMAWrote(op.addr, uint32(n))
			}
			d.Reads++
		}
		d.BytesTransfered += uint64(n)
	}
	d.lastEnd = op.sector + op.nsect
	d.SectorsMoved += uint64(op.nsect)
	d.Done++
	d.pending = true
	d.irq.SetIRQ(IRQDisk, true)
}

// Write handles a register store.
func (d *Disk) Write(now uint64, off uint32, v uint32) {
	switch off {
	case DiskSector:
		d.sector = v
	case DiskAddr:
		d.addr = v
	case DiskNSect:
		d.nsect = v
	case DiskCmd:
		if len(d.queue) < diskQueue {
			d.queue = append(d.queue, diskOp{
				sector: d.sector, addr: d.addr, nsect: d.nsect, write: v == 2,
			})
			d.schedule(now)
		}
	case DiskAck:
		d.pending = false
		d.irq.SetIRQ(IRQDisk, false)
	}
}

// Read handles a register load.
func (d *Disk) Read(off uint32) uint32 {
	switch off {
	case DiskStatus:
		var s uint32
		if len(d.queue) > 0 {
			s |= 1
		}
		if d.pending {
			s |= 2
		}
		return s
	case DiskDone:
		return uint32(d.Done)
	}
	return 0
}

// AnalysisFunc is the host-side analysis program: invoked when the
// kernel rings the trace doorbell. It drains the in-kernel buffer
// (reading guest memory directly, like the paper's memory special file
// or mapped buffer) and returns the number of machine cycles the
// analysis phase takes — during which devices keep running, producing
// the mode-transition "dirt" of §4.3.
type AnalysisFunc func(reason uint32) (extraCycles uint64)

// TraceCtl is the doorbell device.
type TraceCtl struct {
	Handler   AnalysisFunc
	ExtraOut  uint64 // cycles consumed by the last analysis
	Doorbells uint64
}

// Write handles a register store; a doorbell write runs the handler
// synchronously (traced processes are descheduled by the kernel before
// ringing).
func (t *TraceCtl) Write(off uint32, v uint32) uint64 {
	if off == TraceDoorbell {
		t.Doorbells++
		if t.Handler != nil {
			t.ExtraOut = t.Handler(v)
			return t.ExtraOut
		}
	}
	return 0
}

// Read handles a register load.
func (t *TraceCtl) Read(off uint32) uint32 {
	if off == TraceExtra {
		return uint32(t.ExtraOut)
	}
	return 0
}
