package kernel

import (
	m "systrace/internal/mahler"
)

// The file system and buffer cache of the monolithic kernel: a flat
// directory on the ramdisk, a direct-mapped block cache, asynchronous
// reads with read-ahead, and the conservative write-through policy the
// paper observed to induce "greatly increased I/O delays" in Ultrix
// (§4.4). The Mach UX server implements the same structure in user
// space (ux.go).
func buildFS(k *m.Module, cfg Config) {
	// dqPush/dqPop mirror the disk controller's command queue so the
	// interrupt handler knows what completed: (chan, kind, aux).
	f := k.Func("dqPush", m.TVoid)
	f.Param("ch", m.TInt)
	f.Param("kind", m.TInt)
	f.Param("aux", m.TInt)
	f.Locals("t")
	f.Code(func(b *m.Block) {
		b.Assign("t", m.LoadW(m.Addr("dq_tail", 0)))
		b.StoreW(m.Add(m.Addr("dq_chan", 0), m.Mul(m.ModU(m.V("t"), m.I(16)), m.I(4))), m.V("ch"))
		b.StoreW(m.Add(m.Addr("dq_kind", 0), m.Mul(m.ModU(m.V("t"), m.I(16)), m.I(4))), m.V("kind"))
		b.StoreW(m.Add(m.Addr("dq_aux", 0), m.Mul(m.ModU(m.V("t"), m.I(16)), m.I(4))), m.V("aux"))
		b.StoreW(m.Addr("dq_tail", 0), m.Add(m.V("t"), m.I(1)))
	})

	// diskIssue: program the controller. addr is a physical address.
	f = k.Func("diskIssue", m.TVoid)
	f.Param("sector", m.TInt)
	f.Param("phys", m.TInt)
	f.Param("nsect", m.TInt)
	f.Param("write", m.TInt)
	f.Code(func(b *m.Block) {
		b.StoreW(m.U(diskSector), m.V("sector"))
		b.StoreW(m.U(diskAddr), m.V("phys"))
		b.StoreW(m.U(diskNSect), m.V("nsect"))
		b.If(m.Ne(m.V("write"), m.I(0)), func(b *m.Block) {
			b.StoreW(m.U(diskCmd), m.I(2))
		}, func(b *m.Block) {
			b.StoreW(m.U(diskCmd), m.I(1))
		})
	})

	// diskIntr: drain every completed operation. Interrupts coalesce
	// (a second completion while the first is unacknowledged raises
	// no extra edge), so the handler compares its queue mirror
	// against the controller's done counter instead of assuming one
	// completion per interrupt.
	f = k.Func("diskIntr", m.TVoid)
	f.Locals("h", "ch", "kind", "aux", "done")
	f.Code(func(b *m.Block) {
		b.StoreW(m.U(diskAck), m.I(1))
		b.Assign("done", m.LoadW(m.U(diskDone)))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("h", m.LoadW(m.Addr("dq_head", 0)))
			b.If(m.Eq(m.V("h"), m.LoadW(m.Addr("dq_tail", 0))), func(b *m.Block) {
				b.Break() // mirror empty
			}, nil)
			b.If(m.GeU(m.V("h"), m.V("done")), func(b *m.Block) {
				b.Break() // remaining operations still in flight
			}, nil)
			b.Assign("ch", m.LoadW(m.Add(m.Addr("dq_chan", 0), m.Mul(m.ModU(m.V("h"), m.I(16)), m.I(4)))))
			b.Assign("kind", m.LoadW(m.Add(m.Addr("dq_kind", 0), m.Mul(m.ModU(m.V("h"), m.I(16)), m.I(4)))))
			b.Assign("aux", m.LoadW(m.Add(m.Addr("dq_aux", 0), m.Mul(m.ModU(m.V("h"), m.I(16)), m.I(4)))))
			b.StoreW(m.Addr("dq_head", 0), m.Add(m.V("h"), m.I(1)))
			b.If(m.Eq(m.V("kind"), m.I(0)), func(b *m.Block) {
				// Buffer-cache read: aux is the buffer index.
				b.StoreW(m.Add(m.Addr("bufstate", 0), m.Mul(m.V("aux"), m.I(4))), m.I(1))
				b.Call("wakeup", m.V("ch"))
			}, func(b *m.Block) {
				// Raw transfer / synchronous write for a process.
				b.Call("diskDone", m.V("aux"))
			})
		})
	})

	// diskDone: complete a per-process raw/synchronous operation.
	f = k.Func("diskDone", m.TVoid)
	f.Param("pid", m.TInt)
	f.Locals("p")
	f.Code(func(b *m.Block) {
		b.Assign("p", procAddr(m.V("pid")))
		b.StoreW(m.Add(m.V("p"), m.I(PDiskPend)), m.I(2))
		b.Call("wakePid", m.V("pid"))
	})

	// bootReadDir: polled read of the directory at boot (interrupts
	// are not running yet). Reads 8 sectors into dircache.
	f = k.Func("bootReadDir", m.TVoid)
	f.Locals("hdr")
	f.Code(func(b *m.Block) {
		// Sector 0..8 -> dircache area via its physical address.
		b.Call("diskIssue", m.I(0), m.Call("kv2p", m.Addr("dircache", 0)), m.I(8), m.I(0))
		b.While(m.Ne(m.And(m.LoadW(m.U(diskStatus)), m.I(1)), m.I(0)), func(b *m.Block) {
		})
		b.StoreW(m.U(diskAck), m.I(1))
		b.Assign("hdr", m.LoadW(m.Addr("dircache", 0)))
		b.If(m.Ne(m.V("hdr"), m.U(FSMagic)), func(b *m.Block) {
			b.StoreW(m.U(haltReg), m.I(0x7003)) // panic: bad fs magic
		}, nil)
		b.StoreW(m.Addr("nfiles", 0), m.LoadW(m.Addr("dircache", 4)))
	})

	// kv2p: kseg0 virtual to physical.
	f = k.Func("kv2p", m.TInt)
	f.Param("va", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.And(m.V("va"), m.U(0x1fffffff)))
	})

	// dirLookup(nameAddr): scan the directory; the name (kernel VA)
	// is at most DirNameLen bytes, NUL-terminated. Returns the entry
	// index or -1. Directory entries start 32 bytes into dircache
	// (after the superblock header).
	f = k.Func("dirLookup", m.TInt)
	f.Param("name", m.TInt)
	f.Locals("i", "e", "j", "a", "c1", "c2", "ok")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.LoadW(m.Addr("nfiles", 0)), func(b *m.Block) {
			b.Assign("e", m.Add(m.Addr("dircache", DirEntrySize), m.Mul(m.V("i"), m.I(DirEntrySize))))
			b.Assign("ok", m.I(1))
			b.Assign("j", m.I(0))
			b.While(m.Lt(m.V("j"), m.I(DirNameLen)), func(b *m.Block) {
				b.Assign("c1", m.LoadB(m.Add(m.V("e"), m.V("j"))))
				b.Assign("c2", m.LoadB(m.Add(m.V("name"), m.V("j"))))
				b.If(m.Ne(m.V("c1"), m.V("c2")), func(b *m.Block) {
					b.Assign("ok", m.I(0))
					b.Break()
				}, nil)
				b.If(m.Eq(m.V("c1"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				b.Assign("j", m.Add(m.V("j"), m.I(1)))
			})
			b.If(m.Ne(m.V("ok"), m.I(0)), func(b *m.Block) {
				b.Return(m.V("i"))
			}, nil)
		})
		b.Return(m.Neg(m.I(1)))
	})

	// fileStart/fileLen accessors over directory entries.
	f = k.Func("fileStart", m.TInt)
	f.Param("idx", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.LoadW(m.Add(m.Addr("dircache", DirEntrySize+DirNameLen),
			m.Mul(m.V("idx"), m.I(DirEntrySize)))))
	})
	f = k.Func("fileLen", m.TInt)
	f.Param("idx", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.LoadW(m.Add(m.Addr("dircache", DirEntrySize+DirNameLen+4),
			m.Mul(m.V("idx"), m.I(DirEntrySize)))))
	})

	// bcEnsure(block): make disk block resident; returns the kernel
	// VA of its data, or 0 after scheduling a read (the caller's
	// system call restarts). Direct-mapped by block number.
	f = k.Func("bcEnsure", m.TInt)
	f.Param("block", m.TInt)
	f.Locals("idx", "st", "tag")
	f.Code(func(b *m.Block) {
		b.Assign("idx", m.ModU(m.V("block"), m.I(NBuf)))
		b.Assign("tag", m.LoadW(m.Add(m.Addr("buftag", 0), m.Mul(m.V("idx"), m.I(4)))))
		b.Assign("st", m.LoadW(m.Add(m.Addr("bufstate", 0), m.Mul(m.V("idx"), m.I(4)))))
		b.If(m.And(m.Eq(m.V("tag"), m.V("block")), m.Eq(m.V("st"), m.I(1))), func(b *m.Block) {
			b.Return(m.Add(m.Addr("bufdata", 0), m.Mul(m.V("idx"), m.I(BlockBytes))))
		}, nil)
		b.If(m.Eq(m.V("st"), m.I(2)), func(b *m.Block) {
			// Slot busy (this block or a colliding one): wait for the
			// in-flight read, then restart.
			b.Call("sleepOn", m.V("tag"))
			b.Return(m.I(0))
		}, nil)
		b.StoreW(m.Add(m.Addr("buftag", 0), m.Mul(m.V("idx"), m.I(4))), m.V("block"))
		b.StoreW(m.Add(m.Addr("bufstate", 0), m.Mul(m.V("idx"), m.I(4))), m.I(2))
		b.Call("dqPush", m.V("block"), m.I(0), m.V("idx"))
		b.Call("diskIssue", m.Mul(m.V("block"), m.I(BlockSectors)),
			m.Call("kv2p", m.Add(m.Addr("bufdata", 0), m.Mul(m.V("idx"), m.I(BlockBytes)))),
			m.I(BlockSectors), m.I(0))
		b.Call("sleepOn", m.V("block"))
		b.Return(m.I(0))
	})

	// bcReadAhead(block): start an asynchronous read if the block is
	// absent and its slot is free — the read-ahead whose interaction
	// with tracing skews the compress prediction (§5.1).
	f = k.Func("bcReadAhead", m.TVoid)
	f.Param("block", m.TInt)
	f.Locals("idx", "st", "tag")
	f.Code(func(b *m.Block) {
		b.Assign("idx", m.ModU(m.V("block"), m.I(NBuf)))
		b.Assign("tag", m.LoadW(m.Add(m.Addr("buftag", 0), m.Mul(m.V("idx"), m.I(4)))))
		b.Assign("st", m.LoadW(m.Add(m.Addr("bufstate", 0), m.Mul(m.V("idx"), m.I(4)))))
		b.If(m.And(m.Eq(m.V("tag"), m.V("block")), m.Ne(m.V("st"), m.I(0))), func(b *m.Block) {
			b.Return(nil) // present or already on its way
		}, nil)
		b.If(m.Eq(m.V("st"), m.I(2)), func(b *m.Block) {
			b.Return(nil) // slot busy with another block
		}, nil)
		b.StoreW(m.Add(m.Addr("buftag", 0), m.Mul(m.V("idx"), m.I(4))), m.V("block"))
		b.StoreW(m.Add(m.Addr("bufstate", 0), m.Mul(m.V("idx"), m.I(4))), m.I(2))
		b.Call("dqPush", m.V("block"), m.I(0), m.V("idx"))
		b.Call("diskIssue", m.Mul(m.V("block"), m.I(BlockSectors)),
			m.Call("kv2p", m.Add(m.Addr("bufdata", 0), m.Mul(m.V("idx"), m.I(BlockBytes)))),
			m.I(BlockSectors), m.I(0))
	})
}
