package kernel

import (
	"systrace/internal/asm"
	"systrace/internal/isa"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
)

func buildSched(k *m.Module, cfg Config) {
	// setCur makes pid the current process: save-area pointer,
	// address space, trace attribution. With tlbdropin enabled the
	// kernel pre-drops the resumption point and stack page into the
	// TLB, avoiding user misses the simulator will still predict
	// (§5.2's acknowledged error source).
	f := k.Func("setCur", m.TVoid)
	f.Param("pid", m.TInt)
	f.Locals("p", "epc")
	f.Code(func(b *m.Block) {
		b.Assign("p", procAddr(m.V("pid")))
		b.StoreW(m.Addr("curproc", 0), m.V("p"))
		b.StoreW(m.Addr("curpid", 0), m.V("pid"))
		b.StoreW(m.Addr("cursave", 0), m.Add(m.V("p"), m.I(PSave)))
		b.StoreW(m.Addr("curentryhi", 0), m.Shl(m.V("pid"), m.I(6)))
		b.StoreW(m.Addr("curtraced", 0), m.LoadW(m.Add(m.V("p"), m.I(PTraced))))
		b.Call("setSpace", m.V("pid"))
		b.If(m.Ne(m.LoadW(m.Addr("tlbdropin", 0)), m.I(0)), func(b *m.Block) {
			b.Assign("epc", m.LoadW(m.Add(m.V("p"), m.I(PSave+TFEPC))))
			b.Call("tlbDrop", m.V("pid"), m.V("epc"))
			b.Call("tlbDrop", m.V("pid"),
				m.LoadW(m.Add(m.V("p"), m.I(PSave+TFRegs+(isa.RegSP-1)*4))))
		}, nil)
	})

	// idle: the counted idle loop (§3.5: "An example application of
	// these counters is measuring activity in the idle-loop"; §4.1:
	// idle-loop instruction counts estimate I/O delays). Interrupts
	// are enabled while spinning; device handlers run as nested
	// exceptions and make processes runnable again.
	// Interrupts are enabled only inside idle_pause (hand-written,
	// untraced): the instrumented loop itself always runs with
	// interrupts off, so device interrupts can never interleave with
	// an in-flight trace-buffer update.
	// anyRunnable scans the process table; the scheduler gates on
	// this rather than a maintained counter (the counter remains as a
	// statistic, but a scan cannot go stale).
	f = k.Func("anyRunnable", m.TInt)
	f.Locals("i")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(MaxProcs), func(b *m.Block) {
			b.If(m.Eq(m.LoadW(procAddr(m.Add(m.V("i"), m.I(1)))), m.I(stRunnable)), func(b *m.Block) {
				b.Return(m.I(1))
			}, nil)
		})
		b.Return(m.I(0))
	})

	f = k.Func("idle", m.TVoid)
	f.Flags = asm.IdleLoop
	f.Code(func(b *m.Block) {
		b.While(m.Eq(m.Call("anyRunnable"), m.I(0)), func(b *m.Block) {
			b.Call("idle_pause")
		})
	})

	// schedPick: round-robin over runnable processes; idles when
	// nothing can run.
	f = k.Func("schedPick", m.TVoid)
	f.Locals("i", "idx", "p", "found")
	f.Code(func(b *m.Block) {
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("found", m.I(0))
			b.For("i", m.I(0), m.I(MaxProcs), func(b *m.Block) {
				b.If(m.Ne(m.V("found"), m.I(0)), func(b *m.Block) { b.Continue() }, nil)
				b.Assign("idx", m.ModU(m.Add(m.LoadW(m.Addr("rrindex", 0)), m.V("i")), m.I(MaxProcs)))
				b.Assign("p", procAddr(m.Add(m.V("idx"), m.I(1))))
				b.If(m.Eq(m.LoadW(m.V("p")), m.I(stRunnable)), func(b *m.Block) {
					b.StoreW(m.Addr("rrindex", 0), m.Add(m.V("idx"), m.I(1)))
					b.StoreW(m.Add(m.V("p"), m.I(PQuantum)), m.I(Quantum))
					b.Call("setCur", m.Add(m.V("idx"), m.I(1)))
					b.Assign("found", m.I(1))
				}, nil)
			})
			b.If(m.Ne(m.V("found"), m.I(0)), func(b *m.Block) {
				b.Return(nil)
			}, nil)
			b.Call("idle")
		})
	})

	// sleepOn: put the current process to sleep on a channel and
	// arrange for the in-progress system call to restart when woken
	// (restartable syscalls avoid per-process kernel stacks).
	f = k.Func("sleepOn", m.TVoid)
	f.Param("chan", m.TInt)
	f.Locals("p")
	f.Code(func(b *m.Block) {
		b.Assign("p", m.Call("curProcAddr"))
		b.If(m.Eq(m.LoadW(m.V("p")), m.I(stRunnable)), func(b *m.Block) {
			b.StoreW(m.Addr("nrunnable", 0),
				m.Sub(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
		}, nil)
		b.StoreW(m.V("p"), m.I(stSleeping))
		b.StoreW(m.Add(m.V("p"), m.I(PSleepChan)), m.V("chan"))
		b.StoreW(m.Addr("restartsys", 0), m.I(1))
	})

	// wakeup: make every process sleeping on chan runnable.
	f = k.Func("wakeup", m.TVoid)
	f.Param("chan", m.TInt)
	f.Locals("i", "p")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(MaxProcs), func(b *m.Block) {
			b.Assign("p", procAddr(m.Add(m.V("i"), m.I(1))))
			b.If(m.And(m.Eq(m.LoadW(m.V("p")), m.I(stSleeping)),
				m.Eq(m.LoadW(m.Add(m.V("p"), m.I(PSleepChan))), m.V("chan"))),
				func(b *m.Block) {
					b.StoreW(m.V("p"), m.I(stRunnable))
					b.StoreW(m.Addr("nrunnable", 0),
						m.Add(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
				}, nil)
		})
	})

	// wakePid: make one specific process runnable (raw disk I/O).
	f = k.Func("wakePid", m.TVoid)
	f.Param("pid", m.TInt)
	f.Locals("p")
	f.Code(func(b *m.Block) {
		b.Assign("p", procAddr(m.V("pid")))
		b.If(m.Eq(m.LoadW(m.V("p")), m.I(stSleeping)), func(b *m.Block) {
			b.StoreW(m.V("p"), m.I(stRunnable))
			b.StoreW(m.Addr("nrunnable", 0),
				m.Add(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
		}, nil)
	})

	// clockTick: scheduler quantum accounting.
	f = k.Func("clockTick", m.TVoid)
	f.Locals("p", "q")
	f.Code(func(b *m.Block) {
		b.StoreW(m.Addr("ticks", 0), m.Add(m.LoadW(m.Addr("ticks", 0)), m.I(1)))
		b.Assign("p", m.Call("curProcAddr"))
		b.If(m.Eq(m.V("p"), m.I(0)), func(b *m.Block) { b.Return(nil) }, nil)
		b.If(m.Eq(m.LoadW(m.V("p")), m.I(stRunnable)), func(b *m.Block) {
			b.Assign("q", m.Sub(m.LoadW(m.Add(m.V("p"), m.I(PQuantum))), m.I(1)))
			b.StoreW(m.Add(m.V("p"), m.I(PQuantum)), m.V("q"))
			b.If(m.Le(m.V("q"), m.I(0)), func(b *m.Block) {
				b.StoreW(m.Addr("needresched", 0), m.I(1))
			}, nil)
		}, nil)
	})

	// procExit: terminate the current process.
	f = k.Func("procExit", m.TVoid)
	f.Locals("p")
	f.Code(func(b *m.Block) {
		b.Assign("p", m.Call("curProcAddr"))
		b.StoreW(m.V("p"), m.I(stZombie))
		b.StoreW(m.Addr("nrunnable", 0),
			m.Sub(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
		b.StoreW(m.Addr("nlive", 0),
			m.Sub(m.LoadW(m.Addr("nlive", 0)), m.I(1)))
		b.Call("traceMark", m.Add(m.U(trace.MarkProcExit), m.LoadW(m.Addr("curpid", 0))))
		b.If(m.Le(m.LoadW(m.Addr("nlive", 0)), m.I(0)), func(b *m.Block) {
			b.Call("finalize")
		}, nil)
		b.StoreW(m.Addr("restartsys", 0), m.I(1)) // never resumes; don't touch EPC
	})

	// finalize: drain trace and halt the machine. Part of the trace
	// control subsystem: never instrumented, so the final drain is not
	// polluted by its own trace.
	f = k.Func("finalize", m.TVoid)
	f.Flags = asm.NoInstrument
	f.Code(func(b *m.Block) {
		b.If(m.Ne(m.LoadW(m.Addr("traceon", 0)), m.I(0)), func(b *m.Block) {
			b.Call("traceMark", m.U(trace.MarkModeSw))
			b.StoreW(m.Addr("traceon", 0), m.I(0))
			b.StoreW(m.U(traceBell), m.I(2)) // DoorbellFlush
		}, nil)
		b.StoreW(m.U(haltReg), m.I(0))
		// Not reached: the machine halts on the store above.
		b.While(m.I(1), func(b *m.Block) {})
	})
}
