package kernel

import (
	m "systrace/internal/mahler"
)

// buildFileSyscalls provides the monolithic kernel's file system
// calls. All are restartable: a call that must wait for the disk puts
// the process to sleep with the trapframe untouched and re-executes
// from scratch on wakeup, by which time the buffer cache is warm.
func buildFileSyscalls(k *m.Module, cfg Config) {
	k.Global("namebuf", 32)

	// fdSlot(fd) — address of the current process's descriptor.
	f := k.Func("fdSlot", m.TInt)
	f.Param("fd", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.Add(m.Add(m.Call("curProcAddr"), m.I(PFDBase)),
			m.Mul(m.V("fd"), m.I(FDStride))))
	})

	// sysOpen(pathUVA): copy the name in, look it up, allocate a
	// descriptor.
	f = k.Func("sysOpen", m.TInt)
	f.Param("path", m.TInt)
	f.Locals("idx", "fd", "slot")
	f.Code(func(b *m.Block) {
		b.Call("copyin", m.Addr("namebuf", 0), m.V("path"), m.I(DirNameLen))
		b.Assign("idx", m.Call("dirLookup", m.Addr("namebuf", 0)))
		b.If(m.Lt(m.V("idx"), m.I(0)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.For("fd", m.I(3), m.I(NFD), func(b *m.Block) {
			b.Assign("slot", m.Call("fdSlot", m.V("fd")))
			b.If(m.Lt(m.LoadW(m.V("slot")), m.I(0)), func(b *m.Block) {
				b.StoreW(m.V("slot"), m.V("idx"))
				b.StoreW(m.Add(m.V("slot"), m.I(4)), m.I(0)) // offset
				b.Return(m.V("fd"))
			}, nil)
		})
		b.Return(m.Neg(m.I(1)))
	})

	f = k.Func("sysClose", m.TInt)
	f.Param("fd", m.TInt)
	f.Code(func(b *m.Block) {
		b.If(m.Or(m.Lt(m.V("fd"), m.I(3)), m.Ge(m.V("fd"), m.I(NFD))), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.StoreW(m.Call("fdSlot", m.V("fd")), m.Neg(m.I(1)))
		b.Return(m.I(0))
	})

	// sysRead(fd, ubuf, n): through the buffer cache with read-ahead.
	f = k.Func("sysRead", m.TInt)
	f.Param("fd", m.TInt)
	f.Param("ubuf", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("slot", "idx", "off", "flen", "left", "copied",
		"abs", "block", "boff", "chunk", "bva", "fbyte", "p")
	f.Code(func(b *m.Block) {
		b.If(m.Or(m.Lt(m.V("fd"), m.I(3)), m.Ge(m.V("fd"), m.I(NFD))), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Assign("slot", m.Call("fdSlot", m.V("fd")))
		b.Assign("idx", m.LoadW(m.V("slot")))
		b.If(m.Lt(m.V("idx"), m.I(0)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Assign("off", m.LoadW(m.Add(m.V("slot"), m.I(4))))
		b.Assign("flen", m.Call("fileLen", m.V("idx")))
		b.If(m.GeU(m.V("off"), m.V("flen")), func(b *m.Block) {
			b.Return(m.I(0)) // EOF
		}, nil)
		b.Assign("left", m.Sub(m.V("flen"), m.V("off")))
		b.If(m.LtU(m.V("left"), m.V("n")), func(b *m.Block) {
			b.Assign("n", m.V("left"))
		}, nil)
		b.Assign("fbyte", m.Mul(m.Call("fileStart", m.V("idx")), m.I(SectorSize)))

		b.Assign("copied", m.I(0))
		b.While(m.LtU(m.V("copied"), m.V("n")), func(b *m.Block) {
			b.Assign("abs", m.Add(m.V("fbyte"), m.Add(m.V("off"), m.V("copied"))))
			b.Assign("block", m.DivU(m.V("abs"), m.I(BlockBytes)))
			b.Assign("boff", m.ModU(m.V("abs"), m.I(BlockBytes)))
			b.Assign("bva", m.Call("bcEnsure", m.V("block")))
			b.If(m.Eq(m.V("bva"), m.I(0)), func(b *m.Block) {
				b.Return(m.I(0)) // sleeping; the call restarts
			}, nil)
			b.Assign("chunk", m.Sub(m.I(BlockBytes), m.V("boff")))
			b.If(m.GtU(m.V("chunk"), m.Sub(m.V("n"), m.V("copied"))), func(b *m.Block) {
				b.Assign("chunk", m.Sub(m.V("n"), m.V("copied")))
			}, nil)
			b.Call("copyout", m.Add(m.V("ubuf"), m.V("copied")),
				m.Add(m.V("bva"), m.V("boff")), m.V("chunk"))
			b.Assign("copied", m.Add(m.V("copied"), m.V("chunk")))
		})

		// Read-ahead: when access looks sequential, start the next
		// block's read without waiting (§5.1: "tracing changes the
		// behavior of disk read ahead").
		b.Assign("p", m.Call("curProcAddr"))
		b.Assign("abs", m.Add(m.V("fbyte"), m.Add(m.V("off"), m.V("n"))))
		b.Assign("block", m.DivU(m.V("abs"), m.I(BlockBytes)))
		b.If(m.Eq(m.LoadW(m.Add(m.V("p"), m.I(PLastBlock))), m.V("block")), func(b *m.Block) {
			// Same block as last time: no new read-ahead.
		}, func(b *m.Block) {
			b.If(m.LtU(m.Mul(m.Add(m.V("block"), m.I(1)), m.I(BlockBytes)),
				m.Add(m.V("fbyte"), m.V("flen"))), func(b *m.Block) {
				b.Call("bcReadAhead", m.Add(m.V("block"), m.I(1)))
			}, nil)
			b.StoreW(m.Add(m.V("p"), m.I(PLastBlock)), m.V("block"))
		})

		b.StoreW(m.Add(m.V("slot"), m.I(4)), m.Add(m.V("off"), m.V("n")))
		b.Return(m.V("n"))
	})

	// sysWrite(fd, ubuf, n): fd 1 is the console; files are written
	// through the cache with the conservative synchronous policy.
	f = k.Func("sysWrite", m.TInt)
	f.Param("fd", m.TInt)
	f.Param("ubuf", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i", "slot", "idx", "off", "flen", "abs", "block", "boff",
		"chunk", "bva", "fbyte", "p", "copied")
	f.Code(func(b *m.Block) {
		b.If(m.Eq(m.V("fd"), m.I(1)), func(b *m.Block) {
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.StoreW(m.U(consPutc), m.LoadB(m.Add(m.V("ubuf"), m.V("i"))))
			})
			b.Return(m.V("n"))
		}, nil)
		b.If(m.Or(m.Lt(m.V("fd"), m.I(3)), m.Ge(m.V("fd"), m.I(NFD))), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Assign("slot", m.Call("fdSlot", m.V("fd")))
		b.Assign("idx", m.LoadW(m.V("slot")))
		b.If(m.Lt(m.V("idx"), m.I(0)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Assign("p", m.Call("curProcAddr"))
		// Restart after the synchronous write completed.
		b.If(m.Eq(m.LoadW(m.Add(m.V("p"), m.I(PDiskPend))), m.I(2)), func(b *m.Block) {
			b.StoreW(m.Add(m.V("p"), m.I(PDiskPend)), m.I(0))
			b.Assign("off", m.LoadW(m.Add(m.V("slot"), m.I(4))))
			b.StoreW(m.Add(m.V("slot"), m.I(4)), m.Add(m.V("off"), m.V("n")))
			b.Return(m.V("n"))
		}, nil)
		b.Assign("off", m.LoadW(m.Add(m.V("slot"), m.I(4))))
		b.Assign("flen", m.Call("fileLen", m.V("idx")))
		b.If(m.GtU(m.Add(m.V("off"), m.V("n")), m.V("flen")), func(b *m.Block) {
			b.Return(m.Neg(m.I(1))) // in-place overwrite only
		}, nil)
		b.Assign("fbyte", m.Mul(m.Call("fileStart", m.V("idx")), m.I(SectorSize)))

		b.Assign("copied", m.I(0))
		b.While(m.LtU(m.V("copied"), m.V("n")), func(b *m.Block) {
			b.Assign("abs", m.Add(m.V("fbyte"), m.Add(m.V("off"), m.V("copied"))))
			b.Assign("block", m.DivU(m.V("abs"), m.I(BlockBytes)))
			b.Assign("boff", m.ModU(m.V("abs"), m.I(BlockBytes)))
			b.Assign("bva", m.Call("bcEnsure", m.V("block")))
			b.If(m.Eq(m.V("bva"), m.I(0)), func(b *m.Block) {
				b.Return(m.I(0)) // restart
			}, nil)
			b.Assign("chunk", m.Sub(m.I(BlockBytes), m.V("boff")))
			b.If(m.GtU(m.V("chunk"), m.Sub(m.V("n"), m.V("copied"))), func(b *m.Block) {
				b.Assign("chunk", m.Sub(m.V("n"), m.V("copied")))
			}, nil)
			b.Call("copyin", m.Add(m.V("bva"), m.V("boff")),
				m.Add(m.V("ubuf"), m.V("copied")), m.V("chunk"))
			b.Assign("copied", m.Add(m.V("copied"), m.V("chunk")))
		})

		// Conservative write policy: push the last block to disk
		// synchronously before the call completes (§4.4).
		b.Assign("abs", m.Add(m.V("fbyte"), m.V("off")))
		b.Assign("block", m.DivU(m.V("abs"), m.I(BlockBytes)))
		b.Call("dqPush", m.V("block"), m.I(2), m.LoadW(m.Addr("curpid", 0)))
		b.Call("diskIssue", m.Mul(m.V("block"), m.I(BlockSectors)),
			m.Call("kv2p", m.Add(m.Addr("bufdata", 0),
				m.Mul(m.ModU(m.V("block"), m.I(NBuf)), m.I(BlockBytes)))),
			m.I(BlockSectors), m.I(1))
		b.StoreW(m.Add(m.V("p"), m.I(PDiskPend)), m.I(1))
		b.Call("sleepOn", m.U(0x7ffffff1))
		b.Return(m.I(0))
	})
}
