package kernel

import (
	"encoding/binary"
	"fmt"
	"sync"

	"systrace/internal/obs"
	"systrace/internal/trace"
)

// Epoch-ring streaming drain.
//
// The two-phase design charges the whole buffer's analysis time to the
// machine at every doorbell: generation and analysis strictly
// alternate, as in the paper's Figure 1. The streaming drain instead
// treats each filled buffer as one *epoch* of a ring: the doorbell
// handler copies the epoch out (optionally compressing it with the
// internal/trace stream codec), hands it to a consumer goroutine that
// runs the analysis program while the kernel is already generating the
// next epoch, and charges the machine only the handoff cost plus any
// stall waiting for a free ring slot.
//
// The handoff is sound for the same reason the two-phase drain is: the
// kernel only rings the doorbell from the §3.3 safe points (the trace
// buffer's soft-limit check and the final flush), where no trace store
// is in flight and the bookkeeping word is consistent, so the epoch is
// a self-contained prefix of the stream. The consumer sees epochs in
// doorbell order over a FIFO channel, which is exactly the order the
// two-phase analysis saw them — the analysis program's input is
// byte-identical, only its timing overlaps generation.
//
// Simulated time stays deterministic: the ring is modeled analytically
// with a completion-time queue. Epoch k's analysis completes at
//
//	done(k) = max(handed(k), done(k-1)) + words(k)*AnalysisPerWord
//
// and the producer stalls only when all Epochs-1 in-flight slots are
// still busy at handoff time. The real consumer goroutine does the
// actual host-side work (decode, conformance, memsys simulation)
// concurrently, but contributes nothing to machine time — its modeled
// cycles are recorded on the machine's overlapped-analysis counter so
// the generation/analysis duty cycle stays observable.

// StreamConfig configures the epoch-ring streaming drain. The zero
// value disables it (legacy stop-the-world two-phase analysis).
type StreamConfig struct {
	// Epochs is the ring depth: the number of trace-buffer-sized
	// epochs that may be in flight (one filling, the rest draining or
	// being analyzed). Values below 2 disable streaming — a one-slot
	// ring is the two-phase design.
	Epochs int
	// HandoffPerWord is the machine cycles charged per trace word to
	// hand a filled epoch to the consumer (the copy out of the trace
	// buffer). This replaces the stop-the-world AnalysisPerWord charge.
	HandoffPerWord uint64
	// Compress encodes each epoch with the internal/trace stream codec
	// on handoff; the consumer decodes before analysis, so the wire
	// format is exercised end to end.
	Compress bool
}

// Enabled reports whether the configuration turns streaming on.
func (c StreamConfig) Enabled() bool { return c.Epochs >= 2 }

// DefaultStream returns the standard streaming configuration: a
// four-epoch ring, one handoff cycle per word, compressed handoff.
func DefaultStream() StreamConfig {
	return StreamConfig{Epochs: 4, HandoffPerWord: 1, Compress: true}
}

// StreamStats accumulates one run's streaming-drain accounting.
// Producer-side fields (Epochs..EncodedBytes) are updated by the
// doorbell handler on the machine's goroutine; DecodeErrors is owned by
// the consumer and is stable once Run returns (Run joins the consumer).
type StreamStats struct {
	Epochs       uint64 // epochs handed to the consumer
	StallCycles  uint64 // machine cycles stalled waiting for a ring slot
	RawBytes     uint64 // raw bytes handed off (4 per word)
	EncodedBytes uint64 // encoded bytes handed off (Compress mode)
	DecodeErrors uint64 // epochs the consumer could not decode
}

// epochBuf is one ring slot: a filled epoch in flight from the
// doorbell handler to the consumer.
type epochBuf struct {
	words  []uint32 // raw epoch (also the encoder's input in Compress mode)
	enc    []byte   // encoded epoch (Compress mode)
	reason uint32   // doorbell reason
	pid    uint32   // pid current at drain time (telemetry attribution)
}

// streamer runs one epoch ring for the duration of one System.Run.
type streamer struct {
	sys *System
	cfg StreamConfig

	free chan *epochBuf // ring slots available to the producer
	work chan *epochBuf // filled epochs in doorbell order
	wg   sync.WaitGroup

	enc *trace.Encoder // producer-side encoder (Compress mode)

	// Analytic ring model: completion times of in-flight epochs
	// (sorted; at most Epochs-1 entries) and the previous epoch's
	// completion (the single analysis engine is FIFO).
	compl    []uint64
	prevDone uint64
}

func newStreamer(s *System) *streamer {
	st := &streamer{
		sys:  s,
		cfg:  s.Cfg.Stream,
		free: make(chan *epochBuf, s.Cfg.Stream.Epochs),
		work: make(chan *epochBuf, s.Cfg.Stream.Epochs),
	}
	for i := 0; i < st.cfg.Epochs; i++ {
		st.free <- &epochBuf{}
	}
	if st.cfg.Compress {
		st.enc = trace.NewEncoder()
	}
	st.wg.Add(1)
	go st.consume()
	return st
}

// handoff copies the n-word epoch out of the trace buffer, hands it to
// the consumer, and returns the machine cycles to charge (handoff cost
// plus any modeled stall for a ring slot). Runs on the machine's
// goroutine inside the doorbell handler.
func (st *streamer) handoff(reason, pid uint32, n uint32, now uint64) uint64 {
	s := st.sys
	b := <-st.free // real backpressure: memory is bounded by the ring depth
	b.reason, b.pid = reason, pid
	if cap(b.words) < int(n) {
		b.words = make([]uint32, n)
	}
	b.words = b.words[:n]
	ram := s.M.RAM.Bytes()
	for i := uint32(0); i < n; i++ {
		b.words[i] = binary.BigEndian.Uint32(ram[s.tbufPA+i*4:])
	}
	if st.cfg.Compress {
		b.enc = st.enc.Encode(b.words, b.enc[:0])
		s.StreamStats.EncodedBytes += uint64(len(b.enc))
	}
	st.work <- b

	// Analytic accounting on the deterministic machine clock.
	st.sys.StreamStats.Epochs++
	st.sys.StreamStats.RawBytes += uint64(n) * 4
	handoff := uint64(n) * st.cfg.HandoffPerWord
	t := now + handoff
	for len(st.compl) > 0 && st.compl[0] <= t {
		st.compl = st.compl[1:]
	}
	var stall uint64
	if len(st.compl) >= st.cfg.Epochs-1 {
		// Every slot the kernel could generate into is still busy:
		// wait for the oldest in-flight epoch's analysis to finish.
		stall = st.compl[0] - t
		t = st.compl[0]
		st.compl = st.compl[1:]
	}
	start := t
	if st.prevDone > start {
		start = st.prevDone
	}
	done := start + uint64(n)*s.Cfg.AnalysisPerWord
	st.compl = append(st.compl, done)
	st.prevDone = done
	s.M.AddOverlapCycles(uint64(n) * s.Cfg.AnalysisPerWord)
	s.StreamStats.StallCycles += stall
	return handoff + stall
}

// consume is the analysis side of the ring: decode (if compressed),
// record telemetry, run the attached analysis program, return the slot.
func (st *streamer) consume() {
	defer st.wg.Done()
	s := st.sys
	var dec *trace.Decoder
	if st.cfg.Compress {
		dec = trace.NewDecoder()
	}
	var scratch []uint32
	for b := range st.work {
		sp := obs.Begin("stream_consume")
		if s.OnEpoch != nil && dec != nil {
			s.OnEpoch(b.enc)
		}
		words := b.words
		if dec != nil {
			// Decode only when something consumes the words; an
			// OnEpoch-only consumer decodes for itself.
			if s.tel == nil && s.OnTrace == nil {
				st.free <- b
				sp.End()
				continue
			}
			var err error
			scratch, err = dec.Decode(b.enc, scratch[:0])
			if err != nil {
				s.StreamStats.DecodeErrors++
				obs.Failure("trace_stream_decode",
					fmt.Sprintf("epoch of %d words: %v", len(b.words), err))
				st.free <- b
				sp.End()
				continue
			}
			words = scratch
		}
		if s.tel != nil {
			s.tel.record(b.reason, b.pid, words)
		}
		if s.OnTrace != nil {
			s.OnTrace(words)
		}
		st.free <- b
		sp.End()
	}
}

// close stops the consumer after all handed-off epochs are analyzed.
// Returning establishes the happens-before the caller needs to read
// analysis results.
func (st *streamer) close() {
	close(st.work)
	st.wg.Wait()
}
