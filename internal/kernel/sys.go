package kernel

import (
	"systrace/internal/isa"
	m "systrace/internal/mahler"
)

// Trapframe slot helpers (register values saved by the entry path).
func tfReg(tf m.Expr, reg int) m.Expr {
	return m.Add(tf, m.I(int32(TFRegs+(reg-1)*4)))
}

func buildSyscalls(k *m.Module, cfg Config) {
	// copyout/copyin move bytes between kernel VAs and the *current*
	// process's user VAs (the TLB carries the current ASID, so plain
	// loads and stores reach user memory — and show up in the kernel
	// trace as kernel references to user addresses).
	// The loops run in 1 KB chunks with a trace safe-point poll per
	// chunk: a single large transfer generates several trace words per
	// byte moved and would otherwise overrun the in-kernel buffer's
	// slack region before the trap handler's safe point runs.
	f := k.Func("copyout", m.TVoid)
	f.Param("uva", m.TInt)
	f.Param("kva", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i", "lim")
	f.Code(func(b *m.Block) {
		b.Assign("i", m.I(0))
		// Word loop when both are aligned.
		b.If(m.Eq(m.And(m.Or(m.V("uva"), m.V("kva")), m.I(3)), m.I(0)), func(b *m.Block) {
			b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("n")), func(b *m.Block) {
				b.Call("traceCheck")
				b.Assign("lim", m.Add(m.V("i"), m.I(1024)))
				b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
					b.Assign("lim", m.V("n"))
				}, nil)
				b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("lim")), func(b *m.Block) {
					b.StoreW(m.Add(m.V("uva"), m.V("i")), m.LoadW(m.Add(m.V("kva"), m.V("i"))))
					b.Assign("i", m.Add(m.V("i"), m.I(4)))
				})
			})
		}, nil)
		b.While(m.LtU(m.V("i"), m.V("n")), func(b *m.Block) {
			b.Call("traceCheck")
			b.Assign("lim", m.Add(m.V("i"), m.I(1024)))
			b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
				b.Assign("lim", m.V("n"))
			}, nil)
			b.While(m.LtU(m.V("i"), m.V("lim")), func(b *m.Block) {
				b.StoreB(m.Add(m.V("uva"), m.V("i")), m.LoadB(m.Add(m.V("kva"), m.V("i"))))
				b.Assign("i", m.Add(m.V("i"), m.I(1)))
			})
		})
	})

	f = k.Func("copyin", m.TVoid)
	f.Param("kva", m.TInt)
	f.Param("uva", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i", "lim")
	f.Code(func(b *m.Block) {
		b.Assign("i", m.I(0))
		b.If(m.Eq(m.And(m.Or(m.V("uva"), m.V("kva")), m.I(3)), m.I(0)), func(b *m.Block) {
			b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("n")), func(b *m.Block) {
				b.Call("traceCheck")
				b.Assign("lim", m.Add(m.V("i"), m.I(1024)))
				b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
					b.Assign("lim", m.V("n"))
				}, nil)
				b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("lim")), func(b *m.Block) {
					b.StoreW(m.Add(m.V("kva"), m.V("i")), m.LoadW(m.Add(m.V("uva"), m.V("i"))))
					b.Assign("i", m.Add(m.V("i"), m.I(4)))
				})
			})
		}, nil)
		b.While(m.LtU(m.V("i"), m.V("n")), func(b *m.Block) {
			b.Call("traceCheck")
			b.Assign("lim", m.Add(m.V("i"), m.I(1024)))
			b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
				b.Assign("lim", m.V("n"))
			}, nil)
			b.While(m.LtU(m.V("i"), m.V("lim")), func(b *m.Block) {
				b.StoreB(m.Add(m.V("kva"), m.V("i")), m.LoadB(m.Add(m.V("uva"), m.V("i"))))
				b.Assign("i", m.Add(m.V("i"), m.I(1)))
			})
		})
	})

	// crossCopy: Mach's vm_copy path — move bytes between two user
	// address spaces by switching EntryHi/Context per side. This is
	// the IPC data path between clients and the UX server.
	f = k.Func("crossCopy", m.TVoid)
	f.Param("dstPid", m.TInt)
	f.Param("dstVA", m.TInt)
	f.Param("srcVA", m.TInt) // in srcPid passed via global curxfer
	f.Param("n", m.TInt)
	f.Locals("i", "w", "srcPid", "lim")
	f.Code(func(b *m.Block) {
		b.Assign("srcPid", m.LoadW(m.Addr("xfersrc", 0)))
		b.Assign("i", m.I(0))
		// Chunked like copyin/copyout, and more aggressively (256 B):
		// the per-word space switching makes this the densest trace
		// producer in either kernel.
		b.If(m.Eq(m.And(m.Or(m.V("dstVA"), m.V("srcVA")), m.I(3)), m.I(0)), func(b *m.Block) {
			b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("n")), func(b *m.Block) {
				b.Call("traceCheck")
				b.Assign("lim", m.Add(m.V("i"), m.I(256)))
				b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
					b.Assign("lim", m.V("n"))
				}, nil)
				b.While(m.LeU(m.Add(m.V("i"), m.I(4)), m.V("lim")), func(b *m.Block) {
					b.Call("setSpace", m.V("srcPid"))
					b.Assign("w", m.LoadW(m.Add(m.V("srcVA"), m.V("i"))))
					b.Call("setSpace", m.V("dstPid"))
					b.StoreW(m.Add(m.V("dstVA"), m.V("i")), m.V("w"))
					b.Assign("i", m.Add(m.V("i"), m.I(4)))
				})
			})
		}, nil)
		b.While(m.LtU(m.V("i"), m.V("n")), func(b *m.Block) {
			b.Call("traceCheck")
			b.Assign("lim", m.Add(m.V("i"), m.I(256)))
			b.If(m.LtU(m.V("n"), m.V("lim")), func(b *m.Block) {
				b.Assign("lim", m.V("n"))
			}, nil)
			b.While(m.LtU(m.V("i"), m.V("lim")), func(b *m.Block) {
				b.Call("setSpace", m.V("srcPid"))
				b.Assign("w", m.LoadB(m.Add(m.V("srcVA"), m.V("i"))))
				b.Call("setSpace", m.V("dstPid"))
				b.StoreB(m.Add(m.V("dstVA"), m.V("i")), m.V("w"))
				b.Assign("i", m.Add(m.V("i"), m.I(1)))
			})
		})
		b.Call("setSpace", m.LoadW(m.Addr("curpid", 0)))
	})
	k.Global("xfersrc", 4)

	buildFileSyscalls(k, cfg)
	buildIPC(k, cfg)

	// doSyscall: decode and dispatch. Completion advances EPC and
	// sets v0; a restart (restartsys) leaves the frame untouched so
	// the syscall re-executes after wakeup.
	f = k.Func("doSyscall", m.TVoid)
	f.Param("tf", m.TInt)
	f.Locals("num", "a0", "a1", "a2", "ret", "p")
	f.Code(func(b *m.Block) {
		b.Assign("num", m.LoadW(tfReg(m.V("tf"), isa.RegV0)))
		b.Assign("a0", m.LoadW(tfReg(m.V("tf"), isa.RegA0)))
		b.Assign("a1", m.LoadW(tfReg(m.V("tf"), isa.RegA1)))
		b.Assign("a2", m.LoadW(tfReg(m.V("tf"), isa.RegA2)))
		b.Assign("ret", m.I(0))
		b.Assign("p", m.Call("curProcAddr"))

		b.If(m.Eq(m.V("num"), m.I(SysExit)), func(b *m.Block) {
			b.Call("procExit")
			b.Return(nil)
		}, nil)

		// Mach: ordinary processes' file syscalls become IPC to the
		// UX server; the server's own syscalls stay in-kernel.
		// Console writes stay in the kernel on both systems.
		b.If(m.And(m.Eq(m.LoadW(m.Addr("flavor", 0)), m.I(int32(Mach))),
			m.Eq(m.LoadW(m.Add(m.V("p"), m.I(PIsServer))), m.I(0))), func(b *m.Block) {
			isFile := m.And(m.GeU(m.V("num"), m.I(SysWrite)), m.LeU(m.V("num"), m.I(SysClose)))
			console := m.And(m.Eq(m.V("num"), m.I(SysWrite)), m.Eq(m.V("a0"), m.I(1)))
			b.If(m.And(isFile, m.Eq(console, m.I(0))), func(b *m.Block) {
				b.Call("ipcEnqueue", m.V("num"), m.V("a0"), m.V("a1"), m.V("a2"))
				b.Return(nil)
			}, nil)
		}, nil)

		b.If(m.Eq(m.V("num"), m.I(SysWrite)), func(b *m.Block) {
			b.Assign("ret", m.Call("sysWrite", m.V("a0"), m.V("a1"), m.V("a2")))
		}, func(b *m.Block) {
			b.If(m.Eq(m.V("num"), m.I(SysRead)), func(b *m.Block) {
				b.Assign("ret", m.Call("sysRead", m.V("a0"), m.V("a1"), m.V("a2")))
			}, func(b *m.Block) {
				b.If(m.Eq(m.V("num"), m.I(SysOpen)), func(b *m.Block) {
					b.Assign("ret", m.Call("sysOpen", m.V("a0")))
				}, func(b *m.Block) {
					b.If(m.Eq(m.V("num"), m.I(SysClose)), func(b *m.Block) {
						b.Assign("ret", m.Call("sysClose", m.V("a0")))
					}, func(b *m.Block) {
						b.Call("doSyscall2", m.V("tf"))
						b.Return(nil)
					})
				})
			})
		})

		// Completion unless a helper requested a restart.
		b.If(m.Eq(m.LoadW(m.Addr("restartsys", 0)), m.I(0)), func(b *m.Block) {
			b.StoreW(tfReg(m.V("tf"), isa.RegV0), m.V("ret"))
			b.StoreW(m.Add(m.V("tf"), m.I(TFEPC)),
				m.Add(m.LoadW(m.Add(m.V("tf"), m.I(TFEPC))), m.I(4)))
		}, nil)
	})

	// doSyscall2: the less common calls, split out to keep block
	// nesting manageable.
	f = k.Func("doSyscall2", m.TVoid)
	f.Param("tf", m.TInt)
	f.Locals("num", "a0", "a1", "a2", "a3", "ret", "p")
	f.Code(func(b *m.Block) {
		b.Assign("num", m.LoadW(tfReg(m.V("tf"), isa.RegV0)))
		b.Assign("a0", m.LoadW(tfReg(m.V("tf"), isa.RegA0)))
		b.Assign("a1", m.LoadW(tfReg(m.V("tf"), isa.RegA1)))
		b.Assign("a2", m.LoadW(tfReg(m.V("tf"), isa.RegA2)))
		b.Assign("a3", m.LoadW(tfReg(m.V("tf"), isa.RegA3)))
		b.Assign("ret", m.I(0))
		b.Assign("p", m.Call("curProcAddr"))

		b.If(m.Eq(m.V("num"), m.I(SysBrk)), func(b *m.Block) {
			b.Assign("ret", m.Call("sysBrk", m.V("a0")))
		}, func(b *m.Block) {
			b.If(m.Eq(m.V("num"), m.I(SysGetPID)), func(b *m.Block) {
				b.Assign("ret", m.LoadW(m.Addr("curpid", 0)))
			}, func(b *m.Block) {
				b.If(m.Eq(m.V("num"), m.I(SysYield)), func(b *m.Block) {
					b.StoreW(m.Addr("needresched", 0), m.I(1))
				}, func(b *m.Block) {
					b.If(m.Eq(m.V("num"), m.I(SysMsgRecv)), func(b *m.Block) {
						b.Assign("ret", m.Call("ipcRecv", m.V("a0")))
					}, func(b *m.Block) {
						b.If(m.Eq(m.V("num"), m.I(SysMsgReply)), func(b *m.Block) {
							b.Assign("ret", m.Call("ipcReply", m.V("a0"), m.V("a1"), m.V("a2"), m.V("a3")))
						}, func(b *m.Block) {
							b.If(m.Eq(m.V("num"), m.I(SysDiskRead)), func(b *m.Block) {
								b.Assign("ret", m.Call("sysDiskIO", m.V("a0"), m.V("a1"), m.V("a2"), m.I(0)))
							}, func(b *m.Block) {
								b.If(m.Eq(m.V("num"), m.I(SysDiskWrite)), func(b *m.Block) {
									b.Assign("ret", m.Call("sysDiskIO", m.V("a0"), m.V("a1"), m.V("a2"), m.I(1)))
								}, func(b *m.Block) {
									b.If(m.Eq(m.V("num"), m.I(SysTraceCtl)), func(b *m.Block) {
										b.Assign("ret", m.Call("sysTraceCtl", m.V("a0")))
									}, func(b *m.Block) {
										b.If(m.Eq(m.V("num"), m.I(SysTime)), func(b *m.Block) {
											b.Assign("ret", m.MFC0(isa.C0Count))
										}, func(b *m.Block) {
											b.If(m.Eq(m.V("num"), m.I(SysMsgFetch)), func(b *m.Block) {
												b.Assign("ret", m.Call("ipcFetch", m.V("a0"), m.V("a1"), m.V("a2"), m.V("a3")))
											}, func(b *m.Block) {
												b.Assign("ret", m.Neg(m.I(1)))
											})
										})
									})
								})
							})
						})
					})
				})
			})
		})

		b.If(m.Eq(m.LoadW(m.Addr("restartsys", 0)), m.I(0)), func(b *m.Block) {
			b.StoreW(tfReg(m.V("tf"), isa.RegV0), m.V("ret"))
			b.StoreW(m.Add(m.V("tf"), m.I(TFEPC)),
				m.Add(m.LoadW(m.Add(m.V("tf"), m.I(TFEPC))), m.I(4)))
		}, nil)
	})

	// sysBrk: grow the current process's heap by mapping fresh
	// frames; returns the new break.
	f = k.Func("sysBrk", m.TInt)
	f.Param("newbrk", m.TInt)
	f.Locals("p", "cur")
	f.Code(func(b *m.Block) {
		b.Assign("p", m.Call("curProcAddr"))
		b.Assign("cur", m.LoadW(m.Add(m.V("p"), m.I(PBrk))))
		b.If(m.LeU(m.V("newbrk"), m.V("cur")), func(b *m.Block) {
			b.Return(m.V("cur"))
		}, nil)
		b.While(m.LtU(m.V("cur"), m.V("newbrk")), func(b *m.Block) {
			b.Call("mapPage", m.LoadW(m.Addr("curpid", 0)), m.V("cur"), m.Call("allocFrame"))
			b.Assign("cur", m.Add(m.V("cur"), m.I(4096)))
		})
		b.StoreW(m.Add(m.V("p"), m.I(PBrk)), m.V("cur"))
		b.Return(m.V("cur"))
	})

	// sysTraceCtl: the user-visible tracing control call (§3.1).
	f = k.Func("sysTraceCtl", m.TInt)
	f.Param("op", m.TInt)
	f.Code(func(b *m.Block) {
		b.If(m.Eq(m.V("op"), m.I(TraceCtlFlush)), func(b *m.Block) {
			b.If(m.Ne(m.LoadW(m.Addr("traceon", 0)), m.I(0)), func(b *m.Block) {
				b.Call("runAnalysis")
			}, nil)
		}, func(b *m.Block) {
			b.If(m.Eq(m.V("op"), m.I(TraceCtlOn)), func(b *m.Block) {
				b.If(m.Ne(m.LoadW(m.Addr("tbufstart", 0)), m.I(0)), func(b *m.Block) {
					b.StoreW(m.Addr("traceon", 0), m.I(1))
				}, nil)
			}, func(b *m.Block) {
				b.StoreW(m.Addr("traceon", 0), m.I(0))
			})
		})
		b.Return(m.I(0))
	})

	// sysDiskIO: the Mach server's device interface — raw sector
	// transfers into page-aligned user memory, one page per call,
	// with restart-based waiting.
	f = k.Func("sysDiskIO", m.TInt)
	f.Param("sector", m.TInt)
	f.Param("uva", m.TInt)
	f.Param("nsect", m.TInt)
	f.Param("write", m.TInt)
	f.Locals("p", "pte", "phys", "pid")
	f.Code(func(b *m.Block) {
		b.Assign("p", m.Call("curProcAddr"))
		b.Assign("pid", m.LoadW(m.Addr("curpid", 0)))
		b.If(m.Eq(m.LoadW(m.Add(m.V("p"), m.I(PDiskPend))), m.I(2)), func(b *m.Block) {
			b.StoreW(m.Add(m.V("p"), m.I(PDiskPend)), m.I(0))
			b.Return(m.V("nsect"))
		}, nil)
		b.If(m.GtU(m.V("nsect"), m.I(BlockSectors)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.Assign("pte", m.LoadW(m.Call("pteAddr", m.V("pid"), m.V("uva"))))
		b.If(m.Eq(m.And(m.V("pte"), m.I(pteV)), m.I(0)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1))) // target page must be mapped
		}, nil)
		b.Assign("phys", m.Or(m.And(m.V("pte"), m.U(0xfffff000)),
			m.And(m.V("uva"), m.I(0xfff))))
		b.Call("dqPush", m.V("sector"), m.I(1), m.V("pid"))
		b.Call("diskIssue", m.V("sector"), m.V("phys"), m.V("nsect"), m.V("write"))
		b.StoreW(m.Add(m.V("p"), m.I(PDiskPend)), m.I(1))
		b.Call("sleepOn", m.U(0x7ffffff1)) // private channel; woken by pid
		b.Return(m.I(0))
	})
}
