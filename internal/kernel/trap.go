package kernel

import (
	"systrace/internal/cpu"
	"systrace/internal/isa"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
)

func buildTrap(k *m.Module, cfg Config) {
	// doInterrupt: acknowledge and service device interrupts.
	f := k.Func("doInterrupt", m.TVoid)
	f.Locals("ip")
	f.Code(func(b *m.Block) {
		b.Assign("ip", m.MFC0(isa.C0Cause))
		b.If(m.Ne(m.And(m.V("ip"), m.I(1<<(8+0))), m.I(0)), func(b *m.Block) {
			b.StoreW(m.U(clockAck), m.I(1))
			b.Call("clockTick")
		}, nil)
		b.If(m.Ne(m.And(m.V("ip"), m.I(1<<(8+1))), m.I(0)), func(b *m.Block) {
			b.Call("diskIntr")
		}, nil)
	})

	// ktrap: the common trap handler, called from the hand-written
	// entry with fromUser and the trapframe address.
	f = k.Func("ktrap", m.TVoid)
	f.Param("fromUser", m.TInt)
	f.Param("tf", m.TInt)
	f.Locals("cause", "bad", "w", "code")
	f.Code(func(b *m.Block) {
		b.Assign("cause", m.And(m.Shr(m.LoadW(m.Add(m.V("tf"), m.I(TFCause))), m.I(2)), m.I(31)))

		b.If(m.Eq(m.V("cause"), m.I(cpu.ExcInt)), func(b *m.Block) {
			b.Call("doInterrupt")
		}, func(b *m.Block) {
			b.If(m.Eq(m.V("cause"), m.I(cpu.ExcSyscall)), func(b *m.Block) {
				b.Call("doSyscall", m.V("tf"))
			}, func(b *m.Block) {
				b.If(m.Or(m.Eq(m.V("cause"), m.I(cpu.ExcTLBL)), m.Eq(m.V("cause"), m.I(cpu.ExcTLBS))), func(b *m.Block) {
					b.Assign("bad", m.LoadW(m.Add(m.V("tf"), m.I(TFBadVA))))
					b.If(m.GeU(m.V("bad"), m.U(PTBase)), func(b *m.Block) {
						b.Call("doKTLB", m.V("tf"))
					}, func(b *m.Block) {
						b.Call("doUserFault", m.V("tf"))
					})
				}, func(b *m.Block) {
					b.If(m.Eq(m.V("cause"), m.I(cpu.ExcBreak)), func(b *m.Block) {
						// Read the break code from the faulting
						// instruction's shamt field.
						b.Assign("w", m.LoadW(m.LoadW(m.Add(m.V("tf"), m.I(TFEPC)))))
						b.Assign("code", m.And(m.Shr(m.V("w"), m.I(6)), m.I(31)))
						b.If(m.Eq(m.V("code"), m.I(trace.BreakTraceFlush)), func(b *m.Block) {
							// The per-process buffer was already
							// flushed by the hand-written entry path;
							// just resume past the break.
							b.StoreW(m.Add(m.V("tf"), m.I(TFEPC)),
								m.Add(m.LoadW(m.Add(m.V("tf"), m.I(TFEPC))), m.I(4)))
						}, func(b *m.Block) {
							// Unexpected break: panic via the halt
							// register. A plain BREAK here would
							// re-enter this very handler forever.
							b.StoreW(m.U(haltReg), m.I(0x7001))
						})
					}, func(b *m.Block) {
						b.StoreW(m.U(haltReg), m.Add(m.I(0x7100), m.V("cause")))
					})
				})
			})
		})

		// Trace safe point: if the in-kernel buffer has passed its
		// soft limit, switch to trace-analysis mode (§3.3/§4.3).
		b.If(m.Ne(m.LoadW(m.Addr("traceon", 0)), m.I(0)), func(b *m.Block) {
			b.If(m.Or(
				m.GeU(m.LoadW(m.Addr("kbook", trace.BookBufPtr)),
					m.LoadW(m.Addr("kbook", trace.BookBufEnd))),
				m.Ne(m.LoadW(m.Addr("kbook", trace.BookFullFlag)), m.I(0))),
				func(b *m.Block) {
					b.Call("runAnalysis")
				}, nil)
		}, nil)

		// Scheduling: only when returning to user level.
		b.If(m.Eq(m.V("fromUser"), m.I(0)), func(b *m.Block) {
			b.Return(nil)
		}, nil)
		b.If(m.Ne(m.LoadW(m.Addr("restartsys", 0)), m.I(0)), func(b *m.Block) {
			b.StoreW(m.Addr("restartsys", 0), m.I(0))
		}, nil)
		b.If(m.Ne(m.LoadW(m.LoadW(m.Addr("curproc", 0))), m.I(stRunnable)), func(b *m.Block) {
			// Current process slept, blocked on IPC, or exited.
			b.Call("schedPick")
		}, func(b *m.Block) {
			b.If(m.Ne(m.LoadW(m.Addr("needresched", 0)), m.I(0)), func(b *m.Block) {
				b.StoreW(m.Addr("needresched", 0), m.I(0))
				b.Call("schedPick")
			}, nil)
		})
	})
}

func buildMain(k *m.Module, cfg Config) {
	f := k.Func("kmain", m.TVoid)
	f.Locals("bi", "i", "rec", "p", "pid", "sv", "np")
	f.Code(func(b *m.Block) {
		b.Assign("bi", m.U(BootInfoVA))
		b.If(m.Ne(m.LoadW(m.V("bi")), m.U(BootMagic)), func(b *m.Block) {
			b.StoreW(m.U(haltReg), m.I(0x7005)) // panic: bad boot info
		}, nil)
		b.StoreW(m.Addr("ramend", 0), m.LoadW(m.Add(m.V("bi"), m.I(BiRAMBytes))))
		b.StoreW(m.Addr("nextframe", 0), m.LoadW(m.Add(m.V("bi"), m.I(BiFramePool))))
		b.StoreW(m.Addr("flavor", 0), m.LoadW(m.Add(m.V("bi"), m.I(BiFlavor))))
		b.StoreW(m.Addr("pagepolicy", 0), m.LoadW(m.Add(m.V("bi"), m.I(BiPagePolicy))))
		b.StoreW(m.Addr("mapseed", 0), m.Or(m.LoadW(m.Add(m.V("bi"), m.I(BiMapSeed))), m.I(1)))
		b.StoreW(m.Addr("tlbdropin", 0), m.LoadW(m.Add(m.V("bi"), m.I(BiTLBDropin))))
		// The analysis program drains from the buffer's base, so the
		// generation reset in runAnalysis must return there too. Derive
		// the base from boot info rather than snapshotting the current
		// buffer pointer: by the time kmain runs, its own instrumented
		// prologue has already appended records, and a snapshot would
		// make every post-reset drain replay that boot prefix as stale
		// words (the mis-parse hazard of §4.3).
		b.If(m.Ne(m.LoadW(m.Add(m.V("bi"), m.I(BiTraceBufPhys))), m.I(0)), func(b *m.Block) {
			b.StoreW(m.Addr("tbufstart", 0),
				m.Or(m.LoadW(m.Add(m.V("bi"), m.I(BiTraceBufPhys))), m.U(cpu.KSeg0Base)))
			b.StoreW(m.Addr("traceon", 0), m.I(1))
		}, nil)

		// Mount the file system (monolithic kernel only; the Mach UX
		// server reads the disk itself).
		b.If(m.Eq(m.LoadW(m.Addr("flavor", 0)), m.I(int32(Ultrix))), func(b *m.Block) {
			b.Call("bootReadDir")
		}, nil)

		// Spawn boot processes.
		b.Assign("np", m.LoadW(m.Add(m.V("bi"), m.I(BiNProcs))))
		b.StoreW(m.Addr("nprocs", 0), m.V("np"))
		b.For("i", m.I(0), m.V("np"), func(b *m.Block) {
			b.Call("spawnProc", m.V("i"))
		})

		// Start the clock and dispatch the first process.
		b.StoreW(m.U(clockIntvl), m.LoadW(m.Add(m.V("bi"), m.I(BiClockInterval))))
		b.Call("schedPick")
		b.Call("kexit_user")
	})

	// spawnProc: build address space and trapframe from boot record i.
	// "Process creation was modified to initialize tracing data
	// structures" (§3.1).
	f = k.Func("spawnProc", m.TVoid)
	f.Param("i", m.TInt)
	f.Locals("rec", "p", "pid", "sv", "bssPages", "fd")
	f.Code(func(b *m.Block) {
		b.Assign("rec", m.Add(m.U(BootInfoVA+BiProcBase), m.Mul(m.V("i"), m.I(BiProcStride))))
		b.Assign("pid", m.Add(m.V("i"), m.I(1)))
		b.Assign("p", procAddr(m.V("pid")))
		b.StoreW(m.V("p"), m.I(stRunnable))
		b.StoreW(m.Add(m.V("p"), m.I(PPid)), m.V("pid"))
		b.StoreW(m.Add(m.V("p"), m.I(PQuantum)), m.I(Quantum))
		b.StoreW(m.Add(m.V("p"), m.I(PMsgOp)), m.Neg(m.I(1)))
		b.StoreW(m.Addr("nrunnable", 0), m.Add(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))

		b.If(m.Ne(m.LoadW(m.Add(m.V("rec"), m.I(BiProcIsServer))), m.I(0)), func(b *m.Block) {
			b.StoreW(m.Add(m.V("p"), m.I(PIsServer)), m.I(1))
			b.StoreW(m.Addr("serverpid", 0), m.V("pid"))
		}, func(b *m.Block) {
			b.StoreW(m.Addr("nlive", 0), m.Add(m.LoadW(m.Addr("nlive", 0)), m.I(1)))
		})

		// Map the boot image segments in place.
		b.Call("mapRange", m.V("pid"),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcTextVA))),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcTextPhys))),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcTextBytes))))
		b.Call("mapRange", m.V("pid"),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcDataVA))),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcDataPhys))),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcDataBytes))))
		// BSS and stack get fresh zeroed frames. The head of the BSS
		// may share its page with the tail of initialized data (whose
		// frame is already zero there); mapping starts at the next
		// page boundary.
		f.Locals("bssVA", "bssEnd", "bssStart")
		b.Assign("bssVA", m.LoadW(m.Add(m.V("rec"), m.I(BiProcBSSVA))))
		b.Assign("bssEnd", m.And(m.Add(m.Add(m.V("bssVA"),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcBSSBytes)))), m.I(4095)), m.U(0xfffff000)))
		b.Assign("bssStart", m.And(m.Add(m.V("bssVA"), m.I(4095)), m.U(0xfffff000)))
		b.Call("allocMap", m.V("pid"), m.V("bssStart"),
			m.Shr(m.Sub(m.V("bssEnd"), m.V("bssStart")), m.I(12)))
		b.Call("allocMap", m.V("pid"),
			m.U(UserStackTop-UserStackPages*4096), m.I(UserStackPages))
		b.StoreW(m.Add(m.V("p"), m.I(PBrk)), m.V("bssEnd"))

		// Trace pages: the Ultrix kernel checks the traced flag in
		// the executable image at exec time (§3.6); Mach maps them
		// lazily on first touch (doUserFault).
		b.If(m.And(m.Ne(m.LoadW(m.Add(m.V("rec"), m.I(BiProcTraced))), m.I(0)),
			m.Ne(m.LoadW(m.Addr("traceon", 0)), m.I(0))), func(b *m.Block) {
			b.StoreW(m.Add(m.V("p"), m.I(PTraced)), m.I(1))
			b.If(m.Eq(m.LoadW(m.Addr("flavor", 0)), m.I(int32(Ultrix))), func(b *m.Block) {
				b.Call("allocMap", m.V("pid"), m.U(trace.UserTraceVA),
					m.I((trace.BookSize+trace.UserBufBytes+4095)/4096))
			}, nil)
		}, nil)

		// Fabricated trapframe: entry point, stack, user mode with
		// interrupts enabled.
		b.Assign("sv", m.Add(m.V("p"), m.I(PSave)))
		b.StoreW(m.Add(m.V("sv"), m.I(TFEPC)),
			m.LoadW(m.Add(m.V("rec"), m.I(BiProcEntry))))
		b.StoreW(m.Add(m.V("sv"), m.I(TFRegs+(isa.RegSP-1)*4)), m.U(UserStackTop-16))
		b.StoreW(m.Add(m.V("sv"), m.I(TFStatus)), m.I(userStatus))
		b.StoreW(m.Add(m.V("sv"), m.I(TFEntryHi)), m.Shl(m.V("pid"), m.I(6)))
		// Initialize the per-process file descriptor table.
		b.For("fd", m.I(0), m.I(NFD), func(b *m.Block) {
			b.StoreW(m.Add(m.Add(m.V("p"), m.I(PFDBase)), m.Mul(m.V("fd"), m.I(FDStride))), m.Neg(m.I(1)))
		})
	})
}
