package kernel

import (
	"systrace/internal/asm"
	"systrace/internal/cpu"
	"systrace/internal/isa"
	"systrace/internal/obj"
	"systrace/internal/trace"
)

// VectorsObj builds the hand-written assembly object that must be the
// first object of the kernel link: the UTLB refill handler at text
// offset 0 (vector 0x80000000), the general exception vector at 0x80,
// the exception entry/exit paths, and — in traced kernels — the
// hand-instrumented trace-state maintenance: flushing the current
// process's trace buffer into the in-kernel buffer on every kernel
// entry, writing the stream markers, and keeping the nested-exception
// trace state consistent (§3.3: "the exception handling mechanism in
// the kernel must be modified to correctly handle trace state").
func VectorsObj(traced bool) *obj.File {
	a := asm.New("vectors")

	// ---- UTLB refill handler at offset 0 ----
	//
	// The classic nine-instruction refill plus the user-TLB miss
	// counter the validation kernel carries (§5.2). k1 holds the
	// faulting EPC from the first instruction so the double-fault
	// path in the general handler can restart the user instruction;
	// `at` may be live in user code (register-stealing sequences), so
	// it is saved through a kernel scratch slot around the counter
	// update.
	a.Func("utlb_refill", asm.UTLBHandler)
	a.I(isa.MFC0(isa.RegK1, isa.C0EPC))
	a.I(isa.MFC0(isa.RegK0, isa.C0Context))
	a.I(isa.LW(isa.RegK0, isa.RegK0, 0)) // PTE load; may KTLB-miss (restartable)
	a.I(isa.MTC0(isa.RegK0, isa.C0EntryLo))
	a.LA(isa.RegK0, "utlb_scratch", 0)
	a.I(isa.SW(isa.RegAT, isa.RegK0, 4)) // preserve at
	a.I(isa.LW(isa.RegAT, isa.RegK0, 0))
	a.I(isa.ADDIU(isa.RegAT, isa.RegAT, 1))
	a.I(isa.SW(isa.RegAT, isa.RegK0, 0))
	a.I(isa.LW(isa.RegAT, isa.RegK0, 4))
	a.I(isa.TLBWR())
	a.I(isa.JR(isa.RegK1))
	a.I(isa.RFE()) // delay slot

	// ---- General exception vector at 0x80 ----
	a.PadTo(0x80)
	a.Label("general_vector")
	a.JmpSym("kentry")
	a.I(isa.NOP)

	// ---- Kernel boot entry ----
	a.Func("_start", asm.NoInstrument)
	a.LI(isa.RegSP, KStackTop)
	if traced {
		// Initialize the kernel trace bookkeeping from the boot info
		// before any instrumented kernel code runs.
		a.LI(isa.RegT0, BootInfoVA)
		a.I(isa.LW(isa.RegT1, isa.RegT0, BiTraceBufPhys))
		a.LI(isa.RegT2, cpu.KSeg0Base)
		a.I(isa.OR(isa.RegT1, isa.RegT1, isa.RegT2)) // buffer VA
		a.LA(isa.XReg3, "kbook", 0)
		a.I(isa.SW(isa.RegT1, isa.XReg3, trace.BookBufPtr))
		a.I(isa.LW(isa.RegT3, isa.RegT0, BiTraceBufBytes))
		a.I(isa.ADDU(isa.RegT3, isa.RegT1, isa.RegT3))
		a.LI(isa.RegT4, trace.KernelBufSlack)
		a.I(isa.SUBU(isa.RegT3, isa.RegT3, isa.RegT4))
		a.I(isa.SW(isa.RegT3, isa.XReg3, trace.BookBufEnd))
		a.I(isa.SW(isa.RegZero, isa.XReg3, trace.BookFullFlag))
	}
	a.JalSym("kmain")
	a.I(isa.NOP)
	a.I(isa.BREAK(30)) // kmain never returns
	a.I(isa.NOP)

	// ---- General exception entry ----
	a.Func("kentry", asm.NoInstrument)
	a.I(isa.MFC0(isa.RegK0, isa.C0Status))
	a.I(isa.ANDI(isa.RegK0, isa.RegK0, cpu.StKUp))
	a.Br(isa.BNE(isa.RegK0, isa.RegZero, 0), "kentry_user")
	a.I(isa.NOP)

	// From kernel mode. If the fault came from inside the UTLB refill
	// handler, k1 still holds the faulting user EPC (it must reach
	// the trapframe unharmed for the restart) and the stack pointer
	// is still the user's: stash it in a kernel scratch slot and
	// switch to the kernel stack, which is idle at that point. The
	// EPC range test uses only k0: shifting out the top bit maps
	// 0x80000000..0x8000007f onto 0x0..0xfe.
	a.I(isa.MFC0(isa.RegK0, isa.C0EPC))
	a.I(isa.SLL(isa.RegK0, isa.RegK0, 1))
	a.I(isa.SLTIU(isa.RegK0, isa.RegK0, 0x100))
	a.Br(isa.BEQ(isa.RegK0, isa.RegZero, 0), "kentry_kstack")
	a.I(isa.NOP)
	a.LA(isa.RegK0, "utlb_scratch", 0)
	a.I(isa.SW(isa.RegSP, isa.RegK0, 8)) // preserve user sp
	a.LI(isa.RegSP, KStackTop-TFSize)
	saveFrame(a, isa.RegSP) // saves k1 = original user EPC
	a.LA(isa.RegK0, "utlb_scratch", 0)
	a.I(isa.LW(isa.RegK0, isa.RegK0, 8))
	a.I(isa.SW(isa.RegK0, isa.RegSP, TFRegs+(29-1)*4)) // the real (user) sp
	a.Jmp("kentry_common_kernel")
	a.I(isa.NOP)

	a.Label("kentry_kstack")
	a.I(isa.ADDIU(isa.RegSP, isa.RegSP, uint16(0x10000-TFSize)))
	saveFrame(a, isa.RegSP)
	a.I(isa.ADDIU(isa.RegK1, isa.RegSP, TFSize))
	a.I(isa.SW(isa.RegK1, isa.RegSP, TFRegs+(29-1)*4)) // pre-push sp

	a.Label("kentry_common_kernel")
	saveCP0(a, isa.RegSP)
	if traced {
		// The interrupted context's xreg3 (a user process's trace
		// bookkeeping, or mid-kernel state) is in the trapframe; the
		// kernel's own instrumented code needs the kernel bookkeeping.
		a.LA(isa.XReg3, "kbook", 0)
		a.JalSym("ktrace_nest_enter")
		a.I(isa.NOP)
	}
	a.I(isa.ORI(isa.RegA0, isa.RegZero, 0)) // fromUser = 0
	a.I(isa.ORI(isa.RegA1, isa.RegSP, 0))   // trapframe = stack frame
	a.JalSym("ktrap")
	a.I(isa.NOP)
	if traced {
		a.JalSym("ktrace_nest_exit")
		a.I(isa.NOP)
	}
	// Restore from the stack frame (k1 = frame base survives).
	a.I(isa.OR(isa.RegK1, isa.RegSP, isa.RegZero))
	restoreFrame(a, isa.RegK1)

	// From user mode: save into the current process's save area.
	a.Func("kentry_user", asm.NoInstrument)
	a.LA(isa.RegK1, "cursave", 0)
	a.I(isa.LW(isa.RegK1, isa.RegK1, 0))
	saveFrame(a, isa.RegK1)
	saveCP0(a, isa.RegK1)
	a.LI(isa.RegSP, KStackTop)
	if traced {
		a.LA(isa.XReg3, "kbook", 0)
		a.JalSym("ktrace_user_enter")
		a.I(isa.NOP)
	}
	a.I(isa.ORI(isa.RegA0, isa.RegZero, 1)) // fromUser = 1
	a.LA(isa.RegA1, "cursave", 0)
	a.I(isa.LW(isa.RegA1, isa.RegA1, 0))
	a.JalSym("ktrap")
	a.I(isa.NOP)

	// ---- Return to user (also the boot-time first dispatch) ----
	a.Func("kexit_user", asm.NoInstrument)
	if traced {
		a.JalSym("ktrace_user_exit")
		a.I(isa.NOP)
	}
	a.LA(isa.RegK0, "curentryhi", 0)
	a.I(isa.LW(isa.RegK0, isa.RegK0, 0))
	a.I(isa.MTC0(isa.RegK0, isa.C0EntryHi))
	a.LA(isa.RegK1, "cursave", 0)
	a.I(isa.LW(isa.RegK1, isa.RegK1, 0))
	restoreFrame(a, isa.RegK1)

	// idle_pause: the only window where the kernel runs with
	// interrupts enabled outside trace control. It is uninstrumented,
	// so an interrupt can never land in the middle of an in-flight
	// kernel bbtrace/memtrace pointer update.
	a.Func("idle_pause", asm.NoInstrument)
	a.I(isa.MFC0(isa.RegT0, isa.C0Status))
	a.I(isa.ORI(isa.RegT1, isa.RegT0, 1))
	a.I(isa.MTC0(isa.RegT1, isa.C0Status)) // IEc on
	for i := 0; i < 6; i++ {
		a.I(isa.NOP) // pending interrupts land here
	}
	a.I(isa.MTC0(isa.RegT0, isa.C0Status)) // IEc back off
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)

	if traced {
		emitTraceHelpers(a)
	}
	f := a.MustFinish()
	return f
}

// saveFrame stores r1..r31 (k-registers included for slot symmetry)
// into the trapframe at base (which must be k1 or sp and is skipped
// appropriately: the base register's own slot is stored like the rest;
// for sp-based frames the caller fixes the sp slot afterwards).
func saveFrame(a *asm.Assembler, base int) {
	for r := 1; r <= 31; r++ {
		if r == base || r == isa.RegK0 {
			continue
		}
		a.I(isa.SW(r, base, uint16(TFRegs+(r-1)*4)))
	}
	a.I(isa.MFHI(isa.RegK0))
	a.I(isa.SW(isa.RegK0, base, TFHi))
	a.I(isa.MFLO(isa.RegK0))
	a.I(isa.SW(isa.RegK0, base, TFLo))
}

// saveCP0 stores EPC/Status/Cause/BadVAddr.
func saveCP0(a *asm.Assembler, base int) {
	a.I(isa.MFC0(isa.RegK0, isa.C0EPC))
	a.I(isa.SW(isa.RegK0, base, TFEPC))
	a.I(isa.MFC0(isa.RegK0, isa.C0Status))
	a.I(isa.SW(isa.RegK0, base, TFStatus))
	a.I(isa.MFC0(isa.RegK0, isa.C0Cause))
	a.I(isa.SW(isa.RegK0, base, TFCause))
	a.I(isa.MFC0(isa.RegK0, isa.C0BadVAddr))
	a.I(isa.SW(isa.RegK0, base, TFBadVA))
	a.I(isa.MFC0(isa.RegK0, isa.C0EntryHi))
	a.I(isa.SW(isa.RegK0, base, TFEntryHi))
}

// restoreFrame reloads the trapframe at k1-held base and returns via
// rfe. Clobbers k0; k1 must be the base. The interrupted context's
// address space (EntryHi, and the matching Context page-table base) is
// restored first, using `at` before the general registers come back.
func restoreFrame(a *asm.Assembler, base int) {
	a.I(isa.LW(isa.RegK0, base, TFEntryHi))
	a.I(isa.MTC0(isa.RegK0, isa.C0EntryHi))
	a.I(isa.ANDI(isa.RegK0, isa.RegK0, cpu.ASIDMask))
	a.I(isa.SLL(isa.RegK0, isa.RegK0, PTSpanShift-cpu.ASIDShift))
	a.I(isa.LUI(isa.RegAT, uint16(PTBase>>16)))
	a.I(isa.ADDU(isa.RegK0, isa.RegK0, isa.RegAT))
	a.I(isa.MTC0(isa.RegK0, isa.C0Context))
	a.I(isa.LW(isa.RegK0, base, TFHi))
	a.I(isa.MTHI(isa.RegK0))
	a.I(isa.LW(isa.RegK0, base, TFLo))
	a.I(isa.MTLO(isa.RegK0))
	for r := 1; r <= 31; r++ {
		if r == isa.RegK0 || r == isa.RegK1 {
			continue
		}
		a.I(isa.LW(r, base, uint16(TFRegs+(r-1)*4)))
	}
	a.I(isa.LW(isa.RegK0, base, TFStatus))
	a.I(isa.MTC0(isa.RegK0, isa.C0Status))
	a.I(isa.LW(isa.RegK0, base, TFEPC))
	a.I(isa.JR(isa.RegK0))
	a.I(isa.RFE()) // delay slot
}

// emitTraceHelpers writes the hand-instrumented trace-state paths of
// the traced kernel: user-buffer flush plus stream markers. These run
// with all program registers saved, so they may use a/t registers
// freely; they never touch k0/k1 across a potentially faulting user
// access.
func emitTraceHelpers(a *asm.Assembler) {
	// ktrace_user_enter: copy the per-process buffer into the
	// in-kernel buffer ("available trace is copied into the kernel
	// each time the kernel is activated", §3.1), reset it, and write
	// the kernel-enter marker.
	a.Func("ktrace_user_enter", asm.NoInstrument)
	a.LA(isa.RegT0, "traceon", 0)
	a.I(isa.LW(isa.RegT0, isa.RegT0, 0))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "kue_ret")
	a.I(isa.NOP)
	a.LA(isa.RegT0, "curtraced", 0)
	a.I(isa.LW(isa.RegT0, isa.RegT0, 0))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "kue_ret")
	a.I(isa.NOP)
	a.LI(isa.RegA0, trace.UserTraceVA)
	a.I(isa.LW(isa.RegA1, isa.RegA0, trace.BookBufPtr))
	a.I(isa.ADDIU(isa.RegA2, isa.RegA0, trace.BookSize))
	a.LA(isa.RegA3, "kbook", 0)
	// Guard: the process may not have initialized its bookkeeping yet
	// (interrupted before crt0 ran); treat out-of-range pointers as an
	// empty buffer.
	a.I(isa.SLTU(isa.RegT0, isa.RegA1, isa.RegA2))
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "kue_marker")
	a.I(isa.NOP)
	a.LI(isa.RegT0, trace.UserTraceVA+trace.BookSize+trace.UserBufBytes)
	a.I(isa.SLTU(isa.RegT0, isa.RegT0, isa.RegA1))
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "kue_marker")
	a.I(isa.NOP)
	// If the interrupted context is inside bbtrace/memtrace (busy
	// flag set), it holds the buffer pointer in a register: resetting
	// the buffer under it would lose or duplicate entries. Skip this
	// flush; the next kernel entry takes it.
	a.I(isa.LW(isa.RegT0, isa.RegA0, trace.BookBusy))
	a.Br(isa.BNE(isa.RegT0, isa.RegZero, 0), "kue_marker")
	a.I(isa.NOP)
	// The user-word load can fault (a page-table KTLB double fault
	// nests a general exception that itself appends kernel trace), so
	// the kernel buffer pointer is reloaded *after* every faultable
	// access and written back in the same fault-free window — keeping
	// the buffer consistent under arbitrary nesting (§3.3).
	a.Label("kue_loop")
	a.Br(isa.BEQ(isa.RegA2, isa.RegA1, 0), "kue_done")
	a.I(isa.NOP)
	a.I(isa.LW(isa.RegT2, isa.RegA2, 0)) // user trace word (faultable)
	a.I(isa.ADDIU(isa.RegA2, isa.RegA2, 4))
	a.I(isa.LW(isa.RegT1, isa.RegA3, trace.BookBufPtr))
	a.I(isa.SW(isa.RegT2, isa.RegT1, 0))
	a.I(isa.ADDIU(isa.RegT1, isa.RegT1, 4))
	a.Jmp("kue_loop")
	a.I(isa.SW(isa.RegT1, isa.RegA3, trace.BookBufPtr)) // delay slot
	a.Label("kue_done")
	a.I(isa.ADDIU(isa.RegT2, isa.RegA0, trace.BookSize))
	a.I(isa.SW(isa.RegT2, isa.RegA0, trace.BookBufPtr)) // reset user buffer
	a.Label("kue_marker")
	a.I(isa.LW(isa.RegT1, isa.RegA3, trace.BookBufPtr))
	a.I(isa.LUI(isa.RegT2, uint16(trace.MarkKernEnter>>16)))
	a.I(isa.SW(isa.RegT2, isa.RegT1, 0))
	a.I(isa.ADDIU(isa.RegT1, isa.RegT1, 4))
	a.I(isa.SW(isa.RegT1, isa.RegA3, trace.BookBufPtr))
	a.Label("kue_ret")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)

	// ktrace_user_exit: mark the return to user with the resuming
	// pid, so the parser attributes the following user records.
	a.Func("ktrace_user_exit", asm.NoInstrument)
	a.LA(isa.RegT0, "traceon", 0)
	a.I(isa.LW(isa.RegT0, isa.RegT0, 0))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "kux_ret")
	a.I(isa.NOP)
	a.LA(isa.RegT1, "curpid", 0)
	a.I(isa.LW(isa.RegT1, isa.RegT1, 0))
	a.I(isa.LUI(isa.RegT2, uint16(trace.MarkKernExit>>16)))
	a.I(isa.OR(isa.RegT2, isa.RegT2, isa.RegT1))
	emitKbufStore(a, "kux")
	a.Label("kux_ret")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)

	// Nested exception markers keep the parser's block-state stack in
	// step with the kernel's own nesting (§3.5).
	a.Func("ktrace_nest_enter", asm.NoInstrument)
	a.LA(isa.RegT0, "traceon", 0)
	a.I(isa.LW(isa.RegT0, isa.RegT0, 0))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "kne_ret")
	a.I(isa.NOP)
	a.I(isa.LUI(isa.RegT2, uint16(trace.MarkExcEnter>>16)))
	emitKbufStore(a, "kne")
	a.Label("kne_ret")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)

	a.Func("ktrace_nest_exit", asm.NoInstrument)
	a.LA(isa.RegT0, "traceon", 0)
	a.I(isa.LW(isa.RegT0, isa.RegT0, 0))
	a.Br(isa.BEQ(isa.RegT0, isa.RegZero, 0), "knx_ret")
	a.I(isa.NOP)
	a.I(isa.LUI(isa.RegT2, uint16(trace.MarkExcExit>>16)))
	emitKbufStore(a, "knx")
	a.Label("knx_ret")
	a.I(isa.JR(isa.RegRA))
	a.I(isa.NOP)
}

// emitKbufStore appends the word in t2 to the in-kernel buffer
// (clobbers t0, t1).
func emitKbufStore(a *asm.Assembler, tag string) {
	a.LA(isa.RegT0, "kbook", 0)
	a.I(isa.LW(isa.RegT1, isa.RegT0, trace.BookBufPtr))
	a.I(isa.SW(isa.RegT2, isa.RegT1, 0))
	a.I(isa.ADDIU(isa.RegT1, isa.RegT1, 4))
	a.I(isa.SW(isa.RegT1, isa.RegT0, trace.BookBufPtr))
	_ = tag
}
