package kernel

import (
	"fmt"

	"systrace/internal/epoxie"
	"systrace/internal/link"
	m "systrace/internal/mahler"
	"systrace/internal/obj"
)

// Build compiles and links a kernel. Traced kernels are instrumented
// by epoxie with the kernel-variant runtime (which cannot trap on
// buffer full and instead raises the full flag and writes into the
// slack region, §3.3).
func Build(cfg Config) (*obj.Executable, error) {
	mod := Module(cfg)
	kobj, err := mod.Compile(m.Options{})
	if err != nil {
		return nil, fmt.Errorf("kernel: %w", err)
	}
	objs := []*obj.File{VectorsObj(cfg.Traced), kobj}
	lopt := link.Options{
		Name:     "vmunix-" + cfg.Flavor.String(),
		Entry:    "_start",
		TextBase: KernelTextVA,
		DataBase: KernelDataVA,
	}
	var exe *obj.Executable
	if cfg.Traced {
		b, err := epoxie.BuildInstrumented(objs, lopt, epoxie.Config{Flow: cfg.Flow}, epoxie.KernelRuntime)
		if err != nil {
			return nil, fmt.Errorf("kernel: %w", err)
		}
		exe = b.Instr
	} else {
		exe, err = link.Link(objs, lopt)
		if err != nil {
			return nil, fmt.Errorf("kernel: %w", err)
		}
	}
	if exe.TextEnd() > KernelTextVA+0x180000 {
		return nil, fmt.Errorf("kernel: text too large (ends 0x%x)", exe.TextEnd())
	}
	if exe.BSSEnd() > BootInfoVA {
		return nil, fmt.Errorf("kernel: data+bss too large (ends 0x%x)", exe.BSSEnd())
	}
	return exe, nil
}
