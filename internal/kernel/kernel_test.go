package kernel_test

import (
	"sort"
	"strings"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/kernel"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
	"systrace/internal/userland"
	"systrace/internal/workload"
)

// helloModule writes a line to the console and exits with a status.
func helloModule() *m.Module {
	mod := m.NewModule("hello")
	userland.DeclareLibc(mod)
	mod.Data("msg", []byte("hello, kernel world\n\x00"))
	f := mod.Func("main", m.TInt)
	f.Code(func(b *m.Block) {
		b.Call("puts", m.Addr("msg", 0))
		b.Return(m.I(42))
	})
	return mod
}

func TestBootHelloUltrix(t *testing.T) {
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix})
	if err != nil {
		t.Fatalf("kernel build: %v", err)
	}
	prog, err := userland.Build("hello", []*m.Module{helloModule()}, m.Options{})
	if err != nil {
		t.Fatalf("user build: %v", err)
	}
	disk, err := kernel.BuildDiskImage(map[string][]byte{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Orig}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50_000_000); err != nil {
		t.Fatalf("run: %v (console: %q)", err, sys.Console())
	}
	if !sys.M.Halted {
		t.Fatal("machine did not halt")
	}
	if got := sys.Console(); !strings.Contains(got, "hello, kernel world") {
		t.Fatalf("console = %q", got)
	}
}

// fileSumModule opens "data.bin", reads it in 512-byte chunks, and
// returns the byte sum.
func fileSumModule() *m.Module {
	mod := m.NewModule("filesum")
	userland.DeclareLibc(mod)
	mod.Data("path", []byte("data.bin\x00"))
	mod.Global("buf", 512)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "n", "i", "sum")
	f.Code(func(b *m.Block) {
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("sum", m.I(0))
		b.While(m.I(1), func(b *m.Block) {
			b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(512)))
			b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
			b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
				b.Assign("sum", m.Add(m.V("sum"), m.LoadB(m.Add(m.Addr("buf", 0), m.V("i")))))
			})
		})
		b.Call("sys_close", m.V("fd"))
		b.Return(m.V("sum"))
	})
	return mod
}

func testData() ([]byte, uint32) {
	data := make([]byte, 10000)
	var sum uint32
	for i := range data {
		data[i] = byte(i*7 + 3)
		sum += uint32(data[i])
	}
	return data, sum
}

// exit status is visible through the zombie's trapframe a0 slot.
func exitStatus(sys *kernel.System, pid int) uint32 {
	procs := sys.Kernel.MustSymbol("procs") - 0x80000000
	p := procs + uint32(pid-1)*kernel.ProcStride
	return sys.M.RAM.ReadWord(p + kernel.PSave + kernel.TFRegs + (4-1)*4) // a0
}

func bootAndRun(t *testing.T, flavor kernel.Flavor, traced bool, mods map[string]*m.Module, files map[string][]byte) *kernel.System {
	t.Helper()
	kexe, err := kernel.Build(kernel.Config{Flavor: flavor, Traced: traced})
	if err != nil {
		t.Fatalf("kernel build: %v", err)
	}
	var procs []kernel.BootProc
	if flavor == kernel.Mach {
		srv, err := userland.Build("ux", []*m.Module{userland.UXServer()}, m.Options{})
		if err != nil {
			t.Fatalf("server build: %v", err)
		}
		exe := srv.Orig
		if traced {
			exe = srv.Instr
		}
		procs = append(procs, kernel.BootProc{Exe: exe, IsServer: true})
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		prog, err := userland.Build(n, []*m.Module{mods[n]}, m.Options{})
		if err != nil {
			t.Fatalf("user build %s: %v", n, err)
		}
		exe := prog.Orig
		if traced {
			exe = prog.Instr
		}
		procs = append(procs, kernel.BootProc{Exe: exe})
	}
	disk, err := kernel.BuildDiskImage(files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(flavor)
	cfg.DiskImage = disk
	if traced {
		cfg.TraceBufBytes = 4 << 20
	}
	sys, err := kernel.Boot(kexe, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(400_000_000); err != nil {
		t.Fatalf("run: %v (console %q)", err, sys.Console())
	}
	if !sys.M.Halted {
		t.Fatal("machine did not halt")
	}
	return sys
}

func TestFileReadUltrix(t *testing.T) {
	data, sum := testData()
	sys := bootAndRun(t, kernel.Ultrix, false,
		map[string]*m.Module{"filesum": fileSumModule()},
		map[string][]byte{"data.bin": data})
	if got := exitStatus(sys, 1); got != sum {
		t.Errorf("file sum = %d, want %d", got, sum)
	}
}

func TestFileReadMach(t *testing.T) {
	data, sum := testData()
	sys := bootAndRun(t, kernel.Mach, false,
		map[string]*m.Module{"filesum": fileSumModule()},
		map[string][]byte{"data.bin": data})
	if got := exitStatus(sys, 2); got != sum {
		t.Errorf("file sum = %d, want %d", got, sum)
	}
}

// bootSys builds everything but does not run, so tests can attach the
// analysis program first. Returns the system and the per-pid side
// tables (pid 0 = kernel).
func bootSys(t *testing.T, flavor kernel.Flavor, traced bool, mods map[string]*m.Module, files map[string][]byte) (*kernel.System, map[int]*trace.SideTable) {
	t.Helper()
	kexe, err := kernel.Build(kernel.Config{Flavor: flavor, Traced: traced})
	if err != nil {
		t.Fatalf("kernel build: %v", err)
	}
	tables := map[int]*trace.SideTable{}
	if traced {
		tables[0] = trace.NewSideTable(kexe.Instr.Blocks)
	}
	var procs []kernel.BootProc
	addProg := func(name string, ms []*m.Module, server bool) {
		prog, err := userland.Build(name, ms, m.Options{})
		if err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		exe := prog.Orig
		if traced {
			exe = prog.Instr
			tables[len(procs)+1] = trace.NewSideTable(exe.Instr.Blocks)
		}
		procs = append(procs, kernel.BootProc{Exe: exe, IsServer: server})
	}
	if flavor == kernel.Mach {
		addProg("ux", []*m.Module{userland.UXServer()}, true)
	}
	names := make([]string, 0, len(mods))
	for n := range mods {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		addProg(n, []*m.Module{mods[n]}, false)
	}
	disk, err := kernel.BuildDiskImage(files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(flavor)
	cfg.DiskImage = disk
	if traced {
		cfg.TraceBufBytes = 4 << 20
		cfg.ClockInterval = 50_000 * 15 // time-dilation compensation
	}
	sys, err := kernel.Boot(kexe, procs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys, tables
}

func runTraced(t *testing.T, flavor kernel.Flavor, mods map[string]*m.Module, files map[string][]byte) (*kernel.System, *trace.Parser, []trace.Event) {
	t.Helper()
	sys, tables := bootSys(t, flavor, true, mods, files)
	p := trace.NewParser(tables[0])
	for pid, tab := range tables {
		if pid != 0 {
			p.AddProcess(pid, tab)
		}
	}
	var events []trace.Event
	var perr error
	sys.OnTrace = func(words []uint32) {
		if perr != nil {
			return
		}
		events, perr = p.Parse(words, events)
	}
	if err := sys.Run(3_000_000_000); err != nil {
		t.Fatalf("run: %v (console %q)", err, sys.Console())
	}
	if perr != nil {
		t.Fatalf("trace parse: %v", perr)
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("trace finish: %v", err)
	}
	return sys, p, events
}

func TestTracedUltrixSystem(t *testing.T) {
	data, sum := testData()
	sys, p, events := runTraced(t, kernel.Ultrix,
		map[string]*m.Module{"filesum": fileSumModule()},
		map[string][]byte{"data.bin": data})
	if got := exitStatus(sys, 1); got != sum {
		t.Errorf("traced run result %d want %d", got, sum)
	}
	if p.Records == 0 || p.MemRefs == 0 {
		t.Fatalf("no trace content: records=%d refs=%d", p.Records, p.MemRefs)
	}
	var kern, user, idle uint64
	for _, ev := range events {
		if ev.Kind != trace.EvIFetch {
			continue
		}
		if ev.Kernel {
			kern++
		} else {
			user++
		}
		if ev.Idle {
			idle++
		}
	}
	t.Logf("events=%d kernI=%d userI=%d idleI=%d records=%d modesw=%d ctx=%d maxnest=%d drained=%d",
		len(events), kern, user, idle, p.Records, p.ModeSws, p.CtxSws, p.MaxDepth, sys.DrainedWords)
	if kern == 0 || user == 0 {
		t.Error("trace must interleave kernel and user references")
	}
	if idle == 0 {
		t.Error("expected idle-loop instructions (disk waits) in the trace")
	}
}

func TestTracedMachSystem(t *testing.T) {
	data, sum := testData()
	sys, p, events := runTraced(t, kernel.Mach,
		map[string]*m.Module{"filesum": fileSumModule()},
		map[string][]byte{"data.bin": data})
	if got := exitStatus(sys, 2); got != sum {
		t.Errorf("traced run result %d want %d", got, sum)
	}
	var srv, client uint64
	for _, ev := range events {
		if ev.Kind == trace.EvIFetch && !ev.Kernel {
			if ev.Pid == 1 {
				srv++
			} else {
				client++
			}
		}
	}
	t.Logf("events=%d serverI=%d clientI=%d records=%d", len(events), srv, client, p.Records)
	if srv == 0 {
		t.Error("expected user-level UX server activity in the trace")
	}
}

// TestMultiProcessScheduling: two CPU-bound processes preempted by the
// clock must both complete with correct results.
func TestMultiProcessScheduling(t *testing.T) {
	spin := func(name string, n int32, ret int32) *m.Module {
		mod := m.NewModule(name)
		userland.DeclareLibc(mod)
		f := mod.Func("main", m.TInt)
		f.Locals("i", "acc")
		f.Code(func(b *m.Block) {
			b.Assign("acc", m.I(0))
			b.For("i", m.I(0), m.I(n), func(b *m.Block) {
				b.Assign("acc", m.Add(m.V("acc"), m.V("i")))
			})
			b.Return(m.Add(m.Mod(m.V("acc"), m.I(10000)), m.I(ret)))
		})
		return mod
	}
	sys := bootAndRun(t, kernel.Ultrix, false, map[string]*m.Module{
		"p1": spin("p1", 60000, 100000),
		"p2": spin("p2", 40000, 200000),
	}, nil)
	r1, r2 := exitStatus(sys, 1), exitStatus(sys, 2)
	if r1 != 100000+60000*59999/2%10000 {
		t.Errorf("p1 = %d", r1)
	}
	if r2 != 200000+40000*39999/2%10000 {
		t.Errorf("p2 = %d", r2)
	}
	if ticks := sys.ReadKernelWord("ticks"); ticks < 3 {
		t.Errorf("expected clock preemption, ticks=%d", ticks)
	}
}

// TestBrkGrowsHeap: sys_brk maps fresh zeroed pages.
func TestBrkGrowsHeap(t *testing.T) {
	mod := m.NewModule("heap")
	userland.DeclareLibc(mod)
	f := mod.Func("main", m.TInt)
	f.Locals("base", "p", "i", "sum")
	f.Code(func(b *m.Block) {
		b.Assign("base", m.Call("sys_brk", m.I(0))) // current break
		b.Assign("p", m.Call("sys_brk", m.Add(m.V("base"), m.I(3*4096))))
		b.If(m.LtU(m.V("p"), m.Add(m.V("base"), m.I(3*4096))), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		// Touch every new page.
		b.For("i", m.I(0), m.I(3*4096/4), func(b *m.Block) {
			b.StoreW(m.Add(m.V("base"), m.Mul(m.V("i"), m.I(4))), m.V("i"))
		})
		b.Assign("sum", m.I(0))
		b.For("i", m.I(0), m.I(3*4096/4), func(b *m.Block) {
			b.Assign("sum", m.Add(m.V("sum"), m.LoadW(m.Add(m.V("base"), m.Mul(m.V("i"), m.I(4))))))
		})
		b.Return(m.Mod(m.V("sum"), m.I(100000)))
	})
	sys := bootAndRun(t, kernel.Ultrix, false, map[string]*m.Module{"heap": mod}, nil)
	n := int64(3 * 4096 / 4)
	want := uint32(n * (n - 1) / 2 % 100000)
	if got := exitStatus(sys, 1); got != want {
		t.Errorf("heap sum %d want %d", got, want)
	}
}

// TestFileWriteUltrix: the conservative write policy pushes data to
// the disk image synchronously.
func TestFileWriteUltrix(t *testing.T) {
	mod := m.NewModule("writer")
	userland.DeclareLibc(mod)
	mod.Data("path", []byte("out.bin\x00"))
	mod.Global("buf", 256)
	f := mod.Func("main", m.TInt)
	f.Locals("fd", "i", "n")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(256), func(b *m.Block) {
			b.StoreB(m.Add(m.Addr("buf", 0), m.V("i")), m.Xor(m.V("i"), m.I(0x5a)))
		})
		b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
		b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
		b.Assign("n", m.Call("sys_write", m.V("fd"), m.Addr("buf", 0), m.I(256)))
		b.Call("sys_close", m.V("fd"))
		b.Return(m.V("n"))
	})
	out := make([]byte, 512)
	sys := bootAndRun(t, kernel.Ultrix, false,
		map[string]*m.Module{"writer": mod},
		map[string][]byte{"out.bin": out})
	if got := exitStatus(sys, 1); got != 256 {
		t.Fatalf("write returned %d", got)
	}
	// The bytes must be on the disk image itself (synchronous write).
	img := sys.M.Disk.Image
	// out.bin data begins at its directory start sector.
	// Find it through the directory (sector 1+).
	start := uint32(0)
	for i := 0; i < 64; i++ {
		e := kernel.DirEntrySize + i*kernel.DirEntrySize
		if string(img[e:e+7]) == "out.bin" {
			start = uint32(img[e+kernel.DirNameLen])<<24 | uint32(img[e+kernel.DirNameLen+1])<<16 |
				uint32(img[e+kernel.DirNameLen+2])<<8 | uint32(img[e+kernel.DirNameLen+3])
		}
	}
	if start == 0 {
		t.Fatal("out.bin not found in directory")
	}
	for i := 0; i < 256; i++ {
		if img[int(start)*kernel.SectorSize+i] != byte(i)^0x5a {
			t.Fatalf("disk byte %d = 0x%x", i, img[int(start)*kernel.SectorSize+i])
		}
	}
}

// TestUTLBCounter: the hardware miss counter advances under address
// space pressure.
func TestUTLBCounter(t *testing.T) {
	mod := m.NewModule("tlbpressure")
	userland.DeclareLibc(mod)
	mod.Global("big", 96*4096) // 96 pages > 64 TLB entries
	f := mod.Func("main", m.TInt)
	f.Locals("i", "pass", "sum")
	f.Code(func(b *m.Block) {
		b.Assign("sum", m.I(0))
		b.For("pass", m.I(0), m.I(3), func(b *m.Block) {
			b.For("i", m.I(0), m.I(96), func(b *m.Block) {
				b.Assign("sum", m.Add(m.V("sum"),
					m.LoadW(m.Add(m.Addr("big", 0), m.Mul(m.V("i"), m.I(4096))))))
			})
		})
		b.Return(m.Add(m.V("sum"), m.I(7)))
	})
	sys := bootAndRun(t, kernel.Ultrix, false, map[string]*m.Module{"tlb": mod}, nil)
	if got := sys.UTLBCount(); got < 96 {
		t.Errorf("UTLB counter %d, want >= 96 (working set exceeds the TLB)", got)
	}
}

// TestTraceCtlSyscall: user-level tracing control (§3.1).
func TestTraceCtlSyscall(t *testing.T) {
	mod := m.NewModule("tctl")
	userland.DeclareLibc(mod)
	f := mod.Func("main", m.TInt)
	f.Locals("i", "acc")
	f.Code(func(b *m.Block) {
		b.Call("sys_tracectl", m.I(kernel.TraceCtlOff))
		b.Assign("acc", m.I(0))
		b.For("i", m.I(0), m.I(1000), func(b *m.Block) {
			b.Assign("acc", m.Add(m.V("acc"), m.I(1)))
		})
		b.Call("sys_tracectl", m.I(kernel.TraceCtlOn))
		b.Return(m.V("acc"))
	})
	sys, tables := bootSys(t, kernel.Ultrix, true, map[string]*m.Module{"tctl": mod}, nil)
	p := trace.NewParser(tables[0])
	p.AddProcess(1, tables[1])
	var perr error
	sys.OnTrace = func(words []uint32) {
		if perr == nil {
			_, perr = p.Parse(words, nil)
		}
	}
	if err := sys.Run(400_000_000); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatalf("parse: %v", perr)
	}
	if got := exitStatus(sys, 1); got != 1000 {
		t.Errorf("result %d", got)
	}
	if p.ModeSws < 1 {
		t.Error("trace_ctl off/on should appear as mode boundaries")
	}
}

// TestMachMultiClient: several clients banging on the UX server
// concurrently, with scheduling interleave, each gets its own correct
// answer and descriptor state.
func TestMachMultiClient(t *testing.T) {
	data1, sum1 := testData()
	data2 := make([]byte, 5000)
	var sum2 uint32
	for i := range data2 {
		data2[i] = byte(i*3 + 1)
		sum2 += uint32(data2[i])
	}
	mk := func(name, path string) *m.Module {
		mod := m.NewModule(name)
		userland.DeclareLibc(mod)
		mod.Data("path", []byte(path+"\x00"))
		mod.Global("buf", 512)
		f := mod.Func("main", m.TInt)
		f.Locals("fd", "n", "i", "sum")
		f.Code(func(b *m.Block) {
			b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
			b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
			b.Assign("sum", m.I(0))
			b.While(m.I(1), func(b *m.Block) {
				b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(512)))
				b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
					b.Assign("sum", m.Add(m.V("sum"), m.LoadB(m.Add(m.Addr("buf", 0), m.V("i")))))
				})
			})
			b.Call("sys_close", m.V("fd"))
			b.Return(m.V("sum"))
		})
		return mod
	}
	sys := bootAndRun(t, kernel.Mach, false, map[string]*m.Module{
		"c1": mk("c1", "data.bin"),
		"c2": mk("c2", "other.bin"),
	}, map[string][]byte{"data.bin": data1, "other.bin": data2})
	// pid 1 = server, clients in sorted name order: c1=2, c2=3.
	if got := exitStatus(sys, 2); got != sum1 {
		t.Errorf("client 1 sum %d want %d", got, sum1)
	}
	if got := exitStatus(sys, 3); got != sum2 {
		t.Errorf("client 2 sum %d want %d", got, sum2)
	}
}

// TestTracedMultiProcess: two traced processes plus the traced kernel;
// the parser must attribute every stream correctly across context
// switches.
func TestTracedMultiProcess(t *testing.T) {
	spin := func(name string, n int32) *m.Module {
		mod := m.NewModule(name)
		userland.DeclareLibc(mod)
		f := mod.Func("main", m.TInt)
		f.Locals("i", "acc")
		f.Code(func(b *m.Block) {
			b.Assign("acc", m.I(0))
			b.For("i", m.I(0), m.I(n), func(b *m.Block) {
				b.Assign("acc", m.Add(m.V("acc"), m.I(3)))
			})
			b.Return(m.V("acc"))
		})
		return mod
	}
	sys, tables := bootSys(t, kernel.Ultrix, true, map[string]*m.Module{
		"pa": spin("pa", 30000),
		"pb": spin("pb", 20000),
	}, nil)
	p := trace.NewParser(tables[0])
	p.AddProcess(1, tables[1])
	p.AddProcess(2, tables[2])
	perPid := map[int16]uint64{}
	var perr error
	sys.OnTrace = func(words []uint32) {
		if perr != nil {
			return
		}
		var evs []trace.Event
		evs, perr = p.Parse(words, nil)
		for _, ev := range evs {
			if !ev.Kernel && ev.Kind == trace.EvIFetch {
				perPid[ev.Pid]++
			}
		}
	}
	if err := sys.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	if exitStatus(sys, 1) != 90000 || exitStatus(sys, 2) != 60000 {
		t.Errorf("results %d/%d", exitStatus(sys, 1), exitStatus(sys, 2))
	}
	if perPid[1] == 0 || perPid[2] == 0 {
		t.Fatalf("missing per-process trace: %v", perPid)
	}
	// The longer process must have proportionally more trace.
	if perPid[1] <= perPid[2] {
		t.Errorf("expected pid1 > pid2 fetches: %v", perPid)
	}
}

// TestSmallTraceBufferBounded is the §4.3 slack-region invariant as a
// regression test: with the smallest sensible in-kernel buffer the
// generation/analysis switch fires constantly, and the buffer pointer
// must never pass the buffer's hard end — one full per-process flush
// plus one handler's own trace must always fit in the slack. (A
// violation here once sprayed trace words over the first user text
// frame, which sits immediately after the buffer in physical memory.)
func TestSmallTraceBufferBounded(t *testing.T) {
	spec, ok := workload.ByName("egrep")
	if !ok {
		t.Fatal("egrep workload missing")
	}
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := userland.Build(spec.Name, []*m.Module{spec.Build()}, m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := kernel.BuildDiskImage(spec.Files)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = trace.KernelBufSlack + 64<<10
	cfg.ClockInterval *= 15
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Instr}}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	p := trace.NewParser(trace.NewSideTable(kexe.Instr.Blocks))
	p.AddProcess(1, trace.NewSideTable(prog.Instr.Instr.Blocks))
	var perr error
	sys.OnTrace = func(words []uint32) {
		if perr == nil {
			_, perr = p.Parse(words, nil)
		}
	}

	kb := kexe.MustSymbol("kbook") - cpu.KSeg0Base
	hardEnd := uint32(kernel.TraceBufVA) + cfg.TraceBufBytes
	for i := 0; i < 400 && !sys.M.Halted; i++ {
		if err := sys.Run(2_000_000); err != nil &&
			!strings.Contains(err.Error(), "budget") {
			t.Fatalf("slice %d: %v", i, err)
		}
		if ptr := sys.M.RAM.ReadWord(kb); ptr > hardEnd {
			t.Fatalf("slice %d: buffer pointer 0x%x past hard end 0x%x", i, ptr, hardEnd)
		}
	}
	if !sys.M.Halted {
		t.Fatal("system did not finish")
	}
	if sys.M.ExitStatus != 0 {
		t.Fatalf("kernel panic 0x%x (console %q)", sys.M.ExitStatus, sys.Console())
	}
	if sys.Doorbells < 5 {
		t.Fatalf("expected many analysis phases with a minimal buffer, got %d", sys.Doorbells)
	}
	if perr != nil {
		t.Fatalf("trace parse: %v", perr)
	}
	if err := p.Finish(); err != nil {
		t.Fatalf("trace finish: %v", err)
	}
}

// TestUnhandledExceptionPanics: an exception class the kernel has no
// handler for must stop the machine through the halt register with a
// diagnosable status — not re-enter the trap handler. (The old path
// executed BREAK on the kernel stack, whose exception is itself
// "unexpected", recursing forever and spraying nest markers over the
// trace buffer.)
func TestUnhandledExceptionPanics(t *testing.T) {
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := userland.Build("hello", []*m.Module{helloModule()}, m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Plant a reserved opcode at main's entry.
	va := prog.Orig.MustSymbol("main")
	prog.Orig.Text[(va-prog.Orig.TextBase)/4] = 0xfc000000
	disk, err := kernel.BuildDiskImage(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Orig}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !sys.M.Halted {
		t.Fatal("machine did not halt on the unhandled exception")
	}
	if sys.M.ExitStatus != 0x7100+10 {
		t.Fatalf("halt status 0x%x, want 0x%x (panic + cause 10)", sys.M.ExitStatus, 0x7100+10)
	}
}

// TestTracedMachMultiClient is the hardest configuration in the paper:
// the traced microkernel, the traced UX server, and two traced clients
// whose file reads become IPC — context switches, cross-address-space
// copies, trace-page first-touch faults, and nested exceptions all in
// one stream that the parser must attribute exactly.
func TestTracedMachMultiClient(t *testing.T) {
	data1, sum1 := testData()
	data2 := make([]byte, 5000)
	var sum2 uint32
	for i := range data2 {
		data2[i] = byte(i*3 + 1)
		sum2 += uint32(data2[i])
	}
	mk := func(name, path string) *m.Module {
		mod := m.NewModule(name)
		userland.DeclareLibc(mod)
		mod.Data("path", []byte(path+"\x00"))
		mod.Global("buf", 512)
		f := mod.Func("main", m.TInt)
		f.Locals("fd", "n", "i", "sum")
		f.Code(func(b *m.Block) {
			b.Assign("fd", m.Call("sys_open", m.Addr("path", 0)))
			b.If(m.Lt(m.V("fd"), m.I(0)), func(b *m.Block) { b.Return(m.Neg(m.I(1))) }, nil)
			b.Assign("sum", m.I(0))
			b.While(m.I(1), func(b *m.Block) {
				b.Assign("n", m.Call("sys_read", m.V("fd"), m.Addr("buf", 0), m.I(512)))
				b.If(m.Le(m.V("n"), m.I(0)), func(b *m.Block) { b.Break() }, nil)
				b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
					b.Assign("sum", m.Add(m.V("sum"), m.LoadB(m.Add(m.Addr("buf", 0), m.V("i")))))
				})
			})
			b.Call("sys_close", m.V("fd"))
			b.Return(m.V("sum"))
		})
		return mod
	}
	sys, p, events := runTraced(t, kernel.Mach, map[string]*m.Module{
		"c1": mk("c1", "data.bin"),
		"c2": mk("c2", "other.bin"),
	}, map[string][]byte{"data.bin": data1, "other.bin": data2})

	// pid 1 = UX server, clients in sorted name order: c1=2, c2=3.
	if got := exitStatus(sys, 2); got != sum1 {
		t.Errorf("client 1 sum %d want %d", got, sum1)
	}
	if got := exitStatus(sys, 3); got != sum2 {
		t.Errorf("client 2 sum %d want %d", got, sum2)
	}
	// Both clients exit; the server never does.
	if p.ProcExits != 2 {
		t.Errorf("ProcExits = %d want 2", p.ProcExits)
	}
	// Every address space must appear in the reconstructed stream,
	// and kernel references must be present (IPC runs in the kernel).
	seen := map[int16]bool{}
	var kern int
	for _, ev := range events {
		seen[ev.AS] = true
		if ev.Kernel {
			kern++
		}
	}
	for pid := int16(1); pid <= 3; pid++ {
		if !seen[pid] {
			t.Errorf("no events attributed to address space %d", pid)
		}
	}
	if kern == 0 {
		t.Error("no kernel references in a syscall-heavy run")
	}
}
