package kernel

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/machine"
	"systrace/internal/obj"
	"systrace/internal/obs"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
)

// evDoorbell marks each trace-buffer doorbell the kernel rings: the
// host drains and resets the buffer here, so around a failure these
// events reconstruct the generation/analysis mode switches.
// a = doorbell reason code, b = trace words drained.
var evDoorbell = obs.RegisterEvent("kernel_trace_doorbell")

// BootProc describes one process to start at boot.
type BootProc struct {
	Exe      *obj.Executable
	IsServer bool
}

// BootConfig configures a system instance.
type BootConfig struct {
	Flavor          Flavor
	RAMBytes        uint32
	TraceBufBytes   uint32 // 0 = tracing disabled (untraced kernel)
	ClockInterval   uint32 // cycles between clock interrupts
	PagePolicy      uint32 // 0 sequential, 1 random (frame placement)
	MapSeed         uint32
	TLBDropin       bool
	DiskImage       []byte
	AnalysisPerWord uint64 // analysis-phase cycles charged per trace word
	// Stream enables the epoch-ring streaming drain (see stream.go);
	// the zero value keeps the legacy stop-the-world two-phase drain.
	Stream StreamConfig
	// Engine pins the CPU execution tier for the whole boot. The zero
	// value keeps the machine default (predecode + superblocks); the
	// benchmark grid and the differential oracle pin specific tiers.
	Engine Engine
}

// Engine selects the CPU execution tier a boot runs on.
type Engine int

const (
	// EngineAuto is the machine default: predecode with the
	// superblock tier on top.
	EngineAuto Engine = iota
	// EngineReference disables predecode entirely — per-instruction
	// fetch and full decode, the legacy burst-64 baseline.
	EngineReference
	// EnginePredecode runs the predecode cache with the superblock
	// tier off — the mid-tier the PR-5 benchmarks measured.
	EnginePredecode
	// EngineSuperblock is EngineAuto stated explicitly.
	EngineSuperblock
)

func (e Engine) String() string {
	switch e {
	case EngineReference:
		return "reference"
	case EnginePredecode:
		return "predecode"
	case EngineSuperblock:
		return "superblock"
	default:
		return "auto"
	}
}

// DefaultBoot returns a standard configuration for the flavor: Ultrix
// places pages sequentially and pre-drops TLB entries; Mach places
// pages randomly (its documented repeatability hazard, §5.1) and uses
// tlb_map_random-style drop-ins.
func DefaultBoot(f Flavor) BootConfig {
	cfg := BootConfig{
		Flavor:          f,
		RAMBytes:        64 << 20,
		ClockInterval:   20_000, // scheduler tick, scaled with the workloads
		TLBDropin:       true,
		MapSeed:         12345,
		AnalysisPerWord: 8,
	}
	if f == Mach {
		cfg.PagePolicy = 1
	}
	return cfg
}

// System is a booted machine: kernel plus processes, with the
// host-side analysis program attached to the trace doorbell.
type System struct {
	M      *machine.Machine
	Kernel *obj.Executable
	Procs  []BootProc
	Cfg    BootConfig

	// OnTrace receives each drained batch of raw trace words (the
	// analysis program of Figure 1).
	OnTrace func(words []uint32)

	// OnEpoch receives each epoch exactly as handed off on the wire —
	// the compressed bytes of the stream codec — before OnTrace sees
	// the decoded words. Only invoked under a streaming drain with
	// Compress enabled; consumers that decode for themselves (the
	// conformance checker's CheckCompressed) attach here so the wire
	// format is exercised end to end.
	OnEpoch func(enc []byte)

	DrainedWords uint64
	Doorbells    uint64
	// DrainErrors counts drains rejected on the producer side
	// (corrupt bookkeeping); decode failures on the consumer side are
	// counted in StreamStats.DecodeErrors.
	DrainErrors uint64
	// StreamStats accumulates epoch-ring accounting when Cfg.Stream is
	// enabled (stable once Run returns).
	StreamStats StreamStats

	tel    *sysTelemetry
	stream *streamer

	kbookPA uint32
	tbufPA  uint32
	utlbPA  uint32
	symPA   map[string]uint32
}

// sysTelemetry holds the pre-registered handles the flush path records
// into; all handle operations are plain uint64 adds.
type sysTelemetry struct {
	reg    *telemetry.Registry
	labels []telemetry.Label

	flushesFull   *telemetry.Counter
	flushesFinal  *telemetry.Counter
	flushWords    *telemetry.Histogram
	markers       map[uint32]*telemetry.Counter // by trace.MarkerKind
	markerUnknown *telemetry.Counter            // kinds with no registered name
	perPid        map[uint32]*telemetry.Counter // flushes by current pid
}

// markerNames maps marker kinds to metric label values.
var markerNames = map[uint32]string{
	trace.MarkCtxSw:     "ctx_switch",
	trace.MarkExcEnter:  "exc_enter",
	trace.MarkExcExit:   "exc_exit",
	trace.MarkModeSw:    "mode_switch",
	trace.MarkProcExit:  "proc_exit",
	trace.MarkKernEnter: "kern_enter",
	trace.MarkKernExit:  "kern_exit",
}

// AttachTelemetry registers the kernel-side tracing metrics: flush
// counts by reason and by pid, flush-size histogram, control-marker
// mix of the drained stream, and sampled kernel globals (scheduler
// ticks, generation→analysis mode switches, the §5.2 user-TLB miss
// counter). Call before Run; a nil registry is a no-op.
func (s *System) AttachTelemetry(r *telemetry.Registry, labels ...telemetry.Label) {
	if r == nil {
		return
	}
	t := &sysTelemetry{
		reg:     r,
		labels:  labels,
		markers: map[uint32]*telemetry.Counter{},
		perPid:  map[uint32]*telemetry.Counter{},
	}
	lab := func(extra ...telemetry.Label) []telemetry.Label {
		return append(extra, labels...)
	}
	const flushHelp = "in-kernel trace buffer flushes by doorbell reason"
	t.flushesFull = r.Counter("kernel_trace_flushes_total", flushHelp,
		lab(telemetry.L("reason", "buffer_full"))...)
	t.flushesFinal = r.Counter("kernel_trace_flushes_total", flushHelp,
		lab(telemetry.L("reason", "final"))...)
	t.flushWords = r.Histogram("kernel_trace_flush_words",
		"trace words handed to the analysis program per flush (buffer geometry, §4.3)",
		labels...)
	const markerHelp = "control markers observed in the drained trace stream, by kind"
	for kind, name := range markerNames {
		t.markers[kind] = r.Counter("kernel_trace_markers_total", markerHelp,
			lab(telemetry.L("kind", name))...)
	}
	// Words in 0xfff8xxxx..0xffffxxxx satisfy IsMarker but name no
	// known kind (a wild effective address can land there); they count
	// here instead of faulting the flush path.
	t.markerUnknown = r.Counter("kernel_trace_markers_total", markerHelp,
		lab(telemetry.L("kind", "unknown"))...)
	r.Sample("kernel_trace_drained_words_total",
		"total trace words drained from the in-kernel buffer",
		func() uint64 { return s.DrainedWords }, labels...)
	r.Sample("kernel_trace_doorbells_total",
		"doorbell rings (generation→analysis mode switches)",
		func() uint64 { return s.Doorbells }, labels...)
	r.Sample("kernel_trace_drain_errors_total",
		"trace drains rejected or failed (corrupt bookkeeping, undecodable epochs)",
		func() uint64 { return s.DrainErrors + s.StreamStats.DecodeErrors }, labels...)
	r.Sample("kernel_trace_stream_epochs_total",
		"epochs handed to the streaming-drain consumer",
		func() uint64 { return s.StreamStats.Epochs }, labels...)
	r.Sample("kernel_trace_stream_stall_cycles_total",
		"machine cycles the streaming drain stalled waiting for a ring slot",
		func() uint64 { return s.StreamStats.StallCycles }, labels...)
	r.Sample("kernel_trace_stream_raw_bytes_total",
		"raw trace bytes handed off by the streaming drain",
		func() uint64 { return s.StreamStats.RawBytes }, labels...)
	r.Sample("kernel_trace_stream_encoded_bytes_total",
		"compressed trace bytes handed off by the streaming drain",
		func() uint64 { return s.StreamStats.EncodedBytes }, labels...)
	r.Sample("kernel_ticks_total", "scheduler clock ticks handled",
		func() uint64 { return uint64(s.ReadKernelWord("ticks")) }, labels...)
	r.Sample("kernel_mode_switches_total",
		"generation→analysis transitions counted by the kernel itself",
		func() uint64 { return uint64(s.ReadKernelWord("modesw")) }, labels...)
	r.Sample("kernel_utlb_misses_total",
		"the kernel's user-TLB miss counter (Table 3 measured column, §5.2)",
		func() uint64 { return uint64(s.UTLBCount()) }, labels...)
	s.tel = t
}

// record instruments one flush: the hot-path handles were registered
// up front, so this is counter adds plus one pass over the drained
// words for the marker mix. The per-pid series is created on first
// flush for that pid (flushes are rare; this is not the word path).
func (t *sysTelemetry) record(reason uint32, pid uint32, words []uint32) {
	if reason == dev.DoorbellFlush {
		t.flushesFinal.Inc()
	} else {
		t.flushesFull.Inc()
	}
	t.flushWords.Observe(uint64(len(words)))
	c, ok := t.perPid[pid]
	if !ok {
		c = t.reg.Counter("kernel_trace_flushes_by_pid_total",
			"in-kernel trace buffer flushes by the pid current at flush time",
			append([]telemetry.Label{telemetry.L("pid", strconv.FormatUint(uint64(pid), 10))},
				t.labels...)...)
		t.perPid[pid] = c
	}
	c.Inc()
	for _, w := range words {
		if trace.IsMarker(w) {
			if c, ok := t.markers[trace.MarkerKind(w)]; ok {
				c.Inc()
			} else {
				t.markerUnknown.Inc()
			}
		}
	}
}

// Boot loads the kernel and user images and prepares the machine.
func Boot(kernelExe *obj.Executable, procs []BootProc, cfg BootConfig) (*System, error) {
	sp := obs.BeginDetail("system_boot", cfg.Flavor.String())
	defer sp.End()
	if len(procs) == 0 || len(procs) > MaxProcs {
		return nil, fmt.Errorf("kernel: %d boot processes (1..%d allowed)", len(procs), MaxProcs)
	}
	mach := machine.New(cfg.RAMBytes, cfg.DiskImage)
	switch cfg.Engine {
	case EngineReference:
		mach.CPU.SetPredecode(false)
	case EnginePredecode:
		mach.CPU.SetSuperblocks(false)
	}
	if err := mach.LoadKernel(kernelExe); err != nil {
		return nil, err
	}
	s := &System{M: mach, Kernel: kernelExe, Procs: procs, Cfg: cfg, symPA: map[string]uint32{}}
	s.kbookPA = kernelExe.MustSymbol("kbook") - cpu.KSeg0Base
	s.utlbPA = kernelExe.MustSymbol("utlb_scratch") - cpu.KSeg0Base
	s.tbufPA = TraceBufVA - cpu.KSeg0Base

	// Boot-time loads go through the RAM API so its write hook sees
	// them (the CPU invalidates any predecoded frame under a write);
	// the doorbell handler below only reads, so it keeps the raw slice.
	ram := mach.RAM.Bytes()
	put := func(pa uint32, v uint32) { mach.RAM.WriteWord(pa, v) }

	// Boot images: user segments copied to page-aligned physical
	// memory after the trace buffer.
	alloc := s.tbufPA + cfg.TraceBufBytes
	alloc = (alloc + 4095) &^ 4095
	biPA := uint32(BootInfoVA - cpu.KSeg0Base)
	put(biPA+BiMagic, BootMagic)
	put(biPA+BiRAMBytes, cfg.RAMBytes)
	if cfg.TraceBufBytes > 0 {
		put(biPA+BiTraceBufPhys, s.tbufPA)
		put(biPA+BiTraceBufBytes, cfg.TraceBufBytes)
	}
	put(biPA+BiClockInterval, cfg.ClockInterval)
	put(biPA+BiFlavor, uint32(cfg.Flavor))
	put(biPA+BiPagePolicy, cfg.PagePolicy)
	put(biPA+BiMapSeed, cfg.MapSeed)
	if cfg.TLBDropin {
		put(biPA+BiTLBDropin, 1)
	}
	put(biPA+BiNProcs, uint32(len(procs)))

	var segErr error
	copySeg := func(pa uint32, data []byte) uint32 {
		if err := mach.RAM.WriteBytes(pa, data); err != nil && segErr == nil {
			segErr = err
		}
		return (pa + uint32(len(data)) + 4095) &^ 4095
	}
	for i, p := range procs {
		e := p.Exe
		rec := biPA + BiProcBase + uint32(i)*BiProcStride
		textBytes := make([]byte, len(e.Text)*4)
		for wi, w := range e.Text {
			binary.BigEndian.PutUint32(textBytes[wi*4:], w)
		}
		textPA := alloc
		alloc = copySeg(textPA, textBytes)
		dataPA := alloc
		alloc = copySeg(dataPA, e.Data)
		put(rec+BiProcEntry, e.Entry)
		put(rec+BiProcTextVA, e.TextBase)
		put(rec+BiProcTextPhys, textPA)
		put(rec+BiProcTextBytes, uint32(len(textBytes)))
		put(rec+BiProcDataVA, e.DataBase)
		put(rec+BiProcDataPhys, dataPA)
		put(rec+BiProcDataBytes, uint32(len(e.Data)))
		put(rec+BiProcBSSVA, e.BSSBase)
		put(rec+BiProcBSSBytes, e.BSSSize+65536) // slack for sbrk-free heaps
		if e.Traced {
			put(rec+BiProcTraced, 1)
		}
		if p.IsServer {
			put(rec+BiProcIsServer, 1)
		}
	}
	if segErr != nil {
		return nil, segErr
	}
	put(biPA+BiFramePool, alloc)

	// The analysis program: drain the in-kernel buffer when the
	// kernel rings the doorbell.
	mach.TraceCtl.Handler = func(reason uint32) uint64 {
		dsp := obs.Begin("trace_drain")
		defer dsp.End()
		s.Doorbells++
		end := binary.BigEndian.Uint32(ram[s.kbookPA:]) // BufPtr (kseg0 VA)
		start := TraceBufVA
		if end < uint32(start) || end > uint32(start)+cfg.TraceBufBytes {
			// A BufPtr outside the buffer means the bookkeeping word
			// was corrupted (or the kernel is wild); dropping the
			// buffer is the only safe move, but it must be loud.
			s.DrainErrors++
			obs.Failure("trace_drain_corrupt_kbook", fmt.Sprintf(
				"doorbell reason %d: kbook BufPtr 0x%08x outside trace buffer [0x%08x, 0x%08x]",
				reason, end, uint32(start), uint32(start)+cfg.TraceBufBytes))
			obs.Emit(evDoorbell, uint64(reason), 0)
			return 0
		}
		n := (end - uint32(start)) / 4
		obs.Emit(evDoorbell, uint64(reason), uint64(n))
		s.DrainedWords += uint64(n)
		var pid uint32
		if s.tel != nil {
			pid = s.ReadKernelWord("curpid")
		}
		if s.stream != nil {
			return s.stream.handoff(reason, pid, n, mach.Cycles())
		}
		words := make([]uint32, n)
		for i := uint32(0); i < n; i++ {
			words[i] = binary.BigEndian.Uint32(ram[s.tbufPA+i*4:])
		}
		if s.tel != nil {
			s.tel.record(reason, pid, words)
		}
		if s.OnTrace != nil {
			s.OnTrace(words)
		}
		return uint64(n) * cfg.AnalysisPerWord
	}
	return s, nil
}

// Run executes until the machine halts or the instruction budget is
// exhausted. With streaming enabled the epoch-ring consumer runs for
// the duration of the call and is joined before Run returns, so every
// OnTrace delivery happens-before the caller reads its results.
func (s *System) Run(maxInstr uint64) error {
	sp := obs.BeginDetail("machine_run", s.Cfg.Flavor.String())
	defer sp.End()
	if s.Cfg.Stream.Enabled() && s.Cfg.TraceBufBytes > 0 {
		s.stream = newStreamer(s)
		defer func() {
			st := s.stream
			s.stream = nil
			st.close()
		}()
	}
	return s.M.Run(maxInstr)
}

// ramWord reads the big-endian word at physical address pa, reporting
// false when pa is outside RAM instead of slicing out of bounds (a bad
// pid or a corrupt page-table entry produces such addresses).
func ramWord(ram []byte, pa uint32) (uint32, bool) {
	if uint64(pa)+4 > uint64(len(ram)) {
		return 0, false
	}
	return binary.BigEndian.Uint32(ram[pa:]), true
}

// UTLBCount reads the kernel's user-TLB miss counter (the
// "kernel with a user TLB miss counter" of §5.2).
func (s *System) UTLBCount() uint32 {
	return binary.BigEndian.Uint32(s.M.RAM.Bytes()[s.utlbPA:])
}

// ReadKernelWordOK reads a kernel global by symbol name; ok is false
// for an unknown symbol or one whose address falls outside RAM.
func (s *System) ReadKernelWordOK(sym string) (uint32, bool) {
	pa, cached := s.symPA[sym]
	if !cached {
		va, ok := s.Kernel.Symbol(sym)
		if !ok {
			return 0, false
		}
		pa = va - cpu.KSeg0Base
		s.symPA[sym] = pa
	}
	return ramWord(s.M.RAM.Bytes(), pa)
}

// ReadKernelWord reads a kernel global by symbol name (zero when the
// symbol is unknown or out of range; see ReadKernelWordOK).
func (s *System) ReadKernelWord(sym string) uint32 {
	v, _ := s.ReadKernelWordOK(sym)
	return v
}

// Console returns console output so far.
func (s *System) Console() string { return s.M.Console.String() }

// ExitStatusOK returns the exit status of process pid (the a0 slot of
// its final trapframe); ok is false when pid names no boot-time
// process slot.
func (s *System) ExitStatusOK(pid int) (uint32, bool) {
	if pid < 1 || pid > MaxProcs {
		return 0, false
	}
	pa := s.Kernel.MustSymbol("procs") - cpu.KSeg0Base +
		uint32(pid-1)*ProcStride + PSave + TFRegs + 3*4
	return ramWord(s.M.RAM.Bytes(), pa)
}

// ExitStatus returns the exit status of process pid (zero when pid is
// out of range; see ExitStatusOK).
func (s *System) ExitStatus(pid int) uint32 {
	v, _ := s.ExitStatusOK(pid)
	return v
}

// ReadUserWord reads a word of a process's memory by walking the
// kernel's page tables from the host side. Every step of the walk is
// bounds-checked: a bad pid or an out-of-range page-table entry
// returns false rather than faulting the host.
func (s *System) ReadUserWord(pid int, va uint32) (uint32, bool) {
	if pid < 1 || pid > MaxProcs {
		return 0, false
	}
	km := s.Kernel.MustSymbol("kseg2map") - cpu.KSeg0Base
	ram := s.M.RAM.Bytes()
	off := uint32(pid)<<PTSpanShift + (va>>12)<<2
	pt, ok := ramWord(ram, km+(off>>12)*4)
	if !ok || pt&cpu.EloV == 0 {
		return 0, false
	}
	pte, ok := ramWord(ram, pt&cpu.EloPFN|off&0xfff)
	if !ok || pte&cpu.EloV == 0 {
		return 0, false
	}
	return ramWord(ram, pte&cpu.EloPFN|va&0xfff)
}
