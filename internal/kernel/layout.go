// Package kernel implements the traced operating systems: a monolithic
// "Ultrix-like" kernel and a microkernel "Mach-like" system with a
// user-level UX file server, both compiled from Mahler IR plus
// hand-written assembly for the delicate paths (exception vectors, the
// UTLB refill handler, trace-state maintenance, context restore) —
// the code the paper describes as instrumented by hand or left
// uninstrumented (§3.3).
//
// The kernels run on the simulated machine; user workloads run on the
// kernels; epoxie instruments kernels and workloads alike. Everything
// the paper's tracing systems do in the kernel happens here: the
// per-process trace buffers flushed into the large in-kernel buffer on
// every kernel entry, mode switching between trace generation and
// analysis, scheduler integration, nested-interrupt trace-state
// maintenance, explicit TLB drop-ins, and the idle loop with its
// counted basic block.
package kernel

import "systrace/internal/cpu"

// Flavor selects the operating system personality.
type Flavor int

const (
	// Ultrix is the monolithic kernel: file syscalls served in-kernel
	// through a kernel buffer cache with conservative (write-through)
	// write policy and sequential page placement.
	Ultrix Flavor = iota
	// Mach is the microkernel: file syscalls of ordinary processes
	// are converted to IPC to the user-level UX server, which runs
	// its own buffer cache in user memory and reaches the disk
	// through device syscalls. Page placement is random
	// (tlb_map_random-style) and per-process trace pages are
	// allocated on first touch rather than exec-time flags (§3.6).
	Mach
)

func (f Flavor) String() string {
	if f == Mach {
		return "mach"
	}
	return "ultrix"
}

// Physical / virtual layout.
const (
	KernelTextVA = 0x80000000 // vectors first, then kernel text (< 1.5 MB)
	KernelDataVA = 0x80200000 // data + BSS (< 6 MB)
	KStackTop    = 0x801f0000 // kernel stack (grows down, below data)
	BootInfoVA   = 0x80800000 // boot table written by the host loader
	TraceBufVA   = 0x80810000 // in-kernel trace buffer (physical 0x810000)

	// kseg2 linear page tables: 2 MB of PTE space per address space.
	PTBase      = cpu.KSeg2Base
	PTSpanShift = 21
)

// Boot info block offsets (words).
const (
	BootMagic         = 0x534b4f54 // "SKOT"
	BiMagic           = 0
	BiRAMBytes        = 4
	BiTraceBufPhys    = 8 // 0 = untraced system
	BiTraceBufBytes   = 12
	BiClockInterval   = 16
	BiFramePool       = 20
	BiNProcs          = 24
	BiFlavor          = 28
	BiPagePolicy      = 32 // 0 sequential, 1 random
	BiMapSeed         = 36
	BiTLBDropin       = 40 // kernel pre-drops TLB entries at exec/switch
	BiAnalysisPerWord = 44 // unused by kernel; kept for the host
	BiProcBase        = 64
	BiProcStride      = 64
	BiProcEntry       = 0
	BiProcTextVA      = 4
	BiProcTextPhys    = 8
	BiProcTextBytes   = 12
	BiProcDataVA      = 16
	BiProcDataPhys    = 20
	BiProcDataBytes   = 24
	BiProcBSSVA       = 28
	BiProcBSSBytes    = 32
	BiProcTraced      = 36
	BiProcIsServer    = 40
	BiProcStackPages  = 44
)

// Trapframe layout within a process save area (byte offsets). EntryHi
// is part of the saved context: nested exceptions must restore the
// interrupted address space exactly (crossCopy switches spaces
// mid-flight).
const (
	TFRegs    = 0 // r1..r31 at (r-1)*4
	TFHi      = 124
	TFLo      = 128
	TFEPC     = 132
	TFStatus  = 136
	TFCause   = 140
	TFBadVA   = 144
	TFEntryHi = 148
	TFSize    = 160
)

// Process table geometry. The proc table lives in kernel BSS.
const (
	MaxProcs   = 14
	ProcStride = 512

	// Proc struct offsets.
	PState     = 0 // 0 free, 1 runnable, 2 sleeping, 3 zombie, 4 awaiting reply, 5 awaiting request
	PPid       = 4
	PSleepChan = 8
	PQuantum   = 12
	PSave      = 16 // TFSize bytes
	PBrk       = PSave + TFSize
	PTraced    = PBrk + 4
	PIsServer  = PTraced + 4
	PNextVPage = PIsServer + 4 // next free user vpage for trace/heap growth
	PMsgOp     = PNextVPage + 4
	PMsgA1     = PMsgOp + 4
	PMsgA2     = PMsgA1 + 4
	PMsgA3     = PMsgA2 + 4
	PMsgPath   = PMsgA3 + 4 // 24 bytes of copied-in path
	PFDBase    = PMsgPath + 24
	NFD        = 8
	FDStride   = 12                     // fileIndex, offset, inUse
	PLastBlock = PFDBase + NFD*FDStride // read-ahead sequentiality tracking
	PDiskPend  = PLastBlock + 4         // 0 idle, 1 issued, 2 complete
)

// Scheduler / timing.
const (
	Quantum = 3 // clock ticks per slice
)

// Syscall numbers.
const (
	SysExit = iota
	SysWrite
	SysRead
	SysOpen
	SysClose
	SysBrk
	SysGetPID
	SysYield
	SysMsgRecv
	SysMsgReply
	SysDiskRead
	SysDiskWrite
	SysTraceCtl
	SysTime
	SysMsgFetch // server pulls data from a client space (vm_read)
	NSyscalls
)

// trace_ctl operations (the kernel call "for user-level analysis
// programs to control tracing", §3.1).
const (
	TraceCtlFlush = 0
	TraceCtlOn    = 1
	TraceCtlOff   = 2
)

// File system: a flat directory on the ramdisk.
//
//	sector 0:  magic, nfiles
//	sector 1+: 32-byte entries: name[20], startSector, length, pad
//	data:      sector-aligned file contents
const (
	FSMagic      = 0x46533031 // "FS01"
	DirEntrySize = 32
	DirNameLen   = 20
	SectorSize   = 512
	BlockSectors = 8
	BlockBytes   = SectorSize * BlockSectors
)

// Buffer cache geometry (Ultrix kernel; the Mach UX server has its own
// user-space cache of the same shape).
const (
	NBuf = 16
)

// User process layout.
const (
	UserStackPages = 4
	UserStackTop   = 0x7ffff000
)
