package kernel

import (
	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/epoxie"
	"systrace/internal/isa"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
)

// Config selects kernel build options.
type Config struct {
	Flavor Flavor
	// Traced builds the kernel with the tracing subsystem: the asm
	// entry paths maintain trace state and the whole kernel is meant
	// to be epoxie-instrumented after compilation.
	Traced bool
	// Flow selects the rewriter's liveness mode for traced builds
	// (dead-register elision on, off, or padded for the differential
	// oracle). The zero value is epoxie.FlowOn.
	Flow epoxie.FlowMode
}

// Device register virtual addresses (kseg1).
const (
	devBase    = cpu.KSeg1Base + dev.DevBase
	clockAck   = devBase + dev.ClockBase + dev.ClockAck
	clockIntvl = devBase + dev.ClockBase + dev.ClockInterval
	consPutc   = devBase + dev.ConsoleBase + dev.ConsolePutc
	diskSector = devBase + dev.DiskBase + dev.DiskSector
	diskAddr   = devBase + dev.DiskBase + dev.DiskAddr
	diskNSect  = devBase + dev.DiskBase + dev.DiskNSect
	diskCmd    = devBase + dev.DiskBase + dev.DiskCmd
	diskStatus = devBase + dev.DiskBase + dev.DiskStatus
	diskAck    = devBase + dev.DiskBase + dev.DiskAck
	diskDone   = devBase + dev.DiskBase + dev.DiskDone
	traceBell  = devBase + dev.TraceCtlBase + dev.TraceDoorbell
	haltReg    = devBase + dev.TraceCtlBase + 0x8
)

// Process states.
const (
	stFree = iota
	stRunnable
	stSleeping
	stZombie
	stWaitReply   // Mach client awaiting server reply
	stWaitService // Mach client whose request the server holds
)

// PTE bits (match cpu EntryLo).
const (
	pteV = cpu.EloV
	pteD = cpu.EloD
	pteG = cpu.EloG
)

// Status image for fabricated user trapframes: interrupt mask for
// clock+disk, previous-mode user with interrupts enabled.
const userStatus = 0x300 | cpu.StIEp | cpu.StKUp

// Module builds the kernel IR. The hand-written vectors object
// provides _start, kentry, kexit_user and the trace helpers; this
// module provides everything else.
func Module(cfg Config) *m.Module {
	k := m.NewModule("kern-" + cfg.Flavor.String())
	declGlobals(k)
	k.Extern("kexit_user", m.TVoid)
	k.Extern("idle_pause", m.TVoid)

	buildHelpers(k, cfg)
	buildVM(k, cfg)
	buildSched(k, cfg)
	buildFS(k, cfg)
	buildSyscalls(k, cfg)
	buildTraceCtl(k, cfg)
	buildTrap(k, cfg)
	buildMain(k, cfg)
	return k
}

func declGlobals(k *m.Module) {
	k.Global("utlb_scratch", 16) // miss counter, at save, sp save
	k.Global("cursave", 4)
	k.Global("curentryhi", 4)
	k.Global("curpid", 4)
	k.Global("curproc", 4)
	k.Global("curtraced", 4)
	k.Global("traceon", 4)
	k.Global("kbook", trace.BookSize)
	k.Global("tbufstart", 4) // in-kernel buffer base (kseg0 VA)
	k.Global("nrunnable", 4)
	k.Global("needresched", 4)
	k.Global("restartsys", 4)
	k.Global("rrindex", 4)
	k.Global("nextframe", 4)
	k.Global("wiredrr", 4)
	k.Global("ramend", 4)
	k.Global("flavor", 4)
	k.Global("pagepolicy", 4)
	k.Global("mapseed", 4)
	k.Global("tlbdropin", 4)
	k.Global("nprocs", 4)
	k.Global("nlive", 4)
	k.Global("ticks", 4)
	k.Global("modesw", 4) // generation->analysis transitions
	k.Global("procs", MaxProcs*ProcStride)
	k.Global("kseg2map", 32768*4)
	// Buffer cache (Ultrix) / raw-op bookkeeping.
	k.Global("buftag", NBuf*4)
	k.Global("bufstate", NBuf*4) // 0 empty, 1 valid, 2 reading, 3 writing
	k.Global("bufdata", NBuf*BlockBytes)
	k.Global("dircache", 64*DirEntrySize)
	k.Global("nfiles", 4)
	// Disk issue queue mirror: (chan, kind, pid/bufidx) triplets.
	k.Global("dq_chan", 16*4)
	k.Global("dq_kind", 16*4) // 0 bc-read, 1 raw (pid in dq_aux), 2 bc-write
	k.Global("dq_aux", 16*4)
	k.Global("dq_head", 4)
	k.Global("dq_tail", 4)
	// Mach server state.
	k.Global("serverpid", 4)
}

// procAddr yields the address of proc slot pid (1-based).
func procAddr(pid m.Expr) m.Expr {
	return m.Add(m.Addr("procs", 0), m.Mul(m.Sub(pid, m.I(1)), m.I(ProcStride)))
}

func buildHelpers(k *m.Module, cfg Config) {
	// allocFrame returns the physical address of a fresh zeroed frame.
	// Under the random page-mapping policy (Mach's, §4.2/§4.4) the
	// frame's cache color is randomized, which is what makes run
	// times vary with the placement seed on physically-indexed
	// caches.
	f := k.Func("allocFrame", m.TInt)
	f.Locals("f")
	f.Code(func(b *m.Block) {
		b.Assign("f", m.LoadW(m.Addr("nextframe", 0)))
		b.If(m.Eq(m.LoadW(m.Addr("pagepolicy", 0)), m.I(1)), func(b *m.Block) {
			b.Assign("f", m.Add(m.V("f"),
				m.Shl(m.And(m.Call("krand"), m.I(15)), m.I(12))))
		}, nil)
		b.If(m.GeU(m.V("f"), m.LoadW(m.Addr("ramend", 0))), func(b *m.Block) {
			b.StoreW(m.U(haltReg), m.I(0x7002)) // panic: out of memory
		}, nil)
		b.StoreW(m.Addr("nextframe", 0), m.Add(m.V("f"), m.I(4096)))
		b.Return(m.V("f"))
	})

	// setSpace(asid): point EntryHi and Context at an address space.
	f = k.Func("setSpace", m.TVoid)
	f.Param("asid", m.TInt)
	f.Code(func(b *m.Block) {
		b.MTC0(isa.C0EntryHi, m.Shl(m.V("asid"), m.I(cpu.ASIDShift)))
		b.MTC0(isa.C0Context, m.Add(m.U(PTBase), m.Shl(m.V("asid"), m.I(PTSpanShift))))
	})

	// putc/puts for kernel diagnostics.
	f = k.Func("kputc", m.TVoid)
	f.Param("c", m.TInt)
	f.Code(func(b *m.Block) {
		b.StoreW(m.U(consPutc), m.V("c"))
	})

	// rand: xorshift over mapseed (page placement, tlb_map_random).
	f = k.Func("krand", m.TInt)
	f.Locals("s")
	f.Code(func(b *m.Block) {
		b.Assign("s", m.LoadW(m.Addr("mapseed", 0)))
		b.Assign("s", m.Xor(m.V("s"), m.Shl(m.V("s"), m.I(13))))
		b.Assign("s", m.Xor(m.V("s"), m.Shr(m.V("s"), m.I(17))))
		b.Assign("s", m.Xor(m.V("s"), m.Shl(m.V("s"), m.I(5))))
		b.StoreW(m.Addr("mapseed", 0), m.V("s"))
		b.Return(m.V("s"))
	})
}

func buildVM(k *m.Module, cfg Config) {
	// pteAddr(asid, va) — the kseg2 linear page-table slot.
	f := k.Func("pteAddr", m.TInt)
	f.Param("asid", m.TInt)
	f.Param("va", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.Add(m.U(PTBase),
			m.Add(m.Shl(m.V("asid"), m.I(PTSpanShift)),
				m.Shl(m.Shr(m.V("va"), m.I(12)), m.I(2)))))
	})

	// mapPage installs a PTE (the store itself may take a KTLB miss
	// that allocates the page-table page on demand).
	f = k.Func("mapPage", m.TVoid)
	f.Param("asid", m.TInt)
	f.Param("va", m.TInt)
	f.Param("phys", m.TInt)
	f.Code(func(b *m.Block) {
		b.StoreW(m.Call("pteAddr", m.V("asid"), m.V("va")),
			m.Or(m.And(m.V("phys"), m.U(0xfffff000)), m.I(pteV|pteD)))
	})

	// allocMap allocates and maps n pages at va for asid.
	f = k.Func("allocMap", m.TVoid)
	f.Param("asid", m.TInt)
	f.Param("va", m.TInt)
	f.Param("n", m.TInt)
	f.Locals("i")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.V("n"), func(b *m.Block) {
			b.Call("mapPage", m.V("asid"),
				m.Add(m.V("va"), m.Mul(m.V("i"), m.I(4096))),
				m.Call("allocFrame"))
		})
	})

	// mapRange maps existing physical memory (boot images).
	f = k.Func("mapRange", m.TVoid)
	f.Param("asid", m.TInt)
	f.Param("va", m.TInt)
	f.Param("phys", m.TInt)
	f.Param("bytes", m.TInt)
	f.Locals("off")
	f.Code(func(b *m.Block) {
		b.Assign("off", m.I(0))
		b.While(m.LtU(m.V("off"), m.V("bytes")), func(b *m.Block) {
			b.Call("mapPage", m.V("asid"),
				m.Add(m.V("va"), m.V("off")),
				m.Add(m.V("phys"), m.V("off")))
			b.Assign("off", m.Add(m.V("off"), m.I(4096)))
		})
	})

	// tlbDrop writes a TLB entry directly — Ultrix tlbdropin() /
	// Mach tlb_map_random() (§5.2). The entry is written at a random
	// index, and EntryHi/Context are restored afterwards.
	f = k.Func("tlbDrop", m.TVoid)
	f.Param("asid", m.TInt)
	f.Param("va", m.TInt)
	f.Locals("pte")
	f.Code(func(b *m.Block) {
		b.Assign("pte", m.LoadW(m.Call("pteAddr", m.V("asid"), m.V("va"))))
		b.If(m.Eq(m.And(m.V("pte"), m.I(pteV)), m.I(0)), func(b *m.Block) {
			b.Return(nil) // nothing to drop in
		}, nil)
		b.MTC0(isa.C0EntryHi, m.Or(m.And(m.V("va"), m.U(0xfffff000)),
			m.Shl(m.V("asid"), m.I(cpu.ASIDShift))))
		b.MTC0(isa.C0EntryLo, m.V("pte"))
		// Overwrite a stale mapping if one exists, else random.
		b.TLBOp(isa.C0FnTLBP)
		b.If(m.Eq(m.And(m.MFC0(isa.C0Index), m.U(0x80000000)), m.I(0)), func(b *m.Block) {
			b.TLBOp(isa.C0FnTLBWI)
		}, func(b *m.Block) {
			b.TLBOp(isa.C0FnTLBWR)
		})
		b.Call("setSpace", m.LoadW(m.Addr("curpid", 0)))
	})

	// doKTLB services a kseg2 (page-table) miss through the general
	// exception path — "handled through the general exception
	// mechanism, which is much slower" (§4.1) — and restarts the UTLB
	// refill handler's victim if the miss was a double fault.
	f = k.Func("doKTLB", m.TVoid)
	f.Param("tf", m.TInt)
	f.Locals("bad", "idx", "pte", "epc", "st")
	f.Code(func(b *m.Block) {
		b.Assign("bad", m.LoadW(m.Add(m.V("tf"), m.I(TFBadVA))))
		b.Assign("idx", m.Shr(m.Sub(m.V("bad"), m.U(PTBase)), m.I(12)))
		b.Assign("pte", m.LoadW(m.Add(m.Addr("kseg2map", 0), m.Mul(m.V("idx"), m.I(4)))))
		b.If(m.Eq(m.V("pte"), m.I(0)), func(b *m.Block) {
			b.Assign("pte", m.Or(m.Call("allocFrame"), m.I(pteV|pteD|pteG)))
			b.StoreW(m.Add(m.Addr("kseg2map", 0), m.Mul(m.V("idx"), m.I(4))), m.V("pte"))
		}, nil)
		b.MTC0(isa.C0EntryHi, m.And(m.V("bad"), m.U(0xfffff000)))
		b.MTC0(isa.C0EntryLo, m.V("pte"))
		// Page-table mappings live in the wired TLB slots (1..7):
		// random replacement from the UTLB refill handler can never
		// evict them, so a refill's page-table load always makes
		// progress (otherwise a deterministic refill loop can evict
		// its own page-table entry forever).
		b.TLBOp(isa.C0FnTLBP)
		b.If(m.Eq(m.And(m.MFC0(isa.C0Index), m.U(0x80000000)), m.I(0)), func(b *m.Block) {
			b.TLBOp(isa.C0FnTLBWI)
		}, func(b *m.Block) {
			b.MTC0(isa.C0Index, m.Add(m.I(1), m.ModU(m.LoadW(m.Addr("wiredrr", 0)), m.I(7))))
			b.StoreW(m.Addr("wiredrr", 0), m.Add(m.LoadW(m.Addr("wiredrr", 0)), m.I(1)))
			b.TLBOp(isa.C0FnTLBWI)
		})
		b.Call("setSpace", m.LoadW(m.Addr("curpid", 0)))
		// Double fault from inside the UTLB refill handler: restart
		// the original user instruction (saved in k1's slot) and pop
		// the extra KU/IE level out of the saved status.
		b.Assign("epc", m.LoadW(m.Add(m.V("tf"), m.I(TFEPC))))
		b.If(m.LtU(m.V("epc"), m.U(KernelTextVA+0x80)), func(b *m.Block) {
			b.StoreW(m.Add(m.V("tf"), m.I(TFEPC)),
				m.LoadW(m.Add(m.V("tf"), m.I(TFRegs+(isa.RegK1-1)*4))))
			b.Assign("st", m.LoadW(m.Add(m.V("tf"), m.I(TFStatus))))
			b.StoreW(m.Add(m.V("tf"), m.I(TFStatus)),
				m.Or(m.And(m.V("st"), m.Not(m.I(0x3f))),
					m.And(m.Shr(m.V("st"), m.I(2)), m.I(0xf))))
		}, nil)
	})

	// doUserFault: invalid-PTE fault on a kuseg address. Under Mach
	// this is how per-process trace pages appear: "the Mach 3.0
	// system identifies traced programs by detecting references to
	// the per-process trace pages" (§3.6). Anything else is fatal.
	f = k.Func("doUserFault", m.TVoid)
	f.Param("tf", m.TInt)
	f.Locals("bad", "pid")
	f.Code(func(b *m.Block) {
		b.Assign("bad", m.LoadW(m.Add(m.V("tf"), m.I(TFBadVA))))
		b.Assign("pid", m.LoadW(m.Addr("curpid", 0)))
		isTracePage := m.And(
			m.GeU(m.V("bad"), m.U(trace.UserTraceVA)),
			m.LtU(m.V("bad"), m.U(trace.UserTraceVA+trace.BookSize+trace.UserBufBytes)))
		b.If(isTracePage, func(b *m.Block) {
			b.Call("mapPage", m.V("pid"),
				m.And(m.V("bad"), m.U(0xfffff000)),
				m.Call("allocFrame"))
			b.StoreW(m.Add(m.Call("curProcAddr"), m.I(PTraced)), m.I(1))
			b.StoreW(m.Addr("curtraced", 0), m.I(1))
			// tlb_map_random-style explicit drop-in.
			b.Call("tlbDrop", m.V("pid"), m.And(m.V("bad"), m.U(0xfffff000)))
			b.Return(nil)
		}, nil)
		b.StoreW(m.U(haltReg), m.I(0x7004)) // panic: unexpected user fault
	})

	f = k.Func("curProcAddr", m.TInt)
	f.Code(func(b *m.Block) {
		b.Return(m.LoadW(m.Addr("curproc", 0)))
	})
}
