package kernel

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// BuildDiskImage lays out a ramdisk with the flat directory format the
// kernels (and the UX server) mount: a superblock, directory entries,
// then sector-aligned file contents.
func BuildDiskImage(files map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(files))
	for n := range files {
		if len(n) >= DirNameLen {
			return nil, fmt.Errorf("diskimg: name %q too long", n)
		}
		names = append(names, n)
	}
	sort.Strings(names)

	// Directory occupies sectors 1..8 (the kernel reads 8 sectors at
	// boot): capacity (8*512-512)/32 + 16 entries; cap at 64.
	if len(names) > 64 {
		return nil, fmt.Errorf("diskimg: %d files (max 64)", len(names))
	}
	dataStart := uint32(16) // first data sector, leaving dir room
	img := make([]byte, int(dataStart)*SectorSize)
	binary.BigEndian.PutUint32(img[0:], FSMagic)
	binary.BigEndian.PutUint32(img[4:], uint32(len(names)))

	sector := dataStart
	for i, n := range names {
		e := DirEntrySize + i*DirEntrySize
		copy(img[e:e+DirNameLen], n)
		binary.BigEndian.PutUint32(img[e+DirNameLen:], sector)
		binary.BigEndian.PutUint32(img[e+DirNameLen+4:], uint32(len(files[n])))
		nsect := (uint32(len(files[n])) + SectorSize - 1) / SectorSize
		// Round file extents to block boundaries so block-granular
		// cache reads never cross files.
		nsect = (nsect + BlockSectors - 1) &^ (BlockSectors - 1)
		sector += nsect
	}
	img = append(img, make([]byte, int(sector-dataStart)*SectorSize)...)
	sector = dataStart
	for _, n := range names {
		copy(img[int(sector)*SectorSize:], files[n])
		nsect := (uint32(len(files[n])) + SectorSize - 1) / SectorSize
		nsect = (nsect + BlockSectors - 1) &^ (BlockSectors - 1)
		sector += nsect
	}
	return img, nil
}
