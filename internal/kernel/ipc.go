package kernel

import (
	"systrace/internal/asm"
	"systrace/internal/isa"
	m "systrace/internal/mahler"
	"systrace/internal/trace"
)

const serverChan = 0x7ffffff2

// buildIPC provides the Mach flavor's message path: client file
// syscalls become requests to the UX server; the server receives,
// serves from its user-space cache, and replies with a kernel
// cross-address-space copy. "Higher-level services [are] implemented
// in a user-level UNIX server" (§3.6) — which is why the Mach system
// shows far more user-level activity (and user TLB misses, Table 3)
// than Ultrix for the same workload.
func buildIPC(k *m.Module, cfg Config) {
	k.Global("msgtmp", 48)

	f := k.Func("ipcEnqueue", m.TVoid)
	f.Param("num", m.TInt)
	f.Param("a0", m.TInt)
	f.Param("a1", m.TInt)
	f.Param("a2", m.TInt)
	f.Locals("p", "sp")
	f.Code(func(b *m.Block) {
		b.Assign("p", m.Call("curProcAddr"))
		b.StoreW(m.Add(m.V("p"), m.I(PMsgOp)), m.V("num"))
		b.StoreW(m.Add(m.V("p"), m.I(PMsgA1)), m.V("a0"))
		b.StoreW(m.Add(m.V("p"), m.I(PMsgA2)), m.V("a1"))
		b.StoreW(m.Add(m.V("p"), m.I(PMsgA3)), m.V("a2"))
		b.If(m.Eq(m.V("num"), m.I(SysOpen)), func(b *m.Block) {
			b.Call("copyin", m.Add(m.V("p"), m.I(PMsgPath)), m.V("a0"), m.I(DirNameLen))
		}, nil)
		b.StoreW(m.V("p"), m.I(stWaitReply))
		b.StoreW(m.Addr("nrunnable", 0), m.Sub(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
		// Wake the server if it is waiting for requests.
		b.Assign("sp", procAddr(m.LoadW(m.Addr("serverpid", 0))))
		b.If(m.And(m.Eq(m.LoadW(m.V("sp")), m.I(stSleeping)),
			m.Eq(m.LoadW(m.Add(m.V("sp"), m.I(PSleepChan))), m.U(serverChan))),
			func(b *m.Block) {
				b.StoreW(m.V("sp"), m.I(stRunnable))
				b.StoreW(m.Addr("nrunnable", 0), m.Add(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
			}, nil)
		// The reply delivers the result; do not complete the syscall.
		b.StoreW(m.Addr("restartsys", 0), m.I(1))
	})

	// ipcRecv(bufUVA): deliver the oldest pending request into the
	// server's buffer: [pid, op, a1, a2, a3, path(24)] = 44 bytes.
	f = k.Func("ipcRecv", m.TInt)
	f.Param("ubuf", m.TInt)
	f.Locals("i", "c", "j")
	f.Code(func(b *m.Block) {
		b.For("i", m.I(0), m.I(MaxProcs), func(b *m.Block) {
			b.Assign("c", procAddr(m.Add(m.V("i"), m.I(1))))
			b.If(m.Eq(m.LoadW(m.V("c")), m.I(stWaitReply)), func(b *m.Block) {
				b.StoreW(m.Addr("msgtmp", 0), m.Add(m.V("i"), m.I(1)))
				b.StoreW(m.Addr("msgtmp", 4), m.LoadW(m.Add(m.V("c"), m.I(PMsgOp))))
				b.StoreW(m.Addr("msgtmp", 8), m.LoadW(m.Add(m.V("c"), m.I(PMsgA1))))
				b.StoreW(m.Addr("msgtmp", 12), m.LoadW(m.Add(m.V("c"), m.I(PMsgA2))))
				b.StoreW(m.Addr("msgtmp", 16), m.LoadW(m.Add(m.V("c"), m.I(PMsgA3))))
				b.For("j", m.I(0), m.I(DirNameLen), func(b *m.Block) {
					b.StoreB(m.Add(m.Addr("msgtmp", 20), m.V("j")),
						m.LoadB(m.Add(m.Add(m.V("c"), m.I(PMsgPath)), m.V("j"))))
				})
				b.Call("copyout", m.V("ubuf"), m.Addr("msgtmp", 0), m.I(44))
				b.StoreW(m.V("c"), m.I(stWaitService))
				b.Return(m.Add(m.V("i"), m.I(1)))
			}, nil)
		})
		b.Call("sleepOn", m.U(serverChan))
		b.Return(m.I(0))
	})

	// ipcReply(clientPid, val, srcUVA, len): optional data transfer
	// into the client's original buffer argument, then resume it.
	f = k.Func("ipcReply", m.TInt)
	f.Param("cpid", m.TInt)
	f.Param("val", m.TInt)
	f.Param("src", m.TInt)
	f.Param("len", m.TInt)
	f.Locals("c", "sv")
	f.Code(func(b *m.Block) {
		b.Assign("c", procAddr(m.V("cpid")))
		b.If(m.Ne(m.LoadW(m.V("c")), m.I(stWaitService)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.If(m.GtU(m.V("len"), m.I(0)), func(b *m.Block) {
			b.StoreW(m.Addr("xfersrc", 0), m.LoadW(m.Addr("curpid", 0)))
			b.Call("crossCopy", m.V("cpid"),
				m.LoadW(m.Add(m.V("c"), m.I(PMsgA2))), m.V("src"), m.V("len"))
		}, nil)
		b.Assign("sv", m.Add(m.V("c"), m.I(PSave)))
		b.StoreW(m.Add(m.V("sv"), m.I(TFRegs+(isa.RegV0-1)*4)), m.V("val"))
		b.StoreW(m.Add(m.V("sv"), m.I(TFEPC)),
			m.Add(m.LoadW(m.Add(m.V("sv"), m.I(TFEPC))), m.I(4)))
		b.StoreW(m.Add(m.V("c"), m.I(PMsgOp)), m.Neg(m.I(1)))
		b.StoreW(m.V("c"), m.I(stRunnable))
		b.StoreW(m.Addr("nrunnable", 0), m.Add(m.LoadW(m.Addr("nrunnable", 0)), m.I(1)))
		b.Return(m.I(0))
	})

	// ipcFetch(clientPid, dstUVA, srcUVA, len): the server pulls data
	// out of a client's space (Mach vm_read) for write requests.
	f = k.Func("ipcFetch", m.TInt)
	f.Param("cpid", m.TInt)
	f.Param("dst", m.TInt)
	f.Param("src", m.TInt)
	f.Param("len", m.TInt)
	f.Locals("c")
	f.Code(func(b *m.Block) {
		b.Assign("c", procAddr(m.V("cpid")))
		b.If(m.Ne(m.LoadW(m.V("c")), m.I(stWaitService)), func(b *m.Block) {
			b.Return(m.Neg(m.I(1)))
		}, nil)
		b.StoreW(m.Addr("xfersrc", 0), m.V("cpid"))
		b.Call("crossCopy", m.LoadW(m.Addr("curpid", 0)), m.V("dst"), m.V("src"), m.V("len"))
		b.Return(m.V("len"))
	})
}

func buildTraceCtl(k *m.Module, cfg Config) {
	// traceMark appends a control word to the in-kernel buffer. It is
	// part of the tracing system itself and must not be instrumented
	// (§3.3: uninstrumented code in the traced kernel) — otherwise
	// its own stores would be memtraced into the buffer it manages.
	f := k.Func("traceMark", m.TVoid)
	f.Flags = asm.NoInstrument
	f.Param("w", m.TInt)
	f.Locals("ptr")
	f.Code(func(b *m.Block) {
		b.If(m.Eq(m.LoadW(m.Addr("traceon", 0)), m.I(0)), func(b *m.Block) {
			b.Return(nil)
		}, nil)
		b.Assign("ptr", m.LoadW(m.Addr("kbook", 0)))
		b.StoreW(m.V("ptr"), m.V("w"))
		b.StoreW(m.Addr("kbook", 0), m.Add(m.V("ptr"), m.I(4)))
	})

	// runAnalysis: the generation -> analysis mode switch (§3.1,
	// §4.3). The kernel marks the boundary, rings the doorbell (the
	// analysis program consumes the buffer and simulated time
	// passes), then services any I/O that completed during analysis
	// with tracing off — that activity's trace is the mode-switch
	// "dirt" and is deliberately discarded.
	f = k.Func("runAnalysis", m.TVoid)
	f.Flags = asm.NoInstrument // trace-control subsystem: never traced
	f.Locals("spin")
	f.Code(func(b *m.Block) {
		b.Call("traceMark", m.U(trace.MarkModeSw))
		b.StoreW(m.Addr("modesw", 0), m.Add(m.LoadW(m.Addr("modesw", 0)), m.I(1)))
		b.StoreW(m.Addr("traceon", 0), m.I(0))
		b.StoreW(m.U(traceBell), m.I(1)) // DoorbellBufferFull
		b.StoreW(m.Addr("kbook", 0), m.LoadW(m.Addr("tbufstart", 0)))
		b.StoreW(m.Addr("kbook", 16), m.I(0)) // FullFlag
		// Let pending completions drain untraced.
		b.MTC0(isa.C0Status, m.Or(m.MFC0(isa.C0Status), m.I(1)))
		b.Assign("spin", m.I(0))
		b.While(m.Lt(m.V("spin"), m.I(64)), func(b *m.Block) {
			b.Assign("spin", m.Add(m.V("spin"), m.I(1)))
		})
		b.MTC0(isa.C0Status, m.And(m.MFC0(isa.C0Status), m.Not(m.I(1))))
		// Discard the untraced interval's words.
		b.StoreW(m.Addr("kbook", 0), m.LoadW(m.Addr("tbufstart", 0)))
		b.StoreW(m.Addr("traceon", 0), m.I(1))
	})

	// traceCheck: a mid-handler trace safe point. The slack region
	// past the soft limit (§3.3) absorbs one bounded burst — a full
	// per-process buffer flush plus one handler's own trace — but a
	// long copy loop inside a single syscall is not bounded by the
	// handler structure, so the bulk-copy paths poll here once per
	// chunk and switch to analysis mode before the slack runs out.
	f = k.Func("traceCheck", m.TVoid)
	f.Flags = asm.NoInstrument
	f.Code(func(b *m.Block) {
		b.If(m.Eq(m.LoadW(m.Addr("traceon", 0)), m.I(0)), func(b *m.Block) {
			b.Return(nil)
		}, nil)
		b.If(m.GeU(m.LoadW(m.Addr("kbook", trace.BookBufPtr)),
			m.LoadW(m.Addr("kbook", trace.BookBufEnd))), func(b *m.Block) {
			b.Call("runAnalysis")
		}, nil)
	})
}
