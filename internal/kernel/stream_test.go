package kernel_test

import (
	"bytes"
	"strings"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/kernel"
	m "systrace/internal/mahler"
	"systrace/internal/obs"
	"systrace/internal/telemetry"
	"systrace/internal/trace"
	"systrace/internal/userland"
)

// bootHarness boots an untraced hello system with a trace buffer
// attached but never runs it: tests inject crafted streams into the
// buffer and ring the doorbell handler by hand.
func bootHarness(t *testing.T, bufBytes uint32) *kernel.System {
	t.Helper()
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix})
	if err != nil {
		t.Fatalf("kernel build: %v", err)
	}
	prog, err := userland.Build("hello", []*m.Module{helloModule()}, m.Options{})
	if err != nil {
		t.Fatalf("user build: %v", err)
	}
	disk, err := kernel.BuildDiskImage(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = bufBytes
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Orig}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// setBufPtr writes the kbook BufPtr bookkeeping word (a kseg0 VA).
func setBufPtr(sys *kernel.System, end uint32) {
	kb := sys.Kernel.MustSymbol("kbook") - cpu.KSeg0Base
	sys.M.RAM.WriteWord(kb, end)
}

// fillTraceWords plants a crafted stream in the trace buffer and sets
// BufPtr past its last word.
func fillTraceWords(sys *kernel.System, words []uint32) {
	pa := uint32(kernel.TraceBufVA) - cpu.KSeg0Base
	for i, w := range words {
		sys.M.RAM.WriteWord(pa+uint32(i)*4, w)
	}
	setBufPtr(sys, uint32(kernel.TraceBufVA)+uint32(len(words))*4)
}

// snapVal reads one series value from a registry snapshot; -1 if the
// series (with the given label subset) is absent.
func snapVal(reg *telemetry.Registry, name string, labels map[string]string) float64 {
	for _, mt := range reg.Snapshot().Metrics {
		if mt.Name != name {
			continue
		}
		match := true
		for k, v := range labels {
			if mt.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return mt.Value
		}
	}
	return -1
}

// TestDrainPathTable drives the doorbell drain over the boundary
// geometries of §4.3 — an empty buffer, a fill exactly at the soft
// limit, a fill deep in the slack region, and the final flush after
// halt — asserting drained-word counts, charged analysis cycles, and
// the marker mix the telemetry pass observed.
func TestDrainPathTable(t *testing.T) {
	bufBytes := uint32(trace.KernelBufSlack + 64<<10)
	mkWords := func(n int) ([]uint32, int, int) {
		words := make([]uint32, n)
		var enters, exits int
		for i := range words {
			switch {
			case i%64 == 8:
				words[i] = trace.MarkKernEnter
				enters++
			case i%64 == 9:
				words[i] = trace.MarkKernExit | 1
				exits++
			default:
				words[i] = 0x00400000 + uint32(i)*4
			}
		}
		return words, enters, exits
	}
	cases := []struct {
		name   string
		nWords int
		reason uint32
		halted bool
	}{
		{"empty", 0, dev.DoorbellBufferFull, false},
		{"soft_limit", int((bufBytes - trace.KernelBufSlack) / 4), dev.DoorbellBufferFull, false},
		{"deep_slack", int((bufBytes - 16) / 4), dev.DoorbellBufferFull, false},
		{"final_flush_after_halt", 1000, dev.DoorbellFlush, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := bootHarness(t, bufBytes)
			reg := telemetry.New()
			sys.AttachTelemetry(reg)
			var got []uint32
			sys.OnTrace = func(words []uint32) { got = append(got, words...) }
			words, enters, exits := mkWords(tc.nWords)
			fillTraceWords(sys, words)
			if tc.halted {
				sys.M.Halted = true
				sys.M.CPU.Halted = true
			}
			cycles := sys.M.TraceCtl.Handler(tc.reason)
			if len(got) != tc.nWords || sys.DrainedWords != uint64(tc.nWords) {
				t.Fatalf("drained %d words to OnTrace, DrainedWords=%d, want %d",
					len(got), sys.DrainedWords, tc.nWords)
			}
			if want := uint64(tc.nWords) * sys.Cfg.AnalysisPerWord; cycles != want {
				t.Errorf("charged %d analysis cycles, want %d", cycles, want)
			}
			for i, w := range got {
				if w != words[i] {
					t.Fatalf("word %d: got 0x%08x want 0x%08x", i, w, words[i])
				}
			}
			reason := "buffer_full"
			if tc.reason == dev.DoorbellFlush {
				reason = "final"
			}
			if v := snapVal(reg, "kernel_trace_flushes_total", map[string]string{"reason": reason}); v != 1 {
				t.Errorf("flushes{reason=%q} = %v, want 1", reason, v)
			}
			if v := snapVal(reg, "kernel_trace_markers_total", map[string]string{"kind": "kern_enter"}); v != float64(enters) {
				t.Errorf("markers{kern_enter} = %v, want %d", v, enters)
			}
			if v := snapVal(reg, "kernel_trace_markers_total", map[string]string{"kind": "kern_exit"}); v != float64(exits) {
				t.Errorf("markers{kern_exit} = %v, want %d", v, exits)
			}
			if v := snapVal(reg, "kernel_trace_drain_errors_total", nil); v != 0 {
				t.Errorf("drain errors = %v on a clean drain", v)
			}
		})
	}
}

// TestUnknownMarkerKindCounted: words in 0xfff8xxxx..0xffffxxxx pass
// IsMarker but name no registered kind. The telemetry pass used to hit
// a nil counter and panic the host; they must count as kind="unknown".
func TestUnknownMarkerKindCounted(t *testing.T) {
	sys := bootHarness(t, 4<<20)
	reg := telemetry.New()
	sys.AttachTelemetry(reg)
	fillTraceWords(sys, []uint32{
		0x00400010,
		0xfff80000, // smallest unregistered kind
		0xffff1234, // largest kind, nonzero payload
		trace.MarkKernEnter,
		0xfffeabcd,
	})
	sys.M.TraceCtl.Handler(dev.DoorbellBufferFull) // panicked before the fix
	if v := snapVal(reg, "kernel_trace_markers_total", map[string]string{"kind": "unknown"}); v != 3 {
		t.Errorf("markers{unknown} = %v, want 3", v)
	}
	if v := snapVal(reg, "kernel_trace_markers_total", map[string]string{"kind": "kern_enter"}); v != 1 {
		t.Errorf("markers{kern_enter} = %v, want 1", v)
	}
}

// TestCorruptKbookDrainError: a BufPtr outside the trace buffer must
// drop the drain loudly — flight-recorder failure dump, DrainErrors,
// the kernel_trace_drain_errors_total series — instead of silently
// returning zero.
func TestCorruptKbookDrainError(t *testing.T) {
	sys := bootHarness(t, 4<<20)
	reg := telemetry.New()
	sys.AttachTelemetry(reg)
	var dump bytes.Buffer
	restore := obs.SetFailureWriter(&dump)
	defer restore()
	var analyzed bool
	sys.OnTrace = func([]uint32) { analyzed = true }

	setBufPtr(sys, 0x12345678) // far past the buffer end
	if got := sys.M.TraceCtl.Handler(dev.DoorbellBufferFull); got != 0 {
		t.Errorf("corrupt drain charged %d cycles, want 0", got)
	}
	if analyzed {
		t.Error("analysis program ran over a corrupt drain")
	}
	if sys.DrainErrors != 1 {
		t.Fatalf("DrainErrors = %d, want 1", sys.DrainErrors)
	}
	if !strings.Contains(dump.String(), "trace_drain_corrupt_kbook") {
		t.Errorf("failure dump missing trace_drain_corrupt_kbook: %q", dump.String())
	}
	if v := snapVal(reg, "kernel_trace_drain_errors_total", nil); v != 1 {
		t.Errorf("drain error series = %v, want 1", v)
	}

	setBufPtr(sys, uint32(kernel.TraceBufVA)-4) // below the buffer start
	if got := sys.M.TraceCtl.Handler(dev.DoorbellBufferFull); got != 0 {
		t.Errorf("below-start drain charged %d cycles, want 0", got)
	}
	if sys.DrainErrors != 2 {
		t.Errorf("DrainErrors = %d, want 2", sys.DrainErrors)
	}
}

// TestHostReadBounds: the host-side RAM readers must reject bad pids,
// unknown symbols, and corrupt page-table entries instead of slicing
// out of bounds.
func TestHostReadBounds(t *testing.T) {
	sys := bootHarness(t, 0)
	if _, ok := sys.ExitStatusOK(0); ok {
		t.Error("ExitStatusOK(0) = ok")
	}
	if _, ok := sys.ExitStatusOK(1 << 20); ok { // sliced past RAM before the fix
		t.Error("ExitStatusOK(1<<20) = ok")
	}
	if _, ok := sys.ExitStatusOK(1); !ok {
		t.Error("ExitStatusOK(1) rejected a valid pid")
	}
	if sys.ExitStatus(1<<20) != 0 {
		t.Error("ExitStatus out of range must read as zero")
	}
	if _, ok := sys.ReadUserWord(0, 0x00400000); ok {
		t.Error("ReadUserWord(pid 0) = ok")
	}
	if _, ok := sys.ReadUserWord(kernel.MaxProcs+1, 0x00400000); ok {
		t.Error("ReadUserWord(pid > MaxProcs) = ok")
	}
	if _, ok := sys.ReadKernelWordOK("no_such_symbol_anywhere"); ok {
		t.Error("ReadKernelWordOK(unknown symbol) = ok")
	}
	if sys.ReadKernelWord("no_such_symbol_anywhere") != 0 {
		t.Error("ReadKernelWord(unknown symbol) must read as zero")
	}

	// Corrupt page tables: a first-level entry whose page-table page
	// lies past RAM, then a valid first level whose PTE points past
	// RAM. Both sliced out of bounds before the fix.
	km := sys.Kernel.MustSymbol("kseg2map") - cpu.KSeg0Base
	va := uint32(0x00400000)
	off := uint32(1)<<kernel.PTSpanShift + (va>>12)<<2
	sys.M.RAM.WriteWord(km+(off>>12)*4, 0x7ffff000|cpu.EloV)
	if _, ok := sys.ReadUserWord(1, va); ok {
		t.Error("ReadUserWord with out-of-range page-table page = ok")
	}
	const ptPage = uint32(0x00300000) // scratch page inside RAM
	sys.M.RAM.WriteWord(km+(off>>12)*4, ptPage|cpu.EloV)
	sys.M.RAM.WriteWord(ptPage|off&0xfff, 0x7ffff000|cpu.EloV)
	if _, ok := sys.ReadUserWord(1, va); ok {
		t.Error("ReadUserWord with out-of-range PTE = ok")
	}
}

// tracedFilesum boots the traced filesum workload with a small trace
// buffer (many epochs) and the given drain configuration.
func tracedFilesum(t *testing.T, data []byte, analysisPerWord uint64, stream kernel.StreamConfig) *kernel.System {
	t.Helper()
	kexe, err := kernel.Build(kernel.Config{Flavor: kernel.Ultrix, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := userland.Build("filesum", []*m.Module{fileSumModule()}, m.Options{})
	if err != nil {
		t.Fatal(err)
	}
	disk, err := kernel.BuildDiskImage(map[string][]byte{"data.bin": data})
	if err != nil {
		t.Fatal(err)
	}
	cfg := kernel.DefaultBoot(kernel.Ultrix)
	cfg.DiskImage = disk
	cfg.TraceBufBytes = trace.KernelBufSlack + 128<<10
	cfg.ClockInterval *= 15
	cfg.AnalysisPerWord = analysisPerWord
	cfg.Stream = stream
	sys, err := kernel.Boot(kexe, []kernel.BootProc{{Exe: prog.Instr}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func collectRun(t *testing.T, sys *kernel.System) []uint32 {
	t.Helper()
	var all []uint32
	sys.OnTrace = func(words []uint32) { all = append(all, words...) }
	if err := sys.Run(2_000_000_000); err != nil {
		t.Fatalf("run: %v (console %q)", err, sys.Console())
	}
	if !sys.M.Halted {
		t.Fatal("machine did not halt")
	}
	return all
}

// TestStreamingDrainFidelity: with zero-cost drains (no analysis or
// handoff cycles, so machine timing is identical across modes), the
// epoch-ring consumer — raw and compressed — must deliver exactly the
// word stream the two-phase drain delivers, in order.
func TestStreamingDrainFidelity(t *testing.T) {
	data, sum := testData()
	base := collectRun(t, tracedFilesum(t, data, 0, kernel.StreamConfig{}))
	if len(base) == 0 {
		t.Fatal("baseline drained no trace")
	}
	cases := map[string]kernel.StreamConfig{
		"raw":        {Epochs: 2},
		"compressed": {Epochs: 4, Compress: true},
	}
	for name, sc := range cases {
		t.Run(name, func(t *testing.T) {
			sys := tracedFilesum(t, data, 0, sc)
			got := collectRun(t, sys)
			if status := sys.ExitStatus(1); status != sum {
				t.Errorf("exit status %d, want %d", status, sum)
			}
			if len(got) != len(base) {
				t.Fatalf("streamed %d words, two-phase drained %d", len(got), len(base))
			}
			for i := range got {
				if got[i] != base[i] {
					t.Fatalf("word %d: streamed 0x%08x, two-phase 0x%08x", i, got[i], base[i])
				}
			}
			if sys.StreamStats.Epochs != sys.Doorbells {
				t.Errorf("epochs %d != doorbells %d", sys.StreamStats.Epochs, sys.Doorbells)
			}
			if sys.StreamStats.DecodeErrors != 0 {
				t.Errorf("decode errors: %d", sys.StreamStats.DecodeErrors)
			}
			if sc.Compress {
				if sys.StreamStats.EncodedBytes == 0 ||
					sys.StreamStats.EncodedBytes >= sys.StreamStats.RawBytes {
					t.Errorf("compression did nothing: %d raw -> %d encoded",
						sys.StreamStats.RawBytes, sys.StreamStats.EncodedBytes)
				}
			}
		})
	}
}

// TestStreamingDrainOverlap: under the standard analysis cost, the
// epoch ring must beat the stop-the-world two-phase drain on simulated
// wall clock, with the hidden analysis share recorded on the machine's
// overlapped-cycle counter.
func TestStreamingDrainOverlap(t *testing.T) {
	data, _ := testData()
	two := tracedFilesum(t, data, 8, kernel.StreamConfig{})
	collectRun(t, two)
	st := tracedFilesum(t, data, 8, kernel.DefaultStream())
	collectRun(t, st)

	if st.M.Cycles() >= two.M.Cycles() {
		t.Errorf("streaming %d cycles, two-phase %d: overlap did not pay",
			st.M.Cycles(), two.M.Cycles())
	}
	if want := st.DrainedWords * 8; st.M.OverlapCycles() != want {
		t.Errorf("overlap cycles %d, want drained*8 = %d", st.M.OverlapCycles(), want)
	}
	if two.M.OverlapCycles() != 0 {
		t.Errorf("two-phase recorded %d overlap cycles", two.M.OverlapCycles())
	}
	if st.StreamStats.Epochs == 0 {
		t.Fatal("no epochs handed off")
	}
	t.Logf("two-phase=%d cycles (analysis %d), stream=%d cycles (handoff+stall %d, overlapped %d, stalls %d)",
		two.M.Cycles(), two.M.ExtraCycles(), st.M.Cycles(), st.M.ExtraCycles(),
		st.M.OverlapCycles(), st.StreamStats.StallCycles)
}
