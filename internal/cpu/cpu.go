// Package cpu implements the simulated processor: a 32-bit RISC in the
// style of the MIPS R3000 used by the DECstation 5000/200, with branch
// delay slots, a software-managed 64-entry TLB with random
// replacement, the classic KU/IE status stack, and the four-segment
// address map. Both the traced and untraced systems — kernels and user
// programs alike — execute on this interpreter; the tracing code
// (bbtrace, memtrace, instrumented blocks) is ordinary guest code.
package cpu

import (
	"fmt"

	"systrace/internal/obs"
)

// Segment boundaries (R3000).
const (
	KUSegEnd  = 0x80000000 // kuseg: TLB-mapped, user + kernel
	KSeg0Base = 0x80000000 // unmapped, cached, kernel only
	KSeg1Base = 0xa0000000 // unmapped, uncached, kernel only
	KSeg2Base = 0xc0000000 // TLB-mapped, kernel only
)

// Exception vectors. A miss on a kuseg address takes the dedicated
// UTLB refill vector with its nine-instruction handler; kseg2 (KTLB)
// misses and all other exceptions take the general vector, "which is
// much slower (several hundred instructions)" (paper §4.1).
const (
	VecUTLB    = 0x80000000
	VecGeneral = 0x80000080
)

// Exception cause codes.
const (
	ExcInt      = 0 // external interrupt
	ExcMod      = 1 // TLB modification (store to clean page)
	ExcTLBL     = 2 // TLB miss/invalid on load or fetch
	ExcTLBS     = 3 // TLB miss/invalid on store
	ExcAdEL     = 4 // address error on load/fetch
	ExcAdES     = 5 // address error on store
	ExcSyscall  = 8
	ExcBreak    = 9
	ExcReserved = 10 // reserved instruction
	ExcOverflow = 12
)

// Status register bits.
const (
	StIEc = 1 << 0 // interrupts enabled, current
	StKUc = 1 << 1 // user mode, current
	StIEp = 1 << 2
	StKUp = 1 << 3
	StIEo = 1 << 4
	StKUo = 1 << 5
	// Interrupt mask occupies bits 8..15 (one per line).
	StIMShift = 8
)

// Cause register bits.
const (
	CauseExcShift = 2
	CauseIPShift  = 8
	CauseBD       = 1 << 31
)

// TLB geometry: 64 entries, entries 0..7 wired (never hit by TLBWR),
// random replacement among 8..63, matching the R3000.
const (
	NTLB       = 64
	TLBWired   = 8
	PageSize   = 4096
	PageShift  = 12
	EntryHiVPN = 0xfffff000
	// ASID lives in bits 11:6 of EntryHi.
	ASIDShift = 6
	ASIDMask  = 0x3f << ASIDShift
	// EntryLo: PFN in 31:12, then N D V G.
	EloPFN = 0xfffff000
	EloN   = 1 << 11 // uncached
	EloD   = 1 << 10 // dirty (writable)
	EloV   = 1 << 9  // valid
	EloG   = 1 << 8  // global (ignore ASID)
)

// TLBEntry is one translation pair.
type TLBEntry struct {
	Hi uint32
	Lo uint32
}

// Bus is the physical memory system: RAM plus memory-mapped devices.
// Addresses are physical. A false ok return is a bus error, which the
// simulator treats as fatal (the synthetic machines never generate
// them in correct operation).
type Bus interface {
	Read(p uint32, size int) (v uint32, ok bool)
	Write(p uint32, size int, v uint32) bool
	// FetchWord is a 4-byte read on the instruction port.
	FetchWord(p uint32) (v uint32, ok bool)
	// RAMPage returns the RAM frame containing p for fast-path access,
	// or nil if p is device space or out of range.
	RAMPage(p uint32) []byte
}

// Observer sees every architectural event; the execution-driven memory
// system simulator (the "direct measurement" side of the validation)
// attaches here. All methods must be cheap; kernel is the mode, and
// cached reflects kseg1 bypass.
type Observer interface {
	Fetch(va, pa uint32, kernel, cached bool)
	Load(va, pa uint32, size int, kernel, cached bool)
	Store(va, pa uint32, size int, kernel, cached bool)
	Exception(code int, vector uint32)
	FPOp(latency int)
}

// RandomShift positions the Random index in the architectural
// register image: on the R3000 the TLB index occupies bits 13:8 of
// Random (and of Index), with the low eight bits reading as zero.
const RandomShift = 8

// CP0 is the system coprocessor state. Fields hold the *internal*
// representation each consumer wants; where that differs from the
// architectural register image, the layout is documented here and
// MFC0 (execCOP0) performs the conversion:
//
//   - Random holds the bare TLB index 0..NTLB-1. TLB replacement
//     (TLBWR, and the per-Step decrement) consumes it directly;
//     MFC0 returns it shifted into bits 13:8 (see RandomShift), which
//     is the only architecturally visible view.
//   - All other fields are stored exactly as MFC0 returns them.
type CP0 struct {
	Index    uint32
	Random   uint32
	EntryLo  uint32
	Context  uint32
	BadVAddr uint32
	EntryHi  uint32
	Status   uint32
	Cause    uint32
	EPC      uint32
}

// Class buckets retired instructions by kind, derived from the primary
// opcode: memory instructions (with FP loads/stores counted as memory,
// not FP), control transfers (JR/JALR live under OpSpecial and are
// counted as ALU — the approximation is static and documented), FP
// arithmetic, and system-coprocessor operations.
type Class uint8

const (
	ClassALU Class = iota
	ClassLoad
	ClassStore
	ClassBranch
	ClassFP
	ClassSystem
	NClass
)

func (c Class) String() string {
	switch c {
	case ClassALU:
		return "alu"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	case ClassBranch:
		return "branch"
	case ClassFP:
		return "fp"
	case ClassSystem:
		return "system"
	}
	return "unknown"
}

// Stats are architectural event counts maintained by the CPU itself.
type Stats struct {
	Instret    uint64 // instructions retired
	UTLBMisses uint64 // refill-vector entries
	KTLBMisses uint64 // kseg2 misses (general vector)
	Exceptions uint64
	Interrupts uint64
	Syscalls   uint64
	// Classes splits Instret by instruction class.
	Classes [NClass]uint64
}

// tlbCache is a one-entry translation fast path per access port.
type tlbCache struct {
	vpage  uint32 // va & EntryHiVPN, 1 = invalid
	ppage  uint32
	ram    []byte // host slice for the frame, nil if device space
	cached bool   // architecturally cached (not kseg1 / EloN)
	gen    uint64 // tcGen at fill time; stale entries miss (tc2 only)
}

// tc2Sets sizes the second-level translation cache: direct-mapped by
// VPN, one array per access kind (read vs write, so a load-filled
// entry can never satisfy a store and skip the TLB dirty-bit check).
const tc2Sets = 64

// CPU is the processor. It is not safe for concurrent use.
type CPU struct {
	GPR [32]uint32
	// FPR is the value view of the FP registers; MTC1/MFC1 convert
	// through int32 (there is no raw-bit word view — see
	// TestMTC1MFC1Semantics, which pins that choice).
	FPR    [32]float64
	FPCond bool
	HI, LO uint32
	PC     uint32

	CP0  CP0
	TLB  [NTLB]TLBEntry
	Bus  Bus
	Obs  Observer
	Stat Stats

	inDelay     bool
	execInSlot  bool // the currently executing instruction is a delay slot
	delayTarget uint32
	irqLines    uint32

	icache tlbCache
	dcache tlbCache
	wcache tlbCache

	// Second-level translation cache behind the one-entry caches:
	// refill consults it before walking the TLB, so data working sets
	// larger than one page don't pay a 64-entry lookupTLB scan per
	// page alternation. Entries carry the tcGen they were filled in;
	// invalidateCaches bumps the generation, invalidating all of them
	// in O(1) (the UTLB refill handler invalidates on every TLBWR, so
	// a sweep would be on the guest's hottest exception path).
	tc2r  [tc2Sets]tlbCache
	tc2w  [tc2Sets]tlbCache
	tcGen uint64

	// Predecode engine state: the frame cache, the decoded frame for
	// the current instruction page (nil forces the slow path), and its
	// physical frame number for invalidation matching.
	pd       predecoder
	ipd      *pdFrame
	ipdFrame uint32
	// pdExit asks StepN's batch loop to return to its caller after the
	// current instruction: set on exceptions, COP0 dispatch, and device
	// (bus) accesses — exactly the operations that can change interrupt
	// or device-event state mid-batch.
	pdExit bool

	// Superblock engine state: linearized multi-block chains built on
	// top of the predecode cache (see superblock.go).
	sb sbState

	// prof is the guest-PC sampling profiler hook (see SetProfiler in
	// obs.go); zero when no sampler is attached.
	prof profiler

	// lastDevKey is the page|direction of the last device access the
	// flight recorder saw; devAccess uses it to emit edges, not every
	// word of a device-streaming loop.
	lastDevKey uint64

	// Per-port observer flags, re-synced by Step when c.Obs changes
	// nil-ness; they hoist the interface nil check out of every
	// fetch/load/store/exception/FP event.
	obsAny   bool
	obsFetch bool
	obsLoad  bool
	obsStore bool
	obsExc   bool
	obsFP    bool

	// Halted is set by the machine (e.g. final process exit) to stop
	// Run loops.
	Halted bool
	// HaltOnBreak makes a break instruction halt the CPU instead of
	// raising an exception — used by bare-metal toolchain tests that
	// run without a kernel.
	HaltOnBreak bool
	// FaultMsg holds a description of a fatal simulator error.
	FaultMsg string
}

// New returns a CPU in kernel mode with interrupts disabled, PC at
// entry.
func New(bus Bus, entry uint32) *CPU {
	c := &CPU{Bus: bus, PC: entry}
	c.CP0.Random = NTLB - 1
	c.invalidateCaches()
	return c
}

func (c *CPU) invalidateCaches() {
	c.icache.vpage = 1
	c.dcache.vpage = 1
	c.wcache.vpage = 1
	c.tcGen++
}

// KernelMode reports whether the CPU is in kernel mode.
func (c *CPU) KernelMode() bool { return c.CP0.Status&StKUc == 0 }

// ASID returns the current address-space id from EntryHi.
func (c *CPU) ASID() uint32 { return c.CP0.EntryHi & ASIDMask >> ASIDShift }

// SetIRQ raises or clears external interrupt line (0..7).
func (c *CPU) SetIRQ(line int, on bool) {
	bit := uint32(1) << (uint(line) + CauseIPShift)
	old := c.irqLines
	if on {
		c.irqLines |= bit
	} else {
		c.irqLines &^= bit
	}
	if c.irqLines != old {
		var lvl uint64
		if on {
			lvl = 1
		}
		obs.Emit(evIRQ, uint64(line), lvl)
	}
}

// IRQPending reports whether an enabled interrupt is pending.
func (c *CPU) IRQPending() bool {
	if c.CP0.Status&StIEc == 0 {
		return false
	}
	return c.irqLines&(c.CP0.Status>>StIMShift<<CauseIPShift)&0xff00 != 0
}

// fault records a fatal simulator error and halts.
func (c *CPU) fault(format string, args ...any) {
	if c.FaultMsg == "" {
		c.FaultMsg = fmt.Sprintf(format, args...)
	}
	c.Halted = true
}

// Exception performs exception entry: pushes the KU/IE stack, records
// EPC/Cause (with BD if in a delay slot), and vectors.
func (c *CPU) Exception(code int, vector uint32) {
	c.pdExit = true
	c.Stat.Exceptions++
	obs.Emit(evException, uint64(code), uint64(c.PC))
	st := c.CP0.Status
	c.CP0.Status = st&^0x3f | st<<2&0x3c // push stack, KUc=IEc=0
	cause := uint32(code) << CauseExcShift
	cause |= c.irqLines
	if c.inDelay || c.execInSlot {
		// The faulting (or about-to-execute) instruction sits in a
		// branch delay slot: EPC must name the branch so the pair
		// re-executes on return.
		cause |= CauseBD
		c.CP0.EPC = c.PC - 4
	} else {
		c.CP0.EPC = c.PC
	}
	c.CP0.Cause = cause
	c.inDelay = false
	c.execInSlot = false
	c.PC = vector
	if c.obsExc {
		c.Obs.Exception(code, vector)
	}
}

// rfe pops the KU/IE stack.
func (c *CPU) rfe() {
	st := c.CP0.Status
	c.CP0.Status = st&^0x0f | st>>2&0x0f
}

// lookupTLB searches for a matching entry; returns index or -1.
func (c *CPU) lookupTLB(va uint32) int {
	vpn := va & EntryHiVPN
	asid := c.CP0.EntryHi & ASIDMask
	for i := 0; i < NTLB; i++ {
		e := &c.TLB[i]
		if e.Hi&EntryHiVPN != vpn {
			continue
		}
		if e.Lo&EloG != 0 || e.Hi&ASIDMask == asid {
			return i
		}
	}
	return -1
}

// translate maps va to a physical address for an access of the given
// kind. On failure it raises the appropriate exception and returns
// ok=false.
func (c *CPU) translate(va uint32, store, fetch bool) (pa uint32, cached, ok bool) {
	switch {
	case va < KUSegEnd:
		// TLB-mapped user segment.
	case va < KSeg1Base:
		if !c.KernelMode() {
			c.addressError(va, store)
			return 0, false, false
		}
		return va - KSeg0Base, true, true
	case va < KSeg2Base:
		if !c.KernelMode() {
			c.addressError(va, store)
			return 0, false, false
		}
		return va - KSeg1Base, false, true
	default:
		if !c.KernelMode() {
			c.addressError(va, store)
			return 0, false, false
		}
		// kseg2: TLB-mapped kernel segment.
	}
	i := c.lookupTLB(va)
	if i < 0 {
		c.tlbMiss(va, store)
		return 0, false, false
	}
	lo := c.TLB[i].Lo
	if lo&EloV == 0 {
		// Invalid entries hit in the TLB and take the general vector.
		c.CP0.BadVAddr = va
		c.setContext(va)
		c.CP0.EntryHi = c.CP0.EntryHi&ASIDMask | va&EntryHiVPN
		code := ExcTLBL
		if store {
			code = ExcTLBS
		}
		c.Exception(code, VecGeneral)
		return 0, false, false
	}
	if store && lo&EloD == 0 {
		c.CP0.BadVAddr = va
		c.setContext(va)
		c.CP0.EntryHi = c.CP0.EntryHi&ASIDMask | va&EntryHiVPN
		c.Exception(ExcMod, VecGeneral)
		return 0, false, false
	}
	return lo&EloPFN | va&(PageSize-1), lo&EloN == 0, true
}

func (c *CPU) setContext(va uint32) {
	c.CP0.Context = c.CP0.Context&0xffe00000 | va>>PageShift<<2&0x001ffffc
}

func (c *CPU) tlbMiss(va uint32, store bool) {
	c.CP0.BadVAddr = va
	c.setContext(va)
	c.CP0.EntryHi = c.CP0.EntryHi&ASIDMask | va&EntryHiVPN
	code := ExcTLBL
	if store {
		code = ExcTLBS
	}
	if va < KUSegEnd {
		c.Stat.UTLBMisses++
		c.Exception(code, VecUTLB)
	} else {
		c.Stat.KTLBMisses++
		c.Exception(code, VecGeneral)
	}
}

func (c *CPU) addressError(va uint32, store bool) {
	c.CP0.BadVAddr = va
	code := ExcAdEL
	if store {
		code = ExcAdES
	}
	c.Exception(code, VecGeneral)
}
