package cpu

// Predecode cache: the first time a physical text frame is executed,
// all 1024 words are decoded into a dense array of micro-ops — internal
// opcode index, pre-extracted register numbers and shift amount,
// sign/zero-extended immediate, precomputed jump-target pieces, and the
// retirement class — and Step dispatches off that array with no byte
// reassembly and no field re-extraction. Frames are keyed by *physical*
// frame number, so virtual aliases (multiple mappings of one text
// frame, or the same frame under different ASIDs) share one decode and
// branch/jump targets are formed from the current PC at execution time.
//
// Correctness is a write-invalidation discipline plus a differential
// oracle (predecode_test.go): a frame is dropped when anything stores
// into it — guest stores (the bitmap check in store()), host-side
// writes through the mem.RAM API (the machine registers InvalidatePhys
// as the RAM write hook), and RAMPage-bypassing device DMA (the machine
// forwards dev.WriteNotifier callbacks here). The retained reference
// interpreter (SetPredecode(false) — the exact pre-predecode fetch +
// decode + exec path) is stepped in lockstep against this engine over
// random instruction sequences and full workload boots.

import (
	"encoding/binary"
	"math"

	"systrace/internal/isa"
	"systrace/internal/obs"
)

// pdOp is the internal opcode index of a micro-op. Every 32-bit word
// decodes to exactly one pdOp; words the reference interpreter treats
// as reserved decode to pdReserved (keeping the class of their primary
// opcode so retirement accounting matches).
type pdOp uint8

const (
	pdReserved pdOp = iota

	// SPECIAL
	pdSLL
	pdSRL
	pdSRA
	pdSLLV
	pdSRLV
	pdSRAV
	pdJR
	pdJALR
	pdSYSCALL
	pdBREAK
	pdMFHI
	pdMTHI
	pdMFLO
	pdMTLO
	pdMULT
	pdMULTU
	pdDIV
	pdDIVU
	pdADDU
	pdSUBU
	pdAND
	pdOR
	pdXOR
	pdNOR
	pdSLT
	pdSLTU

	// Branches and jumps (imm holds the sign-extended offset << 2;
	// jumps hold the pre-shifted 26-bit target field).
	pdBLTZ
	pdBGEZ
	pdJ
	pdJAL
	pdBEQ
	pdBNE
	pdBLEZ
	pdBGTZ

	// Immediate ALU (imm pre-extended per op; LUI pre-shifted).
	pdADDIU
	pdSLTI
	pdSLTIU
	pdANDI
	pdORI
	pdXORI
	pdLUI

	// Memory (imm sign-extended displacement).
	pdLB
	pdLBU
	pdLH
	pdLHU
	pdLW
	pdSB
	pdSH
	pdSW
	pdLWC1
	pdSWC1

	// System and FP coprocessor ops are rare; they keep the raw word
	// (in imm) and dispatch through the reference helpers so their
	// semantics are identical by construction.
	pdCOP0
	pdCOP1
)

// uop is one predecoded instruction. 12 bytes; a frame of 1024 is 12 KB.
type uop struct {
	op  pdOp
	rs  uint8
	rt  uint8
	rd  uint8
	sh  uint8
	cls Class
	imm uint32
}

// pdFrameWords is the number of instruction slots per physical frame.
const pdFrameWords = PageSize / 4

// pdFrame is the decoded image of one physical text frame.
type pdFrame struct {
	ops [pdFrameWords]uop
}

// pdMaxFrames bounds resident decoded frames (48 MB of micro-ops); the
// cache is dropped wholesale beyond it. Real workloads execute a few
// dozen text frames, so this is a runaway backstop, not a working-set
// knob.
const pdMaxFrames = 4096

// predecoder is the per-CPU cache state. frames and bitmap are both
// indexed by physical frame number (pa >> PageShift); the bitmap is the
// store-path fast test, the map holds the decoded arrays.
type predecoder struct {
	frames map[uint32]*pdFrame
	bitmap []uint64
	off    bool

	hits          uint64 // instructions dispatched from a decoded frame
	misses        uint64 // frames decoded
	invalidations uint64 // frames dropped after a write into their page
}

// SetPredecode selects the execution engine: true (the default) runs
// the predecoded fast path, false retains the reference interpreter
// (per-instruction fetch, byte reassembly, full decode switch) — the
// lockstep oracle and the BENCH_cpu baseline run with it off.
func (c *CPU) SetPredecode(on bool) {
	c.pd.off = !on
	c.dropAllFrames()
	c.ipd = nil
	c.icache.vpage = 1
}

// PredecodeActive reports whether the predecode engine is selected.
// The machine uses it to pick between the batched StepN run loop and
// the plain per-Step loop (calling StepN with predecode off would just
// add a refused call per instruction to the reference engine).
func (c *CPU) PredecodeActive() bool { return !c.pd.off }

// PredecodeStats reports the cache counters: instructions dispatched
// from decoded frames, frames decoded, and frames invalidated by
// writes.
func (c *CPU) PredecodeStats() (hits, misses, invalidations uint64) {
	return c.pd.hits, c.pd.misses, c.pd.invalidations
}

// pdFrameFor returns the decoded frame for the physical frame holding
// ppage, decoding it from ram (the 4 KB host slice for the frame) on
// first execution.
func (c *CPU) pdFrameFor(ppage uint32, ram []byte) *pdFrame {
	fn := ppage >> PageShift
	if f, ok := c.pd.frames[fn]; ok {
		return f
	}
	if len(c.pd.frames) >= pdMaxFrames {
		c.dropAllFrames()
	}
	c.pd.misses++
	f := &pdFrame{}
	for i := 0; i < pdFrameWords; i++ {
		f.ops[i] = decodeUop(binary.BigEndian.Uint32(ram[i*4:]))
	}
	if c.pd.frames == nil {
		c.pd.frames = make(map[uint32]*pdFrame)
	}
	c.pd.frames[fn] = f
	w := int(fn >> 6)
	if w >= len(c.pd.bitmap) {
		nb := make([]uint64, w+1)
		copy(nb, c.pd.bitmap)
		c.pd.bitmap = nb
	}
	c.pd.bitmap[w] |= 1 << (fn & 63)
	return f
}

// InvalidatePhys drops any predecoded frames overlapping the physical
// range [p, p+n). The machine registers it as the RAM write hook and
// forwards device DMA notifications here, so every store path that
// bypasses the CPU's own write port still invalidates stale decodes.
func (c *CPU) InvalidatePhys(p, n uint32) {
	if n == 0 || len(c.pd.bitmap) == 0 {
		return
	}
	first := p >> PageShift
	last := (p + n - 1) >> PageShift
	for fn := first; ; fn++ {
		c.dropFrame(fn)
		if fn >= last {
			return
		}
	}
}

// dropFrame invalidates one physical frame if it is decoded. If the
// CPU is currently executing from it, the instruction-side caches are
// flushed so the next fetch re-decodes current memory.
func (c *CPU) dropFrame(fn uint32) {
	w := int(fn >> 6)
	if w >= len(c.pd.bitmap) || c.pd.bitmap[w]&(1<<(fn&63)) == 0 {
		return
	}
	c.pd.bitmap[w] &^= 1 << (fn & 63)
	delete(c.pd.frames, fn)
	c.pd.invalidations++
	executing := uint64(0)
	if c.ipd != nil && c.ipdFrame == fn {
		c.ipd = nil
		c.icache.vpage = 1
		// StepN caches the frame pointer across its batch; force it
		// back to the caller so the next fetch re-decodes.
		c.pdExit = true
		executing = 1
	}
	c.sbInvalidateFrame(fn)
	obs.Emit(evFrameDrop, uint64(fn), executing)
}

// dropAllFrames empties the cache (engine switch or the pdMaxFrames
// backstop). The caller re-establishes c.ipd.
func (c *CPU) dropAllFrames() {
	c.pd.invalidations += uint64(len(c.pd.frames))
	c.pd.frames = nil
	for i := range c.pd.bitmap {
		c.pd.bitmap[i] = 0
	}
	c.ipd = nil
	// Superblocks are built from decoded frames; none may outlive them.
	c.sbDropAll()
}

// decodeUop translates one machine word into a micro-op. The case
// analysis mirrors CPU.exec exactly: any word exec would raise
// ExcReserved for becomes pdReserved, and the class column matches the
// opClass table (reserved encodings retire under their primary
// opcode's class, as in the reference path).
func decodeUop(w uint32) uop {
	op := w >> 26
	u := uop{
		rs:  uint8(w >> 21 & 31),
		rt:  uint8(w >> 16 & 31),
		rd:  uint8(w >> 11 & 31),
		sh:  uint8(w >> 6 & 31),
		cls: opClass[op],
		imm: uint32(int32(int16(w))),
	}
	switch op {
	case isa.OpSpecial:
		switch w & 63 {
		case isa.FnSLL:
			u.op = pdSLL
		case isa.FnSRL:
			u.op = pdSRL
		case isa.FnSRA:
			u.op = pdSRA
		case isa.FnSLLV:
			u.op = pdSLLV
		case isa.FnSRLV:
			u.op = pdSRLV
		case isa.FnSRAV:
			u.op = pdSRAV
		case isa.FnJR:
			u.op = pdJR
		case isa.FnJALR:
			u.op = pdJALR
		case isa.FnSYSCALL:
			u.op = pdSYSCALL
		case isa.FnBREAK:
			u.op = pdBREAK
		case isa.FnMFHI:
			u.op = pdMFHI
		case isa.FnMTHI:
			u.op = pdMTHI
		case isa.FnMFLO:
			u.op = pdMFLO
		case isa.FnMTLO:
			u.op = pdMTLO
		case isa.FnMULT:
			u.op = pdMULT
		case isa.FnMULTU:
			u.op = pdMULTU
		case isa.FnDIV:
			u.op = pdDIV
		case isa.FnDIVU:
			u.op = pdDIVU
		case isa.FnADDU:
			u.op = pdADDU
		case isa.FnSUBU:
			u.op = pdSUBU
		case isa.FnAND:
			u.op = pdAND
		case isa.FnOR:
			u.op = pdOR
		case isa.FnXOR:
			u.op = pdXOR
		case isa.FnNOR:
			u.op = pdNOR
		case isa.FnSLT:
			u.op = pdSLT
		case isa.FnSLTU:
			u.op = pdSLTU
		}
	case isa.OpRegImm:
		u.imm <<= 2
		switch w >> 16 & 31 {
		case isa.RtBLTZ:
			u.op = pdBLTZ
		case isa.RtBGEZ:
			u.op = pdBGEZ
		}
	case isa.OpJ:
		u.op = pdJ
		u.imm = w << 2 & 0x0ffffffc
	case isa.OpJAL:
		u.op = pdJAL
		u.imm = w << 2 & 0x0ffffffc
	case isa.OpBEQ:
		u.op = pdBEQ
		u.imm <<= 2
	case isa.OpBNE:
		u.op = pdBNE
		u.imm <<= 2
	case isa.OpBLEZ:
		u.op = pdBLEZ
		u.imm <<= 2
	case isa.OpBGTZ:
		u.op = pdBGTZ
		u.imm <<= 2
	case isa.OpADDIU:
		u.op = pdADDIU
	case isa.OpSLTI:
		u.op = pdSLTI
	case isa.OpSLTIU:
		u.op = pdSLTIU
	case isa.OpANDI:
		u.op = pdANDI
		u.imm = uint32(uint16(w))
	case isa.OpORI:
		u.op = pdORI
		u.imm = uint32(uint16(w))
	case isa.OpXORI:
		u.op = pdXORI
		u.imm = uint32(uint16(w))
	case isa.OpLUI:
		u.op = pdLUI
		u.imm = uint32(uint16(w)) << 16
	case isa.OpLB:
		u.op = pdLB
	case isa.OpLBU:
		u.op = pdLBU
	case isa.OpLH:
		u.op = pdLH
	case isa.OpLHU:
		u.op = pdLHU
	case isa.OpLW:
		u.op = pdLW
	case isa.OpSB:
		u.op = pdSB
	case isa.OpSH:
		u.op = pdSH
	case isa.OpSW:
		u.op = pdSW
	case isa.OpLWC1:
		u.op = pdLWC1
	case isa.OpSWC1:
		u.op = pdSWC1
	case isa.OpCOP0:
		u.op = pdCOP0
		u.imm = w
	case isa.OpCOP1:
		u.op = pdCOP1
		u.imm = w
	}
	return u
}

// execU executes one predecoded instruction; like exec it returns
// false when an exception decided control flow.
func (c *CPU) execU(u *uop) bool {
	g := &c.GPR
	switch u.op {
	case pdADDU:
		g[u.rd] = g[u.rs] + g[u.rt]
	case pdADDIU:
		g[u.rt] = g[u.rs] + u.imm
	case pdLW:
		v, ok := c.load(g[u.rs]+u.imm, 4)
		if !ok {
			return false
		}
		g[u.rt] = uint32(v)
	case pdSW:
		return c.store(g[u.rs]+u.imm, 4, uint64(g[u.rt]))
	case pdBEQ:
		if g[u.rs] == g[u.rt] {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdBNE:
		if g[u.rs] != g[u.rt] {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdSLL:
		g[u.rd] = g[u.rt] << u.sh
	case pdSRL:
		g[u.rd] = g[u.rt] >> u.sh
	case pdSRA:
		g[u.rd] = uint32(int32(g[u.rt]) >> u.sh)
	case pdSLLV:
		g[u.rd] = g[u.rt] << (g[u.rs] & 31)
	case pdSRLV:
		g[u.rd] = g[u.rt] >> (g[u.rs] & 31)
	case pdSRAV:
		g[u.rd] = uint32(int32(g[u.rt]) >> (g[u.rs] & 31))
	case pdJR:
		c.branch(g[u.rs])
	case pdJALR:
		t := g[u.rs]
		g[u.rd] = c.PC + 8
		c.branch(t)
	case pdSYSCALL:
		c.Stat.Syscalls++
		c.Exception(ExcSyscall, VecGeneral)
		return false
	case pdBREAK:
		if c.HaltOnBreak {
			c.Halted = true
			return false
		}
		c.Exception(ExcBreak, VecGeneral)
		return false
	case pdMFHI:
		g[u.rd] = c.HI
	case pdMTHI:
		c.HI = g[u.rs]
	case pdMFLO:
		g[u.rd] = c.LO
	case pdMTLO:
		c.LO = g[u.rs]
	case pdMULT:
		p := int64(int32(g[u.rs])) * int64(int32(g[u.rt]))
		c.LO = uint32(p)
		c.HI = uint32(p >> 32)
	case pdMULTU:
		p := uint64(g[u.rs]) * uint64(g[u.rt])
		c.LO = uint32(p)
		c.HI = uint32(p >> 32)
	case pdDIV:
		if g[u.rt] != 0 {
			c.LO = uint32(int32(g[u.rs]) / int32(g[u.rt]))
			c.HI = uint32(int32(g[u.rs]) % int32(g[u.rt]))
		}
	case pdDIVU:
		if g[u.rt] != 0 {
			c.LO = g[u.rs] / g[u.rt]
			c.HI = g[u.rs] % g[u.rt]
		}
	case pdSUBU:
		g[u.rd] = g[u.rs] - g[u.rt]
	case pdAND:
		g[u.rd] = g[u.rs] & g[u.rt]
	case pdOR:
		g[u.rd] = g[u.rs] | g[u.rt]
	case pdXOR:
		g[u.rd] = g[u.rs] ^ g[u.rt]
	case pdNOR:
		g[u.rd] = ^(g[u.rs] | g[u.rt])
	case pdSLT:
		if int32(g[u.rs]) < int32(g[u.rt]) {
			g[u.rd] = 1
		} else {
			g[u.rd] = 0
		}
	case pdSLTU:
		if g[u.rs] < g[u.rt] {
			g[u.rd] = 1
		} else {
			g[u.rd] = 0
		}
	case pdBLTZ:
		if int32(g[u.rs]) < 0 {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdBGEZ:
		if int32(g[u.rs]) >= 0 {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdJ:
		c.branch(c.PC&0xf0000000 | u.imm)
	case pdJAL:
		g[31] = c.PC + 8
		c.branch(c.PC&0xf0000000 | u.imm)
	case pdBLEZ:
		if int32(g[u.rs]) <= 0 {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdBGTZ:
		if int32(g[u.rs]) > 0 {
			c.branch(c.PC + 4 + u.imm)
		} else {
			c.branch(c.PC + 8)
		}
	case pdSLTI:
		if int32(g[u.rs]) < int32(u.imm) {
			g[u.rt] = 1
		} else {
			g[u.rt] = 0
		}
	case pdSLTIU:
		if g[u.rs] < u.imm {
			g[u.rt] = 1
		} else {
			g[u.rt] = 0
		}
	case pdANDI:
		g[u.rt] = g[u.rs] & u.imm
	case pdORI:
		g[u.rt] = g[u.rs] | u.imm
	case pdXORI:
		g[u.rt] = g[u.rs] ^ u.imm
	case pdLUI:
		g[u.rt] = u.imm
	case pdLB:
		v, ok := c.load(g[u.rs]+u.imm, 1)
		if !ok {
			return false
		}
		g[u.rt] = uint32(int32(int8(v)))
	case pdLBU:
		v, ok := c.load(g[u.rs]+u.imm, 1)
		if !ok {
			return false
		}
		g[u.rt] = uint32(v)
	case pdLH:
		v, ok := c.load(g[u.rs]+u.imm, 2)
		if !ok {
			return false
		}
		g[u.rt] = uint32(int32(int16(v)))
	case pdLHU:
		v, ok := c.load(g[u.rs]+u.imm, 2)
		if !ok {
			return false
		}
		g[u.rt] = uint32(v)
	case pdSB:
		return c.store(g[u.rs]+u.imm, 1, uint64(g[u.rt]&0xff))
	case pdSH:
		return c.store(g[u.rs]+u.imm, 2, uint64(g[u.rt]&0xffff))
	case pdLWC1:
		v, ok := c.load(g[u.rs]+u.imm, 8)
		if !ok {
			return false
		}
		c.FPR[u.rt] = math.Float64frombits(v)
	case pdSWC1:
		return c.store(g[u.rs]+u.imm, 8, math.Float64bits(c.FPR[u.rt]))
	case pdCOP0:
		c.pdExit = true // may touch Status/Cause or the TLB
		w := u.imm
		if !c.KernelMode() {
			c.Exception(ExcReserved, VecGeneral)
			return false
		}
		return c.execCOP0(w, int(w>>21&31), int(w>>16&31))
	case pdCOP1:
		w := u.imm
		return c.execCOP1(w, int(w>>21&31), int(w>>16&31))
	default: // pdReserved
		c.Exception(ExcReserved, VecGeneral)
		return false
	}
	g[0] = 0
	return true
}
