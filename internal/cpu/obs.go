package cpu

import "systrace/internal/obs"

// Flight-recorder events the CPU core emits. These are the "notable"
// state transitions a post-hoc debugger wants around a failure — the
// same set of operations the pdExit discipline singles out as able to
// change machine state mid-batch — at a rate (exceptions, TLB writes,
// IRQ edges, frame drops, device accesses) that is thousands of times
// sparser than the instruction stream, so the handful of atomic stores
// per event stays invisible in the MIPS benchmarks.
var (
	// a = exception code, b = faulting PC.
	evException = obs.RegisterEvent("cpu_exception")
	// a = IRQ line, b = 1 raise / 0 clear (edges only).
	evIRQ = obs.RegisterEvent("cpu_irq_edge")
	// a = TLB index written, b = EntryHi (VPN|ASID).
	evTLBWrite = obs.RegisterEvent("cpu_tlb_write")
	// a = physical frame number whose predecode was dropped,
	// b = 1 when it was the executing frame (forced a pdExit).
	evFrameDrop = obs.RegisterEvent("cpu_frame_drop")
	// a = physical address, b = 1 store / 0 load (device space only —
	// the pdExit reason that isn't an exception or COP0 op).
	evDevAccess = obs.RegisterEvent("cpu_device_access")
)

// devAccess records a device-bus access edge-triggered on the target
// page and direction: a driver streaming or polling one device emits
// a single event for the whole run of accesses, not one per word.
// sed's boot makes ~50k device accesses in ~18ms — emitting each one
// is the difference between recorder cost disappearing into benchmark
// noise and a measurable MIPS hit (see BENCH_obs.json).
func (c *CPU) devAccess(pa uint32, store uint64) {
	key := uint64(pa)>>12<<1 | store
	if key == c.lastDevKey {
		return
	}
	c.lastDevKey = key
	obs.Emit(evDevAccess, uint64(pa), store)
}

// profiler holds the guest-PC sampling state. StepN clamps its batch
// to the next sample boundary and samples once on exit, so sampling
// adds no per-instruction work — one comparison per batch plus the
// callback every `every` retired instructions.
type profiler struct {
	fn    func(pc uint32, kernel bool, pid uint32, instret uint64)
	every uint64
	next  uint64
}

// SetProfiler attaches (or, with a nil fn or zero period, detaches) a
// guest-PC sampler: fn is called with the simulated PC, mode, and
// address-space id (equal to the guest pid under both kernels) every
// `every` retired instructions. The sampled PC is the batch-boundary
// PC nearest the period, which is exact to within one batch on the
// reference path and exact on the predecode path (StepN cuts batches
// at sample boundaries).
func (c *CPU) SetProfiler(every uint64, fn func(pc uint32, kernel bool, pid uint32, instret uint64)) {
	if fn == nil || every == 0 {
		c.prof = profiler{}
		return
	}
	c.prof = profiler{fn: fn, every: every, next: c.Stat.Instret + every}
}

// profSample fires the sampler and advances the next boundary past
// the current retirement count.
func (c *CPU) profSample() {
	for c.Stat.Instret >= c.prof.next {
		c.prof.next += c.prof.every
	}
	c.prof.fn(c.PC, c.KernelMode(), c.ASID(), c.Stat.Instret)
}

// profClamp takes any due sample and limits a StepN batch so it ends
// exactly on the next sample boundary.
func (c *CPU) profClamp(max uint64) uint64 {
	if c.Stat.Instret >= c.prof.next {
		c.profSample()
	}
	if rem := c.prof.next - c.Stat.Instret; rem < max {
		return rem
	}
	return max
}

// ProfPoll takes a sample if one is due. The machine run loop calls
// it once per burst for the paths that do not go through StepN (the
// reference interpreter and observer-attached runs), bounding sample
// skew by the burst length instead of adding a per-Step check.
func (c *CPU) ProfPoll() {
	if c.prof.fn != nil && c.Stat.Instret >= c.prof.next {
		c.profSample()
	}
}
