package cpu_test

import (
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/isa"
	"systrace/internal/machine"
)

// put assembles a word sequence into kseg0 memory at va.
func put(m *machine.Machine, va uint32, ws ...isa.Word) {
	for i, w := range ws {
		m.RAM.WriteWord(va-cpu.KSeg0Base+uint32(i)*4, uint32(w))
	}
}

func newM() *machine.Machine {
	m := machine.New(1<<20, nil)
	m.CPU.HaltOnBreak = true
	return m
}

func TestDelaySlotSemantics(t *testing.T) {
	m := newM()
	// li t0, 1; beq zero,zero,+2 (to target); addiu t0, t0, 10 (slot);
	// addiu t0, t0, 100 (skipped); target: break
	put(m, 0x80001000,
		isa.ORI(isa.RegT0, 0, 1),
		isa.BEQ(0, 0, 2),
		isa.ADDIU(isa.RegT0, isa.RegT0, 10),
		isa.ADDIU(isa.RegT0, isa.RegT0, 100),
		isa.BREAK(0),
	)
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[isa.RegT0]; got != 11 {
		t.Errorf("delay slot executed wrong: t0=%d want 11", got)
	}
}

func TestJALReturnAddress(t *testing.T) {
	m := newM()
	put(m, 0x80001000,
		isa.JAL(0x80001010>>2),
		isa.NOP,
		isa.BREAK(0), // return lands here
		isa.NOP,
		// 0x1010: leaf: jr ra; nop
		isa.JR(isa.RegRA),
		isa.NOP,
	)
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.PC != 0x80001008 {
		t.Errorf("returned to 0x%x, want 0x80001008", m.CPU.PC)
	}
}

func TestExceptionInDelaySlotSetsBD(t *testing.T) {
	m := newM()
	// General vector at 0x80000080: just record and return skipping.
	// Handler: mfc0 k0, EPC; addiu k0, 8 (skip branch + slot); jr k0; rfe
	put(m, 0x80000080,
		isa.MFC0(isa.RegK0, isa.C0EPC),
		isa.ADDIU(isa.RegK0, isa.RegK0, 8),
		isa.JR(isa.RegK0),
		isa.RFE(),
	)
	// Program: jal target with a syscall in the delay slot.
	put(m, 0x80001000,
		isa.JAL(0x80001010>>2),
		isa.SYSCALL(), // delay slot: traps with BD set
		isa.BREAK(0),
		isa.NOP,
		isa.BREAK(1), // jal target (skipped by handler)
		isa.NOP,
	)
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.CP0.Cause&cpu.CauseBD == 0 {
		t.Error("BD not set for delay-slot exception")
	}
	if m.CPU.CP0.EPC != 0x80001000 {
		t.Errorf("EPC=0x%x, want the branch address 0x80001000", m.CPU.CP0.EPC)
	}
}

func TestTLBRefillAndASIDs(t *testing.T) {
	m := newM()
	c := m.CPU
	// Map user page 0x1000 for asid 1 -> phys 0x5000 via TLBWR.
	c.CP0.EntryHi = 0x1000 | 1<<cpu.ASIDShift
	c.CP0.EntryLo = 0x5000 | cpu.EloV | cpu.EloD
	c.TLB[8] = cpu.TLBEntry{Hi: c.CP0.EntryHi, Lo: c.CP0.EntryLo}
	m.RAM.WriteWord(0x5000, 0xdeadbeef)

	// Kernel-mode load through the mapping with asid 1.
	put(m, 0x80001000,
		isa.LUI(isa.RegT0, 0),
		isa.ORI(isa.RegT0, isa.RegT0, 0x1000),
		isa.LW(isa.RegT1, isa.RegT0, 0),
		isa.BREAK(0),
	)
	c.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.GPR[isa.RegT1] != 0xdeadbeef {
		t.Errorf("mapped load got 0x%x", c.GPR[isa.RegT1])
	}

	// Different ASID must miss (vector to 0x80000000).
	c2 := machine.New(1<<20, nil)
	c2.CPU.HaltOnBreak = true
	c2.CPU.TLB[8] = cpu.TLBEntry{Hi: 0x1000 | 1<<cpu.ASIDShift, Lo: 0x5000 | cpu.EloV | cpu.EloD}
	c2.CPU.CP0.EntryHi = 2 << cpu.ASIDShift    // asid 2
	put(c2, 0x80000000, isa.BREAK(2), isa.NOP) // UTLB vector: stop here
	put(c2, 0x80001000,
		isa.ORI(isa.RegT0, 0, 0x1000),
		isa.LW(isa.RegT1, isa.RegT0, 0),
		isa.BREAK(0),
	)
	c2.CPU.PC = 0x80001000
	if err := c2.Run(100); err != nil {
		t.Fatal(err)
	}
	if c2.CPU.Stat.UTLBMisses != 1 {
		t.Errorf("expected a UTLB miss for foreign asid, got %d", c2.CPU.Stat.UTLBMisses)
	}
}

func TestGlobalTLBEntryIgnoresASID(t *testing.T) {
	m := newM()
	c := m.CPU
	c.TLB[9] = cpu.TLBEntry{Hi: 0x2000, Lo: 0x6000 | cpu.EloV | cpu.EloD | cpu.EloG}
	c.CP0.EntryHi = 5 << cpu.ASIDShift
	m.RAM.WriteWord(0x6004, 77)
	put(m, 0x80001000,
		isa.ORI(isa.RegT0, 0, 0x2000),
		isa.LW(isa.RegT1, isa.RegT0, 4),
		isa.BREAK(0),
	)
	c.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.GPR[isa.RegT1] != 77 {
		t.Errorf("global entry load got %d", c.GPR[isa.RegT1])
	}
	if c.Stat.UTLBMisses != 0 {
		t.Error("global entry must match any asid")
	}
}

func TestStatusStackRFE(t *testing.T) {
	m := newM()
	c := m.CPU
	// Status: user prev, kernel cur after an exception push.
	c.CP0.Status = cpu.StKUp | cpu.StIEp
	put(m, 0x80001000,
		isa.RFE(),
		isa.BREAK(0),
	)
	c.PC = 0x80001000
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.CP0.Status&cpu.StKUc == 0 || c.CP0.Status&cpu.StIEc == 0 {
		t.Errorf("rfe did not pop KU/IE: status=0x%x", c.CP0.Status)
	}
}

func TestUserModeProtection(t *testing.T) {
	m := newM()
	c := m.CPU
	// General handler: halt (break).
	put(m, 0x80000080, isa.BREAK(3), isa.NOP)
	// A user-mode jump into kseg0 must fault with AdEL.
	put(m, 0x80001000,
		isa.MTC0(isa.RegZero, isa.C0EPC), // EPC=0... we'll set status below
		isa.BREAK(0),
	)
	// Easier: force user mode and execute a kseg0 load directly.
	c.CP0.Status = cpu.StKUc // user mode
	// In user mode the PC itself is in kseg0 -> AdEL on fetch.
	c.PC = 0x80001000
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	code := int(c.CP0.Cause >> cpu.CauseExcShift & 31)
	if code != cpu.ExcAdEL {
		t.Errorf("user kseg0 fetch cause=%d, want AdEL", code)
	}
}

func TestInterruptDelivery(t *testing.T) {
	m := newM()
	c := m.CPU
	put(m, 0x80000080, isa.BREAK(4), isa.NOP) // general vector
	put(m, 0x80001000,
		isa.ORI(isa.RegT0, 0, 0), // spin
		isa.BEQ(0, 0, -2),
		isa.NOP,
	)
	c.PC = 0x80001000
	c.CP0.Status = cpu.StIEc | 1<<(cpu.StIMShift) // enable line 0
	c.SetIRQ(0, true)
	if err := m.Run(20); err != nil {
		t.Fatal(err)
	}
	if c.Stat.Interrupts != 1 {
		t.Errorf("interrupts=%d want 1", c.Stat.Interrupts)
	}
	if int(c.CP0.Cause>>cpu.CauseExcShift&31) != cpu.ExcInt {
		t.Error("cause is not interrupt")
	}
}

func TestFloatingPoint(t *testing.T) {
	m := newM()
	c := m.CPU
	c.FPR[4] = 6.0
	c.FPR[6] = 7.0
	put(m, 0x80001000,
		isa.FMUL(2, 4, 6),
		isa.CVTWD(8, 2),
		isa.MFC1(isa.RegT0, 8),
		isa.BREAK(0),
	)
	c.PC = 0x80001000
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.GPR[isa.RegT0] != 42 {
		t.Errorf("6*7 = %d", c.GPR[isa.RegT0])
	}
}

func TestFPMemoryIs8Bytes(t *testing.T) {
	m := newM()
	c := m.CPU
	c.FPR[2] = 3.25
	put(m, 0x80001000,
		isa.LUI(isa.RegT0, 0x8000),
		isa.ORI(isa.RegT0, isa.RegT0, 0x2000),
		isa.SWC1(2, isa.RegT0, 0),
		isa.LWC1(4, isa.RegT0, 0),
		isa.BREAK(0),
	)
	c.PC = 0x80001000
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if c.FPR[4] != 3.25 {
		t.Errorf("fp round trip got %v", c.FPR[4])
	}
}
