package cpu_test

// Table-driven semantic tests for the interpreter: each case runs a
// short kseg0 program to a BREAK and checks architectural state. These
// pin down the R3000 corner cases the rest of the system depends on —
// sign extension, HI/LO, shift-by-register masking, unsigned compares,
// sub-word store merging, and address-error detection.

import (
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/isa"
)

type regCase struct {
	name  string
	setup func(c *cpu.CPU)
	prog  []isa.Word
	reg   int
	want  uint32
}

func runProg(t *testing.T, tc regCase) {
	t.Helper()
	m := newM()
	if tc.setup != nil {
		tc.setup(m.CPU)
	}
	prog := append(append([]isa.Word{}, tc.prog...), isa.BREAK(0))
	put(m, 0x80001000, prog...)
	m.CPU.PC = 0x80001000
	if err := m.Run(1000); err != nil {
		t.Fatalf("%s: %v", tc.name, err)
	}
	if got := m.CPU.GPR[tc.reg]; got != tc.want {
		t.Errorf("%s: r%d = 0x%08x want 0x%08x", tc.name, tc.reg, got, tc.want)
	}
}

func TestALUSemantics(t *testing.T) {
	T0, T1, T2 := isa.RegT0, isa.RegT1, isa.RegT2
	set := func(r int, v uint32) func(*cpu.CPU) {
		return func(c *cpu.CPU) { c.GPR[r] = v }
	}
	set2 := func(r1 int, v1 uint32, r2 int, v2 uint32) func(*cpu.CPU) {
		return func(c *cpu.CPU) { c.GPR[r1], c.GPR[r2] = v1, v2 }
	}
	cases := []regCase{
		{"addu-wraps", set2(T0, 0xffffffff, T1, 2), []isa.Word{isa.ADDU(T2, T0, T1)}, T2, 1},
		{"subu", set2(T0, 5, T1, 7), []isa.Word{isa.SUBU(T2, T0, T1)}, T2, 0xfffffffe},
		{"and", set2(T0, 0xff00ff00, T1, 0x0ff00ff0), []isa.Word{isa.AND(T2, T0, T1)}, T2, 0x0f000f00},
		{"or", set2(T0, 0xf0f00000, T1, 0x0000f0f0), []isa.Word{isa.OR(T2, T0, T1)}, T2, 0xf0f0f0f0},
		{"xor", set2(T0, 0xaaaaaaaa, T1, 0xffffffff), []isa.Word{isa.XOR(T2, T0, T1)}, T2, 0x55555555},
		{"nor", set2(T0, 0xf0000000, T1, 0x0000000f), []isa.Word{isa.NOR(T2, T0, T1)}, T2, 0x0ffffff0},
		{"slt-signed", set2(T0, 0xffffffff, T1, 1), []isa.Word{isa.SLT(T2, T0, T1)}, T2, 1},
		{"sltu-unsigned", set2(T0, 0xffffffff, T1, 1), []isa.Word{isa.SLTU(T2, T0, T1)}, T2, 0},
		{"slti-neg", set(T0, 0xfffffff0), []isa.Word{isa.SLTI(T2, T0, 0xffff)}, T2, 1}, // -16 < -1
		{"sltiu-maxish", set(T0, 3), []isa.Word{isa.SLTIU(T2, T0, 0xffff)}, T2, 1},     // imm sign-extends then compares unsigned
		{"andi-zeroext", set(T0, 0xffffffff), []isa.Word{isa.ANDI(T2, T0, 0xff00)}, T2, 0xff00},
		{"ori-zeroext", set(T0, 0xf0000000), []isa.Word{isa.ORI(T2, T0, 0x00ff)}, T2, 0xf00000ff},
		{"xori", set(T0, 0x000000ff), []isa.Word{isa.XORI(T2, T0, 0x0f0f)}, T2, 0x0ff0},
		{"lui", nil, []isa.Word{isa.LUI(T2, 0xdead)}, T2, 0xdead0000},
		{"addiu-signext", set(T0, 10), []isa.Word{isa.ADDIU(T2, T0, 0xfffb)}, T2, 5}, // +(-5)
		{"sll", set(T0, 1), []isa.Word{isa.SLL(T2, T0, 31)}, T2, 0x80000000},
		{"srl-logical", set(T0, 0x80000000), []isa.Word{isa.SRL(T2, T0, 4)}, T2, 0x08000000},
		{"sra-arith", set(T0, 0x80000000), []isa.Word{isa.SRA(T2, T0, 4)}, T2, 0xf8000000},
		{"sllv-masks5bits", set2(T0, 1, T1, 33), []isa.Word{isa.SLLV(T2, T0, T1)}, T2, 2},
		{"srlv", set2(T0, 0xf0000000, T1, 28), []isa.Word{isa.SRLV(T2, T0, T1)}, T2, 0xf},
		{"srav", set2(T0, 0x80000000, T1, 31), []isa.Word{isa.SRAV(T2, T0, T1)}, T2, 0xffffffff},
		{"zero-stays-zero", set(T0, 7), []isa.Word{isa.ADDU(0, T0, T0)}, 0, 0},
	}
	for _, tc := range cases {
		runProg(t, tc)
	}
}

func TestMulDivHiLo(t *testing.T) {
	T0, T1, T2 := isa.RegT0, isa.RegT1, isa.RegT2
	cases := []struct {
		name   string
		a, b   uint32
		prog   func() []isa.Word
		hi, lo uint32
	}{
		{"mult-signed", 0xffffffff /* -1 */, 7,
			func() []isa.Word { return []isa.Word{isa.MULT(T0, T1)} },
			0xffffffff, 0xfffffff9}, // -7
		{"multu-unsigned", 0xffffffff, 7,
			func() []isa.Word { return []isa.Word{isa.MULTU(T0, T1)} },
			6, 0xfffffff9},
		{"div-signed", 0xfffffff9 /* -7 */, 2,
			func() []isa.Word { return []isa.Word{isa.DIV(T0, T1)} },
			0xffffffff /* rem -1 */, 0xfffffffd /* quot -3 */},
		{"divu-unsigned", 0xfffffff9, 2,
			func() []isa.Word { return []isa.Word{isa.DIVU(T0, T1)} },
			1, 0x7ffffffc},
	}
	for _, tc := range cases {
		m := newM()
		m.CPU.GPR[T0], m.CPU.GPR[T1] = tc.a, tc.b
		prog := append(tc.prog(), isa.MFHI(T2), isa.MFLO(isa.RegT3), isa.BREAK(0))
		put(m, 0x80001000, prog...)
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := m.CPU.GPR[T2]; got != tc.hi {
			t.Errorf("%s: HI = 0x%08x want 0x%08x", tc.name, got, tc.hi)
		}
		if got := m.CPU.GPR[isa.RegT3]; got != tc.lo {
			t.Errorf("%s: LO = 0x%08x want 0x%08x", tc.name, got, tc.lo)
		}
	}

	// MTHI/MTLO round-trip.
	m := newM()
	m.CPU.GPR[T0] = 0x12345678
	m.CPU.GPR[T1] = 0x9abcdef0
	put(m, 0x80001000,
		isa.MTHI(T0), isa.MTLO(T1),
		isa.MFHI(T2), isa.MFLO(isa.RegT3),
		isa.BREAK(0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.GPR[T2] != 0x12345678 || m.CPU.GPR[isa.RegT3] != 0x9abcdef0 {
		t.Errorf("MTHI/MTLO round-trip: hi=0x%x lo=0x%x", m.CPU.GPR[T2], m.CPU.GPR[isa.RegT3])
	}
}

func TestSubWordMemory(t *testing.T) {
	T0, T1 := isa.RegT0, isa.RegT1
	m := newM()
	// Store a word, then read it back in every sub-word flavor.
	m.CPU.GPR[T0] = 0x80002000
	m.CPU.GPR[T1] = 0x81828384 // big-endian bytes: 81 82 83 84
	put(m, 0x80001000,
		isa.SW(T1, T0, 0),
		isa.LB(isa.RegT2, T0, 0),  // 0x81 sign-extends
		isa.LBU(isa.RegT3, T0, 0), // 0x81 zero-extends
		isa.LB(isa.RegT4, T0, 3),  // 0x84 sign-extends negative
		isa.LH(isa.RegT5, T0, 0),  // 0x8182 sign-extends
		isa.LHU(isa.RegT6, T0, 2), // 0x8384 zero-extends
		isa.BREAK(0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		r    int
		want uint32
	}{
		{isa.RegT2, 0xffffff81}, {isa.RegT3, 0x81},
		{isa.RegT4, 0xffffff84}, {isa.RegT5, 0xffff8182}, {isa.RegT6, 0x8384},
	}
	for _, c := range checks {
		if got := m.CPU.GPR[c.r]; got != c.want {
			t.Errorf("r%d = 0x%08x want 0x%08x", c.r, got, c.want)
		}
	}

	// Sub-word stores merge into the surrounding word.
	m = newM()
	m.CPU.GPR[T0] = 0x80002000
	m.CPU.GPR[T1] = 0xffffffff
	put(m, 0x80001000,
		isa.SW(T1, T0, 0),
		isa.ORI(isa.RegT2, 0, 0xab),
		isa.SB(isa.RegT2, T0, 1),
		isa.ORI(isa.RegT3, 0, 0x1234),
		isa.SH(isa.RegT3, T0, 2),
		isa.LW(isa.RegT4, T0, 0),
		isa.BREAK(0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[isa.RegT4]; got != 0xffab1234 {
		t.Errorf("merged word = 0x%08x want 0xffab1234", got)
	}
}

func TestBranchVariants(t *testing.T) {
	T0, T1 := isa.RegT0, isa.RegT1
	// Each case: set t0, run a conditional branch over an ORI that
	// would set t1; expect t1 set only when the branch is NOT taken.
	cases := []struct {
		name  string
		v     uint32
		br    func() isa.Word
		taken bool
	}{
		{"bne-taken", 5, func() isa.Word { return isa.BNE(T0, 0, 2) }, true},
		{"bne-not", 0, func() isa.Word { return isa.BNE(T0, 0, 2) }, false},
		{"blez-zero", 0, func() isa.Word { return isa.BLEZ(T0, 2) }, true},
		{"blez-neg", 0x80000000, func() isa.Word { return isa.BLEZ(T0, 2) }, true},
		{"blez-pos", 1, func() isa.Word { return isa.BLEZ(T0, 2) }, false},
		{"bgtz-pos", 1, func() isa.Word { return isa.BGTZ(T0, 2) }, true},
		{"bgtz-zero", 0, func() isa.Word { return isa.BGTZ(T0, 2) }, false},
		{"bltz-neg", 0xffffffff, func() isa.Word { return isa.BLTZ(T0, 2) }, true},
		{"bltz-zero", 0, func() isa.Word { return isa.BLTZ(T0, 2) }, false},
		{"bgez-zero", 0, func() isa.Word { return isa.BGEZ(T0, 2) }, true},
		{"bgez-neg", 0x80000000, func() isa.Word { return isa.BGEZ(T0, 2) }, false},
	}
	for _, tc := range cases {
		m := newM()
		m.CPU.GPR[T0] = tc.v
		put(m, 0x80001000,
			tc.br(),
			isa.NOP, // delay slot
			isa.ORI(T1, 0, 1),
			isa.BREAK(0))
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got := m.CPU.GPR[T1] == 1
		if got == tc.taken {
			t.Errorf("%s: skipped=%v want taken=%v", tc.name, !got, tc.taken)
		}
	}
}

func TestJALRLinksAndJumps(t *testing.T) {
	m := newM()
	m.CPU.GPR[isa.RegT0] = 0x80001010
	put(m, 0x80001000,
		isa.JALR(isa.RegT1, isa.RegT0),
		isa.NOP,
		isa.BREAK(1), // skipped
		isa.NOP,
		isa.BREAK(0), // 0x1010: target
	)
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.GPR[isa.RegT1] != 0x80001008 {
		t.Errorf("jalr link = 0x%08x want 0x80001008", m.CPU.GPR[isa.RegT1])
	}
	if m.CPU.PC != 0x80001010 {
		t.Errorf("jalr target = 0x%08x want 0x80001010", m.CPU.PC)
	}
}

func TestAddressErrors(t *testing.T) {
	// Misaligned word load must raise AdEL with BadVAddr set; the CPU
	// has no handler installed here, so inspect after the exception
	// fires (vector memory holds a BREAK).
	m := newM()
	put(m, 0x80000080, isa.BREAK(0)) // general vector stops the run
	m.CPU.GPR[isa.RegT0] = 0x80002002
	put(m, 0x80001000, isa.LW(isa.RegT1, isa.RegT0, 0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if code := m.CPU.CP0.Cause >> 2 & 31; code != cpu.ExcAdEL {
		t.Errorf("cause %d want AdEL(%d)", code, cpu.ExcAdEL)
	}
	if m.CPU.CP0.BadVAddr != 0x80002002 {
		t.Errorf("BadVAddr 0x%08x", m.CPU.CP0.BadVAddr)
	}

	// Misaligned half-word store raises AdES.
	m = newM()
	put(m, 0x80000080, isa.BREAK(0))
	m.CPU.GPR[isa.RegT0] = 0x80002001
	put(m, 0x80001000, isa.SH(isa.RegT1, isa.RegT0, 0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if code := m.CPU.CP0.Cause >> 2 & 31; code != cpu.ExcAdES {
		t.Errorf("cause %d want AdES(%d)", code, cpu.ExcAdES)
	}

	// User-mode access to kernel addresses raises an address error
	// even when aligned.
	m = newM()
	put(m, 0x80000080, isa.BREAK(0))
	m.CPU.GPR[isa.RegT0] = 0x80002000
	put(m, 0x80001000, isa.RFE()) // drop to user mode (KUp -> KUc)
	// Force: set status so RFE pops to user with interrupts off.
	m.CPU.CP0.Status = cpu.StKUp // previous = user
	put(m, 0x80001004, isa.LW(isa.RegT1, isa.RegT0, 0))
	m.CPU.PC = 0x80001000
	_ = m.Run(100)
	// After the RFE the fetch of 0x80001004 itself is a user-mode
	// kernel-address fetch: AdEL.
	if code := m.CPU.CP0.Cause >> 2 & 31; code != cpu.ExcAdEL {
		t.Errorf("user-mode kernel access: cause %d want AdEL(%d)", code, cpu.ExcAdEL)
	}
}

func TestFPArithmetic(t *testing.T) {
	T0 := isa.RegT0
	m := newM()
	// Build 6.0 and 1.5 in f0/f2 via integer conversion: 12 -> cvt ->
	// 12.0, 3 -> 3.0; then f4 = 12.0/3.0 = 4.0, f6 = f4*f4+f4 = 20.0,
	// compare and convert back.
	put(m, 0x80001000,
		isa.ORI(T0, 0, 12),
		isa.MTC1(T0, 0),
		isa.CVTDW(0, 0), // f0 = 12.0
		isa.ORI(T0, 0, 3),
		isa.MTC1(T0, 2),
		isa.CVTDW(2, 2), // f2 = 3.0
		isa.FDIV(4, 0, 2),
		isa.FMUL(6, 4, 4),
		isa.FADD(6, 6, 4),         // 20.0
		isa.FSUB(8, 6, 0),         // 8.0
		isa.FSQRT(10, 8),          // ~2.828
		isa.FNEG(12, 8),           // -8.0
		isa.FMOV(14, 12),          // -8.0
		isa.CVTWD(16, 6),          // int(20.0)
		isa.MFC1(T0, 16),          // t0 = 20
		isa.FCLT(0, 6),            // 12.0 < 20.0 -> true
		isa.BC1T(2),               // taken
		isa.NOP,                   // slot
		isa.ORI(isa.RegT1, 0, 99), // skipped
		isa.BREAK(0))
	m.CPU.PC = 0x80001000
	if err := m.Run(200); err != nil {
		t.Fatal(err)
	}
	if m.CPU.GPR[T0] != 20 {
		t.Errorf("FP chain: t0=%d want 20", m.CPU.GPR[T0])
	}
	if m.CPU.GPR[isa.RegT1] == 99 {
		t.Error("c.lt.d/bc1t did not take")
	}
	if m.CPU.FPR[8] != 8.0 || m.CPU.FPR[12] != -8.0 || m.CPU.FPR[14] != -8.0 {
		t.Errorf("fsub/fneg/fmov: f8=%v f12=%v f14=%v", m.CPU.FPR[8], m.CPU.FPR[12], m.CPU.FPR[14])
	}

	// FCLE and FCEQ plus BC1F.
	m = newM()
	m.CPU.FPR[0], m.CPU.FPR[2] = 5.0, 5.0
	put(m, 0x80001000,
		isa.FCEQ(0, 2),
		isa.BC1F(2), // not taken (equal)
		isa.NOP,
		isa.ORI(isa.RegT1, 0, 1),
		isa.FCLE(0, 2),
		isa.BC1T(2), // taken (5 <= 5)
		isa.NOP,
		isa.ORI(isa.RegT2, 0, 99), // skipped
		isa.BREAK(0))
	m.CPU.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if m.CPU.GPR[isa.RegT1] != 1 {
		t.Error("bc1f took on equal operands")
	}
	if m.CPU.GPR[isa.RegT2] == 99 {
		t.Error("bc1t did not take on c.le.d")
	}
}

func TestTLBProbe(t *testing.T) {
	m := newM()
	c := m.CPU
	// Write a TLB entry for va 0x00400000 asid 1 at index 9 and probe
	// for it.
	c.CP0.EntryHi = 0x00400000 | 1<<cpu.ASIDShift
	c.CP0.EntryLo = 0x00850000 | cpu.EloV
	c.CP0.Index = 9
	put(m, 0x80001000,
		isa.TLBWI(),
		isa.TLBP(),
		isa.BREAK(0))
	c.PC = 0x80001000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.CP0.Index != 9 {
		t.Errorf("tlbp: index=0x%x want 9", c.CP0.Index)
	}
	// Probe for a missing entry: P bit (31) set.
	c.CP0.EntryHi = 0x00500000 | 1<<cpu.ASIDShift
	put(m, 0x80002000, isa.TLBP(), isa.BREAK(0))
	c.PC = 0x80002000
	c.Halted = false
	m.Halted = false
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.CP0.Index>>31 != 1 {
		t.Error("tlbp on missing entry did not set the probe-failure bit")
	}
	// TLBR reads the entry back.
	c.CP0.EntryHi = 0
	c.CP0.Index = 9
	put(m, 0x80003000, isa.TLBR(), isa.BREAK(0))
	c.PC = 0x80003000
	c.Halted = false
	m.Halted = false
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.CP0.EntryHi != 0x00400000|1<<cpu.ASIDShift || c.CP0.EntryLo&0xfffff000 != 0x00850000 {
		t.Errorf("tlbr: hi=0x%08x lo=0x%08x", c.CP0.EntryHi, c.CP0.EntryLo)
	}
}

// TestMTC1MFC1Semantics pins the FP move behavior the interpreter
// chose: MTC1 and MFC1 are value-converting through int32 — there is
// no raw-bit word view of the FP registers (the removed FPRaw field
// suggested otherwise). MFC1 of a non-integral value truncates toward
// zero.
func TestMTC1MFC1Semantics(t *testing.T) {
	bothEngines(t, func(t *testing.T, pd bool) {
		m := newM()
		m.CPU.SetPredecode(pd)
		m.CPU.FPR[8] = -3.75
		put(m, 0x80001000,
			isa.ADDIU(isa.RegT0, 0, 0xfffb), // -5
			isa.MTC1(isa.RegT0, 2),          // f2 = -5.0 (value, not bits)
			isa.FADD(4, 2, 2),               // f4 = -10.0
			isa.CVTWD(6, 4),
			isa.MFC1(isa.RegT1, 6), // -10
			isa.MFC1(isa.RegT2, 8), // -3.75 truncates toward zero: -3
			isa.LUI(isa.RegT3, 0x4049),
			isa.ORI(isa.RegT3, isa.RegT3, 0x0fdb),
			isa.MTC1(isa.RegT3, 10), // integer 0x40490fdb, NOT the float32 bit pattern of pi
			isa.BREAK(0),
		)
		m.CPU.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		c := m.CPU
		if c.FPR[2] != -5.0 {
			t.Errorf("mtc1: f2 = %v, want -5.0 (value conversion)", c.FPR[2])
		}
		if got := c.GPR[isa.RegT1]; got != 0xfffffff6 {
			t.Errorf("mfc1 of -10.0 = 0x%08x, want 0xfffffff6", got)
		}
		if got := c.GPR[isa.RegT2]; got != 0xfffffffd {
			t.Errorf("mfc1 of -3.75 = 0x%08x, want 0xfffffffd (truncate toward zero)", got)
		}
		if c.FPR[10] != float64(0x40490fdb) {
			t.Errorf("mtc1 of 0x40490fdb: f10 = %v, want %v (no raw-bit view)",
				c.FPR[10], float64(0x40490fdb))
		}
	})
}

// TestMFC0RandomLayout pins the Random register layout: the internal
// CP0.Random field is the bare TLB index (consumed directly by the
// per-Step decrement and TLBWR), while MFC0 exposes it shifted into
// bits 13:8 with the low byte reading zero — see cpu.RandomShift.
func TestMFC0RandomLayout(t *testing.T) {
	bothEngines(t, func(t *testing.T, pd bool) {
		m := newM()
		m.CPU.SetPredecode(pd)
		c := m.CPU
		c.CP0.Random = 42
		c.CP0.EntryHi = 0x00007000
		c.CP0.EntryLo = 0x00005000 | cpu.EloV
		put(m, 0x80001000,
			isa.TLBWR(),                       // step 1: Random 42→41, writes TLB[41]
			isa.MFC0(isa.RegT0, isa.C0Random), // step 2: Random 41→40, reads 40<<8
			isa.BREAK(0),
		)
		c.PC = 0x80001000
		if err := m.Run(100); err != nil {
			t.Fatal(err)
		}
		if got := c.TLB[41]; got != (cpu.TLBEntry{Hi: 0x00007000, Lo: 0x00005000 | cpu.EloV}) {
			t.Errorf("tlbwr consumed a shifted Random: TLB[41] = %+v", got)
		}
		want := uint32(40) << cpu.RandomShift
		if got := c.GPR[isa.RegT0]; got != want {
			t.Errorf("mfc0 Random = 0x%08x, want 0x%08x (index in bits 13:8)", got, want)
		}
		if got := c.GPR[isa.RegT0] & 0xff; got != 0 {
			t.Errorf("mfc0 Random low byte = 0x%02x, want 0", got)
		}
	})
}
