package cpu

import "systrace/internal/telemetry"

// RegisterMetrics registers sampled telemetry series over the CPU's
// architectural statistics. The counters are read at snapshot time, so
// the interpreter loop is not touched; labels (e.g. run="traced")
// distinguish multiple machines sharing one registry.
func (c *CPU) RegisterMetrics(r *telemetry.Registry, labels ...telemetry.Label) {
	s := &c.Stat
	r.Sample("cpu_instructions_retired_total",
		"machine instructions retired by the interpreter",
		func() uint64 { return s.Instret }, labels...)
	for cl := Class(0); cl < NClass; cl++ {
		cl := cl
		r.Sample("cpu_instructions_total",
			"machine instructions retired, split by instruction class",
			func() uint64 { return s.Classes[cl] },
			append([]telemetry.Label{telemetry.L("class", cl.String())}, labels...)...)
	}
	r.Sample("cpu_utlb_misses_total",
		"kuseg TLB misses taken through the dedicated refill vector (paper §4.1)",
		func() uint64 { return s.UTLBMisses }, labels...)
	r.Sample("cpu_ktlb_misses_total",
		"kseg2 TLB misses taken through the general exception vector",
		func() uint64 { return s.KTLBMisses }, labels...)
	r.Sample("cpu_exceptions_total", "exception entries of any cause",
		func() uint64 { return s.Exceptions }, labels...)
	r.Sample("cpu_interrupts_total", "external interrupts taken",
		func() uint64 { return s.Interrupts }, labels...)
	r.Sample("cpu_syscalls_total", "syscall instructions executed",
		func() uint64 { return s.Syscalls }, labels...)
	r.Sample("cpu_predecode_hits_total",
		"instructions dispatched from a predecoded text frame",
		func() uint64 { return c.pd.hits }, labels...)
	r.Sample("cpu_predecode_misses_total",
		"physical text frames decoded into micro-op arrays",
		func() uint64 { return c.pd.misses }, labels...)
	r.Sample("cpu_predecode_invalidations_total",
		"predecoded frames dropped after stores or DMA into their page",
		func() uint64 { return c.pd.invalidations }, labels...)
	r.Sample("cpu_superblocks_built_total",
		"superblocks linearized from hot predecoded frames",
		func() uint64 { return c.sb.built }, labels...)
	r.Sample("cpu_superblock_invalidations_total",
		"superblocks dropped after a store, DMA, or flush hit a chained frame",
		func() uint64 { return c.sb.invalidated }, labels...)
	r.Sample("cpu_superblock_entry_rejects_total",
		"dispatch entries refused by the guard (delay slot, TLB generation, pending state)",
		func() uint64 { return c.sb.entryRejects }, labels...)
	for _, e := range []struct {
		reason string
		n      *uint64
	}{
		{"end", &c.sb.exitEnd},
		{"mispredict", &c.sb.exitMispred},
		{"budget", &c.sb.exitBudget},
		{"pdexit", &c.sb.exitPDExit},
		{"exception", &c.sb.exitExc},
	} {
		n := e.n
		r.Sample("cpu_superblock_exits_total",
			"superblock dispatch exits, split by reason",
			func() uint64 { return *n },
			append([]telemetry.Label{telemetry.L("reason", e.reason)}, labels...)...)
	}
	c.sb.chainHist = r.Histogram("cpu_superblock_chain_instructions",
		"chain length at superblock build time, in instructions", labels...)
}
