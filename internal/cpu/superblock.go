package cpu

// Superblock tier: when a jump target keeps appearing at the head of a
// StepN batch, the builder walks the predecoded micro-ops from that
// address, chaining fall-through edges and statically predicted direct
// branches across basic-block (and frame) boundaries into one
// linearized step array. Dispatch runs that array in a dense
// jump-table loop with the per-instruction work of StepN hoisted out:
// the PC is implicit in the step index (materialized only at exits),
// CP0.Random and Stat.Instret advance once per exit instead of once
// per instruction, and runs of same-base word loads/stores are fused
// into single micro-ops that pay one translation-cache check for the
// whole run.
//
// Soundness leans on the same two pillars as the predecode cache:
//
//   - Nothing inside a superblock can change the fetch translation:
//     COP0 ops (the only way to write the TLB, Status, or EntryHi) and
//     SYSCALL/BREAK terminate chains at build time, and every
//     exception exits at dispatch time. A superblock whose pages are
//     TLB-mapped additionally carries the tcGen it was validated
//     under; entry under a newer generation revalidates every page
//     guard against the live TLB (current ASID, V set, N clear, same
//     frame) before the hoisted translations may be reused.
//
//   - Writes into chained text invalidate: every frame a superblock
//     draws micro-ops from is registered in a frame→superblocks
//     dependency map, and dropFrame (guest stores via the bitmap,
//     host writes via the RAM write hook, device DMA via the machine's
//     WriteNotifier) invalidates the dependents — raising pdExit if
//     one of them is currently executing, so the dispatch loop bails
//     after the in-flight instruction exactly like StepN does.
//
// Branch prediction is static backward-taken/forward-not-taken (plus
// always-taken for unconditional jumps and compare-equal BEQ r,r);
// a mispredicted branch retires normally and then bails with the
// architectural inDelay/delayTarget state set, so the generic path
// executes the delay slot. The engine is proven bit-identical to the
// reference interpreter by the lockstep/fuzz oracle in this package
// and the whole-workload oracle at the repo root.

import (
	"systrace/internal/isa"
	"systrace/internal/telemetry"
)

const (
	// sbIndexBits sizes the direct-mapped entry-point table.
	sbIndexBits = 12
	sbIndexSize = 1 << sbIndexBits

	// sbDefaultThreshold is how many times an address must head a
	// batch (or be the target of a taken jump inside one) before a
	// superblock is built over it.
	sbDefaultThreshold = 16

	// sbMaxSteps bounds one superblock's linearized chain.
	sbMaxSteps = 256
	// sbMinSteps is the smallest chain worth the entry guards.
	sbMinSteps = 3
	// sbMaxPages bounds the page guards one superblock may carry.
	sbMaxPages = 8
	// sbMaxRunLen bounds one fused load/store run.
	sbMaxRunLen = 64
	// sbMaxBlocks is a runaway backstop on resident superblocks.
	sbMaxBlocks = 1024
)

// Fused micro-ops, produced only by the superblock builder (decodeUop
// never emits them, so the pdOp spaces cannot collide).
const (
	sbLWRun pdOp = 128 + iota
	sbSWRun
)

// sbStep flags.
const (
	// sbSlot marks a branch delay slot. Dispatch does not track
	// inDelay while inside a superblock (the chain already encodes the
	// control flow); the flag exists so budget exits that stop just
	// before a slot can reconstruct the architectural inDelay state,
	// and so slow-path memory ops in a slot set execInSlot for exact
	// BD/EPC semantics.
	sbSlot uint8 = 1 << iota
	// sbPredTaken marks a conditional branch predicted taken.
	sbPredTaken
)

// sbStep is one dispatch step: a widened uop with its own PC (for
// exits and exceptions), the absolute predicted-taken target baked
// into imm for branches and jumps, and a retirement weight (1, or the
// sub-access count for fused runs).
type sbStep struct {
	op    pdOp
	rs    uint8
	rt    uint8
	rd    uint8
	sh    uint8
	flags uint8
	wt    uint8
	cls   Class
	imm   uint32
	pc    uint32
}

// sbMemSub is one access of a fused load/store run.
type sbMemSub struct {
	rt  uint8
	off uint32 // sign-extended displacement from the shared base
}

// sbRun is the side table of a fused run: the displacement envelope
// (for the single same-page check) and the per-access list.
type sbRun struct {
	lo, hi uint32
	subs   []sbMemSub
}

// sbPage is one TLB-mapped page guard: entry under a new translation
// generation must re-resolve vpage to exactly ppage.
type sbPage struct {
	vpage uint32
	ppage uint32
}

type superblock struct {
	entryVA uint32
	steps   []sbStep
	runs    []sbRun
	// pages holds guards for the TLB-mapped pages the chain fetches
	// from (kseg0 pages have fixed translations and need none).
	pages []sbPage
	// frames are the physical frames the micro-ops were drawn from;
	// dropFrame on any of them invalidates the superblock.
	frames []uint32
	gen    uint64 // tcGen the page guards were last validated under
	mapped bool   // any page guard present
	kernel bool   // chain touches a kernel-only segment
	loop   bool   // chain ends with a predicted branch back to entryVA
	// exitSlot: the final step is the delay slot of a chain-ending
	// branch, so the fall-off-the-end PC is the branch's delayTarget
	// (set by the branch step) rather than lastPC+4.
	exitSlot bool
	valid    bool
}

// sbHeat is one slot of the direct-mapped hotness table.
type sbHeat struct {
	va uint32
	n  uint32
}

// sbState is the per-CPU superblock engine state.
type sbState struct {
	off bool

	// idx is the direct-mapped dispatch table (entry VA → superblock);
	// all is the dedupe map behind it, deps the frame→dependents map
	// for invalidation. All lazily allocated on first use.
	idx   []*superblock
	heat  []sbHeat
	all   map[uint32]*superblock
	deps  map[uint32][]*superblock
	cur   *superblock // superblock currently being dispatched
	count int         // valid superblocks resident

	threshold uint32 // build threshold; 0 means sbDefaultThreshold

	built        uint64
	invalidated  uint64
	entryRejects uint64
	exitEnd      uint64
	exitMispred  uint64
	exitBudget   uint64
	exitPDExit   uint64
	exitExc      uint64

	chainHist *telemetry.Histogram // chain length at build, in instructions
}

// SuperblockStats are the engine counters, exported for tests and
// benchmarks (telemetry reads the fields directly via RegisterMetrics).
type SuperblockStats struct {
	Built        uint64
	Invalidated  uint64
	EntryRejects uint64
	ExitEnd      uint64
	ExitMispred  uint64
	ExitBudget   uint64
	ExitPDExit   uint64
	ExitExc      uint64
}

// SetSuperblocks selects the superblock tier on top of the predecode
// engine (on by default). Turning it off drops every superblock and
// leaves the plain per-uop StepN dispatch — the mid-tier baseline the
// benchmark's "predecode" column measures.
func (c *CPU) SetSuperblocks(on bool) {
	c.sb.off = !on
	c.sbDropAll()
}

// SuperblocksActive reports whether the superblock tier can run (it
// also requires the predecode engine, which feeds it micro-ops).
func (c *CPU) SuperblocksActive() bool { return !c.sb.off && !c.pd.off }

// SetSuperblockThreshold overrides the build threshold (0 restores the
// default). Tests set 1 so single executions form superblocks.
func (c *CPU) SetSuperblockThreshold(n uint32) { c.sb.threshold = n }

// SuperblockStats returns the engine counters.
func (c *CPU) SuperblockStats() SuperblockStats {
	return SuperblockStats{
		Built:        c.sb.built,
		Invalidated:  c.sb.invalidated,
		EntryRejects: c.sb.entryRejects,
		ExitEnd:      c.sb.exitEnd,
		ExitMispred:  c.sb.exitMispred,
		ExitBudget:   c.sb.exitBudget,
		ExitPDExit:   c.sb.exitPDExit,
		ExitExc:      c.sb.exitExc,
	}
}

// sbDropAll invalidates and forgets every superblock (engine switch,
// predecode cache flush, or the sbMaxBlocks backstop).
func (c *CPU) sbDropAll() {
	for _, s := range c.sb.all {
		if s.valid {
			s.valid = false
			c.sb.invalidated++
		}
	}
	c.sb.idx = nil
	c.sb.heat = nil
	c.sb.all = nil
	c.sb.deps = nil
	c.sb.count = 0
	if c.sb.cur != nil {
		// Dispatch is in flight (a store rolled the whole cache over):
		// bail after the current instruction like any invalidation.
		c.pdExit = true
	}
}

// sbInvalidateFrame invalidates every superblock that drew micro-ops
// from physical frame fn; called from dropFrame so all three write
// paths (guest store bitmap, RAM write hook, device DMA) flow here.
func (c *CPU) sbInvalidateFrame(fn uint32) {
	deps := c.sb.deps[fn]
	if deps == nil {
		return
	}
	for _, s := range deps {
		if s.valid {
			s.valid = false
			c.sb.invalidated++
			c.sb.count--
		}
		if s == c.sb.cur {
			c.pdExit = true
		}
	}
	delete(c.sb.deps, fn)
}

// sbEnterable returns the superblock at va if one exists and its entry
// guards pass; a miss feeds the hotness table and may trigger a build.
// The caller must ensure no delay slot is pending and no observer is
// attached (StepN already guarantees both).
func (c *CPU) sbEnterable(va uint32) *superblock {
	if c.sb.idx == nil {
		if c.sb.off || c.pd.off {
			return nil
		}
		c.sb.idx = make([]*superblock, sbIndexSize)
		c.sb.heat = make([]sbHeat, sbIndexSize)
	}
	s := c.sb.idx[va>>2&(sbIndexSize-1)]
	if s == nil || s.entryVA != va || !s.valid {
		c.sbMiss(va)
		return nil
	}
	if s.kernel && !c.KernelMode() {
		c.sb.entryRejects++
		return nil
	}
	if s.mapped && s.gen != c.tcGen && !c.sbRevalidate(s) {
		c.sb.entryRejects++
		return nil
	}
	return s
}

// sbMiss accounts one lookup miss at va and builds a superblock once
// the address crosses the threshold.
func (c *CPU) sbMiss(va uint32) {
	slot := va >> 2 & (sbIndexSize - 1)
	if s := c.sb.idx[slot]; s != nil && !s.valid {
		c.sb.idx[slot] = nil
		if c.sb.all[s.entryVA] == s {
			delete(c.sb.all, s.entryVA)
		}
	}
	h := &c.sb.heat[slot]
	if h.va != va {
		h.va = va
		h.n = 1
		return
	}
	h.n++
	th := c.sb.threshold
	if th == 0 {
		th = sbDefaultThreshold
	}
	if h.n < th {
		return
	}
	h.n = 0
	if s := c.sb.all[va]; s != nil && s.valid {
		// Still resident, just evicted from the direct-mapped table by
		// a colliding entry point: re-install instead of rebuilding.
		c.sb.idx[slot] = s
		return
	}
	c.sbBuild(va)
}

// sbRevalidate re-checks every page guard against the live TLB under
// the current ASID. On success the superblock is re-stamped with the
// current generation so subsequent entries are O(1) again.
func (c *CPU) sbRevalidate(s *superblock) bool {
	for _, p := range s.pages {
		i := c.lookupTLB(p.vpage)
		if i < 0 {
			return false
		}
		lo := c.TLB[i].Lo
		if lo&EloV == 0 || lo&EloN != 0 || lo&EloPFN != p.ppage {
			return false
		}
	}
	s.gen = c.tcGen
	return true
}

// sbProbeText resolves the text page holding va for the builder
// without raising exceptions or touching the translation caches.
// Uncached segments and device space are refused (the predecode cache
// has the same requirement).
func (c *CPU) sbProbeText(va uint32) (ppage uint32, ram []byte, mapped, kernel, ok bool) {
	switch {
	case va < KUSegEnd:
		mapped = true
	case va < KSeg1Base:
		kernel = true
	case va < KSeg2Base:
		return 0, nil, false, false, false // kseg1: uncached
	default:
		mapped = true
		kernel = true
	}
	if mapped {
		i := c.lookupTLB(va)
		if i < 0 {
			return 0, nil, false, false, false
		}
		lo := c.TLB[i].Lo
		if lo&EloV == 0 || lo&EloN != 0 {
			return 0, nil, false, false, false
		}
		ppage = lo & EloPFN
	} else {
		ppage = (va - KSeg0Base) & EntryHiVPN
	}
	ram = c.Bus.RAMPage(ppage)
	if ram == nil {
		return 0, nil, false, false, false
	}
	return ppage, ram, mapped, kernel, true
}

// sbChainEnder reports whether a micro-op must terminate a chain: ops
// that set pdExit or raise by design (COP0, SYSCALL, BREAK, reserved)
// and the FP condition branch, which the builder does not predict.
func sbChainEnder(u *uop) bool {
	switch u.op {
	case pdCOP0, pdSYSCALL, pdBREAK, pdReserved:
		return true
	case pdCOP1:
		return uint32(u.rs) == isa.Cop1BC // FP condition branch
	}
	return false
}

// sbIsBranch reports whether a micro-op is a control transfer (with a
// delay slot).
func sbIsBranch(u *uop) bool {
	switch u.op {
	case pdBEQ, pdBNE, pdBLEZ, pdBGTZ, pdBLTZ, pdBGEZ, pdJ, pdJAL, pdJR, pdJALR:
		return true
	}
	return false
}

// sbBuild walks the predecoded micro-ops from entry, linearizing
// predicted control flow into one superblock, and installs it.
func (c *CPU) sbBuild(entry uint32) {
	if entry&3 != 0 {
		return
	}
	if c.sb.count >= sbMaxBlocks {
		c.sbDropAll()
		// sbDropAll released the tables; the caller's next miss
		// reallocates them and heat re-accumulates.
		return
	}
	s := &superblock{entryVA: entry}

	// Page cursor for the walk. Fetching from a new page resolves its
	// translation, records the guards, and binds the decoded frame.
	var curVP uint32 = 1
	var frame *pdFrame
	fetch := func(va uint32) (*uop, bool) {
		if va&EntryHiVPN != curVP {
			ppage, ram, mapped, kernel, ok := c.sbProbeText(va)
			if !ok {
				return nil, false
			}
			fn := ppage >> PageShift
			seen := false
			for _, f := range s.frames {
				if f == fn {
					seen = true
					break
				}
			}
			if !seen {
				if len(s.frames) >= sbMaxPages {
					return nil, false
				}
				s.frames = append(s.frames, fn)
				if mapped {
					s.pages = append(s.pages, sbPage{vpage: va & EntryHiVPN, ppage: ppage})
					s.mapped = true
				}
				if kernel {
					s.kernel = true
				}
			} else if mapped {
				// The same frame can be re-entered under a different
				// virtual page (aliases); guard the new vpage too.
				guarded := false
				for _, p := range s.pages {
					if p.vpage == va&EntryHiVPN {
						guarded = true
						break
					}
				}
				if !guarded {
					if len(s.pages) >= sbMaxPages {
						return nil, false
					}
					s.pages = append(s.pages, sbPage{vpage: va & EntryHiVPN, ppage: ppage})
					s.mapped = true
				}
			}
			frame = c.pdFrameFor(ppage, ram)
			curVP = va & EntryHiVPN
		}
		return &frame.ops[va>>2&(pdFrameWords-1)], true
	}

	mkStep := func(u *uop, pc uint32, flags uint8) sbStep {
		return sbStep{
			op: u.op, rs: u.rs, rt: u.rt, rd: u.rd, sh: u.sh,
			flags: flags, wt: 1, cls: u.cls, imm: u.imm, pc: pc,
		}
	}

	va := entry
	// viaJump is true while va names the target of a predicted-taken
	// branch whose (branch, slot) pair is already appended but from
	// whose block nothing is yet. If the walk stops here, the chain's
	// continuation is that target — dispatch must exit through the
	// slot's delayTarget, not fall off the end to lastPC+4.
	viaJump := false
walk:
	for len(s.steps) < sbMaxSteps {
		u, ok := fetch(va)
		if !ok || sbChainEnder(u) {
			s.exitSlot = viaJump
			break
		}
		if !sbIsBranch(u) {
			s.steps = append(s.steps, mkStep(u, va, 0))
			va += 4
			viaJump = false
			continue
		}
		if len(s.steps)+2 > sbMaxSteps {
			s.exitSlot = viaJump
			break
		}
		slot, ok := fetch(va + 4)
		if !ok || sbChainEnder(slot) || sbIsBranch(slot) {
			// A slot the dispatcher can't run linearized (or can't
			// fetch): end the chain before the branch.
			s.exitSlot = viaJump
			break
		}
		viaJump = false
		st := mkStep(u, va, 0)
		var target uint32
		chain := false // predicted-taken chains continue at target
		ends := false  // branch ends the chain after its slot
		switch u.op {
		case pdJ, pdJAL:
			target = va&0xf0000000 | u.imm
			st.imm = target
			st.flags |= sbPredTaken
			chain = true
		case pdJR, pdJALR:
			// Dynamic target: always chain-ending; dispatch sets
			// delayTarget from the register.
			ends = true
		default:
			target = va + 4 + u.imm
			st.imm = target
			taken := target < va // backward-taken/forward-not-taken
			if u.op == pdBEQ && u.rs == u.rt {
				taken = true // unconditional in disguise
			}
			if taken {
				st.flags |= sbPredTaken
				chain = true
			}
		}
		s.steps = append(s.steps, st)
		s.steps = append(s.steps, mkStep(slot, va+4, sbSlot))
		switch {
		case ends:
			s.exitSlot = true
			break walk
		case chain:
			if target == entry {
				// Self-loop: dispatch wraps to step 0 instead of
				// exiting, re-entry guards not needed (nothing inside
				// can change them — that is the chain-ender rule).
				s.loop = true
				break walk
			}
			if target < va {
				// Backward branch into other code: stop here rather
				// than unrolling; the target gets its own superblock.
				s.exitSlot = true
				break walk
			}
			if len(s.steps) >= sbMaxSteps {
				// No room to keep walking past the jump: the chain
				// must exit through the slot's delayTarget, not fall
				// off the end to lastPC+4 (a self-spin J unrolls to
				// exactly this shape).
				s.exitSlot = true
				break walk
			}
			va = target
			viaJump = true
		default:
			va += 8 // predicted not-taken: fall through past the slot
		}
	}

	if len(s.steps) < sbMinSteps {
		return
	}
	c.sbFuseRuns(s)

	// pdFrameFor above may have tripped the pdMaxFrames backstop and
	// dropped the whole predecode cache mid-walk; a superblock whose
	// source frames are gone would never see their invalidations.
	for _, fn := range s.frames {
		if _, ok := c.pd.frames[fn]; !ok {
			return
		}
	}

	if c.sb.idx == nil {
		// pdFrameFor tripped a cache rollover mid-walk and sbDropAll
		// released the tables; let the next miss start fresh.
		return
	}
	s.gen = c.tcGen
	s.valid = true
	if c.sb.all == nil {
		c.sb.all = make(map[uint32]*superblock)
		c.sb.deps = make(map[uint32][]*superblock)
	}
	if old := c.sb.all[entry]; old != nil && old.valid {
		old.valid = false
		c.sb.count--
	}
	c.sb.all[entry] = s
	c.sb.idx[entry>>2&(sbIndexSize-1)] = s
	for _, fn := range s.frames {
		c.sb.deps[fn] = append(c.sb.deps[fn], s)
	}
	c.sb.count++
	c.sb.built++
	if c.sb.chainHist != nil {
		var instrs uint64
		for i := range s.steps {
			instrs += uint64(s.steps[i].wt)
		}
		c.sb.chainHist.Observe(instrs)
	}
}

// sbFuseRuns rewrites maximal runs of consecutive non-slot word
// loads (or stores) off one base register into single fused micro-ops.
// Within a run the only register hazard is a load clobbering the base:
// such a load may be the final member (it still reads the old base)
// but nothing may follow it. Displacements must be word-aligned with
// an envelope under a page so one endpoints-on-page check covers every
// access.
func (c *CPU) sbFuseRuns(s *superblock) {
	steps := s.steps
	out := steps[:0:0]
	for i := 0; i < len(steps); {
		st := steps[i]
		if (st.op != pdLW && st.op != pdSW) || st.flags != 0 {
			out = append(out, st)
			i++
			continue
		}
		base := st.rs
		j := i
		lo, hi := st.imm, st.imm
		for j < len(steps) && j-i < sbMaxRunLen {
			s2 := &steps[j]
			if s2.op != st.op || s2.flags != 0 || s2.rs != base || s2.imm&3 != 0 {
				break
			}
			nlo, nhi := lo, hi
			if int32(s2.imm) < int32(nlo) {
				nlo = s2.imm
			}
			if int32(s2.imm) > int32(nhi) {
				nhi = s2.imm
			}
			if uint32(int32(nhi)-int32(nlo)) >= PageSize {
				break
			}
			lo, hi = nlo, nhi
			j++
			if st.op == pdLW && s2.rt == base {
				break // base clobbered: include the load, stop the run
			}
		}
		if j-i < 2 {
			out = append(out, st)
			i++
			continue
		}
		run := sbRun{lo: lo, hi: hi}
		for k := i; k < j; k++ {
			run.subs = append(run.subs, sbMemSub{rt: steps[k].rt, off: steps[k].imm})
		}
		fop := sbLWRun
		if st.op == pdSW {
			fop = sbSWRun
		}
		out = append(out, sbStep{
			op: fop, rs: base, wt: uint8(j - i), cls: st.cls,
			imm: uint32(len(s.runs)), pc: st.pc,
		})
		s.runs = append(s.runs, run)
		i = j
	}
	s.steps = out
}

// advanceRandom applies n iterations of the per-instruction Random
// decrement (8..63 cycling with period 56) in O(1). Dispatch batches
// the update because nothing inside a superblock can read Random —
// MFC0 and TLBWR are chain enders.
func advanceRandom(r uint32, n uint64) uint32 {
	if n == 0 {
		return r
	}
	const period = NTLB - TLBWired
	if r <= TLBWired || r > NTLB-1 {
		// One step normalizes into the cycle.
		r = NTLB - 1
		n--
		if n == 0 {
			return r
		}
	}
	pos := (uint64(NTLB-1-r) + n) % period
	return NTLB - 1 - uint32(pos)
}

// execSB dispatches one superblock for up to max instructions and
// returns the number retired. On return the architectural state is
// exactly what the reference interpreter would hold after the same
// retirement count; c.pdExit is set when the caller must leave the
// batch (exception, device access, invalidation), exactly as after a
// StepN step.
func (c *CPU) execSB(s *superblock, max uint64) uint64 {
	steps := s.steps
	g := &c.GPR
	c.sb.cur = s
	r0 := c.CP0.Random
	var n, flushed uint64
	// Per-class retirement accumulates in registers and lands on
	// c.Stat in one flush at exit: nothing inside a dispatch reads
	// Classes, and machine time is Instret-based (flushed separately
	// at every slow-path boundary for device timestamps).
	var clsAcc [NClass]uint64
	// linkPending marks a mispredicted branch whose delay slot is about
	// to run inline; after the slot retires, dispatch leaves this chain
	// and tries to link into the superblock at the real target.
	linkPending := false
	i := 0
dispatch:
	for {
		if n >= max {
			st := &steps[i]
			if st.flags&sbSlot != 0 {
				// Stopping between a branch and its slot: the branch
				// already set delayTarget; restore the architectural
				// in-delay state for the generic path.
				c.inDelay = true
			}
			c.PC = st.pc
			c.sb.exitBudget++
			goto out
		}
		st := &steps[i]
		k := uint64(1)
		switch st.op {
		case pdADDU:
			g[st.rd] = g[st.rs] + g[st.rt]
			g[0] = 0
		case pdADDIU:
			g[st.rt] = g[st.rs] + st.imm
			g[0] = 0
		case pdLW:
			va := g[st.rs] + st.imm
			if va&EntryHiVPN == c.dcache.vpage && va&3 == 0 && c.dcache.ram != nil {
				r := c.dcache.ram
				off := va & (PageSize - 1)
				g[st.rt] = uint32(r[off])<<24 | uint32(r[off+1])<<16 | uint32(r[off+2])<<8 | uint32(r[off+3])
				g[0] = 0
			} else {
				c.PC = st.pc
				if st.flags&sbSlot != 0 {
					c.execInSlot = true
				}
				c.Stat.Instret += n - flushed
				flushed = n
				v, lok := c.load(va, 4)
				c.execInSlot = false
				if !lok {
					n++
					clsAcc[st.cls]++
					c.sb.exitExc++
					goto out
				}
				g[st.rt] = uint32(v)
				g[0] = 0
			}
		case pdSW:
			va := g[st.rs] + st.imm
			if va&EntryHiVPN == c.wcache.vpage && va&3 == 0 && c.wcache.ram != nil {
				if fn := c.wcache.ppage >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
					c.dropFrame(fn)
				}
				r := c.wcache.ram
				off := va & (PageSize - 1)
				v := g[st.rt]
				r[off] = byte(v >> 24)
				r[off+1] = byte(v >> 16)
				r[off+2] = byte(v >> 8)
				r[off+3] = byte(v)
			} else {
				c.PC = st.pc
				if st.flags&sbSlot != 0 {
					c.execInSlot = true
				}
				c.Stat.Instret += n - flushed
				flushed = n
				sok := c.store(va, 4, uint64(g[st.rt]))
				c.execInSlot = false
				if !sok {
					n++
					clsAcc[st.cls]++
					c.sb.exitExc++
					goto out
				}
			}
		case sbLWRun:
			run := &s.runs[st.imm]
			k = uint64(st.wt)
			if n+k > max {
				c.PC = st.pc
				c.sb.exitBudget++
				goto out
			}
			base := g[st.rs]
			if base&3 == 0 && (base+run.lo)&EntryHiVPN == c.dcache.vpage &&
				(base+run.hi)&EntryHiVPN == c.dcache.vpage && c.dcache.ram != nil {
				r := c.dcache.ram
				for _, sub := range run.subs {
					off := (base + sub.off) & (PageSize - 1)
					g[sub.rt] = uint32(r[off])<<24 | uint32(r[off+1])<<16 | uint32(r[off+2])<<8 | uint32(r[off+3])
				}
				g[0] = 0
			} else {
				// Slow run: per-access load() with exact PC, exception,
				// and device-exit behavior. No sub before the last can
				// write the base register (build rule), so the shared
				// base read stays valid.
				for j := range run.subs {
					sub := run.subs[j]
					c.PC = st.pc + uint32(j)*4
					c.Stat.Instret += n - flushed
					flushed = n
					v, lok := c.load(base+sub.off, 4)
					n++
					clsAcc[st.cls]++
					if !lok {
						c.sb.exitExc++
						goto out
					}
					g[sub.rt] = uint32(v)
					g[0] = 0
					if c.pdExit {
						c.PC = st.pc + uint32(j+1)*4
						c.sb.exitPDExit++
						goto out
					}
				}
				i++
				if i == len(steps) {
					goto chainEnd
				}
				continue
			}
		case sbSWRun:
			run := &s.runs[st.imm]
			k = uint64(st.wt)
			if n+k > max {
				c.PC = st.pc
				c.sb.exitBudget++
				goto out
			}
			base := g[st.rs]
			if base&3 == 0 && (base+run.lo)&EntryHiVPN == c.wcache.vpage &&
				(base+run.hi)&EntryHiVPN == c.wcache.vpage && c.wcache.ram != nil {
				if fn := c.wcache.ppage >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
					c.dropFrame(fn)
					if c.pdExit {
						// The run stores into live decoded text (the
						// executing frame or one chained into this
						// superblock): retire only the first store and
						// bail so the generic path refetches fresh code,
						// exactly like the per-instruction engines.
						sub := run.subs[0]
						r := c.wcache.ram
						off := (base + sub.off) & (PageSize - 1)
						v := g[sub.rt]
						r[off] = byte(v >> 24)
						r[off+1] = byte(v >> 16)
						r[off+2] = byte(v >> 8)
						r[off+3] = byte(v)
						n++
						clsAcc[st.cls]++
						c.PC = st.pc + 4
						c.sb.exitPDExit++
						goto out
					}
				}
				r := c.wcache.ram
				for _, sub := range run.subs {
					off := (base + sub.off) & (PageSize - 1)
					v := g[sub.rt]
					r[off] = byte(v >> 24)
					r[off+1] = byte(v >> 16)
					r[off+2] = byte(v >> 8)
					r[off+3] = byte(v)
				}
			} else {
				for j := range run.subs {
					sub := run.subs[j]
					c.PC = st.pc + uint32(j)*4
					c.Stat.Instret += n - flushed
					flushed = n
					sok := c.store(base+sub.off, 4, uint64(g[sub.rt]))
					n++
					clsAcc[st.cls]++
					if !sok {
						c.sb.exitExc++
						goto out
					}
					if c.pdExit {
						c.PC = st.pc + uint32(j+1)*4
						c.sb.exitPDExit++
						goto out
					}
				}
				i++
				if i == len(steps) {
					goto chainEnd
				}
				continue
			}
		case pdBEQ, pdBNE, pdBLEZ, pdBGTZ, pdBLTZ, pdBGEZ:
			var taken bool
			switch st.op {
			case pdBEQ:
				taken = g[st.rs] == g[st.rt]
			case pdBNE:
				taken = g[st.rs] != g[st.rt]
			case pdBLEZ:
				taken = int32(g[st.rs]) <= 0
			case pdBGTZ:
				taken = int32(g[st.rs]) > 0
			case pdBLTZ:
				taken = int32(g[st.rs]) < 0
			default:
				taken = int32(g[st.rs]) >= 0
			}
			g[0] = 0
			t := st.pc + 8
			if taken {
				t = st.imm
			}
			c.delayTarget = t
			// A mispredicted branch no longer surrenders the batch: the
			// very next step IS its delay slot (the builder appends them
			// as a pair), so the slot runs inline with full slow-path
			// handling, and the tail then links to the real target —
			// possibly straight into another superblock.
			linkPending = taken != (st.flags&sbPredTaken != 0)
		case pdJ:
			c.delayTarget = st.imm
			g[0] = 0
		case pdJAL:
			g[31] = st.pc + 8
			c.delayTarget = st.imm
			g[0] = 0
		case pdJR:
			c.delayTarget = g[st.rs]
			g[0] = 0
		case pdJALR:
			t := g[st.rs]
			g[st.rd] = st.pc + 8
			c.delayTarget = t
			g[0] = 0
		case pdSLL:
			g[st.rd] = g[st.rt] << st.sh
			g[0] = 0
		case pdSRL:
			g[st.rd] = g[st.rt] >> st.sh
			g[0] = 0
		case pdSRA:
			g[st.rd] = uint32(int32(g[st.rt]) >> st.sh)
			g[0] = 0
		case pdSLLV:
			g[st.rd] = g[st.rt] << (g[st.rs] & 31)
			g[0] = 0
		case pdSRLV:
			g[st.rd] = g[st.rt] >> (g[st.rs] & 31)
			g[0] = 0
		case pdSRAV:
			g[st.rd] = uint32(int32(g[st.rt]) >> (g[st.rs] & 31))
			g[0] = 0
		case pdSUBU:
			g[st.rd] = g[st.rs] - g[st.rt]
			g[0] = 0
		case pdAND:
			g[st.rd] = g[st.rs] & g[st.rt]
			g[0] = 0
		case pdOR:
			g[st.rd] = g[st.rs] | g[st.rt]
			g[0] = 0
		case pdXOR:
			g[st.rd] = g[st.rs] ^ g[st.rt]
			g[0] = 0
		case pdNOR:
			g[st.rd] = ^(g[st.rs] | g[st.rt])
			g[0] = 0
		case pdSLT:
			if int32(g[st.rs]) < int32(g[st.rt]) {
				g[st.rd] = 1
			} else {
				g[st.rd] = 0
			}
			g[0] = 0
		case pdSLTU:
			if g[st.rs] < g[st.rt] {
				g[st.rd] = 1
			} else {
				g[st.rd] = 0
			}
			g[0] = 0
		case pdSLTI:
			if int32(g[st.rs]) < int32(st.imm) {
				g[st.rt] = 1
			} else {
				g[st.rt] = 0
			}
			g[0] = 0
		case pdSLTIU:
			if g[st.rs] < st.imm {
				g[st.rt] = 1
			} else {
				g[st.rt] = 0
			}
			g[0] = 0
		case pdANDI:
			g[st.rt] = g[st.rs] & st.imm
			g[0] = 0
		case pdORI:
			g[st.rt] = g[st.rs] | st.imm
			g[0] = 0
		case pdXORI:
			g[st.rt] = g[st.rs] ^ st.imm
			g[0] = 0
		case pdLUI:
			g[st.rt] = st.imm
			g[0] = 0
		case pdMFHI:
			g[st.rd] = c.HI
			g[0] = 0
		case pdMTHI:
			c.HI = g[st.rs]
			g[0] = 0
		case pdMFLO:
			g[st.rd] = c.LO
			g[0] = 0
		case pdMTLO:
			c.LO = g[st.rs]
			g[0] = 0
		case pdMULT:
			p := int64(int32(g[st.rs])) * int64(int32(g[st.rt]))
			c.LO = uint32(p)
			c.HI = uint32(p >> 32)
			g[0] = 0
		case pdMULTU:
			p := uint64(g[st.rs]) * uint64(g[st.rt])
			c.LO = uint32(p)
			c.HI = uint32(p >> 32)
			g[0] = 0
		case pdDIV:
			if g[st.rt] != 0 {
				c.LO = uint32(int32(g[st.rs]) / int32(g[st.rt]))
				c.HI = uint32(int32(g[st.rs]) % int32(g[st.rt]))
			}
			g[0] = 0
		case pdDIVU:
			if g[st.rt] != 0 {
				c.LO = g[st.rs] / g[st.rt]
				c.HI = g[st.rs] % g[st.rt]
			}
			g[0] = 0
		case pdLB:
			va := g[st.rs] + st.imm
			if va&EntryHiVPN == c.dcache.vpage && c.dcache.ram != nil {
				g[st.rt] = uint32(int32(int8(c.dcache.ram[va&(PageSize-1)])))
				g[0] = 0
			} else {
				c.PC = st.pc
				if st.flags&sbSlot != 0 {
					c.execInSlot = true
				}
				c.Stat.Instret += n - flushed
				flushed = n
				v, lok := c.load(va, 1)
				c.execInSlot = false
				if !lok {
					n++
					clsAcc[st.cls]++
					c.sb.exitExc++
					goto out
				}
				g[st.rt] = uint32(int32(int8(v)))
				g[0] = 0
			}
		case pdLBU:
			va := g[st.rs] + st.imm
			if va&EntryHiVPN == c.dcache.vpage && c.dcache.ram != nil {
				g[st.rt] = uint32(c.dcache.ram[va&(PageSize-1)])
				g[0] = 0
			} else {
				c.PC = st.pc
				if st.flags&sbSlot != 0 {
					c.execInSlot = true
				}
				c.Stat.Instret += n - flushed
				flushed = n
				v, lok := c.load(va, 1)
				c.execInSlot = false
				if !lok {
					n++
					clsAcc[st.cls]++
					c.sb.exitExc++
					goto out
				}
				g[st.rt] = uint32(v)
				g[0] = 0
			}
		case pdSB:
			va := g[st.rs] + st.imm
			if va&EntryHiVPN == c.wcache.vpage && c.wcache.ram != nil {
				if fn := c.wcache.ppage >> PageShift; int(fn>>6) < len(c.pd.bitmap) && c.pd.bitmap[fn>>6]&(1<<(fn&63)) != 0 {
					c.dropFrame(fn)
				}
				c.wcache.ram[va&(PageSize-1)] = byte(g[st.rt])
			} else {
				c.PC = st.pc
				if st.flags&sbSlot != 0 {
					c.execInSlot = true
				}
				c.Stat.Instret += n - flushed
				flushed = n
				sok := c.store(va, 1, uint64(g[st.rt]&0xff))
				c.execInSlot = false
				if !sok {
					n++
					clsAcc[st.cls]++
					c.sb.exitExc++
					goto out
				}
			}
		default:
			// pdLH/pdLHU/pdSH/pdLWC1/pdSWC1/pdCOP1(non-BC): the slow
			// helpers, with the PC materialized for exceptions and
			// machine time flushed for device timestamps.
			c.PC = st.pc
			if st.flags&sbSlot != 0 {
				c.execInSlot = true
			}
			c.Stat.Instret += n - flushed
			flushed = n
			u := uop{op: st.op, rs: st.rs, rt: st.rt, rd: st.rd, sh: st.sh, cls: st.cls, imm: st.imm}
			eok := c.execU(&u)
			c.execInSlot = false
			if !eok {
				n++
				clsAcc[st.cls]++
				c.sb.exitExc++
				goto out
			}
		}
		n += k
		clsAcc[st.cls] += k
		i++
		if linkPending && st.flags&sbSlot != 0 {
			// The slot of a mispredicted branch just retired; resume at
			// the branch's real target. This check must precede the
			// pdExit one: if the slot itself forced an exit, the resume
			// PC is still the branch target, not the chained successor.
			linkPending = false
			c.PC = c.delayTarget
			c.sb.exitMispred++
			goto link
		}
		if c.pdExit || c.Halted {
			if i == len(steps) {
				goto chainEnd
			}
			c.PC = steps[i].pc
			c.sb.exitPDExit++
			goto out
		}
		if i == len(steps) {
			if s.loop {
				i = 0
				continue
			}
			goto chainEnd
		}
	}

chainEnd:
	if s.exitSlot {
		c.PC = c.delayTarget
	} else {
		last := &steps[len(steps)-1]
		c.PC = last.pc + uint32(last.wt)*4
	}
	if c.pdExit || c.Halted {
		c.sb.exitPDExit++
		goto out
	}
	c.sb.exitEnd++

link:
	// Chain-to-chain linking: the dispatch is at a clean instruction
	// boundary with c.PC naming the continuation, so if a superblock
	// starts there, enter it without surrendering the batch. The lookup
	// may build (and a cache rollover mid-build drops every superblock
	// and raises pdExit, because cur is non-nil), so pdExit is
	// re-checked after it.
	if !c.pdExit && !c.Halted && n < max {
		if s2 := c.sbEnterable(c.PC); s2 != nil && !c.pdExit {
			s = s2
			steps = s.steps
			c.sb.cur = s
			i = 0
			goto dispatch
		}
	}

out:
	c.CP0.Random = advanceRandom(r0, n)
	c.Stat.Instret += n - flushed
	for ci, v := range clsAcc {
		if v != 0 {
			c.Stat.Classes[ci] += v
		}
	}
	c.sb.cur = nil
	return n
}
