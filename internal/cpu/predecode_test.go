package cpu_test

// Differential oracle for the predecoded interpreter core: the
// reference engine (SetPredecode(false) — per-instruction fetch and
// full decode) is stepped in lockstep with the predecoded engine over
// random instruction sequences, asserting identical architectural
// state (GPR/FPR/CP0/TLB/Stat) and identical Observer event streams
// after every step. Invalidation edges (store to the executing page,
// device DMA over decoded text) get dedicated regression tests.

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"systrace/internal/cpu"
	"systrace/internal/dev"
	"systrace/internal/isa"
	"systrace/internal/machine"
)

// recObs folds every observer event into a rolling FNV-1a hash so two
// streams can be compared step by step without storing them.
type recObs struct {
	h uint64
	n uint64
}

func (o *recObs) mix(vs ...uint32) {
	for _, v := range vs {
		o.h ^= uint64(v)
		o.h *= 1099511628211
	}
	o.n++
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func (o *recObs) Fetch(va, pa uint32, kernel, cached bool) {
	o.mix(1, va, pa, b2u(kernel), b2u(cached))
}
func (o *recObs) Load(va, pa uint32, size int, kernel, cached bool) {
	o.mix(2, va, pa, uint32(size), b2u(kernel), b2u(cached))
}
func (o *recObs) Store(va, pa uint32, size int, kernel, cached bool) {
	o.mix(3, va, pa, uint32(size), b2u(kernel), b2u(cached))
}
func (o *recObs) Exception(code int, vector uint32) { o.mix(4, uint32(code), vector) }
func (o *recObs) FPOp(latency int)                  { o.mix(5, uint32(latency)) }

// diffState returns a description of the first architectural
// difference between two CPUs, or "" if they match.
func diffState(a, b *cpu.CPU) string {
	if a.GPR != b.GPR {
		for i := range a.GPR {
			if a.GPR[i] != b.GPR[i] {
				return fmt.Sprintf("GPR[%d] 0x%08x vs 0x%08x", i, a.GPR[i], b.GPR[i])
			}
		}
	}
	for i := range a.FPR {
		if math.Float64bits(a.FPR[i]) != math.Float64bits(b.FPR[i]) {
			return fmt.Sprintf("FPR[%d] %v vs %v", i, a.FPR[i], b.FPR[i])
		}
	}
	if a.FPCond != b.FPCond {
		return fmt.Sprintf("FPCond %v vs %v", a.FPCond, b.FPCond)
	}
	if a.HI != b.HI || a.LO != b.LO {
		return fmt.Sprintf("HI/LO %x/%x vs %x/%x", a.HI, a.LO, b.HI, b.LO)
	}
	if a.PC != b.PC {
		return fmt.Sprintf("PC 0x%08x vs 0x%08x", a.PC, b.PC)
	}
	if a.CP0 != b.CP0 {
		return fmt.Sprintf("CP0 %+v vs %+v", a.CP0, b.CP0)
	}
	if a.TLB != b.TLB {
		return "TLB contents differ"
	}
	if a.Stat != b.Stat {
		return fmt.Sprintf("Stat %+v vs %+v", a.Stat, b.Stat)
	}
	if a.Halted != b.Halted {
		return fmt.Sprintf("Halted %v vs %v", a.Halted, b.Halted)
	}
	if a.FaultMsg != b.FaultMsg {
		return fmt.Sprintf("FaultMsg %q vs %q", a.FaultMsg, b.FaultMsg)
	}
	return ""
}

// randInstr produces one instruction word: a blend of fully random
// words (covering reserved encodings and every primary opcode) and
// templated valid instructions with random fields (covering real
// semantics densely — branches stay short, memory offsets stay small
// so pointer-seeded registers mostly hit RAM).
func randInstr(r *rand.Rand) uint32 {
	reg := func() int { return r.Intn(32) }
	off := func() uint16 { return uint16(r.Intn(64) * 4) }
	boff := func() int16 { return int16(r.Intn(16) - 8) }
	switch r.Intn(22) {
	case 0, 1, 2, 3:
		return r.Uint32()
	case 4:
		return uint32(isa.ADDU(reg(), reg(), reg()))
	case 5:
		return uint32(isa.ADDIU(reg(), reg(), uint16(r.Uint32())))
	case 6:
		return uint32(isa.LW(reg(), reg(), off()))
	case 7:
		return uint32(isa.SW(reg(), reg(), off()))
	case 8:
		return uint32(isa.BEQ(reg(), reg(), boff()))
	case 9:
		return uint32(isa.BNE(reg(), reg(), boff()))
	case 10:
		return uint32(isa.SLL(reg(), reg(), uint32(r.Intn(32))))
	case 11:
		return uint32(isa.MULT(reg(), reg()))
	case 12:
		return uint32(isa.LUI(reg(), uint16(r.Uint32())))
	case 13:
		return uint32(isa.ORI(reg(), reg(), uint16(r.Uint32())))
	case 14:
		return uint32(isa.LB(reg(), reg(), off()))
	case 15:
		return uint32(isa.SB(reg(), reg(), off()))
	case 16:
		return uint32(isa.BLTZ(reg(), boff()))
	case 17:
		return uint32(isa.MTC1(reg(), reg()))
	case 18:
		return uint32(isa.FADD(r.Intn(32), r.Intn(32), r.Intn(32)))
	case 19:
		// Direct jumps stay inside the three text pages so chains keep
		// chaining; JR targets come from the pointer-seeded registers.
		t := (0x80001000 + uint32(r.Intn(0x2000))&^3) >> 2 & 0x03ffffff
		if r.Intn(2) == 0 {
			return uint32(isa.J(t))
		}
		return uint32(isa.JAL(t))
	case 20:
		return uint32(isa.JR(reg()))
	default:
		return uint32(isa.MFC0(reg(), r.Intn(16)))
	}
}

// lockstepPair builds two identical machines, one per engine, with the
// given words loaded from physical address 0 and registers seeded from
// r.
func lockstepPair(r *rand.Rand, words []uint32) (ref, fast *machine.Machine, oref, ofast *recObs) {
	ref = machine.New(1<<20, nil)
	fast = machine.New(1<<20, nil)
	ref.CPU.SetPredecode(false)
	var regs [32]uint32
	for i := 1; i < 32; i++ {
		if r.Intn(2) == 0 {
			// Pointers into the program/data region keep loads,
			// stores, and JR targets mostly on mapped RAM — including
			// stores into the executing text itself.
			regs[i] = 0x80001000 + uint32(r.Intn(0x1800))&^3
		} else {
			regs[i] = r.Uint32()
		}
	}
	oref, ofast = &recObs{}, &recObs{}
	for i, m := range []*machine.Machine{ref, fast} {
		for w := range words {
			m.RAM.WriteWord(uint32(w*4), words[w])
		}
		m.CPU.GPR = regs
		m.CPU.PC = 0x80001000
		m.CPU.HaltOnBreak = true
		if i == 0 {
			m.CPU.Obs = oref
		} else {
			m.CPU.Obs = ofast
		}
	}
	return ref, fast, oref, ofast
}

// lockstepRun steps both engines together, failing on the first
// architectural or event-stream divergence.
func lockstepRun(t *testing.T, steps int, ref, fast *machine.Machine, oref, ofast *recObs) {
	t.Helper()
	for s := 0; s < steps; s++ {
		ra := ref.CPU.Step()
		rb := fast.CPU.Step()
		if ra != rb {
			t.Fatalf("step %d: continue %v (reference) vs %v (predecode)", s, ra, rb)
		}
		if d := diffState(ref.CPU, fast.CPU); d != "" {
			t.Fatalf("step %d: %s", s, d)
		}
		if oref.n != ofast.n || oref.h != ofast.h {
			t.Fatalf("step %d: observer streams diverge (%d events hash %x vs %d events hash %x)",
				s, oref.n, oref.h, ofast.n, ofast.h)
		}
		if !ra {
			break
		}
	}
}

func TestLockstepRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			// Random words fill the vector pages too, so exception
			// entries land in random handler code; text spans three
			// pages to exercise page crossings.
			words := make([]uint32, 0x3000/4)
			for i := range words {
				words[i] = randInstr(r)
			}
			ref, fast, oref, ofast := lockstepPair(r, words)
			lockstepRun(t, 3000, ref, fast, oref, ofast)
		})
	}
}

// runBatched drives a CPU the way machine.Run's long-burst mode does:
// StepN batches as far as it can, and a single Step makes progress
// over whatever the batch refused (interrupts, page crossings, COP0,
// exceptions) before the batch resumes.
func runBatched(c *cpu.CPU, target uint64) {
	for c.Stat.Instret < target && !c.Halted {
		if c.StepN(target-c.Stat.Instret) == 0 {
			if !c.Step() {
				break
			}
		}
	}
}

// TestLockstepStepNRandomPrograms covers the batched fast path: the
// reference engine runs per-Step while the predecoded engine runs
// through StepN (whose inline opcode dispatch only executes with no
// observer attached), and the full architectural state must match at
// the same retirement count.
func TestLockstepStepNRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			words := make([]uint32, 0x3000/4)
			for i := range words {
				words[i] = randInstr(r)
			}
			ref, fast, _, _ := lockstepPair(r, words)
			// No observers: an attached observer makes StepN refuse
			// to batch, which would silently fall back to the
			// already-covered per-Step path.
			ref.CPU.Obs = nil
			fast.CPU.Obs = nil
			const target = 3000
			for ref.CPU.Stat.Instret < target {
				if !ref.CPU.Step() {
					break
				}
			}
			runBatched(fast.CPU, target)
			if d := diffState(ref.CPU, fast.CPU); d != "" {
				t.Fatalf("after %d instructions: %s", ref.CPU.Stat.Instret, d)
			}
		})
	}
}

// TestLockstepSuperblockRandomPrograms covers the superblock tier:
// with the build threshold forced to 1, every repeated batch head and
// taken-jump target chains into a superblock, so the random programs
// execute almost entirely through execSB. The reference engine runs
// per-Step; state is compared at 100-instruction checkpoints so a
// divergence is localized to the chain that caused it.
func TestLockstepSuperblockRandomPrograms(t *testing.T) {
	var built uint64
	for seed := int64(1); seed <= 40; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			words := make([]uint32, 0x3000/4)
			for i := range words {
				words[i] = randInstr(r)
			}
			ref, fast, _, _ := lockstepPair(r, words)
			ref.CPU.Obs = nil
			fast.CPU.Obs = nil
			fast.CPU.SetSuperblockThreshold(1)
			const target = 3000
			for chk := uint64(100); chk <= target; chk += 100 {
				for ref.CPU.Stat.Instret < chk {
					if !ref.CPU.Step() {
						break
					}
				}
				runBatched(fast.CPU, chk)
				if d := diffState(ref.CPU, fast.CPU); d != "" {
					t.Fatalf("after %d instructions: %s", ref.CPU.Stat.Instret, d)
				}
				if ref.CPU.Halted {
					break
				}
			}
			built += fast.CPU.SuperblockStats().Built
		})
	}
	// Many seeds are chain-ender soup (random words), but across the
	// corpus the tier must actually have run.
	if built == 0 {
		t.Fatal("no superblocks built over any seed: the tier was not exercised")
	}
}

// TestSuperblockChainEndsAtJumpTarget pins the walk's exit PC when a
// chained direct jump lands on a chain-ender: the builder appends the
// (J, slot) pair and then stops because the target's first instruction
// (an MFC0 here) cannot join the chain. Dispatch must leave through
// the slot's delayTarget; falling off the end to lastPC+4 silently
// diverts the jump onto its fall-through path — exactly the shape of
// the kernel's exception prologue, where J over the vector region
// lands on an MFC0 and the wrong exit skips the whole Status capture.
func TestSuperblockChainEndsAtJumpTarget(t *testing.T) {
	T0, T1, T2, T3 := isa.RegT0, isa.RegT1, isa.RegT2, isa.RegT3
	T5, T6, T7 := 13, 14, 15
	words := make([]uint32, 0x3000/4)
	put := func(va uint32, w isa.Word) { words[(va-0x80000000)/4] = uint32(w) }
	put(0x80001000, isa.ORI(T6, 0, 0)) // iteration counter
	// loop head (superblock entry after the first backward branch):
	put(0x80001004, isa.ORI(T0, 0, 1))
	put(0x80001008, isa.ORI(T1, 0, 2))
	put(0x8000100c, isa.ADDU(T2, T0, T1))
	put(0x80001010, isa.J(0x80001100>>2&0x03ffffff))
	put(0x80001014, isa.NOP)
	put(0x80001018, isa.ORI(T5, 0, 0xBAD)) // jump fall-through: must never run
	put(0x8000101c, isa.BREAK(0))
	put(0x80001100, isa.MFC0(T3, isa.C0Status)) // chain-ender at the jump target
	put(0x80001104, isa.ADDIU(T6, T6, 1))
	put(0x80001108, isa.SLTI(T7, T6, 8))
	put(0x8000110c, isa.BNE(T7, 0, -67)) // back to 0x80001004
	put(0x80001110, isa.NOP)
	put(0x80001114, isa.BREAK(0))

	r := rand.New(rand.NewSource(7))
	ref, fast, _, _ := lockstepPair(r, words)
	ref.CPU.Obs = nil
	fast.CPU.Obs = nil
	fast.CPU.SetSuperblockThreshold(1)
	const cap = 10000
	for ref.CPU.Stat.Instret < cap && !ref.CPU.Halted {
		ref.CPU.Step()
	}
	runBatched(fast.CPU, cap)
	if !ref.CPU.Halted || !fast.CPU.Halted {
		t.Fatalf("halted: reference=%v superblock=%v (instret %d vs %d)",
			ref.CPU.Halted, fast.CPU.Halted, ref.CPU.Stat.Instret, fast.CPU.Stat.Instret)
	}
	if d := diffState(ref.CPU, fast.CPU); d != "" {
		t.Fatalf("after %d instructions: %s", ref.CPU.Stat.Instret, d)
	}
	if fast.CPU.GPR[T5] == 0xBAD {
		t.Fatal("fall-through path after the jump executed")
	}
	if fast.CPU.SuperblockStats().Built == 0 {
		t.Fatal("no superblock built: the chained-jump exit was not exercised")
	}
}

// FuzzExecEquivalence is the fuzz face of the oracle: arbitrary bytes
// become an instruction stream and both engines must agree on every
// step of it.
func FuzzExecEquivalence(f *testing.F) {
	f.Add([]byte{}, int64(1))
	f.Add([]byte{0x00, 0x00, 0x00, 0x0d}, int64(2)) // break
	seedProg := []isa.Word{
		isa.ORI(isa.RegT0, 0, 0x1234),
		isa.SW(isa.RegT0, isa.RegT1, 0),
		isa.BEQ(0, 0, -2),
		isa.ADDIU(isa.RegT0, isa.RegT0, 1),
	}
	var sb []byte
	for _, w := range seedProg {
		sb = binary.BigEndian.AppendUint32(sb, uint32(w))
	}
	f.Add(sb, int64(3))
	f.Fuzz(func(t *testing.T, data []byte, seed int64) {
		if len(data) > 0x2000 {
			data = data[:0x2000]
		}
		words := make([]uint32, 0x3000/4)
		for i := 0; i+4 <= len(data); i += 4 {
			words[0x1000/4+i/4] = binary.BigEndian.Uint32(data[i:])
		}
		r := rand.New(rand.NewSource(seed))
		ref, fast, oref, ofast := lockstepPair(r, words)
		lockstepRun(t, 500, ref, fast, oref, ofast)

		// Second face: the same program through the batched StepN
		// loop (observers detached so the inline dispatch runs),
		// compared against a per-Step reference at the same
		// retirement count.
		r = rand.New(rand.NewSource(seed))
		ref2, fast2, _, _ := lockstepPair(r, words)
		ref2.CPU.Obs = nil
		fast2.CPU.Obs = nil
		const target = 500
		for ref2.CPU.Stat.Instret < target {
			if !ref2.CPU.Step() {
				break
			}
		}
		runBatched(fast2.CPU, target)
		if d := diffState(ref2.CPU, fast2.CPU); d != "" {
			t.Fatalf("batched run diverges: %s", d)
		}

		// Third face: the superblock tier, threshold forced to 1 so
		// every repeated batch head chains immediately — any fuzz
		// input that builds a wrong chain diverges here.
		r = rand.New(rand.NewSource(seed))
		ref3, fast3, _, _ := lockstepPair(r, words)
		ref3.CPU.Obs = nil
		fast3.CPU.Obs = nil
		fast3.CPU.SetSuperblockThreshold(1)
		for ref3.CPU.Stat.Instret < target {
			if !ref3.CPU.Step() {
				break
			}
		}
		runBatched(fast3.CPU, target)
		if d := diffState(ref3.CPU, fast3.CPU); d != "" {
			t.Fatalf("superblock run diverges: %s", d)
		}
	})
}

// TestStoreToExecutingPageInvalidates is the self-modifying-code
// regression: a store two slots ahead of the PC must be visible when
// the PC gets there, under both engines.
func TestStoreToExecutingPageInvalidates(t *testing.T) {
	for _, pd := range []bool{true, false} {
		t.Run(fmt.Sprintf("predecode=%v", pd), func(t *testing.T) {
			m := newM()
			m.CPU.SetPredecode(pd)
			newInstr := uint32(isa.ORI(isa.RegT0, 0, 7))
			put(m, 0x80001000,
				isa.LUI(isa.RegT1, uint16(newInstr>>16)),
				isa.ORI(isa.RegT1, isa.RegT1, uint16(newInstr)),
				isa.SW(isa.RegT1, isa.RegT2, 0), // overwrites 0x80001010
				isa.NOP,
				isa.ORI(isa.RegT0, 0, 1), // replaced before execution
				isa.BREAK(0),
			)
			m.CPU.GPR[isa.RegT2] = 0x80001010
			m.CPU.PC = 0x80001000
			if err := m.Run(100); err != nil {
				t.Fatal(err)
			}
			if got := m.CPU.GPR[isa.RegT0]; got != 7 {
				t.Errorf("t0 = %d, want 7 (stale instruction executed)", got)
			}
			if pd {
				if _, _, inv := m.CPU.PredecodeStats(); inv == 0 {
					t.Error("store into executing page did not invalidate a predecoded frame")
				}
			}
		})
	}
}

// TestDMAWriteInvalidatesPredecode covers the RAMPage-bypassing write
// path: disk DMA copies into physical memory through the raw Bytes()
// slice, and a decoded frame under the transfer must be dropped.
func TestDMAWriteInvalidatesPredecode(t *testing.T) {
	img := make([]byte, dev.SectorSize)
	binary.BigEndian.PutUint32(img[0:], uint32(isa.ORI(isa.RegT0, 0, 2)))
	binary.BigEndian.PutUint32(img[4:], uint32(isa.BREAK(0)))
	m := machine.New(1<<20, img)
	m.CPU.HaltOnBreak = true
	put(m, 0x80003000, isa.ORI(isa.RegT0, 0, 1), isa.BREAK(0))
	m.CPU.PC = 0x80003000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[isa.RegT0]; got != 1 {
		t.Fatalf("first run: t0 = %d, want 1", got)
	}

	// DMA one sector of replacement code over the executed (and now
	// predecoded) page, then run it again.
	now := m.Cycles()
	m.Disk.Write(now, dev.DiskSector, 0)
	m.Disk.Write(now, dev.DiskAddr, 0x3000)
	m.Disk.Write(now, dev.DiskNSect, 1)
	m.Disk.Write(now, dev.DiskCmd, 1)
	m.Disk.Advance(now + 100_000_000)
	if m.Disk.Reads != 1 {
		t.Fatalf("disk read did not complete (reads=%d)", m.Disk.Reads)
	}
	m.CPU.Halted = false
	m.CPU.GPR[isa.RegT0] = 0
	m.CPU.PC = 0x80003000
	if err := m.Run(100); err != nil {
		t.Fatal(err)
	}
	if got := m.CPU.GPR[isa.RegT0]; got != 2 {
		t.Errorf("after DMA: t0 = %d, want 2 (stale predecoded frame executed)", got)
	}
}

// TestPredecodeCounters pins the cache economics on a tight loop: one
// frame decode, every subsequent instruction a hit, no invalidations.
func TestPredecodeCounters(t *testing.T) {
	m := newM()
	put(m, 0x80001000,
		isa.ORI(isa.RegT0, 0, 200),
		isa.ADDIU(isa.RegT0, isa.RegT0, 0xffff), // -1
		isa.BNE(isa.RegT0, 0, -2),
		isa.NOP,
		isa.BREAK(0),
	)
	m.CPU.PC = 0x80001000
	if err := m.Run(10000); err != nil {
		t.Fatal(err)
	}
	hits, misses, inv := m.CPU.PredecodeStats()
	instret := m.CPU.Stat.Instret
	if misses != 1 {
		t.Errorf("misses = %d, want 1 (single text frame)", misses)
	}
	if inv != 0 {
		t.Errorf("invalidations = %d, want 0", inv)
	}
	// Only the very first fetch (the refill that decodes the frame)
	// goes down the slow path.
	if hits != instret-1 {
		t.Errorf("hits = %d, want instret-1 = %d", hits, instret-1)
	}
}
